package consensus

import (
	"bytes"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/model"
	"netmem/internal/rmem"
)

// rig builds acceptors on nodes 0..R-1 and returns the managers for the
// remaining nodes (proposer machines).
type rig struct {
	env  *des.Env
	c    *cluster.Cluster
	mgrs []*rmem.Manager
	g    *Group
}

func newRig(t testing.TB, seed int64, acceptors, extra int, cfg Config) *rig {
	t.Helper()
	env := des.NewEnv()
	env.Seed(seed)
	c := cluster.New(env, &model.Default, acceptors+extra)
	r := &rig{env: env, c: c}
	for i := 0; i < acceptors+extra; i++ {
		r.mgrs = append(r.mgrs, rmem.NewManager(c.Nodes[i]))
	}
	cfg.Acceptors = acceptors
	env.Spawn("rig.boot", func(p *des.Proc) {
		r.g = NewGroup(p, cfg, r.mgrs[:acceptors]...)
	})
	return r
}

// await parks p until the rig's boot process has exported the acceptors.
func (r *rig) await(p *des.Proc) {
	for r.g == nil {
		p.Sleep(10 * time.Microsecond)
	}
}

// TestSingleDecreeChosen: one proposer drives a value through three
// acceptors; every acceptor's learned cell holds it, and the acceptor
// machines spent zero process/control/client CPU on the agreement path —
// only kernel interface work (rx/reply) appears.
func TestSingleDecreeChosen(t *testing.T) {
	r := newRig(t, 1, 3, 1, Config{NoLease: true})
	val := []byte("registry-record-0001")
	var chosen []byte
	r.env.Spawn("proposer", func(p *des.Proc) {
		r.await(p)
		pr := NewProposer(p, r.mgrs[3], 0, r.g)
		pr.Notify = false // no replicas attached: measure pure agreement
		for i := 0; i < 3; i++ {
			r.c.Nodes[i].ResetCPUAcct()
		}
		v, err := pr.Propose(p, 0, val)
		if err != nil {
			t.Errorf("propose: %v", err)
			return
		}
		chosen = v
	})
	if err := r.env.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if !bytes.Equal(chosen[:len(val)], val) {
		t.Fatalf("chosen = %q, want %q", chosen[:len(val)], val)
	}
	// Verify the learned cells out-of-band (raw memory, no simulated cost,
	// so the CPU assertion below stays clean).
	for _, a := range r.g.Accs {
		buf := a.Seg.Bytes()[r.g.Cfg.learnedOff(0):]
		if be32(buf) == 0 || !bytes.Equal(buf[4:4+len(val)], val) {
			t.Errorf("acceptor %d learned cell wrong", a.Node())
		}
	}
	for i := 0; i < 3; i++ {
		acct := r.c.Nodes[i].CPUAcct
		for _, cat := range []string{cluster.CatProc, cluster.CatControl, cluster.CatClient} {
			if acct[cat] != 0 {
				t.Errorf("acceptor node %d burned %v of %s CPU on the agreement path, want 0", i, acct[cat], cat)
			}
		}
		if acct[cluster.CatRx]+acct[cluster.CatReply] == 0 {
			t.Errorf("acceptor node %d shows no interface work — agreement traffic missing", i)
		}
	}
}

// TestContendingProposersAgree: four proposers race distinct values into
// the same slot; exactly one value wins and every proposer returns it.
func TestContendingProposersAgree(t *testing.T) {
	const P = 4
	r := newRig(t, 7, 3, P, Config{NoLease: true})
	results := make([][]byte, P)
	for i := 0; i < P; i++ {
		i := i
		r.env.Spawn("proposer", func(p *des.Proc) {
			r.await(p)
			pr := NewProposer(p, r.mgrs[3+i], i, r.g)
			v, err := pr.Propose(p, 0, []byte{byte('A' + i)})
			if err != nil {
				t.Errorf("proposer %d: %v", i, err)
				return
			}
			results[i] = v
		})
	}
	if err := r.env.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	for i := 1; i < P; i++ {
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("proposers disagree: %q vs %q", results[0][:1], results[i][:1])
		}
	}
}

// TestAdoptsAcceptedValue: a proposer that reaches only a partial accept
// (one acceptor) and stops must still have its value adopted by the next
// proposer if that acceptor's vote is visible in the rival's phase-1
// quorum — and must never be overwritten once a majority accepted it.
func TestAdoptsAcceptedValue(t *testing.T) {
	r := newRig(t, 3, 3, 2, Config{NoLease: true})
	r.env.Spawn("crashing", func(p *des.Proc) {
		r.await(p)
		pr := NewProposer(p, r.mgrs[3], 0, r.g)
		// Run phases by hand: promise everywhere, accept on a majority
		// (acceptors 0 and 1), then vanish before learning.
		b := r.g.Cfg.firstBallot(0)
		for _, ep := range pr.eps {
			if _, _, ok := pr.promiseOne(p, ep, 0, b); !ok {
				t.Errorf("hand promise failed")
			}
		}
		for _, ep := range pr.eps[:2] {
			if !pr.acceptOne(p, ep, 0, b, []byte("orphaned-but-chosen")) {
				t.Errorf("hand accept failed")
			}
		}
	})
	var got []byte
	r.env.Spawn("rival", func(p *des.Proc) {
		r.await(p)
		p.Sleep(2 * time.Millisecond) // let the partial accept land first
		pr := NewProposer(p, r.mgrs[4], 1, r.g)
		v, err := pr.Propose(p, 0, []byte("rival-value"))
		if err != nil {
			t.Errorf("rival: %v", err)
			return
		}
		got = v
	})
	if err := r.env.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	v := got
	if !bytes.Equal(v[:len("orphaned-but-chosen")], []byte("orphaned-but-chosen")) {
		t.Fatalf("rival overwrote a majority-accepted value: got %q", v[:20])
	}
}

// TestCommandRoundTrip pins the decree codec.
func TestCommandRoundTrip(t *testing.T) {
	cmds := []Command{
		{Kind: KindNoop, Origin: 3, Seq: 9},
		{Kind: KindLease, Origin: 1, Seq: 2, Node: 2, Epoch: 7},
		{Kind: KindFence, Origin: 2, Seq: 5, Node: 11},
		{Kind: KindUnfence, Origin: 2, Seq: 6, Node: 11},
		{Kind: KindMembership, Origin: 4, Seq: 1, Epoch: 3, Blob: []byte{1, 2, 3, 4, 5}},
	}
	for _, c := range cmds {
		back, err := Decode(c.Encode())
		if err != nil {
			t.Fatalf("%v: %v", c.Kind, err)
		}
		if back.Kind != c.Kind || back.Origin != c.Origin || back.Seq != c.Seq ||
			back.Node != c.Node || back.Epoch != c.Epoch || !bytes.Equal(back.Blob, c.Blob) {
			t.Fatalf("round trip: got %+v want %+v", back, c)
		}
	}
	rec := Command{Kind: KindRegister, Origin: 1, Seq: 4}
	rec.Rec.Name = "dfs.ring"
	rec.Rec.Node = 2
	rec.Rec.Seg = 0x0140
	rec.Rec.Gen = 9
	rec.Rec.Epoch = 3
	rec.Rec.Size = 76
	back, err := Decode(rec.Encode())
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if back.Rec != rec.Rec {
		t.Fatalf("register round trip: got %+v want %+v", back.Rec, rec.Rec)
	}
	if _, err := Decode([]byte{0xff, 0, 0}); err == nil {
		t.Fatalf("short/unknown command decoded without error")
	}
}

// TestLeaderElectionDeterministic: the control plane re-elects after the
// leader machine crashes, and two same-seed runs elect the same leader
// after the same latency.
func TestLeaderElectionDeterministic(t *testing.T) {
	type outcome struct {
		leader   int
		epoch    uint32
		latency  des.Duration
		applied  int
		election int64
	}
	run := func(seed int64) outcome {
		r := newRig(t, seed, 3, 1, Config{})
		var cp *ControlPlane
		r.env.Spawn("cp.boot", func(p *des.Proc) {
			r.await(p)
			cp = NewControlPlane(p, r.g, nil)
			if err := cp.Start(p); err != nil {
				t.Errorf("start: %v", err)
			}
		})
		r.env.Schedule(des.Time(5*time.Millisecond), func() {
			r.c.Nodes[0].Fail() // kill the initial leader's machine
		})
		if err := r.env.RunUntil(des.Time(40 * time.Millisecond)); err != nil {
			t.Fatalf("sim: %v", err)
		}
		surv := cp.Replicas()[1]
		return outcome{
			leader:   surv.leader,
			epoch:    surv.leaseEpoch,
			latency:  cp.LastElection,
			applied:  surv.AppliedCount(),
			election: cp.Elections,
		}
	}
	a := run(11)
	if a.election != 1 {
		t.Fatalf("elections = %d, want exactly 1", a.election)
	}
	if a.leader == 0 {
		t.Fatalf("crashed leader still holds the lease")
	}
	if a.epoch != 2 {
		t.Fatalf("lease epoch = %d, want 2", a.epoch)
	}
	if a.latency <= 0 {
		t.Fatalf("election latency not measured")
	}
	b := run(11)
	if a != b {
		t.Fatalf("same-seed elections diverge: %+v vs %+v", a, b)
	}
	// Both survivors must agree on the outcome.
	r := newRig(t, 11, 3, 1, Config{})
	var cp *ControlPlane
	r.env.Spawn("cp.boot", func(p *des.Proc) {
		r.await(p)
		cp = NewControlPlane(p, r.g, nil)
		_ = cp.Start(p)
	})
	r.env.Schedule(des.Time(5*time.Millisecond), func() { r.c.Nodes[0].Fail() })
	if err := r.env.RunUntil(des.Time(40 * time.Millisecond)); err != nil {
		t.Fatalf("sim: %v", err)
	}
	r1, r2 := cp.Replicas()[1], cp.Replicas()[2]
	if r1.leader != r2.leader || r1.leaseEpoch != r2.leaseEpoch {
		t.Fatalf("survivors disagree: (%d,%d) vs (%d,%d)", r1.leader, r1.leaseEpoch, r2.leader, r2.leaseEpoch)
	}
}

// TestRestartedAcceptorFencedOut: an acceptor that crashes and cold-boots
// answers ErrStaleGeneration and is permanently excluded — amnesiac
// members must not vote again (they have forgotten their promises).
func TestRestartedAcceptorFencedOut(t *testing.T) {
	r := newRig(t, 5, 3, 1, Config{NoLease: true})
	r.env.Spawn("run", func(p *des.Proc) {
		r.await(p)
		pr := NewProposer(p, r.mgrs[3], 0, r.g)
		if _, err := pr.Propose(p, 0, []byte("before")); err != nil {
			t.Errorf("propose: %v", err)
		}
		// Cold-boot acceptor 2: exports wiped, incarnation bumped.
		r.mgrs[2].Restart()
		if _, err := pr.Propose(p, 1, []byte("after")); err != nil {
			t.Errorf("propose after restart: %v", err)
		}
		if !pr.eps[2].dead {
			t.Errorf("restarted acceptor not marked dead (stale generation missed)")
		}
		// The surviving majority still carries both decrees.
		for _, a := range r.g.Accs[:2] {
			if b, _ := a.Learned(p, 1); b == 0 {
				t.Errorf("acceptor %d missing post-restart decree", a.Node())
			}
		}
	})
	if err := r.env.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}
