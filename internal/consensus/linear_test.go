package consensus

import (
	"bytes"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/faults"
	"netmem/internal/model"
	"netmem/internal/obs"
	"netmem/internal/rmem"
)

// TestLogLinearizableUnderFaults is the replicated-log property test:
// several clients on distinct machines commit distinct commands
// concurrently while the link fabric duplicates (dup1) or reorders
// (reorder2) cells. The log admits a sequential history iff
//
//   - every replica applies byte-identical decrees in the same total
//     order (a divergence means a retransmitted CAS double-voted or a
//     learn overwrote a chosen slot), and
//   - each client's own commands appear in the log in issue order (the
//     client blocks on Commit, so program order must agree with log
//     order), exactly once each (a duplicate means a replayed proposal
//     was chosen twice; a gap means a commit was lost).
func TestLogLinearizableUnderFaults(t *testing.T) {
	const (
		clients  = 3
		cmdsEach = 6
		total    = 1 + clients*cmdsEach // initial lease + client decrees
	)
	for _, name := range []string{"dup1", "reorder2"} {
		for _, seed := range []int64{1, 13} {
			camp, ok := faults.Named(name)
			if !ok {
				t.Fatalf("campaign %q not registered", name)
			}
			t.Run(camp.Name, func(t *testing.T) {
				env := des.NewEnv()
				env.Seed(seed)
				tr := obs.New(obs.Config{})
				env.SetTracer(tr)
				eng := faults.NewEngine(env, camp)
				c := cluster.New(env, &model.Default, 3+clients, cluster.WithFaultEngine(eng))
				mgrs := make([]*rmem.Manager, 3+clients)
				for i := range mgrs {
					mgrs[i] = rmem.NewManager(c.Nodes[i])
				}

				var cp *ControlPlane
				env.Spawn("boot", func(p *des.Proc) {
					g := NewGroup(p, Config{Proposers: 8}, mgrs[:3]...)
					cp = NewControlPlane(p, g, nil)
					if err := cp.Start(p); err != nil {
						t.Errorf("start: %v", err)
						return
					}
					for i := 0; i < clients; i++ {
						i := i
						env.Spawn("client", func(pp *des.Proc) {
							cl := cp.NewClient(pp, mgrs[3+i])
							for k := 0; k < cmdsEach; k++ {
								if err := cl.Noop(pp); err != nil {
									t.Errorf("client %d commit %d: %v", i, k, err)
									return
								}
							}
						})
					}
				})
				if err := env.RunUntil(des.Time(500 * time.Millisecond)); err != nil {
					t.Fatalf("sim: %v", err)
				}

				// Every replica applied the full log...
				for _, r := range cp.Replicas() {
					if r.AppliedCount() != total {
						t.Fatalf("replica %d applied %d decrees, want %d", r.Idx(), r.AppliedCount(), total)
					}
				}
				// ...and the same total order, byte for byte.
				ref := cp.Replicas()[0].Log()
				for _, r := range cp.Replicas()[1:] {
					for s, cmd := range r.Log() {
						if !bytes.Equal(cmd.Encode(), ref[s].Encode()) {
							t.Fatalf("replica %d slot %d diverges: %+v vs %+v", r.Idx(), s, cmd, ref[s])
						}
					}
				}
				// Per-client program order: each origin's Seq strictly
				// increasing along the log, cmdsEach entries per client.
				perOrigin := map[uint8][]uint32{}
				for _, cmd := range ref {
					if cmd.Kind == KindNoop && cmd.Origin >= 3 {
						perOrigin[cmd.Origin] = append(perOrigin[cmd.Origin], cmd.Seq)
					}
				}
				if len(perOrigin) != clients {
					t.Fatalf("%d client origins in log, want %d", len(perOrigin), clients)
				}
				for origin, seqs := range perOrigin {
					if len(seqs) != cmdsEach {
						t.Fatalf("origin %d has %d decrees, want %d (duplicate or lost commit)", origin, len(seqs), cmdsEach)
					}
					for k := range seqs {
						if seqs[k] != uint32(k+1) {
							t.Fatalf("origin %d log order %v violates program order", origin, seqs)
						}
					}
				}
				// The run must actually have exercised the campaign's fault.
				kind := faults.KindDup
				if camp.Name == "reorder2" {
					kind = faults.KindReorder
				}
				if eng.Injected(kind) == 0 {
					t.Errorf("campaign %s injected no %s faults — property unexercised at seed %d", camp.Name, kind, seed)
				}
			})
		}
	}
}
