package consensus

import (
	"fmt"
	"time"

	"netmem/internal/des"
	"netmem/internal/nameserver"
	"netmem/internal/rmem"
)

// ControlPlane runs the reproduction's control plane over the replicated
// log: one Replica per acceptor (co-located — the learn write's notify
// bit is the only control transfer between agreement and apply), each
// holding a name-service clerk that the log keeps in sync. Registry
// mutations, fencing verdicts, membership epoch bumps, and leader leases
// are decrees; every replica applies the same total order, so any replica
// answers lookups and any replica — including the current leader — can
// crash without losing the control plane.
type ControlPlane struct {
	g    *Group
	reps []*Replica

	nextLane int

	// LastElection is the most recent leader re-election latency:
	// watchdog verdict to lease decree applied at the winner.
	LastElection des.Duration
	// Elections counts completed re-elections.
	Elections int64
}

// Replica is one control-plane state machine, co-located with its
// acceptor. It applies learned slots in log order.
type Replica struct {
	cp   *ControlPlane
	idx  int
	acc  *Acceptor
	prop *Proposer
	ns   *nameserver.Clerk // optional: registry decrees apply here

	applied  int       // next slot to apply
	maxSeen  int       // highest slot with a known learn (hole detection)
	filling  bool      // hole-fill probe in flight
	log      []Command // applied decrees, in order
	appliedQ *des.WaitQueue

	leader     int // replica index holding the lease
	leaseEpoch uint32
	seq        uint32 // per-origin proposal sequence
	wd         *rmem.Watchdog

	onApply []func(p *des.Proc, slot int, cmd Command)

	// Applied counts decrees applied; Holes counts noop hole-fills this
	// replica initiated.
	Applied int64
	Holes   int64
}

const holeGrace = 1 * time.Millisecond

// NewControlPlane builds replicas over g's acceptors. clerks[i], when
// non-nil, is the name-service clerk on acceptor i's machine; registry
// and fence decrees are applied to it. Lanes 0..len(accs)-1 belong to the
// replicas; NewClient hands out the rest.
func NewControlPlane(p *des.Proc, g *Group, clerks []*nameserver.Clerk) *ControlPlane {
	cp := &ControlPlane{g: g, nextLane: len(g.Accs)}
	for i, acc := range g.Accs {
		r := &Replica{
			cp: cp, idx: i, acc: acc,
			prop:     NewProposer(p, acc.M, i, g),
			appliedQ: des.NewWaitQueue(acc.M.Node.Env),
			leader:   -1,
		}
		if clerks != nil && clerks[i] != nil {
			r.ns = clerks[i]
		}
		acc.OnLearn(func(lp *des.Proc, slot int) { r.noteLearn(lp, slot) })
		acc.Seg.OnNotify(func(np *des.Proc, note rmem.Notification) {
			cfg := g.Cfg
			if off := note.Offset; off%cfg.slotSize() == 4 {
				r.noteLearn(np, off/cfg.slotSize())
			}
		})
		cp.reps = append(cp.reps, r)
	}
	return cp
}

// Start proposes the initial lease (epoch 1, replica 0) and waits for the
// proposing replica to apply it.
func (cp *ControlPlane) Start(p *des.Proc) error {
	r := cp.reps[0]
	if err := r.proposeCmd(p, Command{Kind: KindLease, Node: 0, Epoch: 1}); err != nil {
		return err
	}
	return r.AwaitApplied(p, 1, time.Second)
}

// Replicas exposes the replica set (read-mostly: tests and harnesses).
func (cp *ControlPlane) Replicas() []*Replica { return cp.reps }

// Leader returns the lease holder as seen by the lowest live replica
// (-1 before the first lease).
func (cp *ControlPlane) Leader() int {
	for _, r := range cp.reps {
		if !r.acc.M.Node.Failed() {
			return r.leader
		}
	}
	return -1
}

// Group returns the underlying consensus group.
func (cp *ControlPlane) Group() *Group { return cp.g }

// ---------------------------------------------------------------------------
// Replica: apply path.

// noteLearn records a learn signal for slot and drains every contiguously
// learned slot. Runs in the notify handler (remote learns) or the
// learner's process (local fast path).
func (r *Replica) noteLearn(p *des.Proc, slot int) {
	if slot > r.maxSeen {
		r.maxSeen = slot
	}
	r.pump(p)
}

func (r *Replica) pump(p *des.Proc) {
	cfg := r.cp.g.Cfg
	for r.applied < cfg.Slots {
		b, val := r.acc.Learned(p, r.applied)
		if b == 0 {
			break
		}
		cmd, err := Decode(val)
		if err != nil {
			// An undecodable decree would desynchronize the replicas;
			// surface it loudly instead of skipping.
			r.acc.M.Node.Faults = append(r.acc.M.Node.Faults,
				fmt.Errorf("consensus: replica %d slot %d: %w", r.idx, r.applied, err))
			break
		}
		slot := r.applied
		r.applied++
		r.Applied++
		r.apply(p, slot, cmd)
	}
	r.appliedQ.WakeAll()
	// A learned slot beyond the apply horizon with a hole below it means
	// some proposer died mid-decree. Give the race a grace period, then
	// drive a noop through the open slot — phase 1 adopts whatever was
	// accepted there, so the noop completes the interrupted proposal
	// rather than overwriting it.
	if r.maxSeen >= r.applied && !r.filling {
		r.filling = true
		stuckAt := r.applied
		env := r.acc.M.Node.Env
		env.After(holeGrace, func() {
			env.Spawn(fmt.Sprintf("consensus.r%d.fill", r.idx), func(fp *des.Proc) {
				defer func() { r.filling = false }()
				if r.applied != stuckAt || r.maxSeen < r.applied {
					r.pump(fp)
					return
				}
				r.Holes++
				if _, err := r.prop.Propose(fp, stuckAt, Command{Kind: KindNoop, Origin: uint8(r.idx)}.Encode()); err == nil {
					r.noteLearn(fp, stuckAt)
				}
			})
		})
	}
}

func (r *Replica) apply(p *des.Proc, slot int, cmd Command) {
	env := r.acc.M.Node.Env
	r.log = append(r.log, cmd)
	switch cmd.Kind {
	case KindLease:
		if cmd.Epoch > r.leaseEpoch {
			r.leaseEpoch = cmd.Epoch
			r.leader = cmd.Node
			r.watchLeader()
		}
	case KindRegister:
		if r.ns != nil {
			if err := r.ns.ApplyRecord(p, cmd.Rec); err != nil &&
				err != nameserver.ErrExists && err != nameserver.ErrNotReady {
				r.acc.M.Node.Faults = append(r.acc.M.Node.Faults,
					fmt.Errorf("consensus: replica %d apply register %q: %w", r.idx, cmd.Rec.Name, err))
			}
		}
	case KindFence:
		if r.ns != nil {
			r.ns.FencePeer(cmd.Node)
		}
	case KindUnfence:
		if r.ns != nil {
			r.ns.UnfencePeer(cmd.Node)
		}
	case KindNoop, KindMembership:
		// Membership is consumed by subscribers (the shard tier re-reads
		// its ring from the blob); nothing to do here.
	}
	if tr := env.Tracer(); tr != nil {
		tr.Count("consensus.applied", 1)
		tr.Count("consensus.applied."+cmd.Kind.String(), 1)
	}
	for _, fn := range r.onApply {
		fn(p, slot, cmd)
	}
}

// OnApply subscribes fn to every decree this replica applies, in order.
func (r *Replica) OnApply(fn func(p *des.Proc, slot int, cmd Command)) {
	r.onApply = append(r.onApply, fn)
}

// AwaitApplied blocks until the replica has applied at least n decrees.
func (r *Replica) AwaitApplied(p *des.Proc, n int, timeout des.Duration) error {
	env := r.acc.M.Node.Env
	timedOut := false
	if timeout > 0 {
		cancel := env.After(timeout, func() {
			timedOut = true
			r.appliedQ.WakeAll()
		})
		defer cancel()
	}
	for r.applied < n && !timedOut {
		r.appliedQ.Wait(p)
	}
	if r.applied < n {
		return rmem.ErrTimeout
	}
	return nil
}

// Log returns the applied decrees so far (shared backing array;
// callers treat it as read-only).
func (r *Replica) Log() []Command { return r.log }

// AppliedCount returns the replica's apply horizon.
func (r *Replica) AppliedCount() int { return r.applied }

// Idx returns the replica index (also its ballot lane).
func (r *Replica) Idx() int { return r.idx }

// Clerk returns the replica's name-service clerk (may be nil).
func (r *Replica) Clerk() *nameserver.Clerk { return r.ns }

// proposeCmd stamps origin/sequence and drives cmd into the first open
// slot.
func (r *Replica) proposeCmd(p *des.Proc, cmd Command) error {
	cmd.Origin = uint8(r.idx)
	r.seq++
	cmd.Seq = r.seq
	slot, err := r.prop.Commit(p, cmd.Encode())
	if err != nil {
		return err
	}
	r.noteLearn(p, slot)
	return nil
}

// ---------------------------------------------------------------------------
// Leases and re-election.

// watchLeader (re)arms the lease watchdog after a lease decree: every
// replica that is not the leader watches the leader's acceptor heartbeat.
// The watchdog captures the lease epoch it was armed under, so a stale
// verdict against a superseded leader is ignored.
func (r *Replica) watchLeader() {
	if r.leader == r.idx || r.leader < 0 || r.leader >= len(r.cp.reps) {
		return
	}
	cfg := r.cp.g.Cfg
	ep := r.prop.eps[r.leader]
	if ep.imp == nil {
		return // co-located with the leader's acceptor: it dies with us
	}
	epoch := r.leaseEpoch
	m := r.acc.M
	r.wd = rmem.NewWatchdogCfg(m, ep.imp, cfg.hbOff(), rmem.WatchdogConfig{
		Interval: cfg.LeaseInterval,
		Timeout:  m.Node.P.RetryTimeout,
		Grace:    cfg.LeaseGrace,
	}, func(p *des.Proc, err error) { r.leaderDown(p, epoch) })
}

// leaderDown runs on a lease-watchdog verdict: after a rank-staggered
// delay (lower-indexed live replicas go first, so re-election is
// deterministic under a fixed seed), propose the next lease unless
// someone already did. Paxos makes duelling candidacies safe — the log
// picks one.
func (r *Replica) leaderDown(p *des.Proc, epoch uint32) {
	if r.leaseEpoch != epoch {
		return // stale verdict against a superseded lease
	}
	verdictAt := p.Now()
	dead := r.leader
	// The verdict condemned the leader's machine; skip its acceptor for a
	// while so the lease proposal does not stall probing it. If the verdict
	// was wrong the acceptor rejoins quorums when the mute expires.
	if dead >= 0 {
		r.prop.Suspect(dead, des.Duration(100*time.Millisecond))
	}
	rank := 0
	for i := 0; i < r.idx; i++ {
		if i != dead && !r.prop.eps[i].dead {
			rank++
		}
	}
	if rank > 0 {
		p.Sleep(des.Duration(rank) * 1 * time.Millisecond)
	}
	if r.leaseEpoch != epoch {
		r.watchLeader() // a rival already won; just re-arm
		return
	}
	if err := r.proposeCmd(p, Command{Kind: KindLease, Node: r.idx, Epoch: epoch + 1}); err != nil {
		return
	}
	if r.leader == r.idx && r.leaseEpoch == epoch+1 {
		d := p.Now().Sub(verdictAt)
		r.cp.LastElection = d
		r.cp.Elections++
		if tr := r.acc.M.Node.Env.Tracer(); tr != nil {
			tr.Observe("consensus.election", time.Duration(d))
		}
	}
}

// ---------------------------------------------------------------------------
// Clients: external proposers (data-plane machines) with their own lane.

// Client proposes control-plane decrees from a machine that is not a
// replica. It satisfies recovery.VerdictLog and the shard tier's
// control-log hook.
type Client struct {
	cp   *ControlPlane
	prop *Proposer
	seq  uint32
}

// NewClient allocates the next free ballot lane for a proposer on m.
func (cp *ControlPlane) NewClient(p *des.Proc, m *rmem.Manager) *Client {
	if cp.nextLane >= cp.g.Cfg.Proposers {
		panic("consensus: out of proposer lanes (raise Config.Proposers)")
	}
	// Claim the lane before NewProposer blocks (it exports scratch and
	// imports the acceptors): concurrent NewClient callers interleave at
	// those points, and two proposers sharing a lane share ballots and a
	// value cell — adoption then reads whichever of them wrote last.
	lane := cp.nextLane
	cp.nextLane++
	return &Client{cp: cp, prop: NewProposer(p, m, lane, cp.g)}
}

func (cl *Client) propose(p *des.Proc, cmd Command) error {
	cmd.Origin = uint8(cl.prop.Lane())
	cl.seq++
	cmd.Seq = cl.seq
	_, err := cl.prop.Commit(p, cmd.Encode())
	return err
}

// RegisterName replicates a registry record through the log.
func (cl *Client) RegisterName(p *des.Proc, rec nameserver.Record) error {
	return cl.propose(p, Command{Kind: KindRegister, Rec: rec})
}

// ProposeFence replicates a fencing verdict for peer.
func (cl *Client) ProposeFence(p *des.Proc, peer int) error {
	return cl.propose(p, Command{Kind: KindFence, Node: peer})
}

// ProposeUnfence replicates the end of peer's outage.
func (cl *Client) ProposeUnfence(p *des.Proc, peer int) error {
	return cl.propose(p, Command{Kind: KindUnfence, Node: peer})
}

// ProposeMembership commits a shard-ring epoch bump with its packed ring.
func (cl *Client) ProposeMembership(p *des.Proc, epoch uint32, blob []byte) error {
	return cl.propose(p, Command{Kind: KindMembership, Epoch: epoch, Blob: blob})
}

// Noop drives an empty decree through the log (liveness probes, benches).
func (cl *Client) Noop(p *des.Proc) error {
	return cl.propose(p, Command{Kind: KindNoop})
}

// Proposer exposes the client's underlying proposer (stats, tests).
func (cl *Client) Proposer() *Proposer { return cl.prop }
