package consensus

import (
	"encoding/binary"
	"fmt"
	"time"

	"netmem/internal/des"
	"netmem/internal/nameserver"
	"netmem/internal/rmem"
)

// ControlPlane runs the reproduction's control plane over the replicated
// log: one Replica per acceptor (co-located — the learn write's notify
// bit is the only control transfer between agreement and apply), each
// holding a name-service clerk that the log keeps in sync. Registry
// mutations, fencing verdicts, membership epoch bumps, and leader leases
// are decrees; every replica applies the same total order, so any replica
// answers lookups and any replica — including the current leader — can
// crash without losing the control plane.
type ControlPlane struct {
	g    *Group
	reps []*Replica

	nextLane int
	fenceMax int    // fence-table width in nodes (0 = table disabled)
	mirror   string // membership-mirror base name (MirrorMembership)

	// LastElection is the most recent leader re-election latency:
	// watchdog verdict to lease decree applied at the winner.
	LastElection des.Duration
	// Elections counts completed re-elections.
	Elections int64
}

// Replica is one control-plane state machine, co-located with its
// acceptor. It applies learned slots in log order.
type Replica struct {
	cp   *ControlPlane
	idx  int
	acc  *Acceptor
	prop *Proposer
	ns   *nameserver.Clerk // optional: registry decrees apply here

	applied  int       // next slot to apply
	maxSeen  int       // highest slot with a known learn (hole detection)
	filling  bool      // hole-fill probe in flight
	log      []Command // applied decrees, in order
	appliedQ *des.WaitQueue

	leader     int // replica index holding the lease
	leaseEpoch uint32
	seq        uint32 // per-origin proposal sequence
	wd         *rmem.Watchdog

	// Compaction state (Config.Compact): the watermark below which slots
	// are recycled, a running FNV-64a digest of every applied decree, and
	// the exported checkpoint segment.
	snapBase    int
	snapPending bool
	digest      uint64
	snapSeg     *rmem.Segment

	// fenceSeg is the replica's exported fence table (EnableFenceTable):
	// one word per node, bumped even->odd by a fence decree and odd->even
	// by the unfence. WriteLease reads it one-sided.
	fenceSeg *rmem.Segment

	// mirrorSeg is the replica's local copy of the latest membership
	// blob (MirrorMembership), re-exported on every membership decree.
	mirrorSeg *rmem.Segment

	onApply []func(p *des.Proc, slot int, cmd Command)

	// Applied counts decrees applied; Holes counts noop hole-fills this
	// replica initiated.
	Applied int64
	Holes   int64
}

const holeGrace = 1 * time.Millisecond

// NewControlPlane builds replicas over g's acceptors. clerks[i], when
// non-nil, is the name-service clerk on acceptor i's machine; registry
// and fence decrees are applied to it. Lanes 0..len(accs)-1 belong to the
// replicas; NewClient hands out the rest.
func NewControlPlane(p *des.Proc, g *Group, clerks []*nameserver.Clerk) *ControlPlane {
	cp := &ControlPlane{g: g, nextLane: len(g.Accs)}
	for i, acc := range g.Accs {
		r := &Replica{
			cp: cp, idx: i, acc: acc,
			prop:     NewProposer(p, acc.M, i, g),
			appliedQ: des.NewWaitQueue(acc.M.Node.Env),
			leader:   -1,
		}
		if clerks != nil && clerks[i] != nil {
			r.ns = clerks[i]
		}
		acc.OnLearn(func(lp *des.Proc, slot int) { r.noteLearn(lp, slot) })
		acc.Seg.OnNotify(func(np *des.Proc, note rmem.Notification) {
			cfg := g.Cfg
			if off := note.Offset; off < cfg.hbOff() && off%cfg.slotSize() == 4 {
				slot := off / cfg.slotSize()
				if cfg.Compact {
					// The physical slot is ambiguous under recycling; the
					// learned cell's logical-slot prefix says which decree
					// actually arrived.
					cell := acc.Seg.Bytes()[off:]
					if be32(cell) == 0 {
						return
					}
					slot = int(be32(cell[4:]))
				}
				r.noteLearn(np, slot)
			}
		})
		if g.Cfg.Compact {
			r.snapSeg = acc.M.Export(p, 32)
			r.snapSeg.SetDefaultRights(rmem.RightRead)
		}
		cp.reps = append(cp.reps, r)
	}
	return cp
}

// EnableFenceTable exports a one-word-per-node fence table on every
// replica. Fence/unfence decrees bump the target node's word (even =
// writable, odd = fenced; each unfence lands on a fresh even epoch), and
// WriteLease reads the words one-sided to decide whether its holder may
// still mutate data. Call before Start, with maxNodes covering every
// machine a lease will ever guard.
func (cp *ControlPlane) EnableFenceTable(p *des.Proc, maxNodes int) {
	cp.fenceMax = maxNodes
	for _, r := range cp.reps {
		r.fenceSeg = r.acc.M.Export(p, maxNodes*4)
		r.fenceSeg.SetDefaultRights(rmem.RightRead)
	}
}

// MirrorMembership makes every replica keep a resolvable local copy of
// the latest membership blob: each KindMembership decree is re-exported
// on the replica's own node and registered in its own registry as
// "<name>.<node>". A client that loses the publishing machine re-reads
// the ring from any replica — the record and the bytes both live there,
// so no surviving path depends on the founder. Requires replicas built
// with name-service clerks.
func (cp *ControlPlane) MirrorMembership(name string) { cp.mirror = name }

// mirrorMembership applies one membership decree to the replica's local
// mirror: export a fresh copy (superseding the previous by generation),
// register it locally, revoke the old segment.
func (r *Replica) mirrorMembership(p *des.Proc, cmd Command) {
	if r.cp.mirror == "" || r.ns == nil || len(cmd.Blob) == 0 {
		return
	}
	m := r.acc.M
	old := r.mirrorSeg
	seg := m.Export(p, len(cmd.Blob))
	seg.SetDefaultRights(rmem.RightRead)
	copy(seg.Bytes(), cmd.Blob)
	r.mirrorSeg = seg
	rec := nameserver.Record{
		Name: fmt.Sprintf("%s.%d", r.cp.mirror, m.Node.ID), Node: m.Node.ID,
		Seg: seg.ID(), Gen: seg.Gen(), Epoch: m.Incarnation(), Size: seg.Size(),
	}
	if err := r.ns.ApplyRecord(p, rec); err != nil &&
		err != nameserver.ErrExists && err != nameserver.ErrNotReady {
		m.Node.Faults = append(m.Node.Faults,
			fmt.Errorf("consensus: replica %d mirror %q: %w", r.idx, rec.Name, err))
	}
	if old != nil {
		m.Revoke(p, old)
	}
}

// Start proposes the initial lease (epoch 1, replica 0) and waits for the
// proposing replica to apply it.
func (cp *ControlPlane) Start(p *des.Proc) error {
	r := cp.reps[0]
	if err := r.proposeCmd(p, Command{Kind: KindLease, Node: 0, Epoch: 1}); err != nil {
		return err
	}
	return r.AwaitApplied(p, 1, time.Second)
}

// Replicas exposes the replica set (read-mostly: tests and harnesses).
func (cp *ControlPlane) Replicas() []*Replica { return cp.reps }

// Leader returns the lease holder as seen by the lowest live replica
// (-1 before the first lease).
func (cp *ControlPlane) Leader() int {
	for _, r := range cp.reps {
		if !r.acc.M.Node.Failed() {
			return r.leader
		}
	}
	return -1
}

// Group returns the underlying consensus group.
func (cp *ControlPlane) Group() *Group { return cp.g }

// ---------------------------------------------------------------------------
// Replica: apply path.

// noteLearn records a learn signal for slot and drains every contiguously
// learned slot. Runs in the notify handler (remote learns) or the
// learner's process (local fast path).
func (r *Replica) noteLearn(p *des.Proc, slot int) {
	if slot > r.maxSeen {
		r.maxSeen = slot
	}
	r.pump(p)
}

func (r *Replica) pump(p *des.Proc) {
	for r.applied < r.horizon() {
		b, val := r.acc.Learned(p, r.applied)
		if b == 0 {
			break
		}
		cmd, err := Decode(val)
		if err != nil {
			// An undecodable decree would desynchronize the replicas;
			// surface it loudly instead of skipping.
			r.acc.M.Node.Faults = append(r.acc.M.Node.Faults,
				fmt.Errorf("consensus: replica %d slot %d: %w", r.idx, r.applied, err))
			break
		}
		slot := r.applied
		r.applied++
		r.Applied++
		r.apply(p, slot, cmd)
	}
	r.appliedQ.WakeAll()
	// A learned slot beyond the apply horizon with a hole below it means
	// some proposer died mid-decree. Give the race a grace period, then
	// drive a noop through the open slot — phase 1 adopts whatever was
	// accepted there, so the noop completes the interrupted proposal
	// rather than overwriting it.
	if r.maxSeen >= r.applied && !r.filling {
		r.filling = true
		stuckAt := r.applied
		env := r.acc.M.Node.Env
		env.After(holeGrace, func() {
			env.Spawn(fmt.Sprintf("consensus.r%d.fill", r.idx), func(fp *des.Proc) {
				defer func() { r.filling = false }()
				if r.applied != stuckAt || r.maxSeen < r.applied {
					r.pump(fp)
					return
				}
				r.Holes++
				if _, err := r.prop.Propose(fp, stuckAt, Command{Kind: KindNoop, Origin: uint8(r.idx)}.Encode()); err == nil {
					r.noteLearn(fp, stuckAt)
				}
			})
		})
	}
}

// horizon is the apply bound: the fixed log size, or — under compaction
// — one window past the watermark (a decree beyond that cannot exist:
// proposers refuse slots outside [base, base+Slots)).
func (r *Replica) horizon() int {
	cfg := r.cp.g.Cfg
	if cfg.Compact {
		return r.snapBase + cfg.Slots
	}
	return cfg.Slots
}

func (r *Replica) apply(p *des.Proc, slot int, cmd Command) {
	env := r.acc.M.Node.Env
	r.log = append(r.log, cmd)
	switch cmd.Kind {
	case KindLease:
		if cmd.Epoch > r.leaseEpoch {
			r.leaseEpoch = cmd.Epoch
			r.leader = cmd.Node
			r.watchLeader()
		}
	case KindRegister:
		if r.ns != nil {
			if err := r.ns.ApplyRecord(p, cmd.Rec); err != nil &&
				err != nameserver.ErrExists && err != nameserver.ErrNotReady {
				r.acc.M.Node.Faults = append(r.acc.M.Node.Faults,
					fmt.Errorf("consensus: replica %d apply register %q: %w", r.idx, cmd.Rec.Name, err))
			}
		}
	case KindFence:
		if r.ns != nil {
			r.ns.FencePeer(cmd.Node)
		}
		r.fenceWord(p, cmd.Node, true)
	case KindUnfence:
		if r.ns != nil {
			r.ns.UnfencePeer(cmd.Node)
		}
		r.fenceWord(p, cmd.Node, false)
	case KindSnapshot:
		r.checkpoint(p, slot)
		r.snapPending = false
	case KindMembership:
		// Membership is consumed by subscribers (the shard tier re-reads
		// its ring from the blob); with a mirror name configured, the
		// replica additionally keeps a local copy any client can resolve
		// after the publishing machine dies.
		r.mirrorMembership(p, cmd)
	case KindNoop:
	}
	r.digest = foldDigest(r.digest, cmd.Encode())
	if tr := env.Tracer(); tr != nil {
		tr.Count("consensus.applied", 1)
		tr.Count("consensus.applied."+cmd.Kind.String(), 1)
	}
	for _, fn := range r.onApply {
		fn(p, slot, cmd)
	}
	r.maybeSnapshot()
}

// fenceWord bumps node's fence-table word: even->odd on fence, odd->even
// on unfence. Every unfence lands on a *new* even value, so a lease
// holder that was fenced and unfenced while unreachable sees an epoch it
// never granted writes under — it stays deposed rather than resuming.
func (r *Replica) fenceWord(p *des.Proc, node int, fence bool) {
	if r.fenceSeg == nil || node < 0 || node >= r.cp.fenceMax {
		return
	}
	w := r.fenceSeg.ReadWord(p, node*4)
	if fence == (w%2 == 0) {
		r.fenceSeg.WriteWord(p, node*4, w+1)
	}
}

// maybeSnapshot proposes a snapshot decree when the leader replica sees
// the live window 3/4 consumed. Any replica could propose one safely —
// the leader restriction just avoids duelling snapshots.
func (r *Replica) maybeSnapshot() {
	cfg := r.cp.g.Cfg
	if !cfg.Compact || r.snapPending || r.leader != r.idx {
		return
	}
	if r.applied-r.snapBase < cfg.Slots*3/4 {
		return
	}
	r.snapPending = true
	r.acc.M.Node.Env.Spawn(fmt.Sprintf("consensus.r%d.snap", r.idx), func(fp *des.Proc) {
		if err := r.proposeCmd(fp, Command{Kind: KindSnapshot}); err != nil {
			r.snapPending = false
		}
	})
}

// checkpoint persists the replica's applied state into its snapshot
// segment and advances the recycling watermark past the snapshot
// decree's own slot: blob layout applied(8) | leaseEpoch(4) | leader(4)
// | digest(8). The decree carries no watermark — newBase = slot+1 falls
// out of where it landed, so replicas agree without coordination.
//
// Nothing is erased. A recycled physical slot keeps its old control
// word, value cells, and learned cell; the logical-slot prefix carried
// in every compact-mode value makes all of them inert to the next
// occupant (stale learned/accepted cells read as open, stale promises
// merely start the new occupant's ballots higher). Deliberately so: an
// eager wipe would destroy promises for proposals still in flight at
// the head — the decree that advances the watermark commits *at* the
// head, with its neighbours' phase 2 racing it.
func (r *Replica) checkpoint(p *des.Proc, slot int) {
	cfg := r.cp.g.Cfg
	if r.snapSeg != nil {
		var blob [24]byte
		binary.BigEndian.PutUint64(blob[0:], uint64(slot))
		binary.BigEndian.PutUint32(blob[8:], r.leaseEpoch)
		binary.BigEndian.PutUint32(blob[12:], uint32(int32(r.leader)))
		binary.BigEndian.PutUint64(blob[16:], r.digest)
		r.snapSeg.WriteLocal(p, 0, blob[:])
	}
	r.snapBase = slot + 1
	r.acc.Seg.WriteWord(p, cfg.baseOff(), uint32(r.snapBase))
}

// foldDigest folds b into an FNV-64a running digest.
func foldDigest(d uint64, b []byte) uint64 {
	if d == 0 {
		d = 14695981039346656037
	}
	for _, c := range b {
		d ^= uint64(c)
		d *= 1099511628211
	}
	return d
}

// SnapBase returns the replica's compaction watermark.
func (r *Replica) SnapBase() int { return r.snapBase }

// Digest returns the running digest over applied decrees.
func (r *Replica) Digest() uint64 { return r.digest }

// Checkpoint decodes the replica's snapshot segment: the slot the last
// snapshot decree landed in (-1 if none yet), the lease state, and the
// digest over every decree folded before the snapshot decree itself.
// A nil proc reads the raw bytes with no simulated access cost
// (post-run inspection from tests and harness audits).
func (r *Replica) Checkpoint(p *des.Proc) (slot int, leaseEpoch uint32, leader int, digest uint64) {
	if r.snapSeg == nil || r.snapBase == 0 {
		return -1, 0, -1, 0
	}
	var buf []byte
	if p != nil {
		buf = r.snapSeg.ReadLocal(p, 0, 24)
		defer r.acc.M.Buffers().Put(buf)
	} else {
		buf = r.snapSeg.Bytes()[:24]
	}
	slot = int(binary.BigEndian.Uint64(buf[0:]))
	leaseEpoch = binary.BigEndian.Uint32(buf[8:])
	leader = int(int32(binary.BigEndian.Uint32(buf[12:])))
	digest = binary.BigEndian.Uint64(buf[16:])
	return slot, leaseEpoch, leader, digest
}

// OnApply subscribes fn to every decree this replica applies, in order.
func (r *Replica) OnApply(fn func(p *des.Proc, slot int, cmd Command)) {
	r.onApply = append(r.onApply, fn)
}

// AwaitApplied blocks until the replica has applied at least n decrees.
func (r *Replica) AwaitApplied(p *des.Proc, n int, timeout des.Duration) error {
	env := r.acc.M.Node.Env
	timedOut := false
	if timeout > 0 {
		cancel := env.After(timeout, func() {
			timedOut = true
			r.appliedQ.WakeAll()
		})
		defer cancel()
	}
	for r.applied < n && !timedOut {
		r.appliedQ.Wait(p)
	}
	if r.applied < n {
		return rmem.ErrTimeout
	}
	return nil
}

// Log returns the applied decrees so far (shared backing array;
// callers treat it as read-only).
func (r *Replica) Log() []Command { return r.log }

// AppliedCount returns the replica's apply horizon.
func (r *Replica) AppliedCount() int { return r.applied }

// Idx returns the replica index (also its ballot lane).
func (r *Replica) Idx() int { return r.idx }

// Clerk returns the replica's name-service clerk (may be nil).
func (r *Replica) Clerk() *nameserver.Clerk { return r.ns }

// proposeCmd stamps origin/sequence and drives cmd into the first open
// slot.
func (r *Replica) proposeCmd(p *des.Proc, cmd Command) error {
	cmd.Origin = uint8(r.idx)
	r.seq++
	cmd.Seq = r.seq
	slot, err := r.prop.Commit(p, cmd.Encode())
	if err != nil {
		return err
	}
	r.noteLearn(p, slot)
	return nil
}

// ---------------------------------------------------------------------------
// Leases and re-election.

// watchLeader (re)arms the lease watchdog after a lease decree: every
// replica that is not the leader watches the leader's acceptor heartbeat.
// The watchdog captures the lease epoch it was armed under, so a stale
// verdict against a superseded leader is ignored.
func (r *Replica) watchLeader() {
	if r.leader == r.idx || r.leader < 0 || r.leader >= len(r.cp.reps) {
		return
	}
	cfg := r.cp.g.Cfg
	ep := r.prop.eps[r.leader]
	if ep.imp == nil {
		return // co-located with the leader's acceptor: it dies with us
	}
	epoch := r.leaseEpoch
	m := r.acc.M
	r.wd = rmem.NewWatchdogCfg(m, ep.imp, cfg.hbOff(), rmem.WatchdogConfig{
		Interval: cfg.LeaseInterval,
		Timeout:  m.Node.P.RetryTimeout,
		Grace:    cfg.LeaseGrace,
	}, func(p *des.Proc, err error) { r.leaderDown(p, epoch) })
}

// leaderDown runs on a lease-watchdog verdict: after a rank-staggered
// delay (lower-indexed live replicas go first, so re-election is
// deterministic under a fixed seed), propose the next lease unless
// someone already did. Paxos makes duelling candidacies safe — the log
// picks one.
func (r *Replica) leaderDown(p *des.Proc, epoch uint32) {
	if r.leaseEpoch != epoch {
		return // stale verdict against a superseded lease
	}
	verdictAt := p.Now()
	dead := r.leader
	// The verdict condemned the leader's machine; skip its acceptor for a
	// while so the lease proposal does not stall probing it. If the verdict
	// was wrong the acceptor rejoins quorums when the mute expires.
	if dead >= 0 {
		r.prop.Suspect(dead, des.Duration(100*time.Millisecond))
	}
	rank := 0
	for i := 0; i < r.idx; i++ {
		if i != dead && !r.prop.eps[i].dead {
			rank++
		}
	}
	if rank > 0 {
		p.Sleep(des.Duration(rank) * 1 * time.Millisecond)
	}
	if r.leaseEpoch != epoch {
		r.watchLeader() // a rival already won; just re-arm
		return
	}
	if err := r.proposeCmd(p, Command{Kind: KindLease, Node: r.idx, Epoch: epoch + 1}); err != nil {
		return
	}
	if r.leader == r.idx && r.leaseEpoch == epoch+1 {
		d := p.Now().Sub(verdictAt)
		r.cp.LastElection = d
		r.cp.Elections++
		if tr := r.acc.M.Node.Env.Tracer(); tr != nil {
			tr.Observe("consensus.election", time.Duration(d))
		}
	}
}

// ---------------------------------------------------------------------------
// Clients: external proposers (data-plane machines) with their own lane.

// Client proposes control-plane decrees from a machine that is not a
// replica. It satisfies recovery.VerdictLog and the shard tier's
// control-log hook. Client lanes are *leased* (see lease.go): the client
// renews a beacon while alive, and a crashed client's lane is reclaimed
// by a later TryNewClient once a quorum has watched the beacon stay
// still for laneTTL.
type Client struct {
	cp   *ControlPlane
	prop *Proposer
	rn   *renewer
	seq  uint32
}

// TryNewClient claims a leased ballot lane for a proposer on m: a
// never-used lane when one remains, else the first client lane whose
// owner's beacon a quorum agrees has gone stale. ErrNoFreeLane means
// every client lane has a live, renewing owner.
func (cp *ControlPlane) TryNewClient(p *des.Proc, m *rmem.Manager) (*Client, error) {
	cfg := cp.g.Cfg
	first := len(cp.reps)
	if first >= cfg.Proposers {
		return nil, ErrNoFreeLane
	}
	// The probe lane is provisional: claim decides the real one below.
	pr := NewProposer(p, m, first, cp.g)
	pr.lock(p)
	claimed, tok := -1, uint32(0)
	for claimed < 0 && cp.nextLane < cfg.Proposers {
		lane := cp.nextLane
		t, ok, err := pr.claimLane(p, lane)
		if err != nil {
			pr.unlock()
			return nil, err
		}
		cp.nextLane++
		if ok {
			claimed, tok = lane, t
		}
	}
	if claimed < 0 {
		// Reclaim scan: snapshot every client lane's renew beacon, wait
		// out one TTL, and steal the first lane a quorum confirms stale.
		type sample struct {
			eps  []*endpoint
			vals []uint32
		}
		snaps := make(map[int]sample)
		for lane := first; lane < cfg.Proposers; lane++ {
			eps, vals := pr.readLaneWord(p, cfg.renewOff(lane))
			if len(eps) >= cfg.Quorum() {
				snaps[lane] = sample{eps, vals}
			}
		}
		p.Sleep(des.Duration(laneTTL))
		for lane := first; lane < cfg.Proposers && claimed < 0; lane++ {
			s, ok := snaps[lane]
			if !ok {
				continue
			}
			unchanged := 0
			for i, ep := range s.eps {
				v, err := pr.readWordAt(p, ep, cfg.renewOff(lane))
				if err == nil && v == s.vals[i] {
					unchanged++
				}
			}
			if unchanged < cfg.Quorum() {
				continue // a live owner moved the beacon — never steal
			}
			t, won, err := pr.claimLane(p, lane)
			if err == nil && won {
				claimed, tok = lane, t
			}
		}
		if claimed < 0 {
			pr.unlock()
			return nil, ErrNoFreeLane
		}
	}
	pr.lane = claimed
	pr.leased = true
	pr.tok = tok
	if err := pr.reserveRange(p, 0); err != nil {
		pr.unlock()
		return nil, err
	}
	pr.unlock()
	cl := &Client{cp: cp, prop: pr}
	cl.rn = pr.startRenew(p)
	return cl, nil
}

// NewClient is TryNewClient for callers whose topology guarantees a lane
// exists; it panics where TryNewClient would report the shortage.
func (cp *ControlPlane) NewClient(p *des.Proc, m *rmem.Manager) *Client {
	cl, err := cp.TryNewClient(p, m)
	if err != nil {
		panic("consensus: out of proposer lanes (raise Config.Proposers): " + err.Error())
	}
	return cl
}

// Close releases the client's lane lease: the beacon stops and the claim
// word is handed back, so the next TryNewClient reuses the lane without
// waiting out a TTL. The client must not propose afterwards.
func (cl *Client) Close(p *des.Proc) {
	if cl.rn != nil {
		cl.rn.stop(p, true)
	}
	cl.prop.lost = true
}

// Abandon stops the lease beacon without releasing the claim — exactly
// what a crash looks like on the wire. Tests use it to exercise lane
// reclamation.
func (cl *Client) Abandon() {
	if cl.rn != nil {
		cl.rn.stopped = true
	}
}

// LaneLost reports whether the client observed its lease stolen.
func (cl *Client) LaneLost() bool { return cl.prop.lost }

func (cl *Client) propose(p *des.Proc, cmd Command) error {
	cmd.Origin = uint8(cl.prop.Lane())
	cl.seq++
	cmd.Seq = cl.seq
	_, err := cl.prop.Commit(p, cmd.Encode())
	return err
}

// RegisterName replicates a registry record through the log.
func (cl *Client) RegisterName(p *des.Proc, rec nameserver.Record) error {
	return cl.propose(p, Command{Kind: KindRegister, Rec: rec})
}

// ProposeFence replicates a fencing verdict for peer.
func (cl *Client) ProposeFence(p *des.Proc, peer int) error {
	return cl.propose(p, Command{Kind: KindFence, Node: peer})
}

// ProposeUnfence replicates the end of peer's outage.
func (cl *Client) ProposeUnfence(p *des.Proc, peer int) error {
	return cl.propose(p, Command{Kind: KindUnfence, Node: peer})
}

// ProposeMembership commits a shard-ring epoch bump with its packed ring.
func (cl *Client) ProposeMembership(p *des.Proc, epoch uint32, blob []byte) error {
	return cl.propose(p, Command{Kind: KindMembership, Epoch: epoch, Blob: blob})
}

// Noop drives an empty decree through the log (liveness probes, benches).
func (cl *Client) Noop(p *des.Proc) error {
	return cl.propose(p, Command{Kind: KindNoop})
}

// Proposer exposes the client's underlying proposer (stats, tests).
func (cl *Client) Proposer() *Proposer { return cl.prop }
