package consensus

import (
	"bytes"
	"fmt"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/model"
	"netmem/internal/rmem"
)

// CompactionResult is one compaction soak: a client commits many times
// the slot window's worth of decrees while snapshot decrees recycle the
// log underneath it.
type CompactionResult struct {
	Slots     int    // physical slot window (Config.Slots)
	Commits   int    // decrees the client committed
	Applied   int    // decrees every replica applied (incl. snapshots)
	Snapshots int    // snapshot decrees in the retained suffix
	SnapBase  int    // final compaction watermark
	Digest    uint64 // live log digest on replica 0
	LogsAgree bool   // retained suffixes byte-identical across replicas
	ReplayOK  bool   // checkpoint digest + suffix folds to the live digest
	Window    time.Duration
	Events    uint64
}

// Windows is how many times the log wrapped its physical slot window.
func (r *CompactionResult) Windows() float64 {
	if r.Slots == 0 {
		return 0
	}
	return float64(r.Applied) / float64(r.Slots)
}

// RunCompaction drives a 3-acceptor compacting control plane through
// `commits` decrees over a `slots`-slot window — the long-run leg that
// proves Config.Slots is a working-set size, not a horizon. The replay
// audit rebuilds the digest from the checkpoint plus the retained suffix
// and must land exactly on the live one.
func RunCompaction(slots, commits int, seed int64) (*CompactionResult, error) {
	const nodes = 4
	env := des.NewEnv()
	if seed != 0 {
		env.Seed(seed)
	}
	c := cluster.New(env, &model.Default, nodes)
	mgrs := make([]*rmem.Manager, nodes)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(c.Nodes[i])
	}
	var (
		cp       *ControlPlane
		start    des.Time
		window   time.Duration
		setupErr error
	)
	env.Spawn("compact.soak", func(p *des.Proc) {
		g := NewGroup(p, Config{Slots: slots, Proposers: 5, Compact: true}, mgrs[:3]...)
		cp = NewControlPlane(p, g, nil)
		if setupErr = cp.Start(p); setupErr != nil {
			return
		}
		cl := cp.NewClient(p, mgrs[3])
		start = p.Now()
		for k := 0; k < commits; k++ {
			if setupErr = cl.Noop(p); setupErr != nil {
				setupErr = fmt.Errorf("commit %d: %w", k, setupErr)
				return
			}
		}
		window = time.Duration(p.Now().Sub(start))
	})
	// Scale the horizon with the commit count; a decree commits in ~2-3ms
	// (two one-sided phases over three acceptors), so 5ms per decree only
	// bounds runaways.
	horizon := des.Time(time.Second + time.Duration(commits)*5*time.Millisecond)
	if err := env.RunUntil(horizon); err != nil {
		return nil, err
	}
	if setupErr != nil {
		return nil, setupErr
	}
	if window == 0 {
		return nil, fmt.Errorf("soak incomplete: %d commits did not finish before the %v horizon",
			commits, time.Duration(horizon))
	}

	r0 := cp.Replicas()[0]
	res := &CompactionResult{
		Slots:    slots,
		Commits:  commits,
		Applied:  r0.AppliedCount(),
		SnapBase: r0.SnapBase(),
		Digest:   r0.Digest(),
		Window:   window,
		Events:   env.Events(),
	}

	ref := r0.Log()
	s0, _, _, d0 := r0.Checkpoint(nil)
	res.LogsAgree = true
	for _, r := range cp.Replicas()[1:] {
		if r.AppliedCount() != r0.AppliedCount() || r.SnapBase() != r0.SnapBase() {
			res.LogsAgree = false
			break
		}
		for s, cmd := range r.Log() {
			if !bytes.Equal(cmd.Encode(), ref[s].Encode()) {
				res.LogsAgree = false
				break
			}
		}
	}

	replay := d0
	for _, cmd := range ref[s0:] {
		if cmd.Kind == KindSnapshot {
			res.Snapshots++
		}
		replay = foldDigest(replay, cmd.Encode())
	}
	res.ReplayOK = replay == r0.Digest()
	return res, nil
}
