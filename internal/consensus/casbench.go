package consensus

import (
	"fmt"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/model"
	"netmem/internal/rmem"
)

// CAS-contention micro-benchmark: N clerks hammer one word of one
// acceptor's memory with one-sided compare-and-swap — the primitive the
// whole agreement protocol is built from, at its maximum contention. Each
// clerk must win a fixed number of increments; the final word value proves
// no win was lost or double-counted, and the acceptor's CPU ledger proves
// the machine being fought over burned nothing but kernel interface time
// (rx/reply) — no procedure, control, or client cycles.

// CASBenchConfig selects one contention run.
type CASBenchConfig struct {
	// Clerks is the number of contending machines (default 4).
	Clerks int
	// WinsPerClerk is how many CAS increments each clerk must land
	// (default 200).
	WinsPerClerk int
	// Seed seeds the environment; 0 means des.DefaultSeed.
	Seed int64
}

// CASBenchResult is one measured contention run.
type CASBenchResult struct {
	Clerks       int
	WinsPerClerk int
	Attempts     int64         // CAS operations issued
	Wins         int64         // CAS operations that took
	Window       time.Duration // simulated time for the whole scramble
	PerWin       time.Duration // mean simulated time per successful CAS
	Events       uint64        // simulator events executed
	// AgreementCPU is proc+control+client time on the acceptor node during
	// the scramble — the paper's claim is that this is exactly zero.
	AgreementCPU time.Duration
	// InterfaceCPU is rx+reply time on the acceptor node: the kernel
	// receive path one-sided operations cost, the only thing the acceptor
	// pays.
	InterfaceCPU time.Duration
}

// RunCASBench runs the scramble and self-validates: the contended word
// must end at Clerks*WinsPerClerk and the acceptor must have burned zero
// agreement CPU, or an error is returned instead of a measurement.
func RunCASBench(cfg CASBenchConfig) (*CASBenchResult, error) {
	if cfg.Clerks <= 0 {
		cfg.Clerks = 4
	}
	if cfg.WinsPerClerk <= 0 {
		cfg.WinsPerClerk = 200
	}
	env := des.NewEnv()
	if cfg.Seed != 0 {
		env.Seed(cfg.Seed)
	}
	nodes := cfg.Clerks + 1
	cl := cluster.New(env, &model.Default, nodes)
	mgrs := make([]*rmem.Manager, nodes)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}

	res := &CASBenchResult{Clerks: cfg.Clerks, WinsPerClerk: cfg.WinsPerClerk}
	var word *rmem.Segment
	var start des.Time
	running := 0
	started := false
	var benchErr error
	env.Spawn("casbench.setup", func(p *des.Proc) {
		// The contended word: one exported segment on node 0, CAS+read
		// rights, nobody watching it.
		word = mgrs[0].Export(p, 8)
		word.SetDefaultRights(rmem.RightRead | rmem.RightCAS)
		// Every clerk imports it reliable (retransmitted CASes replay their
		// recorded outcome instead of double-applying) and brings a private
		// scratch segment for read deposits and CAS result flags.
		type clerk struct {
			imp     *rmem.Import
			scratch *rmem.Segment
		}
		clerks := make([]clerk, cfg.Clerks)
		for i := range clerks {
			m := mgrs[i+1]
			clerks[i] = clerk{
				imp:     m.Import(p, 0, word.ID(), word.Gen(), 8),
				scratch: m.Export(p, 8),
			}
			clerks[i].imp.SetReliable(true)
		}
		// Setup exports charged CPU on node 0; measure the scramble alone.
		cl.Nodes[0].ResetCPUAcct()
		start = p.Now()
		running = cfg.Clerks
		started = true
		for i := range clerks {
			c := clerks[i]
			env.Spawn(fmt.Sprintf("casbench.clerk%d", i), func(cp *des.Proc) {
				defer func() { running-- }()
				to := des.Duration(time.Second)
				wins := 0
				for wins < cfg.WinsPerClerk {
					if err := c.imp.Read(cp, 0, 4, c.scratch, 0, to); err != nil {
						benchErr = fmt.Errorf("clerk %d read: %w", i, err)
						return
					}
					old := c.scratch.ReadWord(cp, 0)
					ok, err := c.imp.CAS(cp, 0, old, old+1, c.scratch, 4, to)
					res.Attempts++
					if err != nil {
						benchErr = fmt.Errorf("clerk %d cas: %w", i, err)
						return
					}
					if ok {
						res.Wins++
						wins++
					}
				}
			})
		}
	})
	env.Spawn("casbench.wait", func(p *des.Proc) {
		for !started || running > 0 {
			p.Sleep(50 * time.Microsecond)
		}
		res.Window = time.Duration(p.Now().Sub(start))
	})
	if err := env.RunUntil(des.Time(60 * time.Second)); err != nil {
		return nil, err
	}
	if benchErr != nil {
		return nil, benchErr
	}

	// Self-validation: the word's raw bytes (no simulated access — the run
	// is over) must carry every win exactly once.
	b := word.Bytes()
	got := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	want := uint32(cfg.Clerks * cfg.WinsPerClerk)
	if got != want {
		return nil, fmt.Errorf("consensus: contended word ended at %d, want %d", got, want)
	}
	acct := cl.Nodes[0].CPUAcct
	res.AgreementCPU = time.Duration(acct[cluster.CatProc] + acct[cluster.CatControl] + acct[cluster.CatClient])
	res.InterfaceCPU = time.Duration(acct[cluster.CatRx] + acct[cluster.CatReply])
	if res.AgreementCPU != 0 {
		return nil, fmt.Errorf("consensus: acceptor burned %v agreement CPU, want 0", res.AgreementCPU)
	}
	if res.Wins > 0 {
		res.PerWin = res.Window / time.Duration(res.Wins)
	}
	res.Events = env.Events()
	return res, nil
}
