package consensus

import (
	"testing"

	"netmem/internal/des"
)

// TestCASContentionBench pins the micro-benchmark's invariants at a small
// size: every clerk lands every win exactly once (the contended word ends
// at Clerks×Wins) and the acceptor burns zero agreement CPU — RunCASBench
// returns an error, not a result, when either fails.
func TestCASContentionBench(t *testing.T) {
	res, err := RunCASBench(CASBenchConfig{Clerks: 6, WinsPerClerk: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wins != 300 {
		t.Errorf("wins=%d, want 300", res.Wins)
	}
	if res.Attempts < res.Wins {
		t.Errorf("attempts=%d < wins=%d", res.Attempts, res.Wins)
	}
	if res.AgreementCPU != 0 {
		t.Errorf("agreement CPU %v, want 0", res.AgreementCPU)
	}
	if res.InterfaceCPU <= 0 {
		t.Error("no interface CPU recorded — the scramble did not hit the acceptor")
	}
	if res.Window <= 0 || res.PerWin <= 0 {
		t.Errorf("degenerate timing: window=%v perWin=%v", res.Window, res.PerWin)
	}
}

// BenchmarkCASContention measures simulator wall-clock for the scramble —
// the consensus entry in the repo's gated bench suite.
func BenchmarkCASContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunCASBench(CASBenchConfig{Clerks: 8, WinsPerClerk: 200, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecreeCommit measures the full agreement path: one proposer
// committing decrees back to back on a 3-acceptor group.
func BenchmarkDecreeCommit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRig(b, 1, 3, 1, Config{NoLease: true, Slots: 2048})
		var err error
		r.env.Spawn("bench", func(p *des.Proc) {
			r.await(p)
			pr := NewProposer(p, r.mgrs[3], 3, r.g)
			pr.Notify = false
			for n := 0; n < 1000; n++ {
				if _, err = pr.Commit(p, []byte{byte(n), byte(n >> 8)}); err != nil {
					return
				}
			}
		})
		if e := r.env.Run(); e != nil {
			b.Fatal(e)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}
