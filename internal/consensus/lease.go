package consensus

import (
	"errors"
	"time"

	"netmem/internal/des"
	"netmem/internal/rmem"
)

// Lane leases. Ballot lanes are a finite resource: before this file a
// crashed client leaked its lane forever, so a long campaign with client
// churn eventually panicked out of lanes. Each client lane now carries
// three words on every acceptor (Config.laneOff):
//
//	claim: the owner token, CAS-claimed on a quorum
//	renew: the owner's liveness beacon (token<<16 | counter), rewritten
//	       every laneRenewEvery while the owner lives
//	floor: the ballot-range reservation ceiling
//
// The split matters. Claim and renew are pure *liveness* policy: a thief
// samples renew on a quorum twice, laneTTL apart, and steals the lane
// (claim CAS, quorum of wins) only if no sample moved. A slow-but-alive
// owner can therefore lose its lane — that is detected (the renew daemon
// re-reads claim and flips the owner to ErrLaneLost), never silently
// tolerated. *Safety* — ballot uniqueness across successive owners of
// the same lane — rests on floor alone: every owner proposes only with
// ballots from a range it reserved by CASing floor upward on a quorum
// (reserveRange). Quorum intersection plus the word's CAS monotonicity
// make successive reservations disjoint, so even a deposed owner that
// keeps running cannot reuse a ballot its successor might issue. Its
// stale cell deposits can still cost a successor a dropped promise
// (readCell adoption drops stamps below the accepted ballot) — a
// liveness nuisance the learn cell resolves, never an agreement fault.
const (
	laneRenewEvery = 500 * time.Microsecond // owner beacon cadence
	laneTTL        = 5 * time.Millisecond   // thief's stale threshold
	laneSpan       = 1024                   // ballots per floor reservation
	maxBallotCeil  = 0xff00                 // 16-bit ballot headroom guard
	leaseAttempts  = 8                      // claim/reserve retry budget
)

var errBallotsExhausted = errors.New("consensus: lane ballot space exhausted")

// reserveRange reserves a fresh ballot range for the proposer's lane:
// [minB, ceilB) with ceilB = start + laneSpan, where start is at least
// atLeast and at least every floor value read. The reservation holds once
// a quorum of floor CASes (read value -> ceil) succeed. Called under the
// proposer lock.
func (pr *Proposer) reserveRange(p *des.Proc, atLeast int) error {
	cfg := pr.g.Cfg
	off := cfg.floorOff(pr.lane)
	type rd struct {
		ep *endpoint
		v  uint32
	}
	for attempt := 0; attempt < leaseAttempts; attempt++ {
		start := atLeast
		if pr.ceilB > start {
			start = pr.ceilB
		}
		now := pr.m.Node.Env.Now()
		var reads []rd
		for _, ep := range pr.eps {
			if !ep.usable(now) {
				continue
			}
			v, err := pr.readWordAt(p, ep, off)
			if err != nil {
				pr.noteErr(ep, err)
				continue
			}
			if int(v) > start {
				start = int(v)
			}
			reads = append(reads, rd{ep, v})
		}
		if len(reads) < cfg.Quorum() {
			return ErrNoQuorum
		}
		ceil := start + laneSpan
		if ceil > maxBallotCeil {
			return errBallotsExhausted
		}
		wins := 0
		for _, r := range reads {
			ok, err := pr.casWordAt(p, r.ep, off, r.v, uint32(ceil))
			if err != nil {
				pr.noteErr(r.ep, err)
				continue
			}
			if ok {
				wins++
			}
		}
		if wins >= cfg.Quorum() {
			pr.minB, pr.ceilB = start, ceil
			return nil
		}
		// Raced by another claimant; its CASes raised the floor we will
		// re-read. A lost attempt burns at most laneSpan of ballot space
		// on the acceptors we did win.
	}
	return ErrNoQuorum
}

// readLaneWord reads one lane-table word from every usable acceptor,
// returning per-endpoint values. Called under the proposer lock.
func (pr *Proposer) readLaneWord(p *des.Proc, off int) (eps []*endpoint, vals []uint32) {
	now := pr.m.Node.Env.Now()
	for _, ep := range pr.eps {
		if !ep.usable(now) {
			continue
		}
		v, err := pr.readWordAt(p, ep, off)
		if err != nil {
			pr.noteErr(ep, err)
			continue
		}
		eps = append(eps, ep)
		vals = append(vals, v)
	}
	return eps, vals
}

// claimLane tries to take ownership of lane: read the claim word on every
// usable acceptor, pick token = max+1, and CAS each observed value to the
// token. Ownership requires a quorum of CAS wins (two racing claimants
// intersect on some acceptor, where only one CAS from the shared observed
// value can succeed). Called under the proposer lock.
func (pr *Proposer) claimLane(p *des.Proc, lane int) (uint32, bool, error) {
	cfg := pr.g.Cfg
	off := cfg.claimOff(lane)
	eps, vals := pr.readLaneWord(p, off)
	if len(eps) < cfg.Quorum() {
		return 0, false, ErrNoQuorum
	}
	var tok uint32 = 1
	for _, v := range vals {
		if v >= tok {
			tok = v + 1
		}
	}
	wins := 0
	for i, ep := range eps {
		ok, err := pr.casWordAt(p, ep, off, vals[i], tok)
		if err != nil {
			pr.noteErr(ep, err)
			continue
		}
		if ok {
			wins++
		}
	}
	return tok, wins >= cfg.Quorum(), nil
}

// renewer is a leased client's beacon daemon: it rewrites the lane's
// renew word on every acceptor each laneRenewEvery and re-reads the claim
// word to detect theft. It owns private imports and scratch so it never
// contends with the proposer's in-flight operation.
type renewer struct {
	pr      *Proposer
	lane    int
	imps    []*rmem.Import  // one per remote acceptor (nil when dropped)
	segs    []*rmem.Segment // co-located fast path
	scratch *rmem.Segment
	counter uint32
	stopped bool
}

// startRenew wires the beacon daemon for the proposer's claimed lane.
func (pr *Proposer) startRenew(p *des.Proc) *renewer {
	rn := &renewer{pr: pr, lane: pr.lane}
	rn.scratch = pr.m.Export(p, 8)
	for _, a := range pr.g.Accs {
		if a.M == pr.m {
			rn.segs = append(rn.segs, a.Seg)
			rn.imps = append(rn.imps, nil)
			continue
		}
		imp := pr.m.Import(p, a.Node(), a.Seg.ID(), a.Seg.Gen(), a.Seg.Size())
		imp.SetReliable(true)
		imp.SetFence(true)
		imp.SetEpoch(a.Epoch)
		rn.segs = append(rn.segs, nil)
		rn.imps = append(rn.imps, imp)
	}
	pr.m.Node.Env.SpawnDaemon("consensus.renew", rn.run)
	return rn
}

func (rn *renewer) run(p *des.Proc) {
	pr := rn.pr
	cfg := pr.g.Cfg
	renewOff := cfg.renewOff(rn.lane)
	claimOff := cfg.claimOff(rn.lane)
	var buf [4]byte
	for !rn.stopped && !pr.lost {
		p.Sleep(des.Duration(laneRenewEvery))
		if rn.stopped || pr.lost {
			return
		}
		rn.counter++
		w := pr.tok<<16 | (rn.counter & 0xffff)
		putbe32(buf[:], w)
		sawClaim := false
		for i := range rn.segs {
			if rn.segs[i] != nil {
				rn.segs[i].WriteLocal(p, renewOff, buf[:])
				if !sawClaim {
					if rn.segs[i].ReadWord(p, claimOff) != pr.tok {
						pr.lost = true
					}
					sawClaim = true
				}
				continue
			}
			imp := rn.imps[i]
			if imp == nil {
				continue
			}
			if err := imp.WriteBlock(p, renewOff, buf[:], false); err != nil {
				if errors.Is(err, rmem.ErrStaleGeneration) {
					rn.imps[i] = nil // restarted acceptor: out for good
				}
				continue
			}
			if !sawClaim {
				if err := imp.Read(p, claimOff, 4, rn.scratch, 0, pr.opTO); err == nil {
					if rn.scratch.ReadWord(p, 0) != pr.tok {
						pr.lost = true
					}
					sawClaim = true
				}
			}
		}
	}
}

// stop ends the beacon. With release, the claim word is handed back
// (CAS token -> 0 on every acceptor) so the lane is immediately free;
// without, the lane looks crashed and frees only after laneTTL.
func (rn *renewer) stop(p *des.Proc, release bool) {
	if rn.stopped {
		return
	}
	rn.stopped = true
	if !release {
		return
	}
	pr := rn.pr
	off := pr.g.Cfg.claimOff(rn.lane)
	for i := range rn.segs {
		if rn.segs[i] != nil {
			rn.segs[i].CASLocal(p, off, pr.tok, 0)
			continue
		}
		if imp := rn.imps[i]; imp != nil {
			imp.CAS(p, off, pr.tok, 0, rn.scratch, 4, pr.opTO)
		}
	}
}
