package consensus

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"netmem/internal/des"
	"netmem/internal/rmem"
)

// Proposer drives the agreement protocol for one ballot lane against a
// group's acceptors, using only one-sided operations: READ to observe a
// slot's control word, CAS to promise and accept, WRITE to deposit value
// cells and learn results. An acceptor co-located with the proposer is
// reached through the timed local-access path instead of the network —
// §3.1.2's local/remote atomicity makes the two interchangeable.
//
// A Proposer serves one simulated process at a time (its scratch segment
// and ballot bookkeeping are per-client state); ControlPlane hands every
// client its own lane.
type Proposer struct {
	m       *rmem.Manager
	g       *Group
	lane    int
	eps     []*endpoint
	scratch *rmem.Segment
	opTO    des.Duration

	lastB map[int]Ballot // per-slot ballot floor: stamps per cell stay monotone
	next  int            // first slot not known chosen (allocation hint)
	base  int            // cached compaction watermark (compact mode only)

	// Lane-lease state (leased client lanes only; see lease.go). minB/
	// ceilB bound the quorum-reserved ballot range this owner may use;
	// lost flips when the lease is observed stolen.
	leased bool
	tok    uint32
	lost   bool
	minB   int
	ceilB  int

	// Notify controls whether learn writes carry the notify bit (the
	// commit-time control transfer that wakes co-located replicas).
	// Pure-agreement rigs with no replicas attached turn it off to
	// measure the acceptor-side cost of agreement alone.
	Notify bool

	busy bool
	q    *des.WaitQueue

	// Stats.
	Prepares    int64 // phase-1 rounds issued
	Accepts     int64 // phase-2 rounds issued
	CASRetries  int64 // control-word CAS races retried
	Conflicts   int64 // proposals that adopted another proposer's value
	ChosenSlots int64 // slots this proposer drove to a learn
}

// endpoint is one acceptor as seen from this proposer: either a fenced,
// reliable import or the local segment fast path.
type endpoint struct {
	acc   *Acceptor
	imp   *rmem.Import  // nil when local
	seg   *rmem.Segment // non-nil when co-located
	dead  bool          // restarted (amnesiac) — out for the rest of the run
	mute  des.Time      // suspected until (timeout backoff)
	fails int           // consecutive op failures (drives the mute backoff)
}

const (
	casRetry    = 8  // control-word CAS races retried before treating as rejection
	maxRounds   = 64 // ballot rounds before ErrNoQuorum
	backoffBase = 20 * time.Microsecond
	backoffMax  = 2 * time.Millisecond
	laneStagger = 7 * time.Microsecond
	suspendFor  = 1 * time.Millisecond  // first mute after a timeout; doubles per failure
	suspendMax  = 64 * time.Millisecond // mute backoff ceiling
	opAttempts  = 16                    // per-op timeout, in units of RetryTimeout
)

// NewProposer wires lane's proposer on m's machine to every acceptor in
// g. Remote acceptors are imported reliable (the at-most-once layer's
// acked writes give per-cell stamp monotonicity) and fenced with the
// acceptor's incarnation, so a restarted acceptor answers
// ErrStaleGeneration instead of voting from wiped state.
func NewProposer(p *des.Proc, m *rmem.Manager, lane int, g *Group) *Proposer {
	if lane < 0 || lane >= g.Cfg.Proposers {
		panic(fmt.Sprintf("consensus: lane %d out of range", lane))
	}
	pr := &Proposer{
		m: m, g: g, lane: lane,
		// Per-op deadline: a handful of retransmission rounds, NOT the full
		// reliable-layer ladder (~100ms against a dead machine). One-sided
		// reads and CASes are safe to abandon — the proposer re-reads state
		// every round — so a short deadline plus the mute backoff below is
		// what keeps a crashed acceptor from serializing every proposal.
		opTO:   opAttempts * des.Duration(m.Node.P.RetryTimeout),
		lastB:  make(map[int]Ballot),
		q:      des.NewWaitQueue(m.Node.Env),
		Notify: true,
	}
	pr.scratch = m.Export(p, 8+g.Cfg.cellSize())
	for _, a := range g.Accs {
		ep := &endpoint{acc: a}
		if a.M == m {
			ep.seg = a.Seg
		} else {
			ep.imp = m.Import(p, a.Node(), a.Seg.ID(), a.Seg.Gen(), a.Seg.Size())
			ep.imp.SetReliable(true)
			ep.imp.SetFence(true)
			ep.imp.SetEpoch(a.Epoch)
		}
		pr.eps = append(pr.eps, ep)
	}
	return pr
}

// Lane returns the proposer's ballot lane.
func (pr *Proposer) Lane() int { return pr.lane }

// lock/unlock serialize interleaved simulated processes over the scratch
// segment.
func (pr *Proposer) lock(p *des.Proc) {
	for pr.busy {
		pr.q.Wait(p)
	}
	pr.busy = true
}

func (pr *Proposer) unlock() {
	pr.busy = false
	pr.q.WakeAll()
}

// noteErr classifies an acceptor error: a stale-generation NAK means the
// machine restarted and its promises are gone — it is dead to the group
// for the rest of the run (Config.Quorum documents why). Anything else is
// a timeout-ish fault; mute the endpoint with exponential backoff so a
// crashed (but not restarted) acceptor costs each proposer one short
// stall, not one per round.
func (pr *Proposer) noteErr(ep *endpoint, err error) {
	if errors.Is(err, rmem.ErrStaleGeneration) {
		ep.dead = true
		return
	}
	ep.fails++
	d := suspendFor << uint(min(ep.fails-1, 10))
	if d > suspendMax {
		d = suspendMax
	}
	ep.mute = pr.m.Node.Env.Now().Add(des.Duration(d))
}

// noteOK clears the endpoint's failure streak after any successful op.
func (ep *endpoint) noteOK() { ep.fails = 0 }

// Suspect mutes acceptor index i for d without waiting for an op to time
// out. Lease watchdog verdicts feed it so an election proposal never
// stalls probing the very machine the verdict just condemned.
func (pr *Proposer) Suspect(i int, d des.Duration) {
	if i < 0 || i >= len(pr.eps) {
		return
	}
	until := pr.m.Node.Env.Now().Add(d)
	if until > pr.eps[i].mute {
		pr.eps[i].mute = until
	}
}

func (ep *endpoint) usable(now des.Time) bool { return !ep.dead && now >= ep.mute }

// One-sided primitive wrappers. Offsets into scratch: word 0 = read
// deposit, word 1 = CAS result flag, bytes 8.. = cell deposit.

func (pr *Proposer) readWordAt(p *des.Proc, ep *endpoint, off int) (uint32, error) {
	if ep.seg != nil {
		return ep.seg.ReadWord(p, off), nil
	}
	if err := ep.imp.Read(p, off, 4, pr.scratch, 0, pr.opTO); err != nil {
		return 0, err
	}
	ep.noteOK()
	return pr.scratch.ReadWord(p, 0), nil
}

func (pr *Proposer) casWordAt(p *des.Proc, ep *endpoint, off int, old, new uint32) (bool, error) {
	if ep.seg != nil {
		return ep.seg.CASLocal(p, off, old, new), nil
	}
	ok, err := ep.imp.CAS(p, off, old, new, pr.scratch, 4, pr.opTO)
	if err == nil {
		ep.noteOK()
	}
	return ok, err
}

func (pr *Proposer) readCtl(p *des.Proc, ep *endpoint, slot int) (uint32, error) {
	return pr.readWordAt(p, ep, pr.g.Cfg.ctlOff(slot))
}

func (pr *Proposer) casCtl(p *des.Proc, ep *endpoint, slot int, old, new uint32) (bool, error) {
	return pr.casWordAt(p, ep, pr.g.Cfg.ctlOff(slot), old, new)
}

func (pr *Proposer) readCell(p *des.Proc, ep *endpoint, off int) (Ballot, []byte, error) {
	n := pr.g.Cfg.cellSize()
	if ep.seg != nil {
		buf := ep.seg.ReadLocal(p, off, n)
		defer pr.m.Buffers().Put(buf)
		out := make([]byte, pr.g.Cfg.Payload)
		copy(out, buf[4:])
		return Ballot(be32(buf)), out, nil
	}
	if err := ep.imp.Read(p, off, n, pr.scratch, 8, pr.opTO); err != nil {
		return 0, nil, err
	}
	ep.noteOK()
	buf := pr.scratch.Bytes()[8 : 8+n]
	out := make([]byte, pr.g.Cfg.Payload)
	copy(out, buf[4:])
	return Ballot(be32(buf)), out, nil
}

// writeCell deposits a stamped value. The write is frame-atomic (stamp
// and payload land together) and, on reliable imports, acknowledged —
// the proposer never issues a higher stamp for a cell before the lower
// one is applied or given up on, which keeps stamps monotone per cell.
func (pr *Proposer) writeCell(p *des.Proc, ep *endpoint, off int, b Ballot, val []byte, notify bool) error {
	buf := make([]byte, pr.g.Cfg.cellSize())
	putbe32(buf, uint32(b))
	copy(buf[4:], val)
	if ep.seg != nil {
		ep.seg.WriteLocal(p, off, buf)
		return nil
	}
	if err := ep.imp.WriteBlock(p, off, buf, notify); err != nil {
		return err
	}
	ep.noteOK()
	return nil
}

// Propose runs the full protocol for slot with val as the candidate and
// returns the value actually chosen there (padded to Config.Payload) —
// which is val's padding unless some other proposal got there first. It
// is safe to call concurrently from many proposers on many machines; at
// most one value is ever chosen per slot.
func (pr *Proposer) Propose(p *des.Proc, slot int, val []byte) ([]byte, error) {
	cfg := pr.g.Cfg
	if len(val) > cfg.MaxValue() {
		return nil, ErrValueTooLarge
	}
	if slot < 0 || (!cfg.Compact && slot >= cfg.Slots) {
		return nil, ErrLogFull
	}
	mine := make([]byte, cfg.Payload)
	if cfg.Compact {
		// The logical-slot prefix travels inside the value, so a cell
		// surviving from this physical slot's previous occupant is never
		// mistaken for slot's decree after the window wraps.
		putbe32(mine, uint32(slot))
		copy(mine[4:], val)
	} else {
		copy(mine, val)
	}

	pr.lock(p)
	defer pr.unlock()
	if pr.lost {
		return nil, ErrLaneLost
	}
	if cfg.Compact {
		if slot < pr.base {
			return nil, ErrCompacted
		}
		if slot >= pr.base+cfg.Slots {
			if err := pr.refreshBase(p); err != nil {
				return nil, err
			}
			if slot < pr.base {
				return nil, ErrCompacted
			}
			if slot >= pr.base+cfg.Slots {
				return nil, ErrLogFull
			}
		}
	}

	b, err := pr.ballotAfter(p, pr.lastB[slot])
	if err != nil {
		return nil, err
	}
	for round := 0; round < maxRounds; round++ {
		if v, ok := pr.readChosen(p, slot); ok {
			pr.observeChosen(slot)
			return v, nil
		}
		pr.lastB[slot] = b
		now := pr.m.Node.Env.Now()

		// Phase 1: promise on a quorum, learning the highest accepted
		// value along the way.
		pr.Prepares++
		var (
			promised  []*endpoint
			maxSeen   = b
			bestStamp Ballot
			bestVal   = mine
		)
		for _, ep := range pr.eps {
			if !ep.usable(now) {
				continue
			}
			prom, acc, ok := pr.promiseOne(p, ep, slot, b)
			if !ok {
				if prom > maxSeen {
					maxSeen = prom
				}
				continue
			}
			if acc != 0 {
				// Someone's value may already be accepted here: read its
				// owner's cell on this acceptor. The cell's single writer
				// stamps monotonically and wrote before the accept-CAS, so
				// stamp >= acc and the value is safe at that stamp. If the
				// read fails or the invariant is broken, drop this promise
				// rather than risk ignoring a chosen value.
				stamp, v, err := pr.readCell(p, ep, cfg.cellOff(slot, cfg.LaneOf(acc)))
				if err != nil || stamp < acc {
					if err != nil {
						pr.noteErr(ep, err)
					}
					continue
				}
				if cfg.Compact && be32(v) != uint32(slot) {
					// Stale cell from the physical slot's previous
					// occupant: that decree is below the watermark,
					// already applied everywhere. Keep the promise, adopt
					// nothing.
					promised = append(promised, ep)
					continue
				}
				if stamp > bestStamp {
					bestStamp, bestVal = stamp, v
				}
			}
			promised = append(promised, ep)
		}
		if len(promised) < cfg.Quorum() {
			if b, err = pr.backoff(p, slot, round, maxSeen); err != nil {
				return nil, err
			}
			continue
		}
		if bestStamp > 0 && !bytes.Equal(bestVal, mine) {
			pr.Conflicts++
		}

		// Phase 2: deposit our stamped cell, then flip the control word to
		// accepted — on every acceptor that promised b.
		pr.Accepts++
		accepts := 0
		for _, ep := range promised {
			if pr.acceptOne(p, ep, slot, b, bestVal) {
				accepts++
			}
		}
		if accepts >= cfg.Quorum() {
			pr.learn(p, slot, b, bestVal)
			pr.ChosenSlots++
			pr.observeChosen(slot)
			return pr.userVal(bestVal), nil
		}
		if b, err = pr.backoff(p, slot, round, maxSeen); err != nil {
			return nil, err
		}
	}
	return nil, ErrNoQuorum
}

// userVal strips the compact-mode logical-slot prefix from a full-payload
// cell value, returning what the caller proposed.
func (pr *Proposer) userVal(v []byte) []byte {
	if pr.g.Cfg.Compact {
		return v[4:]
	}
	return v
}

// promiseOne runs the phase-1 CAS loop on one acceptor: bump the promised
// half of the control word to b, preserving the accepted half, retrying
// lost races against concurrent CASes. Returns the highest promise
// observed, the accepted ballot under our promise, and whether the
// promise took.
func (pr *Proposer) promiseOne(p *des.Proc, ep *endpoint, slot int, b Ballot) (Ballot, Ballot, bool) {
	for try := 0; try < casRetry; try++ {
		ctl, err := pr.readCtl(p, ep, slot)
		if err != nil {
			pr.noteErr(ep, err)
			return 0, 0, false
		}
		prom, acc := unpackCtl(ctl)
		if prom >= b {
			return prom, acc, false
		}
		ok, err := pr.casCtl(p, ep, slot, ctl, packCtl(b, acc))
		if err != nil {
			pr.noteErr(ep, err)
			return prom, acc, false
		}
		if ok {
			return b, acc, true
		}
		pr.CASRetries++
	}
	return 0, 0, false
}

// acceptOne deposits (b, val) in our cell on ep, then CASes the control
// word to promised=accepted=b. Paxos accepts any ballot >= the current
// promise, so races that moved the promise below b are retried; a promise
// above b is a rejection.
func (pr *Proposer) acceptOne(p *des.Proc, ep *endpoint, slot int, b Ballot, val []byte) bool {
	cfg := pr.g.Cfg
	if err := pr.writeCell(p, ep, cfg.cellOff(slot, pr.lane), b, val, false); err != nil {
		pr.noteErr(ep, err)
		return false
	}
	for try := 0; try < casRetry; try++ {
		ctl, err := pr.readCtl(p, ep, slot)
		if err != nil {
			pr.noteErr(ep, err)
			return false
		}
		prom, _ := unpackCtl(ctl)
		if prom > b {
			return false
		}
		ok, err := pr.casCtl(p, ep, slot, ctl, packCtl(b, b))
		if err != nil {
			pr.noteErr(ep, err)
			return false
		}
		if ok {
			return true
		}
		pr.CASRetries++
	}
	return false
}

// learn broadcasts the chosen value into every reachable acceptor's
// learned cell. This is the one place control transfer appears: the learn
// write carries the notify bit, waking the co-located replica to apply
// the decree — the agreement path itself woke nobody. Racing learners
// write byte-identical cells, so last-writer-wins is harmless.
func (pr *Proposer) learn(p *des.Proc, slot int, b Ballot, val []byte) {
	cfg := pr.g.Cfg
	now := pr.m.Node.Env.Now()
	for _, ep := range pr.eps {
		if !ep.usable(now) {
			continue
		}
		if ep.seg != nil {
			if err := pr.writeCell(p, ep, cfg.learnedOff(slot), b, val, false); err == nil {
				if fn := ep.acc.onLearn; fn != nil {
					fn(p, slot)
				}
			}
			continue
		}
		if err := pr.writeCell(p, ep, cfg.learnedOff(slot), b, val, pr.Notify); err != nil {
			pr.noteErr(ep, err)
		}
	}
}

// nearest picks the closest usable acceptor: the co-located segment when
// there is one, else the first unmuted import.
func (pr *Proposer) nearest() *endpoint {
	now := pr.m.Node.Env.Now()
	var pick *endpoint
	for _, ep := range pr.eps {
		if !ep.usable(now) {
			continue
		}
		if ep.seg != nil {
			return ep
		}
		if pick == nil {
			pick = ep
		}
	}
	return pick
}

// readChosen checks slot's learned cell on the nearest usable acceptor.
func (pr *Proposer) readChosen(p *des.Proc, slot int) ([]byte, bool) {
	pick := pr.nearest()
	if pick == nil {
		return nil, false
	}
	stamp, v, err := pr.readCell(p, pick, pr.g.Cfg.learnedOff(slot))
	if err != nil {
		pr.noteErr(pick, err)
		return nil, false
	}
	if stamp == 0 {
		return nil, false
	}
	if pr.g.Cfg.Compact && be32(v) != uint32(slot) {
		return nil, false
	}
	return pr.userVal(v), true
}

// refreshBase re-reads the compaction watermark from the nearest usable
// acceptor. The watermark only rises; a stale-low read is safe — phase-1
// adoption re-chooses the original value for any recycled-but-still-
// visible slot, and the cell prefix keeps recycled physical slots from
// lying about their logical identity. The one hazard compaction cannot
// survive is a proposer lagging a full window (Slots logical slots)
// behind the head while holding a stale base: its deposits would target
// physical slots already recycled for new occupants. The snapshot
// trigger fires at 3/4 of the window, so a live proposer would have to
// sit out Slots/4 committed decrees mid-operation to get there.
func (pr *Proposer) refreshBase(p *des.Proc) error {
	pick := pr.nearest()
	if pick == nil {
		return ErrNoQuorum
	}
	w, err := pr.readWordAt(p, pick, pr.g.Cfg.baseOff())
	if err != nil {
		pr.noteErr(pick, err)
		return err
	}
	if int(w) > pr.base {
		pr.base = int(w)
	}
	return nil
}

func (pr *Proposer) observeChosen(slot int) {
	if slot >= pr.next {
		pr.next = slot + 1
	}
}

// ballotAfter picks the lane's next ballot strictly above after,
// respecting the quorum-reserved range on leased lanes (reserving a
// fresh range when the current one is spent).
func (pr *Proposer) ballotAfter(p *des.Proc, after Ballot) (Ballot, error) {
	a := int(after)
	if pr.leased && a < pr.minB-1 {
		a = pr.minB - 1
	}
	b := pr.g.Cfg.nextBallot(pr.lane, Ballot(a))
	if pr.leased && int(b) >= pr.ceilB {
		if err := pr.reserveRange(p, int(b)); err != nil {
			return 0, err
		}
		b = pr.g.Cfg.nextBallot(pr.lane, Ballot(pr.minB-1))
	}
	return b, nil
}

// backoff sleeps a deterministic, lane-staggered, capped-exponential
// delay before the next ballot round — enough asymmetry to break
// duelling-proposer livelock without a random source.
func (pr *Proposer) backoff(p *des.Proc, slot, round int, maxSeen Ballot) (Ballot, error) {
	d := backoffBase << uint(min(round, 6))
	if d > backoffMax {
		d = backoffMax
	}
	p.Sleep(d + des.Duration(pr.lane)*laneStagger)
	if floor := pr.lastB[slot]; maxSeen < floor {
		maxSeen = floor
	}
	return pr.ballotAfter(p, maxSeen)
}

// Commit finds the first open slot at or after the proposer's hint and
// drives val into it, skipping slots other commands won. Returns the slot
// chosen for val. In compact mode the log has no horizon: slots that fell
// below the watermark mid-scan are skipped, and ErrLogFull means only
// that the live window is full (the appliers are a full window behind).
func (pr *Proposer) Commit(p *des.Proc, val []byte) (int, error) {
	cfg := pr.g.Cfg
	mine := make([]byte, cfg.MaxValue())
	copy(mine, val)
	for slot := pr.next; !cfg.Compact && slot < cfg.Slots || cfg.Compact; slot++ {
		if cfg.Compact && slot < pr.base {
			slot = pr.base
		}
		chosen, err := pr.Propose(p, slot, val)
		if cfg.Compact && errors.Is(err, ErrCompacted) {
			continue
		}
		if err != nil {
			return -1, err
		}
		if bytes.Equal(chosen, mine) {
			return slot, nil
		}
	}
	return -1, ErrLogFull
}
