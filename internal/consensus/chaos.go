package consensus

import (
	"bytes"
	"fmt"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/faults"
	"netmem/internal/fstore"
	"netmem/internal/model"
	"netmem/internal/nameserver"
	"netmem/internal/obs"
	"netmem/internal/rmem"
)

// Control-plane chaos harness: the Figure 2 operation mix runs on a data
// plane (one file server, one clerk) while a replicated control plane —
// three acceptor/replica machines carrying the name registry — commits a
// steady decree stream, and the campaign kills a control-plane machine
// mid-run. The single-server and sharded harnesses measure what a DATA
// outage costs; this one measures the opposite guarantee: the data plane
// never stalls when the CONTROL plane degrades, the survivors re-elect a
// leaseholder deterministically, and the log keeps committing on a
// majority of the original acceptor set.

// ChaosConfig selects one control-plane chaos run.
type ChaosConfig struct {
	// Campaign is the fault schedule. Control replicas run on nodes 0..2
	// and replica 0 holds the initial lease, so the stock "leadercrash"
	// campaign (crash node 0 at 202ms, no restart) kills the leader.
	Campaign faults.Campaign
	// Seed seeds the simulation environment; 0 means des.DefaultSeed.
	Seed int64
	// Mode is the file-service structure (DX for the paper's proposal).
	Mode dfs.Mode
}

// ChaosResult is one full control-plane chaos run.
type ChaosResult struct {
	Campaign string
	Seed     int64
	Mode     dfs.Mode

	// Data plane: the Figure 2 mix, byte-verified.
	Ops       []dfs.ChaosOpResult
	Completed int
	Replays   int64
	Retries   int64
	Giveups   int64

	// Control plane.
	Replicas        int
	LeaderBefore    int           // lease holder entering the mix
	LeaderAfter     int           // lease holder after the campaign
	Elections       int64         // completed re-elections
	ElectionLatency time.Duration // watchdog verdict → lease applied
	Decrees         int           // decrees applied by every surviving replica
	DriverCommits   int           // registry decrees the driver committed
	DriverErrors    int           // driver proposals that failed
	DecreesPerSec   float64       // driver commit rate under the campaign
	SteadyPerSec    float64       // driver commit rate in the fault-free leg
	LogsAgree       bool          // surviving replica logs byte-identical
	RegistryOK      bool          // replicated registry converged on survivors

	// AcceptorCPU is the per-category CPU burned on the surviving
	// control-plane machines during the measured window. The agreement
	// path itself is one-sided — proc/control/client time here comes from
	// the replicas applying decrees and heartbeating leases, not from
	// prepare/accept handling (see BenchmarkCASContention for the
	// pure-agreement measurement).
	AcceptorCPU map[string]time.Duration

	Injected []string
	Events   uint64
	Window   time.Duration
	Metrics  obs.Snapshot
}

// Goodput is the fraction of the mix that completed byte-correct.
func (r *ChaosResult) Goodput() float64 {
	if len(r.Ops) == 0 {
		return 0
	}
	return float64(r.Completed) / float64(len(r.Ops))
}

// Rig geometry: control replicas on nodes 0..2, the file server on node
// 3, the clerk (and the control-plane driver) on node 4.
const (
	chaosReplicas   = 3
	chaosServerNode = 3
	chaosClerkNode  = 4
	chaosNodes      = 5
)

// driverPeriod is the decree cadence of the control-plane driver.
const driverPeriod = 250 * time.Microsecond

// RunChaos measures the mix twice — fault-free baseline, then under the
// campaign — on identical topologies (control plane up and committing in
// both legs, so the background traffic matches).
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	base, err := runChaosMix(nil, cfg.Seed, cfg.Mode)
	if err != nil {
		return nil, fmt.Errorf("consensus: chaos baseline: %w", err)
	}
	leg, err := runChaosMix(&cfg.Campaign, cfg.Seed, cfg.Mode)
	if err != nil {
		return nil, fmt.Errorf("consensus: chaos run: %w", err)
	}
	res := &ChaosResult{
		Campaign:        cfg.Campaign.Name,
		Seed:            leg.eng.Seed(),
		Mode:            cfg.Mode,
		Replays:         leg.replays,
		Replicas:        chaosReplicas,
		LeaderBefore:    leg.leaderBefore,
		LeaderAfter:     leg.leaderAfter,
		Elections:       leg.cp.Elections,
		ElectionLatency: time.Duration(leg.cp.LastElection),
		Decrees:         leg.decrees,
		DriverCommits:   leg.commits,
		DriverErrors:    leg.driverErrs,
		LogsAgree:       leg.logsAgree,
		RegistryOK:      leg.registryOK,
		AcceptorCPU:     leg.acceptorCPU,
		Injected:        leg.eng.Counts(),
		Events:          leg.events,
		Window:          leg.window,
		Metrics:         leg.tr.Snapshot(),
	}
	res.Retries = res.Metrics.Counter("reliable.retries")
	res.Giveups = res.Metrics.Counter("reliable.giveup")
	if leg.driverWindow > 0 {
		res.DecreesPerSec = float64(leg.commits) / leg.driverWindow.Seconds()
	}
	if base.driverWindow > 0 {
		res.SteadyPerSec = float64(base.commits) / base.driverWindow.Seconds()
	}
	for i, op := range leg.ops {
		op.Baseline = base.ops[i].Chaos
		res.Ops = append(res.Ops, op)
		if op.OK {
			res.Completed++
		}
	}
	return res, nil
}

// cpChaosLeg is one measured leg.
type cpChaosLeg struct {
	ops          []dfs.ChaosOpResult
	tr           *obs.Tracer
	eng          *faults.Engine
	cp           *ControlPlane
	window       time.Duration
	events       uint64
	replays      int64
	leaderBefore int
	leaderAfter  int
	commits      int
	driverErrs   int
	driverWindow time.Duration
	decrees      int
	logsAgree    bool
	registryOK   bool
	acceptorCPU  map[string]time.Duration
	auditErr     error
}

// cpChaosRig is the data plane under test plus the warm tree handles.
type cpChaosRig struct {
	srv   *dfs.Server
	clerk *dfs.Clerk
	file  fstore.Handle
	dir   fstore.Handle
	link  fstore.Handle
}

func runChaosMix(camp *faults.Campaign, seed int64, mode dfs.Mode) (*cpChaosLeg, error) {
	env := des.NewEnv()
	if seed != 0 {
		env.Seed(seed)
	}
	tr := obs.New(obs.Config{})
	env.SetTracer(tr)
	var eng *faults.Engine
	var clusterOpts []cluster.Option
	if camp != nil {
		eng = faults.NewEngine(env, *camp)
		clusterOpts = append(clusterOpts, cluster.WithFaultEngine(eng))
	}
	cl := cluster.New(env, &model.Default, chaosNodes, clusterOpts...)
	mgrs := make([]*rmem.Manager, chaosNodes)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}

	leg := &cpChaosLeg{tr: tr, eng: eng}
	rig := &cpChaosRig{}
	var cli *Client
	var setupErr error
	env.Spawn("cpchaos.setup", func(p *des.Proc) {
		// The name-service clerks boot first: their well-known registry
		// segments carry fixed generation numbers that assume they are each
		// control node's first exports.
		peers := []int{0, 1, 2}
		clerks := make([]*nameserver.Clerk, chaosReplicas)
		for i := range clerks {
			clerks[i] = nameserver.New(mgrs[i], peers, nameserver.Config{})
		}
		p.Sleep(time.Millisecond)
		// Lanes: 3 replicas + the driver; Slots sized for the decree stream
		// the driver commits across the mix window.
		g := NewGroup(p, Config{Acceptors: chaosReplicas, Proposers: chaosReplicas + 1, Slots: 1024}, mgrs[:chaosReplicas]...)
		leg.cp = NewControlPlane(p, g, clerks)
		if setupErr = leg.cp.Start(p); setupErr != nil {
			return
		}
		rig.srv = dfs.NewServer(p, mgrs[chaosServerNode], chaosNodes, dfs.Geometry{}, dfs.WithReliableReplies())
		rig.clerk = dfs.NewClerk(p, mgrs[chaosClerkNode], rig.srv, mode, dfs.WithReliable())
		if setupErr = warmCPRig(rig); setupErr != nil {
			return
		}
		cli = leg.cp.NewClient(p, mgrs[chaosClerkNode])
	})
	if err := env.RunUntil(des.Time(200 * time.Millisecond)); err != nil {
		return nil, err
	}
	if setupErr != nil {
		return nil, setupErr
	}

	mixDone := false
	lastName := ""
	// Driver: a steady stream of registry decrees through the log, the
	// control-plane analogue of the mix's data traffic. It keeps proposing
	// straight through the crash — commits after it prove the log lives on
	// a majority of the original acceptors.
	env.Spawn("cpchaos.driver", func(p *des.Proc) {
		if at := des.Time(200 * time.Millisecond); p.Now() < at {
			p.Sleep(time.Duration(at.Sub(p.Now())))
		}
		start := p.Now()
		for i := 0; !mixDone; i++ {
			name := fmt.Sprintf("cp.obj%04d", i)
			rec := nameserver.Record{
				Name: name, Node: chaosServerNode,
				Seg: uint16(0x2000 + i), Gen: uint16(i + 1), Epoch: 1, Size: 64,
			}
			if err := cli.RegisterName(p, rec); err != nil {
				leg.driverErrs++
			} else {
				leg.commits++
				lastName = name
			}
			p.Sleep(driverPeriod)
		}
		leg.driverWindow = time.Duration(p.Now().Sub(start))
	})

	ops := make([]dfs.ChaosOpResult, len(dfs.Figure2Ops))
	env.Spawn("cpchaos.mix", func(p *des.Proc) {
		// Campaign crash schedules are keyed to virtual time; anchor the mix
		// at t = 200ms so the crash lands inside the measured run.
		if at := des.Time(200 * time.Millisecond); p.Now() < at {
			p.Sleep(time.Duration(at.Sub(p.Now())))
		}
		leg.leaderBefore = leg.cp.Leader()
		for i := 0; i < chaosReplicas; i++ {
			cl.Nodes[i].ResetCPUAcct()
		}
		start := p.Now()
		for i, spec := range dfs.Figure2Ops {
			ops[i] = runVerifiedCPOp(p, rig, spec)
			// No data-plane failover in this rig: a failed op lost its retry
			// budget to link faults; replay a bounded number of times.
			for tries := 0; !ops[i].OK && tries < 3; tries++ {
				leg.replays++
				ops[i] = runVerifiedCPOp(p, rig, spec)
			}
		}
		// The mix is quick; hold the window open past the crash so the
		// re-election and the driver's post-crash commits are measured.
		if camp != nil {
			for _, c := range camp.Crashes {
				if until := des.Time(c.At + 20*time.Millisecond); p.Now() < until {
					p.Sleep(time.Duration(until.Sub(p.Now())))
				}
			}
		}
		leg.window = time.Duration(p.Now().Sub(start))
		mixDone = true
		// Settle, then audit the control plane (untimed): surviving replicas
		// must agree byte-for-byte on the log prefix they have all applied,
		// and the replicated registry must answer on every survivor.
		p.Sleep(5 * time.Millisecond)
		leg.acceptorCPU = make(map[string]time.Duration)
		for i := 0; i < chaosReplicas; i++ {
			if cl.Nodes[i].Failed() {
				continue
			}
			for cat, d := range cl.Nodes[i].CPUAcct {
				leg.acceptorCPU[cat] += time.Duration(d)
			}
		}
		leg.leaderAfter = leg.cp.Leader()
		leg.auditControlPlane(p, lastName)
	})

	// Heartbeat and watchdog daemons never idle; the horizon is finite.
	if err := env.RunUntil(des.Time(3 * time.Second)); err != nil {
		return nil, err
	}
	if leg.auditErr != nil {
		return nil, leg.auditErr
	}
	leg.ops = ops
	leg.events = env.Events()
	return leg, nil
}

// auditControlPlane verifies survivor agreement after the campaign.
func (leg *cpChaosLeg) auditControlPlane(p *des.Proc, lastName string) {
	var live []*Replica
	for _, r := range leg.cp.Replicas() {
		if !r.acc.M.Node.Failed() {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		leg.auditErr = fmt.Errorf("consensus: no surviving replicas to audit")
		return
	}
	// Common applied horizon, then byte-compare the prefix.
	h := live[0].AppliedCount()
	for _, r := range live[1:] {
		if n := r.AppliedCount(); n < h {
			h = n
		}
	}
	leg.decrees = h
	leg.logsAgree = true
	for _, r := range live[1:] {
		a, b := live[0].Log(), r.Log()
		for s := 0; s < h; s++ {
			if !bytes.Equal(a[s].Encode(), b[s].Encode()) {
				leg.logsAgree = false
				leg.auditErr = fmt.Errorf("consensus: replica %d diverges from %d at slot %d", r.Idx(), live[0].Idx(), s)
				return
			}
		}
	}
	// Every survivor's clerk answers the last committed registry decree
	// locally — no remote lookup, no dependence on the dead machine.
	leg.registryOK = lastName != ""
	for _, r := range live {
		if r.Clerk() == nil {
			continue
		}
		rec, err := r.Clerk().Lookup(p, lastName, -1, false)
		if err != nil || rec.Node != chaosServerNode {
			leg.registryOK = false
		}
	}
}

// warmCPRig populates the store and warms the server cache exactly as the
// single-server chaos rig does.
func warmCPRig(r *cpChaosRig) error {
	st := r.srv.Store
	h, err := st.WriteFile("/export/data.bin", cpSeedPattern(16384))
	if err != nil {
		return err
	}
	r.file = h
	for i := 0; i < 260; i++ {
		if _, err := st.WriteFile(fmt.Sprintf("/export/pub/entry%03d", i), nil); err != nil {
			return err
		}
	}
	dir, _, err := st.ResolvePath("/export/pub")
	if err != nil {
		return err
	}
	r.dir = dir
	exp, _, err := st.ResolvePath("/export")
	if err != nil {
		return err
	}
	lh, _, err := st.Symlink(exp, "current", "/export/data.bin")
	if err != nil {
		return err
	}
	r.link = lh
	for _, wh := range []fstore.Handle{r.file, r.link} {
		if err := r.srv.WarmFile(wh); err != nil {
			return err
		}
	}
	if err := r.srv.WarmDir(exp); err != nil {
		return err
	}
	return r.srv.WarmDir(dir)
}

// runVerifiedCPOp executes one mix operation on the data plane and
// verifies the result bytes against the store's ground truth.
func runVerifiedCPOp(p *des.Proc, r *cpChaosRig, spec dfs.OpSpec) dfs.ChaosOpResult {
	res := dfs.ChaosOpResult{Label: spec.Label}
	c := r.clerk
	st := r.srv.Store

	fail := func(err error) dfs.ChaosOpResult {
		res.Err = err.Error()
		res.Chaos = 0
		return res
	}

	// Writes establish DX block ownership with an untimed read; reads
	// measure the network path, so flush first.
	if spec.Op == dfs.OpWrite && c.Mode == dfs.DX {
		blocks := (spec.Size + fstore.BlockSize - 1) / fstore.BlockSize
		if _, err := c.Read(p, r.file, 0, blocks*fstore.BlockSize); err != nil {
			return fail(fmt.Errorf("ownership read: %w", err))
		}
	} else {
		c.FlushLocal()
	}

	start := p.Now()
	switch spec.Op {
	case dfs.OpGetAttr:
		a, err := c.GetAttr(p, r.file)
		if err != nil {
			return fail(err)
		}
		want, err := st.GetAttr(r.file)
		if err != nil {
			return fail(err)
		}
		if a.Size != want.Size || a.Type != want.Type {
			return fail(fmt.Errorf("attr mismatch: got size %d, want %d", a.Size, want.Size))
		}
	case dfs.OpLookup:
		h, _, err := c.Lookup(p, r.dir, "entry007")
		if err != nil {
			return fail(err)
		}
		want, _, err := st.Lookup(r.dir, "entry007")
		if err != nil {
			return fail(err)
		}
		if h != want {
			return fail(fmt.Errorf("lookup handle mismatch"))
		}
	case dfs.OpReadLink:
		target, err := c.ReadLink(p, r.link)
		if err != nil {
			return fail(err)
		}
		if target != "/export/data.bin" {
			return fail(fmt.Errorf("readlink returned %q", target))
		}
	case dfs.OpRead:
		data, err := c.Read(p, r.file, 0, spec.Size)
		if err != nil {
			return fail(err)
		}
		want, err := st.Read(r.file, 0, spec.Size)
		if err != nil {
			return fail(err)
		}
		if !bytes.Equal(data, want) {
			return fail(fmt.Errorf("read returned wrong bytes"))
		}
	case dfs.OpReadDir:
		data, err := c.ReadDir(p, r.dir, 0, spec.Size)
		if err != nil {
			return fail(err)
		}
		ents, err := st.ReadDir(r.dir)
		if err != nil {
			return fail(err)
		}
		want := dfs.SerializeDir(ents)[:spec.Size]
		if !bytes.Equal(data, want) {
			return fail(fmt.Errorf("readdir returned wrong bytes"))
		}
	case dfs.OpWrite:
		payload := cpWritePattern(spec.Size)
		before := r.srv.DataDeposits()
		if err := c.Write(p, r.file, 0, payload); err != nil {
			return fail(err)
		}
		if c.Mode == dfs.DX {
			deadline := p.Now().Add(c.EffectiveCallTimeout())
			for r.srv.DataDeposits() == before {
				if p.Now() > deadline {
					return fail(fmt.Errorf("write deposit not observed"))
				}
				p.Sleep(2 * time.Microsecond)
			}
		}
		res.Chaos = time.Duration(p.Now().Sub(start))
		// Verification (untimed): apply write-behind state and read the
		// store back.
		if _, err := r.srv.Sync(p); err != nil {
			return fail(err)
		}
		got, err := st.Read(r.file, 0, spec.Size)
		if err != nil {
			return fail(err)
		}
		if !bytes.Equal(got, payload) {
			return fail(fmt.Errorf("written bytes did not reach the store intact"))
		}
		res.OK = true
		return res
	}
	res.Chaos = time.Duration(p.Now().Sub(start))
	res.OK = true
	return res
}

// cpSeedPattern fills the warm file; cpWritePattern is the write payload,
// distinguishable from the seed so a lost write cannot be masked.
func cpSeedPattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i % 251)
	}
	return b
}

func cpWritePattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + 129)
	}
	return b
}
