package consensus

import (
	"bytes"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/model"
	"netmem/internal/rmem"
)

// TestCompactionOutrunsSlots is the compaction acceptance check: with a
// 64-slot window a client commits several windows' worth of decrees.
// Without compaction that dies at slot 64 with ErrLogFull; with it the
// snapshot decrees keep recycling the window. Afterwards every replica
// must hold byte-identical logs, identical checkpoints, and a digest
// that replays exactly from checkpoint + suffix.
func TestCompactionOutrunsSlots(t *testing.T) {
	const (
		slots   = 64
		commits = 200 // > 3 windows
	)
	env := des.NewEnv()
	env.Seed(1)
	c := cluster.New(env, &model.Default, 4)
	mgrs := make([]*rmem.Manager, 4)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(c.Nodes[i])
	}
	var cp *ControlPlane
	env.Spawn("boot", func(p *des.Proc) {
		g := NewGroup(p, Config{Slots: slots, Proposers: 5, Compact: true}, mgrs[:3]...)
		cp = NewControlPlane(p, g, nil)
		if err := cp.Start(p); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		cl := cp.NewClient(p, mgrs[3])
		for k := 0; k < commits; k++ {
			if err := cl.Noop(p); err != nil {
				t.Errorf("commit %d: %v", k, err)
				return
			}
		}
	})
	if err := env.RunUntil(des.Time(3 * time.Second)); err != nil {
		t.Fatalf("sim: %v", err)
	}

	r0 := cp.Replicas()[0]
	if r0.SnapBase() == 0 {
		t.Fatalf("no snapshot decree committed across %d commits in a %d-slot window", commits, slots)
	}
	if r0.AppliedCount() <= slots {
		t.Fatalf("applied %d decrees, want > Slots=%d", r0.AppliedCount(), slots)
	}

	// Replicas agree byte for byte, including where the watermark sits
	// and what the checkpoint says.
	ref := r0.Log()
	s0, e0, l0, d0 := r0.Checkpoint(nil)
	for _, r := range cp.Replicas()[1:] {
		if r.AppliedCount() != r0.AppliedCount() {
			t.Fatalf("replica %d applied %d, replica 0 applied %d", r.Idx(), r.AppliedCount(), r0.AppliedCount())
		}
		for s, cmd := range r.Log() {
			if !bytes.Equal(cmd.Encode(), ref[s].Encode()) {
				t.Fatalf("replica %d slot %d diverges", r.Idx(), s)
			}
		}
		if r.SnapBase() != r0.SnapBase() {
			t.Fatalf("replica %d snapBase %d, replica 0 %d", r.Idx(), r.SnapBase(), r0.SnapBase())
		}
		s, e, l, d := r.Checkpoint(nil)
		if s != s0 || e != e0 || l != l0 || d != d0 {
			t.Fatalf("replica %d checkpoint (%d,%d,%d,%x) differs from replica 0 (%d,%d,%d,%x)",
				r.Idx(), s, e, l, d, s0, e0, l0, d0)
		}
	}

	// The digest replays: fold the checkpoint's prefix digest over the
	// suffix (snapshot decree onward) and land exactly on the live one.
	replay := d0
	for _, cmd := range ref[s0:] {
		replay = foldDigest(replay, cmd.Encode())
	}
	if replay != r0.Digest() {
		t.Fatalf("replay digest %x != live digest %x", replay, r0.Digest())
	}
}
