// Package consensus builds a Paxos-style replicated log out of the
// paper's remote-memory meta-instructions. The observation (ROADMAP item
// 1, after Brock et al.'s one-sided data structures): a Paxos acceptor is
// nothing but a few words of compare-and-swap-able state, and rmem CAS is
// exactly that primitive. Acceptor state — a packed promised/accepted
// ballot word plus stamped value cells per log slot — lives in an
// exported rmem segment, and proposers drive the whole agreement protocol
// with one-sided READ/CAS/WRITE against it. The acceptor machine runs no
// agreement code at all: prepare, accept, and learn are data transfers
// into its memory, so the agreement path costs it only the kernel receive
// path (CatRx/CatReply interface work — the Figure 3 argument applied to
// the control plane). Control transfer appears exactly once, where the
// paper says it belongs: the learn write carries the notify bit, waking
// the co-located state-machine replica to apply the decree.
//
// Layout of an acceptor segment, per log slot:
//
//	word 0:              promised(16) | accepted(16)   (the CAS word)
//	cell 0 (learned):    chosen ballot(32) + payload   (written after quorum accept)
//	cells 1..K:          ballot stamp(32) + payload    (one per proposer lane)
//
// The single packed control word makes promise and accept one atomic CAS:
// a phase-1 CAS bumps the promised half while preserving the accepted
// half, a phase-2 CAS sets both to the proposing ballot. Values travel
// out-of-band in per-proposer cells — each cell has exactly one writer,
// whose stamps increase monotonically, so a reader that observes
// accepted=b in the control word and then reads proposer(b)'s cell sees a
// stamp ≥ b whose value is safe at that stamp (the standard Paxos phase-1
// invariant carries the rest). This is the Disk Paxos construction
// transplanted from network-attached disks onto remote memory.
//
// Above the single-decree core, ControlPlane runs a multi-decree log with
// leader leases and migrates the reproduction's control plane onto it:
// name-registry mutations, fencing verdicts, and shard-membership epoch
// bumps become agreed log entries applied by every replica, so any
// replica can serve reads and the nameserver itself can crash mid-run.
package consensus

import (
	"errors"
	"time"

	"netmem/internal/des"
)

// Errors.
var (
	// ErrNoQuorum reports that a proposal could not reach a majority of
	// acceptors within the retry budget.
	ErrNoQuorum = errors.New("consensus: no quorum of acceptors reachable")
	// ErrValueTooLarge reports a proposed value exceeding Config.Payload.
	ErrValueTooLarge = errors.New("consensus: value exceeds slot payload")
	// ErrLogFull reports that every configured log slot is already chosen.
	ErrLogFull = errors.New("consensus: log slots exhausted")
	// ErrBadCommand reports an undecodable log entry.
	ErrBadCommand = errors.New("consensus: malformed command")
	// ErrNoFreeLane reports that every client ballot lane is held by a
	// live, renewing owner (TryNewClient).
	ErrNoFreeLane = errors.New("consensus: no free proposer lane")
	// ErrLaneLost reports that this client's lane lease was reclaimed by
	// another client (the owner crashed — or was presumed to; either way
	// the lane is gone and the client must not propose again).
	ErrLaneLost = errors.New("consensus: proposer lane lease lost")
	// ErrCompacted reports a proposal at a slot below the compaction
	// watermark: the slot's decree is already folded into a snapshot.
	ErrCompacted = errors.New("consensus: slot below compaction watermark")
)

// Config sizes a consensus group. The zero value is filled with defaults.
type Config struct {
	// Acceptors is the replication degree R; a majority (R/2+1) of the
	// original set must survive for the log to make progress. Default 3.
	Acceptors int
	// Proposers is the number of ballot lanes K. Every client of the group
	// (replica or external proposer) owns one lane; ballots from different
	// lanes never collide. Default Acceptors+2.
	Proposers int
	// Slots is the log capacity. Default 256.
	Slots int
	// Payload is the value size carried per cell, a multiple of 4.
	// Default 128 — large enough for a packed name-registry record or an
	// 8-member ring blob.
	Payload int
	// LeaseInterval is the leader heartbeat cadence (default 250 µs);
	// watchdog grace is LeaseGrace consecutive misses (default 4).
	LeaseInterval des.Duration
	LeaseGrace    int
	// NoLease disables the acceptor heartbeat word. Pure-agreement
	// benches use it to measure acceptor-side CPU with no failure
	// detector running; groups under a ControlPlane leave it off.
	NoLease bool
	// Compact turns on log compaction: logical slots map onto physical
	// slots modulo Slots, a KindSnapshot decree checkpoints applied
	// ControlPlane state into an rmem segment and recycles everything
	// below the watermark, and Slots becomes a *window* size instead of a
	// hard horizon. In compact mode each value cell carries a 4-byte
	// logical-slot prefix (so a straggler's deposit for a recycled slot is
	// never mistaken for the new occupant's), which shrinks the usable
	// payload to Payload-4. Off by default: the legacy fixed-horizon
	// layout stays byte-identical.
	Compact bool
}

func (c *Config) fill() {
	if c.Acceptors <= 0 {
		c.Acceptors = 3
	}
	if c.Proposers <= 0 {
		c.Proposers = c.Acceptors + 2
	}
	if c.Slots <= 0 {
		c.Slots = 256
	}
	if c.Payload <= 0 {
		c.Payload = 128
	}
	c.Payload = (c.Payload + 3) &^ 3
	if c.LeaseInterval <= 0 {
		c.LeaseInterval = 250 * time.Microsecond
	}
	if c.LeaseGrace <= 0 {
		c.LeaseGrace = 4
	}
}

// Quorum is the majority size over the original acceptor set. Crashed
// acceptors stay counted: an acceptor that restarts has forgotten its
// promises (rmem is volatile and Manager.Restart wipes exports), so
// letting it rejoin would allow double votes. It is fenced out instead —
// progress requires a majority of the machines that booted the group.
func (c Config) Quorum() int { return c.Acceptors/2 + 1 }

// Geometry.

// phys maps a logical slot to its physical slot: identity in the legacy
// layout, modulo Slots under compaction (recycled slots are zeroed by the
// replicas when the watermark passes them).
func (c Config) phys(s int) int {
	if c.Compact {
		return s % c.Slots
	}
	return s
}

// MaxValue is the largest value Propose accepts: the full payload, minus
// the logical-slot prefix in compact mode.
func (c Config) MaxValue() int {
	if c.Compact {
		return c.Payload - 4
	}
	return c.Payload
}

func (c Config) cellSize() int        { return 4 + c.Payload }
func (c Config) slotSize() int        { return 4 + (c.Proposers+1)*c.cellSize() }
func (c Config) ctlOff(s int) int     { return c.phys(s) * c.slotSize() }
func (c Config) learnedOff(s int) int { return c.phys(s)*c.slotSize() + 4 }
func (c Config) cellOff(s, lane int) int {
	return c.phys(s)*c.slotSize() + 4 + (lane+1)*c.cellSize()
}

// hbOff is the acceptor's heartbeat word, placed after the last slot.
func (c Config) hbOff() int { return c.Slots * c.slotSize() }

// Lane-lease table: three words per proposer lane, after the heartbeat
// word. claim holds the current owner token (CAS-claimed on a quorum),
// renew is the owner's liveness beacon (token<<16 | counter, rewritten
// every laneRenewEvery), floor is the ballot-range reservation ceiling —
// the one word lane *safety* rests on (see lease.go).
func (c Config) laneOff(lane int) int  { return c.hbOff() + 4 + lane*12 }
func (c Config) claimOff(lane int) int { return c.laneOff(lane) }
func (c Config) renewOff(lane int) int { return c.laneOff(lane) + 4 }
func (c Config) floorOff(lane int) int { return c.laneOff(lane) + 8 }

// baseOff is the compaction watermark word: the lowest live logical slot,
// written by the co-located replica when it applies a snapshot decree.
func (c Config) baseOff() int { return c.hbOff() + 4 + c.Proposers*12 }

// SegSize is the acceptor segment footprint: all slots, the heartbeat
// word watchdogs probe, the lane-lease table, and the compaction base
// word. The lease table and base word are sized in unconditionally (a
// few dozen bytes) so every group layout is identical whether or not the
// features are used.
func (c Config) SegSize() int { return c.baseOff() + 4 }

// Ballots. A ballot is a 16-bit value packed two per control word.
// Lane k proposes ballots k+1, k+1+K, k+1+2K, ... so lanes never collide
// and ballot 0 means "none".

// Ballot identifies one proposal attempt.
type Ballot uint16

// LaneOf recovers the proposer lane that owns a ballot.
func (c Config) LaneOf(b Ballot) int { return (int(b) - 1) % c.Proposers }

// firstBallot is lane's lowest ballot.
func (c Config) firstBallot(lane int) Ballot { return Ballot(lane + 1) }

// nextBallot is lane's smallest ballot strictly greater than after.
func (c Config) nextBallot(lane int, after Ballot) Ballot {
	b := int(lane) + 1
	for b <= int(after) {
		b += c.Proposers
	}
	return Ballot(b)
}

// packCtl/unpackCtl pack the promised and accepted ballots into the
// single CAS word.
func packCtl(promised, accepted Ballot) uint32 {
	return uint32(promised)<<16 | uint32(accepted)
}

func unpackCtl(w uint32) (promised, accepted Ballot) {
	return Ballot(w >> 16), Ballot(w & 0xffff)
}
