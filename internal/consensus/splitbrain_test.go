package consensus

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"netmem/internal/dfs"
	"netmem/internal/faults"
)

// TestSplitBrainOneWriter is the quorum-fenced failover golden: the
// splitbrain campaign partitions a healthy primary away from the
// replicas, standby, and clerk. The watchdog's (wrong) verdict must not
// promote the standby by itself — the takeover runs only after the
// fence decree commits on the replica quorum, by which point the old
// primary's write lease has lapsed and its Sync daemon is refusing to
// apply anything. Exactly one writer survives, every op byte-verifies,
// and two runs at seed 1 are byte-identical.
func TestSplitBrainOneWriter(t *testing.T) {
	camp, ok := faults.Named("splitbrain")
	if !ok {
		t.Fatal("splitbrain campaign not registered")
	}
	runOnce := func() ([]byte, *SplitBrainResult) {
		res, err := RunSplitBrain(SplitBrainConfig{Campaign: camp, Seed: 1, Mode: dfs.DX})
		if err != nil {
			t.Fatalf("RunSplitBrain: %v", err)
		}
		js, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return append(js, res.Metrics.String()...), res
	}
	b1, r1 := runOnce()
	b2, _ := runOnce()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("splitbrain campaign not deterministic at seed 1")
	}

	if r1.Aborted {
		t.Fatalf("fence decree did not commit; failover aborted")
	}
	if r1.Completed != len(r1.Ops) || len(r1.Ops) != 12 {
		t.Errorf("goodput %d/%d, want 12/12 byte-correct", r1.Completed, len(r1.Ops))
	}
	if !r1.OneWriter() {
		t.Errorf("one-writer audit failed: frozen=%v newOK=%v denials=%d",
			r1.OldSyncFrozen, r1.NewWriterOK, r1.Denials)
	}
	if !r1.OldDeposed {
		t.Errorf("old primary's lease recovered after the heal; want deposed for good")
	}
	if r1.FenceLatency <= 0 {
		t.Errorf("fence latency %v, want > 0 (decree must commit before takeover)", r1.FenceLatency)
	}
	if r1.MTTR <= r1.FenceLatency {
		t.Errorf("MTTR %v not after fence commit %v; takeover ran before the decree",
			r1.MTTR, r1.FenceLatency)
	}
	if r1.Retries == 0 {
		t.Errorf("no reliable retransmissions; the partition never bit the mix")
	}
	if r1.Window <= 100*time.Millisecond {
		t.Errorf("mix window %v; ops never stalled against the partitioned primary", r1.Window)
	}
}
