package consensus

import (
	"bytes"
	"encoding/json"
	"testing"

	"netmem/internal/dfs"
	"netmem/internal/faults"
)

// TestLeaderCrashChaosDeterministic is the control-plane determinism
// golden test: the leadercrash campaign (light dup/reorder links plus the
// lease holder's machine dying mid-mix, never to return) run twice at
// seed 1 must produce byte-identical results — every per-op latency,
// every metric counter, the fault tally, the election latency, and the
// decree counts. And the run itself must demonstrate the tentpole claims:
// the data plane finishes 12/12 byte-correct, exactly one deterministic
// re-election happens, the survivors' logs agree, and the replicated
// registry keeps answering without the dead machine.
func TestLeaderCrashChaosDeterministic(t *testing.T) {
	camp, ok := faults.Named("leadercrash")
	if !ok {
		t.Fatal("leadercrash campaign not registered")
	}
	runOnce := func() ([]byte, *ChaosResult) {
		res, err := RunChaos(ChaosConfig{Campaign: camp, Seed: 1, Mode: dfs.DX})
		if err != nil {
			t.Fatalf("RunChaos: %v", err)
		}
		js, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return append(js, res.Metrics.String()...), res
	}
	b1, r1 := runOnce()
	b2, _ := runOnce()
	if !bytes.Equal(b1, b2) {
		i := 0
		for i < len(b1) && i < len(b2) && b1[i] == b2[i] {
			i++
		}
		lo, hi := i-40, i+40
		if lo < 0 {
			lo = 0
		}
		win := func(b []byte) []byte {
			h := hi
			if h > len(b) {
				h = len(b)
			}
			if lo >= h {
				return nil
			}
			return b[lo:h]
		}
		t.Fatalf("leadercrash campaign not deterministic at seed 1:\n run1: …%s…\n run2: …%s…", win(b1), win(b2))
	}
	if r1.Completed != len(r1.Ops) || len(r1.Ops) != 12 {
		t.Errorf("goodput %d/%d, want 12/12", r1.Completed, len(r1.Ops))
	}
	if r1.Elections != 1 || r1.ElectionLatency <= 0 {
		t.Errorf("elections=%d latency=%v, want exactly one measured re-election", r1.Elections, r1.ElectionLatency)
	}
	if r1.LeaderBefore != 0 || r1.LeaderAfter == 0 || r1.LeaderAfter < 0 {
		t.Errorf("leadership did not move off the crashed machine: before=%d after=%d", r1.LeaderBefore, r1.LeaderAfter)
	}
	if !r1.LogsAgree {
		t.Error("surviving replica logs diverged")
	}
	if !r1.RegistryOK {
		t.Error("replicated registry did not converge on the survivors")
	}
	if r1.DriverCommits == 0 || r1.Decrees <= r1.DriverCommits {
		t.Errorf("decree stream thin: applied=%d driver commits=%d", r1.Decrees, r1.DriverCommits)
	}
	if r1.DecreesPerSec <= 0 || r1.SteadyPerSec <= 0 {
		t.Errorf("no decree rates measured: campaign %v, fault-free %v", r1.DecreesPerSec, r1.SteadyPerSec)
	}
}
