package consensus

import (
	"netmem/internal/des"
	"netmem/internal/rmem"
)

// Acceptor is one member of a consensus group: an exported rmem segment
// holding the per-slot control words and value cells, plus a heartbeat
// word for lease watchdogs. It runs no protocol code — the struct exists
// only to export the memory and to hand its coordinates to proposers.
// Everything the agreement path does to this machine happens in the
// kernel receive path of one-sided operations.
type Acceptor struct {
	M   *rmem.Manager
	Cfg Config
	Seg *rmem.Segment

	// Incarnation the segment was exported under; proposers fence their
	// imports with it so a restarted (amnesiac) acceptor NAKs with
	// ErrStaleGeneration instead of silently re-voting from empty state.
	Epoch uint16

	// onLearn, when set, is invoked after a co-located proposer deposits
	// a learned cell with the local fast path — the local analogue of the
	// notify bit a remote learn write carries.
	onLearn func(p *des.Proc, slot int)
}

// NewAcceptor exports the acceptor segment on m's machine and starts its
// heartbeat. Proposers are granted read, write, and CAS rights; the learn
// cell carries the notify bit, so the segment's notification mode stays
// conditional — prepare and accept traffic wakes nobody.
func NewAcceptor(p *des.Proc, m *rmem.Manager, cfg Config) *Acceptor {
	cfg.fill()
	a := &Acceptor{M: m, Cfg: cfg, Epoch: m.Incarnation()}
	a.Seg = m.Export(p, cfg.SegSize())
	a.Seg.SetDefaultRights(rmem.RightRead | rmem.RightWrite | rmem.RightCAS)
	if !cfg.NoLease {
		rmem.StartHeartbeat(m, a.Seg, cfg.hbOff(), cfg.LeaseInterval)
	}
	return a
}

// Node returns the acceptor's machine id.
func (a *Acceptor) Node() int { return a.M.Node.ID }

// OnLearn registers the co-located replica's apply hook for learn writes
// that take the local fast path (remote learns arrive as notifications on
// Seg instead).
func (a *Acceptor) OnLearn(fn func(p *des.Proc, slot int)) { a.onLearn = fn }

// Learned reads slot's learned cell from local memory, returning the
// chosen ballot (0 if the slot is still open) and the payload bytes.
// Only meaningful on the acceptor's own machine. In compact mode the
// logical-slot prefix is verified and stripped: a learned cell left over
// from the physical slot's previous occupant reads as open.
func (a *Acceptor) Learned(p *des.Proc, slot int) (Ballot, []byte) {
	buf := a.Seg.ReadLocal(p, a.Cfg.learnedOff(slot), a.Cfg.cellSize())
	defer a.M.Buffers().Put(buf)
	b := Ballot(be32(buf))
	if b == 0 {
		return 0, nil
	}
	payload := buf[4:]
	if a.Cfg.Compact {
		if be32(payload) != uint32(slot) {
			return 0, nil
		}
		payload = payload[4:]
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return b, out
}

// Group is the wiring record for one consensus cell: the shared Config
// plus every member acceptor. Harnesses build it once at boot and hand it
// to proposers and replicas.
type Group struct {
	Cfg  Config
	Accs []*Acceptor
}

// NewGroup fills cfg from the number of acceptor managers given and
// exports one acceptor per manager.
func NewGroup(p *des.Proc, cfg Config, ms ...*rmem.Manager) *Group {
	if cfg.Acceptors <= 0 {
		cfg.Acceptors = len(ms)
	}
	cfg.fill()
	g := &Group{Cfg: cfg}
	for _, m := range ms {
		g.Accs = append(g.Accs, NewAcceptor(p, m, cfg))
	}
	return g
}

// be32 mirrors rmem's big-endian word codec for cell stamps.
func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func putbe32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
