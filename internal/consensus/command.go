package consensus

import (
	"encoding/binary"
	"fmt"
	"strings"

	"netmem/internal/nameserver"
)

// Kind tags a control-plane log entry.
type Kind uint8

const (
	// KindNoop fills a hole or probes liveness; it mutates nothing.
	KindNoop Kind = iota + 1
	// KindLease grants the leader lease for Epoch to replica Node.
	KindLease
	// KindRegister applies a name-registry record on every replica
	// (Register and generation/epoch supersede travel the same way).
	KindRegister
	// KindFence marks Node dead in every replica's name clerk; a
	// watchdog verdict becomes an agreed value instead of one machine's
	// opinion.
	KindFence
	// KindUnfence lifts Node's fence after its repair completes.
	KindUnfence
	// KindMembership commits a shard-ring epoch bump: Epoch is the new
	// membership epoch and Blob the packed ring.
	KindMembership
	// KindSnapshot advances the compaction watermark: every replica
	// checkpoints its applied state into the snapshot segment and
	// recycles the slots at and below the decree's own slot. The decree
	// carries no base — each replica computes it from where the decree
	// landed, so all replicas agree by construction.
	KindSnapshot
)

func (k Kind) String() string {
	switch k {
	case KindNoop:
		return "noop"
	case KindLease:
		return "lease"
	case KindRegister:
		return "register"
	case KindFence:
		return "fence"
	case KindUnfence:
		return "unfence"
	case KindMembership:
		return "membership"
	case KindSnapshot:
		return "snapshot"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Command is one decree. Origin+Seq make every proposal distinct on the
// wire even when two clients submit semantically identical mutations, so
// "did my proposal win this slot" is a byte compare.
type Command struct {
	Kind   Kind
	Origin uint8  // proposer lane that created the command
	Seq    uint32 // per-origin sequence number
	Node   int    // target machine (lease/fence/unfence) or replica
	Epoch  uint32 // lease or membership epoch
	Rec    nameserver.Record
	Blob   []byte
}

// Wire layout: kind(1) origin(1) seq(4) node(2) epoch(4) len(2) body.
// For KindRegister the body is the packed registry record; for
// KindMembership it is the ring blob.
const cmdHdr = 14

const recBody = 16 + nameserver.MaxName // epoch|gen, seg|node, size, name

// Encode packs the command for a log slot.
func (c Command) Encode() []byte {
	body := c.Blob
	if c.Kind == KindRegister {
		b := make([]byte, recBody)
		binary.BigEndian.PutUint32(b[0:], uint32(c.Rec.Epoch)<<16|uint32(c.Rec.Gen))
		binary.BigEndian.PutUint32(b[4:], uint32(c.Rec.Seg)<<16|uint32(c.Rec.Node)&0xffff)
		binary.BigEndian.PutUint32(b[8:], uint32(c.Rec.Size))
		copy(b[16:], c.Rec.Name)
		body = b
	}
	out := make([]byte, cmdHdr+len(body))
	out[0] = byte(c.Kind)
	out[1] = c.Origin
	binary.BigEndian.PutUint32(out[2:], c.Seq)
	binary.BigEndian.PutUint16(out[6:], uint16(c.Node))
	binary.BigEndian.PutUint32(out[8:], c.Epoch)
	binary.BigEndian.PutUint16(out[12:], uint16(len(body)))
	copy(out[cmdHdr:], body)
	return out
}

// Decode unpacks a learned slot payload.
func Decode(buf []byte) (Command, error) {
	if len(buf) < cmdHdr {
		return Command{}, ErrBadCommand
	}
	c := Command{
		Kind:   Kind(buf[0]),
		Origin: buf[1],
		Seq:    binary.BigEndian.Uint32(buf[2:]),
		Node:   int(binary.BigEndian.Uint16(buf[6:])),
		Epoch:  binary.BigEndian.Uint32(buf[8:]),
	}
	n := int(binary.BigEndian.Uint16(buf[12:]))
	if n > len(buf)-cmdHdr {
		return Command{}, ErrBadCommand
	}
	body := buf[cmdHdr : cmdHdr+n]
	switch c.Kind {
	case KindRegister:
		if n < recBody {
			return Command{}, ErrBadCommand
		}
		gw := binary.BigEndian.Uint32(body[0:])
		loc := binary.BigEndian.Uint32(body[4:])
		c.Rec = nameserver.Record{
			Epoch: uint16(gw >> 16),
			Gen:   uint16(gw),
			Seg:   uint16(loc >> 16),
			Node:  int(loc & 0xffff),
			Size:  int(binary.BigEndian.Uint32(body[8:])),
		}
		name := string(body[16 : 16+nameserver.MaxName])
		if i := strings.IndexByte(name, 0); i >= 0 {
			name = name[:i]
		}
		c.Rec.Name = name
	case KindNoop, KindLease, KindFence, KindUnfence, KindMembership, KindSnapshot:
		if n > 0 {
			c.Blob = append([]byte(nil), body...)
		}
	default:
		return Command{}, ErrBadCommand
	}
	return c, nil
}
