package consensus

import (
	"fmt"

	"netmem/internal/des"
	"netmem/internal/rmem"
)

// WriteLease makes the fence table *effective* on the data plane: the
// machine that exports a DFS store holds one, and refuses mutations the
// moment it can no longer prove — against a quorum of control-plane
// replicas — that no committed fence decree names it. The proof is a
// one-sided read of the holder's own fence-table word on every replica,
// repeated each interval; a fresh quorum of even words equal to the
// epoch the lease was granted under extends validity by ttl.
//
// Three ways to lose the lease, matching the three ways a partition can
// play out:
//
//   - unreachable: reads time out, validUntil lapses, writes stop — the
//     exact window in which a quorum may be fencing us;
//   - fenced: a word reads odd — a fence decree committed; deny;
//   - deposed: a word reads even but different from the granted epoch —
//     we were fenced *and* unfenced while unreachable, i.e. someone else
//     was promoted and repaired in between. Sticky: this incarnation
//     never writes again, even though the table says the *node* may.
//
// The holder therefore needs no failover notification: the decree's
// effect reaches it through its own next refresh, which is the paper's
// separation applied to fencing — the control transfer (the decree)
// happens on the log; the data plane only ever observes memory.
type WriteLease struct {
	m        *rmem.Manager
	node     int
	quorum   int
	ttl      des.Duration
	interval des.Duration

	segs    []*rmem.Segment // co-located fence tables
	imps    []*rmem.Import  // remote fence tables (nil when co-located)
	scratch *rmem.Segment

	epoch0     uint32
	validUntil des.Time
	deposed    bool
	stopped    bool

	// Denials counts refused Allow calls.
	Denials int64
}

// NewWriteLease grants node's write lease on m against cp's fence table
// (EnableFenceTable must have run first). The lease starts valid for ttl
// and the refresh daemon keeps it so while a quorum keeps agreeing.
func NewWriteLease(p *des.Proc, m *rmem.Manager, node int, cp *ControlPlane, ttl, interval des.Duration) (*WriteLease, error) {
	if cp.fenceMax == 0 {
		return nil, fmt.Errorf("consensus: fence table not enabled")
	}
	if node < 0 || node >= cp.fenceMax {
		return nil, fmt.Errorf("consensus: node %d outside fence table", node)
	}
	wl := &WriteLease{
		m: m, node: node, quorum: cp.g.Cfg.Quorum(),
		ttl: ttl, interval: interval,
	}
	wl.scratch = m.Export(p, 8)
	off := node * 4
	reads := 0
	var v0 uint32
	for _, r := range cp.reps {
		if r.acc.M == m {
			wl.segs = append(wl.segs, r.fenceSeg)
			wl.imps = append(wl.imps, nil)
			v0 = r.fenceSeg.ReadWord(p, off)
			reads++
			continue
		}
		imp := m.Import(p, r.acc.M.Node.ID, r.fenceSeg.ID(), r.fenceSeg.Gen(), r.fenceSeg.Size())
		imp.SetReliable(true)
		wl.segs = append(wl.segs, nil)
		wl.imps = append(wl.imps, imp)
		if err := imp.Read(p, off, 4, wl.scratch, 0, wl.interval*4); err == nil {
			v0 = wl.scratch.ReadWord(p, 0)
			reads++
		}
	}
	if reads < wl.quorum {
		return nil, ErrNoQuorum
	}
	if v0%2 == 1 {
		return nil, fmt.Errorf("consensus: node %d is fenced", node)
	}
	wl.epoch0 = v0
	wl.validUntil = m.Node.Env.Now().Add(ttl)
	m.Node.Env.SpawnDaemon("consensus.writelease", wl.run)
	return wl, nil
}

func (wl *WriteLease) run(p *des.Proc) {
	off := wl.node * 4
	for !wl.stopped && !wl.deposed {
		p.Sleep(wl.interval)
		if wl.stopped {
			return
		}
		fresh, clean := 0, true
		for i := range wl.segs {
			var v uint32
			if wl.segs[i] != nil {
				v = wl.segs[i].ReadWord(p, off)
			} else {
				if err := wl.imps[i].Read(p, off, 4, wl.scratch, 0, wl.interval); err != nil {
					continue
				}
				v = wl.scratch.ReadWord(p, 0)
			}
			fresh++
			switch {
			case v%2 == 1:
				clean = false // a fence decree committed against us
			case v != wl.epoch0:
				wl.deposed = true // fenced and repaired behind our back
			}
		}
		if wl.deposed {
			return
		}
		if fresh >= wl.quorum && clean {
			wl.validUntil = p.Now().Add(wl.ttl)
		}
	}
}

// Allow reports whether the holder may mutate data right now. It
// satisfies dfs.WriteGuard.
func (wl *WriteLease) Allow(p *des.Proc) bool {
	if wl.deposed || p.Now() > wl.validUntil {
		wl.Denials++
		return false
	}
	return true
}

// Deposed reports whether the lease was permanently lost to a
// fence/unfence cycle that happened while the holder was unreachable.
func (wl *WriteLease) Deposed() bool { return wl.deposed }

// Stop ends the refresh daemon (shutdown paths; the lease lapses).
func (wl *WriteLease) Stop() { wl.stopped = true }
