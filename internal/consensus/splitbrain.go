package consensus

import (
	"fmt"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/faults"
	"netmem/internal/model"
	"netmem/internal/obs"
	"netmem/internal/recovery"
	"netmem/internal/rmem"
)

// Split-brain harness: the failure the quorum-fenced failover exists
// for. A partition isolates the DFS primary from everything — replicas,
// standby, clerk — while the primary itself stays perfectly healthy.
// The watchdog's verdict is therefore *wrong* in the way that matters:
// acting on it directly would promote the standby while the old primary
// keeps applying write-behind state, two writers diverging silently.
// Here the verdict is only a proposal; the takeover runs because the
// fence decree committed on the replica quorum, and the old primary —
// unable to refresh its write lease against that same quorum — refuses
// its own Sync before the standby touches a byte. Exactly one writer
// survives, and the log was the only authority either side consulted.

// SplitBrainConfig selects one split-brain run.
type SplitBrainConfig struct {
	// Campaign is the fault schedule; the stock "splitbrain" campaign
	// partitions node 3 (the primary) from nodes 0-2 (replicas), 4 (the
	// standby), and 5 (the clerk), healing at 260ms.
	Campaign faults.Campaign
	// Seed seeds the simulation environment; 0 means des.DefaultSeed.
	Seed int64
	// Mode is the file-service structure (DX for the paper's proposal).
	Mode dfs.Mode
}

// SplitBrainResult is one full split-brain run.
type SplitBrainResult struct {
	Campaign string
	Seed     int64
	Mode     dfs.Mode

	// Data plane: the Figure 2 mix, byte-verified against the store.
	Ops       []dfs.ChaosOpResult
	Completed int
	Replays   int64
	Retries   int64
	Giveups   int64

	// The fencing path.
	FenceLatency time.Duration // watchdog verdict → fence decree committed
	MTTR         time.Duration // last-known-alive → takeover complete
	Aborted      bool          // fence decree failed; failover never ran

	// The one-writer audit.
	Denials       int64 // old primary's refused mutations while fenced
	OldSyncFrozen bool  // old primary applied nothing after the partition
	OldDeposed    bool  // old lease permanently lost after the heal
	NewWriterOK   bool  // promoted standby wrote unimpeded

	Injected []string
	Events   uint64
	Window   time.Duration
	Metrics  obs.Snapshot
}

// Goodput is the fraction of the mix that completed byte-correct.
func (r *SplitBrainResult) Goodput() float64 {
	if len(r.Ops) == 0 {
		return 0
	}
	return float64(r.Completed) / float64(len(r.Ops))
}

// OneWriter reports the headline property: the old primary stopped
// writing before the new one started, and never wrote again.
func (r *SplitBrainResult) OneWriter() bool {
	return r.OldSyncFrozen && r.NewWriterOK && r.Denials > 0
}

// Rig geometry: control replicas on nodes 0..2, the primary file server
// on node 3, its hot standby on node 4, the clerk (who also runs the
// recovery coordinator and the consensus client) on node 5.
const (
	sbReplicas    = 3
	sbPrimaryNode = 3
	sbStandbyNode = 4
	sbClerkNode   = 5
	sbNodes       = 6
)

// sbLeaseTTL / sbLeaseRefresh tune the primary's write lease. The TTL is
// also the coordinator's FenceWait: by the time the standby is promoted,
// an unreachable primary's lease has provably lapsed.
const (
	sbLeaseTTL     = time.Millisecond
	sbLeaseRefresh = 250 * time.Microsecond
)

// RunSplitBrain measures the mix twice — fault-free baseline, then under
// the campaign — on identical topologies (lease daemons and mirror
// traffic run in both legs).
func RunSplitBrain(cfg SplitBrainConfig) (*SplitBrainResult, error) {
	base, err := runSplitBrainMix(nil, cfg.Seed, cfg.Mode)
	if err != nil {
		return nil, fmt.Errorf("consensus: splitbrain baseline: %w", err)
	}
	leg, err := runSplitBrainMix(&cfg.Campaign, cfg.Seed, cfg.Mode)
	if err != nil {
		return nil, fmt.Errorf("consensus: splitbrain run: %w", err)
	}
	res := &SplitBrainResult{
		Campaign:      cfg.Campaign.Name,
		Seed:          leg.eng.Seed(),
		Mode:          cfg.Mode,
		Replays:       leg.replays,
		FenceLatency:  time.Duration(leg.rec.FenceLatency()),
		MTTR:          time.Duration(leg.rec.MTTR()),
		Aborted:       leg.rec.Aborted(),
		Denials:       leg.denials,
		OldSyncFrozen: leg.oldSyncFrozen,
		OldDeposed:    leg.oldDeposed,
		NewWriterOK:   leg.newWriterOK,
		Injected:      leg.eng.Counts(),
		Events:        leg.events,
		Window:        leg.window,
		Metrics:       leg.tr.Snapshot(),
	}
	res.Retries = res.Metrics.Counter("reliable.retries")
	res.Giveups = res.Metrics.Counter("reliable.giveup")
	for i, op := range leg.ops {
		op.Baseline = base.ops[i].Chaos
		res.Ops = append(res.Ops, op)
		if op.OK {
			res.Completed++
		}
	}
	return res, nil
}

// sbLeg is one measured leg.
type sbLeg struct {
	ops     []dfs.ChaosOpResult
	tr      *obs.Tracer
	eng     *faults.Engine
	rec     *recovery.Coordinator
	window  time.Duration
	events  uint64
	replays int64

	denials       int64
	oldSyncFrozen bool
	oldDeposed    bool
	newWriterOK   bool
}

func runSplitBrainMix(camp *faults.Campaign, seed int64, mode dfs.Mode) (*sbLeg, error) {
	env := des.NewEnv()
	if seed != 0 {
		env.Seed(seed)
	}
	tr := obs.New(obs.Config{})
	env.SetTracer(tr)
	var eng *faults.Engine
	var clusterOpts []cluster.Option
	if camp != nil {
		eng = faults.NewEngine(env, *camp)
		clusterOpts = append(clusterOpts, cluster.WithFaultEngine(eng))
	}
	cl := cluster.New(env, &model.Default, sbNodes, clusterOpts...)
	mgrs := make([]*rmem.Manager, sbNodes)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}

	leg := &sbLeg{tr: tr, eng: eng}
	rig := &cpChaosRig{}
	var (
		oldSrv   *dfs.Server
		oldLease *WriteLease
		setupErr error
	)
	env.Spawn("splitbrain.setup", func(p *des.Proc) {
		g := NewGroup(p, Config{Acceptors: sbReplicas, Proposers: sbReplicas + 1, Slots: 1024},
			mgrs[:sbReplicas]...)
		cp := NewControlPlane(p, g, nil)
		cp.EnableFenceTable(p, sbNodes)
		if setupErr = cp.Start(p); setupErr != nil {
			return
		}

		rig.srv = dfs.NewServer(p, mgrs[sbPrimaryNode], sbNodes, dfs.Geometry{}, dfs.WithReliableReplies())
		rig.clerk = dfs.NewClerk(p, mgrs[sbClerkNode], rig.srv, mode, dfs.WithReliable(), dfs.WithFencing())
		if setupErr = warmCPRig(rig); setupErr != nil {
			return
		}
		oldSrv = rig.srv

		// The primary's write lease: every mutation checks it, and it
		// only stays valid while a quorum of fence tables keeps agreeing
		// the primary is unfenced.
		oldLease, setupErr = NewWriteLease(p, mgrs[sbPrimaryNode], sbPrimaryNode, cp, sbLeaseTTL, sbLeaseRefresh)
		if setupErr != nil {
			return
		}
		rig.srv.SetWriteGuard(oldLease)

		// The old primary keeps draining write-behind state on its own
		// cadence — the exact daemon that must go quiet once fenced.
		env.SpawnDaemon("splitbrain.oldsync", func(sp *des.Proc) {
			for {
				sp.Sleep(des.Duration(2 * sbLeaseRefresh))
				if _, err := oldSrv.Sync(sp); err != nil {
					return
				}
			}
		})

		// Hot standby + heartbeat + gated coordinator on the clerk's node.
		standby := dfs.NewStandby(p, mgrs[sbStandbyNode], rig.srv.Geo)
		rig.srv.AttachStandby(p, standby, 100*time.Microsecond)
		hb := mgrs[sbPrimaryNode].Export(p, 8)
		hb.SetDefaultRights(rmem.RightRead)
		rmem.StartHeartbeat(mgrs[sbPrimaryNode], hb, 0, 100*time.Microsecond)
		hbImp := mgrs[sbClerkNode].Import(p, sbPrimaryNode, hb.ID(), hb.Gen(), 8)

		leg.rec = recovery.New(mgrs[sbClerkNode], sbPrimaryNode, recovery.Config{FenceWait: sbLeaseTTL})
		leg.rec.ReplicateVerdicts(cp.NewClient(p, mgrs[sbClerkNode]))
		leg.rec.OnFailover("standby.takeover", func(fp *des.Proc) error {
			srv, err := standby.TakeOver(fp, rig.srv.Store, sbNodes, dfs.WithReliableReplies())
			if err != nil {
				return err
			}
			// The successor is guarded too: it holds its own lease,
			// granted under the post-fence epoch.
			lease, err := NewWriteLease(fp, mgrs[sbStandbyNode], sbStandbyNode, cp, sbLeaseTTL, sbLeaseRefresh)
			if err != nil {
				return err
			}
			srv.SetWriteGuard(lease)
			rig.srv = srv
			return nil
		})
		leg.rec.OnFailover("clerk.rebind", func(fp *des.Proc) error {
			rig.clerk.Rebind(fp, rig.srv)
			return nil
		})
		leg.rec.Watch(hbImp, 0)
	})
	if err := env.RunUntil(des.Time(200 * time.Millisecond)); err != nil {
		return nil, err
	}
	if setupErr != nil {
		return nil, setupErr
	}

	// Freeze the old primary's Sync counter at the moment the partition
	// opens; everything it applies afterwards is a split-brain write.
	var syncedAtCut int64 = -1
	if camp != nil && len(camp.Partitions) > 0 {
		cut := des.Time(camp.Partitions[0].From)
		env.Spawn("splitbrain.mark", func(p *des.Proc) {
			if p.Now() < cut {
				p.Sleep(time.Duration(cut.Sub(p.Now())))
			}
			syncedAtCut = oldSrv.Synced
		})
	}

	ops := make([]dfs.ChaosOpResult, len(dfs.Figure2Ops))
	env.Spawn("splitbrain.mix", func(p *des.Proc) {
		// Anchor at t = 200ms so the partition window lands inside the
		// measured run.
		if at := des.Time(200 * time.Millisecond); p.Now() < at {
			p.Sleep(time.Duration(at.Sub(p.Now())))
		}
		start := p.Now()
		for i, spec := range dfs.Figure2Ops {
			// Pace the mix so it straddles the partition window: the front
			// half lands on the healthy primary, the back half dies against
			// the partitioned one and must replay on the fenced successor.
			if at := start.Add(time.Duration(i) * 300 * time.Microsecond); p.Now() < at {
				p.Sleep(time.Duration(at.Sub(p.Now())))
			}
			ops[i] = runVerifiedCPOp(p, rig, spec)
			// A failed op died against the partitioned primary; park until
			// the quorum-fenced takeover completes, then replay.
			for tries := 0; !ops[i].OK && tries < 3; tries++ {
				if err := leg.rec.AwaitRestored(p, time.Second); err != nil {
					break
				}
				leg.replays++
				ops[i] = runVerifiedCPOp(p, rig, spec)
			}
		}
		leg.window = time.Duration(p.Now().Sub(start))

		// The audit needs the heal: the old primary must observe that it
		// was fenced *and* repaired behind its back, and stay deposed.
		if camp != nil && len(camp.Partitions) > 0 && camp.Partitions[0].HealAt > 0 {
			heal := des.Time(camp.Partitions[0].HealAt + 5*time.Millisecond)
			if p.Now() < heal {
				p.Sleep(time.Duration(heal.Sub(p.Now())))
			}
		}
		if camp != nil {
			leg.denials = oldSrv.GuardDenials
			leg.oldSyncFrozen = syncedAtCut >= 0 && oldSrv.Synced == syncedAtCut
			leg.oldDeposed = oldLease.Deposed()
			leg.newWriterOK = rig.srv != oldSrv && rig.srv.GuardDenials == 0
		}
	})

	// Lease, heartbeat, and watchdog daemons never idle; finite horizon.
	if err := env.RunUntil(des.Time(3 * time.Second)); err != nil {
		return nil, err
	}
	leg.ops = ops
	leg.events = env.Events()
	return leg, nil
}
