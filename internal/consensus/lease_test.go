package consensus

import (
	"errors"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/model"
	"netmem/internal/rmem"
)

// leaseRig boots a 3-replica control plane plus extra client machines.
func leaseRig(t *testing.T, clients, proposers int, body func(p *des.Proc, cp *ControlPlane, mgrs []*rmem.Manager)) {
	t.Helper()
	env := des.NewEnv()
	env.Seed(1)
	c := cluster.New(env, &model.Default, 3+clients)
	mgrs := make([]*rmem.Manager, 3+clients)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(c.Nodes[i])
	}
	env.Spawn("boot", func(p *des.Proc) {
		g := NewGroup(p, Config{Proposers: proposers}, mgrs[:3]...)
		cp := NewControlPlane(p, g, nil)
		if err := cp.Start(p); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		body(p, cp, mgrs)
	})
	if err := env.RunUntil(des.Time(2 * time.Second)); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

// TestLaneLeaseRecycling is the lane-exhaustion property: a group with K
// client lanes survives K+2 client crash/replace cycles. Each crashed
// client abandons its lane without releasing it (exactly what a dead
// machine looks like), so every cycle past the Kth must reclaim a lane
// by observing a stale beacon on a quorum.
func TestLaneLeaseRecycling(t *testing.T) {
	const K = 2 // Proposers 5 - 3 replica lanes
	leaseRig(t, 1, 3+K, func(p *des.Proc, cp *ControlPlane, mgrs []*rmem.Manager) {
		seenLanes := map[int]int{}
		for cycle := 0; cycle < K+2; cycle++ {
			cl, err := cp.TryNewClient(p, mgrs[3])
			if err != nil {
				t.Errorf("cycle %d: TryNewClient: %v", cycle, err)
				return
			}
			seenLanes[cl.Proposer().Lane()]++
			if err := cl.Noop(p); err != nil {
				t.Errorf("cycle %d: commit on lane %d: %v", cycle, cl.Proposer().Lane(), err)
				return
			}
			cl.Abandon() // crash: beacon stops, claim stays
			p.Sleep(des.Duration(2 * time.Millisecond))
		}
		for lane := range seenLanes {
			if lane < 3 || lane >= 3+K {
				t.Errorf("client granted non-client lane %d", lane)
			}
		}
		// K+2 cycles over K lanes: at least one lane must have recycled.
		recycled := false
		for _, n := range seenLanes {
			if n > 1 {
				recycled = true
			}
		}
		if !recycled {
			t.Errorf("no lane recycled across %d cycles over %d lanes: %v", K+2, K, seenLanes)
		}
	})
}

// TestLiveLaneNeverStolen pins the other half of the lease contract: a
// lane whose owner keeps renewing is never reclaimed. With exactly one
// client lane, a second TryNewClient must wait out the TTL, watch the
// beacon move, and report ErrNoFreeLane — while the live owner keeps
// committing through the contention, loses nothing, and still owns its
// lane afterwards.
func TestLiveLaneNeverStolen(t *testing.T) {
	leaseRig(t, 2, 4, func(p *des.Proc, cp *ControlPlane, mgrs []*rmem.Manager) {
		owner, err := cp.TryNewClient(p, mgrs[3])
		if err != nil {
			t.Errorf("owner claim: %v", err)
			return
		}
		env := mgrs[3].Node.Env
		stop := false
		committed := 0
		env.Spawn("owner", func(op *des.Proc) {
			for !stop {
				if err := owner.Noop(op); err != nil {
					t.Errorf("live owner commit failed: %v", err)
					return
				}
				committed++
				op.Sleep(des.Duration(500 * time.Microsecond))
			}
		})
		p.Sleep(des.Duration(2 * time.Millisecond))
		if _, err := cp.TryNewClient(p, mgrs[4]); !errors.Is(err, ErrNoFreeLane) {
			t.Errorf("thief got %v, want ErrNoFreeLane", err)
		}
		p.Sleep(des.Duration(10 * time.Millisecond))
		stop = true
		if owner.LaneLost() {
			t.Errorf("live owner lost its lane")
		}
		if committed == 0 {
			t.Errorf("owner committed nothing during contention")
		}
	})
}

// TestClosedLaneReusedImmediately: Close releases the claim, so the next
// client gets a lane with no TTL wait even when all lanes were handed
// out before.
func TestClosedLaneReusedImmediately(t *testing.T) {
	leaseRig(t, 2, 4, func(p *des.Proc, cp *ControlPlane, mgrs []*rmem.Manager) {
		cl, err := cp.TryNewClient(p, mgrs[3])
		if err != nil {
			t.Errorf("first claim: %v", err)
			return
		}
		lane := cl.Proposer().Lane()
		if err := cl.Noop(p); err != nil {
			t.Errorf("commit: %v", err)
		}
		cl.Close(p)
		if err := cl.Noop(p); !errors.Is(err, ErrLaneLost) {
			t.Errorf("closed client committed (%v), want ErrLaneLost", err)
		}
		cl2, err := cp.TryNewClient(p, mgrs[4])
		if err != nil {
			t.Errorf("reuse claim: %v", err)
			return
		}
		if cl2.Proposer().Lane() != lane {
			t.Errorf("reused lane %d, want released lane %d", cl2.Proposer().Lane(), lane)
		}
		if err := cl2.Noop(p); err != nil {
			t.Errorf("commit on reused lane: %v", err)
		}
	})
}
