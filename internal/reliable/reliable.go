// Package reliable provides the sequencing, deduplication, and retry
// policy for at-most-once meta-instruction delivery (§3.7). The paper's
// cluster treats cell loss as "an extremely rare occurrence" and simply
// abandons a timed-out READ; this layer is the opt-in alternative for
// links that do lose cells: every reliable frame carries a (generation,
// sequence) pair, the sender retransmits on timeout with capped
// exponential backoff, and the receiver's dedup window ensures a
// retransmitted request is applied at most once — duplicates are answered
// from a bounded reply cache instead of re-executed.
//
// The package is pure policy and bookkeeping: it moves no bytes and knows
// nothing about the simulation. rmem owns the wire format and the retry
// loops; dfs/nameserver/hybrid opt in per import.
package reliable

import "time"

// Config is the retry policy for one manager (shared by its reliable
// imports).
type Config struct {
	// Timeout is the base per-attempt reply/ack timeout for a single-cell
	// operation; callers scale it by expected transfer time for larger
	// frames.
	Timeout time.Duration
	// MaxBackoff caps the exponentially growing per-attempt timeout.
	MaxBackoff time.Duration
	// MaxRetries is the number of retransmissions after the first attempt
	// before the operation fails.
	MaxRetries int
}

// AttemptTimeout returns the reply timeout for the attempt'th transmission
// (0-based): base doubling per attempt, capped at MaxBackoff (or at base
// itself when a large transfer's base already exceeds the cap).
func (c Config) AttemptTimeout(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = c.Timeout
	}
	cap := c.MaxBackoff
	if cap < base {
		cap = base
	}
	d := base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= cap {
			return cap
		}
	}
	return d
}

// Sender allocates the (generation, sequence) identity for outgoing
// reliable frames. Sequences are unique per sender within a generation
// (one counter across all destinations — receivers track a seen-set, not
// contiguity); the generation is the sender's incarnation number, bumped
// on restart so a rebooted node's frames are never mistaken for its
// predecessor's retransmissions.
type Sender struct {
	gen  uint16
	next uint32
}

// NewSender starts a sender at generation 1.
func NewSender() *Sender { return &Sender{gen: 1} }

// Next allocates the identity for a new frame.
func (s *Sender) Next() (gen uint16, seq uint32) {
	s.next++
	return s.gen, s.next
}

// Generation returns the current incarnation.
func (s *Sender) Generation() uint16 { return s.gen }

// Bump starts a new incarnation (after a crash/restart). The sequence
// space restarts too: receivers reset their windows on seeing the higher
// generation.
func (s *Sender) Bump() {
	s.gen++
	s.next = 0
}

// Result classifies an incoming reliable frame.
type Result int

const (
	// Fresh frames are applied.
	Fresh Result = iota
	// Duplicate frames were already applied: re-ack or replay the cached
	// reply, but do not re-execute.
	Duplicate
	// Stale frames carry a previous incarnation's generation: drop them.
	Stale
)

// window is how far behind the highest sequence seen from a source a frame
// may lag before it is written off as a duplicate without consulting the
// seen-set. It only needs to exceed the sender's maximum in-flight
// operations (one per process, a handful per node) times the retry limit.
const window = 1024

// replyCap bounds the per-source reply cache (FIFO eviction). In-flight
// request identities are bounded well below this, so a cached reply
// outlives every retransmission of its request.
const replyCap = 128

type srcState struct {
	gen     uint16
	maxSeq  uint32
	seen    map[uint32]struct{}
	replies map[uint32][]byte
	order   []uint32 // reply insertion order, for eviction
}

// Dedup is the receiver half: per-source (generation, sequence) windows
// and the reply cache that makes retransmitted READ/CAS requests replay
// their original answer.
type Dedup struct {
	srcs map[int]*srcState
}

// NewDedup returns an empty dedup table.
func NewDedup() *Dedup { return &Dedup{srcs: make(map[int]*srcState)} }

func (d *Dedup) src(src int) *srcState {
	st, ok := d.srcs[src]
	if !ok {
		st = &srcState{seen: make(map[uint32]struct{}), replies: make(map[uint32][]byte)}
		d.srcs[src] = st
	}
	return st
}

// Accept classifies frame (gen, seq) from src and, for Fresh frames,
// records it as seen. A generation above the current one resets the
// source's state (new sender incarnation); one below is Stale.
func (d *Dedup) Accept(src int, gen uint16, seq uint32) Result {
	st := d.src(src)
	switch {
	case gen < st.gen:
		return Stale
	case gen > st.gen:
		st.gen = gen
		st.maxSeq = 0
		st.seen = make(map[uint32]struct{})
		st.replies = make(map[uint32][]byte)
		st.order = st.order[:0]
	}
	if st.maxSeq > window && seq <= st.maxSeq-window {
		// Too far behind to still be tracked: anything this old was either
		// seen or permanently lost; treating it as a duplicate is the safe
		// side of at-most-once.
		return Duplicate
	}
	if _, dup := st.seen[seq]; dup {
		return Duplicate
	}
	st.seen[seq] = struct{}{}
	if seq > st.maxSeq {
		st.maxSeq = seq
		// Prune the seen-set as the window slides.
		if st.maxSeq > window {
			lo := st.maxSeq - window
			for s := range st.seen {
				if s <= lo {
					delete(st.seen, s)
				}
			}
		}
	}
	return Fresh
}

// SaveReply caches the encoded reply frame for (src, seq), so a duplicate
// request replays it instead of re-executing.
func (d *Dedup) SaveReply(src int, seq uint32, frame []byte) {
	st := d.src(src)
	if _, exists := st.replies[seq]; !exists {
		st.order = append(st.order, seq)
		if len(st.order) > replyCap {
			delete(st.replies, st.order[0])
			st.order = st.order[1:]
		}
	}
	st.replies[seq] = frame
}

// Reply returns the cached reply for (src, seq), if still held.
func (d *Dedup) Reply(src int, seq uint32) ([]byte, bool) {
	st, ok := d.srcs[src]
	if !ok {
		return nil, false
	}
	f, ok := st.replies[seq]
	return f, ok
}
