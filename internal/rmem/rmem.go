// Package rmem implements the paper's contribution: a communication model
// based on remote network memory. Processes export segments — contiguous
// pieces of their virtual memory — which other nodes import and then access
// directly with non-blocking WRITE, READ, and compare-and-swap (CAS)
// meta-instructions at specified offsets. Segments are protected by rights
// and generation numbers; data transfer is completely decoupled from
// control transfer, which is an optional, separately-costed notification.
//
// The structure mirrors the paper's software emulation: meta-instructions
// trap into the kernel (a fixed MetaTrap charge), the kernel validates the
// access against descriptor tables, and cells flow through the ATM
// interface. On the receiving side the kernel deposits data directly into
// the destination process's memory with no involvement from that process —
// unless notification was requested, in which case the full Ultrix
// signal-path cost (Table 2's 260 µs) is charged and a notification record
// becomes readable from the segment's notifier, the analogue of the
// paper's per-segment file descriptor.
package rmem

import (
	"errors"
	"fmt"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/reliable"
)

// Proto is the cluster protocol id for remote-memory traffic.
const Proto byte = 0x01

// MsgRegisterCap is the largest WRITE that travels through the shared
// message registers (and hence in a single cell). The paper's hardware
// moves 10 4-byte words; our framing leaves room for 8 words plus the
// header in one 48-byte cell payload. Timing is per-cell, so Table 2 is
// unaffected by the 8-byte difference.
const MsgRegisterCap = 32

// MaxBlock is the largest single block transfer; bigger transfers are
// chunked by callers (the file service never exceeds 8 KiB anyway).
const MaxBlock = 32 * 1024

// Rights is the access mask a segment grants an importer.
type Rights uint8

const (
	// RightRead permits remote READ.
	RightRead Rights = 1 << iota
	// RightWrite permits remote WRITE.
	RightWrite
	// RightCAS permits remote compare-and-swap.
	RightCAS

	// RightsAll grants everything.
	RightsAll = RightRead | RightWrite | RightCAS
	// RightsNone revokes everything.
	RightsNone Rights = 0
)

// NotifyMode is the per-descriptor notification control flag (§3.1.1): the
// host chooses whether an arriving request notifies the destination
// process always, never, or only when the request's notify bit is set.
type NotifyMode uint8

const (
	// NotifyConditional notifies iff the request's notify bit is set.
	NotifyConditional NotifyMode = iota
	// NotifyAlways notifies on every arriving request.
	NotifyAlways
	// NotifyNever suppresses all notification.
	NotifyNever
)

// Op identifies a remote operation kind in notifications and accounting.
type Op uint8

const (
	OpWrite Op = iota + 1
	OpRead
	OpCAS
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "WRITE"
	case OpRead:
		return "READ"
	case OpCAS:
		return "CAS"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Errors surfaced by the model. Remote failures arrive as NACKs and are
// mapped back to these.
var (
	ErrNoRights  = errors.New("rmem: access rights do not permit this operation")
	ErrBounds    = errors.New("rmem: offset/count outside segment")
	ErrStale     = errors.New("rmem: stale descriptor generation")
	ErrRevoked   = errors.New("rmem: segment revoked")
	ErrInhibited = errors.New("rmem: segment write-inhibited")
	ErrTimeout   = errors.New("rmem: operation timed out")
	ErrTooBig    = errors.New("rmem: transfer exceeds maximum size")
	ErrUnaligned = errors.New("rmem: word operation requires 4-byte alignment")

	// ErrStaleGeneration reports a fenced request that reached an exporter
	// which has restarted since the descriptor was leased: the epoch the
	// import carries no longer matches the exporter's incarnation. Unlike a
	// silent timeout, the typed NACK tells the requester its whole view of
	// the peer is stale and a re-import through the name service is needed.
	ErrStaleGeneration = errors.New("rmem: exporter restarted; descriptor lease fenced")
)

// nack codes on the wire.
const (
	nackNoRights = iota + 1
	nackBounds
	nackStale
	nackRevoked
	nackInhibited
	nackStaleGen
)

func nackErr(code byte) error {
	switch code {
	case nackNoRights:
		return ErrNoRights
	case nackBounds:
		return ErrBounds
	case nackStale:
		return ErrStale
	case nackRevoked:
		return ErrRevoked
	case nackInhibited:
		return ErrInhibited
	case nackStaleGen:
		return ErrStaleGeneration
	}
	return fmt.Errorf("rmem: unknown NACK code %d", code)
}

func errNack(err error) byte {
	switch {
	case errors.Is(err, ErrNoRights):
		return nackNoRights
	case errors.Is(err, ErrBounds):
		return nackBounds
	case errors.Is(err, ErrStale):
		return nackStale
	case errors.Is(err, ErrRevoked):
		return nackRevoked
	case errors.Is(err, ErrInhibited):
		return nackInhibited
	case errors.Is(err, ErrStaleGeneration):
		return nackStaleGen
	}
	return 0xff
}

// Notification is one control-transfer event delivered to a segment's
// notifier: who touched the segment, how, and where. The destination
// process typically reads the just-written request arguments out of the
// segment memory at [Offset, Offset+Count).
type Notification struct {
	Src    int // requesting node
	Op     Op
	Offset int
	Count  int
	At     des.Time // arrival time at the destination kernel
}

// Segment is an exported, pinned region of a process's virtual memory.
// Remote nodes address it by (descriptor id, generation).
type Segment struct {
	m   *Manager
	id  uint16
	gen uint16
	buf []byte

	defaultRights Rights
	nodeRights    map[int]Rights

	mode      NotifyMode
	inhibited bool
	revoked   bool

	notes    *des.FIFO[Notification]
	nwaiters *des.WaitQueue

	// Stats.
	RemoteWrites, RemoteReads, RemoteCAS int64
	Notifies                             int64
}

// ID returns the descriptor id.
func (s *Segment) ID() uint16 { return s.id }

// Gen returns the descriptor's generation number.
func (s *Segment) Gen() uint16 { return s.gen }

// Size returns the segment length in bytes.
func (s *Segment) Size() int { return len(s.buf) }

// Bytes exposes the backing memory. This is the *local* process's own
// view of its exported memory — reading it carries no simulated cost.
// Simulated-process code that wants local-access timing should use
// ReadLocal/WriteLocal.
func (s *Segment) Bytes() []byte { return s.buf }

// SetNotifyMode sets the descriptor's notification control flag.
func (s *Segment) SetNotifyMode(m NotifyMode) { s.mode = m }

// SetRights grants rights to a specific node, overriding the default.
func (s *Segment) SetRights(node int, r Rights) {
	if s.nodeRights == nil {
		s.nodeRights = make(map[int]Rights)
	}
	s.nodeRights[node] = r
}

// SetDefaultRights sets the rights for nodes with no specific grant.
func (s *Segment) SetDefaultRights(r Rights) { s.defaultRights = r }

func (s *Segment) rightsFor(node int) Rights {
	if r, ok := s.nodeRights[node]; ok {
		return r
	}
	return s.defaultRights
}

// SetWriteInhibit toggles the segment write-inhibit flag, the paper's
// synchronization mechanism (4): while set, incoming remote WRITEs and
// CASes are refused with a NACK.
func (s *Segment) SetWriteInhibit(v bool) { s.inhibited = v }

// WriteInhibited reports the flag.
func (s *Segment) WriteInhibited() bool { return s.inhibited }

// Manager is the per-node kernel component of the model: descriptor
// tables, pending-operation bookkeeping, and the protocol handler. One
// Manager exists per cluster node.
type Manager struct {
	Node *cluster.Node

	exports map[uint16]*Segment
	nextSeg uint16
	nextGen uint16 // monotonically increasing per export (§4.1)

	pending map[uint32]*pendingOp
	nextReq uint32

	// WriteFaults records NACKs received for fire-and-forget WRITEs, which
	// have no requester to deliver the error to.
	WriteFaults []error

	// track is this node's trace track for meta-instruction spans.
	track string

	// Reliability layer (§3.7, opt-in per import). relSend allocates
	// outgoing (generation, sequence) identities; relDedup enforces
	// at-most-once on arriving reliable requests; pendingAcks tracks
	// reliable WRITEs awaiting their WRACK.
	relCfg      reliable.Config
	relSend     *reliable.Sender
	relDedup    *reliable.Dedup
	pendingAcks map[uint32]*ackWait
	relDefault  bool

	// Lease epoch (§3.7 recovery). incarnation counts kernel restarts;
	// fenced requests carrying a different epoch are refused with
	// ErrStaleGeneration before they can touch the new incarnation's
	// memory. fenceDefault opts new imports into carrying the epoch.
	incarnation  uint16
	fenceDefault bool

	// bufs recycles read-result buffers (seqlock snapshots, local reads);
	// see Buffers.
	bufs BufPool
}

// ackWait is an outstanding reliable WRITE awaiting acknowledgement.
type ackWait struct {
	done bool
	err  error
	q    *des.WaitQueue
}

// NewManager creates the kernel component on a node and registers its
// protocol handler.
func NewManager(node *cluster.Node) *Manager {
	m := &Manager{
		Node:    node,
		exports: make(map[uint16]*Segment),
		nextSeg: 1,
		pending: make(map[uint32]*pendingOp),
		track:   fmt.Sprintf("node%d.rmem", node.ID),
		relCfg: reliable.Config{
			Timeout:    node.P.RetryTimeout,
			MaxBackoff: node.P.RetryBackoffMax,
			MaxRetries: node.P.RetryLimit,
		},
		relSend:     reliable.NewSender(),
		relDedup:    reliable.NewDedup(),
		pendingAcks: make(map[uint32]*ackWait),
	}
	node.RegisterProtoEx(Proto, m.handle, func(first []byte) des.Duration {
		if len(first) == 0 {
			return 0
		}
		switch first[0] & kindMask {
		case kindWrite, kindReadReply:
			// Data-bearing frames pay the translation-walk + copy cost for
			// every cell as it arrives.
			return node.P.DepositPerCell
		}
		return 0
	})
	return m
}

// Export pins size bytes of the caller's memory and installs a descriptor,
// charging the kernel's segment-creation cost (descriptor, generation
// number, pinning, translation entries). The new segment grants no remote
// rights until SetRights/SetDefaultRights.
func (m *Manager) Export(p *des.Proc, size int) *Segment {
	return m.exportAt(p, m.allocID(), size)
}

// ExportWellKnown is Export at a fixed descriptor id, used to bootstrap
// services that need segments at agreed addresses (the name service).
// It panics if the id is in use.
func (m *Manager) ExportWellKnown(p *des.Proc, id uint16, size int) *Segment {
	if _, busy := m.exports[id]; busy {
		panic(fmt.Sprintf("rmem: node %d: well-known segment %d already exported", m.Node.ID, id))
	}
	return m.exportAt(p, id, size)
}

func (m *Manager) allocID() uint16 {
	for {
		id := m.nextSeg
		m.nextSeg++
		if m.nextSeg == 0 { // skip 0: reserved as "no segment"
			m.nextSeg = 1
		}
		if _, busy := m.exports[id]; !busy {
			return id
		}
	}
}

func (m *Manager) exportAt(p *des.Proc, id uint16, size int) *Segment {
	// "Each time a segment is exported, the kernel assigns it a
	// monotonically increasing generation number" (§4.1). There are enough
	// bits that wrap-around is slow relative to clerks' deletion
	// propagation.
	m.nextGen++
	s := &Segment{
		m:        m,
		id:       id,
		gen:      m.nextGen,
		buf:      make([]byte, size),
		notes:    des.NewFIFO[Notification](m.Node.Env, fmt.Sprintf("seg%d.%d.notes", m.Node.ID, id), 0),
		nwaiters: des.NewWaitQueue(m.Node.Env),
	}
	m.exports[id] = s
	m.Node.UseCPU(p, cluster.CatClient, m.Node.P.SegmentCreate)
	return s
}

// Revoke makes the segment unavailable: subsequent remote requests carry a
// stale generation (or hit a revoked slot) and are NACKed. Charges the
// kernel teardown cost (unpin, purge translations).
func (m *Manager) Revoke(p *des.Proc, s *Segment) {
	s.revoked = true
	delete(m.exports, s.id)
	m.Node.UseCPU(p, cluster.CatClient, m.Node.P.SegmentTeardown)
}

// Lookup returns the exported segment with the given id, if live.
func (m *Manager) Lookup(id uint16) (*Segment, bool) {
	s, ok := m.exports[id]
	return s, ok
}

// SetReliableDefault makes imports installed after this call reliable (or
// not) by default; individual imports can still override with
// Import.SetReliable. Services opt whole managers in through their own
// options (dfs.WithReliable, nameserver.Config.Reliable, …).
func (m *Manager) SetReliableDefault(v bool) { m.relDefault = v }

// SetRetryPolicy overrides the manager's retry policy (defaults come from
// the model's RetryTimeout/RetryBackoffMax/RetryLimit).
func (m *Manager) SetRetryPolicy(cfg reliable.Config) { m.relCfg = cfg }

// BumpGeneration starts a new sender incarnation, as after a crash and
// restart: receivers discard any of the previous incarnation's frames
// still in flight, and outstanding ack waits are abandoned. netmem binds
// this to a fault campaign's node-recovery events.
func (m *Manager) BumpGeneration() {
	m.relSend.Bump()
	for seq, aw := range m.pendingAcks {
		delete(m.pendingAcks, seq)
		aw.err = ErrTimeout
		aw.done = true
		aw.q.WakeAll()
	}
}

// Incarnation returns the node's current lease epoch: the number of kernel
// restarts this Manager has been through. Fenced imports carry the epoch
// they were leased under; a mismatch is refused with ErrStaleGeneration.
func (m *Manager) Incarnation() uint16 { return m.incarnation }

// SetFenceDefault makes imports installed after this call carry the lease
// epoch (or not) by default; individual imports can override with
// Import.SetFence. Fenced small WRITEs may grow by two bytes on the wire —
// the price of restart fencing — so the calibrated experiments leave it
// off.
func (m *Manager) SetFenceDefault(v bool) { m.fenceDefault = v }

// Restart models a cold reboot of the node's kernel: every export is torn
// down (volatile descriptor tables do not survive), the id and generation
// counters reset — exactly the collision hazard that makes generation
// numbers alone insufficient across a reboot — and the incarnation number
// advances, fencing every descriptor leased by the previous life with
// ErrStaleGeneration. Outstanding local operations are abandoned with
// ErrTimeout and the reliability sender starts a new generation. No CPU is
// charged: the work happens while the machine is down. netmem.WithRecovery
// binds this to a fault campaign's node-recovery events.
func (m *Manager) Restart() {
	m.incarnation++
	for id, s := range m.exports {
		s.revoked = true
		delete(m.exports, id)
	}
	m.nextSeg = 1
	m.nextGen = 0
	for req, po := range m.pending {
		delete(m.pending, req)
		po.err = ErrTimeout
		po.done = true
		po.q.WakeAll()
	}
	m.BumpGeneration()
	if tr := m.Node.Env.Tracer(); tr != nil {
		tr.Count("rmem.restarts", 1)
	}
}

// Import installs a descriptor for a remote segment into the local kernel
// tables and returns the handle used to issue meta-instructions. The
// (node, id, gen, size) tuple normally comes from the name service.
func (m *Manager) Import(p *des.Proc, node int, id, gen uint16, size int) *Import {
	m.Node.UseCPU(p, cluster.CatClient, m.Node.P.ImportInstall)
	return &Import{m: m, node: node, segID: id, gen: gen, size: size, cat: cluster.CatClient,
		rel: m.relDefault, fence: m.fenceDefault}
}

// Import is an installed descriptor for a remote segment: the "descriptor
// register" named by meta-instructions.
type Import struct {
	m     *Manager
	node  int
	segID uint16
	gen   uint16
	size  int
	stale bool
	swap  bool   // byte-order conversion on transfers (§3.6)
	cat   string // CPU accounting category for operations on this import
	rel   bool   // route operations through the reliability layer
	fence bool   // carry the exporter-incarnation epoch on requests
	epoch uint16 // exporter incarnation this descriptor was leased under
}

// SetFence makes this descriptor's requests carry the exporter-incarnation
// epoch (the lease); SetEpoch records which incarnation the lease was
// taken from — the name service stamps it from the registry record, and
// direct wirings use the exporter's Manager.Incarnation(). A restarted
// exporter refuses mismatched epochs with ErrStaleGeneration instead of
// letting a stale descriptor silently time out — or worse, silently land
// in whatever the new incarnation exported under the recycled (id, gen).
func (i *Import) SetFence(v bool) { i.fence = v }

// SetEpoch records the exporter incarnation this descriptor was leased
// under (only consulted when the descriptor is fenced).
func (i *Import) SetEpoch(e uint16) { i.epoch = e }

// Fenced reports whether requests carry the lease epoch.
func (i *Import) Fenced() bool { return i.fence }

// Epoch returns the recorded exporter incarnation.
func (i *Import) Epoch() uint16 { return i.epoch }

// SetReliable routes this descriptor's operations through the reliability
// layer (§3.7): WRITEs block until acknowledged and retransmit on timeout,
// READ/CAS retransmit their requests, and the remote kernel applies each
// request at most once. Reliable small WRITEs grow from one cell to two
// (the 6-byte identity displaces payload past the 32-byte register cap's
// cell budget) — the price of an ack'd write. Unreliable imports are
// byte-for-byte identical to the calibrated model.
func (i *Import) SetReliable(v bool) { i.rel = v }

// Reliable reports whether operations use the reliability layer.
func (i *Import) Reliable() bool { return i.rel }

// SetByteOrderSwap marks this descriptor as crossing a byte-order
// boundary: writes are swapped word-wise as they deposit remotely, and
// read replies are swapped as they deposit locally — the LANCE-style
// in-transfer conversion of §3.6. Word sizes and floating-point formats
// beyond endianness would need presentation conversion, as the paper
// notes.
func (i *Import) SetByteOrderSwap(v bool) { i.swap = v }

// SetAccountCategory changes the CPU accounting category charged for
// operations issued through this descriptor. The default is client work;
// a server answering requests through remote writes tags its reply
// imports as reply work so Figure 3's breakdown attributes it correctly.
func (i *Import) SetAccountCategory(cat string) { i.cat = cat }

// Node returns the remote node the descriptor points at.
func (i *Import) Node() int { return i.node }

// ManagerNode returns the local node this descriptor is installed on.
func (i *Import) ManagerNode() *cluster.Node { return i.m.Node }

// SegID returns the remote descriptor id.
func (i *Import) SegID() uint16 { return i.segID }

// Gen returns the generation the descriptor was imported at.
func (i *Import) Gen() uint16 { return i.gen }

// Size returns the remote segment size.
func (i *Import) Size() int { return i.size }

// MarkStale poisons the descriptor locally: subsequent operations fail at
// the source with ErrStale, "allowing the source a chance to recover"
// (§4.1) — typically by re-importing through the name service.
func (i *Import) MarkStale() { i.stale = true }

// Stale reports whether the descriptor has been poisoned.
func (i *Import) Stale() bool { return i.stale }

// pendingOp tracks an outstanding READ or CAS awaiting its reply.
type pendingOp struct {
	op      Op
	dst     *Segment // READ: local segment the data lands in
	doff    int
	swap    bool
	done    bool
	err     error
	success bool     // CAS result
	start   des.Time // issue time at the requester (latency metrics)
	at      des.Time
	q       *des.WaitQueue

	// Reliability: the encoded request frame and routing info kept for
	// retransmission (nil frame = unreliable, no retries).
	relFrame []byte
	relDst   int
	relCat   string
	relBase  des.Duration // size-scaled per-attempt timeout base
}
