package rmem

import (
	"errors"

	"netmem/internal/des"
)

// §3.4's second synchronization option, packaged as a reusable primitive:
// "one can exploit certain atomicity properties of the communication model
// for achieving synchronization. For example … single-word local memory
// accesses are atomic with respect to remote memory accesses. This
// property can be used to ensure, for example, that a flag word in a
// record is atomically updated. This allows a sufficient level of
// synchronization in cases where there is a single writer and multiple
// readers."
//
// A Record is a fixed-size region fronted by a sequence word. The local
// owner publishes with a seqlock protocol: bump the word to odd (update in
// progress), write the body, bump to even. A remote reader fetches word +
// body + word in one remote read; a torn snapshot shows either an odd
// sequence or mismatched words and is retried. The trailing word is a
// second copy of the sequence at the record's end, so one contiguous READ
// covers the whole protocol.

// ErrTornRead reports that a consistent snapshot could not be obtained
// within the retry budget.
var ErrTornRead = errors.New("rmem: torn record read (writer too busy)")

// RecordSize returns the segment footprint of a record with a body of n
// bytes: leading sequence word + body + trailing sequence word.
func RecordSize(n int) int { return 4 + n + 4 }

// PublishRecord writes body into the record at off within the owner's own
// segment using the single-writer protocol. Only the segment owner may
// call it, and only one writer may exist per record.
func PublishRecord(p *des.Proc, seg *Segment, off int, body []byte) {
	seq := seg.ReadWord(p, off)
	seg.WriteWord(p, off, seq+1) // odd: update in progress
	seg.WriteLocal(p, off+4, body)
	seg.WriteWord(p, off+4+len(body), seq+2)
	seg.WriteWord(p, off, seq+2) // even: stable
}

// snapshot checks one fetched image for consistency.
func recordConsistent(buf []byte, n int) bool {
	head := be32(buf)
	tail := be32(buf[4+n:])
	return head%2 == 0 && head == tail
}

// ReadRecord fetches a consistent snapshot of the n-byte record at off in
// the imported segment, retrying torn reads up to retries times. The body
// is deposited at (dst, doff) — including the sequence words — and the
// clean body is returned.
func ReadRecord(p *des.Proc, imp *Import, off, n int, dst *Segment, doff int, retries int, timeout des.Duration) ([]byte, error) {
	total := RecordSize(n)
	for attempt := 0; attempt <= retries; attempt++ {
		if err := imp.Read(p, off, total, dst, doff, timeout); err != nil {
			return nil, err
		}
		buf := dst.Bytes()[doff : doff+total]
		if recordConsistent(buf, n) {
			// The snapshot comes from the importer's buffer pool; callers
			// done with it can return it via Manager.Buffers().Put.
			out := imp.m.bufs.Get(n)
			copy(out, buf[4:4+n])
			return out, nil
		}
	}
	return nil, ErrTornRead
}
