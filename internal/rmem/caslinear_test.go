package rmem

import (
	"sort"
	"testing"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/faults"
	"netmem/internal/model"
	"netmem/internal/obs"
)

// TestCASLinearizableUnderFaults is a property test of the at-most-once CAS
// path: N clerks on distinct nodes hammer one shared word through the
// reliability layer while the link fabric duplicates (dup1) or reorders
// (reorder2) cells. Each clerk reads the word and tries CAS(v, v+1); a
// success claims slot v. The winner sequence admits a sequential history iff
//
//   - every slot 0..total-1 is claimed exactly once (a slot claimed twice
//     means a retransmitted CAS was re-executed; a gap means a phantom
//     increment), and
//   - each clerk's own claims are strictly increasing (the word only grows,
//     so program order must agree with the claimed positions).
func TestCASLinearizableUnderFaults(t *testing.T) {
	const (
		clerks   = 4
		winsEach = 12
		total    = clerks * winsEach
	)
	for _, name := range []string{"dup1", "reorder2"} {
		for _, seed := range []int64{1, 13} {
			camp, ok := faults.Named(name)
			if !ok {
				t.Fatalf("campaign %q not registered", name)
			}
			t.Run(camp.Name, func(t *testing.T) {
				env := des.NewEnv()
				env.Seed(seed)
				tr := obs.New(obs.Config{})
				env.SetTracer(tr)
				eng := faults.NewEngine(env, camp)
				c := cluster.New(env, &model.Default, clerks+1, cluster.WithFaultEngine(eng))
				mgrs := make([]*Manager, clerks+1)
				for i := range mgrs {
					mgrs[i] = NewManager(c.Nodes[i])
				}

				claims := make([][]uint32, clerks)
				var seg *Segment
				env.Spawn("setup", func(p *des.Proc) {
					seg = mgrs[0].Export(p, 64)
					seg.SetDefaultRights(RightsAll)
					for i := 0; i < clerks; i++ {
						i := i
						env.Spawn("clerk", func(cp *des.Proc) {
							imp := mgrs[i+1].Import(cp, 0, seg.ID(), seg.Gen(), seg.Size())
							imp.SetReliable(true)
							local := mgrs[i+1].Export(cp, 64)
							for len(claims[i]) < winsEach {
								if err := imp.Read(cp, 0, 4, local, 0, 0); err != nil {
									t.Errorf("clerk %d read: %v", i, err)
									return
								}
								v := be32(local.Bytes())
								ok, err := imp.CAS(cp, 0, v, v+1, local, 8, 0)
								if err != nil {
									t.Errorf("clerk %d CAS: %v", i, err)
									return
								}
								if ok {
									claims[i] = append(claims[i], v)
								}
							}
						})
					}
				})
				if err := env.Run(); err != nil {
					t.Fatalf("sim: %v", err)
				}

				// Per-clerk program order must agree with claimed positions.
				var all []uint32
				for i, cs := range claims {
					for k := 1; k < len(cs); k++ {
						if cs[k] <= cs[k-1] {
							t.Errorf("clerk %d claims not increasing: %v", i, cs)
							break
						}
					}
					all = append(all, cs...)
				}
				// Global: slots 0..total-1 exactly once.
				if len(all) != total {
					t.Fatalf("%d wins recorded, want %d", len(all), total)
				}
				sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
				for k, v := range all {
					if v != uint32(k) {
						t.Fatalf("winner sequence not a permutation of 0..%d: slot %d claimed as %d (duplicate or gap ⇒ no sequential history)", total-1, k, v)
					}
				}
				if got := be32(seg.Bytes()); got != total {
					t.Errorf("final word = %d, want %d", got, total)
				}
				// The run must actually have exercised the campaign's fault.
				kind := faults.KindDup
				if camp.Name == "reorder2" {
					kind = faults.KindReorder
				}
				if eng.Injected(kind) == 0 {
					t.Errorf("campaign %s injected no %s faults — property unexercised at seed %d", camp.Name, kind, seed)
				}
			})
		}
	}
}
