package rmem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"netmem/internal/atm"
	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/model"
)

const us = time.Microsecond

// testPair builds a two-node cluster with managers on both nodes.
func testPair(t *testing.T, opts ...cluster.Option) (*des.Env, *cluster.Cluster, *Manager, *Manager) {
	t.Helper()
	env := des.NewEnv()
	c := cluster.New(env, &model.Default, 2, opts...)
	return env, c, NewManager(c.Nodes[0]), NewManager(c.Nodes[1])
}

// run executes fn as a simulated process and drains the simulation.
func run(t *testing.T, env *des.Env, fn func(p *des.Proc)) {
	t.Helper()
	env.Spawn("test", fn)
	if err := env.RunUntil(des.Time(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteWriteDeposits(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	var seg *Segment
	data := []byte("twelve bytes")
	run(t, env, func(p *des.Proc) {
		seg = m1.Export(p, 256)
		seg.SetDefaultRights(RightsAll)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		if err := imp.Write(p, 100, data, false); err != nil {
			t.Error(err)
		}
		p.Sleep(time.Millisecond) // let the cell arrive
		if !bytes.Equal(seg.Bytes()[100:112], data) {
			t.Error("data not deposited")
		}
		if seg.RemoteWrites != 1 {
			t.Errorf("RemoteWrites = %d", seg.RemoteWrites)
		}
		if seg.PendingNotifications() != 0 {
			t.Error("unexpected notification for data-only write")
		}
	})
	if len(m0.WriteFaults) != 0 {
		t.Fatalf("write faults: %v", m0.WriteFaults)
	}
}

func TestWriteRequiresRights(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 64)
		seg.SetDefaultRights(RightRead) // no write
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		if err := imp.Write(p, 0, []byte("x"), false); err != nil {
			t.Error(err) // local check passes; failure is remote
		}
		p.Sleep(time.Millisecond)
	})
	if len(m0.WriteFaults) != 1 {
		t.Fatalf("write faults = %v, want one ErrNoRights NACK", m0.WriteFaults)
	}
}

func TestPerNodeRightsOverrideDefault(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 64)
		seg.SetDefaultRights(RightsNone)
		seg.SetRights(0, RightWrite)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		if err := imp.Write(p, 0, []byte("ok"), false); err != nil {
			t.Error(err)
		}
		p.Sleep(time.Millisecond)
		if seg.Bytes()[0] != 'o' {
			t.Error("granted node's write did not land")
		}
	})
	if len(m0.WriteFaults) != 0 {
		t.Fatalf("unexpected faults: %v", m0.WriteFaults)
	}
}

func TestWriteBoundsCheckedLocally(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 16)
		seg.SetDefaultRights(RightsAll)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		if err := imp.Write(p, 10, []byte("0123456789"), false); err != ErrBounds {
			t.Errorf("err = %v, want ErrBounds", err)
		}
	})
}

func TestStaleGenerationNACKed(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 64)
		seg.SetDefaultRights(RightsAll)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		// Owner revokes and re-exports the same descriptor slot: the
		// generation number advances and the old import goes stale.
		m1.Revoke(p, seg)
		seg2 := m1.ExportWellKnown(p, seg.ID(), 64)
		seg2.SetDefaultRights(RightsAll)
		if seg2.Gen() == seg.Gen() {
			t.Fatal("generation did not advance on re-export")
		}
		if err := imp.Write(p, 0, []byte("late"), false); err != nil {
			t.Error(err)
		}
		p.Sleep(time.Millisecond)
		if seg2.Bytes()[0] != 0 {
			t.Error("stale write landed in the re-exported segment")
		}
	})
	if len(m0.WriteFaults) != 1 {
		t.Fatalf("want one stale NACK, got %v", m0.WriteFaults)
	}
}

func TestRevokedSegmentNACKed(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 64)
		seg.SetDefaultRights(RightsAll)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		m1.Revoke(p, seg)
		var dst *Segment
		dst = m0.Export(p, 64)
		err := imp.Read(p, 0, 8, dst, 0, time.Second)
		if err != ErrRevoked {
			t.Errorf("read err = %v, want ErrRevoked", err)
		}
	})
}

func TestMarkStaleFailsLocally(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 64)
		seg.SetDefaultRights(RightsAll)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		imp.MarkStale()
		if err := imp.Write(p, 0, []byte("x"), false); err != ErrStale {
			t.Errorf("err = %v, want local ErrStale", err)
		}
	})
	if len(m0.WriteFaults) != 0 {
		t.Fatal("stale descriptor should fail at the source, not over the network")
	}
}

func TestWriteInhibit(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 64)
		seg.SetDefaultRights(RightsAll)
		seg.SetWriteInhibit(true)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		if err := imp.Write(p, 0, []byte("no"), false); err != nil {
			t.Error(err)
		}
		p.Sleep(time.Millisecond)
		if seg.Bytes()[0] != 0 {
			t.Error("write landed despite inhibit")
		}
		// Reads still work while write-inhibited.
		dst := m0.Export(p, 64)
		if err := imp.Read(p, 0, 8, dst, 0, time.Second); err != nil {
			t.Errorf("read during inhibit: %v", err)
		}
		seg.SetWriteInhibit(false)
		if err := imp.Write(p, 0, []byte("yes"), false); err != nil {
			t.Error(err)
		}
		p.Sleep(time.Millisecond)
		if seg.Bytes()[0] != 'y' {
			t.Error("write after uninhibit did not land")
		}
	})
	if len(m0.WriteFaults) != 1 {
		t.Fatalf("want exactly one inhibit NACK, got %v", m0.WriteFaults)
	}
}

func TestSmallWriteCapAndBlockVariant(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	big := make([]byte, 4096)
	for i := range big {
		big[i] = byte(i)
	}
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 8192)
		seg.SetDefaultRights(RightsAll)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		if err := imp.Write(p, 0, big, false); err != ErrTooBig {
			t.Errorf("register write of 4K: err = %v, want ErrTooBig", err)
		}
		if err := imp.WriteBlock(p, 512, big, false); err != nil {
			t.Error(err)
		}
		p.Sleep(10 * time.Millisecond)
		if !bytes.Equal(seg.Bytes()[512:512+4096], big) {
			t.Error("block write corrupted")
		}
	})
}

func TestReadRoundTrip(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		src := m1.Export(p, 256)
		src.SetDefaultRights(RightRead)
		copy(src.Bytes()[32:], "the remote payload")
		dst := m0.Export(p, 256)
		imp := m0.Import(p, 1, src.ID(), src.Gen(), src.Size())
		if err := imp.Read(p, 32, 18, dst, 64, time.Second); err != nil {
			t.Fatal(err)
		}
		if string(dst.Bytes()[64:82]) != "the remote payload" {
			t.Errorf("dst = %q", dst.Bytes()[64:82])
		}
		if src.RemoteReads != 1 {
			t.Errorf("RemoteReads = %d", src.RemoteReads)
		}
	})
}

func TestReadAsyncProceedsBeforeReply(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		src := m1.Export(p, 64)
		src.SetDefaultRights(RightRead)
		dst := m0.Export(p, 64)
		imp := m0.Import(p, 1, src.ID(), src.Gen(), src.Size())
		op, err := imp.ReadAsync(p, 0, 8, dst, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if op.Done() {
			t.Error("read completed synchronously; READ must be non-blocking")
		}
		if err := op.Wait(p, time.Second); err != nil {
			t.Fatal(err)
		}
		if !op.Done() {
			t.Error("not done after Wait")
		}
	})
}

func TestReadTimeoutOnLossyLink(t *testing.T) {
	fault := &atm.Fault{LossRate: 1.0, Rand: rand.New(rand.NewSource(1))}
	env, _, m0, m1 := testPair(t, cluster.WithFault(fault))
	run(t, env, func(p *des.Proc) {
		src := m1.Export(p, 64)
		src.SetDefaultRights(RightRead)
		dst := m0.Export(p, 64)
		imp := m0.Import(p, 1, src.ID(), src.Gen(), src.Size())
		start := p.Now()
		err := imp.Read(p, 0, 8, dst, 0, 500*us)
		if err != ErrTimeout {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
		if waited := p.Now().Sub(start); waited < 500*us {
			t.Errorf("returned after %v, before the timeout", waited)
		}
	})
}

func TestCASSuccessAndFailure(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 64)
		seg.SetDefaultRights(RightsAll)
		seg.WriteWord(p, 8, 7)
		res := m0.Export(p, 64)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())

		ok, err := imp.CAS(p, 8, 7, 99, res, 0, time.Second)
		if err != nil || !ok {
			t.Fatalf("CAS(7→99) = %v, %v; want success", ok, err)
		}
		if seg.ReadWord(p, 8) != 99 {
			t.Error("CAS did not swap")
		}
		if res.ReadWord(p, 0) != 1 {
			t.Error("success flag not deposited")
		}

		ok, err = imp.CAS(p, 8, 7, 123, res, 0, time.Second)
		if err != nil || ok {
			t.Fatalf("CAS with wrong old = %v, %v; want failure", ok, err)
		}
		if seg.ReadWord(p, 8) != 99 {
			t.Error("failed CAS mutated the word")
		}
		if res.ReadWord(p, 0) != 0 {
			t.Error("failure flag not deposited")
		}
	})
}

func TestCASUnaligned(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 64)
		seg.SetDefaultRights(RightsAll)
		res := m0.Export(p, 64)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		if _, err := imp.CAS(p, 6, 0, 1, res, 0, time.Second); err != ErrUnaligned {
			t.Errorf("err = %v, want ErrUnaligned", err)
		}
	})
}

func TestCASBuildsMutex(t *testing.T) {
	// §3.4: CAS "is sufficiently powerful to build higher level
	// synchronization primitives". Two clients contend for a spinlock word
	// on the server; the critical sections must not overlap.
	env := des.NewEnv()
	c := cluster.New(env, &model.Default, 3)
	server := NewManager(c.Nodes[0])
	clients := []*Manager{NewManager(c.Nodes[1]), NewManager(c.Nodes[2])}

	var lockSeg *Segment
	var inCrit, maxCrit, entries int
	env.Spawn("setup", func(p *des.Proc) {
		lockSeg = server.Export(p, 64)
		lockSeg.SetDefaultRights(RightsAll)
	})
	for ci, cm := range clients {
		ci, cm := ci, cm
		env.Spawn("client", func(p *des.Proc) {
			p.Sleep(time.Millisecond) // after setup
			res := cm.Export(p, 8)
			imp := cm.Import(p, 0, lockSeg.ID(), lockSeg.Gen(), lockSeg.Size())
			for iter := 0; iter < 5; iter++ {
				for { // acquire
					ok, err := imp.CAS(p, 0, 0, uint32(ci+1), res, 0, time.Second)
					if err != nil {
						t.Error(err)
						return
					}
					if ok {
						break
					}
					p.Sleep(50 * us)
				}
				inCrit++
				entries++
				if inCrit > maxCrit {
					maxCrit = inCrit
				}
				p.Sleep(100 * us) // critical section
				inCrit--
				if ok, err := imp.CAS(p, 0, uint32(ci+1), 0, res, 0, time.Second); err != nil || !ok {
					t.Errorf("release failed: %v %v", ok, err)
					return
				}
			}
		})
	}
	if err := env.RunUntil(des.Time(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if entries != 10 {
		t.Fatalf("entries = %d, want 10", entries)
	}
	if maxCrit != 1 {
		t.Fatalf("mutual exclusion violated: %d processes in critical section", maxCrit)
	}
}

func TestNotificationModes(t *testing.T) {
	cases := []struct {
		mode      NotifyMode
		reqBit    bool
		wantNotes int
	}{
		{NotifyConditional, false, 0},
		{NotifyConditional, true, 1},
		{NotifyAlways, false, 1},
		{NotifyAlways, true, 1},
		{NotifyNever, false, 0},
		{NotifyNever, true, 0},
	}
	for _, tc := range cases {
		env, _, m0, m1 := testPair(t)
		run(t, env, func(p *des.Proc) {
			seg := m1.Export(p, 64)
			seg.SetDefaultRights(RightsAll)
			seg.SetNotifyMode(tc.mode)
			imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
			if err := imp.Write(p, 4, []byte("args"), tc.reqBit); err != nil {
				t.Fatal(err)
			}
			p.Sleep(time.Millisecond)
			if got := seg.PendingNotifications(); got != tc.wantNotes {
				t.Errorf("mode %d bit %v: notifications = %d, want %d",
					tc.mode, tc.reqBit, got, tc.wantNotes)
			}
		})
	}
}

func TestNotificationCarriesRequestInfo(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	var note Notification
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 128)
		seg.SetDefaultRights(RightsAll)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())

		m1.Node.Env.Spawn("server", func(sp *des.Proc) {
			note = seg.AwaitNotification(sp)
		})
		if err := imp.Write(p, 40, []byte("lookup args"), true); err != nil {
			t.Fatal(err)
		}
		p.Sleep(time.Millisecond)
	})
	if note.Src != 0 || note.Op != OpWrite || note.Offset != 40 || note.Count != 11 {
		t.Fatalf("note = %+v", note)
	}
}

func TestOnNotifyHandler(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	var handled []Notification
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 64)
		seg.SetDefaultRights(RightsAll)
		seg.OnNotify(func(hp *des.Proc, n Notification) {
			handled = append(handled, n)
		})
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		for k := 0; k < 3; k++ {
			if err := imp.Write(p, k*8, []byte("x"), true); err != nil {
				t.Fatal(err)
			}
		}
		p.Sleep(5 * time.Millisecond)
	})
	if len(handled) != 3 {
		t.Fatalf("handler ran %d times, want 3", len(handled))
	}
}

func TestWordAtomicityUnderRemoteReads(t *testing.T) {
	// §3.4's single-writer/multi-reader flag: a local writer flips a word
	// between two values while a remote reader reads it; the reader must
	// only ever observe one of the two values, never a torn mix.
	env, _, m0, m1 := testPair(t)
	const a, b = 0x11111111, 0x22222222
	var observed []uint32
	env.Spawn("writer", func(p *des.Proc) {
		seg := m1.Export(p, 64)
		seg.SetDefaultRights(RightRead)
		seg.WriteWord(p, 0, a)

		env.Spawn("reader", func(rp *des.Proc) {
			dst := m0.Export(rp, 64)
			imp := m0.Import(rp, 1, seg.ID(), seg.Gen(), seg.Size())
			for k := 0; k < 20; k++ {
				if err := imp.Read(rp, 0, 4, dst, 0, time.Second); err != nil {
					t.Error(err)
					return
				}
				observed = append(observed, dst.ReadWord(rp, 0))
				rp.Sleep(13 * us)
			}
		})
		for k := 0; k < 50; k++ {
			if k%2 == 0 {
				seg.WriteWord(p, 0, b)
			} else {
				seg.WriteWord(p, 0, a)
			}
			p.Sleep(17 * us)
		}
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(observed) != 20 {
		t.Fatalf("reader made %d reads", len(observed))
	}
	for _, v := range observed {
		if v != a && v != b {
			t.Fatalf("torn read: %#x", v)
		}
	}
}

func TestRandomWritesLandCorrectly(t *testing.T) {
	// Property: an arbitrary batch of in-bounds small writes produces the
	// same segment contents as applying the copies directly.
	prop := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nops := int(opsRaw%20) + 1
		env, _, m0, m1 := testPair(t)
		const size = 512
		shadow := make([]byte, size)
		okAll := true
		env.Spawn("test", func(p *des.Proc) {
			seg := m1.Export(p, size)
			seg.SetDefaultRights(RightsAll)
			imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
			for k := 0; k < nops; k++ {
				n := rng.Intn(MsgRegisterCap) + 1
				off := rng.Intn(size - n)
				data := make([]byte, n)
				rng.Read(data)
				if err := imp.Write(p, off, data, false); err != nil {
					okAll = false
					return
				}
				copy(shadow[off:], data)
				p.Sleep(100 * us) // writes are unordered only in flight
			}
			p.Sleep(time.Millisecond)
			okAll = bytes.Equal(seg.Bytes(), shadow)
		})
		if err := env.RunUntil(des.Time(10 * time.Second)); err != nil {
			return false
		}
		return okAll
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWireRoundTripProperty(t *testing.T) {
	prop := func(kindRaw uint8, notify bool, seg, gen uint16, off, count, req uint32, status uint8, success bool, data []byte) bool {
		kind := kindRaw%6 + 1
		if len(data) > 1024 {
			data = data[:1024]
		}
		m := &wireMsg{kind: kind, notify: notify, seg: seg, gen: gen, off: off,
			count: count, req: req, status: status, success: success,
			oldW: off ^ count, newW: req, code: status, data: data}
		got, err := decode(m.encode())
		if err != nil {
			return false
		}
		if got.kind != kind {
			return false
		}
		switch kind {
		case kindWrite:
			return got.notify == notify && got.seg == seg && got.gen == gen && got.off == off && bytes.Equal(got.data, data)
		case kindRead:
			return got.seg == seg && got.gen == gen && got.off == off && got.count == count && got.req == req
		case kindReadReply:
			return got.req == req && got.status == status && bytes.Equal(got.data, data)
		case kindCAS:
			return got.seg == seg && got.off == off && got.oldW == off^count && got.newW == req && got.req == req
		case kindCASReply:
			return got.req == req && got.status == status && got.success == success
		case kindNack:
			return got.seg == seg && got.gen == gen && got.off == off && got.code == status
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, frame := range [][]byte{
		{},
		{0},                 // kind 0
		{9},                 // unknown kind
		{kindRead},          // truncated
		{kindCAS, 1},        // truncated
		{kindNack, 0, 1, 0}, // truncated
	} {
		if _, err := decode(frame); err == nil {
			t.Errorf("decode(%v) accepted garbage", frame)
		}
	}
}

func TestByteOrderSwapOnWrite(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 64)
		seg.SetDefaultRights(RightsAll)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		imp.SetByteOrderSwap(true)
		// A little-endian sender stores 0x11223344; the big-endian
		// destination must see the word in its own order after the
		// in-transfer swap.
		if err := imp.Write(p, 0, []byte{0x44, 0x33, 0x22, 0x11, 0xAA}, false); err != nil {
			t.Fatal(err)
		}
		p.Sleep(time.Millisecond)
		got := seg.Bytes()[:5]
		want := []byte{0x11, 0x22, 0x33, 0x44, 0xAA} // trailing partial word unchanged
		if !bytes.Equal(got, want) {
			t.Fatalf("deposited %x, want %x", got, want)
		}
	})
}

func TestByteOrderSwapOnRead(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		src := m1.Export(p, 64)
		src.SetDefaultRights(RightRead)
		copy(src.Bytes(), []byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88})
		dst := m0.Export(p, 64)
		imp := m0.Import(p, 1, src.ID(), src.Gen(), src.Size())
		imp.SetByteOrderSwap(true)
		if err := imp.Read(p, 0, 8, dst, 0, time.Second); err != nil {
			t.Fatal(err)
		}
		want := []byte{0x44, 0x33, 0x22, 0x11, 0x88, 0x77, 0x66, 0x55}
		if !bytes.Equal(dst.Bytes()[:8], want) {
			t.Fatalf("deposited %x, want %x", dst.Bytes()[:8], want)
		}
	})
}

func TestByteOrderSwapRoundTripProperty(t *testing.T) {
	// Writing with swap and reading back with swap is the identity on
	// whole words: two boundary crossings cancel.
	prop := func(words []uint32) bool {
		if len(words) == 0 || len(words) > 8 {
			return true
		}
		env, _, m0, m1 := testPair(t)
		ok := true
		env.Spawn("test", func(p *des.Proc) {
			seg := m1.Export(p, 64)
			seg.SetDefaultRights(RightsAll)
			imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
			imp.SetByteOrderSwap(true)
			buf := make([]byte, 4*len(words))
			for i, w := range words {
				putbe32(buf[4*i:], w)
			}
			if err := imp.Write(p, 0, buf, false); err != nil {
				ok = false
				return
			}
			p.Sleep(time.Millisecond)
			dst := m0.Export(p, 64)
			if err := imp.Read(p, 0, len(buf), dst, 0, time.Second); err != nil {
				ok = false
				return
			}
			ok = bytes.Equal(dst.Bytes()[:len(buf)], buf)
		})
		if err := env.RunUntil(des.Time(10 * time.Second)); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
