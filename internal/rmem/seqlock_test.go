package rmem

import (
	"bytes"
	"testing"
	"time"

	"netmem/internal/des"
)

func TestPublishReadRecord(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		const n = 24
		seg := m1.Export(p, RecordSize(n))
		seg.SetDefaultRights(RightRead)
		PublishRecord(p, seg, 0, []byte("load=0.42 jobs=7 up=3d___")[:n])

		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		dst := m0.Export(p, RecordSize(n))
		got, err := ReadRecord(p, imp, 0, n, dst, 0, 3, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if string(got[:9]) != "load=0.42" {
			t.Fatalf("got %q", got)
		}
	})
}

func TestRecordNeverTornUnderConcurrentPublish(t *testing.T) {
	// The writer republishes alternating all-A / all-B bodies while a
	// remote reader snapshots continuously. Every successful snapshot must
	// be entirely one or the other.
	env, _, m0, m1 := testPair(t)
	const n = 64
	bodyA := bytes.Repeat([]byte{'A'}, n)
	bodyB := bytes.Repeat([]byte{'B'}, n)
	var snapshots, torn int
	env.Spawn("writer", func(p *des.Proc) {
		seg := m1.Export(p, RecordSize(n))
		seg.SetDefaultRights(RightRead)
		PublishRecord(p, seg, 0, bodyA)

		env.Spawn("reader", func(rp *des.Proc) {
			imp := m0.Import(rp, 1, seg.ID(), seg.Gen(), seg.Size())
			dst := m0.Export(rp, RecordSize(n))
			for k := 0; k < 40; k++ {
				got, err := ReadRecord(rp, imp, 0, n, dst, 0, 5, time.Second)
				if err == ErrTornRead {
					torn++
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, bodyA) && !bytes.Equal(got, bodyB) {
					t.Errorf("snapshot %d mixed A and B: %q", k, got)
					return
				}
				snapshots++
				rp.Sleep(7 * time.Microsecond)
			}
		})
		for k := 0; k < 200; k++ {
			if k%2 == 0 {
				PublishRecord(p, seg, 0, bodyB)
			} else {
				PublishRecord(p, seg, 0, bodyA)
			}
			p.Sleep(11 * time.Microsecond)
		}
	})
	if err := env.RunUntil(des.Time(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if snapshots < 30 {
		t.Fatalf("only %d clean snapshots (torn %d)", snapshots, torn)
	}
}

func TestRecordSize(t *testing.T) {
	if RecordSize(0) != 8 || RecordSize(40) != 48 {
		t.Fatalf("RecordSize wrong: %d %d", RecordSize(0), RecordSize(40))
	}
}
