package rmem

import (
	"testing"

	"netmem/internal/des"
)

func TestBufPoolReuse(t *testing.T) {
	var bp BufPool
	a := bp.Get(64)
	if len(a) != 64 {
		t.Fatalf("len = %d, want 64", len(a))
	}
	bp.Put(a)
	b := bp.Get(32)
	if &a[:1][0] != &b[:1][0] {
		t.Fatal("Get did not reuse the pooled buffer")
	}
	if len(b) != 32 {
		t.Fatalf("len = %d, want 32", len(b))
	}
	bp.Put(nil) // cap-0 buffers are ignored
	if n := len(bp.bufs); n != 0 {
		t.Fatalf("pool holds %d buffers after Put(nil), want 0", n)
	}
}

func TestBufPoolGrowsOnDemand(t *testing.T) {
	var bp BufPool
	bp.Put(make([]byte, 8))
	big := bp.Get(1024)
	if len(big) != 1024 {
		t.Fatalf("len = %d, want 1024", len(big))
	}
	if n := len(bp.bufs); n != 1 {
		t.Fatalf("small buffer should remain pooled, have %d", n)
	}
}

// TestReadLocalAllocFree is the regression test for the fresh-buffer-per-read
// allocations that ReadLocal (and ReadRecord) used to make: with the buffer
// pool in place, a steady-state read/Put loop must be allocation free. The
// measurement runs inside the simulation so it also covers the event-record
// pooling in the scheduler hot path (each ReadLocal charges CPU time, which
// schedules and pops a pooled timer event).
func TestReadLocalAllocFree(t *testing.T) {
	env, _, m0, _ := testPair(t)
	run(t, env, func(p *des.Proc) {
		seg := m0.Export(p, 4096)
		pool := m0.Buffers()
		// Warm the pool and the event free list.
		for i := 0; i < 4; i++ {
			pool.Put(seg.ReadLocal(p, 0, 128))
		}
		avg := testing.AllocsPerRun(200, func() {
			pool.Put(seg.ReadLocal(p, 0, 128))
		})
		if avg > 0 {
			t.Errorf("ReadLocal allocates %.2f objects/op in steady state, want 0", avg)
		}
	})
}

// TestReadRecordUsesPool checks that seqlock snapshots come from (and return
// to) the manager's buffer pool rather than being freshly allocated per read.
func TestReadRecordUsesPool(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		const n = 24
		seg := m1.Export(p, RecordSize(n))
		seg.SetDefaultRights(RightRead)
		PublishRecord(p, seg, 0, []byte("poolable-body-24-bytes!!"))

		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		dst := m0.Export(p, RecordSize(n))
		first, err := ReadRecord(p, imp, 0, n, dst, 0, 3, 10*des.Duration(1e9))
		if err != nil {
			t.Fatal(err)
		}
		m0.Buffers().Put(first)
		second, err := ReadRecord(p, imp, 0, n, dst, 0, 3, 10*des.Duration(1e9))
		if err != nil {
			t.Fatal(err)
		}
		if &first[:1][0] != &second[:1][0] {
			t.Error("second ReadRecord did not reuse the pooled snapshot buffer")
		}
	})
}
