package rmem

import (
	"encoding/binary"
	"fmt"
)

// Wire format. Every message begins with a kind/flags byte. Requests carry
// (segment id, generation) so the destination kernel can validate against
// its tables; replies carry only a request id because the requester's
// pending-op table remembers where results go — this keeps a small READ's
// reply inside a single cell, as on the paper's hardware.
//
// Requests sent through the reliability layer additionally carry a 6-byte
// (generation, sequence) identity right after the kind byte, marked by the
// flagRel bit; the identity travels back on NACKs and on the WRACK message
// so the sender can match them to its pending table. Unreliable traffic
// carries no extra bytes, keeping the calibrated single-cell formats
// intact.
//
// Fenced requests (flagEpoch) carry the exporter-incarnation epoch in two
// further bytes after the reliability identity; NACKs echo both prefixes.
//
//	WRITE   k|f  [rgen(2) rseq(4)] [epoch(2)]  seg(2) gen(2) off(4) data…
//	READ    k|f  [rgen(2) rseq(4)] [epoch(2)]  sseg(2) sgen(2) soff(4) count(4) req(4)
//	RDREPLY k    req(4) status(1) data…
//	CAS     k|f  [rgen(2) rseq(4)] [epoch(2)]  seg(2) gen(2) off(4) old(4) new(4) req(4)
//	CASREP  k    req(4) status(1) success(1)
//	NACK    k|f  [rgen(2) rseq(4)] [epoch(2)]  seg(2) gen(2) off(4) code(1)   (for WRITEs)
//	WRACK   k    rgen(2) rseq(4)                   (ack of a reliable WRITE)
const (
	kindWrite byte = iota + 1
	kindRead
	kindReadReply
	kindCAS
	kindCASReply
	kindNack
	kindWriteAck
)

const flagNotify byte = 0x80

// flagSwap asks the receiving kernel to byte-swap 4-byte words while
// depositing — §3.6's heterogeneity bit ("this scheme requires a bit in
// each incoming request to decide whether to swap or not").
const flagSwap byte = 0x40

// flagRel marks a request carrying the reliability layer's (generation,
// sequence) identity.
const flagRel byte = 0x20

// flagEpoch marks a request carrying the exporter-incarnation epoch the
// sender's descriptor was leased under (§3.7 recovery). The destination
// kernel refuses the request with nackStaleGen when the epoch does not
// match its current incarnation — a restarted exporter fences every
// descriptor handed out by its previous life, even if (id, gen) collide
// after the cold boot reset the counters. Unfenced traffic carries no
// extra bytes, keeping the calibrated wire formats intact.
const flagEpoch byte = 0x10

const kindMask byte = 0x0f

type wireMsg struct {
	kind   byte
	notify bool
	swap   bool

	// Reliability identity (flagRel): present on reliable requests and
	// echoed on their NACKs; WRACK always carries it.
	rel  bool
	rgen uint16
	rseq uint32

	// Lease epoch (flagEpoch): the exporter incarnation the request's
	// descriptor was imported under.
	fence bool
	epoch uint16

	seg, gen uint16
	off      uint32
	count    uint32 // READ only
	req      uint32
	status   byte // replies; 0 = OK, else nack code
	success  bool // CAS reply
	oldW     uint32
	newW     uint32
	code     byte // NACK
	data     []byte
}

func put16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func put32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }

func (m *wireMsg) encode() []byte {
	k := m.kind
	if m.notify {
		k |= flagNotify
	}
	if m.swap {
		k |= flagSwap
	}
	if m.rel {
		k |= flagRel
	}
	if m.fence {
		k |= flagEpoch
	}
	b := []byte{k}
	if m.rel {
		b = put16(b, m.rgen)
		b = put32(b, m.rseq)
	}
	if m.fence {
		b = put16(b, m.epoch)
	}
	switch m.kind {
	case kindWrite:
		b = put16(b, m.seg)
		b = put16(b, m.gen)
		b = put32(b, m.off)
		b = append(b, m.data...)
	case kindRead:
		b = put16(b, m.seg)
		b = put16(b, m.gen)
		b = put32(b, m.off)
		b = put32(b, m.count)
		b = put32(b, m.req)
	case kindReadReply:
		b = put32(b, m.req)
		b = append(b, m.status)
		b = append(b, m.data...)
	case kindCAS:
		b = put16(b, m.seg)
		b = put16(b, m.gen)
		b = put32(b, m.off)
		b = put32(b, m.oldW)
		b = put32(b, m.newW)
		b = put32(b, m.req)
	case kindCASReply:
		b = put32(b, m.req)
		b = append(b, m.status)
		if m.success {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case kindNack:
		b = put16(b, m.seg)
		b = put16(b, m.gen)
		b = put32(b, m.off)
		b = append(b, m.code)
	case kindWriteAck:
		// Identity already emitted by the rel prefix (acks set rel).
	default:
		panic("rmem: encode of unknown message kind")
	}
	return b
}

type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) u16() uint16 {
	if r.err != nil || len(r.b) < 2 {
		r.err = fmt.Errorf("rmem: short message")
		return 0
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *wireReader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.err = fmt.Errorf("rmem: short message")
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *wireReader) u8() byte {
	if r.err != nil || len(r.b) < 1 {
		r.err = fmt.Errorf("rmem: short message")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func decode(frame []byte) (*wireMsg, error) {
	if len(frame) == 0 {
		return nil, fmt.Errorf("rmem: empty message")
	}
	m := &wireMsg{kind: frame[0] & kindMask, notify: frame[0]&flagNotify != 0, swap: frame[0]&flagSwap != 0,
		rel: frame[0]&flagRel != 0, fence: frame[0]&flagEpoch != 0}
	r := &wireReader{b: frame[1:]}
	if m.rel {
		m.rgen, m.rseq = r.u16(), r.u32()
	}
	if m.fence {
		m.epoch = r.u16()
	}
	switch m.kind {
	case kindWrite:
		m.seg, m.gen, m.off = r.u16(), r.u16(), r.u32()
		m.data = r.b
	case kindRead:
		m.seg, m.gen, m.off = r.u16(), r.u16(), r.u32()
		m.count, m.req = r.u32(), r.u32()
	case kindReadReply:
		m.req, m.status = r.u32(), r.u8()
		m.data = r.b
	case kindCAS:
		m.seg, m.gen, m.off = r.u16(), r.u16(), r.u32()
		m.oldW, m.newW, m.req = r.u32(), r.u32(), r.u32()
	case kindCASReply:
		m.req, m.status = r.u32(), r.u8()
		m.success = r.u8() != 0
	case kindNack:
		m.seg, m.gen, m.off = r.u16(), r.u16(), r.u32()
		m.code = r.u8()
	case kindWriteAck:
		if !m.rel {
			return nil, fmt.Errorf("rmem: WRACK without reliability identity")
		}
	default:
		return nil, fmt.Errorf("rmem: unknown message kind %d", m.kind)
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}
