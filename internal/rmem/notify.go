package rmem

import (
	"fmt"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
)

// Control transfer. Data arrival never involves the destination process;
// when a request asks for notification (and the segment's mode allows it)
// the kernel runs the paper's integrated control-transfer path: mark the
// segment's file descriptor ready and post the signal (NotifyPost, charged
// here in the receive path), then — when the destination process picks the
// event up — a context switch and signal-handler dispatch (charged on the
// consumer side). The three components sum to Table 2's 260 µs.

// maybeNotify applies the descriptor's notification control flag to the
// request's notify bit and, if control transfer is wanted, posts a
// notification.
func (m *Manager) maybeNotify(p *des.Proc, s *Segment, src int, op Op, off, count int, reqBit bool) {
	want := false
	switch s.mode {
	case NotifyAlways:
		want = true
	case NotifyNever:
		want = false
	case NotifyConditional:
		want = reqBit
	}
	if !want {
		return
	}
	m.Node.UseCPU(p, cluster.CatControl, m.Node.P.NotifyPost)
	s.Notifies++
	if tr := m.Node.Env.Tracer(); tr != nil {
		tr.Count("rmem.notify.posted", 1)
		if tr.EventsEnabled() {
			tr.Instant(m.track, "rmem", "notify "+op.String(), time.Duration(m.Node.Env.Now()))
		}
	}
	s.notes.TryPut(Notification{Src: src, Op: op, Offset: off, Count: count, At: m.Node.Env.Now()})
}

// AwaitNotification blocks the calling process until a notification is
// available on the segment's descriptor (the analogue of a blocking read
// on the segment's fd) and returns it, charging the consumer side of the
// control transfer: the context switch to this process plus signal-handler
// dispatch.
func (s *Segment) AwaitNotification(p *des.Proc) Notification {
	note := s.notes.Get(p)
	s.m.Node.UseCPU(p, cluster.CatControl, s.m.Node.P.ContextSwitch+s.m.Node.P.HandlerDispatch)
	s.m.notifyDelivered(note)
	return note
}

// notifyDelivered records the control-transfer delivery latency: post at
// the destination kernel to pickup by the destination process.
func (m *Manager) notifyDelivered(note Notification) {
	if tr := m.Node.Env.Tracer(); tr != nil {
		tr.Count("rmem.notify.delivered", 1)
		tr.Observe("rmem.notify.latency", m.Node.Env.Now().Sub(note.At))
	}
}

// PollNotification is the non-blocking variant (fcntl-style O_NDELAY read
// of the descriptor): it returns immediately, reporting whether a
// notification was pending. The consumer-side control-transfer cost is
// charged only when one is actually delivered.
func (s *Segment) PollNotification(p *des.Proc) (Notification, bool) {
	note, ok := s.notes.TryGet()
	if ok {
		s.m.Node.UseCPU(p, cluster.CatControl, s.m.Node.P.ContextSwitch+s.m.Node.P.HandlerDispatch)
		s.m.notifyDelivered(note)
	}
	return note, ok
}

// PendingNotifications reports queued, unconsumed notifications.
func (s *Segment) PendingNotifications() int { return s.notes.Len() }

// OnNotify registers fn as the segment's signal handler: a dedicated
// daemon consumes notifications and invokes fn for each, exactly like a
// user-specified signal handler procedure. fn runs in a simulated process
// on the segment's node and may block.
func (s *Segment) OnNotify(fn func(p *des.Proc, note Notification)) {
	env := s.m.Node.Env
	env.SpawnDaemon(fmt.Sprintf("seg%d.%d.sighandler", s.m.Node.ID, s.id), func(p *des.Proc) {
		for {
			fn(p, s.AwaitNotification(p))
		}
	})
}

// ---------------------------------------------------------------------------
// Local access. Single-word local accesses are atomic with respect to
// remote accesses involving that word (§3.1.2): the simulation kernel
// serializes all memory operations, and these helpers provide the timed
// local path so experiments can compare local and remote access cost.

// localAccessCost charges the local-access time for n bytes (one
// LocalWordAccess per cell-sized chunk — the paper's 15×-faster figure is
// for a one-cell unit).
func (s *Segment) localAccessCost(p *des.Proc, n int) {
	chunks := s.m.Node.P.CellsFor(n)
	s.m.Node.UseCPU(p, cluster.CatClient, des.Duration(chunks)*s.m.Node.P.LocalWordAccess)
}

// ReadLocal copies n bytes at off out of the segment with local-access
// timing. The returned buffer comes from the manager's pool
// (Manager.Buffers); callers may Put it back when done to make repeated
// reads allocation-free.
func (s *Segment) ReadLocal(p *des.Proc, off, n int) []byte {
	s.localAccessCost(p, n)
	out := s.m.bufs.Get(n)
	copy(out, s.buf[off:off+n])
	return out
}

// WriteLocal copies data into the segment at off with local-access timing.
func (s *Segment) WriteLocal(p *des.Proc, off int, data []byte) {
	s.localAccessCost(p, len(data))
	copy(s.buf[off:], data)
}

// ReadWord reads the big-endian 4-byte word at off (must be aligned).
func (s *Segment) ReadWord(p *des.Proc, off int) uint32 {
	if off%4 != 0 {
		panic(ErrUnaligned)
	}
	s.localAccessCost(p, 4)
	return be32(s.buf[off:])
}

// WriteWord writes the big-endian 4-byte word at off (must be aligned).
// Word writes are the paper's single-writer/multi-reader synchronization
// primitive: a flag word updated atomically with respect to remote reads.
func (s *Segment) WriteWord(p *des.Proc, off int, v uint32) {
	if off%4 != 0 {
		panic(ErrUnaligned)
	}
	s.localAccessCost(p, 4)
	putbe32(s.buf[off:], v)
}

// CASLocal atomically compares-and-swaps the big-endian word at off against
// the segment owner's own memory, returning whether the swap took. It is
// the local half of the CAS meta-instruction: §3.1.2's atomicity of
// single-word local accesses with respect to remote accesses extends to a
// local read-modify-write, provided the access cost is charged up front —
// the simulation kernel serializes memory operations, and after the CPU
// charge returns there is no blocking point between the compare and the
// swap. A co-located client (a consensus proposer sharing a machine with
// an acceptor, say) uses this instead of routing a CAS through its own
// network interface.
func (s *Segment) CASLocal(p *des.Proc, off int, old, new uint32) bool {
	if off%4 != 0 {
		panic(ErrUnaligned)
	}
	s.localAccessCost(p, 4)
	if be32(s.buf[off:]) != old {
		return false
	}
	putbe32(s.buf[off:], new)
	return true
}
