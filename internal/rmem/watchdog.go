package rmem

import (
	"errors"
	"fmt"

	"netmem/internal/des"
)

// Failure detection (§3.7). The read/write primitives carry no built-in
// fault tolerance — unlike RPC, which fuses timeout machinery with every
// call — but they compose into one where it is wanted: "a service that
// required fault tolerance could implement a periodic remote read request
// of a known (or monotonically increasing) value. Failure to read the
// value within a timeout period can be used to raise an exception."

// ErrPeerFailed is delivered to the watchdog callback when the monitored
// machine stops responding or its counter stops advancing.
var ErrPeerFailed = errors.New("rmem: peer failure detected")

// Heartbeat publishes a monotonically increasing counter into a local
// segment word for remote watchdogs to read. Call Start once; the counter
// advances every interval until the node fails.
type Heartbeat struct {
	seg *Segment
	off int
}

// StartHeartbeat exports the beating word at (seg, off) and spawns the
// publisher daemon. The segment must already grant read rights to the
// watchers.
func StartHeartbeat(m *Manager, seg *Segment, off int, interval des.Duration) *Heartbeat {
	hb := &Heartbeat{seg: seg, off: off}
	m.Node.Env.SpawnDaemon(fmt.Sprintf("heartbeat%d", m.Node.ID), func(p *des.Proc) {
		var count uint32
		for {
			p.Sleep(interval)
			if m.Node.Failed() {
				return // a dead machine stops beating
			}
			count++
			seg.WriteWord(p, off, count)
		}
	})
	return hb
}

// Watchdog monitors a remote heartbeat word with periodic remote reads.
type Watchdog struct {
	m       *Manager
	imp     *Import
	off     int
	scratch *Segment

	// Fired is set once the failure callback has run.
	Fired bool
	// Checks counts completed probe reads.
	Checks int64
	// Misses counts failed probes (timeouts, errors, stuck counter).
	Misses int64
	// LastOK is the virtual time of the last probe that proved the peer
	// alive — the base of an MTTR measurement (downtime starts when the
	// peer was last known good, not when the verdict lands).
	LastOK des.Time
}

// WatchdogConfig tunes failure detection.
type WatchdogConfig struct {
	// Interval is the probe cadence.
	Interval des.Duration
	// Timeout bounds each probe read.
	Timeout des.Duration
	// Grace is the lease the peer holds on its liveness: the number of
	// consecutive failed probes required before the verdict. 0 or 1 fires
	// on the first failed probe — but then a link flap a little longer
	// than one probe is reported as a node death, so recovery coordinators
	// use 3-5.
	Grace int
}

// NewWatchdog starts monitoring the heartbeat word at off within imp.
// Every interval it issues a remote read with the given timeout; if the
// read times out, errors, or the value has not advanced since the last
// check, onFail runs once (in a simulated process on the watching node)
// and the watchdog stops.
func NewWatchdog(m *Manager, imp *Import, off int, interval, timeout des.Duration,
	onFail func(p *des.Proc, err error)) *Watchdog {
	return NewWatchdogCfg(m, imp, off, WatchdogConfig{Interval: interval, Timeout: timeout, Grace: 1}, onFail)
}

// NewWatchdogCfg is NewWatchdog with an explicit lease grace: only cfg.Grace
// consecutive failed probes add up to a failure verdict, and any successful
// probe renews the lease.
func NewWatchdogCfg(m *Manager, imp *Import, off int, cfg WatchdogConfig,
	onFail func(p *des.Proc, err error)) *Watchdog {
	if cfg.Grace < 1 {
		cfg.Grace = 1
	}
	w := &Watchdog{m: m, imp: imp, off: off}
	env := m.Node.Env
	w.LastOK = env.Now()
	env.SpawnDaemon(fmt.Sprintf("watchdog%d", m.Node.ID), func(p *des.Proc) {
		w.scratch = m.Export(p, 8)
		var last uint32
		haveLast := false
		misses := 0
		for {
			p.Sleep(cfg.Interval)
			err := imp.Read(p, w.off, 4, w.scratch, 0, cfg.Timeout)
			if err == nil {
				w.Checks++
				cur := w.scratch.ReadWord(p, 0)
				if !haveLast || cur != last {
					last, haveLast = cur, true
					misses = 0
					w.LastOK = p.Now()
					continue
				}
				err = fmt.Errorf("%w: counter stuck at %d", ErrPeerFailed, cur)
			} else {
				err = fmt.Errorf("%w: %v", ErrPeerFailed, err)
			}
			w.Misses++
			misses++
			if misses < cfg.Grace {
				continue
			}
			w.Fired = true
			onFail(p, err)
			return
		}
	})
	return w
}
