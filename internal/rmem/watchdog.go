package rmem

import (
	"errors"
	"fmt"

	"netmem/internal/des"
)

// Failure detection (§3.7). The read/write primitives carry no built-in
// fault tolerance — unlike RPC, which fuses timeout machinery with every
// call — but they compose into one where it is wanted: "a service that
// required fault tolerance could implement a periodic remote read request
// of a known (or monotonically increasing) value. Failure to read the
// value within a timeout period can be used to raise an exception."

// ErrPeerFailed is delivered to the watchdog callback when the monitored
// machine stops responding or its counter stops advancing.
var ErrPeerFailed = errors.New("rmem: peer failure detected")

// Heartbeat publishes a monotonically increasing counter into a local
// segment word for remote watchdogs to read. Call Start once; the counter
// advances every interval until the node fails.
type Heartbeat struct {
	seg *Segment
	off int
}

// StartHeartbeat exports the beating word at (seg, off) and spawns the
// publisher daemon. The segment must already grant read rights to the
// watchers.
func StartHeartbeat(m *Manager, seg *Segment, off int, interval des.Duration) *Heartbeat {
	hb := &Heartbeat{seg: seg, off: off}
	m.Node.Env.SpawnDaemon(fmt.Sprintf("heartbeat%d", m.Node.ID), func(p *des.Proc) {
		var count uint32
		for {
			p.Sleep(interval)
			if m.Node.Failed() {
				return // a dead machine stops beating
			}
			count++
			seg.WriteWord(p, off, count)
		}
	})
	return hb
}

// Watchdog monitors a remote heartbeat word with periodic remote reads.
type Watchdog struct {
	m       *Manager
	imp     *Import
	off     int
	scratch *Segment

	// Fired is set once the failure callback has run.
	Fired bool
	// Checks counts completed probe reads.
	Checks int64
}

// NewWatchdog starts monitoring the heartbeat word at off within imp.
// Every interval it issues a remote read with the given timeout; if the
// read times out, errors, or the value has not advanced since the last
// check, onFail runs once (in a simulated process on the watching node)
// and the watchdog stops.
func NewWatchdog(m *Manager, imp *Import, off int, interval, timeout des.Duration,
	onFail func(p *des.Proc, err error)) *Watchdog {
	w := &Watchdog{m: m, imp: imp, off: off}
	env := m.Node.Env
	env.SpawnDaemon(fmt.Sprintf("watchdog%d", m.Node.ID), func(p *des.Proc) {
		w.scratch = m.Export(p, 8)
		var last uint32
		haveLast := false
		for {
			p.Sleep(interval)
			err := imp.Read(p, off, 4, w.scratch, 0, timeout)
			if err == nil {
				w.Checks++
				cur := w.scratch.ReadWord(p, 0)
				if !haveLast || cur != last {
					last, haveLast = cur, true
					continue
				}
				err = fmt.Errorf("%w: counter stuck at %d", ErrPeerFailed, cur)
			} else {
				err = fmt.Errorf("%w: %v", ErrPeerFailed, err)
			}
			w.Fired = true
			onFail(p, err)
			return
		}
	})
	return w
}
