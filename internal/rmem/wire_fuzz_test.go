package rmem

import (
	"bytes"
	"testing"
)

// sameWire compares two decoded messages field by field (data compared by
// content, so nil and empty are equivalent).
func sameWire(a, b *wireMsg) bool {
	return a.kind == b.kind && a.notify == b.notify && a.swap == b.swap &&
		a.rel == b.rel && a.rgen == b.rgen && a.rseq == b.rseq &&
		a.fence == b.fence && a.epoch == b.epoch &&
		a.seg == b.seg && a.gen == b.gen && a.off == b.off &&
		a.count == b.count && a.req == b.req && a.status == b.status &&
		a.success == b.success && a.oldW == b.oldW && a.newW == b.newW &&
		a.code == b.code && bytes.Equal(a.data, b.data)
}

// FuzzWireRoundTrip builds a message from fuzzed fields — every kind, every
// combination of the flagNotify/flagSwap/flagRel/flagEpoch bits — encodes it,
// and requires the decoder to reproduce it exactly.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(byte(kindWrite), false, false, false, false, uint16(0), uint32(0), uint16(0), uint16(1), uint16(1), uint32(64), uint32(0), uint32(0), uint32(0), uint32(0), byte(0), false, byte(0), []byte("payload"))
	f.Add(byte(kindRead), true, false, true, false, uint16(3), uint32(9), uint16(0), uint16(2), uint16(1), uint32(128), uint32(48), uint32(7), uint32(0), uint32(0), byte(0), false, byte(0), []byte(nil))
	f.Add(byte(kindCAS), false, true, true, true, uint16(5), uint32(77), uint16(2), uint16(4), uint16(3), uint32(8), uint32(0), uint32(11), uint32(1), uint32(2), byte(0), false, byte(0), []byte(nil))
	f.Add(byte(kindNack), false, false, true, true, uint16(1), uint32(2), uint16(9), uint16(1), uint16(1), uint32(0), uint32(0), uint32(0), uint32(0), uint32(0), byte(0), false, byte(3), []byte(nil))
	f.Add(byte(kindWriteAck), false, false, true, false, uint16(6), uint32(41), uint16(0), uint16(0), uint16(0), uint32(0), uint32(0), uint32(0), uint32(0), uint32(0), byte(0), false, byte(0), []byte(nil))
	f.Add(byte(kindReadReply), false, false, false, false, uint16(0), uint32(0), uint16(0), uint16(0), uint16(0), uint32(0), uint32(0), uint32(5), uint32(0), uint32(0), byte(1), false, byte(0), []byte{1, 2, 3})
	f.Add(byte(kindCASReply), false, false, false, false, uint16(0), uint32(0), uint16(0), uint16(0), uint16(0), uint32(0), uint32(0), uint32(5), uint32(0), uint32(0), byte(0), true, byte(0), []byte(nil))
	f.Fuzz(func(t *testing.T, kind byte, notify, swap, rel, fence bool,
		rgen uint16, rseq uint32, epoch uint16, seg, gen uint16, off, count, req uint32,
		oldW, newW uint32, status byte, success bool, code byte, data []byte) {
		kind = kind%kindWriteAck + 1 // clamp to the valid kind range
		if kind == kindWriteAck {
			rel = true // WRACK always carries the reliability identity
		}
		in := &wireMsg{kind: kind, notify: notify, swap: swap,
			rel: rel, rgen: rgen, rseq: rseq, fence: fence, epoch: epoch,
			seg: seg, gen: gen, off: off, count: count, req: req,
			oldW: oldW, newW: newW, status: status, success: success,
			code: code, data: data}
		// Fields the wire format doesn't carry for this kind won't survive;
		// zero them so the comparison checks exactly what travels.
		switch kind {
		case kindWrite:
			in.count, in.req, in.oldW, in.newW = 0, 0, 0, 0
			in.status, in.success, in.code = 0, false, 0
		case kindRead:
			in.oldW, in.newW, in.status, in.success, in.code, in.data = 0, 0, 0, false, 0, nil
		case kindReadReply:
			in.seg, in.gen, in.off, in.count, in.oldW, in.newW = 0, 0, 0, 0, 0, 0
			in.success, in.code = false, 0
		case kindCAS:
			in.count, in.status, in.success, in.code, in.data = 0, 0, false, 0, nil
		case kindCASReply:
			in.seg, in.gen, in.off, in.count, in.oldW, in.newW = 0, 0, 0, 0, 0, 0
			in.req, in.code, in.data = req, 0, nil
		case kindNack:
			in.count, in.req, in.oldW, in.newW, in.status, in.success, in.data = 0, 0, 0, 0, 0, false, nil
		case kindWriteAck:
			in.seg, in.gen, in.off, in.count, in.req = 0, 0, 0, 0, 0
			in.oldW, in.newW, in.status, in.success, in.code, in.data = 0, 0, 0, false, 0, nil
		}
		if !rel {
			in.rgen, in.rseq = 0, 0
		}
		if !fence {
			in.epoch = 0
		}
		frame := in.encode()
		out, err := decode(frame)
		if err != nil {
			t.Fatalf("decode(encode(%+v)) failed: %v", in, err)
		}
		if !sameWire(in, out) {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
		}
	})
}

// FuzzWireDecode throws arbitrary bytes at the decoder: it must never panic,
// and any frame it accepts must re-encode to a decoding fixpoint (the wire
// format is self-describing; a second round trip cannot drift).
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{kindWrite, 0, 1, 0, 1, 0, 0, 0, 64, 'h', 'i'})
	f.Add([]byte{kindWriteAck | flagRel, 0, 1, 0, 0, 0, 9})
	f.Add([]byte{kindCAS | flagRel | flagEpoch})
	f.Add([]byte{kindNack | flagEpoch, 0, 2, 0, 1, 0, 1, 0, 0, 0, 0, 3})
	f.Add([]byte{0xff, 0xff, 0xff})
	for k := byte(1); k <= kindWriteAck; k++ {
		f.Add([]byte{k | flagRel | flagEpoch | flagNotify | flagSwap,
			1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26})
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		m, err := decode(frame)
		if err != nil {
			return // rejected cleanly; all we require is "no panic"
		}
		again, err := decode(m.encode())
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if !sameWire(m, again) {
			t.Fatalf("decode/encode fixpoint drift:\n first  %+v\n second %+v", m, again)
		}
	})
}
