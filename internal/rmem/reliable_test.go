package rmem

import (
	"bytes"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/faults"
	"netmem/internal/model"
	"netmem/internal/obs"
)

// relRig is a two-node cluster with a fault campaign, reliable imports,
// and a tracer to observe retry metrics.
type relRig struct {
	env  *des.Env
	tr   *obs.Tracer
	eng  *faults.Engine
	c    *cluster.Cluster
	mgrs [2]*Manager
}

func newRelRig(t *testing.T, seed int64, camp faults.Campaign) *relRig {
	t.Helper()
	env := des.NewEnv()
	env.Seed(seed)
	tr := obs.New(obs.Config{})
	env.SetTracer(tr)
	eng := faults.NewEngine(env, camp)
	c := cluster.New(env, &model.Default, 2, cluster.WithFaultEngine(eng))
	r := &relRig{env: env, tr: tr, eng: eng, c: c}
	r.mgrs[0] = NewManager(c.Nodes[0])
	r.mgrs[1] = NewManager(c.Nodes[1])
	return r
}

// TestReliableOpsUnderLoss drives WRITE, block WRITE, READ, and CAS over a
// 2% cell-loss link and checks every payload lands byte-correct, with the
// loss visible in the fault tally and the recovery visible in the retry
// counter.
func TestReliableOpsUnderLoss(t *testing.T) {
	r := newRelRig(t, 42, faults.Campaign{Name: "loss2", Default: faults.LinkFault{Loss: 0.02}})
	var finalErr error
	checked := false
	r.env.Spawn("driver", func(p *des.Proc) {
		seg := r.mgrs[1].Export(p, 64*1024)
		seg.SetDefaultRights(RightsAll)
		imp := r.mgrs[0].Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		imp.SetReliable(true)
		local := r.mgrs[0].Export(p, 64*1024)

		// Small register WRITEs.
		for k := 0; k < 40; k++ {
			msg := []byte{byte(k), 0xAB, byte(k ^ 0x55)}
			if err := imp.Write(p, k*8, msg, false); err != nil {
				finalErr = err
				return
			}
			if !bytes.Equal(seg.Bytes()[k*8:k*8+3], msg) {
				t.Errorf("WRITE %d: payload mismatch", k)
			}
		}
		// An 8 KB block write.
		blk := make([]byte, 8192)
		for i := range blk {
			blk[i] = byte(i*7 + 3)
		}
		if err := imp.WriteBlock(p, 1024, blk, false); err != nil {
			finalErr = err
			return
		}
		if !bytes.Equal(seg.Bytes()[1024:1024+8192], blk) {
			t.Error("WriteBlock: payload mismatch at destination")
		}
		// An 8 KB read back into local memory.
		if err := imp.Read(p, 1024, 8192, local, 0, 0); err != nil {
			finalErr = err
			return
		}
		if !bytes.Equal(local.Bytes()[:8192], blk) {
			t.Error("Read: payload mismatch at requester")
		}
		// CAS train: each swap observes the previous one's effect, so a
		// double-applied retransmission would break the chain. (Offset
		// 40000 is untouched by the writes above, so it starts at zero.)
		for k := uint32(0); k < 20; k++ {
			ok, err := imp.CAS(p, 40000, k, k+1, local, 9000, 0)
			if err != nil {
				finalErr = err
				return
			}
			if !ok {
				t.Errorf("CAS %d: expected success", k)
			}
		}
		checked = true
	})
	if err := r.env.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if finalErr != nil {
		t.Fatalf("op failed under loss: %v", finalErr)
	}
	if !checked {
		t.Fatal("driver did not complete")
	}
	if got := r.eng.Injected(faults.KindLoss); got == 0 {
		t.Error("campaign injected no losses — test exercised nothing")
	}
	snap := r.tr.Snapshot()
	if snap.Counter("reliable.retries") == 0 {
		t.Error("no retries recorded despite injected loss")
	}
	if n := snap.Counter("reliable.giveup"); n != 0 {
		t.Errorf("%d operations gave up; retry budget should ride out 2%% loss", n)
	}
	for _, node := range r.c.Nodes {
		if len(node.Faults) != 0 {
			// Frame CRC errors from dropped cells are expected to be absent:
			// loss kills reassembly by discard, not by CRC. Corruption tests
			// cover the CRC path separately.
			t.Logf("node %d faults (informational): %v", node.ID, node.Faults)
		}
	}
}

// TestReliableCASNotReexecuted forces duplicate delivery of every cell and
// checks the dedup window keeps CAS at-most-once: the reply cache answers
// retransmissions, so a CAS chain still advances one step per call.
func TestReliableCASUnderDuplication(t *testing.T) {
	r := newRelRig(t, 7, faults.Campaign{Name: "dup", Default: faults.LinkFault{Duplicate: 0.5}})
	done := false
	r.env.Spawn("driver", func(p *des.Proc) {
		seg := r.mgrs[1].Export(p, 4096)
		seg.SetDefaultRights(RightsAll)
		imp := r.mgrs[0].Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		imp.SetReliable(true)
		local := r.mgrs[0].Export(p, 4096)
		for k := uint32(0); k < 30; k++ {
			ok, err := imp.CAS(p, 0, k, k+1, local, 0, 0)
			if err != nil {
				t.Errorf("CAS %d: %v", k, err)
				return
			}
			if !ok {
				t.Errorf("CAS %d: lost its slot — double execution?", k)
				return
			}
		}
		done = true
	})
	if err := r.env.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if !done {
		t.Fatal("driver did not complete")
	}
	if r.eng.Injected(faults.KindDup) == 0 {
		t.Error("campaign injected no duplicates")
	}
}

// TestReliableUnderCorruptionAndReorder checks the CRC discards corrupted
// frames and retransmission repairs them, and that adjacent-swap
// reordering cannot corrupt reassembly into silently wrong bytes.
func TestReliableUnderCorruptionAndReorder(t *testing.T) {
	r := newRelRig(t, 11, faults.Campaign{Name: "cr", Default: faults.LinkFault{Corrupt: 0.01, Reorder: 0.01}})
	done := false
	r.env.Spawn("driver", func(p *des.Proc) {
		seg := r.mgrs[1].Export(p, 32*1024)
		seg.SetDefaultRights(RightsAll)
		imp := r.mgrs[0].Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		imp.SetReliable(true)
		local := r.mgrs[0].Export(p, 32*1024)
		blk := make([]byte, 16*1024)
		for i := range blk {
			blk[i] = byte(i * 13)
		}
		if err := imp.WriteBlock(p, 0, blk, false); err != nil {
			t.Errorf("WriteBlock: %v", err)
			return
		}
		if !bytes.Equal(seg.Bytes()[:len(blk)], blk) {
			t.Error("WriteBlock: corrupted payload reached destination memory")
		}
		if err := imp.Read(p, 0, len(blk), local, 0, 0); err != nil {
			t.Errorf("Read: %v", err)
			return
		}
		if !bytes.Equal(local.Bytes()[:len(blk)], blk) {
			t.Error("Read: corrupted payload deposited locally")
		}
		done = true
	})
	if err := r.env.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if !done {
		t.Fatal("driver did not complete")
	}
}

// TestIdenticalSeedsIdenticalRuns replays the same seeded campaign twice
// and requires byte-identical metric snapshots — the determinism the
// campaign engine exists to provide.
func TestIdenticalSeedsIdenticalRuns(t *testing.T) {
	run := func() string {
		r := newRelRig(t, 99, faults.Campaign{Name: "mix", Default: faults.LinkFault{Loss: 0.02, Duplicate: 0.01}})
		r.env.Spawn("driver", func(p *des.Proc) {
			seg := r.mgrs[1].Export(p, 8192)
			seg.SetDefaultRights(RightsAll)
			imp := r.mgrs[0].Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
			imp.SetReliable(true)
			local := r.mgrs[0].Export(p, 8192)
			blk := make([]byte, 4096)
			for i := range blk {
				blk[i] = byte(i)
			}
			_ = imp.WriteBlock(p, 0, blk, false)
			_ = imp.Read(p, 0, 4096, local, 0, 0)
			_, _ = imp.CAS(p, 0, 0, 1, local, 4096, 0)
		})
		if err := r.env.Run(); err != nil {
			t.Fatalf("sim: %v", err)
		}
		return r.tr.Snapshot().String()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identical seeds diverged:\n--- run1 ---\n%s\n--- run2 ---\n%s", a, b)
	}
}

// TestUnreliableTimeoutStillAbandons pins the legacy behaviour: without
// the reliability layer a lost READ times out and is simply abandoned.
func TestUnreliableTimeoutStillAbandons(t *testing.T) {
	r := newRelRig(t, 3, faults.Campaign{Name: "dead", Default: faults.LinkFault{Loss: 1.0}})
	var err error
	r.env.Spawn("driver", func(p *des.Proc) {
		seg := r.mgrs[1].Export(p, 128)
		seg.SetDefaultRights(RightsAll)
		imp := r.mgrs[0].Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		local := r.mgrs[0].Export(p, 128)
		err = imp.Read(p, 0, 64, local, 0, 2*time.Millisecond)
	})
	if e := r.env.Run(); e != nil {
		t.Fatalf("sim: %v", e)
	}
	if err != ErrTimeout {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}
