package rmem

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"netmem/internal/des"
)

// The lease/epoch layer (§3.7 recovery): a restarted exporter fences every
// descriptor its previous incarnation handed out, even when the cold-boot
// counter reset recycles (id, gen) coordinates.

func TestRestartFencesStaleDescriptors(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 256)
		seg.SetDefaultRights(RightsAll)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		imp.SetReliable(true)
		imp.SetFence(true)
		imp.SetEpoch(m1.Incarnation())
		if err := imp.Write(p, 0, []byte("pre-crash"), false); err != nil {
			t.Fatalf("fenced write to live exporter: %v", err)
		}
		p.Sleep(time.Millisecond)

		m1.Restart()
		// The cold boot resets the export counters, so the new incarnation
		// hands out the same coordinates the dead one used — the exact
		// aliasing the epoch check must catch.
		seg2 := m1.Export(p, 256)
		seg2.SetDefaultRights(RightsAll)
		if seg2.ID() != seg.ID() || seg2.Gen() != seg.Gen() {
			t.Fatalf("expected recycled coordinates, got (%d,%d) vs (%d,%d)",
				seg2.ID(), seg2.Gen(), seg.ID(), seg.Gen())
		}
		before := append([]byte(nil), seg2.Bytes()...)

		err := imp.Write(p, 0, []byte("stale write"), false)
		if !errors.Is(err, ErrStaleGeneration) {
			t.Fatalf("stale write: got %v, want ErrStaleGeneration", err)
		}
		p.Sleep(time.Millisecond)
		if !bytes.Equal(seg2.Bytes(), before) {
			t.Fatal("stale write mutated the new incarnation's memory")
		}

		// A fresh import under the new epoch goes straight through.
		imp2 := m0.Import(p, 1, seg2.ID(), seg2.Gen(), seg2.Size())
		imp2.SetReliable(true)
		imp2.SetFence(true)
		imp2.SetEpoch(m1.Incarnation())
		if err := imp2.Write(p, 0, []byte("new life"), false); err != nil {
			t.Fatalf("fenced write to new incarnation: %v", err)
		}
		p.Sleep(time.Millisecond)
		if !bytes.Equal(seg2.Bytes()[:8], []byte("new life")) {
			t.Fatal("fresh import's write not deposited")
		}
	})
}

// A fenced read against the restarted exporter also fails typed, and boot
// imports (epoch 0 against a never-restarted exporter) need no handshake.
func TestFencedReadAfterRestart(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 64)
		seg.SetDefaultRights(RightsAll)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		imp.SetFence(true) // epoch defaults to 0 == boot incarnation
		scratch := m0.Export(p, 64)
		if err := imp.Read(p, 0, 8, scratch, 0, time.Second); err != nil {
			t.Fatalf("boot-epoch read: %v", err)
		}
		m1.Restart()
		m1.Export(p, 64).SetDefaultRights(RightsAll)
		err := imp.Read(p, 0, 8, scratch, 0, time.Second)
		if !errors.Is(err, ErrStaleGeneration) {
			t.Fatalf("stale read: got %v, want ErrStaleGeneration", err)
		}
	})
}

// The epoch costs exactly two bytes on fenced requests and nothing — bit
// for bit — on unfenced ones, preserving the calibrated wire formats.
func TestFenceWireOverhead(t *testing.T) {
	base := wireMsg{kind: kindWrite, seg: 3, gen: 7, off: 128, data: []byte("abcd")}
	fenced := base
	fenced.fence, fenced.epoch = true, 42

	pb, fb := base.encode(), fenced.encode()
	if len(fb) != len(pb)+2 {
		t.Fatalf("fenced frame = %d bytes, want %d+2", len(fb), len(pb))
	}
	if pb[0]&flagEpoch != 0 {
		t.Fatal("unfenced frame carries the epoch flag")
	}
	got, err := decode(fb)
	if err != nil {
		t.Fatal(err)
	}
	if !got.fence || got.epoch != 42 || got.seg != 3 || got.off != 128 {
		t.Fatalf("fenced round-trip mismatch: %+v", got)
	}
	// Restart bumps the incarnation every time.
	env, _, _, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		if m1.Incarnation() != 0 {
			t.Fatalf("boot incarnation = %d, want 0", m1.Incarnation())
		}
		m1.Restart()
		m1.Restart()
		if m1.Incarnation() != 2 {
			t.Fatalf("incarnation after two restarts = %d, want 2", m1.Incarnation())
		}
	})
}
