package rmem

import (
	"fmt"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/model"
	"netmem/internal/obs"
)

// Table2 holds the reproduced measurements of the paper's Table 2
// ("Performance Summary of Remote Memory Operations").
type Table2 struct {
	ReadLatency    time.Duration // paper: 45 µs
	WriteLatency   time.Duration // paper: 30 µs
	CASLatency     time.Duration // paper: 38 µs
	ThroughputBits float64       // paper: 35.4 Mb/s (4 KB block writes)
	NotifyOverhead time.Duration // paper: 260 µs
}

// MeasureTable2 runs the Table 2 micro-benchmarks on a fresh two-node
// directly-connected cluster (the paper's testbed) under the given cost
// model and returns the measured numbers.
func MeasureTable2(params *model.Params) (Table2, error) {
	return MeasureTable2Obs(params, nil)
}

// MeasureTable2Obs is MeasureTable2 with an observability tracer attached
// to every scenario's environment (nil disables tracing). The five
// micro-benchmarks each run on a fresh cluster but share the tracer, so
// its metrics accumulate across the whole table; in the event timeline
// (Config.Events) the scenarios overlay, since each fresh environment
// restarts virtual time at zero.
func MeasureTable2Obs(params *model.Params, tr *obs.Tracer) (Table2, error) {
	var out Table2

	// WRITE latency: issue a single-cell write; observe the deposit.
	write, err := measureObs(params, tr, func(p *des.Proc, m0, m1 *Manager) (time.Duration, error) {
		seg := m1.Export(p, 256)
		seg.SetDefaultRights(RightsAll)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		start := p.Now()
		if err := imp.Write(p, 0, make([]byte, MsgRegisterCap), false); err != nil {
			return 0, err
		}
		for seg.RemoteWrites == 0 {
			p.Sleep(time.Microsecond)
		}
		return time.Duration(p.Now().Sub(start)), nil
	})
	if err != nil {
		return out, fmt.Errorf("write latency: %w", err)
	}
	out.WriteLatency = write

	// READ latency: single-cell read, blocking until the deposit.
	read, err := measureObs(params, tr, func(p *des.Proc, m0, m1 *Manager) (time.Duration, error) {
		src := m1.Export(p, 256)
		src.SetDefaultRights(RightRead)
		dst := m0.Export(p, 256)
		imp := m0.Import(p, 1, src.ID(), src.Gen(), src.Size())
		start := p.Now()
		if err := imp.Read(p, 0, MsgRegisterCap, dst, 0, time.Second); err != nil {
			return 0, err
		}
		return time.Duration(p.Now().Sub(start)), nil
	})
	if err != nil {
		return out, fmt.Errorf("read latency: %w", err)
	}
	out.ReadLatency = read

	// CAS latency.
	cas, err := measureObs(params, tr, func(p *des.Proc, m0, m1 *Manager) (time.Duration, error) {
		seg := m1.Export(p, 64)
		seg.SetDefaultRights(RightsAll)
		res := m0.Export(p, 64)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		start := p.Now()
		if _, err := imp.CAS(p, 0, 0, 1, res, 0, time.Second); err != nil {
			return 0, err
		}
		return time.Duration(p.Now().Sub(start)), nil
	})
	if err != nil {
		return out, fmt.Errorf("CAS latency: %w", err)
	}
	out.CASLatency = cas

	// Block-write throughput: 30 back-to-back 4 KB blocks.
	const blockSize, blocks = 4096, 30
	total, err := measureObs(params, tr, func(p *des.Proc, m0, m1 *Manager) (time.Duration, error) {
		seg := m1.Export(p, blockSize)
		seg.SetDefaultRights(RightsAll)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		data := make([]byte, blockSize)
		start := p.Now()
		for k := 0; k < blocks; k++ {
			if err := imp.WriteBlock(p, 0, data, false); err != nil {
				return 0, err
			}
		}
		for int(seg.RemoteWrites) < blocks {
			p.Sleep(10 * time.Microsecond)
		}
		return time.Duration(p.Now().Sub(start)), nil
	})
	if err != nil {
		return out, fmt.Errorf("block throughput: %w", err)
	}
	out.ThroughputBits = float64(blockSize*blocks*8) / total.Seconds()

	// Notification overhead: write-with-notify handled minus plain write.
	notified, err := measureObs(params, tr, func(p *des.Proc, m0, m1 *Manager) (time.Duration, error) {
		seg := m1.Export(p, 256)
		seg.SetDefaultRights(RightsAll)
		var handled des.Time
		done := false
		m1.Node.Env.Spawn("server", func(sp *des.Proc) {
			seg.AwaitNotification(sp)
			handled = sp.Now()
			done = true
		})
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		start := p.Now()
		if err := imp.Write(p, 0, make([]byte, MsgRegisterCap), true); err != nil {
			return 0, err
		}
		for !done {
			p.Sleep(time.Microsecond)
		}
		return time.Duration(handled.Sub(start)), nil
	})
	if err != nil {
		return out, fmt.Errorf("notification: %w", err)
	}
	out.NotifyOverhead = notified - out.WriteLatency

	return out, nil
}

// measureObs runs one timed scenario on a fresh pair of nodes, with an
// optional tracer attached before the cluster is built so every layer
// picks it up.
func measureObs(params *model.Params, tr *obs.Tracer, fn func(p *des.Proc, m0, m1 *Manager) (time.Duration, error)) (time.Duration, error) {
	env := des.NewEnv()
	if tr != nil {
		env.SetTracer(tr)
	}
	cl := cluster.New(env, params, 2)
	m0, m1 := NewManager(cl.Nodes[0]), NewManager(cl.Nodes[1])
	var result time.Duration
	var err error
	env.Spawn("measure", func(p *des.Proc) {
		result, err = fn(p, m0, m1)
	})
	if runErr := env.RunUntil(des.Time(10 * time.Second)); runErr != nil {
		return 0, runErr
	}
	return result, err
}
