package rmem

// BufPool recycles the byte buffers that timed read paths hand to their
// callers (seqlock record snapshots, local segment reads). A simulation is
// single-threaded by construction — exactly one goroutine runs at any
// instant — so the pool needs no locking.
//
// Buffers come out of Get sized exactly to the request; Put returns one for
// reuse. A buffer that is never Put back is simply garbage, so callers that
// retain results indefinitely keep working — they just don't benefit.
type BufPool struct {
	bufs [][]byte
}

// Get returns a buffer of length n, reusing a pooled one when its capacity
// suffices.
func (bp *BufPool) Get(n int) []byte {
	for i := len(bp.bufs) - 1; i >= 0; i-- {
		if b := bp.bufs[i]; cap(b) >= n {
			last := len(bp.bufs) - 1
			bp.bufs[i] = bp.bufs[last]
			bp.bufs[last] = nil
			bp.bufs = bp.bufs[:last]
			return b[:n]
		}
	}
	return make([]byte, n)
}

// Put returns a buffer to the pool. The caller must not use it afterwards.
func (bp *BufPool) Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	bp.bufs = append(bp.bufs, b[:0])
}

// Buffers exposes the manager's read-buffer pool. Callers of the read
// helpers that return fresh slices (Segment.ReadLocal, ReadRecord) can Put
// the result back here once done with it, making those paths allocation
// free in steady state.
func (m *Manager) Buffers() *BufPool { return &m.bufs }
