package rmem

import (
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
)

// Table 2 of the paper, measured on two DECstations connected directly
// without a switch:
//
//	READ latency            45 µs
//	WRITE latency           30 µs
//	CAS latency             38 µs
//	Block-write throughput  35.4 Mb/s (4 KB blocks)
//	Notification overhead   260 µs
//
// These tests drive the full simulated stack (meta-instruction trap, cell
// FIFOs, link, remote emulation, deposit) and assert the measured numbers
// land within 10 % of the paper's.

func tolerance(t *testing.T, name string, got, want time.Duration, tol float64) {
	t.Helper()
	lo := time.Duration(float64(want) * (1 - tol))
	hi := time.Duration(float64(want) * (1 + tol))
	if got < lo || got > hi {
		t.Errorf("%s = %v, want %v ±%.0f%%", name, got, want, tol*100)
	}
}

// MeasureWriteLatency returns the elapsed time from issuing a single-cell
// WRITE to the deposit completing at the destination.
func MeasureWriteLatency(t *testing.T) time.Duration {
	env, _, m0, m1 := testPair(t)
	var issued, deposited des.Time
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 256)
		seg.SetDefaultRights(RightsAll)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		data := make([]byte, MsgRegisterCap)
		issued = p.Now()
		if err := imp.Write(p, 0, data, false); err != nil {
			t.Fatal(err)
		}
		// Observe the deposit from the destination side.
		for seg.RemoteWrites == 0 {
			p.Sleep(time.Microsecond)
		}
		deposited = p.Now()
	})
	return deposited.Sub(issued)
}

func TestTable2WriteLatency(t *testing.T) {
	// The polling observer quantizes by ≤1 µs; that is inside the 10 %.
	tolerance(t, "WRITE latency", MeasureWriteLatency(t), 30*time.Microsecond, 0.10)
}

func TestTable2ReadLatency(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	var elapsed time.Duration
	run(t, env, func(p *des.Proc) {
		src := m1.Export(p, 256)
		src.SetDefaultRights(RightRead)
		dst := m0.Export(p, 256)
		imp := m0.Import(p, 1, src.ID(), src.Gen(), src.Size())
		start := p.Now()
		if err := imp.Read(p, 0, MsgRegisterCap, dst, 0, time.Second); err != nil {
			t.Fatal(err)
		}
		elapsed = p.Now().Sub(start)
	})
	tolerance(t, "READ latency", elapsed, 45*time.Microsecond, 0.10)
}

func TestTable2CASLatency(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	var elapsed time.Duration
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 64)
		seg.SetDefaultRights(RightsAll)
		res := m0.Export(p, 64)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		start := p.Now()
		if _, err := imp.CAS(p, 0, 0, 1, res, 0, time.Second); err != nil {
			t.Fatal(err)
		}
		elapsed = p.Now().Sub(start)
	})
	tolerance(t, "CAS latency", elapsed, 38*time.Microsecond, 0.10)
}

// MeasureBlockThroughput streams blocks of the given size and returns the
// steady-state memory-to-memory throughput in bits/second.
func MeasureBlockThroughput(t *testing.T, blockSize, blocks int) float64 {
	env, _, m0, m1 := testPair(t)
	var start, end des.Time
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, blockSize)
		seg.SetDefaultRights(RightsAll)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		data := make([]byte, blockSize)
		start = p.Now()
		for k := 0; k < blocks; k++ {
			if err := imp.WriteBlock(p, 0, data, false); err != nil {
				t.Fatal(err)
			}
		}
		for int(seg.RemoteWrites) < blocks {
			p.Sleep(10 * time.Microsecond)
		}
		end = p.Now()
	})
	bits := float64(blockSize*blocks) * 8
	return bits / end.Sub(start).Seconds()
}

func TestTable2BlockWriteThroughput(t *testing.T) {
	got := MeasureBlockThroughput(t, 4096, 30)
	want := 35.4e6
	if got < want*0.95 || got > want*1.05 {
		t.Errorf("4KB block-write throughput = %.1f Mb/s, want 35.4 ±5%%", got/1e6)
	}
}

func TestTable2BlockReadThroughputMatchesWrite(t *testing.T) {
	// §3.1.2: "the block read yields essentially identical performance".
	env, _, m0, m1 := testPair(t)
	const blockSize, blocks = 4096, 30
	var elapsed time.Duration
	run(t, env, func(p *des.Proc) {
		src := m1.Export(p, blockSize)
		src.SetDefaultRights(RightRead)
		dst := m0.Export(p, blockSize)
		imp := m0.Import(p, 1, src.ID(), src.Gen(), src.Size())
		start := p.Now()
		for k := 0; k < blocks; k++ {
			if err := imp.Read(p, 0, blockSize, dst, 0, time.Second); err != nil {
				t.Fatal(err)
			}
		}
		elapsed = p.Now().Sub(start)
	})
	got := float64(blockSize*blocks*8) / elapsed.Seconds()
	want := 35.4e6
	// Reads are serial request/response here (no pipelining of the next
	// request behind the previous reply), so allow a wider band but hold
	// the "essentially identical" claim to within 15 %.
	if got < want*0.85 || got > want*1.10 {
		t.Errorf("4KB block-read throughput = %.1f Mb/s, want ≈35.4 ±15%%", got/1e6)
	}
}

func TestTable2NotificationOverhead(t *testing.T) {
	// Overhead = (write-with-notify handled) − (plain write deposited).
	plain := MeasureWriteLatency(t)

	env, _, m0, m1 := testPair(t)
	var issued, handled des.Time
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 256)
		seg.SetDefaultRights(RightsAll)
		done := false
		m1.Node.Env.Spawn("server", func(sp *des.Proc) {
			seg.AwaitNotification(sp)
			handled = sp.Now()
			done = true
		})
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		data := make([]byte, MsgRegisterCap)
		issued = p.Now()
		if err := imp.Write(p, 0, data, true); err != nil {
			t.Fatal(err)
		}
		for !done {
			p.Sleep(time.Microsecond)
		}
	})
	overhead := handled.Sub(issued) - plain
	tolerance(t, "notification overhead", overhead, 260*time.Microsecond, 0.10)

	// The whole 260 µs is control-transfer time on the destination CPU.
	m1Acct := m1.Node.CPUAcct[cluster.CatControl]
	if m1Acct != 260*time.Microsecond {
		t.Errorf("destination control-transfer CPU = %v, want exactly 260µs", m1Acct)
	}
}

func TestTable2LocalVsRemoteWriteRatio(t *testing.T) {
	// §3.1.2: a processor-local write of one cell's worth of data is 15×
	// faster than the remote write on the same hardware.
	remote := MeasureWriteLatency(t)

	env, _, _, m1 := testPair(t)
	var local time.Duration
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 256)
		start := p.Now()
		seg.WriteLocal(p, 0, make([]byte, MsgRegisterCap))
		local = p.Now().Sub(start)
	})
	ratio := float64(remote) / float64(local)
	if ratio < 13 || ratio > 17 {
		t.Errorf("remote/local write ratio = %.1f, want ≈15", ratio)
	}
}

// TestDataOnlyTransferNeedsNoDestinationProcess is the architectural core
// of the paper: a remote write completes with zero CPU consumed by any
// destination *process* — only the kernel emulation (rx category) runs.
func TestDataOnlyTransferNeedsNoDestinationProcess(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		seg := m1.Export(p, 256)
		seg.SetDefaultRights(RightsAll)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		if err := imp.Write(p, 0, []byte("data only"), false); err != nil {
			t.Fatal(err)
		}
		p.Sleep(time.Millisecond)
	})
	acct := m1.Node.CPUAcct
	if acct[cluster.CatControl] != 0 {
		t.Errorf("control-transfer CPU = %v on a data-only write", acct[cluster.CatControl])
	}
	if acct[cluster.CatProc] != 0 {
		t.Errorf("procedure CPU = %v on a data-only write", acct[cluster.CatProc])
	}
	if acct[cluster.CatRx] == 0 {
		t.Error("no rx CPU recorded; the kernel emulation should have run")
	}
}
