package rmem

import (
	"fmt"
	"strings"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/reliable"
)

// opIssued records metrics for a locally-completed meta-instruction issue
// (trap through network acceptance — the paper's WRITE "local completion").
func (m *Manager) opIssued(op Op, start des.Time) {
	tr := m.Node.Env.Tracer()
	if tr == nil {
		return
	}
	kind := strings.ToLower(op.String())
	d := m.Node.Env.Now().Sub(start)
	tr.Count("rmem."+kind+".issued", 1)
	tr.Observe("rmem."+kind+".issue", d)
	if tr.EventsEnabled() {
		tr.Span(m.track, "rmem", op.String()+" issue", time.Duration(start), d)
	}
}

// opCompleted records round-trip metrics when a READ/CAS reply deposits.
func (m *Manager) opCompleted(po *pendingOp) {
	tr := m.Node.Env.Tracer()
	if tr == nil {
		return
	}
	kind := strings.ToLower(po.op.String())
	if po.err != nil {
		tr.Count("rmem."+kind+".nacked", 1)
		return
	}
	d := po.at.Sub(po.start)
	tr.Count("rmem."+kind+".completed", 1)
	tr.Observe("rmem."+kind+".latency", d)
	if tr.EventsEnabled() {
		tr.Span(m.track, "rmem", po.op.String(), time.Duration(po.start), d)
	}
}

// relCount bumps a reliability-layer counter metric.
func (m *Manager) relCount(key string) {
	if tr := m.Node.Env.Tracer(); tr != nil {
		tr.Count(key, 1)
	}
}

// relRecovered records a successful operation that needed retransmission:
// the recovery latency (first transmission → completion) feeds the
// "reliable.recovery" histogram.
func (m *Manager) relRecovered(first des.Time) {
	if tr := m.Node.Env.Tracer(); tr != nil {
		tr.Observe("reliable.recovery", m.Node.Env.Now().Sub(first))
	}
}

// attemptBase returns the size-scaled per-attempt timeout base for a
// reliable operation whose round trip moves rtCells cells: the model's
// fixed RetryTimeout, plus the notification budget (an ack follows the
// destination's control transfer when one was requested), plus twice the
// pipeline time of the cells in flight — so an 8 KB block is never
// declared lost while still streaming.
func (m *Manager) attemptBase(rtCells int) des.Duration {
	p := m.Node.P
	return p.RetryTimeout + p.NotifyOverhead() +
		2*des.Duration(rtCells)*(p.CellWireTime()+p.RxPerCell())
}

// awaitAck sends frame to dst and blocks until its WRACK (or NACK)
// arrives, retransmitting on timeout with capped exponential backoff.
// Runs the full at-most-once client side for reliable WRITEs.
func (m *Manager) awaitAck(p *des.Proc, dst int, cat string, seq uint32, frame []byte, rtCells int) error {
	n := m.Node
	env := n.Env
	aw := &ackWait{q: des.NewWaitQueue(env)}
	m.pendingAcks[seq] = aw
	base := m.attemptBase(rtCells)
	first := env.Now()
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			m.relCount("reliable.retries")
		}
		n.SendFrame(p, dst, Proto, cat, frame)
		timedOut := false
		cancel := env.After(m.relCfg.AttemptTimeout(base, attempt), func() {
			timedOut = true
			aw.q.WakeAll()
		})
		for !aw.done && !timedOut {
			aw.q.Wait(p)
		}
		cancel()
		if aw.done {
			if attempt > 0 {
				m.relRecovered(first)
			}
			return aw.err
		}
		if attempt >= m.relCfg.MaxRetries {
			delete(m.pendingAcks, seq)
			m.relCount("reliable.giveup")
			return ErrTimeout
		}
	}
}

// checkLocal performs the sender-side descriptor validation every
// meta-instruction begins with: trap into the emulation, verify rights
// against the local descriptor, verify bounds.
func (i *Import) checkLocal(p *des.Proc, need Rights, off, count int) error {
	n := i.m.Node
	n.UseCPU(p, i.cat, n.P.MetaTrap+n.P.PermCheck)
	if i.stale {
		return ErrStale
	}
	if off < 0 || count < 0 || off+count > i.size {
		return ErrBounds
	}
	_ = need // the sender trusts its imported rights; the owner re-checks
	return nil
}

// Write is the message-register variant of the WRITE meta-instruction: up
// to MsgRegisterCap bytes gathered from the shared registers into a single
// cell. Non-blocking and unacknowledged: on return the data has been
// accepted by the network, not delivered. notify asks the destination
// kernel to run the segment's control-transfer machinery on arrival
// (subject to the segment's notification mode).
func (i *Import) Write(p *des.Proc, off int, data []byte, notify bool) error {
	n := i.m.Node
	start := n.Env.Now()
	if len(data) > MsgRegisterCap {
		return ErrTooBig
	}
	if err := i.checkLocal(p, RightWrite, off, len(data)); err != nil {
		return err
	}
	n.UseCPU(p, i.cat, n.P.RegisterFormat)
	msg := &wireMsg{kind: kindWrite, notify: notify, swap: i.swap, seg: i.segID, gen: i.gen, off: uint32(off), data: data,
		fence: i.fence, epoch: i.epoch}
	if i.rel {
		msg.rel = true
		msg.rgen, msg.rseq = i.m.relSend.Next()
		frame := msg.encode()
		err := i.m.awaitAck(p, i.node, i.cat, msg.rseq, frame, 1+n.P.CellsFor(len(frame)))
		i.m.opIssued(OpWrite, start)
		return err
	}
	n.SendFrame(p, i.node, Proto, i.cat, msg.encode())
	i.m.opIssued(OpWrite, start)
	return nil
}

// WriteBlock is the block variant of WRITE: data moves directly from
// source memory to the remote segment with no message-register gather.
// Transfers larger than the framing limit are split into several frames
// (back-to-back on the wire; the destination deposits each on arrival).
func (i *Import) WriteBlock(p *des.Proc, off int, data []byte, notify bool) error {
	n := i.m.Node
	start := n.Env.Now()
	if len(data) > MaxBlock {
		return ErrTooBig
	}
	if err := i.checkLocal(p, RightWrite, off, len(data)); err != nil {
		return err
	}
	chunk := 32 * 1024 // < atm.MaxFrame with headers
	if i.rel {
		// Loss recovery retransmits whole frames (a frame missing any cell
		// is discarded at reassembly), so reliable blocks move in chunks
		// small enough that a retransmission is likely to get through.
		chunk = n.P.ReliableChunk
	}
	for done := 0; ; {
		end := done + chunk
		if end > len(data) {
			end = len(data)
		}
		// Only the final chunk carries the notify flag: one control
		// transfer per logical operation.
		last := end == len(data)
		msg := &wireMsg{kind: kindWrite, notify: notify && last, swap: i.swap, seg: i.segID, gen: i.gen, off: uint32(off + done), data: data[done:end],
			fence: i.fence, epoch: i.epoch}
		if i.rel {
			msg.rel = true
			msg.rgen, msg.rseq = i.m.relSend.Next()
			frame := msg.encode()
			if err := i.m.awaitAck(p, i.node, i.cat, msg.rseq, frame, 1+n.P.CellsFor(len(frame))); err != nil {
				return err
			}
		} else {
			n.SendFrame(p, i.node, Proto, i.cat, msg.encode())
		}
		if last {
			i.m.opIssued(OpWrite, start)
			return nil
		}
		done = end
	}
}

// ReadOp is an outstanding non-blocking READ. The issuing process may
// proceed and later Wait for the deposit, or poll the destination memory
// itself (the paper's "repeatedly checking the destination memory
// location").
type ReadOp struct {
	m   *Manager
	req uint32
	po  *pendingOp
}

// Done reports whether the reply has been deposited.
func (r *ReadOp) Done() bool { return r.po.done }

// Err returns the final status (nil before completion).
func (r *ReadOp) Err() error { return r.po.err }

// Wait blocks until the deposit completes or timeout elapses (timeout <= 0
// waits forever). On timeout the pending entry is abandoned: a late reply
// is discarded by the kernel. Each successful wake charges one user-level
// poll of the completion word.
//
// On a reliable import, Wait is also the retransmission engine: each
// unanswered per-attempt timeout resends the stored request frame (same
// request id and reliability identity, so the remote kernel deduplicates
// and the reply matches) until the reply lands, the retry budget is
// exhausted, or the caller's overall timeout expires.
func (r *ReadOp) Wait(p *des.Proc, timeout des.Duration) error {
	if r.po.relFrame != nil {
		return r.waitReliable(p, timeout)
	}
	env := r.m.Node.Env
	deadline := env.Now().Add(timeout)
	var timedOut bool
	var cancel func()
	if timeout > 0 {
		cancel = env.Schedule(deadline, func() {
			timedOut = true
			r.po.q.WakeAll()
		})
	}
	for !r.po.done && !timedOut {
		r.po.q.Wait(p)
	}
	if cancel != nil {
		cancel()
	}
	r.m.Node.UseCPU(p, cluster.CatClient, r.m.Node.P.SpinPoll)
	if !r.po.done {
		delete(r.m.pending, r.req) // abandon; late reply is dropped
		return ErrTimeout
	}
	return r.po.err
}

func (r *ReadOp) waitReliable(p *des.Proc, timeout des.Duration) error {
	m := r.m
	env := m.Node.Env
	var expired bool
	var cancelAll func()
	if timeout > 0 {
		cancelAll = env.After(timeout, func() {
			expired = true
			r.po.q.WakeAll()
		})
		defer cancelAll()
	}
	for attempt := 0; ; attempt++ {
		timedOut := false
		cancel := env.After(m.relCfg.AttemptTimeout(r.po.relBase, attempt), func() {
			timedOut = true
			r.po.q.WakeAll()
		})
		for !r.po.done && !timedOut && !expired {
			r.po.q.Wait(p)
		}
		cancel()
		m.Node.UseCPU(p, cluster.CatClient, m.Node.P.SpinPoll)
		if r.po.done {
			if attempt > 0 {
				m.relRecovered(r.po.start)
			}
			return r.po.err
		}
		if expired || attempt >= m.relCfg.MaxRetries {
			delete(m.pending, r.req) // abandon; a late reply is dropped
			m.relCount("reliable.giveup")
			return ErrTimeout
		}
		m.relCount("reliable.retries")
		m.Node.SendFrame(p, r.po.relDst, Proto, r.po.relCat, r.po.relFrame)
	}
}

// ReadAsync issues the READ meta-instruction: ask the remote kernel for
// count bytes at soff of the imported segment, to be deposited into the
// local segment dst at doff. Returns immediately with the outstanding
// operation.
func (i *Import) ReadAsync(p *des.Proc, soff, count int, dst *Segment, doff int, notify bool) (*ReadOp, error) {
	if count > MaxBlock {
		return nil, ErrTooBig
	}
	if err := i.checkLocal(p, RightRead, soff, count); err != nil {
		return nil, err
	}
	if doff < 0 || doff+count > dst.Size() {
		return nil, ErrBounds
	}
	m := i.m
	n := m.Node
	m.nextReq++
	req := m.nextReq
	po := &pendingOp{op: OpRead, dst: dst, doff: doff, swap: i.swap, start: n.Env.Now(), q: des.NewWaitQueue(n.Env)}
	m.pending[req] = po
	msg := &wireMsg{kind: kindRead, notify: notify, seg: i.segID, gen: i.gen,
		off: uint32(soff), count: uint32(count), req: req, fence: i.fence, epoch: i.epoch}
	if i.rel {
		msg.rel = true
		msg.rgen, msg.rseq = m.relSend.Next()
		po.relFrame = msg.encode()
		po.relDst = i.node
		po.relCat = i.cat
		po.relBase = m.attemptBase(1 + n.P.CellsFor(count))
		n.SendFrame(p, i.node, Proto, i.cat, po.relFrame)
	} else {
		n.SendFrame(p, i.node, Proto, i.cat, msg.encode())
	}
	m.opIssued(OpRead, po.start)
	return &ReadOp{m: m, req: req, po: po}, nil
}

// Read is the blocking convenience around ReadAsync: issue, then spin-wait
// for the deposit. timeout <= 0 waits forever. On a reliable import, large
// reads move in ReliableChunk pieces (each retried independently) so a
// single lost cell never forces a full-block retransmission.
func (i *Import) Read(p *des.Proc, soff, count int, dst *Segment, doff int, timeout des.Duration) error {
	chunk := count
	if i.rel && chunk > i.m.Node.P.ReliableChunk {
		chunk = i.m.Node.P.ReliableChunk
	}
	for done := 0; ; {
		end := done + chunk
		if end > count {
			end = count
		}
		op, err := i.ReadAsync(p, soff+done, end-done, dst, doff+done, false)
		if err != nil {
			return err
		}
		if err := op.Wait(p, timeout); err != nil {
			return err
		}
		if end == count {
			return nil
		}
		done = end
	}
}

// CAS issues the compare-and-swap meta-instruction on the 4-byte word at
// off: if the remote word equals old it is atomically replaced by new.
// The success/failure result is deposited into local memory at
// (result, roff) — 1 for success, 0 for failure — and also returned.
func (i *Import) CAS(p *des.Proc, off int, old, new uint32, result *Segment, roff int, timeout des.Duration) (bool, error) {
	if err := i.checkLocal(p, RightCAS, off, 4); err != nil {
		return false, err
	}
	if off%4 != 0 {
		return false, ErrUnaligned
	}
	if roff < 0 || roff+4 > result.Size() {
		return false, ErrBounds
	}
	m := i.m
	n := m.Node
	n.UseCPU(p, i.cat, n.P.CASFormat)
	m.nextReq++
	req := m.nextReq
	po := &pendingOp{op: OpCAS, dst: result, doff: roff, start: n.Env.Now(), q: des.NewWaitQueue(n.Env)}
	m.pending[req] = po
	msg := &wireMsg{kind: kindCAS, seg: i.segID, gen: i.gen, off: uint32(off), oldW: old, newW: new, req: req,
		fence: i.fence, epoch: i.epoch}
	if i.rel {
		msg.rel = true
		msg.rgen, msg.rseq = m.relSend.Next()
		po.relFrame = msg.encode()
		po.relDst = i.node
		po.relCat = i.cat
		po.relBase = m.attemptBase(2)
		n.SendFrame(p, i.node, Proto, i.cat, po.relFrame)
	} else {
		n.SendFrame(p, i.node, Proto, i.cat, msg.encode())
	}
	m.opIssued(OpCAS, po.start)
	ro := &ReadOp{m: m, req: req, po: po}
	if err := ro.Wait(p, timeout); err != nil {
		return false, err
	}
	return po.success, nil
}

// ---------------------------------------------------------------------------
// Receive side: the kernel's co-processor emulation. Runs in the node's RX
// drain context; data-only requests complete entirely here, with no action
// by the destination process.

func (m *Manager) handle(p *des.Proc, src int, frame []byte) {
	n := m.Node
	msg, err := decode(frame)
	if err != nil {
		n.Faults = append(n.Faults, fmt.Errorf("rmem: node %d: %w", n.ID, err))
		return
	}
	if msg.rel {
		switch msg.kind {
		case kindWrite, kindRead, kindCAS:
			if !m.admitReliable(p, src, msg) {
				return
			}
		}
	}
	switch msg.kind {
	case kindWrite:
		m.handleWrite(p, src, msg)
	case kindRead:
		m.handleRead(p, src, msg)
	case kindCAS:
		m.handleCAS(p, src, msg)
	case kindReadReply:
		m.handleReadReply(p, msg)
	case kindCASReply:
		m.handleCASReply(p, msg)
	case kindWriteAck:
		m.handleWriteAck(msg)
	case kindNack:
		if msg.rel {
			// A reliable WRITE's NACK: deliver the error to the waiting
			// writer instead of the fault log.
			if aw, ok := m.pendingAcks[msg.rseq]; ok {
				delete(m.pendingAcks, msg.rseq)
				aw.err = nackErr(msg.code)
				aw.done = true
				aw.q.WakeAll()
			}
			return
		}
		m.WriteFaults = append(m.WriteFaults, fmt.Errorf("rmem: write to node %d seg %d+%d: %w", src, msg.seg, msg.off, nackErr(msg.code)))
	}
}

// admitReliable runs the at-most-once gate on an arriving reliable
// request. Fresh requests pass through to their handler; duplicates are
// re-acked (WRITE) or answered from the reply cache (READ/CAS) without
// re-execution; stale-generation frames are dropped.
func (m *Manager) admitReliable(p *des.Proc, src int, msg *wireMsg) bool {
	switch m.relDedup.Accept(src, msg.rgen, msg.rseq) {
	case reliable.Fresh:
		return true
	case reliable.Stale:
		m.relCount("reliable.stale.dropped")
		return false
	}
	m.relCount("reliable.dup.dropped")
	switch msg.kind {
	case kindWrite:
		// The data was already applied (or the original frame is about to
		// arrive and this is a reorder ghost — then the ack matches anyway
		// because the identity is the same). Ack again: the first ack may
		// have been the casualty.
		m.sendWriteAck(p, src, msg)
	case kindRead, kindCAS:
		if rep, ok := m.relDedup.Reply(src, msg.rseq); ok {
			m.relCount("reliable.replay.replies")
			m.Node.SendFrame(p, src, Proto, cluster.CatReply, rep)
		} else if msg.kind == kindRead {
			// READ is idempotent: a reply evicted from the cache can be
			// recomputed safely.
			return true
		} else {
			// A CAS whose reply fell out of the cache must not re-execute;
			// dropping it leaves the requester to time out, preserving
			// at-most-once.
			m.relCount("reliable.replay.miss")
		}
	}
	return false
}

// sendWriteAck acknowledges a reliable WRITE by echoing its identity.
func (m *Manager) sendWriteAck(p *des.Proc, dst int, msg *wireMsg) {
	rep := &wireMsg{kind: kindWriteAck, rel: true, rgen: msg.rgen, rseq: msg.rseq}
	m.Node.SendFrame(p, dst, Proto, cluster.CatReply, rep.encode())
}

// handleWriteAck completes a pending reliable WRITE. Acks from a previous
// sender incarnation (stale generation) are ignored.
func (m *Manager) handleWriteAck(msg *wireMsg) {
	if msg.rgen != m.relSend.Generation() {
		return
	}
	aw, ok := m.pendingAcks[msg.rseq]
	if !ok {
		return // duplicate ack, or the writer already gave up
	}
	delete(m.pendingAcks, msg.rseq)
	aw.done = true
	aw.q.WakeAll()
}

// validate checks an incoming request against the descriptor tables. The
// lease-epoch check comes first: a fenced request from a previous
// incarnation must be refused before the segment lookup, because after a
// cold boot the new incarnation may have recycled the very same (id, gen)
// for different memory.
func (m *Manager) validate(src int, msg *wireMsg, need Rights, count int) (*Segment, error) {
	if msg.fence && msg.epoch != m.incarnation {
		m.relCount("rmem.fenced")
		return nil, ErrStaleGeneration
	}
	s, ok := m.exports[msg.seg]
	if !ok {
		return nil, ErrRevoked
	}
	if s.gen != msg.gen {
		return nil, ErrStale
	}
	if s.rightsFor(src)&need == 0 {
		return nil, ErrNoRights
	}
	if int(msg.off)+count > len(s.buf) {
		return nil, ErrBounds
	}
	if need&(RightWrite|RightCAS) != 0 && s.inhibited {
		return nil, ErrInhibited
	}
	return s, nil
}

func (m *Manager) nack(p *des.Proc, dst int, msg *wireMsg, err error) {
	rep := &wireMsg{kind: kindNack, seg: msg.seg, gen: msg.gen, off: msg.off, code: errNack(err),
		rel: msg.rel, rgen: msg.rgen, rseq: msg.rseq, fence: msg.fence, epoch: msg.epoch}
	m.Node.SendFrame(p, dst, Proto, cluster.CatReply, rep.encode())
}

func (m *Manager) handleWrite(p *des.Proc, src int, msg *wireMsg) {
	s, err := m.validate(src, msg, RightWrite, len(msg.data))
	if err != nil {
		m.nack(p, src, msg, err)
		return
	}
	// The per-cell deposit cost (translation walk + copy) was charged in
	// the drain loop as each cell arrived; here the completed frame's data
	// becomes visible in the destination address space. The swap bit asks
	// for byte-order conversion in flight (§3.6).
	if msg.swap {
		m.Node.UseCPU(p, cluster.CatRx, des.Duration(m.Node.P.CellsFor(len(msg.data)))*m.Node.P.ByteSwapPerCell)
		swapWords(s.buf[msg.off:int(msg.off)+len(msg.data)], msg.data)
	} else {
		copy(s.buf[msg.off:], msg.data)
	}
	s.RemoteWrites++
	m.maybeNotify(p, s, src, OpWrite, int(msg.off), len(msg.data), msg.notify)
	if msg.rel {
		m.sendWriteAck(p, src, msg)
	}
}

func (m *Manager) handleRead(p *des.Proc, src int, msg *wireMsg) {
	n := m.Node
	s, err := m.validate(src, msg, RightRead, int(msg.count))
	if err != nil {
		rep := &wireMsg{kind: kindReadReply, req: msg.req, status: errNack(err)}
		enc := rep.encode()
		if msg.rel {
			m.relDedup.SaveReply(src, msg.rseq, enc)
		}
		n.SendFrame(p, src, Proto, cluster.CatReply, enc)
		return
	}
	// Fetch through the translation tables and format the reply. The
	// descriptor lookup happens once up front; the per-cell fetch cost is
	// interleaved with the cell pushes so a block read streams rather than
	// fetching everything before the first cell hits the wire.
	n.UseCPU(p, cluster.CatReply, n.P.ReadFetch-n.P.ReadFetchPerCell)
	data := s.buf[msg.off : int(msg.off)+int(msg.count)]
	s.RemoteReads++
	rep := &wireMsg{kind: kindReadReply, req: msg.req, data: data}
	enc := rep.encode()
	if msg.rel {
		m.relDedup.SaveReply(src, msg.rseq, enc)
	}
	n.SendFrameEx(p, src, Proto, cluster.CatReply, enc, n.P.ReadFetchPerCell)
	m.maybeNotify(p, s, src, OpRead, int(msg.off), int(msg.count), msg.notify)
}

func (m *Manager) handleCAS(p *des.Proc, src int, msg *wireMsg) {
	n := m.Node
	s, err := m.validate(src, msg, RightCAS, 4)
	if err != nil {
		rep := &wireMsg{kind: kindCASReply, req: msg.req, status: errNack(err)}
		enc := rep.encode()
		if msg.rel {
			m.relDedup.SaveReply(src, msg.rseq, enc)
		}
		n.SendFrame(p, src, Proto, cluster.CatReply, enc)
		return
	}
	n.UseCPU(p, cluster.CatReply, n.P.CASExec)
	cur := be32(s.buf[msg.off:])
	success := cur == msg.oldW
	if success {
		putbe32(s.buf[msg.off:], msg.newW)
	}
	s.RemoteCAS++
	rep := &wireMsg{kind: kindCASReply, req: msg.req, success: success}
	enc := rep.encode()
	if msg.rel {
		// At-most-once hinges on this cache: a retransmitted CAS replays
		// the recorded outcome instead of swapping twice.
		m.relDedup.SaveReply(src, msg.rseq, enc)
	}
	n.SendFrame(p, src, Proto, cluster.CatReply, enc)
	m.maybeNotify(p, s, src, OpCAS, int(msg.off), 4, msg.notify)
}

func (m *Manager) handleReadReply(p *des.Proc, msg *wireMsg) {
	n := m.Node
	po, ok := m.pending[msg.req]
	if !ok {
		return // abandoned (timed out); drop
	}
	delete(m.pending, msg.req)
	po.at = n.Env.Now()
	if msg.status != 0 {
		po.err = nackErr(msg.status)
	} else {
		// Per-cell deposit was charged in the drain loop on arrival.
		if po.swap {
			n.UseCPU(p, cluster.CatRx, des.Duration(n.P.CellsFor(len(msg.data)))*n.P.ByteSwapPerCell)
			swapWords(po.dst.buf[po.doff:po.doff+len(msg.data)], msg.data)
		} else {
			copy(po.dst.buf[po.doff:], msg.data)
		}
	}
	po.done = true
	m.opCompleted(po)
	po.q.WakeAll()
}

func (m *Manager) handleCASReply(p *des.Proc, msg *wireMsg) {
	n := m.Node
	po, ok := m.pending[msg.req]
	if !ok {
		return
	}
	delete(m.pending, msg.req)
	po.at = n.Env.Now()
	if msg.status != 0 {
		po.err = nackErr(msg.status)
	} else {
		n.UseCPU(p, cluster.CatRx, n.P.DepositResult)
		po.success = msg.success
		var w uint32
		if msg.success {
			w = 1
		}
		putbe32(po.dst.buf[po.doff:], w)
	}
	po.done = true
	m.opCompleted(po)
	po.q.WakeAll()
}

// swapWords copies src into dst reversing the byte order of each 4-byte
// word; a trailing partial word is copied unchanged. This is the §3.6
// byte-order conversion performed during the PIO copy.
func swapWords(dst, src []byte) {
	n := len(src) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i], dst[i+1], dst[i+2], dst[i+3] = src[i+3], src[i+2], src[i+1], src[i]
	}
	copy(dst[n:], src[n:])
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func putbe32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
