package rmem

import (
	"fmt"
	"strings"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
)

// opIssued records metrics for a locally-completed meta-instruction issue
// (trap through network acceptance — the paper's WRITE "local completion").
func (m *Manager) opIssued(op Op, start des.Time) {
	tr := m.Node.Env.Tracer()
	if tr == nil {
		return
	}
	kind := strings.ToLower(op.String())
	d := m.Node.Env.Now().Sub(start)
	tr.Count("rmem."+kind+".issued", 1)
	tr.Observe("rmem."+kind+".issue", d)
	if tr.EventsEnabled() {
		tr.Span(m.track, "rmem", op.String()+" issue", time.Duration(start), d)
	}
}

// opCompleted records round-trip metrics when a READ/CAS reply deposits.
func (m *Manager) opCompleted(po *pendingOp) {
	tr := m.Node.Env.Tracer()
	if tr == nil {
		return
	}
	kind := strings.ToLower(po.op.String())
	if po.err != nil {
		tr.Count("rmem."+kind+".nacked", 1)
		return
	}
	d := po.at.Sub(po.start)
	tr.Count("rmem."+kind+".completed", 1)
	tr.Observe("rmem."+kind+".latency", d)
	if tr.EventsEnabled() {
		tr.Span(m.track, "rmem", po.op.String(), time.Duration(po.start), d)
	}
}

// checkLocal performs the sender-side descriptor validation every
// meta-instruction begins with: trap into the emulation, verify rights
// against the local descriptor, verify bounds.
func (i *Import) checkLocal(p *des.Proc, need Rights, off, count int) error {
	n := i.m.Node
	n.UseCPU(p, i.cat, n.P.MetaTrap+n.P.PermCheck)
	if i.stale {
		return ErrStale
	}
	if off < 0 || count < 0 || off+count > i.size {
		return ErrBounds
	}
	_ = need // the sender trusts its imported rights; the owner re-checks
	return nil
}

// Write is the message-register variant of the WRITE meta-instruction: up
// to MsgRegisterCap bytes gathered from the shared registers into a single
// cell. Non-blocking and unacknowledged: on return the data has been
// accepted by the network, not delivered. notify asks the destination
// kernel to run the segment's control-transfer machinery on arrival
// (subject to the segment's notification mode).
func (i *Import) Write(p *des.Proc, off int, data []byte, notify bool) error {
	n := i.m.Node
	start := n.Env.Now()
	if len(data) > MsgRegisterCap {
		return ErrTooBig
	}
	if err := i.checkLocal(p, RightWrite, off, len(data)); err != nil {
		return err
	}
	n.UseCPU(p, i.cat, n.P.RegisterFormat)
	msg := &wireMsg{kind: kindWrite, notify: notify, swap: i.swap, seg: i.segID, gen: i.gen, off: uint32(off), data: data}
	n.SendFrame(p, i.node, Proto, i.cat, msg.encode())
	i.m.opIssued(OpWrite, start)
	return nil
}

// WriteBlock is the block variant of WRITE: data moves directly from
// source memory to the remote segment with no message-register gather.
// Transfers larger than the framing limit are split into several frames
// (back-to-back on the wire; the destination deposits each on arrival).
func (i *Import) WriteBlock(p *des.Proc, off int, data []byte, notify bool) error {
	n := i.m.Node
	start := n.Env.Now()
	if len(data) > MaxBlock {
		return ErrTooBig
	}
	if err := i.checkLocal(p, RightWrite, off, len(data)); err != nil {
		return err
	}
	const chunk = 32 * 1024 // < atm.MaxFrame with headers
	for done := 0; ; {
		end := done + chunk
		if end > len(data) {
			end = len(data)
		}
		// Only the final chunk carries the notify flag: one control
		// transfer per logical operation.
		last := end == len(data)
		msg := &wireMsg{kind: kindWrite, notify: notify && last, swap: i.swap, seg: i.segID, gen: i.gen, off: uint32(off + done), data: data[done:end]}
		n.SendFrame(p, i.node, Proto, i.cat, msg.encode())
		if last {
			i.m.opIssued(OpWrite, start)
			return nil
		}
		done = end
	}
}

// ReadOp is an outstanding non-blocking READ. The issuing process may
// proceed and later Wait for the deposit, or poll the destination memory
// itself (the paper's "repeatedly checking the destination memory
// location").
type ReadOp struct {
	m   *Manager
	req uint32
	po  *pendingOp
}

// Done reports whether the reply has been deposited.
func (r *ReadOp) Done() bool { return r.po.done }

// Err returns the final status (nil before completion).
func (r *ReadOp) Err() error { return r.po.err }

// Wait blocks until the deposit completes or timeout elapses (timeout <= 0
// waits forever). On timeout the pending entry is abandoned: a late reply
// is discarded by the kernel. Each successful wake charges one user-level
// poll of the completion word.
func (r *ReadOp) Wait(p *des.Proc, timeout des.Duration) error {
	env := r.m.Node.Env
	deadline := env.Now().Add(timeout)
	var timedOut bool
	var cancel func()
	if timeout > 0 {
		cancel = env.Schedule(deadline, func() {
			timedOut = true
			r.po.q.WakeAll()
		})
	}
	for !r.po.done && !timedOut {
		r.po.q.Wait(p)
	}
	if cancel != nil {
		cancel()
	}
	r.m.Node.UseCPU(p, cluster.CatClient, r.m.Node.P.SpinPoll)
	if !r.po.done {
		delete(r.m.pending, r.req) // abandon; late reply is dropped
		return ErrTimeout
	}
	return r.po.err
}

// ReadAsync issues the READ meta-instruction: ask the remote kernel for
// count bytes at soff of the imported segment, to be deposited into the
// local segment dst at doff. Returns immediately with the outstanding
// operation.
func (i *Import) ReadAsync(p *des.Proc, soff, count int, dst *Segment, doff int, notify bool) (*ReadOp, error) {
	if count > MaxBlock {
		return nil, ErrTooBig
	}
	if err := i.checkLocal(p, RightRead, soff, count); err != nil {
		return nil, err
	}
	if doff < 0 || doff+count > dst.Size() {
		return nil, ErrBounds
	}
	m := i.m
	n := m.Node
	m.nextReq++
	req := m.nextReq
	po := &pendingOp{op: OpRead, dst: dst, doff: doff, swap: i.swap, start: n.Env.Now(), q: des.NewWaitQueue(n.Env)}
	m.pending[req] = po
	msg := &wireMsg{kind: kindRead, notify: notify, seg: i.segID, gen: i.gen,
		off: uint32(soff), count: uint32(count), req: req}
	n.SendFrame(p, i.node, Proto, i.cat, msg.encode())
	m.opIssued(OpRead, po.start)
	return &ReadOp{m: m, req: req, po: po}, nil
}

// Read is the blocking convenience around ReadAsync: issue, then spin-wait
// for the deposit. timeout <= 0 waits forever.
func (i *Import) Read(p *des.Proc, soff, count int, dst *Segment, doff int, timeout des.Duration) error {
	op, err := i.ReadAsync(p, soff, count, dst, doff, false)
	if err != nil {
		return err
	}
	return op.Wait(p, timeout)
}

// CAS issues the compare-and-swap meta-instruction on the 4-byte word at
// off: if the remote word equals old it is atomically replaced by new.
// The success/failure result is deposited into local memory at
// (result, roff) — 1 for success, 0 for failure — and also returned.
func (i *Import) CAS(p *des.Proc, off int, old, new uint32, result *Segment, roff int, timeout des.Duration) (bool, error) {
	if err := i.checkLocal(p, RightCAS, off, 4); err != nil {
		return false, err
	}
	if off%4 != 0 {
		return false, ErrUnaligned
	}
	if roff < 0 || roff+4 > result.Size() {
		return false, ErrBounds
	}
	m := i.m
	n := m.Node
	n.UseCPU(p, i.cat, n.P.CASFormat)
	m.nextReq++
	req := m.nextReq
	po := &pendingOp{op: OpCAS, dst: result, doff: roff, start: n.Env.Now(), q: des.NewWaitQueue(n.Env)}
	m.pending[req] = po
	msg := &wireMsg{kind: kindCAS, seg: i.segID, gen: i.gen, off: uint32(off), oldW: old, newW: new, req: req}
	n.SendFrame(p, i.node, Proto, i.cat, msg.encode())
	m.opIssued(OpCAS, po.start)
	ro := &ReadOp{m: m, req: req, po: po}
	if err := ro.Wait(p, timeout); err != nil {
		return false, err
	}
	return po.success, nil
}

// ---------------------------------------------------------------------------
// Receive side: the kernel's co-processor emulation. Runs in the node's RX
// drain context; data-only requests complete entirely here, with no action
// by the destination process.

func (m *Manager) handle(p *des.Proc, src int, frame []byte) {
	n := m.Node
	msg, err := decode(frame)
	if err != nil {
		n.Faults = append(n.Faults, fmt.Errorf("rmem: node %d: %w", n.ID, err))
		return
	}
	switch msg.kind {
	case kindWrite:
		m.handleWrite(p, src, msg)
	case kindRead:
		m.handleRead(p, src, msg)
	case kindCAS:
		m.handleCAS(p, src, msg)
	case kindReadReply:
		m.handleReadReply(p, msg)
	case kindCASReply:
		m.handleCASReply(p, msg)
	case kindNack:
		m.WriteFaults = append(m.WriteFaults, fmt.Errorf("rmem: write to node %d seg %d+%d: %w", src, msg.seg, msg.off, nackErr(msg.code)))
	}
}

// validate checks an incoming request against the descriptor tables.
func (m *Manager) validate(src int, msg *wireMsg, need Rights, count int) (*Segment, error) {
	s, ok := m.exports[msg.seg]
	if !ok {
		return nil, ErrRevoked
	}
	if s.gen != msg.gen {
		return nil, ErrStale
	}
	if s.rightsFor(src)&need == 0 {
		return nil, ErrNoRights
	}
	if int(msg.off)+count > len(s.buf) {
		return nil, ErrBounds
	}
	if need&(RightWrite|RightCAS) != 0 && s.inhibited {
		return nil, ErrInhibited
	}
	return s, nil
}

func (m *Manager) nack(p *des.Proc, dst int, msg *wireMsg, err error) {
	rep := &wireMsg{kind: kindNack, seg: msg.seg, gen: msg.gen, off: msg.off, code: errNack(err)}
	m.Node.SendFrame(p, dst, Proto, cluster.CatReply, rep.encode())
}

func (m *Manager) handleWrite(p *des.Proc, src int, msg *wireMsg) {
	s, err := m.validate(src, msg, RightWrite, len(msg.data))
	if err != nil {
		m.nack(p, src, msg, err)
		return
	}
	// The per-cell deposit cost (translation walk + copy) was charged in
	// the drain loop as each cell arrived; here the completed frame's data
	// becomes visible in the destination address space. The swap bit asks
	// for byte-order conversion in flight (§3.6).
	if msg.swap {
		m.Node.UseCPU(p, cluster.CatRx, des.Duration(m.Node.P.CellsFor(len(msg.data)))*m.Node.P.ByteSwapPerCell)
		swapWords(s.buf[msg.off:int(msg.off)+len(msg.data)], msg.data)
	} else {
		copy(s.buf[msg.off:], msg.data)
	}
	s.RemoteWrites++
	m.maybeNotify(p, s, src, OpWrite, int(msg.off), len(msg.data), msg.notify)
}

func (m *Manager) handleRead(p *des.Proc, src int, msg *wireMsg) {
	n := m.Node
	s, err := m.validate(src, msg, RightRead, int(msg.count))
	if err != nil {
		rep := &wireMsg{kind: kindReadReply, req: msg.req, status: errNack(err)}
		n.SendFrame(p, src, Proto, cluster.CatReply, rep.encode())
		return
	}
	// Fetch through the translation tables and format the reply. The
	// descriptor lookup happens once up front; the per-cell fetch cost is
	// interleaved with the cell pushes so a block read streams rather than
	// fetching everything before the first cell hits the wire.
	n.UseCPU(p, cluster.CatReply, n.P.ReadFetch-n.P.ReadFetchPerCell)
	data := s.buf[msg.off : int(msg.off)+int(msg.count)]
	s.RemoteReads++
	rep := &wireMsg{kind: kindReadReply, req: msg.req, data: data}
	n.SendFrameEx(p, src, Proto, cluster.CatReply, rep.encode(), n.P.ReadFetchPerCell)
	m.maybeNotify(p, s, src, OpRead, int(msg.off), int(msg.count), msg.notify)
}

func (m *Manager) handleCAS(p *des.Proc, src int, msg *wireMsg) {
	n := m.Node
	s, err := m.validate(src, msg, RightCAS, 4)
	if err != nil {
		rep := &wireMsg{kind: kindCASReply, req: msg.req, status: errNack(err)}
		n.SendFrame(p, src, Proto, cluster.CatReply, rep.encode())
		return
	}
	n.UseCPU(p, cluster.CatReply, n.P.CASExec)
	cur := be32(s.buf[msg.off:])
	success := cur == msg.oldW
	if success {
		putbe32(s.buf[msg.off:], msg.newW)
	}
	s.RemoteCAS++
	rep := &wireMsg{kind: kindCASReply, req: msg.req, success: success}
	n.SendFrame(p, src, Proto, cluster.CatReply, rep.encode())
	m.maybeNotify(p, s, src, OpCAS, int(msg.off), 4, msg.notify)
}

func (m *Manager) handleReadReply(p *des.Proc, msg *wireMsg) {
	n := m.Node
	po, ok := m.pending[msg.req]
	if !ok {
		return // abandoned (timed out); drop
	}
	delete(m.pending, msg.req)
	po.at = n.Env.Now()
	if msg.status != 0 {
		po.err = nackErr(msg.status)
	} else {
		// Per-cell deposit was charged in the drain loop on arrival.
		if po.swap {
			n.UseCPU(p, cluster.CatRx, des.Duration(n.P.CellsFor(len(msg.data)))*n.P.ByteSwapPerCell)
			swapWords(po.dst.buf[po.doff:po.doff+len(msg.data)], msg.data)
		} else {
			copy(po.dst.buf[po.doff:], msg.data)
		}
	}
	po.done = true
	m.opCompleted(po)
	po.q.WakeAll()
}

func (m *Manager) handleCASReply(p *des.Proc, msg *wireMsg) {
	n := m.Node
	po, ok := m.pending[msg.req]
	if !ok {
		return
	}
	delete(m.pending, msg.req)
	po.at = n.Env.Now()
	if msg.status != 0 {
		po.err = nackErr(msg.status)
	} else {
		n.UseCPU(p, cluster.CatRx, n.P.DepositResult)
		po.success = msg.success
		var w uint32
		if msg.success {
			w = 1
		}
		putbe32(po.dst.buf[po.doff:], w)
	}
	po.done = true
	m.opCompleted(po)
	po.q.WakeAll()
}

// swapWords copies src into dst reversing the byte order of each 4-byte
// word; a trailing partial word is copied unchanged. This is the §3.6
// byte-order conversion performed during the PIO copy.
func swapWords(dst, src []byte) {
	n := len(src) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i], dst[i+1], dst[i+2], dst[i+3] = src[i+3], src[i+2], src[i+1], src[i]
	}
	copy(dst[n:], src[n:])
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func putbe32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
