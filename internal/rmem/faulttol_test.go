package rmem

import (
	"bytes"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/faults"
	"netmem/internal/model"
	"netmem/internal/obs"
)

// TestLateReplyAfterTimeoutDiscarded pins the abandonment contract: a READ
// whose requester times out before the reply lands must leave no pending
// state, and the late reply must be discarded by the kernel — not
// deposited into the long-gone destination buffer.
func TestLateReplyAfterTimeoutDiscarded(t *testing.T) {
	env, c, m0, m1 := testPair(t)
	run(t, env, func(p *des.Proc) {
		src := m1.Export(p, 64)
		src.SetDefaultRights(RightRead)
		copy(src.Bytes(), bytes.Repeat([]byte{0xEE}, 64))
		dst := m0.Export(p, 64)
		imp := m0.Import(p, 1, src.ID(), src.Gen(), src.Size())

		// A small READ's reply takes ~45µs; time out well before it.
		if err := imp.Read(p, 0, 16, dst, 0, 20*us); err != ErrTimeout {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
		// Let the late reply arrive. It must be dropped: the destination
		// stays untouched and no fault is recorded.
		p.Sleep(2 * time.Millisecond)
		if !bytes.Equal(dst.Bytes()[:16], make([]byte, 16)) {
			t.Error("late reply was deposited after the requester gave up")
		}
		// The pending table is clean: a fresh READ completes normally.
		if err := imp.Read(p, 0, 16, dst, 32, time.Second); err != nil {
			t.Fatalf("follow-up read: %v", err)
		}
		if !bytes.Equal(dst.Bytes()[32:48], src.Bytes()[:16]) {
			t.Error("follow-up read deposited wrong bytes")
		}
	})
	for _, node := range c.Nodes {
		if len(node.Faults) != 0 {
			t.Errorf("node %d recorded faults: %v", node.ID, node.Faults)
		}
	}
}

// overloadRig is a four-node switched cluster where nodes 1 and 2 blast
// concurrent 32 KB frames at node 0 — twice the drain rate of node 0's
// switch output port, so its output queue saturates.
type overloadRig struct {
	env  *des.Env
	c    *cluster.Cluster
	mgrs [4]*Manager
}

func newOverloadRig(t *testing.T, seed int64, camp faults.Campaign) (*overloadRig, *faults.Engine, *obs.Tracer) {
	t.Helper()
	env := des.NewEnv()
	env.Seed(seed)
	tr := obs.New(obs.Config{})
	env.SetTracer(tr)
	eng := faults.NewEngine(env, camp)
	c := cluster.New(env, &model.Default, 4, cluster.WithFaultEngine(eng))
	r := &overloadRig{env: env, c: c}
	for i := range r.mgrs {
		r.mgrs[i] = NewManager(c.Nodes[i])
	}
	return r, eng, tr
}

// TestOverflowBackpressureDeliversEverything: without DropOnOverflow, a
// full FIFO exerts link-level flow control — under sustained 2:1 overload
// of one switch port, every cell still arrives (zero drops anywhere) and
// the transfer is pinned to the output port's serialization rate.
func TestOverflowBackpressureDeliversEverything(t *testing.T) {
	r, eng, _ := newOverloadRig(t, 17, faults.Campaign{Name: "clean"})
	const blast = 32 * 1024
	var elapsed time.Duration
	done := 0
	r.env.Spawn("driver", func(p *des.Proc) {
		segs := [2]*Segment{}
		imps := [2]*Import{}
		for i := 0; i < 2; i++ {
			seg := r.mgrs[0].Export(p, blast)
			seg.SetDefaultRights(RightsAll)
			segs[i] = seg
			imps[i] = r.mgrs[1+i].Import(p, 0, seg.ID(), seg.Gen(), seg.Size())
		}
		start := p.Now()
		for i := 0; i < 2; i++ {
			i := i
			r.env.Spawn("blaster", func(bp *des.Proc) {
				payload := bytes.Repeat([]byte{byte(0xA0 + i)}, blast)
				if err := imps[i].WriteBlock(bp, 0, payload, false); err != nil {
					t.Errorf("blast %d: %v", i, err)
				}
				done++
			})
		}
		// WriteBlock returns at local completion (TX accepted); poll node
		// 0's memory until both payloads have fully landed.
		arrived := func() bool {
			for i := 0; i < 2; i++ {
				want := bytes.Repeat([]byte{byte(0xA0 + i)}, blast)
				if !bytes.Equal(segs[i].Bytes(), want) {
					return false
				}
			}
			return true
		}
		for done < 2 || !arrived() {
			if time.Duration(p.Now().Sub(start)) > 5*time.Second {
				t.Error("payloads never fully arrived under backpressure")
				return
			}
			p.Sleep(100 * us)
		}
		elapsed = time.Duration(p.Now().Sub(start))
	})
	if err := r.env.RunUntil(des.Time(10 * time.Second)); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if n := eng.Injected(faults.KindOverflow); n != 0 {
		t.Errorf("backpressure mode dropped %d cells on overflow", n)
	}
	for _, node := range r.c.Nodes {
		if node.NIC.RX.Drops != 0 || node.NIC.TX.Drops != 0 {
			t.Errorf("node %d: FIFO drops under backpressure (rx %d, tx %d)",
				node.ID, node.NIC.RX.Drops, node.NIC.TX.Drops)
		}
		if len(node.Faults) != 0 {
			t.Errorf("node %d faults: %v", node.ID, node.Faults)
		}
	}
	// ~683 cells per 32 KB frame, two frames through one output port: the
	// port's serialization alone bounds the transfer from below.
	floor := time.Duration(1300) * model.Default.CellWireTime()
	if elapsed < floor {
		t.Errorf("overloaded transfer finished in %v, below the %v serialization floor — backpressure not modelled", elapsed, floor)
	}
}

// TestOverflowDropsRecoveredByRetry: with DropOnOverflow the same overload
// sheds cells at the full port (counted as injected overflow faults), and
// a reliable writer caught in the congestion still lands every write
// byte-correct via retransmission.
func TestOverflowDropsRecoveredByRetry(t *testing.T) {
	r, eng, tr := newOverloadRig(t, 5, faults.Campaign{Name: "shed", DropOnOverflow: true})
	const blast = 32 * 1024
	const writes = 20
	var writeErrs int
	finished := false
	r.env.Spawn("driver", func(p *des.Proc) {
		// Victim segment for the reliable writer, plus two blast targets.
		victim := r.mgrs[0].Export(p, 4096)
		victim.SetDefaultRights(RightsAll)
		wimp := r.mgrs[3].Import(p, 0, victim.ID(), victim.Gen(), victim.Size())
		wimp.SetReliable(true)
		blasters := 0
		for i := 0; i < 2; i++ {
			i := i
			seg := r.mgrs[0].Export(p, blast)
			seg.SetDefaultRights(RightsAll)
			imp := r.mgrs[1+i].Import(p, 0, seg.ID(), seg.Gen(), seg.Size())
			r.env.Spawn("blaster", func(bp *des.Proc) {
				payload := bytes.Repeat([]byte{byte(i)}, blast)
				for round := 0; round < 3; round++ {
					// Unreliable blasts: partial frames at node 0 are the
					// expected cost of shedding; only the victim's writes
					// must survive.
					if err := imp.WriteBlock(bp, 0, payload, false); err != nil {
						t.Errorf("blast: %v", err)
					}
				}
				blasters++
			})
		}
		for k := 0; k < writes; k++ {
			msg := []byte{byte(k), 0x5A, byte(k ^ 0xFF), 0xC3}
			if err := wimp.Write(p, k*32, msg, false); err != nil {
				writeErrs++
				continue
			}
			if !bytes.Equal(victim.Bytes()[k*32:k*32+4], msg) {
				t.Errorf("write %d: wrong bytes despite ack", k)
			}
			p.Sleep(150 * us)
		}
		for blasters < 2 {
			p.Sleep(200 * us)
		}
		finished = true
	})
	if err := r.env.RunUntil(des.Time(30 * time.Second)); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if !finished {
		t.Fatal("driver did not finish")
	}
	if writeErrs != 0 {
		t.Errorf("%d reliable writes failed under congestion", writeErrs)
	}
	if eng.Injected(faults.KindOverflow) == 0 {
		t.Error("overload shed no cells — test exercised nothing")
	}
	t.Logf("overflow drops: %d, reliable retries: %d",
		eng.Injected(faults.KindOverflow), tr.Snapshot().Counter("reliable.retries"))
}
