package rmem

import (
	"errors"
	"testing"
	"time"

	"netmem/internal/des"
)

func TestWatchdogStaysQuietWhilePeerBeats(t *testing.T) {
	env, _, m0, m1 := testPair(t)
	var seg *Segment
	var dog *Watchdog
	env.Spawn("setup", func(p *des.Proc) {
		seg = m1.Export(p, 64)
		seg.SetDefaultRights(RightRead)
		StartHeartbeat(m1, seg, 0, 5*time.Millisecond)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		dog = NewWatchdog(m0, imp, 0, 20*time.Millisecond, 10*time.Millisecond,
			func(p *des.Proc, err error) {
				t.Errorf("watchdog fired on a healthy peer: %v", err)
			})
	})
	if err := env.RunUntil(des.Time(500 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if dog.Fired {
		t.Fatal("fired")
	}
	if dog.Checks < 10 {
		t.Fatalf("only %d probe reads in 500ms", dog.Checks)
	}
}

func TestWatchdogDetectsCrash(t *testing.T) {
	env, cl, m0, m1 := testPair(t)
	var firedAt des.Time
	var gotErr error
	var crashAt des.Time
	env.Spawn("setup", func(p *des.Proc) {
		seg := m1.Export(p, 64)
		seg.SetDefaultRights(RightRead)
		StartHeartbeat(m1, seg, 0, 5*time.Millisecond)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		NewWatchdog(m0, imp, 0, 20*time.Millisecond, 10*time.Millisecond,
			func(fp *des.Proc, err error) {
				firedAt, gotErr = fp.Now(), err
			})
		p.Sleep(100 * time.Millisecond)
		crashAt = p.Now()
		cl.Nodes[1].Fail()
	})
	if err := env.RunUntil(des.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if gotErr == nil {
		t.Fatal("watchdog never fired after the crash")
	}
	if !errors.Is(gotErr, ErrPeerFailed) {
		t.Fatalf("err = %v, want ErrPeerFailed", gotErr)
	}
	if firedAt < crashAt {
		t.Fatal("fired before the crash")
	}
	// Detection within a couple of probe periods of the crash.
	if lag := firedAt.Sub(crashAt); lag > 100*time.Millisecond {
		t.Fatalf("detection lag %v too long", lag)
	}
}

func TestWatchdogDetectsStuckCounter(t *testing.T) {
	// The peer machine is up (reads succeed) but the monitored value stops
	// advancing — the monotonic-value form of the §3.7 recipe.
	env, _, m0, m1 := testPair(t)
	var fired bool
	env.Spawn("setup", func(p *des.Proc) {
		seg := m1.Export(p, 64)
		seg.SetDefaultRights(RightRead)
		// No heartbeat daemon: the counter never moves.
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		NewWatchdog(m0, imp, 0, 10*time.Millisecond, 10*time.Millisecond,
			func(fp *des.Proc, err error) { fired = true })
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("watchdog never fired on a stuck counter")
	}
}

func TestCrashedNodeMakesOpsTimeOut(t *testing.T) {
	env, cl, m0, m1 := testPair(t)
	env.Spawn("test", func(p *des.Proc) {
		seg := m1.Export(p, 64)
		seg.SetDefaultRights(RightsAll)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		dst := m0.Export(p, 64)
		if err := imp.Read(p, 0, 4, dst, 0, time.Second); err != nil {
			t.Fatal(err)
		}
		cl.Nodes[1].Fail()
		if err := imp.Read(p, 0, 4, dst, 0, 5*time.Millisecond); err != ErrTimeout {
			t.Fatalf("read from crashed node: %v, want ErrTimeout", err)
		}
		// Recovery restores service.
		cl.Nodes[1].Recover()
		if err := imp.Read(p, 0, 4, dst, 0, time.Second); err != nil {
			t.Fatalf("read after recovery: %v", err)
		}
	})
	if err := env.RunUntil(des.Time(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
}
