package des

// FIFO is a bounded first-in-first-out queue of items with blocking Put and
// Get, modelling hardware queues (ATM controller TX/RX FIFOs) and kernel
// message queues. Capacity <= 0 means unbounded.
//
// Put blocks while the queue is full; Get blocks while it is empty. Both
// are served in FIFO order per side. TryPut/TryGet never block, for
// hardware that drops on overflow instead of exerting backpressure.
type FIFO[T any] struct {
	env      *Env
	name     string
	capacity int
	items    []T
	getters  *WaitQueue
	putters  *WaitQueue

	// Drops counts TryPut failures, for fault-injection experiments.
	Drops int
}

// NewFIFO creates a queue with the given capacity (<= 0 for unbounded).
func NewFIFO[T any](env *Env, name string, capacity int) *FIFO[T] {
	return &FIFO[T]{
		env:      env,
		name:     name,
		capacity: capacity,
		getters:  NewWaitQueue(env),
		putters:  NewWaitQueue(env),
	}
}

// Len reports the number of queued items.
func (f *FIFO[T]) Len() int { return len(f.items) }

// Cap reports the capacity (<= 0 for unbounded).
func (f *FIFO[T]) Cap() int { return f.capacity }

func (f *FIFO[T]) full() bool { return f.capacity > 0 && len(f.items) >= f.capacity }

// Full reports whether a Put would block (or a TryPut would drop).
func (f *FIFO[T]) Full() bool { return f.full() }

// OnItem parks fn as a one-shot getter: it is scheduled (at the instant of
// the wake) when an item becomes available for it, with the same queue
// position and event ordering a process blocked in Get would have. The
// callback must TryGet itself and re-register if it wants more.
func (f *FIFO[T]) OnItem(fn func()) { f.getters.WaitFunc(fn) }

// OnSpace parks fn as a one-shot putter: it is scheduled when queue space
// frees up for it, ordered exactly like a process blocked in Put. The
// callback must re-check Full (another putter may race it at the same
// instant) and re-register if still full.
func (f *FIFO[T]) OnSpace(fn func()) { f.putters.WaitFunc(fn) }

// Put appends item, blocking while the queue is full.
func (f *FIFO[T]) Put(p *Proc, item T) {
	for f.full() {
		f.putters.Wait(p)
	}
	f.items = append(f.items, item)
	f.getters.WakeOne()
}

// TryPut appends item if there is room and reports whether it did; on a
// full queue the item is counted as dropped.
func (f *FIFO[T]) TryPut(item T) bool {
	if f.full() {
		f.Drops++
		return false
	}
	f.items = append(f.items, item)
	f.getters.WakeOne()
	return true
}

// Get removes and returns the oldest item, blocking while the queue is
// empty.
func (f *FIFO[T]) Get(p *Proc) T {
	for len(f.items) == 0 {
		f.getters.Wait(p)
	}
	item := f.items[0]
	var zero T
	f.items[0] = zero
	f.items = f.items[1:]
	f.putters.WakeOne()
	return item
}

// TryGet removes and returns the oldest item without blocking.
func (f *FIFO[T]) TryGet() (T, bool) {
	var zero T
	if len(f.items) == 0 {
		return zero, false
	}
	item := f.items[0]
	f.items[0] = zero
	f.items = f.items[1:]
	f.putters.WakeOne()
	return item, true
}
