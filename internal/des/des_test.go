package des

import (
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

const us = time.Microsecond

func TestScheduleOrdering(t *testing.T) {
	e := NewEnv()
	var order []int
	e.Schedule(Time(30*us), func() { order = append(order, 3) })
	e.Schedule(Time(10*us), func() { order = append(order, 1) })
	e.Schedule(Time(20*us), func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != Time(30*us) {
		t.Fatalf("clock = %v, want 30µs", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Time(5*us), func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of schedule order: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEnv()
	fired := false
	cancel := e.Schedule(Time(us), func() { fired = true })
	cancel()
	cancel() // double-cancel is a no-op
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestScheduleInPastClampsToNow(t *testing.T) {
	e := NewEnv()
	var at Time
	e.Schedule(Time(100*us), func() {
		e.Schedule(Time(10*us), func() { at = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(100*us) {
		t.Fatalf("past event ran at %v, want clamped to 100µs", at)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEnv()
	var stamps []Time
	e.Spawn("sleeper", func(p *Proc) {
		stamps = append(stamps, p.Now())
		p.Sleep(40 * us)
		stamps = append(stamps, p.Now())
		p.Sleep(0)
		stamps = append(stamps, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, Time(40 * us), Time(40 * us)}
	for i := range want {
		if stamps[i] != want[i] {
			t.Fatalf("stamps = %v, want %v", stamps, want)
		}
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	e := NewEnv()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10 * us)
		trace = append(trace, "a10")
		p.Sleep(20 * us)
		trace = append(trace, "a30")
	})
	e.Spawn("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(15 * us)
		trace = append(trace, "b15")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEnv()
	cpu := NewResource(e, "cpu", 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		e.Spawn("worker", func(p *Proc) {
			cpu.Use(p, 10*us)
			ends = append(ends, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(10 * us), Time(20 * us), Time(30 * us)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if got := cpu.BusyTime(); got != 30*us {
		t.Fatalf("busy time = %v, want 30µs", got)
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "duo", 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Proc) {
			r.Use(p, 10*us)
			ends = append(ends, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Two run 0–10, two run 10–20.
	want := []Time{Time(10 * us), Time(10 * us), Time(20 * us), Time(20 * us)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if got := r.BusyTime(); got != 40*us {
		t.Fatalf("busy = %v, want 40µs", got)
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEnv()
	cpu := NewResource(e, "cpu", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			cpu.Acquire(p)
			order = append(order, i)
			p.Sleep(us)
			cpu.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("service order = %v, want FIFO", order)
		}
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEnv()
	cpu := NewResource(e, "cpu", 1)
	e.Spawn("w", func(p *Proc) {
		cpu.Use(p, 25*us)
		p.Sleep(75 * us)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if u := cpu.Utilization(0); u < 0.249 || u > 0.251 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}

func TestWaitQueue(t *testing.T) {
	e := NewEnv()
	q := NewWaitQueue(e)
	var woke []Time
	for i := 0; i < 2; i++ {
		e.Spawn("waiter", func(p *Proc) {
			q.Wait(p)
			woke = append(woke, p.Now())
		})
	}
	e.Schedule(Time(50*us), func() { q.WakeOne() })
	e.Schedule(Time(70*us), func() { q.WakeAll() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 2 || woke[0] != Time(50*us) || woke[1] != Time(70*us) {
		t.Fatalf("wake times = %v", woke)
	}
}

func TestWakeWithoutWaiterIsLost(t *testing.T) {
	e := NewEnv()
	q := NewWaitQueue(e)
	if q.WakeOne() {
		t.Fatal("WakeOne on empty queue reported a wake")
	}
	if n := q.WakeAll(); n != 0 {
		t.Fatalf("WakeAll on empty queue = %d", n)
	}
}

func TestFIFOBlockingGet(t *testing.T) {
	e := NewEnv()
	f := NewFIFO[int](e, "q", 0)
	var got int
	var at Time
	e.Spawn("consumer", func(p *Proc) {
		got = f.Get(p)
		at = p.Now()
	})
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(30 * us)
		f.Put(p, 42)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 || at != Time(30*us) {
		t.Fatalf("got %d at %v, want 42 at 30µs", got, at)
	}
}

func TestFIFOBackpressure(t *testing.T) {
	e := NewEnv()
	f := NewFIFO[int](e, "q", 2)
	var lastPut Time
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			f.Put(p, i)
		}
		lastPut = p.Now()
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(10 * us)
			if v := f.Get(p); v != i {
				t.Errorf("got %d, want %d", v, i)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Producer fills 2 slots at t=0, then blocks; slots free at 10 and 20.
	if lastPut != Time(20*us) {
		t.Fatalf("last put at %v, want 20µs", lastPut)
	}
}

func TestFIFOTryPutDrops(t *testing.T) {
	e := NewEnv()
	f := NewFIFO[int](e, "q", 1)
	if !f.TryPut(1) {
		t.Fatal("first TryPut failed")
	}
	if f.TryPut(2) {
		t.Fatal("TryPut into full queue succeeded")
	}
	if f.Drops != 1 {
		t.Fatalf("drops = %d, want 1", f.Drops)
	}
	v, ok := f.TryGet()
	if !ok || v != 1 {
		t.Fatalf("TryGet = %d,%v", v, ok)
	}
	if _, ok := f.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
}

func TestFIFOOrderProperty(t *testing.T) {
	// Property: for any batch of items, a FIFO delivers them in order
	// through a producer/consumer pair regardless of queue capacity.
	prop := func(items []byte, capRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		e := NewEnv()
		f := NewFIFO[byte](e, "q", capacity)
		var out []byte
		e.Spawn("producer", func(p *Proc) {
			for _, b := range items {
				f.Put(p, b)
				p.Sleep(Duration(b%3) * us)
			}
		})
		e.Spawn("consumer", func(p *Proc) {
			for range items {
				out = append(out, f.Get(p))
				p.Sleep(Duration(b2(out)) * us)
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		if len(out) != len(items) {
			return false
		}
		for i := range items {
			if out[i] != items[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func b2(out []byte) byte {
	if len(out) == 0 {
		return 0
	}
	return out[len(out)-1] % 2
}

func TestRunUntil(t *testing.T) {
	e := NewEnv()
	var count int
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(10 * us)
			count++
		}
	})
	if err := e.RunUntil(Time(35 * us)); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d after 35µs, want 3", count)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d after drain, want 10", count)
	}
}

func TestHalt(t *testing.T) {
	e := NewEnv()
	var count int
	e.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(10 * us)
			count++
			if count == 5 {
				p.Env().Halt()
			}
		}
	})
	// The ticker loops forever; Halt must stop the run. The goroutine
	// stays blocked, which is fine for a halted simulation.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEnv()
	q := NewWaitQueue(e)
	e.Spawn("stuck", func(p *Proc) { q.Wait(p) })
	if err := e.Run(); err == nil {
		t.Fatal("Run returned nil for a deadlocked simulation")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		e := NewEnv()
		cpu := NewResource(e, "cpu", 1)
		f := NewFIFO[int](e, "q", 3)
		var trace []string
		for i := 0; i < 3; i++ {
			i := i
			e.Spawn("p", func(p *Proc) {
				for j := 0; j < 3; j++ {
					cpu.Use(p, Duration(i+1)*us)
					f.Put(p, i*10+j)
				}
			})
		}
		e.Spawn("drain", func(p *Proc) {
			for k := 0; k < 9; k++ {
				v := f.Get(p)
				trace = append(trace, time.Duration(p.Now()).String()+":"+string(rune('0'+v%10)))
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic run lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEnv()
	var childAt Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(10 * us)
		p.Env().Spawn("child", func(c *Proc) {
			c.Sleep(5 * us)
			childAt = c.Now()
		})
		p.Sleep(20 * us)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != Time(15*us) {
		t.Fatalf("child finished at %v, want 15µs", childAt)
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "cpu", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on releasing an idle resource")
		}
	}()
	r.Release()
}

func TestUnboundedFIFONeverBlocksPut(t *testing.T) {
	e := NewEnv()
	f := NewFIFO[int](e, "q", 0)
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			f.Put(p, i)
		}
		if p.Now() != 0 {
			t.Error("unbounded Put advanced time")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 1000 {
		t.Fatalf("len = %d", f.Len())
	}
}

func TestWaitQueueLen(t *testing.T) {
	e := NewEnv()
	q := NewWaitQueue(e)
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) { q.Wait(p) })
	}
	e.Schedule(Time(us), func() {
		if q.Len() != 3 {
			t.Errorf("len = %d", q.Len())
		}
		q.WakeAll()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 0 {
		t.Fatalf("len after wake = %d", q.Len())
	}
}

func TestHaltThenResume(t *testing.T) {
	e := NewEnv()
	count := 0
	e.Spawn("t", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(10 * us)
			count++
			if count == 3 {
				e.Halt()
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d at halt", count)
	}
	// Run again: the simulation resumes where it stopped.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d after resume", count)
	}
}

func TestGoexitInProcDoesNotWedgeScheduler(t *testing.T) {
	// A process that dies via runtime.Goexit (as t.Fatal does) must not
	// deadlock the environment; other processes keep running.
	e := NewEnv()
	finished := false
	e.Spawn("dies", func(p *Proc) {
		p.Sleep(us)
		runtime.Goexit()
	})
	e.Spawn("lives", func(p *Proc) {
		p.Sleep(10 * us)
		finished = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !finished {
		t.Fatal("survivor did not finish")
	}
}
