// Package des implements a deterministic discrete-event simulation kernel.
//
// The kernel provides virtual time, an event queue, goroutine-backed
// simulated processes, and FIFO resources (used to model CPUs and other
// serially shared hardware). Exactly one goroutine — either the scheduler
// or a single simulated process — runs at any instant, so simulated code
// needs no locking and every run is reproducible: events that share a
// timestamp fire in the order they were scheduled.
//
// A simulated process is an ordinary function executing on its own
// goroutine. It advances virtual time only through the blocking primitives
// on *Proc (Sleep, Acquire, FIFO.Get, …); pure computation between those
// calls is instantaneous in virtual time. This lets functional behaviour
// (moving real bytes, probing real hash tables) be written as straight-line
// Go while the timing model stays explicit.
package des

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"netmem/internal/obs"
)

// Time is an absolute virtual timestamp measured from the start of the
// simulation. The zero Time is the simulation epoch.
type Time time.Duration

// Duration re-exports time.Duration for callers that want a single import.
type Duration = time.Duration

// String formats the timestamp as a duration since the epoch.
func (t Time) String() string { return time.Duration(t).String() }

// Add returns the timestamp d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// event is a scheduled callback. Cancelled events stay in the heap but are
// skipped when popped; this makes timer cancellation O(1).
type event struct {
	at        Time
	seq       uint64 // tie-breaker: schedule order
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Env is a simulation environment: the event queue, the clock, and the
// bookkeeping that hands control between the scheduler and at most one
// simulated process at a time. Create one with NewEnv; an Env must not be
// shared across real OS threads while Run is in progress.
type Env struct {
	now    Time
	queue  eventHeap
	seq    uint64
	yield  chan struct{} // a proc (or its completion) hands control back here
	inProc bool          // true while a simulated process is executing
	nprocs int           // live (spawned, not finished) processes
	halted bool

	obs *obs.Tracer // nil = observability disabled

	seed int64
	rng  *rand.Rand // lazily created; all simulation randomness draws here
}

// DefaultSeed seeds an environment's random stream when Seed is never
// called, so unseeded runs are still reproducible.
const DefaultSeed int64 = 1

// Seed fixes the environment's random stream. Call before any simulated
// activity draws randomness; reseeding mid-run restarts the stream. Because
// exactly one goroutine runs at a time and events fire in deterministic
// order, every consumer of Rand sees the same draw sequence on identical
// runs — this is what makes fault campaigns replayable.
func (e *Env) Seed(seed int64) {
	e.seed = seed
	e.rng = rand.New(rand.NewSource(seed))
}

// SeedValue returns the seed the environment's random stream started from.
func (e *Env) SeedValue() int64 {
	if e.rng == nil {
		return DefaultSeed
	}
	return e.seed
}

// Rand returns the environment-owned random stream, creating it with
// DefaultSeed on first use. Simulation code must draw randomness only from
// here (or from generators derived from SeedValue): a caller-supplied
// rand.Rand shared with non-simulated code would break determinism.
func (e *Env) Rand() *rand.Rand {
	if e.rng == nil {
		e.Seed(DefaultSeed)
	}
	return e.rng
}

// SetTracer attaches an observability tracer; nil detaches it. The DES
// kernel and every layer above emit events and metrics through it.
func (e *Env) SetTracer(t *obs.Tracer) { e.obs = t }

// Tracer returns the attached tracer (nil when observability is off). All
// tracer methods are nil-safe, but hot paths should test for nil before
// building event arguments.
func (e *Env) Tracer() *obs.Tracer { return e.obs }

// NewEnv returns an empty simulation environment at time zero.
func NewEnv() *Env {
	return &Env{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Schedule arranges for fn to run in scheduler context at time at (clamped
// to now if in the past). It returns a cancel function; cancelling after
// the event has fired is a no-op. fn must not block — it runs on the
// scheduler goroutine. To start blocking work, Spawn a process instead.
func (e *Env) Schedule(at Time, fn func()) (cancel func()) {
	if at < e.now {
		at = e.now
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return func() { ev.cancelled = true }
}

// After schedules fn to run d from now. See Schedule.
func (e *Env) After(d Duration, fn func()) (cancel func()) {
	return e.Schedule(e.now.Add(d), fn)
}

// Proc is a simulated process. All blocking primitives must be called from
// the process's own goroutine (the function passed to Spawn); calling them
// from anywhere else corrupts the simulation and panics where detectable.
type Proc struct {
	env      *Env
	name     string
	resume   chan struct{}
	woken    bool // set by the waker for wait-queue hand-offs
	finished bool
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Spawn creates a process that runs fn, beginning at the current virtual
// time (after already-scheduled events at this time). It may be called from
// scheduler context or from another process.
func (e *Env) Spawn(name string, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, false)
}

// SpawnDaemon is Spawn for perpetual service loops (link pumps, kernel
// drain loops). Daemons blocked with no pending events are normal — they
// are waiting for future work — so they are excluded from Run's deadlock
// check.
func (e *Env) SpawnDaemon(name string, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, true)
}

func (e *Env) spawn(name string, fn func(*Proc), daemon bool) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	if !daemon {
		e.nprocs++
	}
	if e.obs != nil {
		e.obs.Count("des.proc.spawned", 1)
		e.obs.Instant("sched", "des", "spawn "+name, time.Duration(e.now))
	}
	go func() {
		// The deferred hand-back runs even if fn exits via runtime.Goexit
		// (e.g. t.Fatal inside simulated test code), so one dying process
		// cannot wedge the scheduler.
		defer func() {
			p.finished = true
			if !daemon {
				e.nprocs--
			}
			if e.obs != nil {
				e.obs.Instant("sched", "des", "exit "+name, time.Duration(e.now))
			}
			e.yield <- struct{}{} // final hand-back; goroutine exits
		}()
		<-p.resume // first activation
		fn(p)
	}()
	e.Schedule(e.now, func() { e.activate(p) })
	return p
}

// activate transfers control to p and waits until p blocks or finishes.
// Runs in scheduler context.
func (e *Env) activate(p *Proc) {
	if e.inProc {
		panic("des: activate from process context")
	}
	if p.finished {
		// Stray wakeup for a process that exited abnormally (Goexit while
		// it still had a pending event); nothing to run.
		return
	}
	e.inProc = true
	p.resume <- struct{}{}
	<-e.yield
	e.inProc = false
}

// yieldAndWait is the process side of a block: hand control to the
// scheduler and sleep until someone activates us again.
func (p *Proc) yieldAndWait() {
	p.env.yield <- struct{}{}
	<-p.resume
}

// Sleep advances the process's virtual time by d (d <= 0 yields to other
// work scheduled at the current instant).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.env.Schedule(p.env.now.Add(d), func() { p.env.activate(p) })
	p.yieldAndWait()
}

// Run executes events until the queue is empty or Halt is called. Processes
// blocked on never-signalled conditions are reported as a deadlock error if
// any remain when the queue drains.
func (e *Env) Run() error {
	return e.run(func() bool { return false })
}

// RunUntil executes events with timestamps <= deadline, leaving the rest of
// the simulation intact so it can be resumed with another Run call. The
// clock is left at min(deadline, time of last executed event) — it does not
// jump to the deadline if the queue drains first.
func (e *Env) RunUntil(deadline Time) error {
	return e.run(func() bool {
		return len(e.queue) > 0 && e.queue[0].at > deadline
	})
}

// Halt stops the simulation after the current event completes. Safe to call
// from simulated code.
func (e *Env) Halt() { e.halted = true }

func (e *Env) run(stop func() bool) error {
	if e.inProc {
		panic("des: Run from process context")
	}
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		if stop() {
			return nil
		}
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		if ev.at < e.now {
			panic("des: time went backwards")
		}
		e.now = ev.at
		ev.fn()
	}
	if e.halted {
		return nil
	}
	if e.nprocs > 0 {
		return fmt.Errorf("des: deadlock: %d process(es) blocked with no pending events", e.nprocs)
	}
	return nil
}
