// Package des implements a deterministic discrete-event simulation kernel.
//
// The kernel provides virtual time, an event queue, goroutine-backed
// simulated processes, and FIFO resources (used to model CPUs and other
// serially shared hardware). Exactly one goroutine — the Run caller or a
// single simulated process — runs at any instant, so simulated code
// needs no locking and every run is reproducible: events that share a
// timestamp fire in the order they were scheduled.
//
// A simulated process is an ordinary function executing on its own
// goroutine. It advances virtual time only through the blocking primitives
// on *Proc (Sleep, Acquire, FIFO.Get, …); pure computation between those
// calls is instantaneous in virtual time. This lets functional behaviour
// (moving real bytes, probing real hash tables) be written as straight-line
// Go while the timing model stays explicit.
//
// # Scheduling fast path
//
// There is no dedicated scheduler goroutine. The event loop runs on
// whichever goroutine last blocked: a process that calls Sleep pops and
// executes events itself until one of them resumes it (zero context
// switches for a self-wake) or resumes another process (one channel
// hand-off, not two). Event records are pooled and carry either a bare
// callback or a process pointer, so the hot Sleep/WakeOne paths allocate
// nothing. None of this changes virtual-time results: events still fire
// in (time, schedule-order) order, only the OS goroutine executing the
// loop differs.
package des

import (
	"fmt"
	"math/rand"
	"time"

	"netmem/internal/obs"
)

// Time is an absolute virtual timestamp measured from the start of the
// simulation. The zero Time is the simulation epoch.
type Time time.Duration

// Duration re-exports time.Duration for callers that want a single import.
type Duration = time.Duration

// String formats the timestamp as a duration since the epoch.
func (t Time) String() string { return time.Duration(t).String() }

// Add returns the timestamp d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// event is a scheduled occurrence: either a callback (fn) run in scheduler
// context or the resumption of a blocked process (proc). Records are pooled
// on the Env; gen disarms stale cancel handles after a record is recycled.
// Cancelled events stay in the heap and are skipped when popped; this makes
// timer cancellation O(1).
type event struct {
	at        Time
	seq       uint64 // tie-breaker: schedule order
	gen       uint64 // bumped on recycle; cancel handles check it
	fn        func()
	proc      *Proc
	cancelled bool
}

// before reports whether ev fires ahead of o: earlier time first, schedule
// order breaking ties.
func (ev *event) before(o *event) bool {
	if ev.at != o.at {
		return ev.at < o.at
	}
	return ev.seq < o.seq
}

// eventQueue is a 4-ary min-heap of pooled event records. Events are never
// removed from the middle (cancellation is lazy), so no per-element index
// bookkeeping is needed, and the shallow 4-ary layout roughly halves the
// levels touched per sift compared to a binary heap.
type eventQueue struct {
	a []*event
}

func (q *eventQueue) len() int { return len(q.a) }

func (q *eventQueue) push(ev *event) {
	a := append(q.a, ev)
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !ev.before(a[parent]) {
			break
		}
		a[i] = a[parent]
		i = parent
	}
	a[i] = ev
	q.a = a
}

func (q *eventQueue) pop() *event {
	a := q.a
	n := len(a) - 1
	top := a[0]
	last := a[n]
	a[n] = nil
	a = a[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			min := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if a[j].before(a[min]) {
					min = j
				}
			}
			if !a[min].before(last) {
				break
			}
			a[i] = a[min]
			i = min
		}
		a[i] = last
	}
	q.a = a
	return top
}

// Env is a simulation environment: the event queue, the clock, and the
// bookkeeping that hands control between the event loop and at most one
// simulated process at a time. Create one with NewEnv; an Env must not be
// shared across real OS threads while Run is in progress.
type Env struct {
	now      Time
	queue    eventQueue
	seq      uint64
	pool     []*event      // free list of recycled event records
	mainWake chan struct{} // wakes the Run goroutine at termination
	stop     func() bool   // RunUntil predicate for the current run
	runErr   error         // outcome of the current run
	inProc   bool          // true while a simulated process is executing
	nprocs   int           // live (spawned, not finished) processes
	halted   bool
	executed uint64 // events fired over the environment's lifetime

	obs *obs.Tracer // nil = observability disabled

	seed int64
	rng  *rand.Rand // lazily created; all simulation randomness draws here
}

// DefaultSeed seeds an environment's random stream when Seed is never
// called, so unseeded runs are still reproducible.
const DefaultSeed int64 = 1

// Seed fixes the environment's random stream. Call before any simulated
// activity draws randomness; reseeding mid-run restarts the stream. Because
// exactly one goroutine runs at a time and events fire in deterministic
// order, every consumer of Rand sees the same draw sequence on identical
// runs — this is what makes fault campaigns replayable.
func (e *Env) Seed(seed int64) {
	e.seed = seed
	e.rng = rand.New(rand.NewSource(seed))
}

// SeedValue returns the seed the environment's random stream started from.
func (e *Env) SeedValue() int64 {
	if e.rng == nil {
		return DefaultSeed
	}
	return e.seed
}

// Rand returns the environment-owned random stream, creating it with
// DefaultSeed on first use. Simulation code must draw randomness only from
// here (or from generators derived from SeedValue): a caller-supplied
// rand.Rand shared with non-simulated code would break determinism.
func (e *Env) Rand() *rand.Rand {
	if e.rng == nil {
		e.Seed(DefaultSeed)
	}
	return e.rng
}

// SetTracer attaches an observability tracer; nil detaches it. The DES
// kernel and every layer above emit events and metrics through it.
func (e *Env) SetTracer(t *obs.Tracer) { e.obs = t }

// Tracer returns the attached tracer (nil when observability is off). All
// tracer methods are nil-safe, but hot paths should test for nil before
// building event arguments.
func (e *Env) Tracer() *obs.Tracer { return e.obs }

// NewEnv returns an empty simulation environment at time zero.
func NewEnv() *Env {
	return &Env{mainWake: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Events returns the number of events fired (popped and executed, cancelled
// ones excluded) over the environment's lifetime. Benchmarks divide this by
// wall-clock time for an events/sec figure.
func (e *Env) Events() uint64 { return e.executed }

// alloc takes an event record from the pool, or makes one.
func (e *Env) alloc() *event {
	if n := len(e.pool); n > 0 {
		ev := e.pool[n-1]
		e.pool = e.pool[:n-1]
		return ev
	}
	return &event{}
}

// recycle returns a popped record to the pool, disarming outstanding
// cancel handles via the generation bump.
func (e *Env) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.proc = nil
	ev.cancelled = false
	e.pool = append(e.pool, ev)
}

// schedule enqueues a pooled record at the given time (clamped to now),
// stamped with the next sequence number. The caller fills in fn or proc.
func (e *Env) schedule(at Time) *event {
	if at < e.now {
		at = e.now
	}
	ev := e.alloc()
	ev.at = at
	ev.seq = e.seq
	e.seq++
	e.queue.push(ev)
	return ev
}

// scheduleProc enqueues the resumption of p at the given time. This is the
// allocation-free path behind Sleep and the wait-queue wakes.
func (e *Env) scheduleProc(at Time, p *Proc) {
	e.schedule(at).proc = p
}

// ScheduleFunc is Schedule without a cancel handle: callers that never
// cancel (the ATM cell pumps) avoid the closure the handle costs. fn should
// be a long-lived function value (a pre-bound method), not a fresh closure,
// or the allocation simply moves to the caller.
func (e *Env) ScheduleFunc(at Time, fn func()) {
	e.schedule(at).fn = fn
}

// Schedule arranges for fn to run in scheduler context at time at (clamped
// to now if in the past). It returns a cancel function; cancelling after
// the event has fired is a no-op. fn must not block — it runs on the
// event-loop goroutine. To start blocking work, Spawn a process instead.
func (e *Env) Schedule(at Time, fn func()) (cancel func()) {
	ev := e.schedule(at)
	ev.fn = fn
	gen := ev.gen
	return func() {
		if ev.gen == gen {
			ev.cancelled = true
		}
	}
}

// After schedules fn to run d from now. See Schedule.
func (e *Env) After(d Duration, fn func()) (cancel func()) {
	return e.Schedule(e.now.Add(d), fn)
}

// Proc is a simulated process. All blocking primitives must be called from
// the process's own goroutine (the function passed to Spawn); calling them
// from anywhere else corrupts the simulation and panics where detectable.
type Proc struct {
	env      *Env
	name     string
	resume   chan struct{}
	woken    bool // set by the waker for wait-queue hand-offs
	finished bool
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Spawn creates a process that runs fn, beginning at the current virtual
// time (after already-scheduled events at this time). It may be called from
// scheduler context or from another process.
func (e *Env) Spawn(name string, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, false)
}

// SpawnDaemon is Spawn for perpetual service loops (link pumps, kernel
// drain loops). Daemons blocked with no pending events are normal — they
// are waiting for future work — so they are excluded from Run's deadlock
// check.
func (e *Env) SpawnDaemon(name string, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, true)
}

func (e *Env) spawn(name string, fn func(*Proc), daemon bool) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	if !daemon {
		e.nprocs++
	}
	if e.obs != nil {
		e.obs.Count("des.proc.spawned", 1)
		e.obs.Instant("sched", "des", "spawn "+name, time.Duration(e.now))
	}
	go func() {
		// The deferred hand-off runs even if fn exits via runtime.Goexit
		// (e.g. t.Fatal inside simulated test code), so one dying process
		// cannot wedge the event loop: the dying goroutine drives the loop
		// just long enough to pass control onward, then exits.
		defer func() {
			p.finished = true
			if !daemon {
				e.nprocs--
			}
			if e.obs != nil {
				e.obs.Instant("sched", "des", "exit "+name, time.Duration(e.now))
			}
			e.loop(nil, true)
		}()
		<-p.resume // first activation
		fn(p)
	}()
	e.scheduleProc(e.now, p)
	return p
}

// block parks the calling process: its goroutine takes over the event loop
// until some event resumes this process (directly, with zero channel
// hand-offs, if the resuming event is the next one popped).
func (p *Proc) block() {
	p.env.loop(p, false)
}

// Sleep advances the process's virtual time by d (d <= 0 yields to other
// work scheduled at the current instant).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.env.scheduleProc(p.env.now.Add(d), p)
	p.block()
}

// Run executes events until the queue is empty or Halt is called. Processes
// blocked on never-signalled conditions are reported as a deadlock error if
// any remain when the queue drains.
func (e *Env) Run() error {
	return e.run(neverStop)
}

var neverStop = func() bool { return false }

// RunUntil executes events with timestamps <= deadline, leaving the rest of
// the simulation intact so it can be resumed with another Run call. The
// clock is left at min(deadline, time of last executed event) — it does not
// jump to the deadline if the queue drains first.
func (e *Env) RunUntil(deadline Time) error {
	return e.run(func() bool {
		return e.queue.len() > 0 && e.queue.a[0].at > deadline
	})
}

// Halt stops the simulation after the current event completes. Safe to call
// from simulated code.
func (e *Env) Halt() { e.halted = true }

func (e *Env) run(stop func() bool) error {
	if e.inProc {
		panic("des: Run from process context")
	}
	e.halted = false
	e.stop = stop
	e.runErr = nil
	e.loop(nil, false)
	e.stop = nil
	return e.runErr
}

// loop is the event loop. It migrates between goroutines instead of living
// on a dedicated one:
//
//   - self != nil: a blocked process is driving the loop. The loop returns
//     when an event resumes self — either popped directly (no hand-off) or,
//     after control passed elsewhere, via self's resume channel.
//   - self == nil, dying == false: the Run goroutine is driving. On
//     hand-off it parks until termination is signalled on mainWake.
//   - self == nil, dying == true: a finished process's goroutine is
//     unwinding; it hands control onward and exits without parking.
//
// Termination (halt, stop predicate, or a drained queue) records the run's
// outcome in runErr; whichever goroutine detects it wakes the Run
// goroutine. Exactly one goroutine executes loop at any instant, so Env
// state needs no locking; every transfer is an unbuffered channel
// rendezvous, which orders memory on both sides.
func (e *Env) loop(self *Proc, dying bool) {
	e.inProc = false // whoever enters the loop left process context
	for {
		if e.halted {
			e.terminate(self, dying, nil)
			return
		}
		if e.queue.len() == 0 {
			var err error
			if e.nprocs > 0 {
				err = fmt.Errorf("des: deadlock: %d process(es) blocked with no pending events", e.nprocs)
			}
			e.terminate(self, dying, err)
			return
		}
		if e.stop() {
			e.terminate(self, dying, nil)
			return
		}
		ev := e.queue.pop()
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		if ev.at < e.now {
			panic("des: time went backwards")
		}
		e.now = ev.at
		e.executed++
		if p := ev.proc; p != nil {
			e.recycle(ev)
			if p.finished {
				// Stray wakeup for a process that exited abnormally
				// (Goexit while it still had a pending event).
				continue
			}
			e.inProc = true
			if p == self {
				return // self-wake: resume our own code, no hand-off
			}
			p.resume <- struct{}{}
			switch {
			case dying:
				return // goroutine exits
			case self == nil:
				<-e.mainWake // park the Run goroutine until termination
				return
			default:
				<-self.resume // park until an event resumes self
				return
			}
		}
		fn := ev.fn
		e.recycle(ev)
		fn()
	}
}

// terminate records the run's outcome and returns control to the Run
// goroutine. A parked process stays parked until a later Run resumes it.
func (e *Env) terminate(self *Proc, dying bool, err error) {
	e.runErr = err
	if self == nil && !dying {
		return // we are the Run goroutine
	}
	e.mainWake <- struct{}{}
	if self != nil {
		<-self.resume // a later Run popped our resumption event
	}
}
