package des

import "time"

// Resource models a serially shared piece of hardware — a CPU, a bus, a
// controller — with a fixed number of service slots and a FIFO queue of
// waiting processes. It also keeps a busy-time integral so experiments can
// report utilisation (Figure 3 reports server CPU occupancy this way).
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	// Waiter queue: a slice consumed from whead, reset when it empties, so
	// the backing array is reused instead of reallocated on every hand-off.
	waiters []*Proc
	whead   int

	busy       Duration // accumulated slot-busy time (capacity slots ⇒ up to capacity× wall time)
	lastChange Time
}

// NewResource creates a resource with the given number of service slots.
func NewResource(env *Env, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("des: resource capacity must be >= 1")
	}
	return &Resource{env: env, name: name, capacity: capacity, lastChange: env.now}
}

// Name returns the diagnostic name.
func (r *Resource) Name() string { return r.name }

func (r *Resource) account() {
	now := r.env.now
	r.busy += Duration(now.Sub(r.lastChange).Nanoseconds() * int64(r.inUse))
	r.lastChange = now
}

// sample emits the resource's occupancy and queue depth as trace counter
// tracks (no-op unless event tracing is on).
func (r *Resource) sample() {
	if tr := r.env.obs; tr.EventsEnabled() {
		at := time.Duration(r.env.now)
		tr.Counter(r.name+".busy", at, float64(r.inUse))
		tr.Counter(r.name+".queue", at, float64(len(r.waiters)-r.whead))
	}
}

// Acquire blocks until a slot is free and claims it. Waiters are served in
// FIFO order.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.waiters) == r.whead {
		r.account()
		r.inUse++
		r.sample()
		return
	}
	r.waiters = append(r.waiters, p)
	if tr := r.env.obs; tr != nil {
		tr.Count("des.resource.contended", 1)
		tr.Instant(r.name, "des", "block "+p.name, time.Duration(r.env.now))
		r.sample()
	}
	p.woken = false
	for !p.woken {
		p.block()
	}
	if tr := r.env.obs; tr != nil {
		tr.Instant(r.name, "des", "grant "+p.name, time.Duration(r.env.now))
	}
}

// Release frees a slot, handing it to the longest-waiting process if any.
func (r *Resource) Release() {
	r.account()
	r.inUse--
	if r.inUse < 0 {
		panic("des: release of idle resource " + r.name)
	}
	if len(r.waiters) > r.whead {
		next := r.waiters[r.whead]
		r.waiters[r.whead] = nil
		r.whead++
		if r.whead == len(r.waiters) {
			r.waiters = r.waiters[:0]
			r.whead = 0
		}
		r.inUse++ // slot passes directly to next
		next.woken = true
		r.env.scheduleProc(r.env.now, next)
	}
	r.sample()
}

// Use acquires a slot, holds it for d of virtual time, and releases it.
// This is the common "charge this work to this CPU" idiom.
func (r *Resource) Use(p *Proc, d Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// BusyTime returns the accumulated slot-busy time up to the current instant.
func (r *Resource) BusyTime() Duration {
	r.account()
	return r.busy
}

// ResetBusyTime zeroes the busy-time integral (used between experiment
// phases, e.g. after warmup).
func (r *Resource) ResetBusyTime() {
	r.account()
	r.busy = 0
}

// Utilization returns busy time divided by elapsed time since the given
// start, as a fraction of total capacity.
func (r *Resource) Utilization(since Time) float64 {
	elapsed := r.env.now.Sub(since)
	if elapsed <= 0 {
		return 0
	}
	return float64(r.BusyTime()) / float64(elapsed) / float64(r.capacity)
}

// WaitQueue is a condition-variable-like rendezvous: processes Wait on it,
// and other code (process or scheduler context) Wakes them in FIFO order.
// A wake with no waiter is NOT remembered (unlike a semaphore); use FIFO
// for buffered hand-off.
//
// Besides blocked processes, a waiter may be a one-shot callback (WaitFunc)
// run in scheduler context. A woken callback is scheduled at the current
// instant exactly like a woken process's resumption, so replacing a daemon
// process with a callback consumer does not perturb event ordering.
type WaitQueue struct {
	env *Env
	// Consumed from head, reset when drained; see Resource.waiters.
	waiters []waiter
	head    int
}

// waiter is one parked consumer: a blocked process or a one-shot callback.
type waiter struct {
	p  *Proc
	fn func()
}

// NewWaitQueue creates an empty wait queue.
func NewWaitQueue(env *Env) *WaitQueue { return &WaitQueue{env: env} }

// Len reports the number of parked waiters.
func (q *WaitQueue) Len() int { return len(q.waiters) - q.head }

// Wait blocks the calling process until a Wake is directed at it.
func (q *WaitQueue) Wait(p *Proc) {
	q.waiters = append(q.waiters, waiter{p: p})
	if tr := q.env.obs; tr.EventsEnabled() {
		tr.Instant("proc:"+p.name, "des", "block", time.Duration(q.env.now))
	}
	p.woken = false
	for !p.woken {
		p.block()
	}
	if tr := q.env.obs; tr.EventsEnabled() {
		tr.Instant("proc:"+p.name, "des", "wake", time.Duration(q.env.now))
	}
}

// WaitFunc parks fn as a one-shot waiter: the next Wake that reaches it
// schedules fn at the current instant and forgets it. Re-register to keep
// listening. fn should be a long-lived function value; see ScheduleFunc.
func (q *WaitQueue) WaitFunc(fn func()) {
	q.waiters = append(q.waiters, waiter{fn: fn})
}

// WakeOne unblocks the longest-waiting consumer, if any, reporting whether
// one was woken.
func (q *WaitQueue) WakeOne() bool {
	if len(q.waiters) == q.head {
		return false
	}
	next := q.waiters[q.head]
	q.waiters[q.head] = waiter{}
	q.head++
	if q.head == len(q.waiters) {
		q.waiters = q.waiters[:0]
		q.head = 0
	}
	if next.p != nil {
		next.p.woken = true
		q.env.scheduleProc(q.env.now, next.p)
	} else {
		q.env.ScheduleFunc(q.env.now, next.fn)
	}
	return true
}

// WakeAll unblocks every waiter in FIFO order and returns how many.
func (q *WaitQueue) WakeAll() int {
	n := len(q.waiters)
	for q.WakeOne() {
	}
	return n
}
