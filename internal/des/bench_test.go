package des

import (
	"testing"
	"time"
)

// Fast-path microbenchmarks. Run with -benchmem: the headline numbers are
// allocs/op and B/op, which must stay at zero for the pooled scheduler
// paths, and events/sec for raw event-loop throughput.

// BenchmarkSleepSelfWake measures the hottest path in the simulator: a
// process sleeping and resuming itself. With direct hand-off this is one
// heap push + pop and zero channel operations or allocations.
func BenchmarkSleepSelfWake(b *testing.B) {
	env := NewEnv()
	env.Spawn("sleeper", func(p *Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(env.Events())/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkScheduleFunc measures the callback path with a pre-bound
// function value (the cell-pump idiom): pooled event records, no closures.
func BenchmarkScheduleFunc(b *testing.B) {
	env := NewEnv()
	n := 0
	var fn func()
	fn = func() {
		if n < b.N {
			n++
			env.ScheduleFunc(env.Now().Add(time.Microsecond), fn)
		}
	}
	b.ResetTimer()
	env.ScheduleFunc(0, fn)
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(env.Events())/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkScheduleCancel measures the timer-arm/disarm cycle (the
// reliability layer's retransmission timers): Schedule returns a cancel
// handle whose closure is the only allocation on this path.
func BenchmarkScheduleCancel(b *testing.B) {
	env := NewEnv()
	nop := func() {}
	env.Spawn("arm", func(p *Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cancel := env.Schedule(env.Now().Add(time.Second), nop)
			cancel()
			p.Sleep(time.Microsecond) // drains the cancelled record
		}
	})
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWakeOneHandoff measures the two-process rendezvous: a waiter
// parked on a WaitQueue, woken by a peer, over and over. Each round is one
// wake event plus one sleep event and exactly one goroutine hand-off.
func BenchmarkWakeOneHandoff(b *testing.B) {
	env := NewEnv()
	wq := NewWaitQueue(env)
	done := false
	env.SpawnDaemon("waiter", func(p *Proc) {
		for !done {
			wq.Wait(p)
		}
	})
	env.Spawn("waker", func(p *Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wq.WakeOne()
			p.Sleep(time.Microsecond)
		}
		done = true
		wq.WakeOne()
	})
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(env.Events())/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkHeapChurn measures the 4-ary event heap directly: a steady-state
// queue of 4096 pending events with one pop + one push per iteration, the
// access pattern of a busy simulation.
func BenchmarkHeapChurn(b *testing.B) {
	env := NewEnv()
	const depth = 4096
	nop := func() {}
	// Seed the queue with events spread over future time.
	for i := 0; i < depth; i++ {
		env.ScheduleFunc(Time(i*37%1024)*Time(time.Microsecond), nop)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := env.queue.pop()
		at := ev.at + Time(997*time.Nanosecond)
		env.recycle(ev)
		if at < env.now {
			at = env.now
		}
		env.ScheduleFunc(at, nop)
	}
}
