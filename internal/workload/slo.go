package workload

import (
	"fmt"
	"time"

	"netmem/internal/faults"
)

// The SLO sweep: the open-loop engine swept over arrival shape × key skew
// at a fixed client population, emitting one machine-readable document
// (BENCH_SLO.json) that later scaling PRs are judged against.

// SLOSweepConfig parameterizes RunSLOSweep.
type SLOSweepConfig struct {
	// Clients is the simulated population per point (default 100k).
	Clients int
	// RatePerClient and Window follow OpenLoopConfig defaults when zero.
	RatePerClient float64
	Window        time.Duration
	// Shapes and Thetas span the sweep grid; empty gets all three shapes
	// × {0, 0.9, 1.2}.
	Shapes []Shape
	Thetas []float64
	// Shards/Replicas shape the serving tier (defaults 4 and 3).
	Shards   int
	Replicas int
	// StragglerPerMille injects slow clients (default 5‰).
	StragglerPerMille int
	// Seed pins the whole sweep.
	Seed int64
	// Campaign, when set, runs every point under the fault schedule.
	Campaign *faults.Campaign
}

// BenchSLOSchema identifies the BENCH_SLO.json layout.
const BenchSLOSchema = "netmem/bench_slo/v1"

// BenchSLO is the sweep document.
type BenchSLO struct {
	Schema   string            `json:"schema"`
	Seed     int64             `json:"seed"`
	Clients  int               `json:"clients"`
	Shards   int               `json:"shards"`
	Replicas int               `json:"replicas"`
	WindowMs float64           `json:"window_ms"`
	Points   []*OpenLoopResult `json:"points"`
}

func (c *SLOSweepConfig) fill() {
	if c.Clients <= 0 {
		c.Clients = 100_000
	}
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if len(c.Shapes) == 0 {
		c.Shapes = []Shape{ShapeSteady, ShapeDiurnal, ShapeFlash}
	}
	if len(c.Thetas) == 0 {
		c.Thetas = []float64{0, 0.9, 1.2}
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.Replicas < 0 {
		c.Replicas = 0
	}
	if c.StragglerPerMille == 0 {
		c.StragglerPerMille = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// PointConfig returns the OpenLoopConfig for one (shape, theta) grid cell.
func (c SLOSweepConfig) PointConfig(shape Shape, theta float64) OpenLoopConfig {
	c.fill()
	cfg := OpenLoopConfig{
		Clients:           c.Clients,
		RatePerClient:     c.RatePerClient,
		Window:            c.Window,
		Shape:             shape,
		ZipfTheta:         theta,
		Shards:            c.Shards,
		Replicas:          c.Replicas,
		StragglerPerMille: c.StragglerPerMille,
		Seed:              c.Seed,
		Campaign:          c.Campaign,
	}
	cfg.Fill()
	return cfg
}

// RunSLOSweep measures every (shape, theta) grid cell.
func RunSLOSweep(cfg SLOSweepConfig) (*BenchSLO, error) {
	cfg.fill()
	doc := &BenchSLO{
		Schema:   BenchSLOSchema,
		Seed:     cfg.Seed,
		Clients:  cfg.Clients,
		Shards:   cfg.Shards,
		Replicas: cfg.Replicas,
		WindowMs: float64(cfg.Window) / 1e6,
	}
	for _, shape := range cfg.Shapes {
		for _, theta := range cfg.Thetas {
			res, err := RunOpenLoop(cfg.PointConfig(shape, theta))
			if err != nil {
				return nil, fmt.Errorf("workload: slo point shape=%v theta=%.2f: %w", shape, theta, err)
			}
			doc.Points = append(doc.Points, res)
		}
	}
	return doc, nil
}

// SLOGate is one PASS/FAIL verdict over a sweep point.
type SLOGate struct {
	Point  string
	Pass   bool
	Detail string
}

// attainFloor is the minimum total SLO attainment a healthy system clears
// per shape: steady and diurnal stay inside capacity end to end, while a
// flash crowd is *designed* to overload the lanes — its floor only proves
// the system kept serving rather than collapsing.
func attainFloor(shape string) float64 {
	if shape == "flash" {
		return 0.20
	}
	return 0.90
}

// GateSLO renders verdicts for a sweep document: every point must drain
// (no failed ops without a campaign), clear its shape's attainment floor,
// and keep inter-tenant fairness above 0.80.
func GateSLO(doc *BenchSLO) []SLOGate {
	var gates []SLOGate
	for _, pt := range doc.Points {
		name := fmt.Sprintf("%s/theta=%.1f", pt.Shape, pt.ZipfTheta)
		floor := attainFloor(pt.Shape)
		switch {
		case pt.Campaign == "" && pt.Report.Total.Failed > 0:
			gates = append(gates, SLOGate{name, false,
				fmt.Sprintf("%d ops failed on a fault-free run", pt.Report.Total.Failed)})
		case pt.Report.Total.Attainment < floor:
			gates = append(gates, SLOGate{name, false,
				fmt.Sprintf("attainment %.3f below %.2f floor", pt.Report.Total.Attainment, floor)})
		case pt.Report.Fairness < 0.80:
			gates = append(gates, SLOGate{name, false,
				fmt.Sprintf("fairness %.3f below 0.80", pt.Report.Fairness)})
		default:
			gates = append(gates, SLOGate{name, true,
				fmt.Sprintf("attainment %.3f fairness %.3f", pt.Report.Total.Attainment, pt.Report.Fairness)})
		}
	}
	return gates
}
