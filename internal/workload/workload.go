// Package workload reproduces the paper's §2 measurement study: the NFS
// operation mix observed on the University of Washington departmental file
// server over several days (Table 1a) and the decomposition of the
// resulting client/server network traffic into "data traffic" (bytes the
// file system protocol inherently needs) and "control traffic" (additional
// bytes imposed by RPC semantics: file handles, communication identifiers,
// marshaling overheads — network-protocol headers excluded) (Table 1b).
//
// The original trace is long gone; this package substitutes a synthetic
// workload that reproduces the *published* mix exactly (the counts are the
// paper's own) and a per-operation byte model calibrated so the published
// aggregate ratios come out: control ≈ 12% of total traffic, and the write
// row's control/data ratio ≈ 0.01.
package workload

import (
	"fmt"
	"math/rand"
)

// Activity identifies one Table 1a row.
type Activity int

const (
	ActGetAttr Activity = iota
	ActLookup
	ActRead
	ActNullPing
	ActReadLink
	ActReadDir
	ActStatFS
	ActWrite
	ActOther
	numActivities
)

var activityNames = [numActivities]string{
	"Get File Attribute",
	"Lookup File Name",
	"Read File Data",
	"Null Ping Call",
	"Read Symbolic Link",
	"Read Directory Contents",
	"Read File System Stats.",
	"Write File Data",
	"Other",
}

func (a Activity) String() string {
	if a >= 0 && a < numActivities {
		return activityNames[a]
	}
	return fmt.Sprintf("Activity(%d)", int(a))
}

// Table1aCounts are the published call counts (several days of activity at
// the departmental server, 28,860,744 RPCs total).
var Table1aCounts = [numActivities]int64{
	ActGetAttr:  8960671,
	ActLookup:   8840866,
	ActRead:     4478036,
	ActNullPing: 3602730,
	ActReadLink: 1628256,
	ActReadDir:  981345,
	ActStatFS:   149142,
	ActWrite:    109712,
	ActOther:    109986,
}

// Table1aTotal is the published total.
const Table1aTotal int64 = 28860744

// Table1aPercent are the published percentage figures (rounded as printed).
var Table1aPercent = [numActivities]float64{
	ActGetAttr:  31,
	ActLookup:   31,
	ActRead:     16,
	ActNullPing: 13,
	ActReadLink: 6,
	ActReadDir:  3,
	ActStatFS:   0.5,
	ActWrite:    0.4,
	ActOther:    0.3,
}

// Row is one rendered Table 1a line.
type Row struct {
	Activity Activity
	Calls    int64
	Percent  float64
}

// Table1a returns the activity summary rows plus the total, computed from
// the counts (percentages are recomputed, matching the published rounding).
func Table1a() ([]Row, int64) {
	var rows []Row
	var total int64
	for a := Activity(0); a < numActivities; a++ {
		total += Table1aCounts[a]
	}
	for a := Activity(0); a < numActivities; a++ {
		rows = append(rows, Row{
			Activity: a,
			Calls:    Table1aCounts[a],
			Percent:  100 * float64(Table1aCounts[a]) / float64(total),
		})
	}
	return rows, total
}

// ---------------------------------------------------------------------------
// Table 1b: the per-operation traffic model.
//
// Control traffic is what RPC semantics add beyond the data the protocol
// needs: transaction/communication identifiers on every message, the file
// handle named by a request, and marshaling padding for string arguments.
// Data traffic is the protocol content itself: attributes, names resolved,
// file bytes, directory entries. The per-op mean transfer sizes are fitted
// so the aggregate reproduces the published table (overall control/data ≈
// 0.14, control ≈ 12% of all bytes, write-row ratio ≈ 0.01).

// TrafficModel holds the byte accounting parameters.
type TrafficModel struct {
	CommID     int // transaction identifiers, per message (request + reply)
	FileHandle int // opaque handle carried by requests that name a file
	Credential int // identifiers/credentials beyond the xid, per call
	MarshalPad int // string-argument marshaling overhead (lookup, readlink)

	AttrBytes   int // a fattr result
	LookupData  int // handle + attributes returned by lookup
	ReadAvg     int // mean bytes returned per read call
	ReadLinkAvg int // mean symlink target length
	ReadDirAvg  int // mean directory payload per readdir call
	StatFSBytes int
	WriteAvg    int // mean bytes sent per write call
	OtherAvg    int // create/remove/setattr-class payloads
}

// DefaultTraffic is calibrated against the published aggregates.
var DefaultTraffic = TrafficModel{
	CommID:     4,
	FileHandle: 12,
	Credential: 6,
	MarshalPad: 12,

	AttrBytes:   68,
	LookupData:  100,
	ReadAvg:     573,
	ReadLinkAvg: 30,
	ReadDirAvg:  1200,
	StatFSBytes: 48,
	WriteAvg:    2470,
	OtherAvg:    100,
}

// PerCall returns (control, data) bytes for one call of the activity.
func (m *TrafficModel) PerCall(a Activity) (control, data int) {
	// Two messages per RPC: both carry a transaction id.
	control = 2 * m.CommID
	switch a {
	case ActNullPing:
		return control, 0
	case ActStatFS:
		return control, m.StatFSBytes
	case ActGetAttr:
		return control + m.FileHandle + m.Credential, m.AttrBytes
	case ActLookup:
		return control + m.FileHandle + m.Credential + m.MarshalPad, m.LookupData
	case ActRead:
		return control + m.FileHandle + m.Credential, m.ReadAvg
	case ActReadLink:
		return control + m.FileHandle + m.Credential, m.ReadLinkAvg
	case ActReadDir:
		return control + m.FileHandle + m.Credential, m.ReadDirAvg
	case ActWrite:
		return control + m.FileHandle + m.Credential + 8, m.WriteAvg + m.AttrBytes
	case ActOther:
		return control + m.FileHandle + m.Credential + m.MarshalPad, m.OtherAvg
	}
	return control, 0
}

// TrafficRow is one Table 1b line, in megabytes as the paper prints them.
type TrafficRow struct {
	Activity  Activity
	ControlMB float64
	DataMB    float64
	Ratio     float64
}

// Table1b computes the control/data traffic breakdown for the given call
// counts (use Table1aCounts for the paper's snapshot).
func Table1b(m *TrafficModel, counts [numActivities]int64) ([]TrafficRow, TrafficRow) {
	const mb = 1 << 20
	var rows []TrafficRow
	var totC, totD float64
	for a := Activity(0); a < numActivities; a++ {
		c, d := m.PerCall(a)
		cm := float64(c) * float64(counts[a]) / mb
		dm := float64(d) * float64(counts[a]) / mb
		ratio := 0.0
		if dm > 0 {
			ratio = cm / dm
		}
		rows = append(rows, TrafficRow{Activity: a, ControlMB: cm, DataMB: dm, Ratio: ratio})
		totC += cm
		totD += dm
	}
	return rows, TrafficRow{ControlMB: totC, DataMB: totD, Ratio: totC / totD}
}

// NumActivities exposes the row count for renderers.
const NumActivities = int(numActivities)

// ---------------------------------------------------------------------------
// Synthetic trace generation: a stream of operations drawn from the
// published mix, for replay against the file service.

// TraceOp is one operation to replay.
type TraceOp struct {
	Activity Activity
	// File/Dir select which synthetic object the op touches; Size is the
	// transfer size for read/write/readdir.
	File int
	Dir  int
	Size int
}

// Mix returns the activity frequencies as normalized fractions.
func Mix() [numActivities]float64 {
	var mix [numActivities]float64
	for a := Activity(0); a < numActivities; a++ {
		mix[a] = float64(Table1aCounts[a]) / float64(Table1aTotal)
	}
	return mix
}

// Generator draws operations from the Table 1a mix.
type Generator struct {
	rng   *rand.Rand
	cum   [numActivities]float64
	Files int // synthetic file population
	Dirs  int
}

// NewGenerator creates a deterministic generator over the given synthetic
// population.
func NewGenerator(seed int64, files, dirs int) *Generator {
	g := &Generator{rng: rand.New(rand.NewSource(seed)), Files: files, Dirs: dirs}
	mix := Mix()
	sum := 0.0
	for a := Activity(0); a < numActivities; a++ {
		sum += mix[a]
		g.cum[a] = sum
	}
	return g
}

// transfer sizes used for data-bearing ops: the NFS-era distribution is
// dominated by full 8K transfers with a tail of partial ones.
var readSizes = []int{8192, 8192, 4096, 1024, 512}
var writeSizes = []int{8192, 4096, 1024}
var dirSizes = []int{512, 1024, 4096}

// Next draws the next operation.
func (g *Generator) Next() TraceOp {
	u := g.rng.Float64()
	a := ActOther
	for i := Activity(0); i < numActivities; i++ {
		if u <= g.cum[i] {
			a = i
			break
		}
	}
	op := TraceOp{Activity: a, File: g.rng.Intn(g.Files), Dir: g.rng.Intn(g.Dirs)}
	switch a {
	case ActRead:
		op.Size = readSizes[g.rng.Intn(len(readSizes))]
	case ActWrite:
		op.Size = writeSizes[g.rng.Intn(len(writeSizes))]
	case ActReadDir:
		op.Size = dirSizes[g.rng.Intn(len(dirSizes))]
	}
	return op
}

// Trace draws n operations.
func (g *Generator) Trace(n int) []TraceOp {
	out := make([]TraceOp, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// CountByActivity tallies a trace.
func CountByActivity(trace []TraceOp) [numActivities]int64 {
	var counts [numActivities]int64
	for _, op := range trace {
		counts[op.Activity]++
	}
	return counts
}
