package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/faults"
	"netmem/internal/model"
	"netmem/internal/rmem"
	"netmem/internal/shard"
	"netmem/internal/stats"
)

// Open-loop traffic engine. The closed-loop rigs (RunScale, RunShardScale)
// measure capacity: each client issues, waits, thinks — so when the system
// slows down, the offered load politely slows with it, and tail latency is
// flattered (coordinated omission). Production traffic does not wait.
// Here arrivals are scheduled on the virtual clock *independent of
// completions*: a Poisson process shaped over the window (steady, diurnal,
// flash crowd), thinned per Lewis & Shedler, with each arrival stamped
// with its tenant, its Zipf-ranked target, and its latency clock starting
// at the *scheduled* arrival — queueing delay counts. Simulated clients
// are just identities on arrivals (a Poisson superposition), so a million
// of them cost nothing; the ops execute on a small pool of clerk "lanes"
// behind a bounded FIFO, and when the FIFO fills the arrival is shed and
// charged against SLO attainment.

// Shape selects the arrival-rate envelope over the run window.
type Shape int

const (
	// ShapeSteady holds the configured rate flat.
	ShapeSteady Shape = iota
	// ShapeDiurnal ramps rate up to the configured peak mid-window and
	// back down — one day compressed into the window.
	ShapeDiurnal
	// ShapeFlash holds half rate, then bursts to 4x for 15% of the window
	// starting at its 45% mark — a flash crowd landing on a warm system.
	ShapeFlash
)

var shapeNames = map[Shape]string{
	ShapeSteady:  "steady",
	ShapeDiurnal: "diurnal",
	ShapeFlash:   "flash",
}

func (s Shape) String() string {
	if n, ok := shapeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// ParseShape resolves a shape name.
func ParseShape(name string) (Shape, error) {
	for s, n := range shapeNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown shape %q (want steady, diurnal, flash)", name)
}

// ShapeNames lists the arrival shapes, in definition order.
func ShapeNames() []string { return []string{"steady", "diurnal", "flash"} }

// factor returns the rate multiplier at fraction frac of the window.
func (s Shape) factor(frac float64) float64 {
	switch s {
	case ShapeDiurnal:
		sin := math.Sin(math.Pi * frac)
		return 0.35 + 0.65*sin*sin
	case ShapeFlash:
		if frac >= 0.45 && frac < 0.60 {
			return 4.0
		}
		return 0.5
	}
	return 1.0
}

// peak returns the maximum of factor over the window — the thinning
// envelope rate.
func (s Shape) peak() float64 {
	switch s {
	case ShapeFlash:
		return 4.0
	}
	return 1.0
}

// ---------------------------------------------------------------------------
// Zipfian key popularity.

// Zipf draws ranks 0..n-1 with P(k) ∝ 1/(k+1)^theta via an inverse-CDF
// table — theta 0 is uniform, theta ≥ 1 the classic hot-key regime
// (math/rand's Zipf needs s > 1; workload sweeps cross 1.0).
type Zipf struct {
	cum []float64
}

// NewZipf builds the popularity table for n keys.
func NewZipf(n int, theta float64) *Zipf {
	if n < 1 {
		n = 1
	}
	z := &Zipf{cum: make([]float64, n)}
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -theta)
		z.cum[k] = sum
	}
	for k := range z.cum {
		z.cum[k] /= sum
	}
	return z
}

// Sample maps a uniform u in [0,1) to a rank by binary search.
func (z *Zipf) Sample(u float64) int {
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if u <= z.cum[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Prob returns P(rank k).
func (z *Zipf) Prob(k int) float64 {
	if k < 0 || k >= len(z.cum) {
		return 0
	}
	if k == 0 {
		return z.cum[0]
	}
	return z.cum[k] - z.cum[k-1]
}

// ---------------------------------------------------------------------------
// Tenant mixes.

// MixKind selects a tenant's operation mix.
type MixKind int

const (
	// MixDepartmental replays the paper's Table 1a NFS mix.
	MixDepartmental MixKind = iota
	// MixVideo models streaming: almost all large-block sequential reads.
	MixVideo
	// MixMetadata models a microservice control path: attribute and name
	// traffic with small reads and a write tail — the writes are what
	// trigger token recalls on Zipf-hot blocks.
	MixMetadata
)

var mixNames = map[MixKind]string{
	MixDepartmental: "departmental",
	MixVideo:        "video",
	MixMetadata:     "metadata",
}

func (k MixKind) String() string {
	if n, ok := mixNames[k]; ok {
		return n
	}
	return fmt.Sprintf("MixKind(%d)", int(k))
}

// mixFreqs returns the activity frequencies of a mix kind.
func mixFreqs(k MixKind) [numActivities]float64 {
	switch k {
	case MixVideo:
		var f [numActivities]float64
		f[ActRead] = 0.85
		f[ActGetAttr] = 0.10
		f[ActLookup] = 0.05
		return f
	case MixMetadata:
		var f [numActivities]float64
		f[ActGetAttr] = 0.40
		f[ActLookup] = 0.30
		f[ActReadDir] = 0.12
		f[ActRead] = 0.08
		f[ActWrite] = 0.07
		f[ActStatFS] = 0.03
		return f
	}
	return Mix()
}

// drawSize picks the transfer size for a data-bearing op of the mix.
func drawSize(rng *rand.Rand, k MixKind, a Activity) int {
	switch k {
	case MixVideo:
		if a == ActRead {
			return 8192
		}
		return 512
	case MixMetadata:
		return 512
	}
	switch a {
	case ActRead:
		return readSizes[rng.Intn(len(readSizes))]
	case ActWrite:
		return writeSizes[rng.Intn(len(writeSizes))]
	case ActReadDir:
		return dirSizes[rng.Intn(len(dirSizes))]
	}
	return 512
}

// TenantSpec declares one tenant: its share of the arrival stream, its
// operation mix, and its per-op latency deadline.
type TenantSpec struct {
	Name     string
	Share    float64
	Mix      MixKind
	Deadline time.Duration
}

// DefaultTenants is the production-shaped three-tenant population: the
// departmental NFS base load, a video-streaming tenant that tolerates more
// latency, and a metadata-heavy microservice tenant with a tight deadline.
func DefaultTenants() []TenantSpec {
	return []TenantSpec{
		{Name: "dept", Share: 0.50, Mix: MixDepartmental, Deadline: 5 * time.Millisecond},
		{Name: "video", Share: 0.25, Mix: MixVideo, Deadline: 8 * time.Millisecond},
		{Name: "micro", Share: 0.25, Mix: MixMetadata, Deadline: 3 * time.Millisecond},
	}
}

// ---------------------------------------------------------------------------
// The arrival schedule.

// Arrival is one scheduled operation: its virtual arrival offset from the
// window start (non-decreasing across the stream), the simulated client it
// belongs to, its tenant, and the drawn op.
type Arrival struct {
	At        time.Duration
	Client    int
	Tenant    int
	Straggler bool
	Op        TraceOp
}

// Schedule generates the open-loop arrival stream: a non-homogeneous
// Poisson process at aggregate rate Clients·RatePerClient·shape(t),
// realized by thinning candidates generated at the shape's peak rate.
// Everything is drawn from one seeded generator, so a seed fully
// determines the stream.
type Schedule struct {
	cfg         OpenLoopConfig
	rng         *rand.Rand
	zipf        *Zipf
	tenantCum   []float64
	files, dirs int
	peakRate    float64 // candidates per second
	tSec        float64 // current virtual offset, seconds
}

// NewSchedule builds the arrival stream for a filled config over a
// population of files and dirs. Callers outside RunOpenLoop should fill
// the config first (see OpenLoopConfig.Fill).
func NewSchedule(cfg OpenLoopConfig, files, dirs int) *Schedule {
	s := &Schedule{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		zipf:  NewZipf(files, cfg.ZipfTheta),
		files: files,
		dirs:  dirs,
	}
	var sum float64
	for _, t := range cfg.Tenants {
		sum += t.Share
	}
	acc := 0.0
	for _, t := range cfg.Tenants {
		acc += t.Share / sum
		s.tenantCum = append(s.tenantCum, acc)
	}
	s.peakRate = float64(cfg.Clients) * cfg.RatePerClient * cfg.Shape.peak()
	return s
}

// Next returns the next accepted arrival; ok is false once the window is
// exhausted. Arrival times are non-decreasing by construction — the
// candidate clock only moves forward and thinning never reorders.
func (s *Schedule) Next() (Arrival, bool) {
	window := s.cfg.Window.Seconds()
	for {
		s.tSec += s.rng.ExpFloat64() / s.peakRate
		if s.tSec >= window {
			return Arrival{}, false
		}
		// Thinning: accept with probability rate(t)/peak.
		if s.rng.Float64()*s.cfg.Shape.peak() > s.cfg.Shape.factor(s.tSec/window) {
			continue
		}
		a := Arrival{
			At:     time.Duration(s.tSec * float64(time.Second)),
			Client: s.rng.Intn(s.cfg.Clients),
		}
		u := s.rng.Float64()
		for i, c := range s.tenantCum {
			if u <= c {
				a.Tenant = i
				break
			}
			a.Tenant = i
		}
		spec := s.cfg.Tenants[a.Tenant]
		a.Straggler = s.rng.Float64()*1000 < float64(s.cfg.StragglerPerMille)
		rank := s.zipf.Sample(s.rng.Float64())
		a.Op.File = rank
		a.Op.Dir = rank * s.dirs / s.files // hot files live in hot dirs
		freqs := mixFreqs(spec.Mix)
		ua := s.rng.Float64()
		acc := 0.0
		a.Op.Activity = ActGetAttr
		for act := Activity(0); act < numActivities; act++ {
			if freqs[act] == 0 {
				continue
			}
			acc += freqs[act]
			if ua <= acc {
				a.Op.Activity = act
				break
			}
		}
		switch a.Op.Activity {
		case ActRead, ActWrite, ActReadDir:
			a.Op.Size = drawSize(s.rng, spec.Mix, a.Op.Activity)
		}
		return a, true
	}
}

// ---------------------------------------------------------------------------
// The rig.

// OpenLoopConfig parameterizes one open-loop run.
type OpenLoopConfig struct {
	// Clients is the simulated client population; arrivals form the
	// superposition of their independent Poisson streams.
	Clients int
	// RatePerClient is each client's mean rate in ops/sec (at shape
	// factor 1), so the aggregate steady rate is Clients·RatePerClient.
	RatePerClient float64
	// Window is the arrival window of virtual time; lanes drain after.
	Window time.Duration
	// Shape is the arrival-rate envelope.
	Shape Shape
	// ZipfTheta skews key popularity (0 uniform; 0.9–1.2 hot-key regime).
	ZipfTheta float64
	// Tenants is the SLO-class population (DefaultTenants when empty).
	Tenants []TenantSpec
	// Shards and Replicas shape the serving tier: Shards primaries, each
	// with a Replicas-member chain (0 = no chains).
	Shards   int
	Replicas int
	// Lanes is the clerk-pool size ops execute on; MaxQueue bounds the
	// dispatch FIFO — arrivals past it are shed.
	Lanes    int
	MaxQueue int
	// StragglerPerMille is the per-arrival probability (in ‰) that the op
	// simulates a slow client holding its lane StragglerDelay before
	// executing — backpressure the queue accounting must absorb.
	StragglerPerMille int
	StragglerDelay    time.Duration
	// Seed fixes both the simulation and the arrival stream.
	Seed int64
	// Dirs × PerDir is the file population (Zipf ranks map onto it).
	Dirs   int
	PerDir int
	// Mode is the file-service structure (DX default).
	Mode dfs.Mode
	// Campaign, when set, runs the window under the fault schedule with
	// the reliability layer, fencing, and chain failover armed.
	Campaign *faults.Campaign
}

// Fill applies defaults in place.
func (c *OpenLoopConfig) Fill() {
	if c.Clients <= 0 {
		c.Clients = 100_000
	}
	if c.RatePerClient <= 0 {
		c.RatePerClient = 0.05
	}
	if c.Window <= 0 {
		c.Window = 2 * time.Second
	}
	if len(c.Tenants) == 0 {
		c.Tenants = DefaultTenants()
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Replicas < 0 {
		c.Replicas = 0
	}
	if c.Lanes <= 0 {
		c.Lanes = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4096
	}
	if c.StragglerPerMille < 0 {
		c.StragglerPerMille = 0
	}
	if c.StragglerDelay <= 0 {
		c.StragglerDelay = 2 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Dirs <= 0 {
		c.Dirs = 4
	}
	if c.PerDir <= 0 {
		c.PerDir = 8
	}
}

// OpenLoopResult is one run's machine-readable summary. Every field is
// derived from virtual time and seeded draws — byte-deterministic for a
// fixed config.
type OpenLoopResult struct {
	Shape     string  `json:"shape"`
	ZipfTheta float64 `json:"zipf_theta"`
	Clients   int     `json:"clients"`
	Shards    int     `json:"shards"`
	Replicas  int     `json:"replicas"`
	Lanes     int     `json:"lanes"`
	Campaign  string  `json:"campaign,omitempty"`

	// Offered counts scheduled arrivals; Shed the ones dropped at the
	// full FIFO; Stragglers the slow-client injections that executed.
	Offered    int64 `json:"offered"`
	Shed       int64 `json:"shed"`
	Stragglers int64 `json:"stragglers"`
	PeakQueue  int   `json:"peak_queue"`

	// QWaitP50Ms/QWaitP99Ms summarize time spent queued before a lane
	// picked the op up (already included in per-op latency).
	QWaitP50Ms float64 `json:"qwait_p50_ms"`
	QWaitP99Ms float64 `json:"qwait_p99_ms"`

	// Report is the per-tenant SLO summary (the Recorder schema).
	Report Report `json:"report"`

	// Serving-tier counters over the run.
	TokenHits        int64   `json:"token_hits"`
	ReplicaReads     int64   `json:"replica_reads"`
	ReplicaFallbacks int64   `json:"replica_fallbacks"`
	MeanShardUtil    float64 `json:"mean_shard_util"`

	// Failover outcome under a campaign.
	FailedOver bool    `json:"failed_over"`
	MTTRMs     float64 `json:"mttr_ms"`

	Events uint64 `json:"events"`
}

// stepRun advances env in step-sized slices until stop() or the horizon —
// the chain and heartbeat daemons never idle, so a run needs a quantized,
// predicate-gated stop to keep its event count deterministic.
func stepRun(env *des.Env, step, horizon time.Duration, stop func() bool) error {
	end := des.Time(horizon)
	for !stop() && env.Now() < end {
		next := env.Now().Add(step)
		if next > end {
			next = end
		}
		// An empty tick pins an event on the boundary: RunUntil leaves the
		// clock at the last executed event, so a quiet stretch (no chain
		// daemons, next arrival beyond the step) would otherwise freeze
		// now — and with it this loop.
		env.ScheduleFunc(next, func() {})
		if err := env.RunUntil(next); err != nil {
			return err
		}
	}
	return nil
}

// RunOpenLoop executes one open-loop measurement. Topology: shard
// primaries on nodes 0..S-1, chain members on the next S·K, lane clerks
// after, and (under a campaign) a failover watcher on the last node.
func RunOpenLoop(cfg OpenLoopConfig) (*OpenLoopResult, error) {
	cfg.Fill()
	env := des.NewEnv()
	env.Seed(cfg.Seed)

	var eng *faults.Engine
	var clusterOpts []cluster.Option
	if cfg.Campaign != nil {
		eng = faults.NewEngine(env, *cfg.Campaign)
		clusterOpts = append(clusterOpts, cluster.WithFaultEngine(eng))
	}
	nodes := cfg.Shards + cfg.Shards*cfg.Replicas + cfg.Lanes
	watcherNode := -1
	if cfg.Campaign != nil && cfg.Replicas > 0 {
		watcherNode = nodes
		nodes++
	}
	cl := cluster.New(env, &model.Default, nodes, clusterOpts...)
	mgrs := make([]*rmem.Manager, nodes)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}
	for i := range mgrs {
		eng.OnRecover(i, mgrs[i].Restart)
	}
	laneBase := cfg.Shards + cfg.Shards*cfg.Replicas

	var svc *shard.Service
	var tree *Tree
	var setupErr error
	var setupDone bool
	laneClerks := make([]*shard.Clerk, cfg.Lanes)
	env.Spawn("openloop.setup", func(p *des.Proc) {
		defer func() { setupDone = true }()
		var svcOpts []dfs.ServerOption
		if cfg.Campaign != nil {
			svcOpts = append(svcOpts, dfs.WithReliableReplies())
		}
		svc = shard.NewService(p, mgrs[:cfg.Shards], nodes, dfs.Geometry{}, svcOpts...)
		tree, setupErr = BuildTreeOn(svc.Store, svc, cfg.Dirs, cfg.PerDir)
		if setupErr != nil {
			return
		}
		copts := []shard.ClerkOption{shard.WithTokenCache()}
		if cfg.Campaign != nil {
			copts = append(copts, shard.WithSubOptions(dfs.WithReliable(), dfs.WithFencing()))
		}
		for i := range laneClerks {
			laneClerks[i] = shard.NewClerk(p, mgrs[laneBase+i], svc, cfg.Mode, copts...)
		}
		shard.ConnectTokenPeers(p, laneClerks...)
		for slot := 0; slot < cfg.Shards && cfg.Replicas > 0; slot++ {
			members := mgrs[cfg.Shards+slot*cfg.Replicas : cfg.Shards+(slot+1)*cfg.Replicas]
			if setupErr = svc.AttachReplicas(p, slot, members, 100*time.Microsecond); setupErr != nil {
				return
			}
		}
		if watcherNode >= 0 {
			for slot := 0; slot < cfg.Shards; slot++ {
				if _, setupErr = svc.ArmChainFailover(p, slot, mgrs[watcherNode], 100*time.Microsecond); setupErr != nil {
					return
				}
			}
		}
		// Let every chain converge on the warm frames before arrivals.
		for tries := 0; cfg.Replicas > 0 && tries < 100; tries++ {
			converged := true
			for slot := 0; slot < cfg.Shards; slot++ {
				lo, hi := ^uint64(0), uint64(0)
				for _, cr := range svc.Replicas(slot) {
					a := cr.Applied()
					if a < lo {
						lo = a
					}
					if a > hi {
						hi = a
					}
				}
				if lo != hi || lo == 0 {
					converged = false
				}
			}
			if converged {
				return
			}
			p.Sleep(time.Millisecond)
		}
	})
	// The quantized stop puts the window start on a whole-millisecond
	// boundary deterministically; under the stock campaigns (crash at
	// ~202ms) setup completes first, so the crash lands inside the window.
	if err := stepRun(env, time.Millisecond, time.Second, func() bool { return setupDone }); err != nil {
		return nil, err
	}
	if setupErr != nil {
		return nil, setupErr
	}
	if !setupDone {
		return nil, fmt.Errorf("workload: open-loop setup did not finish within 1s")
	}

	classes := make([]SLOClass, len(cfg.Tenants))
	for i, t := range cfg.Tenants {
		classes[i] = SLOClass{Name: t.Name, Deadline: t.Deadline}
	}
	rec := NewRecorder(classes...)
	res := &OpenLoopResult{
		Shape:     cfg.Shape.String(),
		ZipfTheta: cfg.ZipfTheta,
		Clients:   cfg.Clients,
		Shards:    cfg.Shards,
		Replicas:  cfg.Replicas,
		Lanes:     cfg.Lanes,
	}
	if cfg.Campaign != nil {
		res.Campaign = cfg.Campaign.Name
	}

	start := env.Now()
	for i := 0; i < cfg.Shards; i++ {
		cl.Nodes[i].ResetCPUAcct()
	}
	var queue []Arrival
	var qhead int
	qlen := func() int { return len(queue) - qhead }
	wq := des.NewWaitQueue(env)
	var dispatchDone bool
	var accounted int64
	var qwait stats.Sketch

	env.Spawn("openloop.dispatch", func(p *des.Proc) {
		sched := NewSchedule(cfg, len(tree.Files), len(tree.Dirs))
		for {
			a, ok := sched.Next()
			if !ok {
				break
			}
			at := start.Add(a.At)
			if at > p.Now() {
				p.Sleep(time.Duration(at.Sub(p.Now())))
			}
			res.Offered++
			if qlen() >= cfg.MaxQueue {
				rec.RecordShed(a.Tenant)
				res.Shed++
				accounted++
				continue
			}
			queue = append(queue, a)
			if l := qlen(); l > res.PeakQueue {
				res.PeakQueue = l
			}
			wq.WakeOne()
		}
		dispatchDone = true
		wq.WakeAll()
	})
	for i := 0; i < cfg.Lanes; i++ {
		i := i
		env.Spawn(fmt.Sprintf("openloop.lane%d", i), func(p *des.Proc) {
			// The token-coherent cache stays live across ops (production
			// posture): reads on hot blocks hit locally until a tenant's
			// write recalls the tokens.
			rep := &Replayer{Clerk: laneClerks[i], Tree: tree, LocalCaching: true}
			for {
				if qlen() == 0 {
					if dispatchDone {
						return
					}
					wq.Wait(p)
					continue
				}
				a := queue[qhead]
				qhead++
				if qhead == len(queue) {
					queue = queue[:0]
					qhead = 0
				}
				sched := start.Add(a.At)
				qwait.ObserveDuration(time.Duration(p.Now().Sub(sched)))
				if a.Straggler {
					res.Stragglers++
					p.Sleep(cfg.StragglerDelay)
				}
				err := rep.Apply(p, a.Op)
				// Latency runs from the *scheduled* arrival: queueing and
				// straggler holds count, exactly what a closed loop hides.
				rec.Record(a.Tenant, time.Duration(p.Now().Sub(sched)), err)
				accounted++
			}
		})
	}

	horizon := time.Duration(start) + cfg.Window + 2*time.Second
	err := stepRun(env, time.Millisecond, horizon, func() bool {
		return dispatchDone && qlen() == 0 && accounted == res.Offered
	})
	if err != nil {
		return nil, err
	}
	if accounted != res.Offered {
		return nil, fmt.Errorf("workload: open-loop drain incomplete: %d of %d ops accounted", accounted, res.Offered)
	}

	res.Report = rec.Report(cfg.Window)
	res.QWaitP50Ms = ms(qwait.P50())
	res.QWaitP99Ms = ms(qwait.P99())
	for _, c := range laneClerks {
		res.TokenHits += c.TokenHits
		res.ReplicaReads += c.ReplicaReads
		res.ReplicaFallbacks += c.ReplicaFallbacks
	}
	for i := 0; i < cfg.Shards; i++ {
		res.MeanShardUtil += cl.Nodes[i].CPU.Utilization(start)
	}
	res.MeanShardUtil /= float64(cfg.Shards)
	if svc != nil {
		for _, rc := range svc.Coordinators() {
			if rc == nil || !rc.Restored() {
				continue
			}
			res.FailedOver = true
			if m := ms(int64(rc.MTTR())); m > res.MTTRMs {
				res.MTTRMs = m
			}
		}
	}
	res.Events = env.Events()
	return res, nil
}
