package workload

import (
	"testing"
	"time"
)

// FuzzArrivalSchedule drives the open-loop arrival generator with
// arbitrary (bounded) configurations and checks its core invariants: the
// stream never emits out-of-order virtual times, never leaves the window,
// and never names a client, tenant, or file outside the configured
// population — for any seed, shape, skew, or tenant split.
func FuzzArrivalSchedule(f *testing.F) {
	f.Add(int64(1), uint16(1000), uint8(0), uint16(90), uint16(50), uint16(25))
	f.Add(int64(42), uint16(60000), uint8(1), uint16(0), uint16(100), uint16(0))
	f.Add(int64(-7), uint16(3), uint8(2), uint16(300), uint16(1), uint16(1))
	f.Fuzz(func(t *testing.T, seed int64, clients uint16, shapeRaw uint8,
		thetaCenti uint16, shareA, shareB uint16) {
		cfg := OpenLoopConfig{
			Clients:       int(clients)%100_000 + 1,
			RatePerClient: 0.5,
			Window:        200 * time.Millisecond,
			Shape:         Shape(int(shapeRaw) % 3),
			ZipfTheta:     float64(thetaCenti%400) / 100,
			Seed:          seed,
			Tenants: []TenantSpec{
				{Name: "a", Share: float64(shareA%1000) + 1, Mix: MixDepartmental},
				{Name: "b", Share: float64(shareB%1000) + 1, Mix: MixVideo},
				{Name: "c", Share: 1, Mix: MixMetadata},
			},
		}
		cfg.Fill()
		const files, dirs = 32, 4
		sched := NewSchedule(cfg, files, dirs)
		prev := time.Duration(-1)
		for n := 0; ; n++ {
			a, ok := sched.Next()
			if !ok {
				break
			}
			if n > 500_000 {
				t.Fatalf("schedule did not terminate within 500k arrivals")
			}
			if a.At < prev {
				t.Fatalf("arrival %d out of order: %v after %v", n, a.At, prev)
			}
			prev = a.At
			if a.At < 0 || a.At >= cfg.Window {
				t.Fatalf("arrival %d outside window: %v", n, a.At)
			}
			if a.Client < 0 || a.Client >= cfg.Clients {
				t.Fatalf("arrival %d client %d outside population %d", n, a.Client, cfg.Clients)
			}
			if a.Tenant < 0 || a.Tenant >= len(cfg.Tenants) {
				t.Fatalf("arrival %d tenant %d outside %d classes", n, a.Tenant, len(cfg.Tenants))
			}
			if a.Op.File < 0 || a.Op.File >= files {
				t.Fatalf("arrival %d file %d outside population %d", n, a.Op.File, files)
			}
			if a.Op.Dir < 0 || a.Op.Dir >= dirs {
				t.Fatalf("arrival %d dir %d outside population %d", n, a.Op.Dir, dirs)
			}
		}
	})
}
