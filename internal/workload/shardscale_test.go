package workload

import (
	"testing"
	"time"

	"netmem/internal/dfs"
)

func TestRunShardScaleSmoke(t *testing.T) {
	pt, err := RunShardScale(ShardScaleConfig{
		Shards: 2, ClientsPerShard: 2, Mode: dfs.DX,
		Window: 200 * time.Millisecond, ThinkTime: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Shards != 2 || pt.Clients != 4 {
		t.Errorf("shape: %d shards, %d clients", pt.Shards, pt.Clients)
	}
	if pt.OpsDone == 0 || pt.OpsPerSec <= 0 {
		t.Errorf("no throughput: %+v", pt)
	}
	if len(pt.ShardUtil) != 2 || pt.MeanUtil <= 0 {
		t.Errorf("missing per-shard occupancy: %+v", pt.ShardUtil)
	}
}

// TestShardScaleOccupancyFlat is the scaling acceptance check: with load
// scaled proportionally (fixed clients per shard), mean per-shard CPU
// occupancy at 3 shards must stay within 15% of the 1-shard baseline —
// sharding divides the load rather than replicating it.
func TestShardScaleOccupancyFlat(t *testing.T) {
	run := func(shards int) utilPoint {
		pt, err := RunShardScale(ShardScaleConfig{
			Shards: shards, Mode: dfs.DX,
			Window: time.Second, ThinkTime: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return utilPoint{pt.MeanUtil, pt.OpsPerSec}
	}
	base := run(1)
	scaled := run(3)
	ratio := scaled.Util / base.Util
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("3-shard mean occupancy %.3f vs 1-shard %.3f (ratio %.2f), want within 15%%",
			scaled.Util, base.Util, ratio)
	}
	if scaled.Ops < 2*base.Ops {
		t.Errorf("aggregate throughput did not scale: 1 shard %.0f ops/s, 3 shards %.0f ops/s",
			base.Ops, scaled.Ops)
	}
}

type utilPoint struct {
	Util float64
	Ops  float64
}

func TestRunShardScaleTokenCache(t *testing.T) {
	pt, err := RunShardScale(ShardScaleConfig{
		Shards: 2, ClientsPerShard: 2, Mode: dfs.DX, TokenCache: true,
		Window: 200 * time.Millisecond, ThinkTime: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.TokenHits == 0 {
		t.Error("token cache enabled but no read was served from it")
	}
}
