package workload

import (
	"time"

	"netmem/internal/stats"
)

// Recorder is the one latency-accounting path every workload run — open- or
// closed-loop — reports through, so their stat schemas cannot drift. Each
// tenant (SLO class) gets its own streaming sketch; Report folds them into
// per-tenant and aggregate quantiles, SLO attainment, and a fairness index.

// SLOClass names one tenant and its per-op latency deadline. A zero
// Deadline means every completed op counts as in-SLO.
type SLOClass struct {
	Name     string
	Deadline time.Duration
}

// TenantStat accumulates one tenant's outcomes.
type TenantStat struct {
	Class  SLOClass
	Ops    int64 // completed operations
	Failed int64 // operations that returned an error
	Shed   int64 // arrivals dropped before execution (queue overflow)
	InSLO  int64 // completed within Class.Deadline
	SumLat time.Duration
	Lat    stats.Sketch
}

// Recorder collects per-tenant latency and SLO outcomes.
type Recorder struct {
	Tenants []TenantStat
}

// NewRecorder builds a recorder with one slot per class; with no classes it
// gets a single deadline-free "all" tenant.
func NewRecorder(classes ...SLOClass) *Recorder {
	if len(classes) == 0 {
		classes = []SLOClass{{Name: "all"}}
	}
	r := &Recorder{Tenants: make([]TenantStat, len(classes))}
	for i, c := range classes {
		r.Tenants[i].Class = c
	}
	return r
}

// clamp maps an out-of-range tenant index onto slot 0.
func (r *Recorder) clamp(tenant int) *TenantStat {
	if tenant < 0 || tenant >= len(r.Tenants) {
		tenant = 0
	}
	return &r.Tenants[tenant]
}

// Record accounts one operation outcome: a failure when err != nil,
// otherwise a completion with the given latency.
func (r *Recorder) Record(tenant int, lat time.Duration, err error) {
	t := r.clamp(tenant)
	if err != nil {
		t.Failed++
		return
	}
	t.Ops++
	t.SumLat += lat
	t.Lat.ObserveDuration(lat)
	if t.Class.Deadline <= 0 || lat <= t.Class.Deadline {
		t.InSLO++
	}
}

// RecordShed accounts one arrival dropped before execution — offered load
// the system refused, charged against SLO attainment.
func (r *Recorder) RecordShed(tenant int) { r.clamp(tenant).Shed++ }

// TenantReport is one tenant's summary. All latency fields are
// milliseconds; Attainment is the fraction of *offered* ops (completed +
// failed + shed) that finished within the deadline, so shedding and errors
// hurt it exactly as much as slow completions.
type TenantReport struct {
	Tenant     string  `json:"tenant"`
	DeadlineMs float64 `json:"deadline_ms"`
	Ops        int64   `json:"ops"`
	Failed     int64   `json:"failed"`
	Shed       int64   `json:"shed"`
	MeanMs     float64 `json:"mean_ms"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	P999Ms     float64 `json:"p999_ms"`
	Attainment float64 `json:"attainment"`
	GoodputOps float64 `json:"goodput_ops_per_sec"`
}

// Report is the full run summary: per-tenant rows, the all-tenant
// aggregate, and Jain's fairness index over per-tenant attainment (1.0 =
// every tenant gets the same SLO attainment, 1/n = one tenant gets
// everything).
type Report struct {
	WindowMs float64        `json:"window_ms"`
	Tenants  []TenantReport `json:"tenants"`
	Total    TenantReport   `json:"total"`
	Fairness float64        `json:"fairness"`
}

func ms(d int64) float64 { return float64(d) / 1e6 }

func (t *TenantStat) report(window time.Duration) TenantReport {
	rep := TenantReport{
		Tenant:     t.Class.Name,
		DeadlineMs: float64(t.Class.Deadline) / 1e6,
		Ops:        t.Ops,
		Failed:     t.Failed,
		Shed:       t.Shed,
		P50Ms:      ms(t.Lat.P50()),
		P99Ms:      ms(t.Lat.P99()),
		P999Ms:     ms(t.Lat.P999()),
	}
	if t.Ops > 0 {
		rep.MeanMs = float64(t.SumLat) / float64(t.Ops) / 1e6
	}
	if offered := t.Ops + t.Failed + t.Shed; offered > 0 {
		rep.Attainment = float64(t.InSLO) / float64(offered)
	}
	if window > 0 {
		rep.GoodputOps = float64(t.InSLO) / window.Seconds()
	}
	return rep
}

// Report summarizes everything recorded so far over the given measurement
// window (the window scales goodput; pass 0 to skip rates).
func (r *Recorder) Report(window time.Duration) Report {
	rep := Report{WindowMs: float64(window) / 1e6}
	total := TenantStat{Class: SLOClass{Name: "total"}}
	var sumA, sumA2 float64
	var active int
	for i := range r.Tenants {
		t := &r.Tenants[i]
		tr := t.report(window)
		rep.Tenants = append(rep.Tenants, tr)
		total.Ops += t.Ops
		total.Failed += t.Failed
		total.Shed += t.Shed
		total.InSLO += t.InSLO
		total.SumLat += t.SumLat
		total.Lat.Merge(&t.Lat)
		if t.Ops+t.Failed+t.Shed > 0 {
			active++
			sumA += tr.Attainment
			sumA2 += tr.Attainment * tr.Attainment
		}
	}
	rep.Total = total.report(window)
	if active > 0 && sumA2 > 0 {
		rep.Fairness = sumA * sumA / (float64(active) * sumA2)
	}
	return rep
}
