package workload

import (
	"math"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/model"
	"netmem/internal/rmem"
)

func TestTable1aMatchesPublishedNumbers(t *testing.T) {
	rows, total := Table1a()
	if total != Table1aTotal {
		t.Fatalf("total = %d, want %d", total, Table1aTotal)
	}
	for _, r := range rows {
		if r.Calls != Table1aCounts[r.Activity] {
			t.Fatalf("%v: calls = %d", r.Activity, r.Calls)
		}
		// Recomputed percentages track the published ones. (The published
		// column is itself loosely rounded — it sums to 101.2 — so allow
		// the same slack.)
		pub := Table1aPercent[r.Activity]
		tol := 1.0
		if pub < 1 {
			tol = 0.15
		}
		if math.Abs(r.Percent-pub) > tol {
			t.Errorf("%v: %%=%.2f, published %v", r.Activity, r.Percent, pub)
		}
	}
}

func TestTable1bReproducesAggregates(t *testing.T) {
	rows, total := Table1b(&DefaultTraffic, Table1aCounts)
	// Paper: overall control 766 MB, data 5573 MB, ratio 0.14; control is
	// "about 12%" of the total.
	if total.Ratio < 0.12 || total.Ratio > 0.16 {
		t.Errorf("overall control/data = %.3f, want ≈0.14", total.Ratio)
	}
	share := total.ControlMB / (total.ControlMB + total.DataMB)
	if share < 0.10 || share > 0.14 {
		t.Errorf("control share of total = %.3f, want ≈0.12", share)
	}
	if total.DataMB < 5573*0.85 || total.DataMB > 5573*1.15 {
		t.Errorf("data total = %.0f MB, want ≈5573", total.DataMB)
	}
	if total.ControlMB < 766*0.85 || total.ControlMB > 766*1.15 {
		t.Errorf("control total = %.0f MB, want ≈766", total.ControlMB)
	}
	// Write row: control 4 MB, data 271 MB, ratio 0.01.
	w := rows[ActWrite]
	if w.Ratio > 0.02 {
		t.Errorf("write row ratio = %.3f, want ≈0.01", w.Ratio)
	}
	if w.DataMB < 271*0.8 || w.DataMB > 271*1.2 {
		t.Errorf("write row data = %.0f MB, want ≈271", w.DataMB)
	}
	if w.ControlMB < 3 || w.ControlMB > 6 {
		t.Errorf("write row control = %.1f MB, want ≈4", w.ControlMB)
	}
	// Null pings move no data.
	if rows[ActNullPing].DataMB != 0 {
		t.Error("null pings should carry no data traffic")
	}
}

func TestMostTrafficIsDataMovement(t *testing.T) {
	// §2's point: "for all rows except the Null Ping, the goal of the
	// RPCs is to transfer data" — i.e. every non-null activity's traffic
	// is dominated by data, not control.
	rows, _ := Table1b(&DefaultTraffic, Table1aCounts)
	for _, r := range rows {
		if r.Activity == ActNullPing {
			continue
		}
		if r.DataMB <= r.ControlMB {
			t.Errorf("%v: data %.1f MB not dominant over control %.1f MB",
				r.Activity, r.DataMB, r.ControlMB)
		}
	}
}

func TestGeneratorMatchesMix(t *testing.T) {
	g := NewGenerator(7, 100, 10)
	trace := g.Trace(200000)
	counts := CountByActivity(trace)
	mix := Mix()
	for a := Activity(0); a < numActivities; a++ {
		got := float64(counts[a]) / float64(len(trace))
		if math.Abs(got-mix[a]) > 0.01 {
			t.Errorf("%v: frequency %.4f, mix %.4f", a, got, mix[a])
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(42, 50, 5).Trace(1000)
	b := NewGenerator(42, 50, 5).Trace(1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestReplayAgainstFileService(t *testing.T) {
	for _, mode := range []dfs.Mode{dfs.DX, dfs.HY} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			env := des.NewEnv()
			cl := cluster.New(env, &model.Default, 2)
			ms := rmem.NewManager(cl.Nodes[0])
			mc := rmem.NewManager(cl.Nodes[1])
			var rep *Replayer
			var setupErr error
			env.Spawn("setup", func(p *des.Proc) {
				srv := dfs.NewServer(p, ms, 2, dfs.Geometry{})
				tree, err := BuildTree(srv, 2, 4)
				if err != nil {
					setupErr = err
					return
				}
				rep = &Replayer{Clerk: dfs.NewClerk(p, mc, srv, mode), Tree: tree}
			})
			if err := env.RunUntil(des.Time(500 * time.Millisecond)); err != nil {
				t.Fatal(err)
			}
			if setupErr != nil {
				t.Fatal(setupErr)
			}
			g := NewGenerator(3, 8, 2)
			var applied int
			env.Spawn("replay", func(p *des.Proc) {
				for _, op := range g.Trace(300) {
					if err := rep.Apply(p, op); err != nil {
						t.Errorf("%v: %v", op.Activity, err)
						return
					}
					applied++
				}
			})
			if err := env.RunUntil(des.Time(5 * 60 * time.Second)); err != nil {
				t.Fatal(err)
			}
			if applied != 300 {
				t.Fatalf("applied %d of 300 ops", applied)
			}
		})
	}
}

func TestScaleDXBeatsHYOnServerLoad(t *testing.T) {
	// The §3 scalability claim: at equal client population and think
	// time, DX leaves the server less utilized (or, if both saturate,
	// delivers more operations).
	const clients = 4
	hy, err := RunScale(ScaleConfig{Clients: clients, Mode: dfs.HY,
		Window: time.Second, ThinkTime: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	dx, err := RunScale(ScaleConfig{Clients: clients, Mode: dfs.DX,
		Window: time.Second, ThinkTime: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("HY: %.0f ops/s, util %.2f; DX: %.0f ops/s, util %.2f",
		hy.OpsPerSec, hy.ServerUtil, dx.OpsPerSec, dx.ServerUtil)
	if hy.OpsDone == 0 || dx.OpsDone == 0 {
		t.Fatal("no operations completed")
	}
	// Per delivered operation, DX must cost the server far less CPU.
	hyPerOp := hy.ServerUtil / hy.OpsPerSec
	dxPerOp := dx.ServerUtil / dx.OpsPerSec
	if dxPerOp >= hyPerOp*0.6 {
		t.Errorf("server CPU per op: DX %.3g, HY %.3g — want DX well under", dxPerOp, hyPerOp)
	}
}

func TestTrafficModelInvariants(t *testing.T) {
	m := &DefaultTraffic
	for a := Activity(0); a < numActivities; a++ {
		c, d := m.PerCall(a)
		if c <= 0 {
			t.Errorf("%v: control %d must be positive (every RPC carries identifiers)", a, c)
		}
		if a == ActNullPing {
			if d != 0 {
				t.Errorf("null ping carries data %d", d)
			}
			continue
		}
		if d <= 0 {
			t.Errorf("%v: data %d must be positive", a, d)
		}
	}
	// Ops that reference a file must cost more control than the null ping
	// (they carry a handle).
	nullC, _ := m.PerCall(ActNullPing)
	getC, _ := m.PerCall(ActGetAttr)
	if getC <= nullC {
		t.Error("file-referencing op should carry more control bytes than a null ping")
	}
}

func TestScaleThroughputGrowsWithClients(t *testing.T) {
	one, err := RunScale(ScaleConfig{Clients: 1, Mode: dfs.DX,
		Window: 500 * time.Millisecond, ThinkTime: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	three, err := RunScale(ScaleConfig{Clients: 3, Mode: dfs.DX,
		Window: 500 * time.Millisecond, ThinkTime: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if three.OpsPerSec <= one.OpsPerSec*1.5 {
		t.Fatalf("3 clients: %.0f ops/s vs 1 client: %.0f — unsaturated DX should scale",
			three.OpsPerSec, one.OpsPerSec)
	}
}
