package workload

import (
	"fmt"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/model"
	"netmem/internal/rmem"
)

// The scalability experiment extends §3's argument to a measurement: "if
// we can eliminate both the traffic and the server involvement, we have
// the potential to improve scalability by lowering both network and server
// load." N closed-loop clients replay the Table 1a mix against one server;
// the interesting outputs are server CPU utilization and delivered
// operation throughput as N grows. Under HY the server saturates early
// (every call burns the 260 µs control-transfer path plus the procedure);
// under DX the same mix leaves the server CPU doing only data-transfer
// emulation.

// ScalePoint is one (mode, client-count) measurement.
type ScalePoint struct {
	Mode       dfs.Mode
	Clients    int
	OpsDone    int64
	OpsPerSec  float64
	ServerUtil float64 // server CPU utilization during the window
	MeanLatMs  float64 // mean per-operation latency, milliseconds
	P99Ms      float64 // p99 per-operation latency, milliseconds
	Events     uint64  // simulator events executed (see des.Env.Events)
}

// ScaleConfig parameterizes the experiment.
type ScaleConfig struct {
	Clients   int
	Mode      dfs.Mode
	Window    time.Duration // measurement window of virtual time
	ThinkTime time.Duration // per-client pause between operations
	Seed      int64
	Dirs      int
	PerDir    int
}

func (c *ScaleConfig) fill() {
	if c.Window <= 0 {
		c.Window = 2 * time.Second
	}
	if c.ThinkTime < 0 {
		c.ThinkTime = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Dirs <= 0 {
		c.Dirs = 4
	}
	if c.PerDir <= 0 {
		c.PerDir = 8
	}
}

// RunScale executes one scalability measurement.
func RunScale(cfg ScaleConfig) (ScalePoint, error) {
	cfg.fill()
	env := des.NewEnv()
	cl := cluster.New(env, &model.Default, cfg.Clients+1)
	ms := rmem.NewManager(cl.Nodes[0])

	var srv *dfs.Server
	var tree *Tree
	var setupErr error
	clerks := make([]*dfs.Clerk, cfg.Clients)
	env.Spawn("setup", func(p *des.Proc) {
		srv = dfs.NewServer(p, ms, cfg.Clients+1, dfs.Geometry{})
		tree, setupErr = BuildTree(srv, cfg.Dirs, cfg.PerDir)
		if setupErr != nil {
			return
		}
		for i := 0; i < cfg.Clients; i++ {
			mc := rmem.NewManager(cl.Nodes[i+1])
			clerks[i] = dfs.NewClerk(p, mc, srv, cfg.Mode)
		}
	})
	if err := env.RunUntil(des.Time(500 * time.Millisecond)); err != nil {
		return ScalePoint{}, err
	}
	if setupErr != nil {
		return ScalePoint{}, setupErr
	}

	// Launch closed-loop clients as daemons; measure over a fixed window.
	// All clients report through one shared Recorder — the same accounting
	// path the open-loop engine uses — so both loop styles emit the same
	// stat schema.
	rec := NewRecorder()
	start := env.Now()
	srv.Node().ResetCPUAcct()
	for i := 0; i < cfg.Clients; i++ {
		i := i
		env.SpawnDaemon(fmt.Sprintf("client%d", i), func(p *des.Proc) {
			gen := NewGenerator(cfg.Seed+int64(i), len(tree.Files), len(tree.Dirs))
			rep := &Replayer{Clerk: clerks[i], Tree: tree, Rec: rec}
			for {
				op := gen.Next()
				if err := rep.Do(p, op); err != nil {
					setupErr = fmt.Errorf("client %d: %v: %w", i, op.Activity, err)
					return
				}
				p.Sleep(cfg.ThinkTime)
			}
		})
	}
	if err := env.RunUntil(start.Add(cfg.Window)); err != nil {
		return ScalePoint{}, err
	}
	if setupErr != nil {
		return ScalePoint{}, setupErr
	}

	elapsed := time.Duration(env.Now().Sub(start))
	st := &rec.Tenants[0]
	pt := ScalePoint{
		Mode:       cfg.Mode,
		Clients:    cfg.Clients,
		OpsDone:    st.Ops,
		OpsPerSec:  float64(st.Ops) / elapsed.Seconds(),
		ServerUtil: srv.Node().CPU.Utilization(start),
		Events:     env.Events(),
	}
	if st.Ops > 0 {
		pt.MeanLatMs = (st.SumLat / time.Duration(st.Ops)).Seconds() * 1000
		pt.P99Ms = float64(st.Lat.P99()) / 1e6
	}
	return pt, nil
}
