package workload

import (
	"fmt"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/fstore"
	"netmem/internal/model"
	"netmem/internal/obs"
	"netmem/internal/rmem"
	"netmem/internal/shard"
)

// The elastic scaling experiment: a fixed client population runs the
// Table 1a mix non-stop while the shard fleet sweeps StartShards →
// PeakShards → StartShards one join or drain at a time. The claims under
// test are the elastic tier's: no operation fails across any cutover, tail
// latency stays bounded while keys migrate, the donor's CPU during a
// migration stays within a whisker of its serving-only baseline (the
// migration is plain one-sided rmem WRITEs — cheap sender PIO, no server
// procedure on either end), and key movement per transition stays near the
// consistent-hash ideal K/N.

// ElasticStep is one plateau of the sweep: the transition into it (zero
// values for the first step) plus the hold-window measurements at the
// target size.
type ElasticStep struct {
	Target int // live shards during this step's hold window

	// Transition measurements.
	CutoverMs       float64 // wall-clock of the ScaleTo call
	MigratedBuckets int64   // dirty buckets pushed donor→owner
	EvictedBuckets  int64   // clean moved residents evicted
	MovedKeys       int     // tree handles whose owner changed
	IdealMoved      float64 // consistent-hash ideal: K/max(old,new)
	DonorUtil       float64 // mean donor-node CPU during the cutover
	DonorBase       float64 // same nodes' mean util in the preceding hold window

	// Client-side measurements over the transition plus the hold window
	// (ops issued while keys migrate count against this plateau's tail).
	Ops      int64
	Failed   int64
	P99Ms    float64
	MeanUtil float64 // mean live-shard CPU during the hold
}

// ElasticResult is the whole sweep.
type ElasticResult struct {
	Mode       dfs.Mode
	TokenCache bool
	Keys       int // tree handles tracked for movement accounting
	Steps      []ElasticStep

	TotalOps    int64
	TotalFailed int64
	MaxP99Ms    float64
	// WorstDonorDelta is the one-sided worst case of (DonorUtil -
	// DonorBase) across transitions: how much busier migration made the
	// busiest donor than plain serving.
	WorstDonorDelta float64
	// MovedWorstRatio is the worst MovedKeys/IdealMoved across transitions.
	MovedWorstRatio float64
	Cutovers        int64
	MigratedTotal   int64
	Strays          int // divergence strays after the sweep (want 0)
	Repaired        int
	Events          uint64
}

// ElasticConfig parameterizes the sweep.
type ElasticConfig struct {
	StartShards int // sweep start and end (default 2)
	PeakShards  int // sweep apex (default 8)
	Clients     int // fixed client population (default 8)
	Mode        dfs.Mode
	TokenCache  bool
	Hold        time.Duration // plateau hold window (default 150ms)
	ThinkTime   time.Duration
	Seed        int64
	Dirs        int
	PerDir      int
}

func (c *ElasticConfig) fill() {
	if c.StartShards <= 0 {
		c.StartShards = 2
	}
	if c.PeakShards <= c.StartShards {
		c.PeakShards = c.StartShards + 6
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Hold <= 0 {
		c.Hold = 150 * time.Millisecond
	}
	if c.ThinkTime < 0 {
		c.ThinkTime = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Dirs <= 0 {
		c.Dirs = 4
	}
	if c.PerDir <= 0 {
		c.PerDir = 8
	}
}

// RunElastic executes the sweep: shard slots on nodes 0..Peak-1 (only
// StartShards live at boot), clients on the nodes after.
func RunElastic(cfg ElasticConfig) (*ElasticResult, error) {
	cfg.fill()
	env := des.NewEnv()
	env.Seed(cfg.Seed)
	tr := obs.New(obs.Config{})
	env.SetTracer(tr)
	nodes := cfg.PeakShards + cfg.Clients
	cl := cluster.New(env, &model.Default, nodes)
	mgrs := make([]*rmem.Manager, nodes)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}

	var svc *shard.Service
	var mgr *shard.Manager
	var tree *Tree
	var setupErr error
	clerks := make([]*shard.Clerk, cfg.Clients)
	env.Spawn("setup", func(p *des.Proc) {
		svc = shard.NewService(p, mgrs[:cfg.StartShards], nodes, dfs.Geometry{})
		mgr = shard.NewManager(svc, mgrs[cfg.StartShards:cfg.PeakShards], shard.ManagerConfig{})
		tree, setupErr = BuildTreeOn(svc.Store, svc, cfg.Dirs, cfg.PerDir)
		if setupErr != nil {
			return
		}
		var copts []shard.ClerkOption
		if cfg.TokenCache {
			copts = append(copts, shard.WithTokenCache())
		}
		for i := 0; i < cfg.Clients; i++ {
			clerks[i] = shard.NewClerk(p, mgrs[cfg.PeakShards+i], svc, cfg.Mode, copts...)
		}
		if cfg.TokenCache {
			shard.ConnectTokenPeers(p, clerks...)
		}
	})
	if err := env.RunUntil(des.Time(500 * time.Millisecond)); err != nil {
		return nil, err
	}
	if setupErr != nil {
		return nil, setupErr
	}

	var keys []fstore.Handle
	keys = append(keys, tree.Files...)
	keys = append(keys, tree.Dirs...)
	keys = append(keys, tree.Links...)

	res := &ElasticResult{Mode: cfg.Mode, TokenCache: cfg.TokenCache, Keys: len(keys)}
	// box is the current plateau's recorder; the driver swaps in a fresh one
	// at each phase boundary (single-threaded DES: no races). Clients rebind
	// their Replayer to it every iteration, so each op lands in the plateau
	// that was live when it completed.
	box := NewRecorder()
	stop := false
	for i := 0; i < cfg.Clients; i++ {
		i := i
		env.SpawnDaemon(fmt.Sprintf("client%d", i), func(p *des.Proc) {
			gen := NewGenerator(cfg.Seed+int64(i), len(tree.Files), len(tree.Dirs))
			rep := &Replayer{Clerk: clerks[i], Tree: tree}
			for !stop {
				rep.Rec = box
				_ = rep.Do(p, gen.Next()) // failures land in box.Failed
				p.Sleep(cfg.ThinkTime)
			}
		})
	}

	// The sweep: StartShards → PeakShards → StartShards, one at a time.
	var sweep []int
	for s := cfg.StartShards; s <= cfg.PeakShards; s++ {
		sweep = append(sweep, s)
	}
	for s := cfg.PeakShards - 1; s >= cfg.StartShards; s-- {
		sweep = append(sweep, s)
	}

	var sweepErr error
	holdUtil := make(map[int]float64) // node → util in its last hold window
	env.Spawn("sweep", func(p *des.Proc) {
		defer func() { stop = true }()
		for _, target := range sweep {
			var step ElasticStep
			step.Target = target
			// Swap the recorder in before the transition: ops issued while
			// keys migrate land in the plateau they cut over into, so the
			// plateau's tail includes migration-inflated latencies instead
			// of silently dropping them.
			box = NewRecorder()
			if target != svc.Size() {
				pre := svc.Ring.Clone()
				// Donors: on a join every pre-member pushes; on a drain only
				// the leaver does.
				var donors []int
				if target > svc.Size() {
					donors = pre.Members()
				}
				mig0, ev0 := svc.MigratedBuckets, svc.EvictedBuckets
				preNodes := make(map[int]int)
				for _, s := range pre.Members() {
					preNodes[s] = svc.NodeOf(s)
					cl.Nodes[svc.NodeOf(s)].ResetCPUAcct()
				}
				t0 := p.Now()
				if err := mgr.ScaleTo(p, target); err != nil {
					sweepErr = fmt.Errorf("scale to %d: %w", target, err)
					return
				}
				t1 := p.Now()
				if target < pre.Size() {
					for _, s := range pre.Members() {
						if svc.Shards[s] == nil {
							donors = append(donors, s)
						}
					}
				}
				step.CutoverMs = time.Duration(t1.Sub(t0)).Seconds() * 1000
				step.MigratedBuckets = svc.MigratedBuckets - mig0
				step.EvictedBuckets = svc.EvictedBuckets - ev0
				for _, s := range donors {
					node := preNodes[s]
					step.DonorUtil += cl.Nodes[node].CPU.Utilization(t0)
					step.DonorBase += holdUtil[node]
				}
				if len(donors) > 0 {
					step.DonorUtil /= float64(len(donors))
					step.DonorBase /= float64(len(donors))
				}
				for _, h := range keys {
					if pre.Owner(h.U64()) != svc.Ring.Owner(h.U64()) {
						step.MovedKeys++
					}
				}
				den := pre.Size()
				if svc.Size() > den {
					den = svc.Size()
				}
				step.IdealMoved = float64(len(keys)) / float64(den)
				if d := step.DonorUtil - step.DonorBase; d > res.WorstDonorDelta {
					res.WorstDonorDelta = d
				}
				if step.IdealMoved > 0 {
					if r := float64(step.MovedKeys) / step.IdealMoved; r > res.MovedWorstRatio {
						res.MovedWorstRatio = r
					}
				}
			}

			// Hold window at the target size.
			ring, _ := svc.Membership().Current()
			for _, s := range ring.Members() {
				cl.Nodes[svc.NodeOf(s)].ResetCPUAcct()
			}
			h0 := p.Now()
			p.Sleep(cfg.Hold)
			for _, s := range ring.Members() {
				u := cl.Nodes[svc.NodeOf(s)].CPU.Utilization(h0)
				holdUtil[svc.NodeOf(s)] = u
				step.MeanUtil += u
			}
			step.MeanUtil /= float64(ring.Size())
			st := &box.Tenants[0]
			step.Ops = st.Ops
			step.Failed = st.Failed
			step.P99Ms = ms(st.Lat.P99())
			res.TotalOps += step.Ops
			res.TotalFailed += step.Failed
			if step.P99Ms > res.MaxP99Ms {
				res.MaxP99Ms = step.P99Ms
			}
			res.Steps = append(res.Steps, step)
		}
		strays, repaired, err := svc.CheckDivergence(p)
		if err != nil {
			sweepErr = fmt.Errorf("divergence check: %w", err)
			return
		}
		res.Strays, res.Repaired = strays, repaired
	})

	horizon := des.Time(time.Duration(len(sweep)+2) * (cfg.Hold + time.Second))
	if err := env.RunUntil(horizon); err != nil {
		return nil, err
	}
	if sweepErr != nil {
		return nil, sweepErr
	}
	if setupErr != nil {
		return nil, setupErr
	}
	res.Cutovers = svc.Cutovers
	res.MigratedTotal = svc.MigratedBuckets
	res.Events = env.Events()
	return res, nil
}
