package workload

import (
	"fmt"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/model"
	"netmem/internal/rmem"
	"netmem/internal/shard"
)

// The sharded scaling experiment: partitioning the namespace across N
// servers by consistent hashing should let aggregate throughput grow with
// N while each shard's CPU occupancy stays near the single-server
// baseline — the load is divided, not replicated. Clients scale
// proportionally with shards (ClientsPerShard each), so every point
// presents each shard with roughly the single-shard workload.

// ShardScalePoint is one (mode, shard-count) measurement.
type ShardScalePoint struct {
	Mode      dfs.Mode
	Shards    int
	Clients   int
	OpsDone   int64
	OpsPerSec float64
	ShardUtil []float64 // per-shard-node CPU utilization during the window
	MeanUtil  float64   // mean of ShardUtil
	MeanLatMs float64
	P99Ms     float64 // p99 per-operation latency, milliseconds
	TokenHits int64   // reads served from the token-coherent cache
	Events    uint64
}

// ShardScaleConfig parameterizes the experiment.
type ShardScaleConfig struct {
	Shards          int
	ClientsPerShard int
	Mode            dfs.Mode
	TokenCache      bool // layer the token-coherent client block cache
	Window          time.Duration
	ThinkTime       time.Duration
	Seed            int64
	Dirs            int
	PerDir          int
}

func (c *ShardScaleConfig) fill() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.ClientsPerShard <= 0 {
		c.ClientsPerShard = 4
	}
	if c.Window <= 0 {
		c.Window = 2 * time.Second
	}
	if c.ThinkTime < 0 {
		c.ThinkTime = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Dirs <= 0 {
		c.Dirs = 4
	}
	if c.PerDir <= 0 {
		c.PerDir = 8
	}
}

// RunShardScale executes one sharded scalability measurement: shard nodes
// 0..S-1, client nodes S..S+C-1, C = S * ClientsPerShard.
func RunShardScale(cfg ShardScaleConfig) (ShardScalePoint, error) {
	cfg.fill()
	clients := cfg.Shards * cfg.ClientsPerShard
	env := des.NewEnv()
	nodes := cfg.Shards + clients
	cl := cluster.New(env, &model.Default, nodes)
	mgrs := make([]*rmem.Manager, nodes)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}

	var svc *shard.Service
	var tree *Tree
	var setupErr error
	clerks := make([]*shard.Clerk, clients)
	env.Spawn("setup", func(p *des.Proc) {
		svc = shard.NewService(p, mgrs[:cfg.Shards], nodes, dfs.Geometry{})
		tree, setupErr = BuildTreeOn(svc.Store, svc, cfg.Dirs, cfg.PerDir)
		if setupErr != nil {
			return
		}
		var copts []shard.ClerkOption
		if cfg.TokenCache {
			copts = append(copts, shard.WithTokenCache())
		}
		for i := 0; i < clients; i++ {
			clerks[i] = shard.NewClerk(p, mgrs[cfg.Shards+i], svc, cfg.Mode, copts...)
		}
		if cfg.TokenCache {
			shard.ConnectTokenPeers(p, clerks...)
		}
	})
	if err := env.RunUntil(des.Time(500 * time.Millisecond)); err != nil {
		return ShardScalePoint{}, err
	}
	if setupErr != nil {
		return ShardScalePoint{}, setupErr
	}

	rec := NewRecorder()
	start := env.Now()
	for i := 0; i < cfg.Shards; i++ {
		cl.Nodes[i].ResetCPUAcct()
	}
	for i := 0; i < clients; i++ {
		i := i
		env.SpawnDaemon(fmt.Sprintf("client%d", i), func(p *des.Proc) {
			gen := NewGenerator(cfg.Seed+int64(i), len(tree.Files), len(tree.Dirs))
			// LocalCaching stays off for parity with RunScale: every op
			// flushes the sub-clerk caches. The token-coherent block cache
			// survives FlushLocal by design, so TokenCache still shows up —
			// as reads the servers never see.
			rep := &Replayer{Clerk: clerks[i], Tree: tree, Rec: rec}
			for {
				op := gen.Next()
				if err := rep.Do(p, op); err != nil {
					setupErr = fmt.Errorf("client %d: %v: %w", i, op.Activity, err)
					return
				}
				p.Sleep(cfg.ThinkTime)
			}
		})
	}
	if err := env.RunUntil(start.Add(cfg.Window)); err != nil {
		return ShardScalePoint{}, err
	}
	if setupErr != nil {
		return ShardScalePoint{}, setupErr
	}

	elapsed := time.Duration(env.Now().Sub(start))
	st := &rec.Tenants[0]
	pt := ShardScalePoint{
		Mode:    cfg.Mode,
		Shards:  cfg.Shards,
		Clients: clients,
		OpsDone: st.Ops,
		Events:  env.Events(),
	}
	pt.OpsPerSec = float64(st.Ops) / elapsed.Seconds()
	for i := 0; i < cfg.Shards; i++ {
		u := cl.Nodes[i].CPU.Utilization(start)
		pt.ShardUtil = append(pt.ShardUtil, u)
		pt.MeanUtil += u
	}
	pt.MeanUtil /= float64(cfg.Shards)
	for _, c := range clerks {
		pt.TokenHits += c.TokenHits
	}
	if st.Ops > 0 {
		pt.MeanLatMs = (st.SumLat / time.Duration(st.Ops)).Seconds() * 1000
		pt.P99Ms = ms(st.Lat.P99())
	}
	return pt, nil
}
