package workload

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// smallOpenLoop is the test-sized config: enough arrivals for the
// statistics, small enough to run in milliseconds of wall time.
func smallOpenLoop(shape Shape, theta float64) OpenLoopConfig {
	return OpenLoopConfig{
		Clients:       10_000,
		RatePerClient: 0.2,
		Window:        500 * time.Millisecond,
		Shape:         shape,
		ZipfTheta:     theta,
		Shards:        2,
		Replicas:      0,
		Lanes:         4,
		Seed:          7,
	}
}

// drain pulls every arrival out of a schedule.
func drain(s *Schedule) []Arrival {
	var out []Arrival
	for {
		a, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// TestScheduleDeterministic: the same seed yields the identical arrival
// stream, op for op; a different seed yields a different one.
func TestScheduleDeterministic(t *testing.T) {
	cfg := smallOpenLoop(ShapeDiurnal, 0.9)
	cfg.Fill()
	a := drain(NewSchedule(cfg, 64, 8))
	b := drain(NewSchedule(cfg, 64, 8))
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	cfg.Seed = 8
	c := drain(NewSchedule(cfg, 64, 8))
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical stream")
	}
}

// TestScheduleMonotoneInWindow: arrival times never go backward and stay
// inside the window, for every shape.
func TestScheduleMonotoneInWindow(t *testing.T) {
	for _, shape := range []Shape{ShapeSteady, ShapeDiurnal, ShapeFlash} {
		cfg := smallOpenLoop(shape, 0.9)
		cfg.Fill()
		prev := time.Duration(-1)
		for i, a := range drain(NewSchedule(cfg, 64, 8)) {
			if a.At < prev {
				t.Fatalf("%v: arrival %d out of order: %v after %v", shape, i, a.At, prev)
			}
			prev = a.At
			if a.At < 0 || a.At >= cfg.Window {
				t.Fatalf("%v: arrival %d outside window: %v", shape, i, a.At)
			}
			if a.Client < 0 || a.Client >= cfg.Clients {
				t.Fatalf("%v: client %d out of range", shape, a.Client)
			}
			if a.Tenant < 0 || a.Tenant >= len(cfg.Tenants) {
				t.Fatalf("%v: tenant %d out of range", shape, a.Tenant)
			}
		}
	}
}

// TestScheduleZipfMatchesTheta: the empirical key-frequency distribution
// of the generated stream matches the configured Zipf exponent within
// tolerance, at both the uniform and the skewed end.
func TestScheduleZipfMatchesTheta(t *testing.T) {
	const files = 32
	for _, theta := range []float64{0, 0.9, 1.2} {
		cfg := smallOpenLoop(ShapeSteady, theta)
		cfg.Clients = 100_000 // ~100k arrivals for tight frequencies
		cfg.RatePerClient = 1
		cfg.Window = time.Second
		cfg.Fill()
		z := NewZipf(files, theta)
		counts := make([]int64, files)
		var n int64
		for _, a := range drain(NewSchedule(cfg, files, 8)) {
			counts[a.Op.File]++
			n++
		}
		if n < 50_000 {
			t.Fatalf("theta=%.1f: only %d arrivals", theta, n)
		}
		for k := 0; k < files; k++ {
			want := z.Prob(k)
			got := float64(counts[k]) / float64(n)
			// Absolute tolerance: 1% plus 20% relative on the expected mass.
			if math.Abs(got-want) > 0.01+0.2*want {
				t.Errorf("theta=%.1f rank %d: frequency %.4f, want %.4f", theta, k, got, want)
			}
		}
		if theta > 0 && float64(counts[0]) <= float64(counts[files-1]) {
			t.Errorf("theta=%.1f: hottest rank not hotter than coldest (%d vs %d)",
				theta, counts[0], counts[files-1])
		}
	}
}

// TestShapeFlashBurst: the flash shape concentrates arrivals in the burst
// window — its arrival density there must be several times the baseline.
func TestShapeFlashBurst(t *testing.T) {
	cfg := smallOpenLoop(ShapeFlash, 0)
	cfg.Clients = 50_000
	cfg.RatePerClient = 1
	cfg.Window = time.Second
	cfg.Fill()
	var burst, rest int
	for _, a := range drain(NewSchedule(cfg, 64, 8)) {
		frac := float64(a.At) / float64(cfg.Window)
		if frac >= 0.45 && frac < 0.60 {
			burst++
		} else {
			rest++
		}
	}
	// Burst density: burst/0.15 vs rest/0.85; the shape ratio is 4.0/0.5 = 8.
	burstRate := float64(burst) / 0.15
	restRate := float64(rest) / 0.85
	if ratio := burstRate / restRate; ratio < 6 || ratio > 10 {
		t.Fatalf("flash burst density ratio %.2f, want ~8", ratio)
	}
}

// TestOpenLoopDeterministic: two identical small end-to-end runs produce
// byte-identical reports — the property the CI golden diff depends on.
func TestOpenLoopDeterministic(t *testing.T) {
	run := func() []byte {
		res, err := RunOpenLoop(smallOpenLoop(ShapeSteady, 0.9))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if res.Offered == 0 || res.Report.Total.Ops == 0 {
			t.Fatalf("degenerate run: %s", b)
		}
		return b
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatalf("identical configs diverged:\n%s\n%s", a, b)
	}
}

// TestOpenLoopBackpressure: starving the lane pool under the same offered
// load must shed arrivals at the bounded FIFO and inflate tail latency —
// the backpressure accounting the engine exists to surface.
func TestOpenLoopBackpressure(t *testing.T) {
	cfg := smallOpenLoop(ShapeFlash, 0.9)
	cfg.Lanes = 1
	cfg.MaxQueue = 32
	cfg.StragglerPerMille = 20
	res, err := RunOpenLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Errorf("1-lane flash crowd with a 32-deep FIFO shed nothing (offered %d, peak queue %d)",
			res.Offered, res.PeakQueue)
	}
	if res.Report.Total.Shed != res.Shed {
		t.Errorf("shed mismatch: result %d, report %d", res.Shed, res.Report.Total.Shed)
	}
	// The same starved pool behind a deep FIFO: nothing sheds, so the
	// backlog turns into queueing delay instead — deeper queue, fatter
	// tail. Shedding trades completed ops for a bounded tail.
	deep := cfg
	deep.MaxQueue = 1 << 20
	dres, err := RunOpenLoop(deep)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Shed != 0 {
		t.Errorf("unbounded FIFO shed %d arrivals", dres.Shed)
	}
	if dres.PeakQueue <= res.PeakQueue {
		t.Errorf("deep FIFO peaked at %d, not above the bounded %d", dres.PeakQueue, res.PeakQueue)
	}
	if dres.Report.Total.P99Ms <= res.Report.Total.P99Ms {
		t.Errorf("deep FIFO p99 %.2fms not above shedding p99 %.2fms",
			dres.Report.Total.P99Ms, res.Report.Total.P99Ms)
	}
}

// TestOpenLoopStragglers: straggler injection shows up in the count and
// the sum of op latencies.
func TestOpenLoopStragglers(t *testing.T) {
	cfg := smallOpenLoop(ShapeSteady, 0)
	cfg.StragglerPerMille = 50
	res, err := RunOpenLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stragglers == 0 {
		t.Fatalf("50‰ straggler rate injected none over %d ops", res.Offered)
	}
}
