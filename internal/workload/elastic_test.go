package workload

import (
	"testing"
	"time"

	"netmem/internal/dfs"
)

// A miniature sweep (2→3→2, short plateaus) through the full RunElastic
// harness: the invariants the fsbench gates enforce must hold at any scale.
func TestRunElasticSmallSweep(t *testing.T) {
	res, err := RunElastic(ElasticConfig{
		StartShards: 2,
		PeakShards:  3,
		Clients:     2,
		Mode:        dfs.DX,
		TokenCache:  true,
		Hold:        40 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 3 {
		t.Fatalf("steps = %d, want 3 (2→3→2)", len(res.Steps))
	}
	if res.Cutovers != 2 {
		t.Fatalf("cutovers = %d, want 2", res.Cutovers)
	}
	if res.TotalOps == 0 {
		t.Fatal("no operations completed during the sweep")
	}
	if res.TotalFailed != 0 {
		t.Fatalf("%d failed ops", res.TotalFailed)
	}
	if res.Strays != 0 {
		t.Fatalf("%d divergence strays after the sweep", res.Strays)
	}
	if res.Steps[1].Target != 3 || res.Steps[1].MovedKeys == 0 {
		t.Fatalf("join step: target=%d moved=%d", res.Steps[1].Target, res.Steps[1].MovedKeys)
	}
	if d := res.WorstDonorDelta; d > 0.10 {
		t.Fatalf("donor CPU delta %.3f exceeds the 0.100 bound", d)
	}
}
