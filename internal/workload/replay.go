package workload

import (
	"fmt"
	"time"

	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/fstore"
)

// Tree is the synthetic departmental file server content the trace runs
// against: exported font directories, source trees, and binaries, echoing
// §2's description of the measured server ("X-terminal fonts, source trees
// … and the /usr partition containing executable binaries").
type Tree struct {
	Files []fstore.Handle // regular files, read/write targets
	Dirs  []fstore.Handle // directories, lookup/readdir targets
	Links []fstore.Handle // symlinks, readlink targets
	Names [][]string      // per-directory entry names (for lookups)
}

// Warmer pre-loads store records into server cache areas: a single
// dfs.Server, or a shard.Service that warms each record into the shard the
// ring assigns it.
type Warmer interface {
	WarmFile(h fstore.Handle) error
	WarmDir(h fstore.Handle) error
}

// BuildTree populates the store with nDirs directories of nPerDir files
// each (8–16 KB), one symlink per directory, and warms every server cache
// area.
func BuildTree(srv *dfs.Server, nDirs, nPerDir int) (*Tree, error) {
	return BuildTreeOn(srv.Store, srv, nDirs, nPerDir)
}

// BuildTreeOn is BuildTree against an explicit store and warmer (the
// sharded tier's shared store warms through the service, not one server).
func BuildTreeOn(st *fstore.Store, srv Warmer, nDirs, nPerDir int) (*Tree, error) {
	t := &Tree{}
	for d := 0; d < nDirs; d++ {
		dirPath := fmt.Sprintf("/export/vol%d", d)
		var names []string
		for f := 0; f < nPerDir; f++ {
			name := fmt.Sprintf("obj%03d", f)
			size := 8192 + (f%2)*8192
			h, err := st.WriteFile(dirPath+"/"+name, make([]byte, size))
			if err != nil {
				return nil, err
			}
			t.Files = append(t.Files, h)
			names = append(names, name)
		}
		dh, _, err := st.ResolvePath(dirPath)
		if err != nil {
			return nil, err
		}
		lh, _, err := st.Symlink(dh, "latest", dirPath+"/obj000")
		if err != nil {
			return nil, err
		}
		names = append(names, "latest")
		t.Dirs = append(t.Dirs, dh)
		t.Links = append(t.Links, lh)
		t.Names = append(t.Names, names)
		if err := srv.WarmDir(dh); err != nil {
			return nil, err
		}
		if err := srv.WarmFile(lh); err != nil {
			return nil, err
		}
	}
	for _, h := range t.Files {
		if err := srv.WarmFile(h); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// FileAPI is the slice of the clerk surface the trace replays against —
// satisfied by both dfs.Clerk and the sharding-aware shard.Clerk, so one
// Replayer drives either tier.
type FileAPI interface {
	FlushLocal()
	GetAttr(p *des.Proc, h fstore.Handle) (fstore.Attr, error)
	SetAttr(p *des.Proc, h fstore.Handle, mode uint16, size int64) (fstore.Attr, error)
	Lookup(p *des.Proc, dir fstore.Handle, name string) (fstore.Handle, fstore.Attr, error)
	ReadLink(p *des.Proc, h fstore.Handle) (string, error)
	Read(p *des.Proc, h fstore.Handle, offset int64, count int) ([]byte, error)
	Write(p *des.Proc, h fstore.Handle, offset int64, data []byte) error
	ReadDir(p *des.Proc, h fstore.Handle, offset int64, count int) ([]byte, error)
	Null(p *des.Proc) error
	StatFS(p *des.Proc) (fstore.FSStat, error)
}

// Replayer applies trace operations to a clerk.
type Replayer struct {
	Clerk FileAPI
	Tree  *Tree

	// LocalCaching keeps the clerk's client-side cache between operations.
	// Off (the default) every operation exercises the clerk↔server path,
	// which is what the server-load experiments measure.
	LocalCaching bool

	// Rec, when set, receives every Do outcome under tenant index Tenant —
	// the shared reporting path for closed- and open-loop runs.
	Rec    *Recorder
	Tenant int

	// Ops counts applied operations per activity.
	Ops [numActivities]int64
}

// Do applies one operation and records its service latency (Apply start to
// completion) into Rec. Open-loop callers that account queueing delay
// record into Rec themselves and call Apply directly.
func (r *Replayer) Do(p *des.Proc, op TraceOp) error {
	t0 := p.Now()
	err := r.Apply(p, op)
	if r.Rec != nil {
		r.Rec.Record(r.Tenant, time.Duration(p.Now().Sub(t0)), err)
	}
	return err
}

// Apply executes one trace operation, mapping the Table 1a activity onto
// the file service API.
func (r *Replayer) Apply(p *des.Proc, op TraceOp) error {
	if !r.LocalCaching {
		r.Clerk.FlushLocal()
	}
	r.Ops[op.Activity]++
	t := r.Tree
	file := t.Files[op.File%len(t.Files)]
	dirIdx := op.Dir % len(t.Dirs)
	dir := t.Dirs[dirIdx]
	switch op.Activity {
	case ActGetAttr:
		_, err := r.Clerk.GetAttr(p, file)
		return err
	case ActLookup:
		names := t.Names[dirIdx]
		_, _, err := r.Clerk.Lookup(p, dir, names[op.File%len(names)])
		return err
	case ActRead:
		_, err := r.Clerk.Read(p, file, 0, op.Size)
		return err
	case ActNullPing:
		return r.Clerk.Null(p)
	case ActReadLink:
		_, err := r.Clerk.ReadLink(p, t.Links[dirIdx])
		return err
	case ActReadDir:
		_, err := r.Clerk.ReadDir(p, dir, 0, op.Size)
		return err
	case ActStatFS:
		_, err := r.Clerk.StatFS(p)
		return err
	case ActWrite:
		return r.Clerk.Write(p, file, 0, make([]byte, op.Size))
	case ActOther:
		// The "other" bucket (setattr/create/remove/…): a setattr is the
		// most common member.
		a, err := r.Clerk.GetAttr(p, file)
		if err != nil {
			return err
		}
		_, err = r.Clerk.SetAttr(p, file, a.Mode, a.Size)
		return err
	}
	return fmt.Errorf("workload: unknown activity %v", op.Activity)
}
