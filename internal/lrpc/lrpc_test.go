package lrpc

import (
	"errors"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/model"
)

func testNode(t *testing.T) (*des.Env, *cluster.Node) {
	t.Helper()
	env := des.NewEnv()
	c := cluster.New(env, &model.Default, 2)
	return env, c.Nodes[0]
}

func TestCallInvokesHandler(t *testing.T) {
	env, node := testNode(t)
	s := NewServer(node, "svc")
	s.Register("double", func(p *des.Proc, args any) (any, error) {
		return args.(int) * 2, nil
	})
	var got int
	env.Spawn("client", func(p *des.Proc) {
		v, err := s.Call(p, "double", 21)
		if err != nil {
			t.Error(err)
			return
		}
		got = v.(int)
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %d", got)
	}
	if s.Calls["double"] != 1 {
		t.Fatalf("call count = %d", s.Calls["double"])
	}
}

func TestCallChargesLocalRPCCost(t *testing.T) {
	env, node := testNode(t)
	s := NewServer(node, "svc")
	s.Register("nop", func(p *des.Proc, args any) (any, error) { return nil, nil })
	var elapsed time.Duration
	env.Spawn("client", func(p *des.Proc) {
		start := p.Now()
		if _, err := s.Call(p, "nop", nil); err != nil {
			t.Error(err)
		}
		elapsed = p.Now().Sub(start)
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if elapsed != model.Default.LocalRPC {
		t.Fatalf("null local RPC = %v, want %v", elapsed, model.Default.LocalRPC)
	}
}

func TestUnknownProcedure(t *testing.T) {
	env, node := testNode(t)
	s := NewServer(node, "svc")
	env.Spawn("client", func(p *des.Proc) {
		if _, err := s.Call(p, "missing", nil); err == nil {
			t.Error("no error for unknown procedure")
		}
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	env, node := testNode(t)
	s := NewServer(node, "svc")
	boom := errors.New("boom")
	s.Register("fail", func(p *des.Proc, args any) (any, error) { return nil, boom })
	env.Spawn("client", func(p *des.Proc) {
		if _, err := s.Call(p, "fail", nil); !errors.Is(err, boom) {
			t.Errorf("err = %v", err)
		}
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	_, node := testNode(t)
	s := NewServer(node, "svc")
	s.Register("p", func(*des.Proc, any) (any, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.Register("p", func(*des.Proc, any) (any, error) { return nil, nil })
}
