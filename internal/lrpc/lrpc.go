// Package lrpc models same-machine cross-address-space RPC between a
// client process and a server clerk. In the paper's structure (§3.2,
// Figure 1) all client↔service control transfers happen through this local
// path — "intra-node cross-domain calls, which have been shown to be
// amenable to high-performance implementation" (LRPC, L3/L4 IPC) — while
// cross-machine interactions use pure data transfer.
//
// The simulation models the LRPC hand-off the way LRPC itself works: the
// client thread donates its execution context to the server domain, so the
// handler runs synchronously in the caller's simulated process with a
// fixed round-trip transport charge on the node's CPU.
package lrpc

import (
	"fmt"

	"netmem/internal/cluster"
	"netmem/internal/des"
)

// Handler is a procedure exported by a local server. It runs on the
// caller's simulated process (context donation); any CPU it consumes is
// charged by the handler itself.
type Handler func(p *des.Proc, args any) (any, error)

// Server is a local-RPC dispatch table for one service on one node.
type Server struct {
	node  *cluster.Node
	name  string
	procs map[string]Handler

	// Calls counts invocations per procedure.
	Calls map[string]int64
}

// NewServer creates an empty local-RPC server for a service.
func NewServer(node *cluster.Node, name string) *Server {
	return &Server{
		node:  node,
		name:  name,
		procs: make(map[string]Handler),
		Calls: make(map[string]int64),
	}
}

// Node returns the node the server lives on.
func (s *Server) Node() *cluster.Node { return s.node }

// Register installs a procedure. Registering a duplicate name panics —
// it is a programming error in service construction.
func (s *Server) Register(proc string, h Handler) {
	if _, dup := s.procs[proc]; dup {
		panic(fmt.Sprintf("lrpc: %s: duplicate procedure %q", s.name, proc))
	}
	s.procs[proc] = h
}

// Call performs a synchronous local RPC: the full protection-domain
// crossing (trap, argument copy, domain switch, return) is charged as the
// model's LocalRPC cost, then the handler runs in the caller's process.
// The caller is blocked for the duration, exactly as in Figure 1.
func (s *Server) Call(p *des.Proc, proc string, args any) (any, error) {
	h, ok := s.procs[proc]
	if !ok {
		return nil, fmt.Errorf("lrpc: %s: no procedure %q", s.name, proc)
	}
	s.node.UseCPU(p, cluster.CatClient, s.node.P.LocalRPC)
	s.Calls[proc]++
	return h(p, args)
}
