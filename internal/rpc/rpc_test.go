package rpc

import (
	"bytes"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/model"
)

func pair(t *testing.T) (*des.Env, *cluster.Cluster, *Endpoint, *Endpoint) {
	t.Helper()
	env := des.NewEnv()
	c := cluster.New(env, &model.Default, 2)
	return env, c, NewEndpoint(c.Nodes[0]), NewEndpoint(c.Nodes[1])
}

func TestCallRoundTrip(t *testing.T) {
	env, _, cl, sv := pair(t)
	sv.Serve().Register(1, 1, func(p *des.Proc, src int, args []byte) ([]byte, error) {
		return append([]byte("echo:"), args...), nil
	})
	var got []byte
	env.Spawn("client", func(p *des.Proc) {
		r, err := cl.Call(p, 1, 1, 1, []byte("hello"))
		if err != nil {
			t.Error(err)
			return
		}
		got = r
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("echo:hello")) {
		t.Fatalf("got %q", got)
	}
}

func TestCallUnknownProcedure(t *testing.T) {
	env, _, cl, sv := pair(t)
	sv.Serve() // server exists but has no procedures
	env.Spawn("client", func(p *des.Proc) {
		if _, err := cl.Call(p, 1, 9, 9, nil); err != ErrNoService {
			t.Errorf("err = %v, want ErrNoService", err)
		}
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestNullRPCControlTransferShare(t *testing.T) {
	// §2 cites Firefly RPC: control transfer is a substantial share of a
	// null call. Check our baseline spends a meaningful fraction of a
	// no-argument, no-result call in pure control transfer (threads,
	// scheduling) on both machines combined.
	env, c, cl, sv := pair(t)
	sv.Serve().Register(1, 1, func(p *des.Proc, src int, args []byte) ([]byte, error) {
		return nil, nil
	})
	var elapsed time.Duration
	env.Spawn("client", func(p *des.Proc) {
		start := p.Now()
		if _, err := cl.Call(p, 1, 1, 1, nil); err != nil {
			t.Error(err)
		}
		elapsed = p.Now().Sub(start)
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	control := c.Nodes[0].CPUAcct[cluster.CatControl] + c.Nodes[1].CPUAcct[cluster.CatControl]
	share := float64(control) / float64(elapsed)
	if share < 0.15 || share > 0.60 {
		t.Fatalf("control-transfer share of null RPC = %.2f (%v of %v); want a substantial fraction", share, control, elapsed)
	}
}

func TestServerThreadsServeConcurrently(t *testing.T) {
	// Three clients on a switched cluster call a slow procedure; the
	// server must dispatch a thread per request, serializing only on the
	// CPU, and all calls must complete.
	env := des.NewEnv()
	c := cluster.New(env, &model.Default, 4)
	sv := NewEndpoint(c.Nodes[0])
	sv.Serve().Register(1, 1, func(p *des.Proc, src int, args []byte) ([]byte, error) {
		p.Env() // no-op; procedure is pure dispatch cost
		return []byte{byte(src)}, nil
	})
	done := 0
	for i := 1; i < 4; i++ {
		i := i
		ep := NewEndpoint(c.Nodes[i])
		env.Spawn("client", func(p *des.Proc) {
			r, err := ep.Call(p, 0, 1, 1, nil)
			if err != nil || int(r[0]) != i {
				t.Errorf("client %d: %v %v", i, r, err)
				return
			}
			done++
		})
	}
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
	if sv.Serve().Calls != 3 {
		t.Fatalf("server calls = %d", sv.Serve().Calls)
	}
}

func TestTrafficAccounting(t *testing.T) {
	env, _, cl, sv := pair(t)
	sv.Serve().Register(1, 1, func(p *des.Proc, src int, args []byte) ([]byte, error) {
		return make([]byte, 1024), nil
	})
	env.Spawn("client", func(p *des.Proc) {
		if _, err := cl.Call(p, 1, 1, 1, make([]byte, 16)); err != nil {
			t.Error(err)
		}
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if cl.PayloadBytes() != 16 || cl.OverheadBytes() != HeaderOverhead {
		t.Fatalf("client: payload=%d overhead=%d", cl.PayloadBytes(), cl.OverheadBytes())
	}
	if sv.PayloadBytes() != 1024 || sv.OverheadBytes() != HeaderOverhead {
		t.Fatalf("server: payload=%d overhead=%d", sv.PayloadBytes(), sv.OverheadBytes())
	}
}

func TestBigPayloadRoundTrip(t *testing.T) {
	env, _, cl, sv := pair(t)
	blob := make([]byte, 8192)
	for i := range blob {
		blob[i] = byte(i * 13)
	}
	sv.Serve().Register(2, 7, func(p *des.Proc, src int, args []byte) ([]byte, error) {
		return args, nil
	})
	env.Spawn("client", func(p *des.Proc) {
		r, err := cl.Call(p, 1, 2, 7, blob)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(r, blob) {
			t.Error("8K payload corrupted through RPC")
		}
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestControlTransferShareShrinksWithResultSize(t *testing.T) {
	// §2 cites Firefly RPC: control transfer is 17% of a null call but
	// only 7% of a call returning 1440 bytes — the fixed control cost
	// amortizes over the transfer. Our baseline must show the same
	// qualitative drop (roughly half the share, give or take).
	measure := func(resultSize int) (share float64) {
		env := des.NewEnv()
		c := cluster.New(env, &model.Default, 2)
		cl, sv := NewEndpoint(c.Nodes[0]), NewEndpoint(c.Nodes[1])
		sv.Serve().Register(1, 1, func(p *des.Proc, src int, args []byte) ([]byte, error) {
			return make([]byte, resultSize), nil
		})
		var elapsed time.Duration
		env.Spawn("client", func(p *des.Proc) {
			start := p.Now()
			if _, err := cl.Call(p, 1, 1, 1, nil); err != nil {
				t.Error(err)
			}
			elapsed = time.Duration(p.Now().Sub(start))
		})
		if err := env.RunUntil(des.Time(time.Second)); err != nil {
			t.Fatal(err)
		}
		control := c.Nodes[0].CPUAcct[cluster.CatControl] + c.Nodes[1].CPUAcct[cluster.CatControl]
		return float64(control) / float64(elapsed)
	}
	nullShare := measure(0)
	bigShare := measure(1440)
	t.Logf("control-transfer share: null %.0f%%, 1440B result %.0f%% (Firefly: 17%% / 7%%)",
		nullShare*100, bigShare*100)
	if bigShare >= nullShare {
		t.Fatal("share did not shrink with result size")
	}
	if ratio := bigShare / nullShare; ratio < 0.25 || ratio > 0.75 {
		t.Fatalf("share ratio %.2f; Firefly's 7/17 ≈ 0.41", ratio)
	}
}

func TestConcurrentCallsFromOneClient(t *testing.T) {
	// Two processes on the same machine call concurrently; the endpoint's
	// request matching must keep the replies straight.
	env, _, cl, sv := pair(t)
	sv.Serve().Register(1, 1, func(p *des.Proc, src int, args []byte) ([]byte, error) {
		return append([]byte("r:"), args...), nil
	})
	results := map[string]string{}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		name := name
		env.Spawn("caller", func(p *des.Proc) {
			r, err := cl.Call(p, 1, 1, 1, []byte(name))
			if err != nil {
				t.Error(err)
				return
			}
			results[name] = string(r)
		})
	}
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if results[name] != "r:"+name {
			t.Fatalf("%s got %q", name, results[name])
		}
	}
}
