// Package rpc implements the traditional baseline the paper argues
// against: request/response remote procedure call over the ATM network,
// with stub marshaling and the full §2 control-transfer inventory:
//
//  1. block the client's thread and reschedule the client's processor,
//  2. process the RPC message packet in the destination operating system,
//  3. schedule, dispatch, and execute the server thread,
//  4. reschedule the server's processor on return by the server thread,
//  5. process the reply packet on the client's operating system,
//  6. schedule and resume the original client thread.
//
// Every call transfers both data and control, whether or not the control
// transfer is useful — that coupling is exactly what the remote-memory
// structure removes. The package also accounts wire bytes split into
// payload and RPC overhead (headers, identifiers, marshaling), feeding the
// Table 1b control-vs-data traffic breakdown.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"netmem/internal/cluster"
	"netmem/internal/des"
)

// Proto is the cluster protocol id for RPC traffic.
const Proto byte = 0x02

// header: type(1) svc(2) proc(2) req(4) status(1) = 10 bytes, plus the
// cluster proto byte. On top of that every call carries marshaled
// communication identifiers (the Table 1b "control traffic": file handles,
// credentials, XIDs); HeaderOverhead is the fixed per-message total.
const headerLen = 10

// HeaderOverhead is the per-message RPC overhead in wire bytes: the
// header plus marshaled identifiers/credentials, matching NFS/SunRPC-era
// envelopes. Used by the traffic accounting.
const HeaderOverhead = headerLen + 54

const (
	kindCall byte = 1
	kindRet  byte = 2
)

// ErrNoService is returned for calls to unregistered services/procedures.
var ErrNoService = errors.New("rpc: no such service or procedure")

// errRemote is the wire status for a handler error.
const statusErr = 1

// Handler implements one remote procedure on the server: it runs on a
// freshly dispatched server thread and returns the marshaled result.
type Handler func(p *des.Proc, src int, args []byte) ([]byte, error)

// Server dispatches incoming calls to registered procedures.
type Server struct {
	node  *cluster.Node
	procs map[uint32]Handler

	// Calls counts served requests.
	Calls int64
}

type endpoint struct {
	node *cluster.Node

	pending map[uint32]*call
	nextReq uint32

	server *Server

	// Traffic accounting (both directions, this node's sends).
	PayloadBytes  int64
	OverheadBytes int64
}

type call struct {
	done   bool
	err    error
	result []byte
	q      *des.WaitQueue
}

// Endpoint is the per-node RPC runtime: client-side pending calls plus the
// optional server dispatch table.
type Endpoint struct{ e *endpoint }

// NewEndpoint installs the RPC runtime on a node.
func NewEndpoint(node *cluster.Node) *Endpoint {
	e := &endpoint{node: node, pending: make(map[uint32]*call)}
	node.RegisterProto(Proto, e.handle)
	return &Endpoint{e}
}

// Serve attaches a server dispatch table to the endpoint.
func (ep *Endpoint) Serve() *Server {
	if ep.e.server == nil {
		ep.e.server = &Server{node: ep.e.node, procs: make(map[uint32]Handler)}
	}
	return ep.e.server
}

// PayloadBytes reports payload bytes this endpoint has sent.
func (ep *Endpoint) PayloadBytes() int64 { return ep.e.PayloadBytes }

// OverheadBytes reports RPC-overhead bytes this endpoint has sent.
func (ep *Endpoint) OverheadBytes() int64 { return ep.e.OverheadBytes }

func key(svc, proc uint16) uint32 { return uint32(svc)<<16 | uint32(proc) }

// Register installs a procedure under (svc, proc).
func (s *Server) Register(svc, proc uint16, h Handler) {
	k := key(svc, proc)
	if _, dup := s.procs[k]; dup {
		panic(fmt.Sprintf("rpc: duplicate procedure %d:%d", svc, proc))
	}
	s.procs[k] = h
}

// Call performs a synchronous RPC to (svc, proc) on node dst: marshal,
// send, block the calling thread, and return the unmarshaled result. All
// six §2 control-transfer steps are charged to the appropriate CPUs.
func (ep *Endpoint) Call(p *des.Proc, dst int, svc, proc uint16, args []byte) ([]byte, error) {
	e := ep.e
	n := e.node

	// Marshal arguments (stub) and block the client thread (steps 1).
	n.UseCPU(p, cluster.CatClient, n.P.MarshalFixed+des.Duration(len(args))*n.P.MarshalPerByte)
	n.UseCPU(p, cluster.CatControl, n.P.ThreadBlock)

	e.nextReq++
	req := e.nextReq
	c := &call{q: des.NewWaitQueue(n.Env)}
	e.pending[req] = c

	msg := make([]byte, headerLen, headerLen+len(args))
	msg[0] = kindCall
	binary.BigEndian.PutUint16(msg[1:], svc)
	binary.BigEndian.PutUint16(msg[3:], proc)
	binary.BigEndian.PutUint32(msg[5:], req)
	msg = append(msg, args...)
	// The identifier/credential envelope rides along as padding bytes.
	msg = append(msg, make([]byte, HeaderOverhead-headerLen)...)
	e.PayloadBytes += int64(len(args))
	e.OverheadBytes += HeaderOverhead
	n.SendFrame(p, dst, Proto, cluster.CatClient, msg)

	for !c.done {
		c.q.Wait(p)
	}
	// Step 6: schedule and resume the original client thread.
	n.UseCPU(p, cluster.CatControl, n.P.ThreadDispatch)
	// Unmarshal results.
	n.UseCPU(p, cluster.CatClient, n.P.MarshalFixed+des.Duration(len(c.result))*n.P.MarshalPerByte)
	return c.result, c.err
}

func (e *endpoint) handle(p *des.Proc, src int, frame []byte) {
	if len(frame) < headerLen {
		e.node.Faults = append(e.node.Faults, fmt.Errorf("rpc: short frame"))
		return
	}
	kind := frame[0]
	svc := binary.BigEndian.Uint16(frame[1:])
	proc := binary.BigEndian.Uint16(frame[3:])
	req := binary.BigEndian.Uint32(frame[5:])
	status := frame[9]
	body := frame[headerLen:]
	if len(body) >= HeaderOverhead-headerLen {
		body = body[:len(body)-(HeaderOverhead-headerLen)] // strip envelope
	}

	switch kind {
	case kindCall:
		// Step 2: packet processing in the destination OS.
		e.node.UseCPU(p, cluster.CatRx, e.node.P.PacketProcess)
		args := append([]byte(nil), body...)
		// Step 3: schedule, dispatch, and execute the server thread.
		e.node.Env.Spawn(fmt.Sprintf("rpc.server%d.req%d", e.node.ID, req), func(sp *des.Proc) {
			e.serve(sp, src, svc, proc, req, args)
		})
	case kindRet:
		// Step 5: reply packet processing on the client's OS.
		e.node.UseCPU(p, cluster.CatRx, e.node.P.PacketProcess)
		c, ok := e.pending[req]
		if !ok {
			return
		}
		delete(e.pending, req)
		if status == statusErr {
			c.err = fmt.Errorf("rpc: remote error: %s", body)
			if string(body) == ErrNoService.Error() {
				c.err = ErrNoService
			}
		} else {
			c.result = append([]byte(nil), body...)
		}
		c.done = true
		c.q.WakeAll()
	}
}

func (e *endpoint) serve(sp *des.Proc, src int, svc, proc uint16, req uint32, args []byte) {
	n := e.node
	n.UseCPU(sp, cluster.CatControl, n.P.ThreadDispatch)

	var result []byte
	var err error
	if e.server == nil {
		err = ErrNoService
	} else if h, ok := e.server.procs[key(svc, proc)]; !ok {
		err = ErrNoService
	} else {
		// Unmarshal + procedure invocation + the handler itself.
		n.UseCPU(sp, cluster.CatRx, n.P.MarshalFixed+des.Duration(len(args))*n.P.MarshalPerByte)
		n.UseCPU(sp, cluster.CatProc, n.P.ProcInvoke)
		e.server.Calls++
		result, err = h(sp, src, args)
	}

	// Marshal the reply and send (then step 4: reschedule on return).
	rep := make([]byte, headerLen, headerLen+len(result))
	rep[0] = kindRet
	binary.BigEndian.PutUint16(rep[1:], svc)
	binary.BigEndian.PutUint16(rep[3:], proc)
	binary.BigEndian.PutUint32(rep[5:], req)
	if err != nil {
		rep[9] = statusErr
		rep = append(rep, err.Error()...)
	} else {
		rep = append(rep, result...)
	}
	rep = append(rep, make([]byte, HeaderOverhead-headerLen)...)
	n.UseCPU(sp, cluster.CatReply, n.P.MarshalFixed+des.Duration(len(result))*n.P.MarshalPerByte)
	e.PayloadBytes += int64(len(result))
	e.OverheadBytes += HeaderOverhead
	n.SendFrame(sp, src, Proto, cluster.CatReply, rep)
	n.UseCPU(sp, cluster.CatControl, n.P.ThreadBlock)
}
