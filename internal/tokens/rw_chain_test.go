package tokens

import (
	"encoding/binary"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/model"
	"netmem/internal/rmem"
)

// Chain-aware RW tokens: the regression battery for the stale-replica-read
// window. A write grant that recalls only the home's table word leaves
// every chain member's exported frame readable with the pre-write bytes —
// a token-holding reader would keep serving them. SetChain closes the
// window: the grant completes only after the recall poison has landed on
// *all* members, and read grants stamp the home's published watermark as
// their freshness floor.

const (
	chainTok     = 5
	frameStride  = 64
	verStride    = 8
	liveVer      = 0x00010002 // epoch 1, sequence 2: even, nonzero
	chainTestTok = 3
)

func frameOffAt(tok int) int { return tok * frameStride }
func verOffAt(tok int) int   { return tok * verStride }

// chainRig extends the RW rig with two fake chain members and a home
// watermark table: member segments carry a live (even-versioned) frame
// head, the state segment publishes (epoch=1, ver=liveVer) for every
// token.
type chainRig struct {
	*rwRig
	members []*rmem.Segment // exported by the member nodes
	state   *rmem.Segment   // exported by the home
}

func newChainRig(t *testing.T, nClients, nTokens int) *chainRig {
	t.Helper()
	env := des.NewEnv()
	// Nodes: home 0, clients 1..nClients, members after.
	const nMembers = 2
	cl := cluster.New(env, &model.Default, nClients+1+nMembers)
	r := &chainRig{rwRig: &rwRig{env: env, cl: cl}}
	mgrs := make([]*rmem.Manager, nClients+1+nMembers)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}
	env.Spawn("setup", func(p *des.Proc) {
		r.table = NewTable(p, mgrs[0], nTokens)
		id, gen, size := r.table.Coordinates()
		r.state = mgrs[0].Export(p, nTokens*verStride)
		r.state.SetDefaultRights(rmem.RightRead | rmem.RightWrite)
		for tok := 0; tok < nTokens; tok++ {
			binary.BigEndian.PutUint32(r.state.Bytes()[verOffAt(tok):], 1)
			binary.BigEndian.PutUint32(r.state.Bytes()[verOffAt(tok)+4:], liveVer)
		}
		for m := 0; m < nMembers; m++ {
			seg := mgrs[nClients+1+m].Export(p, nTokens*frameStride)
			seg.SetDefaultRights(rmem.RightRead | rmem.RightWrite)
			for tok := 0; tok < nTokens; tok++ {
				binary.BigEndian.PutUint32(seg.Bytes()[frameOffAt(tok):], liveVer)
			}
			r.members = append(r.members, seg)
		}
		for i := 1; i <= nClients; i++ {
			r.clients = append(r.clients, NewRWClient(p, mgrs[i], 0, id, gen, size, len(mgrs)))
		}
		for i, ci := range r.clients {
			for j, cj := range r.clients {
				if i == j {
					continue
				}
				rid, rgen, rsize := cj.RevocationChannel()
				ci.Connect(p, j+1, rid, rgen, rsize)
				pid, pgen, psize := ci.PeerReply(j + 1)
				cj.AttachPeer(p, i+1, pid, pgen, psize)
			}
		}
	})
	if err := env.RunUntil(des.Time(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	return r
}

// wireChain teaches one client the rig's chain (retransmitting member
// imports, per the SetChain contract).
func (r *chainRig) wireChain(p *des.Proc, c *RWClient) {
	st := c.m.Import(p, 0, r.state.ID(), r.state.Gen(), r.state.Size())
	st.SetReliable(true)
	var members []*rmem.Import
	for i, seg := range r.members {
		imp := c.m.Import(p, len(r.clients)+1+i, seg.ID(), seg.Gen(), seg.Size())
		imp.SetReliable(true)
		members = append(members, imp)
	}
	c.SetChain(st, verOffAt, members, frameOffAt)
}

func (r *chainRig) headWord(m, tok int) uint32 {
	return binary.BigEndian.Uint32(r.members[m].Bytes()[frameOffAt(tok):])
}

// TestRWChainRecallOnWriteGrant is the regression proper: the write grant
// must poison the frame head on every chain member before returning —
// otherwise a reader holding a stale token floor could keep pulling the
// pre-write frame from a member the home's CAS never touched.
func TestRWChainRecallOnWriteGrant(t *testing.T) {
	r := newChainRig(t, 2, 8)
	r.run(t, func(p *des.Proc) {
		writer := r.clients[0]
		r.wireChain(p, writer)
		if err := writer.AcquireWrite(p, chainTok, time.Second); err != nil {
			t.Fatal(err)
		}
		for m := range r.members {
			w := r.headWord(m, chainTok)
			if w%2 == 0 {
				t.Errorf("member %d frame head %#x still even after write grant: the pre-write frame is still servable", m, w)
			}
		}
		// Untouched tokens keep their live frames.
		for m := range r.members {
			if w := r.headWord(m, chainTestTok); w != liveVer {
				t.Errorf("member %d token %d frame head %#x, want untouched %#x", m, chainTestTok, w, liveVer)
			}
		}
		if writer.ChainRecalls != 1 {
			t.Errorf("ChainRecalls = %d, want 1", writer.ChainRecalls)
		}
		if writer.ChainRecallErrors != 0 {
			t.Errorf("ChainRecallErrors = %d, want 0", writer.ChainRecallErrors)
		}
	})
}

// TestRWChainWindowWithoutRecall documents the window the recall closes:
// a client that never learned the chain leaves every member's frame
// readable across its write grant. This is the pre-fix behavior — if this
// test starts failing because the grant path learned to poison without
// SetChain, the recall plumbing has moved and the regression above should
// move with it.
func TestRWChainWindowWithoutRecall(t *testing.T) {
	r := newChainRig(t, 2, 8)
	r.run(t, func(p *des.Proc) {
		writer := r.clients[0] // no wireChain: the home's CAS is all it knows
		if err := writer.AcquireWrite(p, chainTok, time.Second); err != nil {
			t.Fatal(err)
		}
		for m := range r.members {
			if w := r.headWord(m, chainTok); w != liveVer {
				t.Errorf("member %d frame head %#x changed without a chain recall", m, w)
			}
		}
		if writer.ChainRecalls != 0 {
			t.Errorf("ChainRecalls = %d without SetChain, want 0", writer.ChainRecalls)
		}
	})
}

// TestRWChainWatermarkStamp covers the freshness floor: read grants stamp
// the home's published (epoch, version) pair; a revocation or release
// drops the stamp; a write-held token never exposes one (its write-behind
// may be ahead of the chain); and StampWatermark lazily stamps a token
// that predates SetChain.
func TestRWChainWatermarkStamp(t *testing.T) {
	r := newChainRig(t, 2, 8)
	r.run(t, func(p *des.Proc) {
		reader, writer := r.clients[0], r.clients[1]
		r.wireChain(p, reader)
		r.wireChain(p, writer)

		if err := reader.AcquireRead(p, chainTok, time.Second); err != nil {
			t.Fatal(err)
		}
		epoch, ver, ok := reader.Watermark(chainTok)
		if !ok || epoch != 1 || ver != liveVer {
			t.Fatalf("read grant stamped (%d, %#x, %v), want (1, %#x, true)", epoch, ver, ok, uint32(liveVer))
		}

		// The writer's grant recalls the reader; the stamp must die with the
		// token — a revoked floor is nobody's freshness guarantee.
		if err := writer.AcquireWrite(p, chainTok, time.Second); err != nil {
			t.Fatal(err)
		}
		if !reader.HoldsRead(chainTok) {
			if _, _, ok := reader.Watermark(chainTok); ok {
				t.Error("revoked read token still exposes a watermark")
			}
		}
		// A write-held token must refuse to stamp: the holder's write-behind
		// is ahead of anything the chain has applied.
		if _, _, ok := writer.StampWatermark(p, chainTok); ok {
			t.Error("StampWatermark granted a floor on a write-held token")
		}
		if err := writer.ReleaseWrite(p, chainTok); err != nil {
			t.Fatal(err)
		}

		// Lazy stamping: a token acquired before SetChain has no floor until
		// StampWatermark fills it in.
		late := r.clients[0]
		if err := late.AcquireRead(p, chainTestTok, time.Second); err != nil {
			t.Fatal(err)
		}
		late.ClearChain()
		if _, _, ok := late.StampWatermark(p, chainTestTok); ok {
			t.Error("StampWatermark produced a floor with no chain attached")
		}
		r.wireChain(p, late)
		if _, _, ok := late.Watermark(chainTestTok); ok {
			t.Error("SetChain resurrected a watermark it never stamped")
		}
		epoch, ver, ok = late.StampWatermark(p, chainTestTok)
		if !ok || epoch != 1 || ver != liveVer {
			t.Errorf("lazy stamp gave (%d, %#x, %v), want (1, %#x, true)", epoch, ver, ok, uint32(liveVer))
		}
	})
}
