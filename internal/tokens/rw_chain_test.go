package tokens

import (
	"encoding/binary"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/model"
	"netmem/internal/rmem"
)

// Chain-aware RW tokens: the regression battery for the stale-replica-read
// window. A write grant that recalls only the home's table word leaves
// every chain member's exported frame readable with the pre-write bytes —
// a token-holding reader would keep serving them. SetChain closes the
// window: the grant completes only after the recall marker has landed at
// the home and the poison word has landed on *all* members, and read
// grants stamp the home's published watermark as their freshness floor —
// refusing to stamp at all while a recall is unresolved (R != D != C).

const (
	chainTok     = 5
	frameStride  = 64 // poison u32 + head u64 (the rig carries no body)
	verStride    = 24 // ver u64 | R u32 | D u32 | C u32 | pad
	chainTestTok = 3
)

// liveVer is epoch 1, sequence 2: even, nonzero low half.
const liveVer = uint64(1)<<32 | 2

func frameOffAt(tok int) int { return tok * frameStride }
func verOffAt(tok int) int   { return tok * verStride }

// chainRig extends the RW rig with two fake chain members and a home
// watermark table: member slots carry a clean poison word and a live
// (even-versioned) frame head, the state segment publishes ver=liveVer
// with quiesced recall markers (R == D == C == 0) for every token.
type chainRig struct {
	*rwRig
	members []*rmem.Segment // exported by the member nodes
	state   *rmem.Segment   // exported by the home
}

func newChainRig(t *testing.T, nClients, nTokens int) *chainRig {
	t.Helper()
	env := des.NewEnv()
	// Nodes: home 0, clients 1..nClients, members after.
	const nMembers = 2
	cl := cluster.New(env, &model.Default, nClients+1+nMembers)
	r := &chainRig{rwRig: &rwRig{env: env, cl: cl}}
	mgrs := make([]*rmem.Manager, nClients+1+nMembers)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}
	env.Spawn("setup", func(p *des.Proc) {
		r.table = NewTable(p, mgrs[0], nTokens)
		id, gen, size := r.table.Coordinates()
		r.state = mgrs[0].Export(p, nTokens*verStride)
		r.state.SetDefaultRights(rmem.RightRead | rmem.RightWrite)
		for tok := 0; tok < nTokens; tok++ {
			binary.BigEndian.PutUint64(r.state.Bytes()[verOffAt(tok):], liveVer)
		}
		for m := 0; m < nMembers; m++ {
			seg := mgrs[nClients+1+m].Export(p, nTokens*frameStride)
			seg.SetDefaultRights(rmem.RightRead | rmem.RightWrite)
			for tok := 0; tok < nTokens; tok++ {
				binary.BigEndian.PutUint64(seg.Bytes()[frameOffAt(tok)+4:], liveVer)
			}
			r.members = append(r.members, seg)
		}
		for i := 1; i <= nClients; i++ {
			r.clients = append(r.clients, NewRWClient(p, mgrs[i], 0, id, gen, size, len(mgrs)))
		}
		for i, ci := range r.clients {
			for j, cj := range r.clients {
				if i == j {
					continue
				}
				rid, rgen, rsize := cj.RevocationChannel()
				ci.Connect(p, j+1, rid, rgen, rsize)
				pid, pgen, psize := ci.PeerReply(j + 1)
				cj.AttachPeer(p, i+1, pid, pgen, psize)
			}
		}
	})
	if err := env.RunUntil(des.Time(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	return r
}

// wireChain teaches one client the rig's chain (retransmitting member
// imports, per the SetChain contract).
func (r *chainRig) wireChain(p *des.Proc, c *RWClient) {
	st := c.m.Import(p, 0, r.state.ID(), r.state.Gen(), r.state.Size())
	st.SetReliable(true)
	var members []*rmem.Import
	for i, seg := range r.members {
		imp := c.m.Import(p, len(r.clients)+1+i, seg.ID(), seg.Gen(), seg.Size())
		imp.SetReliable(true)
		members = append(members, imp)
	}
	c.SetChain(st, verOffAt, members, frameOffAt)
}

func (r *chainRig) poisonWord(m, tok int) uint32 {
	return binary.BigEndian.Uint32(r.members[m].Bytes()[frameOffAt(tok):])
}

func (r *chainRig) headWord(m, tok int) uint64 {
	return binary.BigEndian.Uint64(r.members[m].Bytes()[frameOffAt(tok)+4:])
}

// marker words in the home's state segment.
func (r *chainRig) stateWord(tok, off int) uint32 {
	return binary.BigEndian.Uint32(r.state.Bytes()[verOffAt(tok)+off:])
}

// TestRWChainRecallOnWriteGrant is the regression proper: the write grant
// must set the bucket's recall marker at the home and plant the poison
// word beside the frame on every chain member before returning —
// otherwise a reader holding a stale token floor could keep pulling the
// pre-write frame from a member the home's CAS never touched. The frame
// head itself must survive the recall (the member's last applied record
// is takeover state, not the recall's to destroy), and the release must
// follow up with the matching deposit marker so the home knows when the
// poison may be cleared.
func TestRWChainRecallOnWriteGrant(t *testing.T) {
	r := newChainRig(t, 2, 8)
	r.run(t, func(p *des.Proc) {
		writer := r.clients[0]
		r.wireChain(p, writer)
		if err := writer.AcquireWrite(p, chainTok, time.Second); err != nil {
			t.Fatal(err)
		}
		rMark := r.stateWord(chainTok, 8)
		if rMark == 0 {
			t.Error("recall marker R still zero after write grant")
		}
		if d := r.stateWord(chainTok, 12); d != 0 {
			t.Errorf("deposit marker D = %#x before the write completed, want 0", d)
		}
		for m := range r.members {
			if w := r.poisonWord(m, chainTok); w == 0 {
				t.Errorf("member %d poison word still clear after write grant: the pre-write frame is still servable", m)
			}
			if h := r.headWord(m, chainTok); h != liveVer {
				t.Errorf("member %d frame head %#x after recall, want intact %#x (poison must not destroy the record)", m, h, liveVer)
			}
		}
		// Untouched tokens keep their live frames.
		for m := range r.members {
			if w := r.poisonWord(m, chainTestTok); w != 0 {
				t.Errorf("member %d token %d poison word %#x, want untouched 0", m, chainTestTok, w)
			}
		}
		if writer.ChainRecalls != 1 {
			t.Errorf("ChainRecalls = %d, want 1", writer.ChainRecalls)
		}
		if writer.ChainRecallErrors != 0 {
			t.Errorf("ChainRecallErrors = %d, want 0", writer.ChainRecallErrors)
		}
		if err := writer.ReleaseWrite(p, chainTok); err != nil {
			t.Fatal(err)
		}
		if d := r.stateWord(chainTok, 12); d != rMark {
			t.Errorf("deposit marker D = %#x after release, want R's value %#x", d, rMark)
		}
	})
}

// TestRWChainWindowWithoutRecall documents the window the recall closes:
// a client that never learned the chain leaves every member's frame
// readable across its write grant. This is the pre-fix behavior — if this
// test starts failing because the grant path learned to poison without
// SetChain, the recall plumbing has moved and the regression above should
// move with it.
func TestRWChainWindowWithoutRecall(t *testing.T) {
	r := newChainRig(t, 2, 8)
	r.run(t, func(p *des.Proc) {
		writer := r.clients[0] // no wireChain: the home's CAS is all it knows
		if err := writer.AcquireWrite(p, chainTok, time.Second); err != nil {
			t.Fatal(err)
		}
		for m := range r.members {
			if w := r.poisonWord(m, chainTok); w != 0 {
				t.Errorf("member %d poison word %#x changed without a chain recall", m, w)
			}
		}
		if writer.ChainRecalls != 0 {
			t.Errorf("ChainRecalls = %d without SetChain, want 0", writer.ChainRecalls)
		}
	})
}

// TestRWChainWatermarkStamp covers the freshness floor: read grants stamp
// the home's published version; a revocation or release drops the stamp;
// a write-held token never exposes one (its write-behind may be ahead of
// the chain); and StampWatermark lazily stamps a token that predates
// SetChain.
func TestRWChainWatermarkStamp(t *testing.T) {
	r := newChainRig(t, 2, 8)
	r.run(t, func(p *des.Proc) {
		reader, writer := r.clients[0], r.clients[1]
		r.wireChain(p, reader)
		r.wireChain(p, writer)

		if err := reader.AcquireRead(p, chainTok, time.Second); err != nil {
			t.Fatal(err)
		}
		epoch, ver, ok := reader.Watermark(chainTok)
		if !ok || epoch != 1 || ver != liveVer {
			t.Fatalf("read grant stamped (%d, %#x, %v), want (1, %#x, true)", epoch, ver, ok, liveVer)
		}

		// The writer's grant recalls the reader; the stamp must die with the
		// token — a revoked floor is nobody's freshness guarantee.
		if err := writer.AcquireWrite(p, chainTok, time.Second); err != nil {
			t.Fatal(err)
		}
		if !reader.HoldsRead(chainTok) {
			if _, _, ok := reader.Watermark(chainTok); ok {
				t.Error("revoked read token still exposes a watermark")
			}
		}
		// A write-held token must refuse to stamp: the holder's write-behind
		// is ahead of anything the chain has applied.
		if _, _, ok := writer.StampWatermark(p, chainTok); ok {
			t.Error("StampWatermark granted a floor on a write-held token")
		}
		if err := writer.ReleaseWrite(p, chainTok); err != nil {
			t.Fatal(err)
		}

		// Lazy stamping: a token acquired before SetChain has no floor until
		// StampWatermark fills it in.
		late := r.clients[0]
		if err := late.AcquireRead(p, chainTestTok, time.Second); err != nil {
			t.Fatal(err)
		}
		late.ClearChain()
		if _, _, ok := late.StampWatermark(p, chainTestTok); ok {
			t.Error("StampWatermark produced a floor with no chain attached")
		}
		r.wireChain(p, late)
		if _, _, ok := late.Watermark(chainTestTok); ok {
			t.Error("SetChain resurrected a watermark it never stamped")
		}
		epoch, ver, ok = late.StampWatermark(p, chainTestTok)
		if !ok || epoch != 1 || ver != liveVer {
			t.Errorf("lazy stamp gave (%d, %#x, %v), want (1, %#x, true)", epoch, ver, ok, liveVer)
		}
	})
}

// TestRWChainStampRefusesDuringRecall is the regression for the in-flight
// relay un-poison race: a member's poison word can be transiently
// clobbered by a relay that was already in flight when the recall landed,
// so the poison alone cannot carry the linearizability guarantee. The
// second defense is the floor stamp: while a bucket's recall is
// unresolved — marker R set but the deposit marker D not matching, or
// matched but the home's clean marker C not yet caught up (the home has
// not re-pushed the post-write bytes) — StampWatermark must refuse to
// grant any floor, because the published version predates the completed
// write and an aborted push's version could slip past it.
func TestRWChainStampRefusesDuringRecall(t *testing.T) {
	r := newChainRig(t, 2, 8)
	r.run(t, func(p *des.Proc) {
		reader := r.clients[0]
		r.wireChain(p, reader)
		st := r.state.Bytes()

		// Token 1: recall outstanding (R != D).
		binary.BigEndian.PutUint32(st[verOffAt(1)+8:], 0x77)
		if err := reader.AcquireRead(p, 1, time.Second); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := reader.Watermark(1); ok {
			t.Error("stamped a floor while the recall's deposit was still in flight (R != D)")
		}
		if _, _, ok := reader.StampWatermark(p, 1); ok {
			t.Error("lazy stamp granted a floor with R != D")
		}

		// Deposit lands (D = R) but the home has not re-pushed (C != R):
		// still no floor — the published version predates the write.
		binary.BigEndian.PutUint32(st[verOffAt(1)+12:], 0x77)
		if _, _, ok := reader.StampWatermark(p, 1); ok {
			t.Error("stamped a floor before the home re-pushed the deposit (C != R)")
		}

		// The home's push publishes a fresh version and C = R: floors flow
		// again, at the post-write version.
		binary.BigEndian.PutUint64(st[verOffAt(1):], liveVer+2)
		binary.BigEndian.PutUint32(st[verOffAt(1)+16:], 0x77)
		epoch, ver, ok := reader.StampWatermark(p, 1)
		if !ok || epoch != 1 || ver != liveVer+2 {
			t.Errorf("post-repush stamp gave (%d, %#x, %v), want (1, %#x, true)", epoch, ver, ok, liveVer+2)
		}
	})
}
