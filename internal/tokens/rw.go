package tokens

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"netmem/internal/des"
	"netmem/internal/hybrid"
	"netmem/internal/rmem"
)

// Shared-read / exclusive-write tokens. The exclusive Client above is the
// paper's minimal scheme; a caching clerk wants the Calypso shape: many
// nodes may hold a READ token on the same object simultaneously (each then
// serves the object from local memory with zero server involvement), while
// a WRITE token excludes everyone. The same 4-byte table word carries both:
//
//	0                                  — free
//	writerBit | (nodeID+1)             — exclusive writer
//	otherwise: bitmask, bit i set      — node i holds a read token
//
// Acquire and release stay pure CAS data transfers; only revocation — a
// writer recalling readers, or anyone recalling a writer — pays a Hybrid-1
// control transfer to the holder(s), exactly §5.1's trade.

// writerBit marks the word as writer-held; the low bits then carry
// nodeID+1 instead of a reader bitmask.
const writerBit = 1 << 31

// MaxRWNodes bounds node ids representable in the reader bitmask.
const MaxRWNodes = 31

// ErrNodeRange reports a node id too large for the reader bitmask.
var ErrNodeRange = errors.New("tokens: node id exceeds reader bitmask range")

// rw revocation request wire: token(4) + wantWrite(1).
const rwRevMsgLen = 5

// RWClient is one node's shared-read/exclusive-write token agent over a
// table exported by a home node (for the sharded DFS: the shard server's
// per-bucket token area).
type RWClient struct {
	m       *rmem.Manager
	table   *rmem.Import
	scratch *rmem.Segment

	rsrv  *hybrid.Server
	peers map[int]*hybrid.Client

	read  map[int]bool
	write map[int]bool
	retry des.Duration

	// onInvalidate runs when a read token is revoked out from under us —
	// the coherence hook: a caching clerk drops the covered blocks.
	onInvalidate func(p *des.Proc, tok int)

	// Replica chain (SetChain). chainState points at the home's watermark
	// table; chain members' frame segments receive the write-grant recall.
	chainState  *rmem.Import
	chainVerOff func(tok int) int
	chain       []*rmem.Import
	chainOff    func(tok int) int
	wm          map[int]uint64 // version floor (epoch<<32 | seq) stamped at read grant
	pending     map[int]uint32 // recall marker awaiting its deposit-done write
	recallSeq   uint32         // per-client recall marker sequence

	// Stats.
	ReadAcquires      int64 // read tokens granted (first acquisition)
	WriteAcquires     int64 // write tokens granted
	Downgrades        int64 // write→read transitions
	Invalidations     int64 // read tokens revoked under us (cache drops)
	RevokesSent       int64 // revocation appeals issued to holders
	RevokesServed     int64 // revocation requests answered
	ChainRecalls      int64 // write grants fanned out across chain members
	ChainRecallErrors int64 // chain members a recall could not reach
}

// NewRWClient wires the agent: table import, CAS scratch, and its own
// Hybrid-1 revocation service. slotNodes bounds the cluster size.
func NewRWClient(p *des.Proc, m *rmem.Manager, home int, tabID, tabGen uint16, tabSize, slotNodes int) *RWClient {
	c := &RWClient{
		m:     m,
		table: m.Import(p, home, tabID, tabGen, tabSize),
		peers: make(map[int]*hybrid.Client),
		read:  make(map[int]bool),
		write: make(map[int]bool),
		retry: 200 * time.Microsecond,
	}
	c.scratch = m.Export(p, 64)
	c.rsrv = hybrid.NewServer(p, m, slotNodes, rwRevMsgLen, c.serveRevoke)
	return c
}

// OnInvalidate installs the coherence callback run (on the revocation
// server's process) whenever a held read token is recalled.
func (c *RWClient) OnInvalidate(fn func(p *des.Proc, tok int)) { c.onInvalidate = fn }

// SetChain teaches the agent about the home's replica chain. state is an
// import of the home's chain-state segment and verOff locates a token's
// state entry — a 64-bit version floor (epoch in the high half) followed
// by the recall/deposit/clean marker words — in it: every read grant
// stamps the current version as that token's freshness floor (Watermark).
// members are retransmitting imports of each chain member's frame segment
// and frameOff locates a token's slot (poison word first): a write grant
// completes only after the recall has fanned out across *all* of them —
// without this, the grant would recall only the home and a lagging
// replica could keep serving the pre-write bytes to token-holding
// readers.
func (c *RWClient) SetChain(state *rmem.Import, verOff func(tok int) int, members []*rmem.Import, frameOff func(tok int) int) {
	c.chainState = state
	c.chainVerOff = verOff
	c.chain = members
	c.chainOff = frameOff
	c.wm = make(map[int]uint64)
	c.pending = make(map[int]uint32)
}

// ClearChain detaches the agent from a replica chain (shard rebind, chain
// teardown); stamped watermarks and pending recall markers are dropped
// with it.
func (c *RWClient) ClearChain() {
	c.chainState = nil
	c.chainVerOff = nil
	c.chain = nil
	c.chainOff = nil
	c.wm = nil
	c.pending = nil
}

// Watermark returns the version freshness floor (epoch in the high 32
// bits) stamped when tok was granted for read. ok is false when no chain
// is attached or the stamp failed — the caller must then read through the
// home, not a replica.
func (c *RWClient) Watermark(tok int) (epoch uint32, ver uint64, ok bool) {
	w, ok := c.wm[tok]
	if !ok {
		return 0, 0, false
	}
	return uint32(w >> 32), w, true
}

// StampWatermark returns tok's freshness floor, stamping it first when a
// held read token has none — a token acquired before the chain attached,
// or carried across a chain rewire. While we hold the read token no writer
// can commit, so the currently published pair is a valid floor (stricter
// than the acquire-time one, never looser). A token held for write never
// stamps: our own write-behind may be ahead of the chain frames, and only
// the recall poison — not the floor — guards that window.
func (c *RWClient) StampWatermark(p *des.Proc, tok int) (epoch uint32, ver uint64, ok bool) {
	if c.wm == nil || !c.read[tok] || c.write[tok] {
		return 0, 0, false
	}
	if _, have := c.wm[tok]; !have {
		c.stampWatermark(p, tok)
	}
	return c.Watermark(tok)
}

// stampWatermark READs the token's state entry — version floor plus the
// recall markers — from the home's chain-state segment: one 20-byte
// one-sided read, the grant's only extra cost. The floor is stamped only
// when the recall markers agree (R == D == C): a recalled bucket whose
// deposit is still in flight (R != D), or whose deposit the primary has
// not yet re-pushed down the chain (C != R), has no honest floor — the
// published version predates the completed write, and a version the
// primary aborted could slip past it. On failure or refusal the stamp is
// simply absent: replica reads are an optimization, and without a floor
// the clerk falls back to the home.
func (c *RWClient) stampWatermark(p *des.Proc, tok int) {
	if c.chainState == nil {
		return
	}
	if err := c.chainState.Read(p, c.chainVerOff(tok), 20, c.scratch, 16, time.Second); err != nil {
		delete(c.wm, tok)
		return
	}
	ver := uint64(c.scratch.ReadWord(p, 16))<<32 | uint64(c.scratch.ReadWord(p, 20))
	r := c.scratch.ReadWord(p, 24)
	d := c.scratch.ReadWord(p, 28)
	cc := c.scratch.ReadWord(p, 32)
	if r != d || cc != r {
		delete(c.wm, tok)
		return
	}
	c.wm[tok] = ver
}

// recallChain closes the stale-replica-read window around a write grant.
// First the bucket's recall marker R in the home's chain-state segment is
// set (a fresh nonzero value, acknowledged before anything else moves):
// the home's push daemon stops refreshing the bucket and readers stop
// stamping floors until the deposit lands and is re-pushed. Then a poison
// word is planted beside tok's frame on every chain member, head→tail in
// chain order — the ordering the members' post-relay re-checks rely on to
// catch an in-flight relay clobbering a downstream poison. The writes are
// retransmitting and this blocks until each has been acknowledged, so the
// write grant returns only once no member can serve the pre-write frame.
// The poison lives OUTSIDE the seqlock frame: the member's last applied
// record survives for takeover. A member the recall cannot reach is
// counted and skipped: an unreachable node is not serving reads either.
func (c *RWClient) recallChain(p *des.Proc, tok int) {
	if len(c.chain) == 0 {
		return
	}
	c.recallSeq++
	marker := uint32(c.m.Node.ID+1)<<20 | (c.recallSeq & 0xfffff)
	var w [4]byte
	binary.BigEndian.PutUint32(w[:], marker)
	if c.chainState != nil {
		if err := c.chainState.WriteBlock(p, c.chainVerOff(tok)+8, w[:], false); err != nil {
			c.ChainRecallErrors++
		} else if c.pending != nil {
			c.pending[tok] = marker
		}
	}
	for _, imp := range c.chain {
		if err := imp.WriteBlock(p, c.chainOff(tok), w[:], false); err != nil {
			c.ChainRecallErrors++
		}
	}
	c.ChainRecalls++
	delete(c.wm, tok)
}

// depositDone writes the bucket's deposit marker D — the value recallChain
// planted in R — into the home's chain-state segment when a write grant
// ends. It rides the same writer→home circuit as the write-behind deposit
// and is issued only after the deposit completed, so when the home's push
// daemon sees R == D the post-write bytes are in its data area and the
// next push (which clears the members' poison) carries them.
func (c *RWClient) depositDone(p *des.Proc, tok int) {
	marker, ok := c.pending[tok]
	if !ok || c.chainState == nil {
		return
	}
	delete(c.pending, tok)
	var w [4]byte
	binary.BigEndian.PutUint32(w[:], marker)
	if err := c.chainState.WriteBlock(p, c.chainVerOff(tok)+12, w[:], false); err != nil {
		c.ChainRecallErrors++
	}
}

// RevocationChannel exposes this client's revocation-server coordinates.
func (c *RWClient) RevocationChannel() (id, gen uint16, size int) { return c.rsrv.ReqSeg() }

// Connect wires this client to a peer's revocation service.
func (c *RWClient) Connect(p *des.Proc, peer int, reqID, reqGen uint16, reqSize int) {
	c.peers[peer] = hybrid.NewClient(p, c.m, peer, reqID, reqGen, reqSize, rwRevMsgLen, 8)
}

// AttachPeer registers a peer's reply segment on our revocation server.
func (c *RWClient) AttachPeer(p *des.Proc, peer int, repID, repGen uint16, repSize int) {
	c.rsrv.AttachClient(p, peer, repID, repGen, repSize)
}

// PeerReply exposes the reply-segment coordinates of our channel TO peer.
func (c *RWClient) PeerReply(peer int) (id, gen uint16, size int) {
	return c.peers[peer].RepSeg()
}

// HoldsRead and HoldsWrite report current local token state. A caching
// clerk checks these before serving from its cache: holding either grants
// read validity.
func (c *RWClient) HoldsRead(tok int) bool  { return c.read[tok] }
func (c *RWClient) HoldsWrite(tok int) bool { return c.write[tok] }

func (c *RWClient) word(tok int) int { return tok * wordStride }

func (c *RWClient) nodeBit() (uint32, error) {
	if c.m.Node.ID >= MaxRWNodes {
		return 0, ErrNodeRange
	}
	return 1 << uint(c.m.Node.ID), nil
}

// readWord fetches the current token word.
func (c *RWClient) readWord(p *des.Proc, tok int) (uint32, error) {
	if err := c.table.Read(p, c.word(tok), 4, c.scratch, 8, time.Second); err != nil {
		return 0, err
	}
	return c.scratch.ReadWord(p, 8), nil
}

// appeal asks holder (a node id) to give up tok; wantWrite selects whether
// the requester needs exclusivity (readers only yield then).
func (c *RWClient) appeal(p *des.Proc, holder, tok int, wantWrite bool) {
	peer, ok := c.peers[holder]
	if !ok || holder == c.m.Node.ID {
		return
	}
	c.RevokesSent++
	var req [rwRevMsgLen]byte
	binary.BigEndian.PutUint32(req[:], uint32(tok))
	if wantWrite {
		req[4] = 1
	}
	// A failed appeal (lossy link, dead peer) is retried by the acquire
	// loop; the error is not fatal here.
	_, _ = peer.Call(p, req[:], time.Second)
}

// AcquireRead obtains a shared read token: one remote CAS setting our
// reader bit when no writer holds the word. A writer in the way is asked
// (control transfer) to downgrade.
func (c *RWClient) AcquireRead(p *des.Proc, tok int, timeout des.Duration) error {
	if c.read[tok] || c.write[tok] {
		return nil
	}
	bit, err := c.nodeBit()
	if err != nil {
		return err
	}
	deadline := p.Now().Add(timeout)
	for {
		w, err := c.readWord(p, tok)
		if err != nil {
			return err
		}
		if w&writerBit == 0 {
			ok, err := c.table.CAS(p, c.word(tok), w, w|bit, c.scratch, 0, time.Second)
			if err != nil {
				return err
			}
			if ok {
				c.read[tok] = true
				c.ReadAcquires++
				c.stampWatermark(p, tok)
				return nil
			}
		} else {
			c.appeal(p, int(w&^writerBit)-1, tok, false)
		}
		if timeout > 0 && p.Now() > deadline {
			return ErrTimeout
		}
		p.Sleep(c.retry)
	}
}

// AcquireWrite obtains the exclusive write token, recalling every other
// reader (their caches invalidate) and any current writer.
func (c *RWClient) AcquireWrite(p *des.Proc, tok int, timeout des.Duration) error {
	if c.write[tok] {
		return nil
	}
	bit, err := c.nodeBit()
	if err != nil {
		return err
	}
	me := writerBit | uint32(c.m.Node.ID+1)
	deadline := p.Now().Add(timeout)
	for {
		w, err := c.readWord(p, tok)
		if err != nil {
			return err
		}
		switch {
		case w == 0 || w == bit:
			// Free, or only our own read bit: one CAS upgrades in place.
			ok, err := c.table.CAS(p, c.word(tok), w, me, c.scratch, 0, time.Second)
			if err != nil {
				return err
			}
			if ok {
				delete(c.read, tok)
				c.write[tok] = true
				c.WriteAcquires++
				// The CAS excluded readers at the home; the chain members
				// must be recalled too before the grant is usable.
				c.recallChain(p, tok)
				return nil
			}
		case w&writerBit != 0:
			c.appeal(p, int(w&^writerBit)-1, tok, true)
		default:
			for n := 0; n < MaxRWNodes; n++ {
				if w&(1<<uint(n)) != 0 && n != c.m.Node.ID {
					c.appeal(p, n, tok, true)
				}
			}
		}
		if timeout > 0 && p.Now() > deadline {
			return ErrTimeout
		}
		p.Sleep(c.retry)
	}
}

// Downgrade converts a held write token to a read token (one CAS): the
// writer keeps cache validity while letting readers back in.
func (c *RWClient) Downgrade(p *des.Proc, tok int) error {
	if !c.write[tok] {
		return fmt.Errorf("tokens: downgrading token %d we do not hold for write", tok)
	}
	bit, err := c.nodeBit()
	if err != nil {
		return err
	}
	me := writerBit | uint32(c.m.Node.ID+1)
	// Deposit marker first: the write-behind deposit is already home, and
	// readers must not re-acquire (next CAS) before the home knows it.
	c.depositDone(p, tok)
	ok, err := c.table.CAS(p, c.word(tok), me, bit, c.scratch, 0, time.Second)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("tokens: downgrade of %d found a foreign word", tok)
	}
	delete(c.write, tok)
	c.read[tok] = true
	c.Downgrades++
	c.stampWatermark(p, tok)
	return nil
}

// ReleaseRead clears our reader bit (CAS loop: other readers' bits churn
// the word concurrently).
func (c *RWClient) ReleaseRead(p *des.Proc, tok int) error {
	if !c.read[tok] {
		return fmt.Errorf("tokens: releasing read token %d we do not hold", tok)
	}
	bit, err := c.nodeBit()
	if err != nil {
		return err
	}
	delete(c.read, tok)
	delete(c.wm, tok)
	for {
		w, err := c.readWord(p, tok)
		if err != nil {
			return err
		}
		if w&bit == 0 {
			return nil // already cleared (revoked concurrently)
		}
		ok, err := c.table.CAS(p, c.word(tok), w, w&^bit, c.scratch, 0, time.Second)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
	}
}

// ReleaseWrite frees the exclusive token (one CAS).
func (c *RWClient) ReleaseWrite(p *des.Proc, tok int) error {
	if !c.write[tok] {
		return fmt.Errorf("tokens: releasing write token %d we do not hold", tok)
	}
	me := writerBit | uint32(c.m.Node.ID+1)
	delete(c.write, tok)
	c.depositDone(p, tok)
	ok, err := c.table.CAS(p, c.word(tok), me, 0, c.scratch, 0, time.Second)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("tokens: write release of %d found a foreign word", tok)
	}
	return nil
}

// serveRevoke answers a peer's recall. A read token yields immediately
// (invalidating the local cache through the callback). A write token is
// never force-released — the application is mid-write-behind; the requester
// keeps retrying until the holder downgrades or releases, the §5.1 "delay
// revocation during certain conditions".
func (c *RWClient) serveRevoke(p *des.Proc, src int, req []byte) []byte {
	if len(req) < rwRevMsgLen {
		return []byte{0}
	}
	tok := int(binary.BigEndian.Uint32(req))
	wantWrite := req[4] != 0
	c.RevokesServed++
	if c.write[tok] {
		return []byte{2} // deferred until Downgrade/ReleaseWrite
	}
	if !c.read[tok] || !wantWrite {
		return []byte{1} // nothing to yield (readers coexist with readers)
	}
	if c.onInvalidate != nil {
		c.onInvalidate(p, tok)
	}
	c.Invalidations++
	bit, err := c.nodeBit()
	if err != nil {
		return []byte{0}
	}
	delete(c.read, tok)
	delete(c.wm, tok)
	for {
		w, werr := c.readWord(p, tok)
		if werr != nil {
			return []byte{0}
		}
		if w&bit == 0 {
			return []byte{1}
		}
		ok, cerr := c.table.CAS(p, c.word(tok), w, w&^bit, c.scratch, 0, time.Second)
		if cerr != nil {
			return []byte{0}
		}
		if ok {
			return []byte{1}
		}
	}
}

// RebindTable re-imports the token table after the home node failed over
// to a new incarnation. The dead incarnation's word state is gone, so every
// locally held token is forfeited; the onInvalidate callback fires for each
// held read token so cached state is dropped rather than served stale.
func (c *RWClient) RebindTable(p *des.Proc, home int, tabID, tabGen uint16, tabSize int) {
	c.table = c.m.Import(p, home, tabID, tabGen, tabSize)
	c.ForfeitAll(p)
}

// ForfeitAll drops every locally held token without touching the table —
// for a home that no longer exists (failover rebind, shard decommission).
// onInvalidate fires per held read token so cached state is dropped.
func (c *RWClient) ForfeitAll(p *des.Proc) {
	for tok := range c.read {
		if c.onInvalidate != nil {
			c.onInvalidate(p, tok)
		}
		c.Invalidations++
	}
	c.read = make(map[int]bool)
	c.write = make(map[int]bool)
	if c.wm != nil {
		c.wm = make(map[int]uint64)
	}
	if c.pending != nil {
		c.pending = make(map[int]uint32)
	}
}

// ForfeitToken gives up one held token at a still-live home — the
// selective cousin of RebindTable's forfeit-everything, used by the shard
// cutover to recall tokens only for keys that actually moved. The word is
// properly released (the home keeps serving unmoved keys in the same
// bucket) and onInvalidate fires so cached state is dropped. Reports
// whether anything was held.
func (c *RWClient) ForfeitToken(p *des.Proc, tok int) (bool, error) {
	switch {
	case c.write[tok]:
		if c.onInvalidate != nil {
			c.onInvalidate(p, tok)
		}
		c.Invalidations++
		return true, c.ReleaseWrite(p, tok)
	case c.read[tok]:
		if c.onInvalidate != nil {
			c.onInvalidate(p, tok)
		}
		c.Invalidations++
		return true, c.ReleaseRead(p, tok)
	}
	return false, nil
}
