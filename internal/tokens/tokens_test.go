package tokens

import (
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/model"
	"netmem/internal/rmem"
)

// rig: home node 0 holds the table; clients on nodes 1..n.
type rig struct {
	env     *des.Env
	cl      *cluster.Cluster
	table   *Table
	clients []*Client
}

func newRig(t *testing.T, nClients, nTokens int) *rig {
	t.Helper()
	env := des.NewEnv()
	cl := cluster.New(env, &model.Default, nClients+1)
	r := &rig{env: env, cl: cl}
	mgrs := make([]*rmem.Manager, nClients+1)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}
	env.Spawn("setup", func(p *des.Proc) {
		r.table = NewTable(p, mgrs[0], nTokens)
		id, gen, size := r.table.Coordinates()
		for i := 1; i <= nClients; i++ {
			r.clients = append(r.clients, NewClient(p, mgrs[i], 0, id, gen, size, nClients+1))
		}
		// Full-mesh revocation channels.
		for i, ci := range r.clients {
			for j, cj := range r.clients {
				if i == j {
					continue
				}
				rid, rgen, rsize := cj.RevocationChannel()
				ci.Connect(p, j+1, rid, rgen, rsize)
				pid, pgen, psize := ci.PeerReply(j + 1)
				cj.AttachPeer(p, i+1, pid, pgen, psize)
			}
		}
	})
	if err := env.RunUntil(des.Time(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *rig) run(t *testing.T, fn func(p *des.Proc)) {
	t.Helper()
	r.env.Spawn("test", fn)
	if err := r.env.RunUntil(des.Time(5 * 60 * time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireReleaseFastPath(t *testing.T) {
	r := newRig(t, 2, 4)
	r.run(t, func(p *des.Proc) {
		c := r.clients[0]
		start := p.Now()
		if err := c.Acquire(p, 2, time.Second); err != nil {
			t.Fatal(err)
		}
		lat := time.Duration(p.Now().Sub(start))
		// Uncontended acquire = one remote CAS ≈ 40µs: pure data transfer.
		if lat > 60*time.Microsecond {
			t.Fatalf("fast-path acquire took %v", lat)
		}
		if r.table.Holder(2) != 1 {
			t.Fatalf("holder = %d", r.table.Holder(2))
		}
		if !c.Holds(2) || c.FastAcquires != 1 {
			t.Fatal("bookkeeping wrong")
		}
		if err := c.Release(p, 2); err != nil {
			t.Fatal(err)
		}
		p.Sleep(time.Millisecond)
		if r.table.Holder(2) != -1 {
			t.Fatal("token not free after release")
		}
	})
	// No control transfer anywhere: the home node never dispatched.
	if got := r.cl.Nodes[0].CPUAcct[cluster.CatControl]; got != 0 {
		t.Fatalf("home node control CPU = %v, want 0", got)
	}
}

func TestContendedAcquireRevokes(t *testing.T) {
	r := newRig(t, 2, 1)
	r.run(t, func(p *des.Proc) {
		a, b := r.clients[0], r.clients[1]
		if err := a.Acquire(p, 0, time.Second); err != nil {
			t.Fatal(err)
		}
		// b's acquire must appeal to a (control transfer) and then win.
		if err := b.Acquire(p, 0, time.Second); err != nil {
			t.Fatal(err)
		}
		if a.Holds(0) || !b.Holds(0) {
			t.Fatal("ownership did not move")
		}
		if b.Revocations == 0 {
			t.Fatal("no revocation appeal recorded")
		}
		if a.RevokesServed == 0 {
			t.Fatal("holder never served the revoke")
		}
	})
}

func TestDelayedRevocationWhilePinned(t *testing.T) {
	r := newRig(t, 2, 1)
	r.run(t, func(p *des.Proc) {
		a, b := r.clients[0], r.clients[1]
		if err := a.Acquire(p, 0, time.Second); err != nil {
			t.Fatal(err)
		}
		a.Pin(0) // actively using the protected object

		acquired := false
		r.env.Spawn("contender", func(bp *des.Proc) {
			if err := b.Acquire(bp, 0, 5*time.Second); err != nil {
				t.Error(err)
				return
			}
			acquired = true
		})
		// Let the contender bang on it for a while: it must NOT get the
		// token while a has it pinned.
		p.Sleep(20 * time.Millisecond)
		if acquired {
			t.Fatal("token revoked while pinned")
		}
		if a.RevokesDelayed == 0 {
			t.Fatal("no delayed revocation recorded")
		}
		// Unpinning hands it over.
		a.Unpin(p, 0)
		p.Sleep(20 * time.Millisecond)
		if !acquired {
			t.Fatal("contender still waiting after unpin")
		}
	})
}

func TestAcquireTimeout(t *testing.T) {
	r := newRig(t, 2, 1)
	r.run(t, func(p *des.Proc) {
		a, b := r.clients[0], r.clients[1]
		if err := a.Acquire(p, 0, time.Second); err != nil {
			t.Fatal(err)
		}
		a.Pin(0)
		err := b.Acquire(p, 0, 10*time.Millisecond)
		if err != ErrTimeout {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
	})
}

func TestMutualExclusionUnderContention(t *testing.T) {
	r := newRig(t, 3, 1)
	var inCrit, maxCrit, entries int
	for i, c := range r.clients {
		c := c
		delay := time.Duration(i) * 37 * time.Microsecond
		r.env.Spawn("worker", func(p *des.Proc) {
			p.Sleep(delay)
			for k := 0; k < 4; k++ {
				if err := c.Acquire(p, 0, time.Minute); err != nil {
					t.Error(err)
					return
				}
				inCrit++
				entries++
				if inCrit > maxCrit {
					maxCrit = inCrit
				}
				p.Sleep(300 * time.Microsecond)
				inCrit--
				if err := c.Release(p, 0); err != nil {
					t.Error(err)
					return
				}
				p.Sleep(100 * time.Microsecond)
			}
		})
	}
	if err := r.env.RunUntil(des.Time(5 * 60 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if entries != 12 {
		t.Fatalf("entries = %d", entries)
	}
	if maxCrit != 1 {
		t.Fatalf("mutual exclusion violated (%d inside)", maxCrit)
	}
}

func TestManyTokensIndependent(t *testing.T) {
	r := newRig(t, 2, 8)
	r.run(t, func(p *des.Proc) {
		a, b := r.clients[0], r.clients[1]
		// Different tokens never conflict.
		for tok := 0; tok < 8; tok += 2 {
			if err := a.Acquire(p, tok, time.Second); err != nil {
				t.Fatal(err)
			}
			if err := b.Acquire(p, tok+1, time.Second); err != nil {
				t.Fatal(err)
			}
		}
		if a.Revocations+b.Revocations != 0 {
			t.Fatal("independent tokens caused revocations")
		}
		for tok := 0; tok < 8; tok += 2 {
			if err := a.Release(p, tok); err != nil {
				t.Fatal(err)
			}
			if err := b.Release(p, tok+1); err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestReleaseWithoutHold(t *testing.T) {
	r := newRig(t, 1, 1)
	r.run(t, func(p *des.Proc) {
		if err := r.clients[0].Release(p, 0); err == nil {
			t.Fatal("release of unheld token succeeded")
		}
	})
}
