package tokens

import (
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/model"
	"netmem/internal/rmem"
)

// rwRig: home node 0 holds the table; RW clients on nodes 1..n.
type rwRig struct {
	env     *des.Env
	cl      *cluster.Cluster
	table   *Table
	clients []*RWClient
}

func newRWRig(t *testing.T, nClients, nTokens int) *rwRig {
	t.Helper()
	env := des.NewEnv()
	cl := cluster.New(env, &model.Default, nClients+1)
	r := &rwRig{env: env, cl: cl}
	mgrs := make([]*rmem.Manager, nClients+1)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}
	env.Spawn("setup", func(p *des.Proc) {
		r.table = NewTable(p, mgrs[0], nTokens)
		id, gen, size := r.table.Coordinates()
		for i := 1; i <= nClients; i++ {
			r.clients = append(r.clients, NewRWClient(p, mgrs[i], 0, id, gen, size, nClients+1))
		}
		for i, ci := range r.clients {
			for j, cj := range r.clients {
				if i == j {
					continue
				}
				rid, rgen, rsize := cj.RevocationChannel()
				ci.Connect(p, j+1, rid, rgen, rsize)
				pid, pgen, psize := ci.PeerReply(j + 1)
				cj.AttachPeer(p, i+1, pid, pgen, psize)
			}
		}
	})
	if err := env.RunUntil(des.Time(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *rwRig) run(t *testing.T, fn func(p *des.Proc)) {
	t.Helper()
	r.env.Spawn("test", fn)
	if err := r.env.RunUntil(des.Time(5 * 60 * time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestRWSharedReaders(t *testing.T) {
	r := newRWRig(t, 3, 2)
	r.run(t, func(p *des.Proc) {
		// All three clients take the same read token concurrently-validly.
		for _, c := range r.clients {
			if err := c.AcquireRead(p, 1, time.Second); err != nil {
				t.Fatal(err)
			}
		}
		for i, c := range r.clients {
			if !c.HoldsRead(1) {
				t.Fatalf("client %d lost its read token", i)
			}
			if c.RevokesServed != 0 {
				t.Fatalf("client %d served a revoke: readers must coexist without control transfer", i)
			}
		}
		// Idempotent re-acquire is free.
		if err := r.clients[0].AcquireRead(p, 1, time.Second); err != nil {
			t.Fatal(err)
		}
		if r.clients[0].ReadAcquires != 1 {
			t.Fatalf("re-acquire counted twice: %d", r.clients[0].ReadAcquires)
		}
		for _, c := range r.clients {
			if err := c.ReleaseRead(p, 1); err != nil {
				t.Fatal(err)
			}
		}
	})
	// Pure CAS protocol: the home node never ran a control transfer.
	if got := r.cl.Nodes[0].CPUAcct[cluster.CatControl]; got != 0 {
		t.Fatalf("home node control CPU = %v, want 0", got)
	}
}

func TestRWWriteRecallsReaders(t *testing.T) {
	r := newRWRig(t, 3, 1)
	invalidated := make([]int, 3)
	r.run(t, func(p *des.Proc) {
		for i, c := range r.clients {
			i := i
			c.OnInvalidate(func(p *des.Proc, tok int) { invalidated[i]++ })
			if i > 0 {
				if err := c.AcquireRead(p, 0, time.Second); err != nil {
					t.Fatal(err)
				}
			}
		}
		w := r.clients[0]
		if err := w.AcquireWrite(p, 0, time.Second); err != nil {
			t.Fatal(err)
		}
		if !w.HoldsWrite(0) {
			t.Fatal("writer does not hold the token")
		}
		for i := 1; i < 3; i++ {
			if r.clients[i].HoldsRead(0) {
				t.Fatalf("reader %d kept its token past a write recall", i)
			}
			if invalidated[i] != 1 {
				t.Fatalf("reader %d invalidation callback ran %d times, want 1", i, invalidated[i])
			}
		}
		if w.RevokesSent == 0 {
			t.Fatal("writer recorded no recall appeals")
		}
		if err := w.ReleaseWrite(p, 0); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRWDowngradeAndReaderReturn(t *testing.T) {
	r := newRWRig(t, 2, 1)
	r.run(t, func(p *des.Proc) {
		w, rd := r.clients[0], r.clients[1]
		if err := w.AcquireWrite(p, 0, time.Second); err != nil {
			t.Fatal(err)
		}
		// Reader joins concurrently: blocked until the writer downgrades.
		done := make(chan error, 1)
		r.env.Spawn("reader", func(p2 *des.Proc) {
			done <- rd.AcquireRead(p2, 0, 50*time.Millisecond)
		})
		p.Sleep(2 * time.Millisecond)
		if rd.HoldsRead(0) {
			t.Fatal("reader slipped past an exclusive writer")
		}
		if err := w.Downgrade(p, 0); err != nil {
			t.Fatal(err)
		}
		if !w.HoldsRead(0) || w.HoldsWrite(0) {
			t.Fatal("downgrade bookkeeping wrong")
		}
		p.Sleep(5 * time.Millisecond)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("reader after downgrade: %v", err)
			}
		default:
			t.Fatal("reader still blocked after downgrade")
		}
		if !rd.HoldsRead(0) {
			t.Fatal("reader did not obtain the token")
		}
	})
}

func TestRWWriterExcludesWriter(t *testing.T) {
	r := newRWRig(t, 2, 1)
	r.run(t, func(p *des.Proc) {
		a, b := r.clients[0], r.clients[1]
		if err := a.AcquireWrite(p, 0, time.Second); err != nil {
			t.Fatal(err)
		}
		// b cannot take the write token while a holds it: write recalls are
		// deferred (never force-released), so b times out.
		if err := b.AcquireWrite(p, 0, 5*time.Millisecond); err != ErrTimeout {
			t.Fatalf("second writer got %v, want ErrTimeout", err)
		}
		if err := a.ReleaseWrite(p, 0); err != nil {
			t.Fatal(err)
		}
		if err := b.AcquireWrite(p, 0, time.Second); err != nil {
			t.Fatalf("writer after release: %v", err)
		}
	})
}

func TestRWRebindForfeitsTokens(t *testing.T) {
	r := newRWRig(t, 2, 2)
	r.run(t, func(p *des.Proc) {
		c := r.clients[0]
		drops := 0
		c.OnInvalidate(func(p *des.Proc, tok int) { drops++ })
		if err := c.AcquireRead(p, 0, time.Second); err != nil {
			t.Fatal(err)
		}
		if err := c.AcquireWrite(p, 1, time.Second); err != nil {
			t.Fatal(err)
		}
		id, gen, size := r.table.Coordinates()
		c.RebindTable(p, 0, id, gen, size)
		if c.HoldsRead(0) || c.HoldsWrite(1) {
			t.Fatal("rebind kept tokens from the dead incarnation")
		}
		if drops != 1 {
			t.Fatalf("rebind invalidated %d cached tokens, want 1 (the read token)", drops)
		}
	})
}
