package tokens

import (
	"encoding/binary"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/fstore"
	"netmem/internal/model"
	"netmem/internal/rmem"
)

// TestTokenGuardedSharedCounter is the §5.1 coherence story end to end:
// two clerks on different machines read-modify-write the same file block
// through the DX file service, serialized by the token manager. Every
// increment must survive — the token's release (a CAS on the same virtual
// circuit) cannot overtake the preceding data write, so the next holder
// always reads the freshest block.
func TestTokenGuardedSharedCounter(t *testing.T) {
	env := des.NewEnv()
	cl := cluster.New(env, &model.Default, 3)
	ms := rmem.NewManager(cl.Nodes[0])
	m1 := rmem.NewManager(cl.Nodes[1])
	m2 := rmem.NewManager(cl.Nodes[2])

	var srv *dfs.Server
	var clerks [2]*dfs.Clerk
	var tclients [2]*Client
	var fh fstore.Handle
	env.Spawn("setup", func(p *des.Proc) {
		srv = dfs.NewServer(p, ms, 3, dfs.Geometry{})
		handle, err := srv.Store.WriteFile("/shared/counter", make([]byte, 8192))
		if err != nil {
			t.Error(err)
			return
		}
		fh = handle
		if err := srv.WarmFile(handle); err != nil {
			t.Error(err)
			return
		}
		clerks[0] = dfs.NewClerk(p, m1, srv, dfs.DX)
		clerks[1] = dfs.NewClerk(p, m2, srv, dfs.DX)

		table := NewTable(p, ms, 4)
		id, gen, size := table.Coordinates()
		tclients[0] = NewClient(p, m1, 0, id, gen, size, 3)
		tclients[1] = NewClient(p, m2, 0, id, gen, size, 3)
		for i := 0; i < 2; i++ {
			j := 1 - i
			rid, rgen, rsize := tclients[j].RevocationChannel()
			tclients[i].Connect(p, j+1, rid, rgen, rsize)
		}
		for i := 0; i < 2; i++ {
			j := 1 - i
			pid, pgen, psize := tclients[i].PeerReply(j + 1)
			tclients[j].AttachPeer(p, i+1, pid, pgen, psize)
		}
	})
	if err := env.RunUntil(des.Time(300 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	const perWriter = 8
	for w := 0; w < 2; w++ {
		w := w
		env.Spawn("writer", func(p *des.Proc) {
			c, tc := clerks[w], tclients[w]
			for i := 0; i < perWriter; i++ {
				if err := tc.Acquire(p, 0, time.Minute); err != nil {
					t.Error(err)
					return
				}
				tc.Pin(0)
				// Fresh read of the counter word through the service.
				c.FlushLocal()
				cur, err := c.Read(p, fh, 0, 4)
				if err != nil {
					t.Error(err)
					return
				}
				v := binary.BigEndian.Uint32(cur)
				var buf [4]byte
				binary.BigEndian.PutUint32(buf[:], v+1)
				if err := c.Write(p, fh, 0, buf[:]); err != nil {
					t.Error(err)
					return
				}
				tc.Unpin(p, 0)
				if tc.Holds(0) {
					if err := tc.Release(p, 0); err != nil {
						t.Error(err)
						return
					}
				}
				p.Sleep(100 * time.Microsecond)
			}
		})
	}
	if err := env.RunUntil(des.Time(10 * 60 * time.Second)); err != nil {
		t.Fatal(err)
	}

	// Settle and apply write-behind data, then check the counter.
	env.Spawn("check", func(p *des.Proc) {
		p.Sleep(10 * time.Millisecond)
		if _, err := srv.Sync(p); err != nil {
			t.Error(err)
			return
		}
		got, err := srv.Store.Read(fh, 0, 4)
		if err != nil {
			t.Error(err)
			return
		}
		if v := binary.BigEndian.Uint32(got); v != 2*perWriter {
			t.Errorf("counter = %d, want %d (lost updates)", v, 2*perWriter)
		}
	})
	if err := env.RunUntil(env.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
}
