// Package tokens implements distributed token management over the remote
// memory primitives — §5.1's Calypso discussion, made concrete:
//
//	"Workstation-cluster file system designs such as Calypso use an
//	RPC-based distributed token management scheme to handle cache
//	coherence. This scheme can be extended to use our communication
//	primitives without involving control transfers in most cases. Token
//	acquire and release can be implemented using compare-and-swap
//	operations. Token revocation is trickier. One option is to use
//	control transfer (e.g., using Hybrid-1); another is to delay
//	revocation during certain conditions."
//
// All three mechanisms are here: the CAS fast path (pure data transfer),
// Hybrid-1 revocation for contended tokens, and holder-side delayed
// revocation while the token is pinned in active use.
//
// Token state lives in a table of words exported by a home node; word
// value 0 means free, otherwise nodeID+1 of the exclusive holder. An
// acquire that finds the token held reads the holder from the same word
// and asks *that node* to give it up — the home node's CPU is never
// involved beyond the kernel emulation of the CAS and read.
package tokens

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"netmem/internal/des"
	"netmem/internal/hybrid"
	"netmem/internal/rmem"
)

// wordStride is the size of one token slot in the table.
const wordStride = 4

// ErrTimeout reports an acquire that could not obtain the token in time.
var ErrTimeout = errors.New("tokens: acquire timed out")

// Table is the home node's token directory: a segment of one word per
// token, acquired and released purely with remote CAS.
type Table struct {
	seg *rmem.Segment
	n   int
}

// NewTable exports a table of n tokens on the home node.
func NewTable(p *des.Proc, m *rmem.Manager, n int) *Table {
	seg := m.Export(p, n*wordStride)
	seg.SetDefaultRights(rmem.RightRead | rmem.RightCAS)
	return &Table{seg: seg, n: n}
}

// Coordinates returns what a client needs to import the table.
func (t *Table) Coordinates() (id, gen uint16, size int) {
	return t.seg.ID(), t.seg.Gen(), t.seg.Size()
}

// Holder reports the current holder of a token (-1 if free) by looking at
// the home node's memory directly; a diagnostic for tests.
func (t *Table) Holder(tok int) int {
	v := binary.BigEndian.Uint32(t.seg.Bytes()[tok*wordStride:])
	return int(v) - 1
}

// Client is one node's token agent: the CAS fast path plus a revocation
// service other clients can appeal to.
type Client struct {
	m       *rmem.Manager
	table   *rmem.Import
	scratch *rmem.Segment

	rsrv  *hybrid.Server
	peers map[int]*hybrid.Client // node → channel to its revocation server

	held  map[int]*heldToken
	retry des.Duration

	// Stats.
	FastAcquires   int64 // satisfied by a single CAS
	Revocations    int64 // acquires that had to ask a holder
	RevokesServed  int64 // revocation requests this node answered
	RevokesDelayed int64 // revocations deferred because the token was busy
}

type heldToken struct {
	busy   bool // pinned by the application; revocation must wait
	wanted bool // someone asked for it while busy
}

// revocation request wire: token(4).
const revMsgLen = 4

// NewClient creates the agent and its revocation service. slotNodes bounds
// the cluster size for the Hybrid-1 channel.
func NewClient(p *des.Proc, m *rmem.Manager, home int, tabID, tabGen uint16, tabSize, slotNodes int) *Client {
	c := &Client{
		m:     m,
		table: m.Import(p, home, tabID, tabGen, tabSize),
		peers: make(map[int]*hybrid.Client),
		held:  make(map[int]*heldToken),
		retry: 200 * time.Microsecond,
	}
	c.scratch = m.Export(p, 64)
	c.rsrv = hybrid.NewServer(p, m, slotNodes, revMsgLen, c.serveRevoke)
	return c
}

// RevocationChannel exposes this client's revocation-server coordinates.
func (c *Client) RevocationChannel() (id, gen uint16, size int) { return c.rsrv.ReqSeg() }

// Connect wires this client to a peer's revocation service (full mesh in a
// small cluster; a deployment would do this through the name service).
func (c *Client) Connect(p *des.Proc, peer int, reqID, reqGen uint16, reqSize int) {
	cli := hybrid.NewClient(p, c.m, peer, reqID, reqGen, reqSize, revMsgLen, 8)
	c.peers[peer] = cli
}

// AttachPeer registers a peer's reply segment on our revocation server.
// Call with the values from the peer's client after its Connect to us.
func (c *Client) AttachPeer(p *des.Proc, peer int, repID, repGen uint16, repSize int) {
	c.rsrv.AttachClient(p, peer, repID, repGen, repSize)
}

// PeerReply exposes the reply-segment coordinates of our channel TO a
// given peer, for the peer's AttachPeer.
func (c *Client) PeerReply(peer int) (id, gen uint16, size int) {
	return c.peers[peer].RepSeg()
}

func (c *Client) word(tok int) int { return tok * wordStride }

// Acquire obtains exclusive ownership of token tok. The fast path is one
// remote CAS (≈38 µs, no control transfer anywhere). If the token is
// held, the holder is read from the same word and asked — over Hybrid-1,
// a control transfer, as the paper says — to release; the CAS is then
// retried until the deadline.
func (c *Client) Acquire(p *des.Proc, tok int, timeout des.Duration) error {
	me := uint32(c.m.Node.ID + 1)
	deadline := p.Now().Add(timeout)
	first := true
	for {
		ok, err := c.table.CAS(p, c.word(tok), 0, me, c.scratch, 0, time.Second)
		if err != nil {
			return err
		}
		if ok {
			if first {
				c.FastAcquires++
			}
			c.held[tok] = &heldToken{}
			return nil
		}
		first = false
		if timeout > 0 && p.Now() > deadline {
			return ErrTimeout
		}
		// Read the holder from the token word and appeal to it.
		if err := c.table.Read(p, c.word(tok), 4, c.scratch, 8, time.Second); err != nil {
			return err
		}
		holder := int(c.scratch.ReadWord(p, 8)) - 1
		if holder >= 0 && holder != c.m.Node.ID {
			if peer, okp := c.peers[holder]; okp {
				c.Revocations++
				var req [revMsgLen]byte
				binary.BigEndian.PutUint32(req[:], uint32(tok))
				if _, err := peer.Call(p, req[:], time.Second); err != nil {
					return fmt.Errorf("tokens: revoke appeal to node %d: %w", holder, err)
				}
			}
		}
		p.Sleep(c.retry)
	}
}

// serveRevoke handles a peer's plea for a token this node holds: release
// immediately if the application is not actively using it, otherwise mark
// it wanted — the §5.1 "delay revocation during certain conditions".
func (c *Client) serveRevoke(p *des.Proc, src int, req []byte) []byte {
	if len(req) < revMsgLen {
		return []byte{0}
	}
	tok := int(binary.BigEndian.Uint32(req))
	c.RevokesServed++
	h, ok := c.held[tok]
	if !ok {
		return []byte{1} // not holding it (already released)
	}
	if h.busy {
		h.wanted = true
		c.RevokesDelayed++
		return []byte{2} // deferred; ask again or wait for the release
	}
	c.releaseWord(p, tok)
	return []byte{1}
}

// Pin marks a held token as in active use: revocation is deferred until
// Unpin (or Release).
func (c *Client) Pin(tok int) {
	if h, ok := c.held[tok]; ok {
		h.busy = true
	}
}

// Unpin ends active use; if a revocation arrived meanwhile, the token is
// released on the spot.
func (c *Client) Unpin(p *des.Proc, tok int) {
	h, ok := c.held[tok]
	if !ok {
		return
	}
	h.busy = false
	if h.wanted {
		c.releaseWord(p, tok)
	}
}

// Release gives the token back (one remote CAS, no control transfer).
func (c *Client) Release(p *des.Proc, tok int) error {
	if _, ok := c.held[tok]; !ok {
		return fmt.Errorf("tokens: releasing token %d we do not hold", tok)
	}
	c.releaseWord(p, tok)
	return nil
}

func (c *Client) releaseWord(p *des.Proc, tok int) {
	me := uint32(c.m.Node.ID + 1)
	delete(c.held, tok)
	if ok, err := c.table.CAS(p, c.word(tok), me, 0, c.scratch, 4, time.Second); err != nil || !ok {
		c.m.WriteFaults = append(c.m.WriteFaults,
			fmt.Errorf("tokens: release of %d failed (ok=%v err=%v)", tok, ok, err))
	}
}

// Holds reports whether this client currently holds tok.
func (c *Client) Holds(tok int) bool {
	_, ok := c.held[tok]
	return ok
}
