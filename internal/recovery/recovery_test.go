package recovery_test

import (
	"errors"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/faults"
	"netmem/internal/model"
	"netmem/internal/recovery"
	"netmem/internal/rmem"
)

// rig is a two-node detection testbed: a heartbeat on node 0 and a
// coordinator on node 1 watching it.
type rig struct {
	env *des.Env
	m0  *rmem.Manager
	m1  *rmem.Manager
	rec *recovery.Coordinator
}

func newRig(t *testing.T, seed int64, camp faults.Campaign, cfg recovery.Config, steps ...recovery.Step) *rig {
	t.Helper()
	env := des.NewEnv()
	if seed != 0 {
		env.Seed(seed)
	}
	eng := faults.NewEngine(env, camp)
	cl := cluster.New(env, &model.Default, 2, cluster.WithFaultEngine(eng))
	r := &rig{env: env, m0: rmem.NewManager(cl.Nodes[0]), m1: rmem.NewManager(cl.Nodes[1])}
	env.Spawn("setup", func(p *des.Proc) {
		hb := r.m0.Export(p, 8)
		hb.SetDefaultRights(rmem.RightRead)
		rmem.StartHeartbeat(r.m0, hb, 0, 100*time.Microsecond)
		imp := r.m1.Import(p, 0, hb.ID(), hb.Gen(), 8)
		r.rec = recovery.New(r.m1, 0, cfg)
		for _, s := range steps {
			r.rec.OnFailover(s.Name, s.Run)
		}
		r.rec.Watch(imp, 0)
	})
	return r
}

// Satellite: the watchdog's liveness lease under the `flap` campaign.
// Repeated 200 µs link outages kill individual probes, but the outages are
// far shorter than the grace window, so a leased watchdog must never
// declare the peer dead — while a grace-1 watchdog (the naive detector)
// fires on the first unlucky probe. The probe interval is chosen coprime
// to the 2 ms flap period so probe phase sweeps through the outage window
// deterministically.
func TestFlapFalsePositives(t *testing.T) {
	camp, ok := faults.Named("flap")
	if !ok {
		t.Fatal("flap campaign missing")
	}
	for _, seed := range []int64{1, 7, 42, 1994, 123456} {
		for _, tc := range []struct {
			grace     int
			wantFired bool
		}{
			{grace: 1, wantFired: true},
			{grace: 3, wantFired: false},
			{grace: 5, wantFired: false},
		} {
			r := newRig(t, seed, camp, recovery.Config{
				Interval: 270 * time.Microsecond,
				Grace:    tc.grace,
			})
			if err := r.env.RunUntil(des.Time(350 * time.Millisecond)); err != nil {
				t.Fatal(err)
			}
			w := r.rec.Watchdog()
			if w.Fired != tc.wantFired {
				t.Errorf("seed %d grace %d: Fired = %v, want %v (misses %d)",
					seed, tc.grace, w.Fired, tc.wantFired, w.Misses)
			}
			if !tc.wantFired && w.Misses == 0 {
				t.Errorf("seed %d grace %d: no probe ever missed — the flaps did not stress detection",
					seed, tc.grace)
			}
			if r.rec.Failed() != tc.wantFired {
				t.Errorf("seed %d grace %d: coordinator Failed = %v, want %v",
					seed, tc.grace, r.rec.Failed(), tc.wantFired)
			}
		}
	}
}

// A real crash must fire through the same grace that suppressed the flaps,
// the registered steps must run in order, and the measured MTTR must be
// positive, finite, and reproducible for the seed.
func TestCoordinatorFailoverMTTR(t *testing.T) {
	camp := faults.Campaign{Name: "one-crash", Crashes: []faults.Crash{
		{Node: 0, At: 5 * time.Millisecond},
	}}
	runOnce := func(seed int64) (des.Duration, []string) {
		var order []string
		r := newRig(t, seed, camp, recovery.Config{Grace: 4},
			recovery.Step{Name: "takeover", Run: func(p *des.Proc) error {
				order = append(order, "takeover")
				return nil
			}},
			recovery.Step{Name: "rebind", Run: func(p *des.Proc) error {
				order = append(order, "rebind")
				return nil
			}},
		)
		var awaited error
		r.env.Spawn("waiter", func(p *des.Proc) {
			for r.rec == nil {
				p.Sleep(100 * time.Microsecond) // let setup finish wiring
			}
			awaited = r.rec.AwaitRestored(p, 100*time.Millisecond)
		})
		if err := r.env.RunUntil(des.Time(50 * time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		if !r.rec.Restored() {
			t.Fatal("coordinator never restored after the crash")
		}
		if awaited != nil {
			t.Fatalf("AwaitRestored: %v", awaited)
		}
		if r.rec.Rebinds != 2 {
			t.Fatalf("Rebinds = %d, want 2", r.rec.Rebinds)
		}
		return r.rec.MTTR(), order
	}

	mttr, order := runOnce(1)
	if len(order) != 2 || order[0] != "takeover" || order[1] != "rebind" {
		t.Fatalf("step order = %v", order)
	}
	if mttr <= 0 || mttr > 10*time.Millisecond {
		t.Fatalf("MTTR = %v, want finite positive under 10ms", mttr)
	}
	if again, _ := runOnce(1); again != mttr {
		t.Fatalf("MTTR not deterministic: %v vs %v", again, mttr)
	}
}

// A step that keeps failing exhausts its retry budget; the coordinator
// reports the stall as a node fault and stays un-restored, and waiters
// time out instead of hanging.
func TestCoordinatorStepGiveup(t *testing.T) {
	camp := faults.Campaign{Name: "one-crash", Crashes: []faults.Crash{
		{Node: 0, At: 2 * time.Millisecond},
	}}
	broken := errors.New("standby also dead")
	attempts := 0
	r := newRig(t, 1, camp, recovery.Config{Grace: 2, Attempts: 3},
		recovery.Step{Name: "takeover", Run: func(p *des.Proc) error {
			attempts++
			return broken
		}},
	)
	var awaited error
	r.env.Spawn("waiter", func(p *des.Proc) {
		for r.rec == nil {
			p.Sleep(100 * time.Microsecond) // let setup finish wiring
		}
		awaited = r.rec.AwaitRestored(p, 20*time.Millisecond)
	})
	if err := r.env.RunUntil(des.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if attempts != 4 { // initial try + 3 retries
		t.Fatalf("attempts = %d, want 4", attempts)
	}
	if r.rec.Restored() {
		t.Fatal("coordinator restored despite a permanently failing step")
	}
	if !errors.Is(awaited, rmem.ErrTimeout) {
		t.Fatalf("AwaitRestored = %v, want ErrTimeout", awaited)
	}
	if len(r.m1.Node.Faults) == 0 {
		t.Fatal("give-up not recorded in node faults")
	}
}
