// Package recovery turns failure detection into repair. The paper's
// primitives deliberately carry no fault tolerance — §3.7 shows how a
// watchdog composes from a periodic remote read — but detection alone
// leaves a clerk wedged on descriptors into a dead machine. The
// coordinator closes the loop: a heartbeat watchdog's verdict fences the
// dead peer in the name service (no more probe storms), runs the
// registered failover steps (promote a standby, re-import, rebind) with
// capped exponential backoff, and measures the outage — MTTR from the
// last probe that proved the peer alive to the moment the last step
// completed, the recovery-latency metric kernel-bypass systems are judged
// by.
//
// The coordinator is service-agnostic: it knows nothing about the file
// service. Services register their own steps (dfs wires standby takeover
// and clerk rebind); the coordinator supplies ordering, retry policy,
// fencing, and measurement.
package recovery

import (
	"fmt"
	"time"

	"netmem/internal/des"
	"netmem/internal/nameserver"
	"netmem/internal/rmem"
)

// Config tunes detection and repair. Zero values are filled from the
// node's model parameters.
type Config struct {
	// Interval is the heartbeat probe cadence (default 250 µs).
	Interval des.Duration
	// ProbeTimeout bounds each probe read (default model.RetryTimeout).
	ProbeTimeout des.Duration
	// Grace is the liveness lease: consecutive failed probes before the
	// verdict (default 4, so a link flap shorter than Grace×Interval is
	// never reported as a node death).
	Grace int
	// Backoff is the initial delay between failover-step retries (default
	// model.RetryTimeout); BackoffMax caps the doubling (default
	// model.RetryBackoffMax); Attempts bounds retries per step (default
	// model.RetryLimit).
	Backoff    des.Duration
	BackoffMax des.Duration
	Attempts   int
	// FenceWait is how long the coordinator sits between the fence
	// decree committing and the first failover step, when verdicts are
	// replicated. Set it to the victim's write-lease TTL: by the time the
	// new primary touches data, the old one has either refreshed against
	// the fence table (and stopped writing) or lost its lease to the
	// lapse. Zero means takeover starts the moment the decree commits.
	FenceWait des.Duration
}

func (c *Config) fill(m *rmem.Manager) {
	p := m.Node.P
	if c.Interval <= 0 {
		c.Interval = 250 * time.Microsecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = p.RetryTimeout
	}
	if c.Grace <= 0 {
		c.Grace = 4
	}
	if c.Backoff <= 0 {
		c.Backoff = p.RetryTimeout
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = p.RetryBackoffMax
	}
	if c.Attempts <= 0 {
		c.Attempts = p.RetryLimit
	}
}

// Step is one registered repair action, run in verdict order on the
// watching node. A step that errors is retried with capped backoff.
type Step struct {
	Name string
	Run  func(p *des.Proc) error
}

// VerdictLog replicates fencing decisions through an agreed log (the
// consensus control plane implements it). When a coordinator carries one,
// a watchdog verdict is proposed as a fence decree — every replica
// applies it, so failover no longer depends on a single watchdog's
// opinion — and the matching unfence decree closes the repair.
type VerdictLog interface {
	ProposeFence(p *des.Proc, peer int) error
	ProposeUnfence(p *des.Proc, peer int) error
}

// Coordinator watches one peer and repairs its failure.
type Coordinator struct {
	m    *rmem.Manager
	peer int
	cfg  Config

	names []*nameserver.Clerk
	steps []Step
	watch *rmem.Watchdog
	vlog  VerdictLog

	restored bool
	failed   bool
	aborted  bool
	q        *des.WaitQueue

	// DetectedAt is when the watchdog verdict landed; DecreeAt when the
	// replicated fence decree committed (zero without ReplicateVerdicts);
	// RestoredAt when the last failover step completed. Rebinds counts
	// step executions (including retries that eventually succeeded).
	DetectedAt des.Time
	DecreeAt   des.Time
	RestoredAt des.Time
	Rebinds    int64
}

// New creates a coordinator on m's node for the given peer.
func New(m *rmem.Manager, peer int, cfg Config) *Coordinator {
	cfg.fill(m)
	return &Coordinator{m: m, peer: peer, cfg: cfg, q: des.NewWaitQueue(m.Node.Env)}
}

// FenceNames registers name-service clerks to fence on the verdict (and
// unfence once recovery completes, when the peer's new incarnation is
// lookup-able again).
func (c *Coordinator) FenceNames(clerks ...*nameserver.Clerk) {
	c.names = append(c.names, clerks...)
}

// ReplicateVerdicts makes vl the gate for this coordinator's failover:
// the watchdog verdict is only a *proposal*, and no repair step runs
// until the fence decree commits on a quorum of log replicas. If the
// proposal fails (log majority unreachable — which is exactly what this
// coordinator observes when it is the one partitioned away), the
// failover aborts: no promotion, no rebind, Aborted() reports the stall.
// That asymmetry is the split-brain defence — a minority-side watchdog
// cannot manufacture a second primary, because the side that can commit
// the decree is by construction the side with the quorum.
func (c *Coordinator) ReplicateVerdicts(vl VerdictLog) { c.vlog = vl }

// OnFailover appends a repair step. Steps run in registration order — a
// dfs deployment registers standby takeover before clerk rebind.
func (c *Coordinator) OnFailover(name string, run func(p *des.Proc) error) {
	c.steps = append(c.steps, Step{Name: name, Run: run})
}

// Watch starts the heartbeat watchdog over imp's counter word at off. The
// failure verdict triggers the failover sequence exactly once.
func (c *Coordinator) Watch(imp *rmem.Import, off int) *rmem.Watchdog {
	c.watch = rmem.NewWatchdogCfg(c.m, imp, off, rmem.WatchdogConfig{
		Interval: c.cfg.Interval,
		Timeout:  c.cfg.ProbeTimeout,
		Grace:    c.cfg.Grace,
	}, c.failover)
	return c.watch
}

// Watchdog returns the active watchdog (nil before Watch).
func (c *Coordinator) Watchdog() *rmem.Watchdog { return c.watch }

// failover is the watchdog's onFail callback: fence, repair, measure.
func (c *Coordinator) failover(p *des.Proc, verdict error) {
	env := c.m.Node.Env
	c.failed = true
	c.DetectedAt = env.Now()
	tr := env.Tracer()
	if tr != nil {
		tr.Count("recovery.failovers", 1)
	}
	if c.vlog != nil {
		// Gated path: the verdict is a proposal. Nothing — not even the
		// local name-service fence — happens unless the decree commits.
		if err := c.vlog.ProposeFence(p, c.peer); err != nil {
			c.aborted = true
			c.m.Node.Faults = append(c.m.Node.Faults,
				fmt.Errorf("recovery: node %d: fence decree for peer %d did not commit, failover aborted: %w",
					c.m.Node.ID, c.peer, err))
			if tr != nil {
				tr.Count("recovery.aborted", 1)
			}
			c.q.WakeAll()
			return
		}
		c.DecreeAt = env.Now()
		if c.cfg.FenceWait > 0 {
			p.Sleep(c.cfg.FenceWait)
		}
	}
	for _, ns := range c.names {
		ns.FencePeer(c.peer)
	}
	for _, step := range c.steps {
		if err := c.runStep(p, step); err != nil {
			// The outage persists; leave the peer fenced and report the
			// stall. Waiters see failed-but-not-restored and time out.
			c.m.Node.Faults = append(c.m.Node.Faults,
				fmt.Errorf("recovery: node %d: step %q gave up after %v (verdict: %v): %w",
					c.m.Node.ID, step.Name, c.cfg.Attempts, verdict, err))
			return
		}
	}
	for _, ns := range c.names {
		ns.UnfencePeer(c.peer)
	}
	if c.vlog != nil {
		if err := c.vlog.ProposeUnfence(p, c.peer); err != nil {
			c.m.Node.Faults = append(c.m.Node.Faults,
				fmt.Errorf("recovery: node %d: unfence decree for peer %d not replicated: %w",
					c.m.Node.ID, c.peer, err))
		}
	}
	c.RestoredAt = env.Now()
	c.restored = true
	if tr != nil {
		tr.Observe("recovery.mttr", time.Duration(c.MTTR()))
		if tr.EventsEnabled() {
			tr.Span(fmt.Sprintf("node%d.recovery", c.m.Node.ID), "recovery",
				fmt.Sprintf("failover peer %d", c.peer),
				time.Duration(c.downFrom()), time.Duration(c.MTTR()))
		}
	}
	c.q.WakeAll()
}

// runStep executes one repair action with capped exponential backoff.
func (c *Coordinator) runStep(p *des.Proc, step Step) error {
	tr := c.m.Node.Env.Tracer()
	delay := c.cfg.Backoff
	var err error
	for attempt := 0; attempt <= c.cfg.Attempts; attempt++ {
		if attempt > 0 {
			p.Sleep(delay)
			delay *= 2
			if delay > c.cfg.BackoffMax {
				delay = c.cfg.BackoffMax
			}
			if tr != nil {
				tr.Count("recovery.step.retries", 1)
			}
		}
		if err = step.Run(p); err == nil {
			c.Rebinds++
			if tr != nil {
				tr.Count("recovery.rebinds", 1)
			}
			return nil
		}
	}
	return err
}

// downFrom is the start of the measured outage: the last probe that proved
// the peer alive (falling back to the verdict time if no probe ever
// succeeded).
func (c *Coordinator) downFrom() des.Time {
	if c.watch != nil && c.watch.LastOK > 0 {
		return c.watch.LastOK
	}
	return c.DetectedAt
}

// Failed reports whether the watchdog verdict has landed.
func (c *Coordinator) Failed() bool { return c.failed }

// Restored reports whether the failover sequence has completed.
func (c *Coordinator) Restored() bool { return c.restored }

// Aborted reports that the verdict landed but the fence decree did not
// commit, so the failover never ran (minority-side watchdog).
func (c *Coordinator) Aborted() bool { return c.aborted }

// FenceLatency is verdict-to-committed-decree: how long the quorum took
// to agree the peer is dead. Zero unless verdicts are replicated and the
// decree committed.
func (c *Coordinator) FenceLatency() des.Duration {
	if c.DecreeAt == 0 {
		return 0
	}
	return c.DecreeAt.Sub(c.DetectedAt)
}

// MTTR is the measured outage: last-known-alive to repair-complete. Zero
// until restored.
func (c *Coordinator) MTTR() des.Duration {
	if !c.restored {
		return 0
	}
	return c.RestoredAt.Sub(c.downFrom())
}

// AwaitRestored blocks until the failover sequence completes or timeout
// elapses — the hook an in-flight operation uses to park before replaying
// against the new incarnation. Returns immediately if already restored.
func (c *Coordinator) AwaitRestored(p *des.Proc, timeout des.Duration) error {
	if c.restored {
		return nil
	}
	env := c.m.Node.Env
	timedOut := false
	var cancel func()
	if timeout > 0 {
		cancel = env.After(timeout, func() {
			timedOut = true
			c.q.WakeAll()
		})
		defer cancel()
	}
	for !c.restored && !c.aborted && !timedOut {
		c.q.Wait(p)
	}
	if !c.restored {
		return rmem.ErrTimeout
	}
	return nil
}
