// Package integration holds cross-subsystem tests: several protocol
// families (remote memory, conventional RPC, SVM, the file service)
// sharing one cluster and one network must coexist without interference.
package integration

import (
	"bytes"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/model"
	"netmem/internal/rmem"
	"netmem/internal/rpc"
	"netmem/internal/svm"
)

// TestAllProtocolsCoexist runs remote-memory traffic, RPC traffic, SVM
// page faults, and file-service operations concurrently across one
// four-node switched cluster. Everything must complete and the per-node
// fault logs must stay empty — the protocol multiplexing, VC reassembly,
// and TX serialization all hold up under mixed load.
func TestAllProtocolsCoexist(t *testing.T) {
	env := des.NewEnv()
	cl := cluster.New(env, &model.Default, 4)

	// Remote memory on all nodes.
	ms := make([]*rmem.Manager, 4)
	for i := range ms {
		ms[i] = rmem.NewManager(cl.Nodes[i])
	}
	// RPC endpoints on nodes 2, 3.
	rpcSrv := rpc.NewEndpoint(cl.Nodes[2])
	rpcSrv.Serve().Register(9, 1, func(p *des.Proc, src int, args []byte) ([]byte, error) {
		return append([]byte("pong:"), args...), nil
	})
	rpcCli := rpc.NewEndpoint(cl.Nodes[3])
	// SVM across all nodes, manager on node 3.
	agents := make([]*svm.Agent, 4)
	for i := range agents {
		agents[i] = svm.New(cl.Nodes[i], 3, 2)
	}

	done := make(map[string]bool)

	// Workload 1: file service between nodes 0 (server) and 1 (clerk).
	env.Spawn("dfs", func(p *des.Proc) {
		srv := dfs.NewServer(p, ms[0], 4, dfs.Geometry{})
		h, err := srv.Store.WriteFile("/mixed/file", bytes.Repeat([]byte{0xEE}, 12000))
		if err != nil {
			t.Error(err)
			return
		}
		if err := srv.WarmFile(h); err != nil {
			t.Error(err)
			return
		}
		clerk := dfs.NewClerk(p, ms[1], srv, dfs.DX)
		for k := 0; k < 10; k++ {
			clerk.FlushLocal()
			got, err := clerk.Read(p, h, 0, 12000)
			if err != nil || len(got) != 12000 {
				t.Errorf("dfs read %d: %d bytes, %v", k, len(got), err)
				return
			}
			p.Sleep(500 * time.Microsecond)
		}
		done["dfs"] = true
	})

	// Workload 2: raw remote-memory writes node 1 → node 2.
	env.Spawn("rmem", func(p *des.Proc) {
		seg := ms[2].Export(p, 8192)
		seg.SetDefaultRights(rmem.RightsAll)
		imp := ms[1].Import(p, 2, seg.ID(), seg.Gen(), seg.Size())
		payload := bytes.Repeat([]byte{0x42}, 4096)
		for k := 0; k < 10; k++ {
			if err := imp.WriteBlock(p, 0, payload, false); err != nil {
				t.Errorf("rmem write %d: %v", k, err)
				return
			}
			p.Sleep(300 * time.Microsecond)
		}
		p.Sleep(10 * time.Millisecond)
		if !bytes.Equal(seg.Bytes()[:4096], payload) {
			t.Error("rmem payload corrupted under mixed load")
		}
		done["rmem"] = true
	})

	// Workload 3: RPC pings node 3 → node 2.
	env.Spawn("rpc", func(p *des.Proc) {
		for k := 0; k < 10; k++ {
			r, err := rpcCli.Call(p, 2, 9, 1, []byte{byte(k)})
			if err != nil || len(r) != 6 || r[5] != byte(k) {
				t.Errorf("rpc call %d: %q %v", k, r, err)
				return
			}
			p.Sleep(700 * time.Microsecond)
		}
		done["rpc"] = true
	})

	// Workload 4: SVM page ping-pong between nodes 0 and 2.
	env.Spawn("svm", func(p *des.Proc) {
		for k := 0; k < 6; k++ {
			if err := agents[0].Write(p, 100, []byte{byte(k)}); err != nil {
				t.Errorf("svm write %d: %v", k, err)
				return
			}
			got, err := agents[2].Read(p, 100, 1)
			if err != nil || got[0] != byte(k) {
				t.Errorf("svm read %d: %v %v", k, got, err)
				return
			}
		}
		done["svm"] = true
	})

	if err := env.RunUntil(des.Time(5 * 60 * time.Second)); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"dfs", "rmem", "rpc", "svm"} {
		if !done[w] {
			t.Errorf("workload %s did not complete", w)
		}
	}
	for _, n := range cl.Nodes {
		if len(n.Faults) != 0 {
			t.Errorf("node %d faults under mixed load: %v", n.ID, n.Faults)
		}
	}
}
