package secure

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/model"
	"netmem/internal/rmem"
)

func pair(t *testing.T) (*des.Env, *cluster.Cluster, *rmem.Manager, *rmem.Manager) {
	t.Helper()
	env := des.NewEnv()
	c := cluster.New(env, &model.Default, 2)
	return env, c, rmem.NewManager(c.Nodes[0]), rmem.NewManager(c.Nodes[1])
}

var testKey = Key{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}

func TestKeystreamRoundTripProperty(t *testing.T) {
	prop := func(off uint16, data []byte) bool {
		if len(data) > 4096 {
			data = data[:4096]
		}
		buf := append([]byte(nil), data...)
		xorKeystream(testKey, int(off), buf)
		if len(data) >= 8 && bytes.Equal(buf, data) {
			// buf == data means the keystream was all zero over the
			// range. A single zero keystream byte is a legitimate 1/256
			// event, so only flag runs long enough (≥8 bytes) that an
			// all-zero stream means the cipher did nothing.
			return false
		}
		xorKeystream(testKey, int(off), buf)
		return bytes.Equal(buf, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKeystreamIsPositional(t *testing.T) {
	// Enciphering a buffer in two pieces must equal enciphering it whole —
	// that is what makes random-access remote reads decryptable.
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i)
	}
	whole := append([]byte(nil), data...)
	xorKeystream(testKey, 40, whole)
	split := append([]byte(nil), data...)
	xorKeystream(testKey, 40, split[:133])
	xorKeystream(testKey, 40+133, split[133:])
	if !bytes.Equal(whole, split) {
		t.Fatal("keystream is not positional")
	}
}

func TestSecureWriteReadRoundTrip(t *testing.T) {
	env, _, m0, m1 := pair(t)
	secret := []byte("the tape is in locker 9")
	env.Spawn("test", func(p *des.Proc) {
		seg := m1.Export(p, 1024)
		seg.SetDefaultRights(rmem.RightsAll)
		vault := NewVault(m1.Node, seg, testKey, DefaultHardware)

		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		ch := NewChannel(imp, testKey, DefaultHardware)
		if err := ch.Write(p, 100, secret, false); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(time.Millisecond)

		// The segment memory (what any other importer or a snooper with
		// read rights sees) is ciphertext.
		if err := Verify(seg, 100, secret); err != nil {
			t.Error(err)
		}
		// The owner, holding the key, reads plaintext.
		if got := vault.ReadPlain(p, 100, len(secret)); !bytes.Equal(got, secret) {
			t.Errorf("vault read = %q", got)
		}

		// And the importer can read back what the owner stores.
		vault.WritePlain(p, 500, []byte("reply from the owner"))
		dst := m0.Export(p, 256)
		if err := ch.Read(p, 500, 20, dst, 0, time.Second); err != nil {
			t.Error(err)
			return
		}
		if string(dst.Bytes()[:20]) != "reply from the owner" {
			t.Errorf("channel read = %q", dst.Bytes()[:20])
		}
	})
	if err := env.RunUntil(des.Time(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestWrongKeyReadsGarbage(t *testing.T) {
	env, _, m0, m1 := pair(t)
	env.Spawn("test", func(p *des.Proc) {
		seg := m1.Export(p, 256)
		seg.SetDefaultRights(rmem.RightsAll)
		imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
		good := NewChannel(imp, testKey, DefaultHardware)
		if err := good.Write(p, 0, []byte("sensitive"), false); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(time.Millisecond)

		badKey := testKey
		badKey[0] ^= 0xff
		bad := NewChannel(imp, badKey, DefaultHardware)
		dst := m0.Export(p, 256)
		if err := bad.Read(p, 0, 9, dst, 0, time.Second); err != nil {
			t.Error(err)
			return
		}
		if string(dst.Bytes()[:9]) == "sensitive" {
			t.Error("wrong key produced plaintext")
		}
	})
	if err := env.RunUntil(des.Time(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestSoftwareCryptoIsInadequate(t *testing.T) {
	// §3.5: "The software emulation technique that we use in our
	// implementation will not provide adequate performance in this case.
	// However, it is feasible to do encryption and decryption in
	// hardware." Compare the CPU cost of a 4 KB secure write both ways.
	measure := func(cost CryptoCost) time.Duration {
		env, cl, m0, m1 := pair(t)
		var busy time.Duration
		env.Spawn("test", func(p *des.Proc) {
			seg := m1.Export(p, 8192)
			seg.SetDefaultRights(rmem.RightsAll)
			imp := m0.Import(p, 1, seg.ID(), seg.Gen(), seg.Size())
			ch := NewChannel(imp, testKey, cost)
			cl.Nodes[0].ResetCPUAcct()
			before := cl.Nodes[0].CPU.BusyTime()
			if err := ch.Write(p, 0, make([]byte, 4096), false); err != nil {
				t.Error(err)
				return
			}
			busy = cl.Nodes[0].CPU.BusyTime() - before
		})
		if err := env.RunUntil(des.Time(10 * time.Second)); err != nil {
			t.Fatal(err)
		}
		return busy
	}
	hw := measure(DefaultHardware)
	sw := measure(DefaultSoftware)
	if sw < 4*hw {
		t.Fatalf("software crypto (%v) should dwarf hardware (%v)", sw, hw)
	}
	// Hardware crypto should cost little next to the transfer itself
	// (~360µs of sender CPU for 86 cells): under 20% overhead.
	plain := measure(CryptoCost{}) // zero-cost cipher: the baseline
	if float64(hw) > float64(plain)*1.2 {
		t.Fatalf("hardware crypto overhead too high: %v vs %v plain", hw, plain)
	}
}

func TestVerifyRejectsPlaintext(t *testing.T) {
	env, _, _, m1 := pair(t)
	env.Spawn("test", func(p *des.Proc) {
		seg := m1.Export(p, 64)
		copy(seg.Bytes(), "in the clear")
		if err := Verify(seg, 0, []byte("in the clear")); err == nil {
			t.Error("Verify accepted plaintext in segment memory")
		}
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
}
