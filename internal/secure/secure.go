// Package secure implements §3.5's security story for environments where
// machines do not trust each other: every remote read and write is
// encrypted and decrypted, keyed per communicating pair. The paper notes
// that software emulation "will not provide adequate performance in this
// case" but that controller-level hardware (the AN1's per-link crypto
// engines) makes it feasible; both cost models are provided so the
// trade-off is measurable.
//
// Mechanically, a Channel wraps an imported segment with a symmetric key.
// Segment memory holds ciphertext; the exporting owner uses a Vault (the
// same key) for its local accesses. The cipher is AES-CTR with the
// keystream positioned by absolute segment offset, which keeps remote
// access random-access — any byte range can be enciphered independently.
// A deployment would rotate keys per epoch as the AN1 does; key management
// is out of scope here as it is in the paper.
package secure

import (
	"crypto/aes"
	"encoding/binary"
	"fmt"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/rmem"
)

// KeySize is the AES-128 key size used by channels.
const KeySize = 16

// Key is a shared segment key.
type Key [KeySize]byte

// CryptoCost selects who pays for the cipher and how much.
type CryptoCost struct {
	// HardwarePerCell is the added per-cell cost when the network
	// controller enciphers in-line (the AN1 design): effectively pipeline
	// depth, almost free.
	HardwarePerCell time.Duration
	// SoftwarePerByte is the per-byte CPU cost of running the cipher on
	// the host — the configuration the paper dismisses as inadequate.
	SoftwarePerByte time.Duration
	// Software selects the host-CPU path.
	Software bool
}

// DefaultHardware models an AN1-class in-line crypto engine.
var DefaultHardware = CryptoCost{HardwarePerCell: 600 * time.Nanosecond}

// DefaultSoftware models a host-software DES/AES on a DECstation-class
// CPU (~2 MB/s).
var DefaultSoftware = CryptoCost{SoftwarePerByte: 500 * time.Nanosecond, Software: true}

// charge bills the cipher work for n bytes to the node.
func (c *CryptoCost) charge(p *des.Proc, node *cluster.Node, n int) {
	if c.Software {
		node.UseCPU(p, cluster.CatClient, time.Duration(n)*c.SoftwarePerByte)
		return
	}
	node.UseCPU(p, cluster.CatClient, time.Duration(node.P.CellsFor(n))*c.HardwarePerCell)
}

// xorKeystream enciphers/deciphers buf in place as the bytes at absolute
// segment offset off (CTR mode is an XOR stream, so the two directions are
// the same operation).
func xorKeystream(key Key, off int, buf []byte) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic(err) // KeySize is always valid
	}
	bs := block.BlockSize()
	var ctr, ks [aes.BlockSize]byte
	blockNo := off / bs
	skip := off % bs
	for i := 0; i < len(buf); {
		binary.BigEndian.PutUint64(ctr[8:], uint64(blockNo))
		block.Encrypt(ks[:], ctr[:])
		for j := skip; j < bs && i < len(buf); j++ {
			buf[i] ^= ks[j]
			i++
		}
		skip = 0
		blockNo++
	}
}

// Channel is the importer's encrypted view of a remote segment.
type Channel struct {
	imp  *rmem.Import
	key  Key
	cost CryptoCost
}

// NewChannel wraps an imported segment with a shared key.
func NewChannel(imp *rmem.Import, key Key, cost CryptoCost) *Channel {
	return &Channel{imp: imp, key: key, cost: cost}
}

// Write enciphers data for segment offset off and writes the ciphertext
// remotely (small or block variant by size).
func (c *Channel) Write(p *des.Proc, off int, data []byte, notify bool) error {
	ct := append([]byte(nil), data...)
	xorKeystream(c.key, off, ct)
	c.cost.charge(p, c.imp.ManagerNode(), len(ct))
	if len(ct) <= rmem.MsgRegisterCap {
		return c.imp.Write(p, off, ct, notify)
	}
	return c.imp.WriteBlock(p, off, ct, notify)
}

// Read fetches count ciphertext bytes from soff, deposits them at
// (dst, doff), and deciphers them in place so the caller sees plaintext.
func (c *Channel) Read(p *des.Proc, soff, count int, dst *rmem.Segment, doff int, timeout des.Duration) error {
	if err := c.imp.Read(p, soff, count, dst, doff, timeout); err != nil {
		return err
	}
	c.cost.charge(p, c.imp.ManagerNode(), count)
	xorKeystream(c.key, soff, dst.Bytes()[doff:doff+count])
	return nil
}

// Vault is the exporting owner's view of its own encrypted segment: the
// memory holds ciphertext, so local reads and writes also run the cipher
// (on the owner's engine or CPU).
type Vault struct {
	seg  *rmem.Segment
	key  Key
	cost CryptoCost
	node *cluster.Node
}

// NewVault wraps an exported segment whose contents are enciphered under
// key.
func NewVault(node *cluster.Node, seg *rmem.Segment, key Key, cost CryptoCost) *Vault {
	return &Vault{seg: seg, key: key, cost: cost, node: node}
}

// Segment exposes the wrapped segment (for granting rights etc.).
func (v *Vault) Segment() *rmem.Segment { return v.seg }

// ReadPlain returns plaintext for [off, off+n).
func (v *Vault) ReadPlain(p *des.Proc, off, n int) []byte {
	out := v.seg.ReadLocal(p, off, n)
	v.cost.charge(p, v.node, n)
	xorKeystream(v.key, off, out)
	return out
}

// WritePlain stores plaintext (enciphering it) at off.
func (v *Vault) WritePlain(p *des.Proc, off int, data []byte) {
	ct := append([]byte(nil), data...)
	xorKeystream(v.key, off, ct)
	v.cost.charge(p, v.node, len(ct))
	v.seg.WriteLocal(p, off, ct)
}

// Verify is a helper for tests and examples: true if the raw segment
// bytes at [off, off+n) differ from the given plaintext (i.e. an
// eavesdropper with segment access does not see the data).
func Verify(seg *rmem.Segment, off int, plaintext []byte) error {
	raw := seg.Bytes()[off : off+len(plaintext)]
	same := true
	for i := range plaintext {
		if raw[i] != plaintext[i] {
			same = false
			break
		}
	}
	if same && len(plaintext) > 0 {
		return fmt.Errorf("secure: segment holds plaintext")
	}
	return nil
}
