// Package cluster provides the workstation-cluster substrate: simulated
// nodes (DECstation-class machines) with a CPU, an ATM host interface, and
// a minimal in-kernel network layer that sends and receives frames by
// programmed I/O and dispatches received frames to registered protocol
// handlers. Higher layers (the remote-memory model, the RPC baseline, the
// file service) build on these nodes.
package cluster

import (
	"fmt"
	"time"

	"netmem/internal/atm"
	"netmem/internal/des"
	"netmem/internal/faults"
	"netmem/internal/model"
)

// CPU accounting categories. Figure 3 decomposes server activity into data
// reception, control transfer, procedure invocation, and data reply; every
// CPU charge carries one of these tags so experiments can report the same
// breakdown.
const (
	CatClient  = "client"  // work on behalf of the local user/application
	CatRx      = "rx"      // data reception: drain, validate, deposit
	CatReply   = "reply"   // data reply: fetch and transmit response data
	CatControl = "control" // control transfer: notification, scheduling
	CatProc    = "proc"    // invoked procedure (server code proper)
)

// Handler consumes a frame delivered to a node. It runs in the context of
// the node's RX drain daemon — the moral equivalent of interrupt level —
// and charges any further processing to the node's CPU itself. A handler
// that needs to perform long-running work should hand off to a spawned
// process rather than stall the drain loop.
type Handler func(p *des.Proc, src int, frame []byte)

// Node is one simulated workstation.
type Node struct {
	ID  int
	Env *des.Env
	P   *model.Params

	// CPU is the single processor; all software costs are charged here.
	CPU *des.Resource

	// NIC is the ATM host interface.
	NIC *atm.Interface

	handlers map[byte]Handler
	perCell  map[byte]func(first []byte) des.Duration
	reasm    *atm.Reassembler
	surch    map[atm.VCI]des.Duration
	txLock   *des.Resource // serializes frame transmission (one PIO at a time)
	txBuf    []byte        // scratch for proto byte + frame (guarded by txLock)
	txCells  []atm.Cell    // scratch cell array for segmentation (guarded by txLock)

	// Accounting.
	BytesSent      int64 // frame payload bytes handed to SendFrame
	FramesSent     int64
	FramesReceived int64

	// Faults records catastrophic receive-path events (corrupt frames,
	// frames for unregistered protocols). The cluster treats these as the
	// paper does — rare, catastrophic — so experiments check this is empty.
	Faults []error

	// CPUAcct breaks down accumulated CPU busy time by category.
	CPUAcct map[string]des.Duration

	// failed marks a crashed machine: its interface drops everything.
	failed bool

	// Cached observability keys (avoid fmt.Sprintf on hot paths).
	cpuTrack string            // span track for CPU work, e.g. "node0.cpu"
	cpuKeys  map[string]string // category → counter name "cpu.node0.<cat>"
	nicTxKey string
	nicRxKey string
}

// cpuKey returns the obs counter name for a CPU accounting category.
func (n *Node) cpuKey(cat string) string {
	k, ok := n.cpuKeys[cat]
	if !ok {
		k = fmt.Sprintf("cpu.node%d.%s", n.ID, cat)
		n.cpuKeys[cat] = k
	}
	return k
}

// Fail crashes the node: from now on arriving cells are discarded and the
// machine originates no traffic (daemons should check Failed). The paper
// regards data loss as catastrophic but machine crashes as a fact of life
// (§3.7); the communication primitives surface a crashed peer as timeouts.
func (n *Node) Fail() { n.failed = true }

// Recover brings a crashed node back (its kernel state is as it was; real
// recovery protocols are a service-level concern, §3.7).
func (n *Node) Recover() { n.failed = false }

// Failed reports whether the node has crashed.
func (n *Node) Failed() bool { return n.failed }

// UseCPU charges d of CPU time to the given accounting category. With a
// tracer attached, the busy interval is also recorded as a span on the
// node's CPU track, a per-category counter metric (Figure 3's server
// occupancy breakdown reads these), and the CPU-utilization timeline.
func (n *Node) UseCPU(p *des.Proc, cat string, d des.Duration) {
	tr := n.Env.Tracer()
	if tr == nil {
		n.CPU.Use(p, d)
		n.CPUAcct[cat] += d
		return
	}
	n.CPU.Acquire(p)
	start := time.Duration(n.Env.Now())
	p.Sleep(d)
	n.CPU.Release()
	tr.Span(n.cpuTrack, "cpu", cat, start, d)
	tr.Count(n.cpuKey(cat), int64(d))
	tr.Usage(n.cpuTrack, start, d)
	n.CPUAcct[cat] += d
}

// ResetCPUAcct clears the accounting breakdown (between experiment phases).
func (n *Node) ResetCPUAcct() {
	n.CPUAcct = make(map[string]des.Duration)
	n.CPU.ResetBusyTime()
}

// RegisterProto installs the handler for frames whose first byte is id.
// Protocol ids are assigned by the packages that own them (rmem, rpc, …).
func (n *Node) RegisterProto(id byte, h Handler) {
	n.RegisterProtoEx(id, h, nil)
}

// RegisterProtoEx additionally installs a per-cell receive surcharge: for
// every cell of a frame of this protocol, perCell(firstCellBody) of extra
// CPU is charged in the drain loop, pipelined with arrival. The remote
// memory model uses this for its per-cell deposit cost — data is copied
// into the destination address space as cells arrive, not after the whole
// frame lands. firstCellBody is the frame's first cell payload after the
// protocol byte.
func (n *Node) RegisterProtoEx(id byte, h Handler, perCell func(first []byte) des.Duration) {
	if _, dup := n.handlers[id]; dup {
		panic(fmt.Sprintf("cluster: node %d: duplicate protocol %d", n.ID, id))
	}
	n.handlers[id] = h
	if perCell != nil {
		n.perCell[id] = perCell
	}
}

// SendFrame transmits a frame (with proto prepended) to node dst, charging
// the calling process's CPU for the per-cell programmed I/O. It returns
// when the last cell has been accepted by the TX FIFO — like the paper's
// WRITE, local completion "only guarantees that the data has been accepted
// by the network".
func (n *Node) SendFrame(p *des.Proc, dst int, proto byte, cat string, frame []byte) {
	n.SendFrameEx(p, dst, proto, cat, frame, 0)
}

// SendFrameEx is SendFrame with an additional per-cell CPU charge,
// interleaved with the pushes. Reply paths that fetch data from memory as
// they transmit (the kernel's block-READ service loop) use this so the
// fetch pipelines with the wire instead of serializing ahead of it.
func (n *Node) SendFrameEx(p *des.Proc, dst int, proto byte, cat string, frame []byte, perCell des.Duration) {
	// One frame at a time per machine: concurrent senders would otherwise
	// interleave their cells on the same virtual circuit and corrupt
	// reassembly at the destination. The kernel's transmit path holds the
	// controller for the duration of the PIO, exactly as Ultrix would.
	n.txLock.Acquire(p)
	defer n.txLock.Release()
	n.txBuf = append(n.txBuf[:0], proto)
	n.txBuf = append(n.txBuf, frame...)
	n.txCells = atm.SegmentInto(n.txCells, atm.MakeVCI(dst, n.ID), n.txBuf)
	cells := n.txCells
	for i := range cells {
		n.UseCPU(p, cat, n.P.CellPushTx+perCell)
		n.NIC.TX.Put(p, cells[i])
		n.NIC.CellsSent++
	}
	n.BytesSent += int64(len(frame))
	n.FramesSent++
	if tr := n.Env.Tracer(); tr != nil {
		tr.Count(n.nicTxKey, int64(len(cells)))
		tr.Count("cluster.frames.sent", 1)
	}
}

// drain is the per-node RX daemon: pull cells, charge drain cost,
// reassemble, dispatch completed frames.
func (n *Node) drain(p *des.Proc) {
	for {
		c := n.NIC.RX.Get(p)
		if n.failed {
			continue // a dead machine absorbs cells silently
		}
		n.NIC.CellsReceived++
		if tr := n.Env.Tracer(); tr != nil {
			tr.Count(n.nicRxKey, 1)
		}
		sur, known := n.surch[c.VCI]
		if !known {
			// First cell of a frame: its body starts with the protocol
			// byte, which decides the per-cell deposit surcharge.
			if f, ok := n.perCell[c.Payload[0]]; ok {
				sur = f(c.Payload[1:])
			}
			n.surch[c.VCI] = sur
		}
		n.UseCPU(p, CatRx, n.P.CellDrainRx+sur)
		frame, done, err := n.reasm.Add(c)
		if !done {
			continue
		}
		delete(n.surch, c.VCI)
		if err != nil {
			// Within the cluster, loss/corruption is catastrophic (§3);
			// record it so experiments can fail loudly on inspection.
			n.Faults = append(n.Faults, fmt.Errorf("node %d: %w", n.ID, err))
			continue
		}
		n.FramesReceived++
		if len(frame) == 0 {
			n.reasm.Recycle(frame)
			continue
		}
		h, ok := n.handlers[frame[0]]
		if !ok {
			n.Faults = append(n.Faults, fmt.Errorf("node %d: no handler for protocol %d", n.ID, frame[0]))
			n.reasm.Recycle(frame)
			continue
		}
		h(p, c.VCI.Src(), frame[1:])
		// Handlers copy anything they keep (the reliable reply cache and
		// RPC results are built frames, not views of this one), so the
		// reassembly buffer can be reused for the next frame.
		n.reasm.Recycle(frame)
	}
}

// KernelCall charges the CPU for a standard system-call entry/exit.
func (n *Node) KernelCall(p *des.Proc) {
	n.UseCPU(p, CatClient, n.P.KernelCall)
}

// Cluster is a set of nodes wired by a common topology.
type Cluster struct {
	Env   *des.Env
	P     *model.Params
	Nodes []*Node

	// Switch is non-nil when the topology uses one.
	Switch *atm.Switch
}

// Option configures cluster construction.
type Option func(*options)

type options struct {
	forceSwitch bool
	fault       *atm.Fault
	eng         *faults.Engine
}

// WithSwitch forces a switched topology even for two nodes (the paper's
// testbed is switchless; larger clusters need the switch).
func WithSwitch() Option { return func(o *options) { o.forceSwitch = true } }

// WithFault injects cell loss on (direct) links, for failure experiments.
//
// Deprecated: use WithFaultEngine with a faults.Campaign, which is seeded,
// richer (corruption, duplication, reordering, flaps, crashes), and works
// on switched topologies too. WithFault remains for uniform loss on direct
// links.
func WithFault(f *atm.Fault) Option { return func(o *options) { o.fault = f } }

// WithFaultEngine runs the cluster under a fault campaign: every link and
// switch hop consults the engine per cell, and the campaign's crash
// schedule is bound to the nodes' Fail/Recover.
func WithFaultEngine(eng *faults.Engine) Option { return func(o *options) { o.eng = eng } }

// New builds an n-node cluster. Two nodes are connected back-to-back (the
// paper's "pair of DECstations connected to a switchless ATM network")
// unless WithSwitch is given; three or more nodes always go through a
// switch.
func New(env *des.Env, p *model.Params, n int, opts ...Option) *Cluster {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	c := &Cluster{Env: env, P: p}
	for i := 0; i < n; i++ {
		node := &Node{
			ID:       i,
			Env:      env,
			P:        p,
			CPU:      des.NewResource(env, fmt.Sprintf("node%d.cpu", i), 1),
			NIC:      atm.NewInterface(env, p, i),
			handlers: make(map[byte]Handler),
			perCell:  make(map[byte]func([]byte) des.Duration),
			reasm:    atm.NewReassembler(),
			surch:    make(map[atm.VCI]des.Duration),
			txLock:   des.NewResource(env, fmt.Sprintf("node%d.tx", i), 1),
			CPUAcct:  make(map[string]des.Duration),
			cpuTrack: fmt.Sprintf("node%d.cpu", i),
			cpuKeys:  make(map[string]string),
			nicTxKey: fmt.Sprintf("nic.node%d.tx.cells", i),
			nicRxKey: fmt.Sprintf("nic.node%d.rx.cells", i),
		}
		env.SpawnDaemon(fmt.Sprintf("node%d.rxdrain", i), node.drain)
		c.Nodes = append(c.Nodes, node)
	}
	switch {
	case n == 2 && !o.forceSwitch:
		atm.DirectLinkEngine(env, p, c.Nodes[0].NIC, c.Nodes[1].NIC, o.fault, o.eng)
	default:
		c.Switch = atm.NewSwitch(env, p)
		c.Switch.SetEngine(o.eng)
		for _, node := range c.Nodes {
			c.Switch.Attach(node.NIC)
		}
	}
	for _, node := range c.Nodes {
		node := node
		o.eng.BindNode(node.ID, node.Fail, node.Recover)
	}
	return c
}
