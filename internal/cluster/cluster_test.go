package cluster

import (
	"bytes"
	"testing"
	"time"

	"netmem/internal/des"
	"netmem/internal/model"
	"netmem/internal/obs"
)

const protoTest = 0x7f

func TestFrameDelivery(t *testing.T) {
	env := des.NewEnv()
	c := New(env, &model.Default, 2)
	var got []byte
	var from int
	c.Nodes[1].RegisterProto(protoTest, func(p *des.Proc, src int, frame []byte) {
		got = append([]byte(nil), frame...)
		from = src
	})
	payload := []byte("a frame across the cluster")
	env.Spawn("sender", func(p *des.Proc) {
		c.Nodes[0].SendFrame(p, 1, protoTest, CatClient, payload)
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q, want %q", got, payload)
	}
	if from != 0 {
		t.Fatalf("src = %d, want 0", from)
	}
	if c.Nodes[0].FramesSent != 1 || c.Nodes[1].FramesReceived != 1 {
		t.Fatal("frame counters wrong")
	}
}

func TestSwitchedClusterAllPairs(t *testing.T) {
	env := des.NewEnv()
	c := New(env, &model.Default, 4)
	type rx struct{ src, dst int }
	var seen []rx
	for _, n := range c.Nodes {
		dst := n.ID
		n.RegisterProto(protoTest, func(p *des.Proc, src int, frame []byte) {
			seen = append(seen, rx{src, dst})
		})
	}
	env.Spawn("senders", func(p *des.Proc) {
		for s := 0; s < 4; s++ {
			for d := 0; d < 4; d++ {
				if s == d {
					continue
				}
				c.Nodes[s].SendFrame(p, d, protoTest, CatClient, []byte{byte(s), byte(d)})
			}
		}
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 12 {
		t.Fatalf("delivered %d frames, want 12", len(seen))
	}
}

func TestInterleavedSourcesToOneDestination(t *testing.T) {
	// Two sources fire multi-cell frames at node 0 simultaneously; the
	// per-(src,dst) VCI scheme must keep reassembly separate.
	env := des.NewEnv()
	c := New(env, &model.Default, 3)
	big1 := bytes.Repeat([]byte{0xAA}, 500)
	big2 := bytes.Repeat([]byte{0xBB}, 500)
	var got [][]byte
	c.Nodes[0].RegisterProto(protoTest, func(p *des.Proc, src int, frame []byte) {
		got = append(got, append([]byte(nil), frame...))
	})
	env.Spawn("s1", func(p *des.Proc) { c.Nodes[1].SendFrame(p, 0, protoTest, CatClient, big1) })
	env.Spawn("s2", func(p *des.Proc) { c.Nodes[2].SendFrame(p, 0, protoTest, CatClient, big2) })
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d frames, want 2", len(got))
	}
	ok := func(f []byte) bool {
		return bytes.Equal(f, big1) || bytes.Equal(f, big2)
	}
	if !ok(got[0]) || !ok(got[1]) || bytes.Equal(got[0], got[1]) {
		t.Fatal("interleaved frames corrupted")
	}
}

func TestSendChargesCPU(t *testing.T) {
	env := des.NewEnv()
	c := New(env, &model.Default, 2)
	c.Nodes[1].RegisterProto(protoTest, func(p *des.Proc, src int, frame []byte) {})
	payload := make([]byte, 4096)
	env.Spawn("sender", func(p *des.Proc) {
		c.Nodes[0].SendFrame(p, 1, protoTest, CatClient, payload)
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	// 4096+1 byte frame + trailer = 86 cells; sender CPU ≈ 86×CellPushTx.
	busy := c.Nodes[0].CPU.BusyTime()
	want := 86 * model.Default.CellPushTx
	if busy < want || busy > want+5*time.Microsecond {
		t.Fatalf("sender CPU busy %v, want ≈%v", busy, want)
	}
	// Receiver drains the same cells.
	rbusy := c.Nodes[1].CPU.BusyTime()
	rwant := 86 * model.Default.CellDrainRx
	if rbusy < rwant || rbusy > rwant+5*time.Microsecond {
		t.Fatalf("receiver CPU busy %v, want ≈%v", rbusy, rwant)
	}
}

func TestUnknownProtocolRecordsFault(t *testing.T) {
	env := des.NewEnv()
	c := New(env, &model.Default, 2)
	env.Spawn("sender", func(p *des.Proc) {
		c.Nodes[0].SendFrame(p, 1, 0x55, CatClient, []byte("nobody home"))
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes[1].Faults) != 1 {
		t.Fatalf("faults = %v, want exactly one", c.Nodes[1].Faults)
	}
}

func TestDuplicateProtocolPanics(t *testing.T) {
	env := des.NewEnv()
	c := New(env, &model.Default, 2)
	c.Nodes[0].RegisterProto(1, func(*des.Proc, int, []byte) {})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for duplicate protocol registration")
		}
	}()
	c.Nodes[0].RegisterProto(1, func(*des.Proc, int, []byte) {})
}

func TestUnroutableCellsCounted(t *testing.T) {
	env := des.NewEnv()
	tr := obs.New(obs.Config{})
	env.SetTracer(tr)
	c := New(env, &model.Default, 3)
	env.Spawn("sender", func(p *des.Proc) {
		// Destination 7 is a valid address with nothing attached: the
		// switch must count the cells, not stall or misroute them.
		c.Nodes[0].SendFrame(p, 7, protoTest, CatClient, []byte("to nowhere"))
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if c.Switch.CellsUnroutable == 0 {
		t.Fatal("switch counted no unroutable cells")
	}
	if got := tr.Snapshot().Counter("atm.sw.unroutable"); got != c.Switch.CellsUnroutable {
		t.Fatalf("obs counter %d != switch counter %d", got, c.Switch.CellsUnroutable)
	}
	for _, n := range c.Nodes {
		if len(n.Faults) != 0 {
			t.Fatalf("node %d faults: %v", n.ID, n.Faults)
		}
	}
}
