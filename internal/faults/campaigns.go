package faults

import (
	"fmt"
	"sort"
	"time"
)

// named is the registry of built-in campaigns used by `fsbench -chaos`.
// Each is a complete schedule; the seed is left zero so it resolves to the
// environment's seed (settable with -seed).
var named = map[string]func() Campaign{
	"loss1": func() Campaign {
		return Campaign{Name: "loss1", Default: LinkFault{Loss: 0.01}}
	},
	"loss5": func() Campaign {
		return Campaign{Name: "loss5", Default: LinkFault{Loss: 0.05}}
	},
	"corrupt1": func() Campaign {
		return Campaign{Name: "corrupt1", Default: LinkFault{Corrupt: 0.01}}
	},
	"dup1": func() Campaign {
		return Campaign{Name: "dup1", Default: LinkFault{Duplicate: 0.01}}
	},
	"reorder2": func() Campaign {
		return Campaign{Name: "reorder2", Default: LinkFault{Reorder: 0.02}}
	},
	"mixed": func() Campaign {
		// Everything at once: a lossy, corrupting, duplicating, reordering
		// fabric AND the primary dying mid-mix (rebooting cold 28ms later)
		// — the full §3.7 story in one schedule.
		return Campaign{Name: "mixed", Default: LinkFault{
			Loss:      0.005,
			Corrupt:   0.003,
			Duplicate: 0.003,
			Reorder:   0.005,
		}, Crashes: []Crash{
			{Node: 0, At: 202 * time.Millisecond, RecoverAt: 230 * time.Millisecond},
		}}
	},
	"crash": func() Campaign {
		// The primary dies mid-mix and reboots cold 28ms later; links stay
		// clean, isolating the failover path from link-fault noise.
		return Campaign{Name: "crash", Crashes: []Crash{
			{Node: 0, At: 202 * time.Millisecond, RecoverAt: 230 * time.Millisecond},
		}}
	},
	"leadercrash": func() Campaign {
		// The consensus control plane's lease holder (node 0 in the
		// consensus chaos rig) dies mid-mix and never returns — a restarted
		// acceptor is amnesiac, so it stays fenced and the survivors carry
		// the log on a majority of the original set. Light duplication and
		// reordering keep the one-sided agreement traffic honest while the
		// re-election happens.
		return Campaign{Name: "leadercrash", Default: LinkFault{
			Duplicate: 0.003,
			Reorder:   0.005,
		}, Crashes: []Crash{
			{Node: 0, At: 202 * time.Millisecond},
		}}
	},
	"splitbrain": func() Campaign {
		// The DFS primary (node 3 in the consensus split-brain rig) is
		// partitioned from everyone — replicas, standby, clerk — but stays
		// alive. The watchdog verdict is therefore *false*: the primary is
		// healthy, just unreachable. Only a quorum-fenced takeover keeps a
		// single writer; acting on the raw verdict would leave two.
		// The window outlasts the reliable layer's full retry budget
		// (~150ms for an in-flight 8K transfer at the default model), so
		// operations caught mid-flight genuinely exhaust their retries
		// against the partitioned primary and complete against the fenced
		// successor while the partition still holds — not by riding the
		// retries out until the heal.
		return Campaign{Name: "splitbrain", Partitions: []Partition{
			{A: []int{3}, B: []int{0, 1, 2, 4, 5},
				From: 202 * time.Millisecond, HealAt: 600 * time.Millisecond},
		}}
	},
	"joincrash": func() Campaign {
		// A *joining* shard dies mid-cutover. The sharded failover rig
		// places the joiner on node 7 (shards on 0..N-1, clerk on N,
		// standbys after); the crash lands between the deposit barrier and
		// commit, exercising AddShard's abort path. In single-server rigs
		// node 7 never binds, so the campaign degrades to a clean run.
		return Campaign{Name: "joincrash", Crashes: []Crash{
			{Node: 7, At: 203 * time.Millisecond},
		}}
	},
	"replicalag": func() Campaign {
		// Differential chain lag, then decapitation. The replica chaos rig
		// places the primary on node 0, the clerk on node 1, the failover
		// watcher on node 2, and chain members on nodes 3..; sw.tx<n> is the
		// switch egress into node n. Each chain hop pays a per-cell tax that
		// grows with depth — the pump is serial per link, so the tax divides
		// that hop's bandwidth and deeper members run ever staler. The
		// primary then dies mid-mix and never returns: failover must promote
		// the most-advanced member (the head, on the lightest-taxed hop),
		// whose applied watermark the prober reads one-sidedly.
		links := map[string]LinkFault{}
		for i, extra := range []time.Duration{
			10 * time.Microsecond, 20 * time.Microsecond, 30 * time.Microsecond,
		} {
			links[fmt.Sprintf("sw.tx%d", 3+i)] = LinkFault{Delays: []Delay{
				{From: 190 * time.Millisecond, Until: 400 * time.Millisecond, Extra: extra},
			}}
		}
		return Campaign{Name: "replicalag", Links: links, Crashes: []Crash{
			{Node: 0, At: 208 * time.Millisecond},
		}}
	},
	"flap": func() Campaign {
		// Repeated 200µs outages on every link, every 2ms across the
		// measured window (workloads start after the 200ms warm-up): each
		// is long enough to kill whatever is in flight, short enough that
		// retries ride it out.
		var flaps []Flap
		for t := 201 * time.Millisecond; t < 300*time.Millisecond; t += 2 * time.Millisecond {
			flaps = append(flaps, Flap{Down: t, Up: t + 200*time.Microsecond})
		}
		return Campaign{Name: "flap", Default: LinkFault{Flaps: flaps}}
	},
}

// Named returns a built-in campaign by name.
func Named(name string) (Campaign, bool) {
	f, ok := named[name]
	if !ok {
		return Campaign{}, false
	}
	return f(), true
}

// CampaignNames lists the built-in campaigns, sorted.
func CampaignNames() []string {
	out := make([]string, 0, len(named))
	for k := range named {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
