// Package faults is the deterministic fault-campaign engine (§3.7). The
// paper treats data loss within the cluster as "an extremely rare
// occurrence" — but rare is not never, and a system that aspires to
// production scale must keep producing correct results when cells are
// lost, corrupted, duplicated, reordered, links flap, FIFOs overflow, or
// whole machines crash and restart. This package schedules exactly those
// events, and nothing else: recovering from them is the job of the
// reliability layer (internal/reliable) and of the services above it.
//
// Every injected fault is drawn from a per-link random stream derived from
// one campaign seed, and every time-triggered fault (flap windows, crash
// schedules) is keyed to virtual time — so two runs with the same seed and
// the same workload inject byte-identical fault sequences, and a failure
// seen once can be replayed forever. This replaces the ad-hoc atm.Fault,
// whose caller-supplied math/rand generator undermined exactly that
// property.
//
// The engine is passive: it renders verdicts (Judge) when the network
// layer asks, and fires crash callbacks the cluster layer registers
// (BindNode). It injects at the cell level because that is where the
// paper's hardware loses data; everything above sees only the
// consequences.
package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"netmem/internal/des"
)

// LinkFault configures the misbehaviour of one link (or of every link,
// when used as a campaign default). Probabilities are per cell.
type LinkFault struct {
	// Loss is the probability a cell is dropped in flight.
	Loss float64
	// Corrupt is the probability one payload byte of a cell is flipped in
	// flight. The AAL5 frame CRC catches corruption that lands in the
	// frame body; a flip in the padding is delivered harmlessly, exactly
	// as on real hardware.
	Corrupt float64
	// Duplicate is the probability a cell is delivered twice.
	Duplicate float64
	// Reorder is the probability a cell is held back and delivered after
	// the next cell on the same link (an adjacent swap — the minimal
	// reordering a cell network can produce).
	Reorder float64
	// Flaps are scheduled outage windows: while virtual time is inside
	// [Down, Up) every cell on the link is dropped.
	Flaps []Flap
	// Delays are scheduled slow-down windows: while virtual time is inside
	// [From, Until) every cell on the link takes Extra longer on the wire.
	// Like a Partition (and unlike the probabilistic faults) a delay draws
	// nothing from the random streams, so adding one to a campaign perturbs
	// no other fault sequence. The replica-lag campaigns use it to make
	// chain propagation links run behind without losing a single cell.
	Delays []Delay
}

// Delay is one link slow-down window in virtual time.
type Delay struct {
	From  time.Duration // window start (inclusive)
	Until time.Duration // window end (exclusive); 0 = forever
	Extra time.Duration // added to every cell's wire time while active
}

// active reports whether t falls inside the window.
func (d Delay) active(t des.Time) bool {
	return t >= des.Time(d.From) && (d.Until == 0 || t < des.Time(d.Until))
}

// Flap is one link-outage window in virtual time.
type Flap struct {
	Down time.Duration // outage start (inclusive)
	Up   time.Duration // outage end (exclusive)
}

// active reports whether t falls inside the window.
func (f Flap) active(t des.Time) bool {
	return t >= des.Time(f.Down) && t < des.Time(f.Up)
}

// Crash schedules a node failure (and optional restart) in virtual time.
type Crash struct {
	Node      int
	At        time.Duration
	RecoverAt time.Duration // 0 = never restarts
}

// Partition is a bidirectional mute between two node groups: while
// virtual time is inside [From, HealAt) every cell whose source is in one
// group and destination in the other is dropped, in both directions.
// Unlike a Flap it is keyed to the cell's endpoints, not the link name, so
// one schedule isolates a node regardless of fabric topology (direct
// links or switch hops). Purely time-based — a partition draws nothing
// from the random streams, so adding one to a campaign perturbs no other
// fault sequence.
type Partition struct {
	A, B   []int
	From   time.Duration // partition start (inclusive)
	HealAt time.Duration // heal time (exclusive); 0 = never heals
}

// severs reports whether the partition, when active, cuts traffic
// between src and dst.
func (pt Partition) severs(src, dst int) bool {
	return (contains(pt.A, src) && contains(pt.B, dst)) ||
		(contains(pt.B, src) && contains(pt.A, dst))
}

func contains(s []int, n int) bool {
	for _, v := range s {
		if v == n {
			return true
		}
	}
	return false
}

// Campaign is a complete, seeded fault schedule for one run.
type Campaign struct {
	// Name labels the campaign in reports.
	Name string
	// Seed seeds every random stream the campaign draws from. Zero means
	// "use the environment's seed" (des.Env.SeedValue), so an unseeded
	// campaign is still reproducible.
	Seed int64
	// Default applies to links with no specific entry in Links.
	Default LinkFault
	// Links overrides Default per link name ("link0->1", "sw.in2", …).
	Links map[string]LinkFault
	// Crashes is the node failure schedule.
	Crashes []Crash
	// Partitions are bidirectional group mutes with heal times.
	Partitions []Partition
	// DropOnOverflow makes full destination FIFOs drop arriving cells
	// instead of exerting link-level backpressure — the behaviour of
	// controllers without hardware flow control.
	DropOnOverflow bool
}

// Injection kinds, as reported by Counts and the obs counters
// ("faults.injected.<kind>").
const (
	KindLoss      = "loss"
	KindCorrupt   = "corrupt"
	KindDup       = "dup"
	KindReorder   = "reorder"
	KindFlap      = "flap"
	KindOverflow  = "overflow"
	KindCrash     = "crash"
	KindRecover   = "recover"
	KindPartition = "partition"
	KindDelay     = "delay"
)

// Verdict is the engine's ruling on one cell.
type Verdict struct {
	// Drop discards the cell (loss or flap).
	Drop bool
	// CorruptByte names the payload byte to flip, or -1.
	CorruptByte int
	// Duplicate delivers the cell twice.
	Duplicate bool
	// HoldOne holds the cell back until the next cell on the link has
	// been delivered (adjacent reorder).
	HoldOne bool
}

// Engine renders fault verdicts for one simulation run. Create one with
// NewEngine and hand it to the network layer (cluster.WithFaultEngine /
// netmem.WithFaults); a nil *Engine everywhere means "no faults".
type Engine struct {
	env  *des.Env
	camp Campaign
	seed int64
	rngs map[string]*rand.Rand

	counts    map[string]int64
	onRecover map[int][]func()
}

// NewEngine binds a campaign to a simulation environment. The campaign's
// seed (or, when zero, the environment's) fixes every stream the engine
// will ever draw from.
func NewEngine(env *des.Env, camp Campaign) *Engine {
	seed := camp.Seed
	if seed == 0 {
		seed = env.SeedValue()
	}
	return &Engine{
		env:       env,
		camp:      camp,
		seed:      seed,
		rngs:      make(map[string]*rand.Rand),
		counts:    make(map[string]int64),
		onRecover: make(map[int][]func()),
	}
}

// Campaign returns the engine's campaign.
func (e *Engine) Campaign() Campaign { return e.camp }

// Seed returns the effective seed (after zero-resolution).
func (e *Engine) Seed() int64 { return e.seed }

// DropOnOverflow reports whether full FIFOs should drop instead of
// backpressure. Nil-safe.
func (e *Engine) DropOnOverflow() bool { return e != nil && e.camp.DropOnOverflow }

// linkRand returns the link's private random stream, derived from the
// campaign seed and the link name — so adding a link (or reordering link
// construction) does not perturb any other link's draw sequence.
func (e *Engine) linkRand(link string) *rand.Rand {
	r, ok := e.rngs[link]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(link))
		r = rand.New(rand.NewSource(e.seed ^ int64(h.Sum64())))
		e.rngs[link] = r
	}
	return r
}

// plan resolves the LinkFault governing a link.
func (e *Engine) plan(link string) LinkFault {
	if f, ok := e.camp.Links[link]; ok {
		return f
	}
	return e.camp.Default
}

// Judge rules on one cell traversing the named link. Nil-safe: a nil
// engine delivers everything untouched.
func (e *Engine) Judge(link string) Verdict {
	v := Verdict{CorruptByte: -1}
	if e == nil {
		return v
	}
	f := e.plan(link)
	for _, fl := range f.Flaps {
		if fl.active(e.env.Now()) {
			e.Count(KindFlap)
			v.Drop = true
			return v
		}
	}
	if f.Loss == 0 && f.Corrupt == 0 && f.Duplicate == 0 && f.Reorder == 0 {
		return v
	}
	r := e.linkRand(link)
	if f.Loss > 0 && r.Float64() < f.Loss {
		e.Count(KindLoss)
		v.Drop = true
		return v
	}
	if f.Corrupt > 0 && r.Float64() < f.Corrupt {
		e.Count(KindCorrupt)
		v.CorruptByte = r.Intn(48)
	}
	if f.Duplicate > 0 && r.Float64() < f.Duplicate {
		e.Count(KindDup)
		v.Duplicate = true
	}
	if f.Reorder > 0 && r.Float64() < f.Reorder {
		e.Count(KindReorder)
		v.HoldOne = true
	}
	return v
}

// ExtraDelay returns the extra wire latency the campaign imposes on one
// cell traversing the named link right now: the sum of every active delay
// window. Purely time-based — no random stream is consulted — so a
// delayed campaign injects byte-identical sequences run for run. The
// network layer adds the result to the cell's serialization time.
// Nil-safe: a nil engine delays nothing.
func (e *Engine) ExtraDelay(link string) time.Duration {
	if e == nil {
		return 0
	}
	f := e.plan(link)
	if len(f.Delays) == 0 {
		return 0
	}
	now := e.env.Now()
	var total time.Duration
	for _, d := range f.Delays {
		if d.active(now) {
			total += d.Extra
		}
	}
	if total > 0 {
		e.Count(KindDelay)
	}
	return total
}

// PartitionDrop rules on one cell by its endpoints: true means an active
// partition severs src from dst and the cell must be dropped. The network
// layer consults it once per cell hop, before any link-level verdict.
// Nil-safe: a nil engine (or a campaign with no partitions) delivers
// everything.
func (e *Engine) PartitionDrop(src, dst int) bool {
	if e == nil || len(e.camp.Partitions) == 0 {
		return false
	}
	now := e.env.Now()
	for _, pt := range e.camp.Partitions {
		if now < des.Time(pt.From) {
			continue
		}
		if pt.HealAt > 0 && now >= des.Time(pt.HealAt) {
			continue
		}
		if pt.severs(src, dst) {
			e.Count(KindPartition)
			return true
		}
	}
	return false
}

// Count records one injected fault of the given kind, in the engine's own
// tally and (when a tracer is attached) the "faults.injected.<kind>" obs
// counter. Exported so the network layer can report faults the engine
// merely enabled (FIFO-overflow drops). Nil-safe.
func (e *Engine) Count(kind string) {
	if e == nil {
		return
	}
	e.counts[kind]++
	if tr := e.env.Tracer(); tr != nil {
		tr.Count("faults.injected."+kind, 1)
	}
}

// Counts returns the per-kind injection tally as a sorted, stable list of
// "kind=N" strings (convenient for logs and deterministic test output).
func (e *Engine) Counts() []string {
	if e == nil {
		return nil
	}
	kinds := make([]string, 0, len(e.counts))
	for k := range e.counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = fmt.Sprintf("%s=%d", k, e.counts[k])
	}
	return out
}

// Injected returns the tally for one kind.
func (e *Engine) Injected(kind string) int64 {
	if e == nil {
		return 0
	}
	return e.counts[kind]
}

// BindNode registers a node's crash/recover callbacks and schedules the
// campaign's crash events for it. The cluster layer calls this once per
// node at construction; callbacks run in scheduler context and must not
// block.
func (e *Engine) BindNode(node int, fail, recover func()) {
	if e == nil {
		return
	}
	for _, c := range e.camp.Crashes {
		if c.Node != node {
			continue
		}
		e.env.Schedule(des.Time(c.At), func() {
			e.Count(KindCrash)
			fail()
		})
		if c.RecoverAt > 0 {
			node := node
			e.env.Schedule(des.Time(c.RecoverAt), func() {
				e.Count(KindRecover)
				recover()
				for _, fn := range e.onRecover[node] {
					fn()
				}
			})
		}
	}
}

// OnRecover registers an extra callback to run after node's scheduled
// recovery — e.g. bumping the node's reliability generation so the
// restarted incarnation's frames are never mistaken for its predecessor's
// retransmissions. Callbacks may be registered any time before the
// recovery fires; they run in registration order. Nil-safe.
func (e *Engine) OnRecover(node int, fn func()) {
	if e == nil {
		return
	}
	e.onRecover[node] = append(e.onRecover[node], fn)
}
