package faults

import (
	"fmt"
	"testing"
	"time"

	"netmem/internal/des"
)

func chattyCampaign(name string) Campaign {
	return Campaign{Name: name, Default: LinkFault{
		Loss:      0.05,
		Corrupt:   0.05,
		Duplicate: 0.05,
		Reorder:   0.05,
	}}
}

// verdictTrace renders n Judge calls on one link as a comparable string.
func verdictTrace(e *Engine, link string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		v := e.Judge(link)
		out += fmt.Sprintf("%v,%d,%v,%v;", v.Drop, v.CorruptByte, v.Duplicate, v.HoldOne)
	}
	return out
}

// TestSameSeedSameVerdicts: two engines built from the same seed must
// render identical verdict sequences — the property that makes campaign
// runs replayable.
func TestSameSeedSameVerdicts(t *testing.T) {
	mk := func() *Engine {
		env := des.NewEnv()
		env.Seed(1234)
		return NewEngine(env, chattyCampaign("det"))
	}
	a := verdictTrace(mk(), "link1->0", 500)
	b := verdictTrace(mk(), "link1->0", 500)
	if a != b {
		t.Error("identical seeds rendered different verdict sequences")
	}
	env := des.NewEnv()
	env.Seed(9876)
	if c := verdictTrace(NewEngine(env, chattyCampaign("det")), "link1->0", 500); c == a {
		t.Error("different seeds rendered the same verdict sequence")
	}
}

// TestPerLinkStreamsIndependent: each link draws from its own stream, so
// judging one link must not perturb another's sequence. Without this,
// adding a node to a topology would silently reshuffle every campaign.
func TestPerLinkStreamsIndependent(t *testing.T) {
	mk := func() *Engine {
		env := des.NewEnv()
		env.Seed(55)
		return NewEngine(env, chattyCampaign("ind"))
	}
	solo := verdictTrace(mk(), "link0->1", 300)
	e := mk()
	interleaved := ""
	for i := 0; i < 300; i++ {
		e.Judge("link2->1") // traffic on another link
		v := e.Judge("link0->1")
		interleaved += fmt.Sprintf("%v,%d,%v,%v;", v.Drop, v.CorruptByte, v.Duplicate, v.HoldOne)
	}
	if solo != interleaved {
		t.Error("judging link2->1 perturbed link0->1's verdict stream")
	}
}

// TestFlapWindowDropsEverything: inside a flap's [Down, Up) window every
// cell on the link is dropped; outside it the link behaves normally.
func TestFlapWindowDropsEverything(t *testing.T) {
	env := des.NewEnv()
	env.Seed(1)
	camp := Campaign{Name: "flap", Default: LinkFault{
		Flaps: []Flap{{Down: 100 * time.Microsecond, Up: 200 * time.Microsecond}},
	}}
	e := NewEngine(env, camp)
	probe := func(at time.Duration) bool {
		dropped := false
		env.Spawn("probe", func(p *des.Proc) {
			p.Sleep(time.Duration(des.Time(at).Sub(p.Now())))
			dropped = e.Judge("linkA").Drop
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return dropped
	}
	if probe(50 * time.Microsecond) {
		t.Error("cell dropped before the flap window")
	}
	if !probe(150 * time.Microsecond) {
		t.Error("cell survived inside the flap window")
	}
	if probe(250 * time.Microsecond) {
		t.Error("cell dropped after the link came back up")
	}
	if e.Injected(KindFlap) != 1 {
		t.Errorf("flap tally = %d, want 1", e.Injected(KindFlap))
	}
}
