package model

import (
	"testing"
	"time"
)

// within asserts got is within tol (fractional) of want.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero target", name)
	}
	rel := (got - want) / want
	if rel < -tol || rel > tol {
		t.Errorf("%s = %v, want %v (±%.0f%%)", name, got, want, tol*100)
	}
}

func TestCellWireTime(t *testing.T) {
	// 53 bytes at 140 Mb/s ≈ 3.03 µs.
	got := Default.CellWireTime()
	within(t, "cell wire time", got.Seconds(), 3.03e-6, 0.01)
}

func TestCellsFor(t *testing.T) {
	cases := []struct{ bytes, cells int }{
		{0, 1}, {1, 1}, {40, 1}, {48, 1}, {49, 2}, {96, 2}, {512, 11},
		{1024, 22}, {4096, 86}, {8192, 171},
	}
	for _, c := range cases {
		if got := Default.CellsFor(c.bytes); got != c.cells {
			t.Errorf("CellsFor(%d) = %d, want %d", c.bytes, got, c.cells)
		}
	}
}

func TestBlockThroughputMatchesTable2(t *testing.T) {
	// Table 2: 35.4 Mb/s memory-to-memory block throughput.
	within(t, "block throughput", Default.BlockThroughputBits(), 35.4e6, 0.02)
}

func TestThroughputIs70PercentOfRawController(t *testing.T) {
	// §3.1.2: "Our implementation achieves 70% of the performance that the
	// raw controller hardware is capable of." Raw controller payload rate
	// = 48/53 × 140 Mb/s ≈ 126.8 Mb/s; 35.4/126.8 ≈ 28%... the paper's
	// "raw controller" baseline is the achievable PIO rate of the TCA-100
	// on a DECstation, not the link rate. What we check here is the claim
	// we *can* preserve: our modelled throughput is well below the link
	// rate, i.e. the host, not the wire, is the bottleneck.
	if Default.BlockThroughputBits() >= float64(Default.LinkBandwidthBits) {
		t.Fatal("modelled throughput exceeds link rate; host should be the bottleneck")
	}
}

func TestNotifyOverheadMatchesTable2(t *testing.T) {
	// Table 2: 260 µs notification overhead.
	if got := Default.NotifyOverhead(); got != 260*time.Microsecond {
		t.Fatalf("notify overhead = %v, want 260µs", got)
	}
}

func TestTable3ComponentSums(t *testing.T) {
	p := &Default
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

	export := p.KernelCall + p.LocalRPC + p.HashInsert + p.SegmentCreate
	within(t, "export component sum", us(export), 665, 0.02)

	importCached := p.KernelCall + p.LocalRPC + p.HashLookup + p.ImportInstall
	within(t, "import(cached) component sum", us(importCached), 196, 0.02)

	revoke := p.KernelCall + p.LocalRPC + p.HashDelete + p.SegmentTeardown
	within(t, "revoke component sum", us(revoke), 307, 0.02)
}

func TestLocalAccessIs15xFasterThanRemoteWrite(t *testing.T) {
	// §3.1.2: a processor-local write of one ATM cell's worth of data is
	// "only 15 times faster" than the 30 µs remote write.
	ratio := 30.0 / (float64(Default.LocalWordAccess) / float64(time.Microsecond))
	within(t, "local/remote write ratio", ratio, 15, 0.05)
}

func TestRxPerCellIsBottleneck(t *testing.T) {
	p := &Default
	if p.RxPerCell() <= p.CellPushTx || p.RxPerCell() <= p.CellWireTime() {
		t.Fatal("receiver stage should be the pipeline bottleneck in the calibrated model")
	}
}

func TestValidateDefault(t *testing.T) {
	if err := Default.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesNonsense(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.CellPayload = p.CellSize + 1 },
		func(p *Params) { p.LinkBandwidthBits = 0 },
		func(p *Params) { p.TxFIFOCells = 0 },
		func(p *Params) { p.CellPushTx = 0 },
		func(p *Params) { p.NotifyPost = -1 },
	}
	for i, mutate := range cases {
		p := Default
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: nonsense params validated", i)
		}
	}
}
