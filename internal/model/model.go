// Package model holds every calibrated timing constant in the simulation,
// in one place, each documented with the published measurement that pins it
// down. The hardware being modelled is the paper's testbed: DECstation
// 5000/200 workstations (MIPS R3000, ~25 MHz) running Ultrix, connected by
// 140 Mb/s FORE TCA-100 ATM interfaces on the TURBOchannel, with
// programmed I/O (no DMA) into per-interface TX/RX cell FIFOs.
//
// Calibration targets (Thekkath, Levy & Lazowska, ASPLOS '94):
//
//	Table 2:  remote READ 45 µs, WRITE 30 µs, CAS 38 µs,
//	          4 KB block-write throughput 35.4 Mb/s,
//	          notification overhead 260 µs,
//	          local 40-byte write 15× faster than remote (≈2 µs).
//	Table 3:  name-server export 665 µs, import 196 µs cached /
//	          264 µs uncached, revoke 307 µs, lookup+notify 524 µs.
//	Figure 2: per-op client latency, Hybrid-1 vs pure data transfer.
//	Figure 3: per-op server CPU breakdown; DX < ½ HY on the Table 1a mix.
package model

import (
	"fmt"
	"time"
)

const us = time.Microsecond

// Params is the full cost model. A zero Params is invalid; use Default (the
// calibrated DECstation/ATM model) and override fields for ablations.
type Params struct {
	// ---- ATM cell transport --------------------------------------------

	// CellSize and CellPayload are the classic ATM framing: 53-byte cells
	// carrying 48 payload bytes.
	CellSize    int
	CellPayload int

	// LinkBandwidthBits is the raw link rate in bits/second (FORE ATM:
	// 140 Mb/s). A cell's wire time is CellSize*8/LinkBandwidthBits.
	LinkBandwidthBits int64

	// PropagationDelay is the one-way signal latency of a link. The paper
	// measures two hosts "connected directly without a switch"; within a
	// machine room this is effectively zero at µs granularity.
	PropagationDelay time.Duration

	// SwitchLatency is the added per-cell latency of a cell switch, for
	// topologies that use one ("we expect next-generation switches to
	// introduce only small additional latency").
	SwitchLatency time.Duration

	// CellPushTx is sender CPU time to feed one cell into the TX FIFO by
	// programmed I/O (word-at-a-time stores across the TURBOchannel).
	CellPushTx time.Duration

	// CellDrainRx is receiver CPU time to pull one cell out of the RX FIFO.
	CellDrainRx time.Duration

	// DepositPerCell is receiver CPU time to validate the descriptor window
	// for a cell's span, walk the target process's translation table, and
	// copy 48 bytes into its address space. Calibrated (together with
	// CellDrainRx) so the 4 KB block-write pipeline bottlenecks at the
	// receiver for a memory-to-memory throughput of 35.4 Mb/s: 48 B per
	// 10.85 µs ⇒ 35.4 Mb/s, i.e. 70 % of the raw controller rate, matching
	// the paper's §3.1.2.
	DepositPerCell time.Duration

	// TxFIFOCells / RxFIFOCells are the controller queue depths in cells.
	TxFIFOCells int
	RxFIFOCells int

	// ---- Meta-instruction emulation (the rapid kernel trap) -------------

	// MetaTrap is the cost of the unused-opcode trap into the tuned
	// assembly emulation routine and back (user → kernel → user).
	MetaTrap time.Duration

	// PermCheck is the in-kernel validation of a remote access against the
	// segment descriptor (rights, bounds, generation number).
	PermCheck time.Duration

	// RegisterFormat is the sender-side cost to gather the shared message
	// registers into a cell for the small-WRITE variant.
	RegisterFormat time.Duration

	// CASFormat is the (smaller) sender-side cost to format a CAS request:
	// two words, no message-register gather.
	CASFormat time.Duration

	// ReadFetch is the remote-side cost to locate the segment offset, read
	// the data through the in-kernel translation table, and format the
	// reply cell for a single-cell READ.
	ReadFetch time.Duration

	// ReadFetchPerCell is the remote-side per-cell cost to fetch
	// subsequent cells of a block READ reply. After the first cell the
	// descriptor validation and translation are cached, so this is a
	// bare memory fetch — far below ReadFetch. Calibrated so serving a
	// block READ costs the server slightly more than pushing the same
	// block with a remote WRITE, but well below the Hybrid-1 path with
	// its control transfer and procedure execution (Figure 3).
	ReadFetchPerCell time.Duration

	// CASExec is the remote-side compare-and-swap execution: one locked
	// read-modify-write plus reply formatting ("fewer memory accesses on
	// the sending and receiving sides" — hence CAS < READ).
	CASExec time.Duration

	// DepositResult is the requester-side cost to deposit a one-word CAS
	// result (success/failure) into the local result segment.
	DepositResult time.Duration

	// LocalWordAccess is an ordinary local memory access for the 40-byte
	// single-cell unit; the paper reports a local write of that size is
	// 15× faster than the 30 µs remote write ⇒ 2 µs.
	LocalWordAccess time.Duration

	// ByteSwapPerCell is the added per-cell cost of byte-order conversion
	// during programmed I/O (§3.6: "since we use programmed I/O to move
	// data between the controller FIFO and memory, byte swapping can be
	// readily performed" — cheap, but not free on a 25 MHz host).
	ByteSwapPerCell time.Duration

	// ---- Control transfer (notification) --------------------------------

	// The 260 µs notification overhead decomposes into the Ultrix
	// file-descriptor readiness path: marking the segment's descriptor
	// ready and posting the signal (NotifyPost), a context switch to the
	// notified process (ContextSwitch), and dispatching its signal handler
	// (HandlerDispatch). All three are receiver-CPU time.
	NotifyPost      time.Duration
	ContextSwitch   time.Duration
	HandlerDispatch time.Duration

	// ---- Kernel call and local RPC --------------------------------------

	// KernelCall is a standard Ultrix system-call entry/exit (heavier than
	// the tuned MetaTrap path).
	KernelCall time.Duration

	// LocalRPC is a same-machine cross-address-space call and return
	// between a client and a server clerk (an LRPC-style path; §3.2 cites
	// Bershad's LRPC and Liedtke's IPC work as making this fast).
	LocalRPC time.Duration

	// ---- Name service (Table 3 components) ------------------------------

	// SegmentCreate is kernel work to register an exported segment: create
	// the descriptor, assign a generation number, pin pages, and install
	// translation-table entries. Pinned down by export = KernelCall +
	// LocalRPC + HashInsert + SegmentCreate = 665 µs.
	SegmentCreate time.Duration

	// SegmentTeardown is the kernel work to revoke a segment (invalidate
	// descriptor, unpin, purge translations): revoke = KernelCall +
	// LocalRPC + HashDelete + SegmentTeardown = 307 µs.
	SegmentTeardown time.Duration

	// HashInsert/HashLookup/HashDelete are clerk-registry operations on the
	// open-addressed table (per probe for lookup).
	HashInsert time.Duration
	HashLookup time.Duration
	HashDelete time.Duration

	// ImportInstall is kernel work to install an imported descriptor into
	// the importer's tables and mint the user handle; import(cached) =
	// KernelCall + LocalRPC + HashLookup + ImportInstall = 196 µs.
	ImportInstall time.Duration

	// MissDetect is the clerk-side cost on an uncached import: checking
	// the returned record's flag word, comparing names, and updating the
	// local cache — import(uncached) − import(cached) − READ ≈ 23 µs.
	MissDetect time.Duration

	// SpinPoll is one user-level poll of a completion word while spin
	// waiting for a remote write to land (§4.3's lookup-with-notification
	// has the importer spin waiting).
	SpinPoll time.Duration

	// ---- RPC baseline (§2's six steps) -----------------------------------

	// MarshalFixed/MarshalPerByte: stub cost to marshal or unmarshal a
	// call's arguments into a packet.
	MarshalFixed   time.Duration
	MarshalPerByte time.Duration

	// PacketProcess is operating-system packet handling on receive (step 2
	// and step 5 of §2's control-transfer inventory).
	PacketProcess time.Duration

	// ThreadBlock is blocking the caller thread and rescheduling its
	// processor (steps 1 and 4); ThreadDispatch is scheduling and
	// dispatching the server (or resumed client) thread (steps 3 and 6).
	ThreadBlock    time.Duration
	ThreadDispatch time.Duration

	// ProcInvoke is the server-side procedure invocation overhead once the
	// server thread runs (stub entry, dispatch table, return).
	ProcInvoke time.Duration

	// ---- Reliable delivery (internal/reliable, §3.7) ---------------------
	//
	// These govern the opt-in retransmission layer under the
	// meta-instructions. They are policy constants, not calibrated hardware
	// costs: the paper's cluster treats loss as catastrophic, so there is
	// no published number to match.

	// RetryTimeout is the base per-attempt reply/ack timeout for a
	// single-cell operation. Larger transfers scale it by their expected
	// wire+drain time (an 8 KB block takes ~1.9 ms to move; a fixed 45 µs
	// budget would declare every block lost). ~4× a small-op round trip
	// keeps spurious retransmissions out of fault-free runs.
	RetryTimeout time.Duration

	// RetryBackoffMax caps the exponential growth of the per-attempt
	// timeout (timeout, 2×, 4×, … ≤ cap), bounding how long a retry burst
	// can stretch while still backing off a congested or flapping link.
	RetryBackoffMax time.Duration

	// RetryLimit is the number of retransmissions after the first attempt
	// before an operation gives up with ErrTimeout. Reliable block
	// transfers move in ReliableChunk pieces, so one attempt of a chunk
	// spans ~43 cells: at 5 % cell loss a chunk still survives an attempt
	// with probability ~0.25, and 16 retries push end-to-end failure below
	// 1e-9.
	RetryLimit int

	// ReliableChunk is the frame-payload ceiling for reliable block
	// transfers. Loss recovery retransmits whole frames (AAL5 discards a
	// frame on any missing cell), so a full 32 KB frame (~683 cells) would
	// almost never survive even 1 % cell loss; 2 KB (~43 cells) survives
	// with probability 0.65 per attempt.
	ReliableChunk int
}

// Default is the calibrated DECstation 5000/200 + FORE TCA-100 model.
// Derivations (see package comment for the targets):
//
//	wire time/cell    = 53 B × 8 / 140 Mb/s                      ≈ 3.03 µs
//	WRITE (1 cell)    = MetaTrap + PermCheck + RegisterFormat +
//	                    CellPushTx + wire + CellDrainRx +
//	                    DepositPerCell
//	                  = 7 + 2 + 3 + 4.2 + 3.03 + 4.5 + 6.35      ≈ 30 µs
//	READ  (1+1 cell)  = MetaTrap + PermCheck + CellPushTx + wire +
//	                    CellDrainRx + ReadFetch + CellPushTx + wire +
//	                    CellDrainRx + DepositPerCell
//	                  = 7+2+4.2 + 3.03 + 4.5+6.2+4.2 + 3.03 +
//	                    4.5+6.35                                 ≈ 45 µs
//	CAS   (1+1 cell)  = MetaTrap + PermCheck + CASFormat + CellPushTx +
//	                    wire + CellDrainRx + CASExec + CellPushTx +
//	                    wire + CellDrainRx + DepositResult
//	                  = 7+2+2+4.2 + 3.03 + 4.5+2.5+4.2 + 3.03 +
//	                    4.5+1.0                                  ≈ 38 µs
//	block throughput  : receiver stage = CellDrainRx + DepositPerCell
//	                  = 10.85 µs per 48 B payload                ≈ 35.4 Mb/s
//	notification      = NotifyPost + ContextSwitch + HandlerDispatch
//	                  = 90 + 100 + 70                            = 260 µs
//	export            = KernelCall + LocalRPC + HashInsert + SegmentCreate
//	                  = 45 + 140 + 60 + 420                      = 665 µs
//	import (cached)   = KernelCall + LocalRPC + HashLookup + ImportInstall
//	                  = 45 + 140 + 6 + 5                         = 196 µs
//	import (uncached) = cached + READ + MissDetect
//	                  = 196 + 45 + 23                            = 264 µs
//	revoke            = KernelCall + LocalRPC + HashDelete + SegmentTeardown
//	                  = 45 + 140 + 30 + 92                       = 307 µs
var Default = Params{
	CellSize:          53,
	CellPayload:       48,
	LinkBandwidthBits: 140_000_000,
	PropagationDelay:  0,
	SwitchLatency:     1 * us,
	CellPushTx:        4200 * time.Nanosecond,
	CellDrainRx:       4500 * time.Nanosecond,
	DepositPerCell:    6350 * time.Nanosecond,
	TxFIFOCells:       292, // TCA-100 has ~2 KB-class FIFOs per direction
	RxFIFOCells:       292,

	MetaTrap:         7 * us,
	PermCheck:        2 * us,
	RegisterFormat:   3 * us,
	CASFormat:        2 * us,
	ReadFetch:        6200 * time.Nanosecond,
	ReadFetchPerCell: 800 * time.Nanosecond,
	CASExec:          2500 * time.Nanosecond,
	DepositResult:    1 * us,
	LocalWordAccess:  2 * us,
	ByteSwapPerCell:  300 * time.Nanosecond,

	NotifyPost:      90 * us,
	ContextSwitch:   100 * us,
	HandlerDispatch: 70 * us,

	KernelCall: 45 * us,
	LocalRPC:   140 * us,

	SegmentCreate:   420 * us,
	SegmentTeardown: 92 * us,
	HashInsert:      60 * us,
	HashLookup:      6 * us,
	HashDelete:      30 * us,
	ImportInstall:   5 * us,
	MissDetect:      23 * us,
	SpinPoll:        2 * us,

	MarshalFixed:   30 * us,
	MarshalPerByte: 25 * time.Nanosecond,
	PacketProcess:  60 * us,
	ThreadBlock:    40 * us,
	ThreadDispatch: 55 * us,
	ProcInvoke:     25 * us,

	RetryTimeout:    200 * us,
	RetryBackoffMax: 10 * time.Millisecond,
	RetryLimit:      16,
	ReliableChunk:   2048,
}

// CellWireTime returns the serialization delay of one cell on the link.
func (p *Params) CellWireTime() time.Duration {
	return time.Duration(int64(p.CellSize) * 8 * int64(time.Second) / p.LinkBandwidthBits)
}

// CellsFor returns the number of cells needed to carry n payload bytes
// (minimum 1: a zero-byte transfer still sends a request cell).
func (p *Params) CellsFor(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + p.CellPayload - 1) / p.CellPayload
}

// NotifyOverhead is the full receiver-side control-transfer cost charged
// when a request carries notification (Table 2's 260 µs).
func (p *Params) NotifyOverhead() time.Duration {
	return p.NotifyPost + p.ContextSwitch + p.HandlerDispatch
}

// RxPerCell is the receiver-side per-cell service time, the bottleneck
// stage that sets block throughput.
func (p *Params) RxPerCell() time.Duration {
	return p.CellDrainRx + p.DepositPerCell
}

// BlockThroughputBits predicts steady-state memory-to-memory block-transfer
// throughput in bits/second from the pipeline bottleneck stage.
func (p *Params) BlockThroughputBits() float64 {
	bottleneck := p.RxPerCell()
	if t := p.CellPushTx; t > bottleneck {
		bottleneck = t
	}
	if t := p.CellWireTime(); t > bottleneck {
		bottleneck = t
	}
	return float64(p.CellPayload*8) / bottleneck.Seconds()
}

// Validate checks a (possibly ablated) parameter set for basic sanity:
// positive sizes and costs where zero would wedge the simulation, and the
// structural property the calibration relies on (the receiver's per-cell
// work, not the wire, bounds block throughput is NOT required — ablations
// may flip it — but the wire must be able to carry a cell at all).
func (p *Params) Validate() error {
	switch {
	case p.CellSize <= 0 || p.CellPayload <= 0 || p.CellPayload >= p.CellSize:
		return fmt.Errorf("model: cell geometry %d/%d invalid", p.CellPayload, p.CellSize)
	case p.LinkBandwidthBits <= 0:
		return fmt.Errorf("model: link bandwidth must be positive")
	case p.TxFIFOCells <= 0 || p.RxFIFOCells <= 0:
		return fmt.Errorf("model: FIFO depths must be positive")
	case p.CellPushTx <= 0 || p.CellDrainRx <= 0:
		return fmt.Errorf("model: per-cell PIO costs must be positive")
	case p.MetaTrap < 0 || p.PermCheck < 0 || p.DepositPerCell < 0:
		return fmt.Errorf("model: emulation costs must be non-negative")
	case p.NotifyPost < 0 || p.ContextSwitch < 0 || p.HandlerDispatch < 0:
		return fmt.Errorf("model: notification costs must be non-negative")
	}
	return nil
}
