package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event export. The format is the JSON Array/Object form
// understood by chrome://tracing and Perfetto: a top-level object with a
// traceEvents array whose entries carry a phase (ph), microsecond
// timestamp (ts), process/thread ids, and a name. We map the whole
// simulation to pid 0 and each Track to its own named tid, so one DX
// Readfile renders as parallel per-CPU and per-agent timelines.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the collected events as Chrome trace_event JSON,
// sorted by virtual time (stable: events at the same instant keep emission
// order). Counter events become counter tracks; spans and instants land on
// named threads. The output is deterministic: two identical runs produce
// identical bytes.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	// Collect tracks in first-appearance order so tids are deterministic.
	tids := make(map[string]int)
	var tracks []string
	tid := func(track string) int {
		id, ok := tids[track]
		if !ok {
			id = len(tracks) + 1
			tids[track] = id
			tracks = append(tracks, track)
		}
		return id
	}

	// Stable sort by virtual time; emission order breaks ties.
	ordered := make([]int, len(events))
	for i := range ordered {
		ordered[i] = i
	}
	sort.SliceStable(ordered, func(a, b int) bool {
		return events[ordered[a]].At < events[ordered[b]].At
	})

	out := chromeTrace{DisplayTimeUnit: "ns"}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "netmem simulation (virtual time)"},
	})
	body := make([]chromeEvent, 0, len(events))
	for _, i := range ordered {
		ev := events[i]
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ts:   float64(ev.At) / 1e3, // ns → µs
			Pid:  0,
			Tid:  tid(ev.Track),
		}
		switch ev.Phase {
		case PhaseSpan:
			ce.Ph = "X"
			d := float64(ev.Dur) / 1e3
			ce.Dur = &d
		case PhaseInstant:
			ce.Ph = "i"
			ce.Args = map[string]any{"s": "t"} // thread-scoped instant
		case PhaseCounter:
			ce.Ph = "C"
			ce.Args = map[string]any{"value": ev.Value}
		default:
			continue
		}
		body = append(body, ce)
	}
	for _, track := range tracks {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tids[track],
			Args: map[string]any{"name": track},
		})
	}
	out.TraceEvents = append(out.TraceEvents, body...)

	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("obs: trace export: %w", err)
	}
	return nil
}
