// Package obs is the simulation observability substrate: one Tracer per
// simulation environment collects span/event traces (exportable as Chrome
// trace_event JSON for chrome://tracing or Perfetto), monotonic counters,
// latency histograms, and CPU-utilization timelines — all keyed by virtual
// time, so two identical runs produce byte-identical output.
//
// The package sits below every simulation layer (it imports only the
// standard library and internal/stats); des, atm, cluster, rmem and dfs
// call into it through a *Tracer hung off the des.Env. A nil *Tracer is
// the disabled state: every method is nil-safe and instrumented code pays
// only a pointer test when observability is off.
//
// Two collection classes exist:
//
//   - Metrics (Count, Observe, Usage) are always collected while a tracer
//     is attached. They are cheap map updates and power Snapshot().
//   - Events (Span, Instant, Counter) are collected only when
//     Config.Events is set, because a busy simulation can emit millions.
package obs

import (
	"time"

	"netmem/internal/stats"
)

// Config selects what a Tracer collects.
type Config struct {
	// Events enables span/instant/counter event collection for trace
	// export. Metrics are always collected.
	Events bool
	// MaxEvents bounds the event buffer (default DefaultMaxEvents); events
	// beyond the bound are counted in Dropped rather than stored.
	MaxEvents int
	// TimelineBucket is the CPU-utilization timeline bucket width
	// (default stats.DefaultTimelineBucket).
	TimelineBucket time.Duration
}

// DefaultMaxEvents bounds the event buffer unless Config overrides it.
const DefaultMaxEvents = 1 << 20

// Event phases, mirroring the Chrome trace_event phase letters.
const (
	PhaseSpan    = 'X' // complete event: At..At+Dur
	PhaseInstant = 'i' // instantaneous event
	PhaseCounter = 'C' // counter sample
)

// Event is one trace event at a point (or span) of virtual time.
type Event struct {
	At    time.Duration // virtual time since the simulation epoch
	Dur   time.Duration // span length (PhaseSpan only)
	Phase byte
	Track string // rendered as a named Chrome thread
	Cat   string
	Name  string
	Value float64 // PhaseCounter only
}

// Tracer collects events and metrics for one simulation environment. The
// zero value is not usable; call New. A nil *Tracer is valid everywhere
// and collects nothing.
type Tracer struct {
	cfg Config

	events  []Event
	dropped int64

	counters  map[string]int64
	hists     map[string]*stats.Histogram
	timelines map[string]*stats.Timeline
}

// New creates a tracer.
func New(cfg Config) *Tracer {
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = DefaultMaxEvents
	}
	return &Tracer{
		cfg:       cfg,
		counters:  make(map[string]int64),
		hists:     make(map[string]*stats.Histogram),
		timelines: make(map[string]*stats.Timeline),
	}
}

// Enabled reports whether the tracer collects anything (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// EventsEnabled reports whether span/instant/counter events are stored.
func (t *Tracer) EventsEnabled() bool { return t != nil && t.cfg.Events }

// Reset discards everything collected so far (between experiment phases,
// e.g. after warm-up), keeping the configuration.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.events = nil
	t.dropped = 0
	t.counters = make(map[string]int64)
	t.hists = make(map[string]*stats.Histogram)
	t.timelines = make(map[string]*stats.Timeline)
}

// Dropped reports events discarded because the buffer was full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the collected events in emission order (live slice; do
// not mutate).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

func (t *Tracer) emit(ev Event) {
	if len(t.events) >= t.cfg.MaxEvents {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Span records a complete event covering [start, start+dur) on a track.
func (t *Tracer) Span(track, cat, name string, start, dur time.Duration) {
	if t == nil || !t.cfg.Events {
		return
	}
	t.emit(Event{At: start, Dur: dur, Phase: PhaseSpan, Track: track, Cat: cat, Name: name})
}

// Instant records a point event on a track.
func (t *Tracer) Instant(track, cat, name string, at time.Duration) {
	if t == nil || !t.cfg.Events {
		return
	}
	t.emit(Event{At: at, Phase: PhaseInstant, Track: track, Cat: cat, Name: name})
}

// Counter records a counter sample (rendered as a counter track in
// chrome://tracing/Perfetto).
func (t *Tracer) Counter(name string, at time.Duration, value float64) {
	if t == nil || !t.cfg.Events {
		return
	}
	t.emit(Event{At: at, Phase: PhaseCounter, Track: name, Name: name, Value: value})
}

// Count adds delta to the named monotonic counter metric.
func (t *Tracer) Count(name string, delta int64) {
	if t == nil {
		return
	}
	t.counters[name] += delta
}

// CounterValue returns the current value of a counter metric.
func (t *Tracer) CounterValue(name string) int64 {
	if t == nil {
		return 0
	}
	return t.counters[name]
}

// Observe records a duration sample into the named latency histogram.
func (t *Tracer) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	h := t.hists[name]
	if h == nil {
		h = &stats.Histogram{}
		t.hists[name] = h
	}
	h.ObserveDuration(d)
}

// Usage integrates a busy interval [start, start+dur) into the named
// utilization timeline (one per CPU/resource).
func (t *Tracer) Usage(name string, start, dur time.Duration) {
	if t == nil {
		return
	}
	tl := t.timelines[name]
	if tl == nil {
		tl = &stats.Timeline{Bucket: t.cfg.TimelineBucket}
		t.timelines[name] = tl
	}
	tl.Add(start, dur)
}
