package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"netmem/internal/stats"
)

// CounterSnap is one counter metric in a snapshot.
type CounterSnap struct {
	Name  string
	Value int64
}

// HistSnap summarizes one latency histogram.
type HistSnap struct {
	Name  string
	Count int
	Sum   time.Duration
	Min   time.Duration
	Max   time.Duration
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// TimelineSnap is one utilization timeline: busy time per fixed-width
// bucket of virtual time.
type TimelineSnap struct {
	Name   string
	Bucket time.Duration
	Busy   []time.Duration
}

// Snapshot is a deterministic point-in-time copy of a tracer's metrics:
// every slice is sorted by name, so identical runs compare equal with
// reflect.DeepEqual and render identical String() output.
type Snapshot struct {
	Counters  []CounterSnap
	Hists     []HistSnap
	Timelines []TimelineSnap
}

// Snapshot captures the current metrics (empty, not nil-fielded, for a
// nil tracer).
func (t *Tracer) Snapshot() Snapshot {
	var s Snapshot
	if t == nil {
		return s
	}
	for name, v := range t.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: v})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for name, h := range t.hists {
		s.Hists = append(s.Hists, HistSnap{
			Name:  name,
			Count: h.Count(),
			Sum:   time.Duration(h.Sum()),
			Min:   time.Duration(h.Min()),
			Max:   time.Duration(h.Max()),
			Mean:  time.Duration(h.Mean()),
			P50:   time.Duration(h.P50()),
			P95:   time.Duration(h.P95()),
			P99:   time.Duration(h.P99()),
		})
	}
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	for name, tl := range t.timelines {
		busy := append([]time.Duration(nil), tl.Buckets()...)
		s.Timelines = append(s.Timelines, TimelineSnap{Name: name, Bucket: tl.Bucket, Busy: busy})
	}
	sort.Slice(s.Timelines, func(i, j int) bool { return s.Timelines[i].Name < s.Timelines[j].Name })
	return s
}

// Counter returns the value of the named counter (0 if absent).
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Hist returns the named histogram summary.
func (s Snapshot) Hist(name string) (HistSnap, bool) {
	for _, h := range s.Hists {
		if h.Name == name {
			return h, true
		}
	}
	return HistSnap{}, false
}

// CounterSum sums all counters whose name starts with prefix — e.g.
// CounterSum("cpu.node0.") is node 0's total CPU demand in nanoseconds.
func (s Snapshot) CounterSum(prefix string) int64 {
	var sum int64
	for _, c := range s.Counters {
		if strings.HasPrefix(c.Name, prefix) {
			sum += c.Value
		}
	}
	return sum
}

// String renders the snapshot as a fixed-width text summary: counters,
// histograms with p50/p95/p99, and per-CPU utilization timelines. The
// output is deterministic.
func (s Snapshot) String() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		t := stats.NewTable("counter", "value")
		for _, c := range s.Counters {
			t.Add(c.Name, c.Value)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	if len(s.Hists) > 0 {
		t := stats.NewTable("histogram", "count", "mean", "p50", "p95", "p99", "max")
		for _, h := range s.Hists {
			t.Add(h.Name, h.Count, stats.Us(h.Mean), stats.Us(h.P50), stats.Us(h.P95), stats.Us(h.P99), stats.Us(h.Max))
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, tl := range s.Timelines {
		fmt.Fprintf(&b, "utilization %s (bucket %v):\n", tl.Name, tl.Bucket)
		rt := stats.Timeline{Bucket: tl.Bucket}
		for i, busy := range tl.Busy {
			rt.Add(time.Duration(i)*tl.Bucket, busy)
		}
		b.WriteString(rt.Render(40))
	}
	return b.String()
}
