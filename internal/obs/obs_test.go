package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

func TestNilTracerIsSafeAndDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() || tr.EventsEnabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Count("x", 1)
	tr.Observe("y", time.Microsecond)
	tr.Usage("cpu", 0, time.Millisecond)
	tr.Span("t", "c", "n", 0, time.Microsecond)
	tr.Instant("t", "c", "n", 0)
	tr.Counter("q", 0, 1)
	tr.Reset()
	if tr.CounterValue("x") != 0 || tr.Dropped() != 0 || len(tr.Events()) != 0 {
		t.Fatal("nil tracer collected something")
	}
	snap := tr.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Hists) != 0 || snap.String() != "" {
		t.Fatal("nil tracer snapshot not empty")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsWithoutEvents(t *testing.T) {
	tr := New(Config{})
	tr.Count("ops", 2)
	tr.Count("ops", 3)
	tr.Observe("lat", 10*time.Microsecond)
	tr.Span("t", "c", "n", 0, time.Microsecond) // events off: dropped silently
	if got := tr.CounterValue("ops"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if len(tr.Events()) != 0 {
		t.Fatalf("events collected with Events=false")
	}
	snap := tr.Snapshot()
	if snap.Counter("ops") != 5 {
		t.Fatalf("snapshot counter = %d", snap.Counter("ops"))
	}
	h, ok := snap.Hist("lat")
	if !ok || h.Count != 1 || h.P50 != 10*time.Microsecond {
		t.Fatalf("hist snap = %+v ok=%v", h, ok)
	}
}

func TestCounterSumPrefix(t *testing.T) {
	tr := New(Config{})
	tr.Count("cpu.node0.rx", 100)
	tr.Count("cpu.node0.reply", 50)
	tr.Count("cpu.node1.rx", 7)
	snap := tr.Snapshot()
	if got := snap.CounterSum("cpu.node0."); got != 150 {
		t.Fatalf("CounterSum = %d, want 150", got)
	}
}

func TestEventBufferBound(t *testing.T) {
	tr := New(Config{Events: true, MaxEvents: 3})
	for i := 0; i < 5; i++ {
		tr.Instant("t", "c", "n", time.Duration(i))
	}
	if len(tr.Events()) != 3 || tr.Dropped() != 2 {
		t.Fatalf("events=%d dropped=%d, want 3/2", len(tr.Events()), tr.Dropped())
	}
}

func TestChromeTraceExportValidAndOrdered(t *testing.T) {
	tr := New(Config{Events: true})
	// Emit deliberately out of virtual-time order; export must sort.
	tr.Span("node0.cpu", "cpu", "rx", 30*time.Microsecond, 5*time.Microsecond)
	tr.Instant("sched", "des", "spawn clerk", 10*time.Microsecond)
	tr.Counter("node0.cpu.busy", 20*time.Microsecond, 1)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var last float64 = -1
	n := 0
	for _, ev := range out.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		n++
		if ev.Ts < last {
			t.Fatalf("events not time-ordered: %v after %v", ev.Ts, last)
		}
		last = ev.Ts
	}
	if n != 3 {
		t.Fatalf("exported %d events, want 3", n)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	mk := func() Snapshot {
		tr := New(Config{TimelineBucket: time.Millisecond})
		// Insertion orders differ run to run only if we depended on map
		// iteration; exercise several keys.
		for _, k := range []string{"b", "a", "c"} {
			tr.Count("ctr."+k, 1)
			tr.Observe("lat."+k, 5*time.Microsecond)
			tr.Observe("lat."+k, 15*time.Microsecond)
			tr.Usage("cpu."+k, 0, 300*time.Microsecond)
		}
		return tr.Snapshot()
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshots differ:\n%+v\n%+v", a, b)
	}
	if a.String() != b.String() {
		t.Fatal("snapshot text differs")
	}
	if a.String() == "" {
		t.Fatal("snapshot text empty")
	}
}

func TestResetClears(t *testing.T) {
	tr := New(Config{Events: true})
	tr.Count("x", 1)
	tr.Observe("y", time.Microsecond)
	tr.Instant("t", "c", "n", 0)
	tr.Reset()
	if tr.CounterValue("x") != 0 || len(tr.Events()) != 0 {
		t.Fatal("reset did not clear")
	}
	snap := tr.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Hists) != 0 {
		t.Fatal("reset snapshot not empty")
	}
}
