// Package fstore is the local file system substrate behind the
// distributed file service: an in-memory inode store with files,
// directories, and symbolic links, addressed by NFS-style opaque file
// handles. It corresponds to the disk/UFS layer under the paper's file
// server — the experiments assume warm caches, so the store is
// deliberately memory-resident ("if there is a miss in the server cache,
// overall performance will be dependent on the disk transfer time rather
// than differences in the structure of the service", §5.2).
//
// The store is purely functional with respect to simulated time: service
// costs are charged by the dfs layer, not here.
package fstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// BlockSize is the file system block size (NFS-era 8 KB).
const BlockSize = 8192

// MaxSymlink bounds symbolic-link target length.
const MaxSymlink = 1024

// FileType enumerates inode types.
type FileType uint8

const (
	TypeFile FileType = iota + 1
	TypeDir
	TypeSymlink
)

func (t FileType) String() string {
	switch t {
	case TypeFile:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	}
	return fmt.Sprintf("FileType(%d)", uint8(t))
}

// Handle is an opaque NFS-style file handle: inode number plus a
// generation that invalidates handles to removed files.
type Handle struct {
	Ino uint32
	Gen uint32
}

// U64 packs the handle for hashing and wire encoding.
func (h Handle) U64() uint64 { return uint64(h.Ino)<<32 | uint64(h.Gen) }

// HandleFromU64 unpacks a packed handle.
func HandleFromU64(v uint64) Handle {
	return Handle{Ino: uint32(v >> 32), Gen: uint32(v)}
}

// Attr is the file attribute block (what NFS GETATTR returns).
type Attr struct {
	Type  FileType
	Mode  uint16
	Nlink uint32
	UID   uint32
	GID   uint32
	Size  int64
	Used  int64 // bytes of allocated blocks
	Atime int64 // simulated-time stamps, opaque to the store
	Mtime int64
	Ctime int64
}

// DirEntry is one directory entry.
type DirEntry struct {
	Name   string
	Handle Handle
}

// Errors.
var (
	ErrNotFound  = errors.New("fstore: no such file or directory")
	ErrExist     = errors.New("fstore: file exists")
	ErrNotDir    = errors.New("fstore: not a directory")
	ErrIsDir     = errors.New("fstore: is a directory")
	ErrNotEmpty  = errors.New("fstore: directory not empty")
	ErrStale     = errors.New("fstore: stale file handle")
	ErrNotLink   = errors.New("fstore: not a symbolic link")
	ErrBadName   = errors.New("fstore: invalid name")
	ErrBadOffset = errors.New("fstore: negative offset or count")
)

type inode struct {
	handle Handle
	attr   Attr

	data    []byte            // TypeFile
	entries map[string]Handle // TypeDir
	target  string            // TypeSymlink
}

// Store is an in-memory file system.
type Store struct {
	inodes  map[uint32]*inode
	nextIno uint32
	root    Handle
	clock   func() int64 // timestamp source

	// Stats.
	Ops map[string]int64
}

// New creates a store with an empty root directory. clock supplies
// timestamps (pass the simulation clock, or nil for zeros).
func New(clock func() int64) *Store {
	s := &Store{
		inodes: make(map[uint32]*inode),
		clock:  clock,
		Ops:    make(map[string]int64),
	}
	root := s.alloc(TypeDir, 0o755)
	root.attr.Nlink = 2
	s.root = root.handle
	return s
}

func (s *Store) now() int64 {
	if s.clock == nil {
		return 0
	}
	return s.clock()
}

func (s *Store) alloc(t FileType, mode uint16) *inode {
	s.nextIno++
	ino := &inode{
		handle: Handle{Ino: s.nextIno, Gen: 1},
		attr: Attr{
			Type: t, Mode: mode, Nlink: 1,
			Atime: s.now(), Mtime: s.now(), Ctime: s.now(),
		},
	}
	if t == TypeDir {
		ino.entries = make(map[string]Handle)
		ino.attr.Nlink = 2
	}
	s.inodes[ino.handle.Ino] = ino
	return ino
}

func (s *Store) get(h Handle) (*inode, error) {
	ino, ok := s.inodes[h.Ino]
	if !ok || ino.handle.Gen != h.Gen {
		return nil, ErrStale
	}
	return ino, nil
}

func (s *Store) getDir(h Handle) (*inode, error) {
	ino, err := s.get(h)
	if err != nil {
		return nil, err
	}
	if ino.attr.Type != TypeDir {
		return nil, ErrNotDir
	}
	return ino, nil
}

func validName(name string) error {
	if name == "" || name == "." || name == ".." || strings.ContainsAny(name, "/\x00") {
		return ErrBadName
	}
	return nil
}

// Root returns the root directory handle.
func (s *Store) Root() Handle { return s.root }

// GetAttr returns the attributes for h.
func (s *Store) GetAttr(h Handle) (Attr, error) {
	s.Ops["getattr"]++
	ino, err := s.get(h)
	if err != nil {
		return Attr{}, err
	}
	return ino.attr, nil
}

// SetAttr updates mode/uid/gid and (if size >= 0) truncates or extends.
func (s *Store) SetAttr(h Handle, mode uint16, uid, gid uint32, size int64) (Attr, error) {
	s.Ops["setattr"]++
	ino, err := s.get(h)
	if err != nil {
		return Attr{}, err
	}
	ino.attr.Mode = mode
	ino.attr.UID = uid
	ino.attr.GID = gid
	if size >= 0 {
		if ino.attr.Type != TypeFile {
			return Attr{}, ErrIsDir
		}
		if int64(len(ino.data)) > size {
			ino.data = ino.data[:size]
		} else {
			ino.data = append(ino.data, make([]byte, size-int64(len(ino.data)))...)
		}
		ino.attr.Size = size
		ino.attr.Used = (size + BlockSize - 1) / BlockSize * BlockSize
	}
	ino.attr.Ctime = s.now()
	return ino.attr, nil
}

// Lookup resolves name within directory dir.
func (s *Store) Lookup(dir Handle, name string) (Handle, Attr, error) {
	s.Ops["lookup"]++
	d, err := s.getDir(dir)
	if err != nil {
		return Handle{}, Attr{}, err
	}
	h, ok := d.entries[name]
	if !ok {
		return Handle{}, Attr{}, ErrNotFound
	}
	ino, err := s.get(h)
	if err != nil {
		return Handle{}, Attr{}, err
	}
	return h, ino.attr, nil
}

// Create makes a regular file in dir.
func (s *Store) Create(dir Handle, name string, mode uint16) (Handle, Attr, error) {
	s.Ops["create"]++
	return s.mknod(dir, name, TypeFile, mode, "")
}

// Mkdir makes a directory in dir.
func (s *Store) Mkdir(dir Handle, name string, mode uint16) (Handle, Attr, error) {
	s.Ops["mkdir"]++
	return s.mknod(dir, name, TypeDir, mode, "")
}

// Symlink makes a symbolic link to target in dir.
func (s *Store) Symlink(dir Handle, name, target string) (Handle, Attr, error) {
	s.Ops["symlink"]++
	if len(target) > MaxSymlink {
		return Handle{}, Attr{}, ErrBadName
	}
	return s.mknod(dir, name, TypeSymlink, 0o777, target)
}

func (s *Store) mknod(dir Handle, name string, t FileType, mode uint16, target string) (Handle, Attr, error) {
	if err := validName(name); err != nil {
		return Handle{}, Attr{}, err
	}
	d, err := s.getDir(dir)
	if err != nil {
		return Handle{}, Attr{}, err
	}
	if _, exists := d.entries[name]; exists {
		return Handle{}, Attr{}, ErrExist
	}
	ino := s.alloc(t, mode)
	ino.target = target
	if t == TypeSymlink {
		ino.attr.Size = int64(len(target))
	}
	d.entries[name] = ino.handle
	d.attr.Mtime = s.now()
	if t == TypeDir {
		d.attr.Nlink++
	}
	return ino.handle, ino.attr, nil
}

// Remove unlinks a file or symlink (or an empty directory) from dir.
func (s *Store) Remove(dir Handle, name string) error {
	s.Ops["remove"]++
	d, err := s.getDir(dir)
	if err != nil {
		return err
	}
	h, ok := d.entries[name]
	if !ok {
		return ErrNotFound
	}
	ino, err := s.get(h)
	if err != nil {
		return err
	}
	if ino.attr.Type == TypeDir {
		if len(ino.entries) != 0 {
			return ErrNotEmpty
		}
		d.attr.Nlink--
	}
	delete(d.entries, name)
	ino.attr.Nlink--
	if ino.attr.Nlink == 0 || ino.attr.Type == TypeDir {
		// Bump generation so outstanding handles go stale.
		delete(s.inodes, h.Ino)
	}
	d.attr.Mtime = s.now()
	return nil
}

// Rename moves an entry between directories.
func (s *Store) Rename(fromDir Handle, fromName string, toDir Handle, toName string) error {
	s.Ops["rename"]++
	if err := validName(toName); err != nil {
		return err
	}
	fd, err := s.getDir(fromDir)
	if err != nil {
		return err
	}
	td, err := s.getDir(toDir)
	if err != nil {
		return err
	}
	h, ok := fd.entries[fromName]
	if !ok {
		return ErrNotFound
	}
	if _, exists := td.entries[toName]; exists {
		return ErrExist
	}
	delete(fd.entries, fromName)
	td.entries[toName] = h
	fd.attr.Mtime = s.now()
	td.attr.Mtime = s.now()
	return nil
}

// ReadLink returns a symlink's target.
func (s *Store) ReadLink(h Handle) (string, error) {
	s.Ops["readlink"]++
	ino, err := s.get(h)
	if err != nil {
		return "", err
	}
	if ino.attr.Type != TypeSymlink {
		return "", ErrNotLink
	}
	return ino.target, nil
}

// Read copies up to count bytes at offset from a file. Short reads at EOF
// return the available bytes; reading at or past EOF returns 0 bytes.
func (s *Store) Read(h Handle, offset int64, count int) ([]byte, error) {
	s.Ops["read"]++
	if offset < 0 || count < 0 {
		return nil, ErrBadOffset
	}
	ino, err := s.get(h)
	if err != nil {
		return nil, err
	}
	if ino.attr.Type == TypeDir {
		return nil, ErrIsDir
	}
	if ino.attr.Type != TypeFile {
		return nil, ErrNotLink
	}
	ino.attr.Atime = s.now()
	if offset >= int64(len(ino.data)) {
		return nil, nil
	}
	end := offset + int64(count)
	if end > int64(len(ino.data)) {
		end = int64(len(ino.data))
	}
	out := make([]byte, end-offset)
	copy(out, ino.data[offset:end])
	return out, nil
}

// Write stores data at offset, extending the file as needed, and returns
// the new attributes.
func (s *Store) Write(h Handle, offset int64, data []byte) (Attr, error) {
	s.Ops["write"]++
	if offset < 0 {
		return Attr{}, ErrBadOffset
	}
	ino, err := s.get(h)
	if err != nil {
		return Attr{}, err
	}
	if ino.attr.Type != TypeFile {
		return Attr{}, ErrIsDir
	}
	end := offset + int64(len(data))
	if end > int64(len(ino.data)) {
		ino.data = append(ino.data, make([]byte, end-int64(len(ino.data)))...)
	}
	copy(ino.data[offset:], data)
	if end > ino.attr.Size {
		ino.attr.Size = end
	}
	ino.attr.Used = (ino.attr.Size + BlockSize - 1) / BlockSize * BlockSize
	ino.attr.Mtime = s.now()
	return ino.attr, nil
}

// ReadDir lists a directory in deterministic (sorted) order.
func (s *Store) ReadDir(h Handle) ([]DirEntry, error) {
	s.Ops["readdir"]++
	d, err := s.getDir(h)
	if err != nil {
		return nil, err
	}
	d.attr.Atime = s.now()
	out := make([]DirEntry, 0, len(d.entries))
	for name, eh := range d.entries {
		out = append(out, DirEntry{Name: name, Handle: eh})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// StatFS summarizes the store (the NFS STATFS call).
type FSStat struct {
	Files       int
	BytesUsed   int64
	BytesStored int64
}

// StatFS returns aggregate statistics.
func (s *Store) StatFS() FSStat {
	s.Ops["statfs"]++
	var st FSStat
	for _, ino := range s.inodes {
		st.Files++
		st.BytesStored += ino.attr.Size
		st.BytesUsed += ino.attr.Used
	}
	return st
}

// ResolvePath walks an absolute slash-separated path from the root,
// following symlinks up to a fixed depth. Convenience for tests, examples,
// and workload setup.
func (s *Store) ResolvePath(path string) (Handle, Attr, error) {
	return s.resolve(path, 0)
}

func (s *Store) resolve(path string, depth int) (Handle, Attr, error) {
	if depth > 8 {
		return Handle{}, Attr{}, fmt.Errorf("fstore: %s: too many levels of symbolic links", path)
	}
	h := s.root
	attr, err := s.GetAttr(h)
	if err != nil {
		return Handle{}, Attr{}, err
	}
	parts := strings.Split(strings.Trim(path, "/"), "/")
	for i := 0; i < len(parts); i++ {
		name := parts[i]
		if name == "" {
			continue
		}
		var err error
		h, attr, err = s.Lookup(h, name)
		if err != nil {
			return Handle{}, Attr{}, fmt.Errorf("%s: %w", name, err)
		}
		if attr.Type == TypeSymlink {
			target, err := s.ReadLink(h)
			if err != nil {
				return Handle{}, Attr{}, err
			}
			rest := strings.Join(parts[i+1:], "/")
			return s.resolve(strings.TrimSuffix(target, "/")+"/"+rest, depth+1)
		}
	}
	return h, attr, nil
}

// MkdirAll creates every directory on an absolute path, tolerating
// existing ones, and returns the final handle.
func (s *Store) MkdirAll(path string) (Handle, error) {
	h := s.root
	for _, name := range strings.Split(strings.Trim(path, "/"), "/") {
		if name == "" {
			continue
		}
		nh, _, err := s.Lookup(h, name)
		switch {
		case err == nil:
			h = nh
		case errors.Is(err, ErrNotFound):
			nh, _, err = s.Mkdir(h, name, 0o755)
			if err != nil {
				return Handle{}, err
			}
			h = nh
		default:
			return Handle{}, err
		}
	}
	return h, nil
}

// WriteFile creates (or truncates) the file at an absolute path with the
// given contents, creating parent directories. Setup convenience.
func (s *Store) WriteFile(path string, data []byte) (Handle, error) {
	dir := "/"
	name := strings.Trim(path, "/")
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		dir, name = name[:i], name[i+1:]
	}
	dh, err := s.MkdirAll(dir)
	if err != nil {
		return Handle{}, err
	}
	h, _, err := s.Lookup(dh, name)
	if errors.Is(err, ErrNotFound) {
		h, _, err = s.Create(dh, name, 0o644)
	}
	if err != nil {
		return Handle{}, err
	}
	if _, err := s.SetAttr(h, 0o644, 0, 0, 0); err != nil {
		return Handle{}, err
	}
	if _, err := s.Write(h, 0, data); err != nil {
		return Handle{}, err
	}
	return h, nil
}
