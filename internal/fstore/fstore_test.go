package fstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCreateLookupReadWrite(t *testing.T) {
	s := New(nil)
	dir, _, err := s.Mkdir(s.Root(), "home", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := s.Create(dir, "notes.txt", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(f, 0, []byte("hello fs")); err != nil {
		t.Fatal(err)
	}
	h, attr, err := s.Lookup(dir, "notes.txt")
	if err != nil {
		t.Fatal(err)
	}
	if h != f || attr.Size != 8 || attr.Type != TypeFile {
		t.Fatalf("lookup = %+v size %d", h, attr.Size)
	}
	data, err := s.Read(f, 0, 100)
	if err != nil || string(data) != "hello fs" {
		t.Fatalf("read = %q, %v", data, err)
	}
}

func TestSparseWriteAndEOF(t *testing.T) {
	s := New(nil)
	f, _ := s.WriteFile("/a", nil)
	if _, err := s.Write(f, 100, []byte("x")); err != nil {
		t.Fatal(err)
	}
	attr, _ := s.GetAttr(f)
	if attr.Size != 101 {
		t.Fatalf("size = %d", attr.Size)
	}
	hole, err := s.Read(f, 10, 10)
	if err != nil || !bytes.Equal(hole, make([]byte, 10)) {
		t.Fatalf("hole read = %v %v", hole, err)
	}
	if data, err := s.Read(f, 101, 10); err != nil || len(data) != 0 {
		t.Fatalf("EOF read = %v %v", data, err)
	}
	if data, err := s.Read(f, 99, 10); err != nil || len(data) != 2 {
		t.Fatalf("short read = %v %v", data, err)
	}
}

func TestReadWriteErrors(t *testing.T) {
	s := New(nil)
	if _, err := s.Read(s.Root(), 0, 1); !errors.Is(err, ErrIsDir) {
		t.Errorf("read dir: %v", err)
	}
	f, _ := s.WriteFile("/f", []byte("x"))
	if _, err := s.Read(f, -1, 1); !errors.Is(err, ErrBadOffset) {
		t.Errorf("negative offset: %v", err)
	}
	if _, err := s.Write(s.Root(), 0, []byte("x")); !errors.Is(err, ErrIsDir) {
		t.Errorf("write dir: %v", err)
	}
	if _, _, err := s.Lookup(f, "x"); !errors.Is(err, ErrNotDir) {
		t.Errorf("lookup in file: %v", err)
	}
}

func TestSymlinkAndResolve(t *testing.T) {
	s := New(nil)
	if _, err := s.WriteFile("/usr/bin/emacs", []byte("#!bin")); err != nil {
		t.Fatal(err)
	}
	usr, _, err := s.ResolvePath("/usr")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Symlink(usr, "local", "/usr/bin"); err != nil {
		t.Fatal(err)
	}
	h, attr, err := s.ResolvePath("/usr/local/emacs")
	if err != nil {
		t.Fatal(err)
	}
	if attr.Type != TypeFile {
		t.Fatalf("resolved type %v", attr.Type)
	}
	data, _ := s.Read(h, 0, 10)
	if string(data) != "#!bin" {
		t.Fatalf("through-link read = %q", data)
	}
	// ReadLink on the link itself.
	lh, lattr, err := s.Lookup(usr, "local")
	if err != nil || lattr.Type != TypeSymlink {
		t.Fatal(err)
	}
	target, err := s.ReadLink(lh)
	if err != nil || target != "/usr/bin" {
		t.Fatalf("readlink = %q %v", target, err)
	}
	if _, err := s.ReadLink(h); !errors.Is(err, ErrNotLink) {
		t.Errorf("readlink on file: %v", err)
	}
}

func TestSymlinkLoopDetected(t *testing.T) {
	s := New(nil)
	if _, _, err := s.Symlink(s.Root(), "a", "/b"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Symlink(s.Root(), "b", "/a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ResolvePath("/a"); err == nil {
		t.Fatal("symlink loop resolved successfully")
	}
}

func TestRemoveMakesHandleStale(t *testing.T) {
	s := New(nil)
	f, _ := s.WriteFile("/doomed", []byte("bye"))
	if err := s.Remove(s.Root(), "doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetAttr(f); !errors.Is(err, ErrStale) {
		t.Fatalf("stale handle: %v", err)
	}
	if err := s.Remove(s.Root(), "doomed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestRemoveNonEmptyDir(t *testing.T) {
	s := New(nil)
	if _, err := s.WriteFile("/d/inner", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(s.Root(), "d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("err = %v", err)
	}
	d, _, _ := s.ResolvePath("/d")
	if err := s.Remove(d, "inner"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(s.Root(), "d"); err != nil {
		t.Fatalf("empty dir remove: %v", err)
	}
}

func TestRename(t *testing.T) {
	s := New(nil)
	f, _ := s.WriteFile("/src/file", []byte("payload"))
	src, _, _ := s.ResolvePath("/src")
	dst, _ := s.MkdirAll("/dst")
	if err := s.Rename(src, "file", dst, "renamed"); err != nil {
		t.Fatal(err)
	}
	h, _, err := s.ResolvePath("/dst/renamed")
	if err != nil || h != f {
		t.Fatalf("post-rename resolve: %v %v", h, err)
	}
	if _, _, err := s.ResolvePath("/src/file"); err == nil {
		t.Fatal("old name still resolves")
	}
}

func TestReadDirSorted(t *testing.T) {
	s := New(nil)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := s.WriteFile("/"+n, nil); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := s.ReadDir(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name)
	}
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("order = %v", names)
		}
	}
}

func TestSetAttrTruncateExtend(t *testing.T) {
	s := New(nil)
	f, _ := s.WriteFile("/f", []byte("0123456789"))
	attr, err := s.SetAttr(f, 0o600, 1, 2, 4)
	if err != nil || attr.Size != 4 {
		t.Fatal(err)
	}
	data, _ := s.Read(f, 0, 100)
	if string(data) != "0123" {
		t.Fatalf("after truncate: %q", data)
	}
	if _, err := s.SetAttr(f, 0o600, 1, 2, 8); err != nil {
		t.Fatal(err)
	}
	data, _ = s.Read(f, 0, 100)
	if !bytes.Equal(data, []byte{'0', '1', '2', '3', 0, 0, 0, 0}) {
		t.Fatalf("after extend: %v", data)
	}
}

func TestStatFS(t *testing.T) {
	s := New(nil)
	s.WriteFile("/a", make([]byte, 100))
	s.WriteFile("/b/c", make([]byte, BlockSize+1))
	st := s.StatFS()
	// root + a + b + c
	if st.Files != 4 {
		t.Fatalf("files = %d", st.Files)
	}
	if st.BytesStored != 100+BlockSize+1 {
		t.Fatalf("stored = %d", st.BytesStored)
	}
	if st.BytesUsed != BlockSize+2*BlockSize {
		t.Fatalf("used = %d", st.BytesUsed)
	}
}

func TestBadNames(t *testing.T) {
	s := New(nil)
	for _, name := range []string{"", ".", "..", "a/b", "nul\x00"} {
		if _, _, err := s.Create(s.Root(), name, 0o644); !errors.Is(err, ErrBadName) {
			t.Errorf("Create(%q) = %v", name, err)
		}
	}
}

func TestHandlePackProperty(t *testing.T) {
	prop := func(ino, gen uint32) bool {
		h := Handle{Ino: ino, Gen: gen}
		return HandleFromU64(h.U64()) == h
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWriteReadProperty(t *testing.T) {
	// Property: any sequence of random writes produces a file equal to
	// the same writes applied to a plain byte slice.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(nil)
		f, err := s.WriteFile("/f", nil)
		if err != nil {
			return false
		}
		var shadow []byte
		for i := 0; i < 20; i++ {
			off := rng.Intn(5000)
			n := rng.Intn(2000)
			data := make([]byte, n)
			rng.Read(data)
			if _, err := s.Write(f, int64(off), data); err != nil {
				return false
			}
			if off+n > len(shadow) {
				shadow = append(shadow, make([]byte, off+n-len(shadow))...)
			}
			copy(shadow[off:], data)
		}
		got, err := s.Read(f, 0, len(shadow)+10)
		return err == nil && bytes.Equal(got, shadow)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestManyFilesStress(t *testing.T) {
	s := New(nil)
	for i := 0; i < 500; i++ {
		if _, err := s.WriteFile(fmt.Sprintf("/tree/d%d/f%d", i%10, i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		h, _, err := s.ResolvePath(fmt.Sprintf("/tree/d%d/f%d", i%10, i))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := s.Read(h, 0, 1)
		if data[0] != byte(i) {
			t.Fatalf("file %d corrupted", i)
		}
	}
}
