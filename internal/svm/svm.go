// Package svm implements an Ivy-style shared virtual memory system (Li &
// Hudak), the §6 comparison point: page-granularity sharing with a
// write-invalidate, single-writer/multiple-reader protocol coordinated by
// a central manager. It exists to make the paper's contrast measurable:
//
//   - "with SVM systems, the unit of sharing and data transfer is usually
//     a page … this large size might lead to false sharing between clerks
//     resulting in suboptimal performance", and
//   - "most SVM implementations require non-trivial processing and
//     control transfer at the machine that faults the page in, which is
//     contrary to our approach".
//
// Every fault here costs control transfers — a fault handler dispatch at
// the manager, at the owner, and for invalidations at every copy holder —
// plus a whole-page transfer, whereas the remote-memory model moves just
// the bytes asked for and dispatches nobody.
package svm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"netmem/internal/cluster"
	"netmem/internal/des"
)

// Proto is the cluster protocol id for SVM traffic.
const Proto byte = 0x03

// PageSize is the sharing granule ("in modern processors can be upwards
// of 4K bytes").
const PageSize = 4096

// Access is a page permission.
type Access uint8

const (
	Invalid Access = iota
	ReadOnly
	Writable
)

// message kinds.
const (
	mReadReq byte = iota + 1 // requester → manager
	mWriteReq
	mFetchReq   // manager → owner: send page to requester (grant in arg)
	mPageData   // owner → requester
	mInvalidate // manager → copy holder
	mInvAck     // copy holder → manager
)

// ErrBounds reports an out-of-range address.
var ErrBounds = errors.New("svm: address out of range")

type page struct {
	perm Access
	data []byte
}

// Agent is the per-node SVM runtime. One node (the manager) additionally
// coordinates ownership.
type Agent struct {
	node    *cluster.Node
	manager int
	npages  int
	pages   map[int]*page
	waiters map[int]*des.WaitQueue // faulting processes per page

	// Manager state (manager node only).
	owner   map[int]int
	copyset map[int]map[int]bool
	busy    map[int]bool
	pending map[int][]pendingReq
	xfers   map[int]*xfer

	// Stats.
	ReadFaults, WriteFaults int64
	Invalidations           int64
	PagesMoved              int64
	BytesMoved              int64
}

type pendingReq struct {
	from  int
	write bool
}

// New creates the agent for a node. All agents must agree on the manager
// node and the address-space size. The manager initially owns every page
// writable and zero-filled.
func New(node *cluster.Node, manager, npages int) *Agent {
	a := &Agent{
		node:    node,
		manager: manager,
		npages:  npages,
		pages:   make(map[int]*page),
		waiters: make(map[int]*des.WaitQueue),
	}
	if node.ID == manager {
		a.owner = make(map[int]int)
		a.copyset = make(map[int]map[int]bool)
		a.busy = make(map[int]bool)
		a.pending = make(map[int][]pendingReq)
		a.xfers = make(map[int]*xfer)
		for pg := 0; pg < npages; pg++ {
			a.owner[pg] = manager
			a.copyset[pg] = map[int]bool{manager: true}
			a.pages[pg] = &page{perm: Writable, data: make([]byte, PageSize)}
		}
	}
	node.RegisterProto(Proto, a.handle)
	return a
}

// faultCost is the control-transfer price of dispatching a fault/protocol
// handler on a node: the same post + context switch + dispatch path the
// remote-memory model charges only when notification is requested.
func (a *Agent) faultCost(p *des.Proc) {
	P := a.node.P
	a.node.UseCPU(p, cluster.CatControl, P.NotifyPost+P.ContextSwitch+P.HandlerDispatch)
}

func (a *Agent) wq(pg int) *des.WaitQueue {
	q, ok := a.waiters[pg]
	if !ok {
		q = des.NewWaitQueue(a.node.Env)
		a.waiters[pg] = q
	}
	return q
}

// Read copies n bytes at addr out of the shared address space, faulting
// the page in (read access) if needed.
func (a *Agent) Read(p *des.Proc, addr, n int) ([]byte, error) {
	if addr < 0 || n < 0 || addr+n > a.npages*PageSize {
		return nil, ErrBounds
	}
	out := make([]byte, 0, n)
	for n > 0 {
		pg := addr / PageSize
		off := addr % PageSize
		take := n
		if off+take > PageSize {
			take = PageSize - off
		}
		if err := a.ensure(p, pg, ReadOnly); err != nil {
			return nil, err
		}
		out = append(out, a.pages[pg].data[off:off+take]...)
		addr += take
		n -= take
	}
	return out, nil
}

// Write stores data at addr, faulting pages to writable (invalidating all
// other copies) as needed.
func (a *Agent) Write(p *des.Proc, addr int, data []byte) error {
	if addr < 0 || addr+len(data) > a.npages*PageSize {
		return ErrBounds
	}
	for len(data) > 0 {
		pg := addr / PageSize
		off := addr % PageSize
		take := len(data)
		if off+take > PageSize {
			take = PageSize - off
		}
		if err := a.ensure(p, pg, Writable); err != nil {
			return err
		}
		copy(a.pages[pg].data[off:], data[:take])
		addr += take
		data = data[take:]
	}
	return nil
}

// Perm reports the local permission on a page (for tests).
func (a *Agent) Perm(pg int) Access {
	if pl, ok := a.pages[pg]; ok {
		return pl.perm
	}
	return Invalid
}

// ensure faults the page to at least the wanted access.
func (a *Agent) ensure(p *des.Proc, pg int, want Access) error {
	for {
		if pl, ok := a.pages[pg]; ok && pl.perm >= want {
			return nil
		}
		// Page fault: trap + handler dispatch on the faulting machine.
		if want == Writable {
			a.WriteFaults++
		} else {
			a.ReadFaults++
		}
		a.faultCost(p)
		kind := mReadReq
		if want == Writable {
			kind = mWriteReq
		}
		if a.node.ID == a.manager {
			// Local fault on the manager: enter the protocol directly.
			a.managerRequest(p, a.node.ID, kind == mWriteReq, pg)
		} else {
			a.send(p, a.manager, kind, pg, nil, 0)
		}
		// Wait for the page to arrive (or, for a manager-local
		// resolution, for the protocol to complete).
		for {
			if pl, ok := a.pages[pg]; ok && pl.perm >= want {
				return nil
			}
			a.wq(pg).Wait(p)
		}
	}
}

// wire: kind(1) page(4) arg(4) data…
func (a *Agent) send(p *des.Proc, dst int, kind byte, pg int, data []byte, arg int) {
	msg := make([]byte, 9, 9+len(data))
	msg[0] = kind
	binary.BigEndian.PutUint32(msg[1:], uint32(pg))
	binary.BigEndian.PutUint32(msg[5:], uint32(arg))
	msg = append(msg, data...)
	a.node.SendFrame(p, dst, Proto, cluster.CatControl, msg)
}

func (a *Agent) handle(p *des.Proc, src int, frame []byte) {
	if len(frame) < 9 {
		a.node.Faults = append(a.node.Faults, fmt.Errorf("svm: short frame"))
		return
	}
	kind := frame[0]
	pg := int(binary.BigEndian.Uint32(frame[1:]))
	arg := int(binary.BigEndian.Uint32(frame[5:]))
	data := frame[9:]

	// Every protocol message dispatches a handler — control transfer.
	a.faultCost(p)

	switch kind {
	case mReadReq:
		a.managerRequest(p, src, false, pg)
	case mWriteReq:
		a.managerRequest(p, src, true, pg)
	case mFetchReq:
		a.ownerFetch(p, pg, arg&0xffff, arg>>16 == 1)
	case mPageData:
		perm := Access(arg)
		a.pages[pg] = &page{perm: perm, data: append([]byte(nil), data...)}
		a.PagesMoved++
		a.BytesMoved += int64(len(data))
		a.wq(pg).WakeAll()
		if a.node.ID == a.manager {
			a.finishPage(p, pg)
		} else {
			a.send(p, a.manager, mInvAck, pg, nil, doneMarker)
		}
	case mInvalidate:
		delete(a.pages, pg)
		a.Invalidations++
		a.send(p, a.manager, mInvAck, pg, nil, 0)
	case mInvAck:
		a.managerAck(p, pg, src, arg == doneMarker)
	}
}

// doneMarker distinguishes a transfer-complete ack from an invalidate ack.
const doneMarker = 0x7fff

// ---------------------------------------------------------------------------
// Manager protocol. Requests for a busy page queue; each request runs:
// invalidate copyset (write faults), fetch from owner, wait for the
// requester's completion ack, then serve the next queued request.

type xfer struct {
	requester int
	write     bool
	waitAcks  int
	fetched   bool
}

func (a *Agent) managerRequest(p *des.Proc, from int, write bool, pg int) {
	if a.busy[pg] {
		a.pending[pg] = append(a.pending[pg], pendingReq{from: from, write: write})
		return
	}
	a.busy[pg] = true
	a.startTransfer(p, pg, from, write)
}

func (a *Agent) startTransfer(p *des.Proc, pg, requester int, write bool) {
	x := &xfer{requester: requester, write: write}
	a.xfers[pg] = x

	if write {
		// Invalidate every copy except the owner's and the requester's.
		own := a.owner[pg]
		for c := range a.copyset[pg] {
			if c == own || c == requester {
				continue
			}
			x.waitAcks++
			if c == a.node.ID {
				delete(a.pages, pg)
				a.Invalidations++
				x.waitAcks--
				continue
			}
			a.send(p, c, mInvalidate, pg, nil, 0)
		}
	}
	if x.waitAcks == 0 {
		a.fetchFromOwner(p, pg, x)
	}
}

func (a *Agent) fetchFromOwner(p *des.Proc, pg int, x *xfer) {
	x.fetched = true
	own := a.owner[pg]
	grant := 0
	if x.write {
		grant = 1
	}
	if own == a.node.ID {
		a.ownerFetch(p, pg, x.requester, x.write)
		return
	}
	a.send(p, own, mFetchReq, pg, nil, grant<<16|x.requester)
}

// ownerFetch runs at the page's owner: ship the page, adjusting our own
// permission (downgrade for a read, invalidate for a write grant).
func (a *Agent) ownerFetch(p *des.Proc, pg, requester int, write bool) {
	pl, ok := a.pages[pg]
	if !ok {
		// We no longer hold it (already invalidated); the manager's state
		// machine should prevent this.
		a.node.Faults = append(a.node.Faults, fmt.Errorf("svm: fetch for page %d we do not hold", pg))
		return
	}
	perm := ReadOnly
	if write {
		perm = Writable
		delete(a.pages, pg)
		a.Invalidations++
	} else {
		pl.perm = ReadOnly
	}
	if requester == a.node.ID {
		// The owner is the requester (a permission upgrade, or the
		// manager fetching for itself): no page moves.
		a.pages[pg] = &page{perm: perm, data: append([]byte(nil), pl.data...)}
		a.wq(pg).WakeAll()
		if a.node.ID == a.manager {
			a.finishPage(p, pg)
		} else {
			a.send(p, a.manager, mInvAck, pg, nil, doneMarker)
		}
		return
	}
	a.send(p, requester, mPageData, pg, pl.data, int(perm))
	if a.node.ID != a.manager {
		// Nothing more for the owner to do; the requester acks the
		// manager directly.
		return
	}
	a.finishPage(p, pg)
}

// managerAck accounts an invalidation or completion ack.
func (a *Agent) managerAck(p *des.Proc, pg, from int, done bool) {
	x := a.xfers[pg]
	if x == nil {
		return
	}
	if done {
		a.finishPage(p, pg)
		return
	}
	delete(a.copyset[pg], from)
	x.waitAcks--
	if x.waitAcks == 0 && !x.fetched {
		a.fetchFromOwner(p, pg, x)
	}
}

// finishPage commits the transfer's directory update and serves the next
// queued request.
func (a *Agent) finishPage(p *des.Proc, pg int) {
	x := a.xfers[pg]
	if x == nil {
		return
	}
	delete(a.xfers, pg)
	if x.write {
		a.owner[pg] = x.requester
		a.copyset[pg] = map[int]bool{x.requester: true}
	} else {
		a.copyset[pg][x.requester] = true
	}
	a.busy[pg] = false
	if q := a.pending[pg]; len(q) > 0 {
		next := q[0]
		a.pending[pg] = q[1:]
		a.busy[pg] = true
		a.startTransfer(p, pg, next.from, next.write)
	}
}
