package svm

import (
	"bytes"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/model"
)

func rig(t *testing.T, nodes, npages int) (*des.Env, *cluster.Cluster, []*Agent) {
	t.Helper()
	env := des.NewEnv()
	cl := cluster.New(env, &model.Default, nodes)
	agents := make([]*Agent, nodes)
	for i := range agents {
		agents[i] = New(cl.Nodes[i], 0, npages)
	}
	return env, cl, agents
}

func run(t *testing.T, env *des.Env, fn func(p *des.Proc)) {
	t.Helper()
	env.Spawn("test", fn)
	if err := env.RunUntil(des.Time(60 * time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestWriteThenRemoteRead(t *testing.T) {
	env, _, agents := rig(t, 3, 4)
	run(t, env, func(p *des.Proc) {
		if err := agents[1].Write(p, 100, []byte("shared through SVM")); err != nil {
			t.Fatal(err)
		}
		got, err := agents[2].Read(p, 100, 18)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "shared through SVM" {
			t.Fatalf("got %q", got)
		}
		// Node 1 still holds a (downgraded) copy, node 2 a read copy.
		if agents[1].Perm(0) != ReadOnly || agents[2].Perm(0) != ReadOnly {
			t.Fatalf("perms after read sharing: %v %v", agents[1].Perm(0), agents[2].Perm(0))
		}
	})
}

func TestWriteInvalidatesReaders(t *testing.T) {
	env, _, agents := rig(t, 3, 2)
	run(t, env, func(p *des.Proc) {
		if err := agents[1].Write(p, 0, []byte("v1")); err != nil {
			t.Fatal(err)
		}
		if _, err := agents[2].Read(p, 0, 2); err != nil {
			t.Fatal(err)
		}
		// A new write by node 1 must invalidate node 2's copy…
		if err := agents[1].Write(p, 0, []byte("v2")); err != nil {
			t.Fatal(err)
		}
		p.Sleep(10 * time.Millisecond)
		if agents[2].Perm(0) != Invalid {
			t.Fatalf("reader's copy not invalidated: %v", agents[2].Perm(0))
		}
		// …and node 2's next read sees the new data.
		got, err := agents[2].Read(p, 0, 2)
		if err != nil || string(got) != "v2" {
			t.Fatalf("got %q, %v", got, err)
		}
		if agents[2].Invalidations == 0 {
			t.Fatal("no invalidation recorded")
		}
	})
}

func TestSingleWriterInvariant(t *testing.T) {
	env, _, agents := rig(t, 4, 1)
	run(t, env, func(p *des.Proc) {
		for round := 0; round < 3; round++ {
			for i, a := range agents {
				if err := a.Write(p, i*8, []byte{byte(round), byte(i)}); err != nil {
					t.Fatal(err)
				}
				// After node i's write, nobody else may hold writable.
				writable := 0
				for _, b := range agents {
					if b.Perm(0) == Writable {
						writable++
					}
				}
				if writable > 1 {
					t.Fatalf("%d writable copies", writable)
				}
			}
		}
		// All writes from all rounds are visible to a final reader.
		got, err := agents[0].Read(p, 0, 32)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if got[i*8] != 2 || got[i*8+1] != byte(i) {
				t.Fatalf("slot %d = % x", i, got[i*8:i*8+2])
			}
		}
	})
}

func TestCrossPageAccess(t *testing.T) {
	env, _, agents := rig(t, 2, 3)
	big := make([]byte, PageSize+500)
	for i := range big {
		big[i] = byte(i * 11)
	}
	run(t, env, func(p *des.Proc) {
		if err := agents[1].Write(p, PageSize-250, big); err != nil {
			t.Fatal(err)
		}
		got, err := agents[0].Read(p, PageSize-250, len(big))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, big) {
			t.Fatal("cross-page data corrupted")
		}
	})
}

func TestBounds(t *testing.T) {
	env, _, agents := rig(t, 2, 1)
	run(t, env, func(p *des.Proc) {
		if _, err := agents[0].Read(p, PageSize-1, 2); err != ErrBounds {
			t.Errorf("read past end: %v", err)
		}
		if err := agents[1].Write(p, -1, []byte("x")); err != ErrBounds {
			t.Errorf("negative write: %v", err)
		}
	})
}

func TestFaultsCostControlTransfers(t *testing.T) {
	// The §6 point: an SVM fault involves handler dispatches (control
	// transfers) at multiple machines, which the remote-memory model
	// avoids entirely for data access.
	env, cl, agents := rig(t, 3, 1)
	run(t, env, func(p *des.Proc) {
		if err := agents[1].Write(p, 0, []byte("x")); err != nil {
			t.Fatal(err)
		}
	})
	var control time.Duration
	for _, n := range cl.Nodes {
		control += n.CPUAcct[cluster.CatControl]
	}
	// Fault at node 1 + request handling at the manager + page delivery
	// handling back at node 1: at least three dispatch paths.
	if control < 3*260*time.Microsecond {
		t.Fatalf("control-transfer CPU = %v, want ≥ 3×260µs", control)
	}
}

func TestPageMovementGranularity(t *testing.T) {
	// Writing one byte moves a whole page once sharing is involved.
	env, _, agents := rig(t, 2, 1)
	run(t, env, func(p *des.Proc) {
		if err := agents[1].Write(p, 0, []byte{1}); err != nil {
			t.Fatal(err)
		}
	})
	if agents[1].BytesMoved != PageSize {
		t.Fatalf("moved %d bytes for a 1-byte write, want a full %d-byte page",
			agents[1].BytesMoved, PageSize)
	}
}

func TestFalseSharingPingPong(t *testing.T) {
	// Two nodes write to *different* variables that share a page: every
	// alternation moves the whole page and runs the whole protocol. This
	// is §6's false-sharing hazard, quantified.
	env, _, agents := rig(t, 3, 1)
	var perUpdate time.Duration
	run(t, env, func(p *des.Proc) {
		const rounds = 10
		start := p.Now()
		for i := 0; i < rounds; i++ {
			if err := agents[1].Write(p, 0, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			if err := agents[2].Write(p, 512, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		perUpdate = time.Duration(p.Now().Sub(start)) / (2 * rounds)
	})
	t.Logf("false-sharing SVM update: %v each (rmem remote write: ~30µs)", perUpdate)
	// Each update ping-pongs a 4K page through the protocol: the cost is
	// well over an order of magnitude above a 30µs one-word remote write.
	if perUpdate < 20*30*time.Microsecond {
		t.Fatalf("per-update cost %v implausibly low for page ping-pong", perUpdate)
	}
	if agents[1].Invalidations+agents[2].Invalidations == 0 {
		t.Fatal("no invalidations — pages did not ping-pong")
	}
}
