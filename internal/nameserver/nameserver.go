// Package nameserver implements the paper's simple segment name service
// (§4): a logically centralized registry of exported segment names that is
// physically a distributed collection of clerks, one per machine, with no
// central server. Clerks communicate exclusively through the remote-memory
// primitives — lookups are remote reads of other clerks' registries.
//
// Each clerk exports a well-known registry segment organized as an
// open-addressed hash table. Every clerk uses the same hash function, so
// an importing clerk can usually locate a name on the exporting machine
// with a single remote read of the corresponding bucket. On a probe miss
// (hash collision on the remote side) the clerk follows a configurable
// policy: keep probing with remote reads, transfer control immediately, or
// probe a few times and then transfer control — exactly the three options
// §4.2 enumerates.
package nameserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/lrpc"
	"netmem/internal/rmem"
)

// Well-known descriptor ids, reserved on every machine so the name service
// can bootstrap itself (§4.1: "certain well-known segment names have been
// reserved on each machine").
const (
	// RegistrySeg holds the clerk's hash-table registry of local exports.
	RegistrySeg uint16 = 0x0100
	// RequestSeg receives control-transfer lookup requests (one slot per
	// peer node); writes to it carry the notify bit.
	RequestSeg uint16 = 0x0101
	// ReplySeg receives records written back by remote clerks answering a
	// control-transfer lookup (one slot per peer node).
	ReplySeg uint16 = 0x0102
)

// The clerk boots before any other exports on its node, so its three
// well-known segments carry the kernel's first three generation numbers.
// Peers install descriptors against these without a handshake.
const (
	registryGen uint16 = 1
	requestGen  uint16 = 2
	replyGen    uint16 = 3
)

// MaxName is the longest registrable name. The limit keeps a registry
// record (flag + generation + location + name) within a single ATM cell's
// worth of remote read, which is what makes one-probe lookups cheap —
// §4.3: "the information that is retrieved on a lookup operation fits in a
// single ATM cell".
const MaxName = 20

// record layout inside the registry (all big-endian):
//
//	word 0: flag       (0 = empty, 1 = valid, 2 = tombstone)
//	word 1: epoch(16) | generation(16)  (exporter incarnation | segment generation)
//	word 2: segID(16) | owner node(16)
//	word 3: segment size
//	bytes 16..35: name, NUL-padded
//
// The epoch rides in word 1's previously-zero high half, so the record
// size — and with it Table 3's one-cell lookup calibration — is unchanged.
//
// 36 bytes are read remotely per probe; buckets are padded to a 40-byte
// stride for alignment.
const (
	recRead   = 36
	recStride = 40

	flagEmpty     = 0
	flagValid     = 1
	flagTombstone = 2
)

// DefaultBuckets is the default registry hash-table size (prime).
const DefaultBuckets = 509

// request/reply slot layout for control-transfer lookups.
const (
	reqSlotSize = 24 // name (20) + pad
	repSlotSize = 40 // flag word (4) + record (36)
)

// Errors.
var (
	ErrNotFound  = errors.New("nameserver: name not found")
	ErrExists    = errors.New("nameserver: name already exported")
	ErrTableFull = errors.New("nameserver: registry full")
	ErrBadName   = errors.New("nameserver: invalid name")
	ErrNoHint    = errors.New("nameserver: name not cached and no hint node supplied")
	// ErrPeerFenced reports a lookup routed at a peer the recovery layer
	// has declared dead; the caller should wait for a rebind instead of
	// burning a timeout against a machine known to be down.
	ErrPeerFenced = errors.New("nameserver: peer is fenced (declared dead)")
	// ErrNotReady reports an operation issued before the clerk's boot
	// process has exported its well-known segments. Boot is asynchronous
	// (clerks spawn at machine start), so early callers see this instead
	// of a crash and should retry with capped backoff rather than assume
	// the name service always boots first.
	ErrNotReady = errors.New("nameserver: clerk still booting")
)

// LookupPolicy selects how a clerk resolves a remote probe miss (§4.2's
// three options).
type LookupPolicy int

const (
	// ProbeForever keeps issuing remote reads on successive buckets until
	// the record is found or the table is exhausted (the paper's choice:
	// "that gives us the best performance" — control transfer only pays
	// off past about seven collisions).
	ProbeForever LookupPolicy = iota
	// ControlTransfer immediately asks the remote clerk to do the lookup
	// via a remote write with notification.
	ControlTransfer
	// ProbeThenTransfer probes ProbeLimit buckets, then transfers control.
	ProbeThenTransfer
)

// Config tunes a clerk.
type Config struct {
	Buckets      int          // registry buckets; 0 ⇒ DefaultBuckets
	Policy       LookupPolicy // remote lookup policy; default ProbeForever
	ProbeLimit   int          // probes before transfer under ProbeThenTransfer; 0 ⇒ 7
	RefreshEvery des.Duration // cache refresh period; 0 ⇒ no periodic daemon
	// Reliable routes the clerk's peer traffic — registry probes, refresh
	// re-reads, and control-transfer lookups — through the reliability
	// layer, so lookups survive cell loss instead of falling back on
	// timeouts (§3.7).
	Reliable bool
}

func (c *Config) fill() {
	if c.Buckets <= 0 {
		c.Buckets = DefaultBuckets
	}
	if c.ProbeLimit <= 0 {
		c.ProbeLimit = 7
	}
}

// Record is the parsed form of a registry entry.
type Record struct {
	Name  string
	Node  int
	Seg   uint16
	Gen   uint16
	Epoch uint16 // exporter incarnation the segment was exported under
	Size  int
}

// Clerk is the per-machine name-service agent. It is trusted and
// privileged; its clients are kernels, reached through local RPC.
type Clerk struct {
	cfg Config
	m   *rmem.Manager
	srv *lrpc.Server

	registry *rmem.Segment // well-known exported hash table (local exports)
	request  *rmem.Segment // control-transfer request slots
	reply    *rmem.Segment // control-transfer reply slots

	peerReg map[int]*rmem.Import // imported peer registries
	peerReq map[int]*rmem.Import // imported peer request segments
	peerRep map[int]*rmem.Import // imported peer reply segments

	// cache holds imported (remote) name records; local exports live in
	// the registry segment itself.
	cache map[string]Record
	// kernelImports tracks the rmem descriptors handed out per name so a
	// refresh can poison them when the record goes stale (§4.1: purged
	// "from the name cache and from the kernel's tables").
	kernelImports map[string][]*rmem.Import

	// fenced marks peers the recovery layer has declared dead: the refresh
	// daemon skips their records and lookups routed at them fail fast with
	// ErrPeerFenced instead of a timeout storm.
	fenced map[int]bool

	// Stats.
	RemoteProbes     int64 // remote reads issued for lookups
	ControlTransfers int64 // lookups resolved via control transfer
	CacheHits        int64
	CacheMisses      int64
	Purged           int64 // cache entries dropped by refresh
	FencedSkips      int64 // refresh probes suppressed against fenced peers
}

// New creates the clerk on m's node, exports its well-known segments, and
// installs descriptors for every peer's well-known segments. Peer clerks
// are created at boot on every machine (paper: "name clerks are created at
// boot time"), so the well-known ids and first-generation numbers are
// architectural constants and need no handshake.
func New(m *rmem.Manager, peers []int, cfg Config) *Clerk {
	cfg.fill()
	c := &Clerk{
		cfg:           cfg,
		m:             m,
		srv:           lrpc.NewServer(m.Node, "nameserver"),
		peerReg:       make(map[int]*rmem.Import),
		peerReq:       make(map[int]*rmem.Import),
		peerRep:       make(map[int]*rmem.Import),
		cache:         make(map[string]Record),
		kernelImports: make(map[string][]*rmem.Import),
		fenced:        make(map[int]bool),
	}
	c.srv.Register("ADDNAME", c.addName)
	c.srv.Register("LOOKUPNAME", c.lookupName)
	c.srv.Register("DELETENAME", c.deleteName)

	env := m.Node.Env
	env.Spawn(fmt.Sprintf("nsclerk%d.boot", m.Node.ID), func(p *des.Proc) {
		c.registry = m.ExportWellKnown(p, RegistrySeg, cfg.Buckets*recStride)
		c.registry.SetDefaultRights(rmem.RightRead | rmem.RightWrite | rmem.RightCAS)
		c.request = m.ExportWellKnown(p, RequestSeg, 256*reqSlotSize)
		c.request.SetDefaultRights(rmem.RightWrite)
		c.reply = m.ExportWellKnown(p, ReplySeg, 256*repSlotSize)
		c.reply.SetDefaultRights(rmem.RightWrite)
		for _, peer := range peers {
			if peer == m.Node.ID {
				continue
			}
			c.peerReg[peer] = m.Import(p, peer, RegistrySeg, registryGen, cfg.Buckets*recStride)
			c.peerReq[peer] = m.Import(p, peer, RequestSeg, requestGen, 256*reqSlotSize)
			c.peerRep[peer] = m.Import(p, peer, ReplySeg, replyGen, 256*repSlotSize)
			if cfg.Reliable {
				c.peerReg[peer].SetReliable(true)
				c.peerReq[peer].SetReliable(true)
				c.peerRep[peer].SetReliable(true)
			}
		}
		c.request.OnNotify(c.serveControlLookup)
		if cfg.RefreshEvery > 0 {
			env.SpawnDaemon(fmt.Sprintf("nsclerk%d.refresh", m.Node.ID), func(rp *des.Proc) {
				for {
					rp.Sleep(cfg.RefreshEvery)
					c.RefreshNow(rp)
				}
			})
		}
	})
	return c
}

// Node returns the clerk's node.
func (c *Clerk) Node() *cluster.Node { return c.m.Node }

// hash is the identical-everywhere bucket function (§4.2: "each clerk uses
// the same hash function ... information about a particular name will be
// in the same position on all the clerks").
func (c *Clerk) hash(name string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int(h % uint64(c.cfg.Buckets))
}

func validName(name string) error {
	if name == "" || len(name) > MaxName || strings.IndexByte(name, 0) >= 0 {
		return ErrBadName
	}
	return nil
}

// ---------------------------------------------------------------------------
// Registry records.

func packRecord(buf []byte, r Record, flag uint32) {
	binary.BigEndian.PutUint32(buf[0:], flag)
	binary.BigEndian.PutUint32(buf[4:], uint32(r.Epoch)<<16|uint32(r.Gen))
	binary.BigEndian.PutUint32(buf[8:], uint32(r.Seg)<<16|uint32(r.Node)&0xffff)
	binary.BigEndian.PutUint32(buf[12:], uint32(r.Size))
	for i := 0; i < MaxName; i++ {
		if i < len(r.Name) {
			buf[16+i] = r.Name[i]
		} else {
			buf[16+i] = 0
		}
	}
}

func parseRecord(buf []byte) (flag uint32, r Record) {
	flag = binary.BigEndian.Uint32(buf[0:])
	gw := binary.BigEndian.Uint32(buf[4:])
	r.Gen = uint16(gw)
	r.Epoch = uint16(gw >> 16)
	loc := binary.BigEndian.Uint32(buf[8:])
	r.Seg = uint16(loc >> 16)
	r.Node = int(loc & 0xffff)
	r.Size = int(binary.BigEndian.Uint32(buf[12:]))
	name := buf[16 : 16+MaxName]
	if i := strings.IndexByte(string(name), 0); i >= 0 {
		name = name[:i]
	}
	r.Name = string(name)
	return flag, r
}
