package nameserver

import (
	"testing"
	"time"

	"netmem/internal/des"
	"netmem/internal/rmem"
)

// Table 3 of the paper — elapsed time seen by the user, kernel-mediated:
//
//	Export (ADDNAME)          665 µs
//	Import (LOOKUP) cached    196 µs
//	Import (LOOKUP) uncached  264 µs
//	Revoke (DELETENAME)       307 µs
//	LOOKUP with notification  524 µs
//
// §4.3 also observes that uncached − cached (68 µs) is comparable to one
// remote read (45 µs): "cross-machine communication cost is basically the
// cost of simple data transfer".

func tol3(t *testing.T, name string, got, want time.Duration, tol float64) {
	t.Helper()
	lo := time.Duration(float64(want) * (1 - tol))
	hi := time.Duration(float64(want) * (1 + tol))
	if got < lo || got > hi {
		t.Errorf("%s = %v, want %v ±%.0f%%", name, got, want, tol*100)
	}
}

// timeOp runs op in a fresh 2-clerk cluster after boot and returns its
// elapsed virtual time.
func timeOp(t *testing.T, cfg Config, op func(p *des.Proc, clerks []*Clerk) error) time.Duration {
	t.Helper()
	env, _, clerks := testCluster(t, 2, cfg)
	var elapsed time.Duration
	runAfterBoot(t, env, func(p *des.Proc) {
		start := p.Now()
		if err := op(p, clerks); err != nil {
			t.Error(err)
		}
		elapsed = p.Now().Sub(start)
	})
	return elapsed
}

func TestTable3Export(t *testing.T) {
	got := timeOp(t, Config{}, func(p *des.Proc, clerks []*Clerk) error {
		_, err := clerks[0].Export(p, "bench", 4096, rmem.RightsAll)
		return err
	})
	tol3(t, "export (ADDNAME)", got, 665*time.Microsecond, 0.05)
}

func TestTable3ImportCached(t *testing.T) {
	env, _, clerks := testCluster(t, 2, Config{})
	var elapsed time.Duration
	runAfterBoot(t, env, func(p *des.Proc) {
		if _, err := clerks[1].Export(p, "bench", 64, rmem.RightsAll); err != nil {
			t.Fatal(err)
		}
		// Warm the cache with a first import.
		if _, err := clerks[0].Import(p, "bench", 1, false); err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		if _, err := clerks[0].Import(p, "bench", 1, false); err != nil {
			t.Fatal(err)
		}
		elapsed = p.Now().Sub(start)
	})
	tol3(t, "import (cached)", elapsed, 196*time.Microsecond, 0.05)
}

func TestTable3ImportUncached(t *testing.T) {
	env, _, clerks := testCluster(t, 2, Config{})
	var elapsed time.Duration
	runAfterBoot(t, env, func(p *des.Proc) {
		if _, err := clerks[1].Export(p, "bench", 64, rmem.RightsAll); err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		if _, err := clerks[0].Import(p, "bench", 1, false); err != nil {
			t.Fatal(err)
		}
		elapsed = p.Now().Sub(start)
	})
	tol3(t, "import (uncached)", elapsed, 264*time.Microsecond, 0.05)
}

func TestTable3UncachedMinusCachedIsAboutOneRead(t *testing.T) {
	env, _, clerks := testCluster(t, 2, Config{})
	var cached, uncached time.Duration
	runAfterBoot(t, env, func(p *des.Proc) {
		if _, err := clerks[1].Export(p, "bench", 64, rmem.RightsAll); err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		if _, err := clerks[0].Import(p, "bench", 1, false); err != nil {
			t.Fatal(err)
		}
		uncached = p.Now().Sub(start)
		start = p.Now()
		if _, err := clerks[0].Import(p, "bench", 1, false); err != nil {
			t.Fatal(err)
		}
		cached = p.Now().Sub(start)
	})
	diff := uncached - cached
	// Paper: 68 µs difference ≈ one 45 µs remote read plus miss handling.
	tol3(t, "uncached − cached", diff, 68*time.Microsecond, 0.10)
}

func TestTable3Revoke(t *testing.T) {
	env, _, clerks := testCluster(t, 2, Config{})
	var elapsed time.Duration
	runAfterBoot(t, env, func(p *des.Proc) {
		if _, err := clerks[0].Export(p, "bench", 64, rmem.RightsAll); err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		if err := clerks[0].Revoke(p, "bench"); err != nil {
			t.Fatal(err)
		}
		elapsed = p.Now().Sub(start)
	})
	tol3(t, "revoke (DELETENAME)", elapsed, 307*time.Microsecond, 0.05)
}

func TestTable3LookupWithNotification(t *testing.T) {
	env, _, clerks := testCluster(t, 2, Config{Policy: ControlTransfer})
	var elapsed time.Duration
	runAfterBoot(t, env, func(p *des.Proc) {
		if _, err := clerks[1].Export(p, "bench", 64, rmem.RightsAll); err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		if _, err := clerks[0].Import(p, "bench", 1, false); err != nil {
			t.Fatal(err)
		}
		elapsed = p.Now().Sub(start)
	})
	tol3(t, "lookup with notification", elapsed, 524*time.Microsecond, 0.10)
}
