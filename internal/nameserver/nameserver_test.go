package nameserver

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/model"
	"netmem/internal/obs"
	"netmem/internal/rmem"
)

// testCluster builds n nodes, each with an rmem manager and a name clerk.
func testCluster(t *testing.T, n int, cfg Config) (*des.Env, []*rmem.Manager, []*Clerk) {
	t.Helper()
	env := des.NewEnv()
	cl := cluster.New(env, &model.Default, n)
	peers := make([]int, n)
	for i := range peers {
		peers[i] = i
	}
	var ms []*rmem.Manager
	var clerks []*Clerk
	for i := 0; i < n; i++ {
		m := rmem.NewManager(cl.Nodes[i])
		ms = append(ms, m)
		clerks = append(clerks, New(m, peers, cfg))
	}
	return env, ms, clerks
}

// runAfterBoot runs fn once clerks have finished booting.
func runAfterBoot(t *testing.T, env *des.Env, fn func(p *des.Proc)) {
	t.Helper()
	env.Spawn("test", func(p *des.Proc) {
		p.Sleep(10 * time.Millisecond)
		fn(p)
	})
	if err := env.RunUntil(des.Time(60 * time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestExportThenLocalImport(t *testing.T) {
	env, _, clerks := testCluster(t, 2, Config{})
	runAfterBoot(t, env, func(p *des.Proc) {
		seg, err := clerks[0].Export(p, "frame-buffer", 4096, rmem.RightsAll)
		if err != nil {
			t.Fatal(err)
		}
		imp, err := clerks[0].Import(p, "frame-buffer", -1, false)
		if err != nil {
			t.Fatal(err)
		}
		if imp.Node() != 0 || imp.SegID() != seg.ID() || imp.Gen() != seg.Gen() || imp.Size() != 4096 {
			t.Fatalf("imported %+v, exported id=%d gen=%d", imp, seg.ID(), seg.Gen())
		}
	})
}

func TestCrossNodeImportAndUse(t *testing.T) {
	env, ms, clerks := testCluster(t, 2, Config{})
	runAfterBoot(t, env, func(p *des.Proc) {
		seg, err := clerks[1].Export(p, "shared", 256, rmem.RightsAll)
		if err != nil {
			t.Fatal(err)
		}
		imp, err := clerks[0].Import(p, "shared", 1, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := imp.Write(p, 0, []byte("through the registry"), false); err != nil {
			t.Fatal(err)
		}
		p.Sleep(time.Millisecond)
		if string(seg.Bytes()[:20]) != "through the registry" {
			t.Fatalf("segment = %q", seg.Bytes()[:20])
		}
		_ = ms
	})
}

func TestSecondImportHitsCache(t *testing.T) {
	env, _, clerks := testCluster(t, 2, Config{})
	runAfterBoot(t, env, func(p *des.Proc) {
		if _, err := clerks[1].Export(p, "svc", 64, rmem.RightsAll); err != nil {
			t.Fatal(err)
		}
		if _, err := clerks[0].Import(p, "svc", 1, false); err != nil {
			t.Fatal(err)
		}
		probesAfterFirst := clerks[0].RemoteProbes
		if probesAfterFirst == 0 {
			t.Fatal("first import should probe remotely")
		}
		if _, err := clerks[0].Import(p, "svc", 1, false); err != nil {
			t.Fatal(err)
		}
		if clerks[0].RemoteProbes != probesAfterFirst {
			t.Fatal("second import probed remotely despite cache")
		}
		if clerks[0].CacheHits == 0 {
			t.Fatal("no cache hit recorded")
		}
	})
}

func TestImportUnknownName(t *testing.T) {
	env, _, clerks := testCluster(t, 2, Config{})
	runAfterBoot(t, env, func(p *des.Proc) {
		if _, err := clerks[0].Import(p, "no-such", 1, false); err != ErrNotFound {
			t.Fatalf("err = %v, want ErrNotFound", err)
		}
		if _, err := clerks[0].Import(p, "no-such", -1, false); err != ErrNoHint {
			t.Fatalf("err = %v, want ErrNoHint", err)
		}
	})
}

func TestReexportSupersedes(t *testing.T) {
	// Late/re-registration: a newer export of the same name replaces the
	// record in place (the shard tier republishing "dfs.ring" after a
	// membership change); registering a *stale* segment still reports
	// ErrExists, and re-registering the current one is idempotent.
	env, _, clerks := testCluster(t, 2, Config{})
	runAfterBoot(t, env, func(p *des.Proc) {
		old, err := clerks[0].Export(p, "dup", 64, rmem.RightsAll)
		if err != nil {
			t.Fatal(err)
		}
		cur, err := clerks[0].Export(p, "dup", 64, rmem.RightsAll)
		if err != nil {
			t.Fatalf("re-export err = %v, want supersede", err)
		}
		rec, err := clerks[1].Lookup(p, "dup", 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Seg != cur.ID() || rec.Gen != cur.Gen() {
			t.Fatalf("lookup resolved seg %d gen %d, want the superseding export seg %d gen %d",
				rec.Seg, rec.Gen, cur.ID(), cur.Gen())
		}
		if err := clerks[0].Register(p, "dup", old); err != ErrExists {
			t.Fatalf("stale re-register err = %v, want ErrExists", err)
		}
		if err := clerks[0].Register(p, "dup", cur); err != nil {
			t.Fatalf("idempotent re-register err = %v, want nil", err)
		}
	})
}

func TestBadNames(t *testing.T) {
	env, _, clerks := testCluster(t, 2, Config{})
	runAfterBoot(t, env, func(p *des.Proc) {
		for _, name := range []string{"", "this-name-is-way-too-long-to-register", "nul\x00byte"} {
			if _, err := clerks[0].Export(p, name, 64, rmem.RightsAll); err != ErrBadName {
				t.Errorf("Export(%q) err = %v, want ErrBadName", name, err)
			}
		}
	})
}

func TestRevokeThenStaleAccessAndRefresh(t *testing.T) {
	env, _, clerks := testCluster(t, 2, Config{})
	runAfterBoot(t, env, func(p *des.Proc) {
		if _, err := clerks[1].Export(p, "volatile", 64, rmem.RightsAll); err != nil {
			t.Fatal(err)
		}
		imp, err := clerks[0].Import(p, "volatile", 1, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := clerks[1].Revoke(p, "volatile"); err != nil {
			t.Fatal(err)
		}
		// Before any refresh, the importer's descriptor still looks fine
		// locally, but the remote side NACKs it.
		if err := imp.Write(p, 0, []byte("x"), false); err != nil {
			t.Fatal(err)
		}
		p.Sleep(time.Millisecond)

		// Refresh purges the cache entry and poisons the descriptor, so
		// the next use "fails locally at the source" (§4.1).
		clerks[0].RefreshNow(p)
		if clerks[0].CachedNames() != 0 {
			t.Fatal("refresh did not purge the dead entry")
		}
		if clerks[0].Purged != 1 {
			t.Fatalf("purged = %d", clerks[0].Purged)
		}
		if err := imp.Write(p, 0, []byte("x"), false); err != rmem.ErrStale {
			t.Fatalf("post-refresh write err = %v, want local ErrStale", err)
		}
		// And a fresh import discovers the truth.
		if _, err := clerks[0].Import(p, "volatile", 1, false); err != ErrNotFound {
			t.Fatalf("re-import err = %v, want ErrNotFound", err)
		}
	})
}

func TestRefreshKeepsLiveEntries(t *testing.T) {
	env, _, clerks := testCluster(t, 2, Config{})
	runAfterBoot(t, env, func(p *des.Proc) {
		if _, err := clerks[1].Export(p, "stable", 64, rmem.RightsAll); err != nil {
			t.Fatal(err)
		}
		if _, err := clerks[0].Import(p, "stable", 1, false); err != nil {
			t.Fatal(err)
		}
		clerks[0].RefreshNow(p)
		if clerks[0].CachedNames() != 1 || clerks[0].Purged != 0 {
			t.Fatalf("live entry purged: cached=%d purged=%d", clerks[0].CachedNames(), clerks[0].Purged)
		}
	})
}

func TestReexportBumpsGeneration(t *testing.T) {
	env, _, clerks := testCluster(t, 2, Config{})
	runAfterBoot(t, env, func(p *des.Proc) {
		if _, err := clerks[1].Export(p, "gen", 64, rmem.RightsAll); err != nil {
			t.Fatal(err)
		}
		imp1, err := clerks[0].Import(p, "gen", 1, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := clerks[1].Revoke(p, "gen"); err != nil {
			t.Fatal(err)
		}
		if _, err := clerks[1].Export(p, "gen", 64, rmem.RightsAll); err != nil {
			t.Fatal(err)
		}
		// Old cache is stale; a forced lookup sees the new generation.
		rec, err := clerks[0].Lookup(p, "gen", 1, true)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Gen == imp1.Gen() {
			t.Fatal("forced lookup returned the stale generation")
		}
	})
}

func TestControlTransferPolicy(t *testing.T) {
	env, _, clerks := testCluster(t, 2, Config{Policy: ControlTransfer})
	runAfterBoot(t, env, func(p *des.Proc) {
		if _, err := clerks[1].Export(p, "via-ct", 64, rmem.RightsAll); err != nil {
			t.Fatal(err)
		}
		imp, err := clerks[0].Import(p, "via-ct", 1, false)
		if err != nil {
			t.Fatal(err)
		}
		if clerks[0].ControlTransfers != 1 {
			t.Fatalf("control transfers = %d, want 1", clerks[0].ControlTransfers)
		}
		if clerks[0].RemoteProbes != 0 {
			t.Fatalf("remote probes = %d, want 0 under ControlTransfer", clerks[0].RemoteProbes)
		}
		if imp.Size() != 64 {
			t.Fatalf("imported size = %d", imp.Size())
		}
	})
}

func TestControlTransferNotFound(t *testing.T) {
	env, _, clerks := testCluster(t, 2, Config{Policy: ControlTransfer})
	runAfterBoot(t, env, func(p *des.Proc) {
		if _, err := clerks[0].Import(p, "ghost", 1, false); err != ErrNotFound {
			t.Fatalf("err = %v, want ErrNotFound", err)
		}
	})
}

func TestProbeThenTransferFallsBack(t *testing.T) {
	// A tiny table with many names forces long probe chains; with a probe
	// limit of 1 most lookups must fall back to control transfer.
	env, _, clerks := testCluster(t, 2, Config{Buckets: 17, Policy: ProbeThenTransfer, ProbeLimit: 1})
	runAfterBoot(t, env, func(p *des.Proc) {
		for i := 0; i < 12; i++ {
			if _, err := clerks[1].Export(p, fmt.Sprintf("svc-%d", i), 64, rmem.RightsAll); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 12; i++ {
			if _, err := clerks[0].Import(p, fmt.Sprintf("svc-%d", i), 1, false); err != nil {
				t.Fatalf("svc-%d: %v", i, err)
			}
		}
		if clerks[0].ControlTransfers == 0 {
			t.Fatal("probe limit of 1 on a crowded table never fell back to control transfer")
		}
	})
}

func TestLinearProbingSurvivesCollisions(t *testing.T) {
	// Small prime table, enough names to guarantee collisions; every name
	// must remain findable both locally and remotely.
	env, _, clerks := testCluster(t, 2, Config{Buckets: 13})
	runAfterBoot(t, env, func(p *des.Proc) {
		const n = 10
		for i := 0; i < n; i++ {
			if _, err := clerks[1].Export(p, fmt.Sprintf("c%d", i), 32+i, rmem.RightsAll); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			rec, err := clerks[0].Lookup(p, fmt.Sprintf("c%d", i), 1, false)
			if err != nil {
				t.Fatalf("c%d: %v", i, err)
			}
			if rec.Size != 32+i {
				t.Fatalf("c%d: size %d, want %d", i, rec.Size, 32+i)
			}
		}
	})
}

func TestRegistryFull(t *testing.T) {
	env, _, clerks := testCluster(t, 2, Config{Buckets: 3})
	runAfterBoot(t, env, func(p *des.Proc) {
		var lastErr error
		for i := 0; i < 4; i++ {
			_, lastErr = clerks[0].Export(p, fmt.Sprintf("f%d", i), 16, rmem.RightsAll)
		}
		if lastErr != ErrTableFull {
			t.Fatalf("err = %v, want ErrTableFull", lastErr)
		}
	})
}

func TestDeleteReusesTombstone(t *testing.T) {
	env, _, clerks := testCluster(t, 2, Config{Buckets: 3})
	runAfterBoot(t, env, func(p *des.Proc) {
		for i := 0; i < 3; i++ {
			if _, err := clerks[0].Export(p, fmt.Sprintf("t%d", i), 16, rmem.RightsAll); err != nil {
				t.Fatal(err)
			}
		}
		if err := clerks[0].Revoke(p, "t1"); err != nil {
			t.Fatal(err)
		}
		if _, err := clerks[0].Export(p, "fresh", 16, rmem.RightsAll); err != nil {
			t.Fatalf("tombstone not reused: %v", err)
		}
		if _, err := clerks[0].Lookup(p, "fresh", -1, false); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRecordPackParseProperty(t *testing.T) {
	prop := func(nameRaw []byte, node uint8, seg, gen uint16, size uint16, flagRaw uint8) bool {
		name := ""
		for _, b := range nameRaw {
			if b == 0 || len(name) >= MaxName {
				break
			}
			name += string(rune(b%26 + 'a'))
		}
		flag := uint32(flagRaw % 3)
		rec := Record{Name: name, Node: int(node), Seg: seg, Gen: gen, Size: int(size)}
		var buf [recStride]byte
		packRecord(buf[:], rec, flag)
		gotFlag, got := parseRecord(buf[:])
		return gotFlag == flag && got == rec
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHashIdenticalAcrossClerks(t *testing.T) {
	_, _, clerks := testCluster(t, 3, Config{})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("name-%d-%d", i, rng.Int())
		if len(name) > MaxName {
			name = name[:MaxName]
		}
		h0 := clerks[0].hash(name)
		for _, c := range clerks[1:] {
			if c.hash(name) != h0 {
				t.Fatalf("hash(%q) differs across clerks", name)
			}
		}
		if h0 < 0 || h0 >= clerks[0].cfg.Buckets {
			t.Fatalf("hash(%q) = %d out of range", name, h0)
		}
	}
}

func TestThreeNodeRegistryIndependence(t *testing.T) {
	env, _, clerks := testCluster(t, 3, Config{})
	runAfterBoot(t, env, func(p *des.Proc) {
		if _, err := clerks[1].Export(p, "on-one", 64, rmem.RightsAll); err != nil {
			t.Fatal(err)
		}
		if _, err := clerks[2].Export(p, "on-two", 64, rmem.RightsAll); err != nil {
			t.Fatal(err)
		}
		// Node 0 finds each name only with the right hint.
		if _, err := clerks[0].Lookup(p, "on-one", 1, false); err != nil {
			t.Fatal(err)
		}
		if _, err := clerks[0].Lookup(p, "on-two", 2, false); err != nil {
			t.Fatal(err)
		}
		if _, err := clerks[0].Lookup(p, "on-one", 2, true); err != ErrNotFound {
			t.Fatalf("wrong-hint forced lookup err = %v, want ErrNotFound", err)
		}
	})
}

func TestPeriodicRefreshDaemon(t *testing.T) {
	env, _, clerks := testCluster(t, 2, Config{RefreshEvery: 50 * time.Millisecond})
	runAfterBoot(t, env, func(p *des.Proc) {
		if _, err := clerks[1].Export(p, "temp", 64, rmem.RightsAll); err != nil {
			t.Fatal(err)
		}
		if _, err := clerks[0].Import(p, "temp", 1, false); err != nil {
			t.Fatal(err)
		}
		if err := clerks[1].Revoke(p, "temp"); err != nil {
			t.Fatal(err)
		}
		p.Sleep(120 * time.Millisecond) // ≥ one refresh period
		if clerks[0].CachedNames() != 0 {
			t.Fatal("periodic refresh did not purge the revoked name")
		}
	})
}

func TestManyNamesAcrossCluster(t *testing.T) {
	// Stress: three machines export 40 names each; every machine imports
	// every foreign name. All resolutions succeed, descriptors work.
	env, ms, clerks := testCluster(t, 3, Config{})
	runAfterBoot(t, env, func(p *des.Proc) {
		for node, c := range clerks {
			for i := 0; i < 40; i++ {
				name := fmt.Sprintf("n%d-%02d", node, i)
				if _, err := c.Export(p, name, 64+i, rmem.RightsAll); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
		}
		for node, c := range clerks {
			for peer := range clerks {
				if peer == node {
					continue
				}
				for i := 0; i < 40; i += 7 {
					name := fmt.Sprintf("n%d-%02d", peer, i)
					imp, err := c.Import(p, name, peer, false)
					if err != nil {
						t.Fatalf("node %d importing %s: %v", node, name, err)
					}
					if imp.Size() != 64+i {
						t.Fatalf("%s: size %d, want %d", name, imp.Size(), 64+i)
					}
					if err := imp.Write(p, 0, []byte{1}, false); err != nil {
						t.Fatalf("%s write: %v", name, err)
					}
				}
			}
		}
		p.Sleep(5 * time.Millisecond)
	})
	for _, m := range ms {
		if len(m.WriteFaults) != 0 {
			t.Fatalf("write faults: %v", m.WriteFaults)
		}
	}
}

// A watchdog-fenced peer is skipped by refresh: no probes hit the dead
// machine (so the refresh daemon does not burn a retry-budget timeout per
// cached name per period), the cache survives for the eventual rebind, and
// the suppression is observable as one ns.peer.fenced event per peer per
// pass. Lifting the fence resumes normal probing.
func TestRefreshSkipsFencedPeer(t *testing.T) {
	env, _, clerks := testCluster(t, 2, Config{})
	tr := obs.New(obs.Config{})
	env.SetTracer(tr)
	runAfterBoot(t, env, func(p *des.Proc) {
		for _, name := range []string{"svc/a", "svc/b"} {
			if _, err := clerks[1].Export(p, name, 64, rmem.RightsAll); err != nil {
				t.Fatal(err)
			}
			if _, err := clerks[0].Import(p, name, 1, false); err != nil {
				t.Fatal(err)
			}
		}

		clerks[1].Node().Fail()
		clerks[0].FencePeer(1)
		probes := clerks[0].RemoteProbes
		clerks[0].RefreshNow(p)
		if clerks[0].RemoteProbes != probes {
			t.Fatalf("refresh probed a fenced peer: %d probes issued",
				clerks[0].RemoteProbes-probes)
		}
		if clerks[0].FencedSkips != 2 {
			t.Fatalf("FencedSkips = %d, want 2 (one per cached name)", clerks[0].FencedSkips)
		}
		if clerks[0].CachedNames() != 2 || clerks[0].Purged != 0 {
			t.Fatalf("fenced refresh disturbed the cache: cached=%d purged=%d",
				clerks[0].CachedNames(), clerks[0].Purged)
		}
		if n := tr.Snapshot().Counter("ns.peer.fenced"); n != 1 {
			t.Fatalf("ns.peer.fenced = %d, want 1 (noted once per peer per pass)", n)
		}

		clerks[1].Node().Recover()
		clerks[0].UnfencePeer(1)
		clerks[0].RefreshNow(p)
		if clerks[0].RemoteProbes == probes {
			t.Fatal("unfenced refresh issued no probes")
		}
		if clerks[0].CachedNames() != 2 || clerks[0].Purged != 0 {
			t.Fatalf("post-unfence refresh purged live entries: cached=%d purged=%d",
				clerks[0].CachedNames(), clerks[0].Purged)
		}
	})
}
