package nameserver

import (
	"testing"

	"netmem/internal/model"
)

func TestCollidingNamesActuallyCollide(t *testing.T) {
	cfg := Config{Buckets: 61}
	names := collidingNames(cfg, 8)
	if len(names) != 9 {
		t.Fatalf("got %d names", len(names))
	}
	probe := &Clerk{cfg: cfg}
	probe.cfg.fill()
	h0 := probe.hash(names[0])
	for _, n := range names[1:] {
		if probe.hash(n) != h0 {
			t.Fatalf("%q does not collide with %q", n, names[0])
		}
	}
}

func TestProbeCostGrowsLinearly(t *testing.T) {
	p1, err := MeasureCollisionLookup(&model.Default, 1, ProbeForever)
	if err != nil {
		t.Fatal(err)
	}
	p5, err := MeasureCollisionLookup(&model.Default, 5, ProbeForever)
	if err != nil {
		t.Fatal(err)
	}
	// Four extra probes ≈ four extra remote reads (~47µs each).
	extra := (p5 - p1).Microseconds()
	if extra < 4*40 || extra > 4*60 {
		t.Fatalf("4 extra probes cost %dµs, want ≈4×47µs", extra)
	}
}

func TestControlTransferCostIsFlat(t *testing.T) {
	c1, err := MeasureCollisionLookup(&model.Default, 1, ControlTransfer)
	if err != nil {
		t.Fatal(err)
	}
	c8, err := MeasureCollisionLookup(&model.Default, 8, ControlTransfer)
	if err != nil {
		t.Fatal(err)
	}
	// The answering clerk scans its local table; depth adds only local
	// probes, which are far cheaper than remote ones.
	if diff := (c8 - c1).Microseconds(); diff < -20 || diff > 60 {
		t.Fatalf("control-transfer cost moved %dµs between depth 1 and 8; should be nearly flat", diff)
	}
}

func TestCrossoverAtAboutSevenCollisions(t *testing.T) {
	// §4.2: "Control transfer is a viable option in our case only if we
	// expect seven or more collisions to occur in the hash table."
	k, err := ProbeTransferCrossover(&model.Default, 15)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("control transfer overtakes probing at %d collisions (paper: ≈7)", k)
	if k < 5 || k > 10 {
		t.Fatalf("crossover at %d collisions, paper says about seven", k)
	}
}
