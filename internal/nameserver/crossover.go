package nameserver

import (
	"fmt"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/model"
	"netmem/internal/rmem"
)

// §4.2's cost argument, made measurable: "The choice of which option to
// use is application dependent and is related to the cost of doing
// lookups, the number of expected lookups, and the cost of transferring
// control. Given the relative costs of remote data transfer in our
// implementation, we use the first option [probe with remote reads],
// because that gives us the best performance. Control transfer is a
// viable option in our case only if we expect seven or more collisions to
// occur in the hash table."

// collidingNames returns k+1 names that all hash to the same bucket of a
// cfg-sized table (the first will sit in the home bucket; the rest probe
// down the chain).
func collidingNames(cfg Config, k int) []string {
	cfg.fill()
	probe := &Clerk{cfg: cfg}
	target := -1
	var names []string
	for i := 0; len(names) <= k; i++ {
		name := fmt.Sprintf("c%05d", i)
		h := probe.hash(name)
		if target < 0 {
			target = h
		}
		if h == target {
			names = append(names, name)
		}
	}
	return names
}

// MeasureCollisionLookup measures one uncached import of a name that sits
// k probes deep in the exporter's registry, under the given policy.
func MeasureCollisionLookup(params *model.Params, k int, policy LookupPolicy) (time.Duration, error) {
	cfg := Config{Buckets: 61, Policy: policy}
	names := collidingNames(cfg, k)
	env := des.NewEnv()
	cl := cluster.New(env, params, 2)
	clerks := []*Clerk{
		New(rmem.NewManager(cl.Nodes[0]), []int{0, 1}, cfg),
		New(rmem.NewManager(cl.Nodes[1]), []int{0, 1}, cfg),
	}
	var elapsed time.Duration
	var err error
	env.Spawn("measure", func(p *des.Proc) {
		p.Sleep(10 * time.Millisecond)
		for _, n := range names {
			if _, e := clerks[1].Export(p, n, 64, rmem.RightsAll); e != nil {
				err = e
				return
			}
		}
		start := p.Now()
		if _, e := clerks[0].Import(p, names[k], 1, false); e != nil {
			err = e
			return
		}
		elapsed = time.Duration(p.Now().Sub(start))
	})
	if runErr := env.RunUntil(des.Time(time.Minute)); runErr != nil {
		return 0, runErr
	}
	return elapsed, err
}

// ProbeTransferCrossover finds the smallest collision depth at which
// resolving a lookup by control transfer becomes cheaper than probing
// with remote reads (the paper measures this at about seven).
func ProbeTransferCrossover(params *model.Params, maxK int) (int, error) {
	for k := 1; k <= maxK; k++ {
		probe, err := MeasureCollisionLookup(params, k, ProbeForever)
		if err != nil {
			return 0, fmt.Errorf("probe at depth %d: %w", k, err)
		}
		ct, err := MeasureCollisionLookup(params, k, ControlTransfer)
		if err != nil {
			return 0, fmt.Errorf("control transfer at depth %d: %w", k, err)
		}
		if ct < probe {
			return k, nil
		}
	}
	return 0, fmt.Errorf("no crossover up to depth %d", maxK)
}
