package nameserver

import (
	"fmt"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/model"
	"netmem/internal/obs"
	"netmem/internal/rmem"
)

// Table3 holds the reproduced measurements of the paper's Table 3 ("Name
// Server Performance") — elapsed time seen by the user, kernel-mediated.
type Table3 struct {
	Export         time.Duration // paper: 665 µs
	ImportCached   time.Duration // paper: 196 µs
	ImportUncached time.Duration // paper: 264 µs
	Revoke         time.Duration // paper: 307 µs
	LookupNotify   time.Duration // paper: 524 µs
}

// MeasureTable3 runs the five Table 3 operations, each on a fresh
// two-clerk cluster under the given cost model.
func MeasureTable3(params *model.Params) (Table3, error) {
	return MeasureTable3Obs(params, nil)
}

// MeasureTable3Obs is MeasureTable3 with an observability tracer attached
// to every scenario's environment (nil disables tracing). The scenarios
// each run on a fresh cluster but share the tracer, so its metrics
// accumulate across the whole table.
func MeasureTable3Obs(params *model.Params, tr *obs.Tracer) (Table3, error) {
	var out Table3

	run := func(cfg Config, fn func(p *des.Proc, clerks []*Clerk) (time.Duration, error)) (time.Duration, error) {
		env := des.NewEnv()
		if tr != nil {
			env.SetTracer(tr)
		}
		cl := cluster.New(env, params, 2)
		clerks := []*Clerk{
			New(rmem.NewManager(cl.Nodes[0]), []int{0, 1}, cfg),
			New(rmem.NewManager(cl.Nodes[1]), []int{0, 1}, cfg),
		}
		var result time.Duration
		var err error
		env.Spawn("measure", func(p *des.Proc) {
			p.Sleep(10 * time.Millisecond) // clerks boot
			result, err = fn(p, clerks)
		})
		if runErr := env.RunUntil(des.Time(time.Minute)); runErr != nil {
			return 0, runErr
		}
		return result, err
	}

	timed := func(p *des.Proc, fn func() error) (time.Duration, error) {
		start := p.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		return time.Duration(p.Now().Sub(start)), nil
	}

	var err error
	out.Export, err = run(Config{}, func(p *des.Proc, clerks []*Clerk) (time.Duration, error) {
		return timed(p, func() error {
			_, e := clerks[0].Export(p, "bench", 4096, rmem.RightsAll)
			return e
		})
	})
	if err != nil {
		return out, fmt.Errorf("export: %w", err)
	}

	out.ImportUncached, err = run(Config{}, func(p *des.Proc, clerks []*Clerk) (time.Duration, error) {
		if _, e := clerks[1].Export(p, "bench", 64, rmem.RightsAll); e != nil {
			return 0, e
		}
		return timed(p, func() error {
			_, e := clerks[0].Import(p, "bench", 1, false)
			return e
		})
	})
	if err != nil {
		return out, fmt.Errorf("import uncached: %w", err)
	}

	out.ImportCached, err = run(Config{}, func(p *des.Proc, clerks []*Clerk) (time.Duration, error) {
		if _, e := clerks[1].Export(p, "bench", 64, rmem.RightsAll); e != nil {
			return 0, e
		}
		if _, e := clerks[0].Import(p, "bench", 1, false); e != nil {
			return 0, e
		}
		return timed(p, func() error {
			_, e := clerks[0].Import(p, "bench", 1, false)
			return e
		})
	})
	if err != nil {
		return out, fmt.Errorf("import cached: %w", err)
	}

	out.Revoke, err = run(Config{}, func(p *des.Proc, clerks []*Clerk) (time.Duration, error) {
		if _, e := clerks[0].Export(p, "bench", 64, rmem.RightsAll); e != nil {
			return 0, e
		}
		return timed(p, func() error { return clerks[0].Revoke(p, "bench") })
	})
	if err != nil {
		return out, fmt.Errorf("revoke: %w", err)
	}

	out.LookupNotify, err = run(Config{Policy: ControlTransfer},
		func(p *des.Proc, clerks []*Clerk) (time.Duration, error) {
			if _, e := clerks[1].Export(p, "bench", 64, rmem.RightsAll); e != nil {
				return 0, e
			}
			return timed(p, func() error {
				_, e := clerks[0].Import(p, "bench", 1, false)
				return e
			})
		})
	if err != nil {
		return out, fmt.Errorf("lookup with notification: %w", err)
	}

	return out, nil
}
