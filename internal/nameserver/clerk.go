package nameserver

import (
	"encoding/binary"
	"fmt"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/rmem"
)

// ---------------------------------------------------------------------------
// User-facing operations. Each follows the paper's path: the user makes a
// kernel call, which the kernel turns into a local RPC to the clerk.

// Export creates and pins a new segment of the given size, grants rights,
// and registers it under name with the local clerk (the ADDNAME RPC).
// Table 3's 665 µs export is the sum of this path: kernel call + segment
// creation + local RPC + registry insert.
func (c *Clerk) Export(p *des.Proc, name string, size int, rights rmem.Rights) (*rmem.Segment, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	c.m.Node.KernelCall(p)
	seg := c.m.Export(p, size)
	seg.SetDefaultRights(rights)
	if _, err := c.srv.Call(p, "ADDNAME", addArgs{name: name, seg: seg}); err != nil {
		c.m.Revoke(p, seg)
		return nil, err
	}
	return seg, nil
}

// Register records an already-exported local segment under name — the path
// a subsystem that manages its own segments (a shard server's request
// channel, say) uses to publish them without exporting anew.
func (c *Clerk) Register(p *des.Proc, name string, seg *rmem.Segment) error {
	if err := validName(name); err != nil {
		return err
	}
	c.m.Node.KernelCall(p)
	_, err := c.srv.Call(p, "ADDNAME", addArgs{name: name, seg: seg})
	return err
}

// Import resolves name to a remote segment and installs a kernel
// descriptor for it. If the clerk's cache cannot satisfy the lookup, the
// user-supplied hint names the machine whose clerk should be probed
// (§4.2: "it uses a user-supplied hint, specifying a remote machine");
// hint < 0 means no hint. force skips the cache, the explicit remote
// lookup the paper gives users to cope with staleness.
func (c *Clerk) Import(p *des.Proc, name string, hint int, force bool) (*rmem.Import, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	c.m.Node.KernelCall(p)
	v, err := c.srv.Call(p, "LOOKUPNAME", lookupArgs{p: p, name: name, hint: hint, force: force})
	if err != nil {
		return nil, err
	}
	rec := v.(Record)
	imp := c.m.Import(p, rec.Node, rec.Seg, rec.Gen, rec.Size)
	// The record's epoch is the lease: fenced descriptors present it on
	// every request, so a restart on the exporting machine is detected as
	// ErrStaleGeneration instead of a silent timeout.
	imp.SetEpoch(rec.Epoch)
	c.kernelImports[name] = append(c.kernelImports[name], imp)
	return imp, nil
}

// FencePeer marks a peer as declared dead (typically by a watchdog
// verdict): refresh probes against it are suppressed and lookups routed at
// it fail fast with ErrPeerFenced. UnfencePeer lifts the fence after the
// peer's new incarnation has been re-imported.
func (c *Clerk) FencePeer(node int) { c.fenced[node] = true }

// UnfencePeer lifts a peer's fence.
func (c *Clerk) UnfencePeer(node int) { delete(c.fenced, node) }

// PeerFenced reports whether a peer is currently fenced.
func (c *Clerk) PeerFenced(node int) bool { return c.fenced[node] }

// Lookup resolves a name to its record without installing a descriptor.
func (c *Clerk) Lookup(p *des.Proc, name string, hint int, force bool) (Record, error) {
	if err := validName(name); err != nil {
		return Record{}, err
	}
	c.m.Node.KernelCall(p)
	v, err := c.srv.Call(p, "LOOKUPNAME", lookupArgs{p: p, name: name, hint: hint, force: force})
	if err != nil {
		return Record{}, err
	}
	return v.(Record), nil
}

// Revoke unregisters a locally exported name and tears the segment down
// (the DELETENAME RPC). Remote clerks discover the deletion lazily: their
// cached generation numbers stop matching, and their next refresh purges
// the entry.
func (c *Clerk) Revoke(p *des.Proc, name string) error {
	if err := validName(name); err != nil {
		return err
	}
	c.m.Node.KernelCall(p)
	_, err := c.srv.Call(p, "DELETENAME", name)
	return err
}

// ---------------------------------------------------------------------------
// Clerk procedures (behind local RPC).

type addArgs struct {
	name string
	seg  *rmem.Segment
}

type lookupArgs struct {
	p     *des.Proc
	name  string
	hint  int
	force bool
}

func (c *Clerk) addName(p *des.Proc, args any) (any, error) {
	a := args.(addArgs)
	n := c.m.Node
	if c.registry == nil {
		return nil, ErrNotReady
	}
	n.UseCPU(p, cluster.CatClient, n.P.HashInsert)
	rec := Record{Name: a.name, Node: n.ID, Seg: a.seg.ID(), Gen: a.seg.Gen(),
		Epoch: c.m.Incarnation(), Size: a.seg.Size()}
	return nil, c.insertRecord(rec)
}

// insertRecord places rec in the clerk's registry table, superseding a
// stale record for the same name in place.
func (c *Clerk) insertRecord(rec Record) error {
	reg := c.registry.Bytes()
	b := c.hash(rec.Name)
	for probe := 0; probe < c.cfg.Buckets; probe++ {
		off := ((b + probe) % c.cfg.Buckets) * recStride
		flag, old := parseRecord(reg[off:])
		switch {
		case flag == flagValid && old.Name == rec.Name:
			// Late/re-registration supersede: a record for the same name
			// replaces the old one in place when it is newer — a later
			// incarnation epoch, or a later segment generation within the
			// same epoch (the shard tier re-publishing "dfs.ring" after a
			// membership change). The single-writer invalidate/fill/validate
			// protocol makes the swap atomic with respect to remote reads;
			// remote holders of the old record fail safely on the stale
			// generation and re-resolve. Registering a stale or identical
			// generation for a different segment still reports ErrExists.
			if rec.Epoch > old.Epoch || (rec.Epoch == old.Epoch && rec.Gen > old.Gen) {
				binary.BigEndian.PutUint32(reg[off:], flagEmpty)
				packRecord(reg[off:], rec, flagEmpty)
				binary.BigEndian.PutUint32(reg[off:], flagValid)
				return nil
			}
			if rec == old {
				return nil // idempotent re-registration of the same export
			}
			return ErrExists
		case flag == flagValid:
			continue // collision: linear probe
		default:
			// Single-writer update protocol: invalidate, fill, validate.
			// The final flag store is a single-word write, atomic with
			// respect to remote reads (§3.4).
			binary.BigEndian.PutUint32(reg[off:], flagEmpty)
			packRecord(reg[off:], rec, flagEmpty)
			binary.BigEndian.PutUint32(reg[off:], flagValid)
			return nil
		}
	}
	return ErrTableFull
}

// ApplyRecord installs an arbitrary record — typically one agreed through
// a replicated control-plane log, pointing at a segment on some other
// machine — into this clerk's registry, with the same supersede rules as
// a local registration. Replicated registries make any clerk able to
// answer lookups for control-plane names, so the exporting machine's
// clerk is no longer a single point of truth.
func (c *Clerk) ApplyRecord(p *des.Proc, rec Record) error {
	if err := validName(rec.Name); err != nil {
		return err
	}
	if c.registry == nil {
		return ErrNotReady
	}
	c.m.Node.UseCPU(p, cluster.CatProc, c.m.Node.P.HashInsert)
	return c.insertRecord(rec)
}

// Ready reports whether the clerk's boot process has exported its
// well-known segments; until then registrations and lookups return
// ErrNotReady.
func (c *Clerk) Ready() bool { return c.registry != nil }

func (c *Clerk) deleteName(p *des.Proc, args any) (any, error) {
	name := args.(string)
	n := c.m.Node
	if c.registry == nil {
		return nil, ErrNotReady
	}
	n.UseCPU(p, cluster.CatClient, n.P.HashDelete)
	reg := c.registry.Bytes()
	b := c.hash(name)
	for probe := 0; probe < c.cfg.Buckets; probe++ {
		off := ((b + probe) % c.cfg.Buckets) * recStride
		flag, old := parseRecord(reg[off:])
		if flag == flagEmpty {
			return nil, ErrNotFound
		}
		if flag == flagValid && old.Name == name {
			// Tombstone the bucket and tear down the segment. Generation
			// numbers let remote holders fail safely on stale access.
			binary.BigEndian.PutUint32(reg[off:], flagTombstone)
			if seg, ok := c.m.Lookup(old.Seg); ok {
				c.m.Revoke(p, seg)
			}
			return nil, nil
		}
	}
	return nil, ErrNotFound
}

func (c *Clerk) lookupName(p *des.Proc, args any) (any, error) {
	a := args.(lookupArgs)
	n := c.m.Node
	if c.registry == nil {
		return nil, ErrNotReady
	}
	n.UseCPU(p, cluster.CatClient, n.P.HashLookup)

	if !a.force {
		// Local exports first.
		if rec, ok := c.localLookup(a.name); ok {
			c.CacheHits++
			return rec, nil
		}
		// Then the cache of previously imported names.
		if rec, ok := c.cache[a.name]; ok {
			c.CacheHits++
			return rec, nil
		}
	}
	c.CacheMisses++
	if a.hint < 0 {
		return nil, ErrNoHint
	}
	rec, err := c.remoteLookup(a.p, a.name, a.hint)
	if err != nil {
		return nil, err
	}
	// MissDetect: validate the returned record's flag word, compare the
	// name, and install it in the cache.
	n.UseCPU(p, cluster.CatClient, n.P.MissDetect)
	c.cache[a.name] = rec
	return rec, nil
}

// localLookup scans the clerk's own registry segment (no simulated cost —
// the caller charged HashLookup already).
func (c *Clerk) localLookup(name string) (Record, bool) {
	reg := c.registry.Bytes()
	b := c.hash(name)
	for probe := 0; probe < c.cfg.Buckets; probe++ {
		off := ((b + probe) % c.cfg.Buckets) * recStride
		flag, rec := parseRecord(reg[off:])
		if flag == flagEmpty {
			return Record{}, false
		}
		if flag == flagValid && rec.Name == name {
			return rec, true
		}
	}
	return Record{}, false
}

// ---------------------------------------------------------------------------
// Remote lookup: the §4.2 policies.

// scratch returns a private area of the reply segment used as the deposit
// target for probe reads (one slot per peer keeps concurrent lookups from
// different nodes apart; a single clerk performs one lookup at a time).
func (c *Clerk) scratch(peer int) int { return peer * repSlotSize }

func (c *Clerk) remoteLookup(p *des.Proc, name string, hint int) (Record, error) {
	if c.fenced[hint] {
		return Record{}, ErrPeerFenced
	}
	if c.reply == nil {
		return Record{}, ErrNotReady // boot proc still exporting well-knowns
	}
	reg, ok := c.peerReg[hint]
	if !ok {
		// Peer imports are installed by the async boot process; a missing
		// entry is a boot-order race unless the hint is simply wrong.
		// Either way the caller can meaningfully retry, so wrap ErrNotReady.
		return Record{}, fmt.Errorf("nameserver: no clerk known on node %d: %w", hint, ErrNotReady)
	}
	probeBudget := c.cfg.Buckets
	switch c.cfg.Policy {
	case ControlTransfer:
		probeBudget = 0
	case ProbeThenTransfer:
		probeBudget = c.cfg.ProbeLimit
	}

	b := c.hash(name)
	dst := c.reply
	doff := c.scratch(hint) + 4 // keep word 0 free as a spin flag
	for probe := 0; probe < probeBudget; probe++ {
		off := ((b + probe) % c.cfg.Buckets) * recStride
		c.RemoteProbes++
		if err := reg.Read(p, off, recRead, dst, doff, time.Second); err != nil {
			return Record{}, err
		}
		flag, rec := parseRecord(dst.Bytes()[doff:])
		if flag == flagEmpty {
			return Record{}, ErrNotFound
		}
		if flag == flagValid && rec.Name == name {
			return rec, nil
		}
		// Collision or tombstone on the remote side: probe the next
		// bucket (identical hash functions make this rare).
	}
	if c.cfg.Policy == ProbeForever {
		return Record{}, ErrNotFound
	}
	return c.controlLookup(p, name, hint)
}

// controlLookup is option (2)/(3): a remote write with control transfer
// asking the other side's clerk to check its own table and write the
// answer back; the importer spin waits at user level (§4.3).
func (c *Clerk) controlLookup(p *des.Proc, name string, hint int) (Record, error) {
	c.ControlTransfers++
	n := c.m.Node
	req := c.peerReq[hint]
	myID := n.ID

	// Clear the spin flag, then send the request with notification.
	flagOff := c.scratch(hint)
	binary.BigEndian.PutUint32(c.reply.Bytes()[flagOff:], 0)
	var nameBuf [reqSlotSize]byte
	copy(nameBuf[:MaxName], name)
	if err := req.Write(p, myID*reqSlotSize, nameBuf[:], true); err != nil {
		return Record{}, err
	}
	// Spin wait for the answering clerk's remote write to land.
	deadline := p.Now().Add(time.Second)
	for {
		n.UseCPU(p, cluster.CatClient, n.P.SpinPoll)
		if binary.BigEndian.Uint32(c.reply.Bytes()[flagOff:]) != 0 {
			break
		}
		if p.Now() > deadline {
			return Record{}, rmem.ErrTimeout
		}
		p.Sleep(3 * time.Microsecond)
	}
	flag, rec := parseRecord(c.reply.Bytes()[flagOff+4:])
	if flag != flagValid || rec.Name != name {
		return Record{}, ErrNotFound
	}
	return rec, nil
}

// serveControlLookup is the exporting clerk's signal handler: on a
// notified write into the request segment, look the name up locally and
// write the answer (record + completion flag) straight into the
// requester's reply segment with a remote write — data transfer only, no
// further control transfer.
func (c *Clerk) serveControlLookup(p *des.Proc, note rmem.Notification) {
	n := c.m.Node
	slot := note.Src * reqSlotSize
	raw := c.request.Bytes()[slot : slot+MaxName]
	name := raw
	for i, ch := range name {
		if ch == 0 {
			name = name[:i]
			break
		}
	}
	n.UseCPU(p, cluster.CatProc, n.P.HashLookup)
	var buf [repSlotSize]byte
	if rec, ok := c.localLookup(string(name)); ok {
		packRecord(buf[4:], rec, flagValid)
	} else {
		packRecord(buf[4:], Record{}, flagTombstone)
	}
	binary.BigEndian.PutUint32(buf[0:], 1) // completion flag
	rep, ok := c.peerRep[note.Src]
	if !ok {
		return // requester unknown; nothing to answer
	}
	// One remote write delivers flag+record; the flag word leads the
	// record in memory order, and the deposit is frame-atomic.
	if err := rep.WriteBlock(p, c.scratch(n.ID), buf[:], false); err != nil {
		c.m.WriteFaults = append(c.m.WriteFaults, err)
	}
}

// ---------------------------------------------------------------------------
// Cache refresh (§4.1): periodically re-validate imported entries; purge
// the ones that no longer check out and poison the kernel descriptors that
// were handed out for them.

// RefreshNow re-reads the source record for every cached import and purges
// entries that are gone or re-exported under a new generation.
func (c *Clerk) RefreshNow(p *des.Proc) {
	fencedSeen := make(map[int]bool)
	for name, rec := range c.cache {
		if c.fenced[rec.Node] {
			// A watchdog already ruled the peer dead: probing it again
			// would only add a timeout (times the retry budget) per cached
			// name, every refresh period, until the rebind — a storm. Note
			// the suppression once per peer per pass and move on.
			c.FencedSkips++
			if !fencedSeen[rec.Node] {
				fencedSeen[rec.Node] = true
				if tr := c.m.Node.Env.Tracer(); tr != nil {
					tr.Count("ns.peer.fenced", 1)
					if tr.EventsEnabled() {
						tr.Instant(fmt.Sprintf("node%d.ns", c.m.Node.ID), "ns",
							fmt.Sprintf("refresh skipping fenced peer %d", rec.Node),
							time.Duration(p.Now()))
					}
				}
			}
			continue
		}
		reg, ok := c.peerReg[rec.Node]
		if !ok {
			continue
		}
		doff := c.scratch(rec.Node) + 4
		b := c.hash(name)
		stillValid := false
		for probe := 0; probe < c.cfg.Buckets; probe++ {
			off := ((b + probe) % c.cfg.Buckets) * recStride
			c.RemoteProbes++
			if err := reg.Read(p, off, recRead, c.reply, doff, time.Second); err != nil {
				break
			}
			flag, cur := parseRecord(c.reply.Bytes()[doff:])
			if flag == flagEmpty {
				break
			}
			if cur.Name == name {
				stillValid = flag == flagValid && cur.Gen == rec.Gen
				break
			}
		}
		if !stillValid {
			delete(c.cache, name)
			for _, imp := range c.kernelImports[name] {
				imp.MarkStale()
			}
			delete(c.kernelImports, name)
			c.Purged++
		}
	}
}

// CachedNames reports how many imported names are currently cached.
func (c *Clerk) CachedNames() int { return len(c.cache) }
