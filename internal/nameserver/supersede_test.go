package nameserver

import (
	"errors"
	"testing"
	"time"

	"netmem/internal/des"
	"netmem/internal/rmem"
)

// TestGenerationSupersedeUnderConcurrentRegister: two registrant
// processes race re-registrations of the same name with interleaved
// epochs and generations (the shard tier re-publishing "dfs.ring", and a
// replicated control-plane log applying records out of arrival order).
// Whatever the interleaving, the registry must converge on the newest
// record — highest epoch, then highest generation — and never let a
// stale record overwrite a newer one.
func TestGenerationSupersedeUnderConcurrentRegister(t *testing.T) {
	env, ms, clerks := testCluster(t, 2, Config{})
	const name = "dfs.ring"
	runAfterBoot(t, env, func(p *des.Proc) {
		// Seed: a local registration at the clerk's current incarnation.
		seg1, err := clerks[0].Export(p, name, 128, rmem.RightsAll)
		if err != nil {
			t.Fatalf("seed export: %v", err)
		}
		baseEpoch := ms[0].Incarnation()

		// Registrant A: re-publishes the name under fresh exports (same
		// epoch, rising generations) — the cutover re-publication path. A
		// round that lands after B's future-epoch record is stale and gets
		// ErrExists; any other failure is a bug. At least one round runs
		// before B (exports cost ~hundreds of µs, B waits 3 ms).
		done := 0
		supersedes, staleLosses := 0, 0
		env.Spawn("registrantA", func(pa *des.Proc) {
			defer func() { done++ }()
			for k := 0; k < 3; k++ {
				segA := ms[0].Export(pa, 128)
				segA.SetDefaultRights(rmem.RightRead)
				switch err := clerks[0].Register(pa, name, segA); {
				case err == nil:
					supersedes++
				case errors.Is(err, ErrExists):
					staleLosses++
				default:
					t.Errorf("registrant A round %d: %v", k, err)
					return
				}
				pa.Sleep(30 * time.Microsecond)
			}
		})
		// Registrant B: applies replicated records with interleaved epochs
		// — one from the future (baseEpoch+1) and then a straggler from the
		// past that must be rejected, not installed.
		newer := Record{Name: name, Node: 1, Seg: 0x0777, Gen: 1, Epoch: baseEpoch + 1, Size: 64}
		env.Spawn("registrantB", func(pb *des.Proc) {
			defer func() { done++ }()
			pb.Sleep(3 * time.Millisecond)
			if err := clerks[0].ApplyRecord(pb, newer); err != nil {
				t.Errorf("apply newer-epoch record: %v", err)
				return
			}
			stale := Record{Name: name, Node: 0, Seg: seg1.ID(), Gen: seg1.Gen(), Epoch: baseEpoch, Size: 128}
			if err := clerks[0].ApplyRecord(pb, stale); !errors.Is(err, ErrExists) {
				t.Errorf("stale-epoch record: err=%v, want ErrExists", err)
			}
		})
		for done < 2 {
			p.Sleep(100 * time.Microsecond)
		}
		if supersedes == 0 {
			t.Fatalf("no generation supersede exercised (A lost every round: %d stale)", staleLosses)
		}

		// The newest epoch won, regardless of interleaving.
		rec, ok := clerks[0].localLookup(name)
		if !ok {
			t.Fatalf("name vanished from registry")
		}
		if rec.Epoch != baseEpoch+1 || rec.Seg != 0x0777 {
			t.Fatalf("registry holds %+v, want the epoch-%d record", rec, baseEpoch+1)
		}

		// With B's future-epoch record in place, A's same-epoch
		// re-registration is stale and must be refused.
		seg := ms[0].Export(p, 128)
		if err := clerks[0].Register(p, name, seg); !errors.Is(err, ErrExists) {
			t.Fatalf("same-epoch re-register after supersede: err=%v, want ErrExists", err)
		}

		// Within one epoch, generation decides: re-applying the winning
		// record is idempotent, and a doctored lower generation loses.
		if err := clerks[0].ApplyRecord(p, newer); err != nil {
			t.Fatalf("idempotent re-apply: %v", err)
		}
		bumped := newer
		bumped.Gen++
		if err := clerks[0].ApplyRecord(p, bumped); err != nil {
			t.Fatalf("gen-bumped record: %v", err)
		}
		lower := newer
		lower.Seg = 0x0778
		if err := clerks[0].ApplyRecord(p, lower); !errors.Is(err, ErrExists) {
			t.Fatalf("lower-gen record: err=%v, want ErrExists", err)
		}
		if rec, _ := clerks[0].localLookup(name); rec.Gen != bumped.Gen {
			t.Fatalf("registry holds gen %d, want %d", rec.Gen, bumped.Gen)
		}
	})
}
