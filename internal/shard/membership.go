package shard

import (
	"netmem/internal/des"
	"netmem/internal/fstore"
)

// Epoch versions the shard membership. Every change — a shard joining or
// leaving the ring, or a failover moving a slot onto its standby's node —
// bumps the epoch, and every consumer observes the same sequence.
type Epoch uint32

// Event describes one membership change delivered to watchers. Ring
// changes carry both rings so a subscriber can compute exactly which keys
// moved; failover slot moves carry the slot and its new node.
type Event struct {
	Old, Cur *Ring
	Epoch    Epoch
	// Slot >= 0 marks a failover slot move (ring membership unchanged,
	// slot now served from Node). Slot == -1 marks a ring change.
	Slot int
	Node int
}

// Membership is the epoch-versioned view of the shard ring that clerks,
// recovery coordinators, and harnesses subscribe to instead of resolving
// the ring once at construction. It also carries the cutover machinery: a
// two-phase prepare/commit that parks operations on moved keys while the
// donor's write-behind state is pushed to the new owner, so an operation
// issued mid-cutover simply resumes against the new owner instead of
// observing a stale shard.
type Membership struct {
	env   *des.Env
	ring  *Ring
	epoch Epoch
	nodes map[int]int // slot -> serving node id

	// Cutover window: between prepare and commit, pending holds the next
	// ring. ownerAwait parks operations on keys whose owner changes; drain
	// waits until the moved-key operations already in flight finish.
	pending       *Ring
	inflight      map[uint64]int
	movedInflight int
	gate          *des.WaitQueue
	drainq        *des.WaitQueue

	watchers     []func(*Ring, Epoch)
	procWatchers []func(*des.Proc, Event)
}

func newMembership(env *des.Env, ring *Ring) *Membership {
	return &Membership{
		env:      env,
		ring:     ring,
		epoch:    1,
		nodes:    make(map[int]int),
		inflight: make(map[uint64]int),
		gate:     des.NewWaitQueue(env),
		drainq:   des.NewWaitQueue(env),
	}
}

// Current returns the committed ring and its epoch.
func (mb *Membership) Current() (*Ring, Epoch) { return mb.ring, mb.epoch }

// NodeOf returns the node id currently serving a slot (-1 if unknown).
func (mb *Membership) NodeOf(slot int) int {
	if n, ok := mb.nodes[slot]; ok {
		return n
	}
	return -1
}

// Watch subscribes to membership changes; fn runs synchronously at every
// epoch bump with the newly committed ring.
func (mb *Membership) Watch(fn func(*Ring, Epoch)) {
	mb.watchers = append(mb.watchers, fn)
}

// watchProc subscribes an in-simulation consumer that needs the running
// proc (clerks rebinding imports on a failover slot move).
func (mb *Membership) watchProc(fn func(*des.Proc, Event)) {
	mb.procWatchers = append(mb.procWatchers, fn)
}

func (mb *Membership) setNode(slot, node int) { mb.nodes[slot] = node }

// keyMoves reports whether a cutover is pending and key's owner changes
// under it.
func (mb *Membership) keyMoves(key uint64) bool {
	return mb.pending != nil && mb.pending.Owner(key) != mb.ring.Owner(key)
}

// handleMoves is keyMoves over a file handle.
func (mb *Membership) handleMoves(h fstore.Handle) bool { return mb.keyMoves(h.U64()) }

// ownerAwait resolves a key to its owning slot, parking the caller while
// the key is mid-migration: the op resumes after commit and routes to the
// new owner. Returns the owner and the epoch it was resolved under.
func (mb *Membership) ownerAwait(p *des.Proc, key uint64) (int, Epoch) {
	for mb.keyMoves(key) {
		mb.gate.Wait(p)
	}
	return mb.ring.Owner(key), mb.epoch
}

// opEnter registers an in-flight operation on key. Callers resolve the
// owner with ownerAwait first (same event, no preemption), so an entering
// op is never on a moved key while a cutover is pending — the moved
// in-flight population only shrinks after prepare.
func (mb *Membership) opEnter(key uint64) { mb.inflight[key]++ }

// opExit retires an in-flight operation, releasing a pending drain once
// the last moved-key op finishes.
func (mb *Membership) opExit(key uint64) {
	if mb.inflight[key]--; mb.inflight[key] <= 0 {
		delete(mb.inflight, key)
	}
	if mb.pending != nil && mb.keyMoves(key) {
		if mb.movedInflight--; mb.movedInflight <= 0 {
			mb.drainq.WakeAll()
		}
	}
}

// prepare opens the cutover window: new operations on moved keys park at
// the gate, and the moved in-flight population is snapshotted for drain.
func (mb *Membership) prepare(next *Ring) {
	if mb.pending != nil {
		panic("shard: overlapping membership cutovers")
	}
	mb.pending = next
	mb.movedInflight = 0
	for key, n := range mb.inflight {
		if mb.keyMoves(key) {
			mb.movedInflight += n
		}
	}
}

// drain blocks until every moved-key operation that was in flight at
// prepare time has finished. Unmoved traffic keeps flowing throughout.
func (mb *Membership) drain(p *des.Proc) {
	for mb.movedInflight > 0 {
		mb.drainq.Wait(p)
	}
}

// commit flips the ring, bumps the epoch, notifies watchers, and wakes
// the parked operations — which now route to the new owners.
func (mb *Membership) commit(p *des.Proc) {
	old := mb.ring
	mb.ring = mb.pending
	mb.pending = nil
	mb.movedInflight = 0
	mb.epoch++
	mb.notify(p, Event{Old: old, Cur: mb.ring, Epoch: mb.epoch, Slot: -1})
	mb.gate.WakeAll()
}

// abort cancels a prepared cutover (migration failed); parked operations
// resume against the unchanged ring.
func (mb *Membership) abort() {
	mb.pending = nil
	mb.movedInflight = 0
	mb.gate.WakeAll()
	mb.drainq.WakeAll()
}

// publishSlotMove announces that slot is now served from node (failover to
// a standby): membership is unchanged but the epoch bumps so subscribers
// rebind their imports.
func (mb *Membership) publishSlotMove(p *des.Proc, slot, node int) {
	mb.nodes[slot] = node
	mb.epoch++
	mb.notify(p, Event{Old: mb.ring, Cur: mb.ring, Epoch: mb.epoch, Slot: slot, Node: node})
}

func (mb *Membership) notify(p *des.Proc, ev Event) {
	for _, fn := range mb.procWatchers {
		fn(p, ev)
	}
	for _, fn := range mb.watchers {
		fn(ev.Cur, ev.Epoch)
	}
}
