package shard

import "testing"

// TestReplicaReadScaling is the PR's acceptance gate in miniature: the
// 1→4 replica sweep with a fixed 8-reader fleet must show hot-block read
// goodput at least 3× the single-member point, while the primary's
// request-serving CPU stays flat within 5% — the reader fleet's extra
// bandwidth comes from the chain members' switch ports, not from the
// primary doing more work.
func TestReplicaReadScaling(t *testing.T) {
	pts, err := ReplicaSweep(4, 8)
	if err != nil {
		t.Fatalf("ReplicaSweep: %v", err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d sweep points, want 4", len(pts))
	}
	for _, pt := range pts {
		t.Logf("replicas=%d goodput=%.2f MB/s replica-reads=%d fallbacks=%d primaryCPU=%v (occ %.4f) pushCPU=%v wops=%d",
			pt.Replicas, pt.GoodputMBs, pt.ReplicaReads, pt.ReplicaFallbacks,
			pt.PrimaryCPU, pt.Occupancy, pt.ReplicationCPU, pt.WriterOps)
		if pt.ReplicaReads == 0 {
			t.Errorf("replicas=%d: no reads served by the chain", pt.Replicas)
		}
		if pt.WriterOps != pts[0].WriterOps {
			t.Errorf("replicas=%d: writer load drifted (%d ops vs %d) — the CPU comparison is void",
				pt.Replicas, pt.WriterOps, pts[0].WriterOps)
		}
	}
	if ratio := pts[3].GoodputMBs / pts[0].GoodputMBs; ratio < 3 {
		t.Errorf("goodput at 4 replicas only %.2fx the 1-replica point, want >= 3x", ratio)
	}
	// The primary's serving CPU must not ride the reader fleet's goodput:
	// every point stays within 5% of the 1-replica point.
	base := float64(pts[0].PrimaryCPU)
	for _, pt := range pts[1:] {
		drift := (float64(pt.PrimaryCPU) - base) / base
		if drift < 0 {
			drift = -drift
		}
		if drift > 0.05 {
			t.Errorf("replicas=%d: primary serving CPU %v drifted %.1f%% from baseline %v, want <= 5%%",
				pt.Replicas, pt.PrimaryCPU, drift*100, pts[0].PrimaryCPU)
		}
	}
}
