package shard

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/fstore"
	"netmem/internal/model"
	"netmem/internal/nameserver"
	"netmem/internal/rmem"
)

// svcRig: shards on nodes 0..S-1, clerks on the following nodes.
type svcRig struct {
	env    *des.Env
	cl     *cluster.Cluster
	svc    *Service
	clerks []*Clerk
	mgrs   []*rmem.Manager // one per cluster node
}

func newSvcRig(t *testing.T, shards, clerks int, mode dfs.Mode, copts ...ClerkOption) *svcRig {
	t.Helper()
	env := des.NewEnv()
	n := shards + clerks
	cl := cluster.New(env, &model.Default, n)
	r := &svcRig{env: env, cl: cl}
	for i := 0; i < n; i++ {
		r.mgrs = append(r.mgrs, rmem.NewManager(cl.Nodes[i]))
	}
	env.Spawn("setup", func(p *des.Proc) {
		r.svc = NewService(p, r.mgrs[:shards], n, dfs.Geometry{})
		for i := 0; i < clerks; i++ {
			r.clerks = append(r.clerks, NewClerk(p, r.mgrs[shards+i], r.svc, mode, copts...))
		}
		ConnectTokenPeers(p, r.clerks...)
	})
	if err := env.RunUntil(des.Time(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *svcRig) run(t *testing.T, fn func(p *des.Proc)) {
	t.Helper()
	r.env.Spawn("test", fn)
	if err := r.env.RunUntil(des.Time(5 * 60 * time.Second)); err != nil {
		t.Fatal(err)
	}
}

// seedTree writes files until at least two different shards own some,
// returning handles grouped by owning shard.
func (r *svcRig) seedTree(t *testing.T, files int) (dir fstore.Handle, hs []fstore.Handle) {
	t.Helper()
	st := r.svc.Store
	for i := 0; i < files; i++ {
		h, err := st.WriteFile(fmt.Sprintf("/export/f%03d", i), patterned(12*1024, byte(i)))
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	dir, _, err := st.ResolvePath("/export")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.svc.WarmDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, h := range hs {
		if err := r.svc.WarmFile(h); err != nil {
			t.Fatal(err)
		}
	}
	return dir, hs
}

func patterned(n int, salt byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*13+7) ^ salt
	}
	return b
}

// awaitDeposits polls shard s's data-area deposit counter until it has
// advanced by want over before (plain remote writes are asynchronous; the
// block frames take real simulated wire time to drain).
func (r *svcRig) awaitDeposits(t *testing.T, p *des.Proc, s int, before, want int64) {
	t.Helper()
	deadline := r.env.Now() + des.Time(time.Second)
	for r.svc.Shards[s].DataDeposits() < before+want {
		if r.env.Now() > deadline {
			t.Fatalf("shard %d saw %d deposits, want %d", s, r.svc.Shards[s].DataDeposits()-before, want)
		}
		p.Sleep(10 * time.Microsecond)
	}
}

// findPair returns indices of two handles owned by different shards.
func (r *svcRig) findPair(t *testing.T, hs []fstore.Handle) (a, b int) {
	t.Helper()
	for i := 1; i < len(hs); i++ {
		if r.svc.Owner(hs[i]) != r.svc.Owner(hs[0]) {
			return 0, i
		}
	}
	t.Fatal("all handles landed on one shard; enlarge the tree")
	return 0, 0
}

func TestShardedReadWriteAcrossShards(t *testing.T) {
	r := newSvcRig(t, 3, 1, dfs.DX)
	r.run(t, func(p *des.Proc) {
		dir, hs := r.seedTree(t, 12)
		c := r.clerks[0]
		ia, ib := r.findPair(t, hs)
		for _, i := range []int{ia, ib} {
			h := hs[i]
			want, err := r.svc.Store.Read(h, 0, 12*1024)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Read(p, h, 0, 12*1024)
			if err != nil {
				t.Fatalf("read file %d: %v", i, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("file %d: wrong bytes from shard %d", i, r.svc.Owner(h))
			}
		}
		// Writes land in the owning shard's data area; Sync applies them.
		payload := patterned(9000, 0xEE)
		ws := r.svc.Owner(hs[ia])
		before := r.svc.Shards[ws].DataDeposits()
		if err := c.Write(p, hs[ia], 0, payload); err != nil {
			t.Fatal(err)
		}
		r.awaitDeposits(t, p, ws, before, 2) // two touched blocks, async deposits
		if _, err := r.svc.Sync(p); err != nil {
			t.Fatal(err)
		}
		got, err := r.svc.Store.Read(hs[ia], 0, len(payload))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("written bytes did not reach the shared store")
		}
		// Namespace ops meet at the directory's shard.
		if _, _, err := c.Lookup(p, dir, "f003"); err != nil {
			t.Fatal(err)
		}
		ents, err := c.ReadDir(p, dir, 0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if len(dfs.ParseDir(ents)) == 0 {
			t.Fatal("empty readdir")
		}
	})
	// The load actually spread: more than one shard node did work.
	busy := 0
	for i := 0; i < 3; i++ {
		total := des.Duration(0)
		for _, d := range r.cl.Nodes[i].CPUAcct {
			total += d
		}
		if total > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d shard nodes did any work; routing is not spreading load", busy)
	}
}

func TestShardedRemoveRepairsCrossShardAttr(t *testing.T) {
	r := newSvcRig(t, 3, 1, dfs.DX)
	r.run(t, func(p *des.Proc) {
		dir, hs := r.seedTree(t, 12)
		c := r.clerks[0]
		ds := r.svc.Owner(dir)
		// Find a file owned by a different shard than its directory.
		victim := -1
		for i, h := range hs {
			if r.svc.Owner(h) != ds {
				victim = i
				break
			}
		}
		if victim < 0 {
			t.Fatal("no cross-shard (dir, child) pair; enlarge the tree")
		}
		h := hs[victim]
		// Prime the child's attr record on its shard's cache via a read.
		if _, err := c.GetAttr(p, h); err != nil {
			t.Fatal(err)
		}
		if err := c.Remove(p, dir, fmt.Sprintf("f%03d", victim)); err != nil {
			t.Fatal(err)
		}
		if c.Repairs == 0 {
			t.Fatal("cross-shard remove issued no repair")
		}
		// Without the repair, this DX probe would hit the stale record and
		// resurrect the removed file's attributes.
		c.FlushLocal()
		if _, err := c.GetAttr(p, h); err == nil {
			t.Fatal("GetAttr of removed file succeeded: stale attr record served")
		}
	})
}

func TestShardedRenameRepairsCrossShardDir(t *testing.T) {
	r := newSvcRig(t, 3, 1, dfs.DX)
	r.run(t, func(p *des.Proc) {
		st := r.svc.Store
		_, hs := r.seedTree(t, 4)
		_ = hs
		// Build two directories owned by different shards.
		root, _, err := st.ResolvePath("/")
		if err != nil {
			t.Fatal(err)
		}
		var dirs []fstore.Handle
		for i := 0; len(dirs) < 2 && i < 64; i++ {
			h, _, err := st.Mkdir(root, fmt.Sprintf("d%02d", i), 0o755)
			if err != nil {
				t.Fatal(err)
			}
			if len(dirs) == 0 || r.svc.Owner(h) != r.svc.Owner(dirs[0]) {
				dirs = append(dirs, h)
			}
		}
		if len(dirs) < 2 {
			t.Fatal("could not find two cross-shard directories")
		}
		from, to := dirs[0], dirs[1]
		if _, err := st.WriteFile("/"+nameOf(t, st, root, from)+"/moveme", []byte("payload")); err != nil {
			t.Fatal(err)
		}
		if err := r.svc.WarmDir(from); err != nil {
			t.Fatal(err)
		}
		if err := r.svc.WarmDir(to); err != nil {
			t.Fatal(err)
		}
		c := r.clerks[0]
		// Prime the destination directory's stream on its shard.
		if _, err := c.ReadDir(p, to, 0, 4096); err != nil {
			t.Fatal(err)
		}
		if err := c.Rename(p, from, "moveme", to, "moved"); err != nil {
			t.Fatal(err)
		}
		if c.Repairs == 0 {
			t.Fatal("cross-shard rename issued no repair")
		}
		c.FlushLocal()
		// The destination shard must now serve the fresh stream and record.
		ch, _, err := c.Lookup(p, to, "moved")
		if err != nil {
			t.Fatalf("lookup of renamed entry: %v", err)
		}
		want, _, err := st.Lookup(to, "moved")
		if err != nil {
			t.Fatal(err)
		}
		if ch != want {
			t.Fatal("lookup returned a stale handle")
		}
		stream, err := c.ReadDir(p, to, 0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, e := range dfs.ParseDir(stream) {
			if e.Name == "moved" {
				found = true
			}
		}
		if !found {
			t.Fatal("destination directory stream is stale: renamed entry missing")
		}
	})
}

func nameOf(t *testing.T, st *fstore.Store, dir, child fstore.Handle) string {
	t.Helper()
	ents, err := st.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Handle == child {
			return e.Name
		}
	}
	t.Fatal("child not found in dir")
	return ""
}

func TestTokenCachedRereadZeroServerCPU(t *testing.T) {
	r := newSvcRig(t, 2, 1, dfs.DX, WithTokenCache())
	r.run(t, func(p *des.Proc) {
		_, hs := r.seedTree(t, 6)
		c := r.clerks[0]
		h := hs[0]
		want, err := r.svc.Store.Read(h, 0, 12*1024)
		if err != nil {
			t.Fatal(err)
		}
		// First read: acquires read tokens, fetches, caches.
		got, err := c.Read(p, h, 0, 12*1024)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("first read wrong")
		}
		// FlushLocal drops the sub-clerk caches; the token cache survives.
		c.FlushLocal()
		for i := 0; i < 2; i++ {
			r.cl.Nodes[i].ResetCPUAcct()
		}
		var beforeReads int64
		for i := range r.svc.Shards {
			beforeReads += c.Sub(i).RemoteReads
		}
		got, err = c.Read(p, h, 0, 12*1024)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("token-cached re-read returned wrong bytes")
		}
		if c.TokenHits == 0 {
			t.Fatal("re-read did not hit the token cache")
		}
		// Zero server CPU, zero network: the whole point.
		for i := 0; i < 2; i++ {
			for cat, d := range r.cl.Nodes[i].CPUAcct {
				if d != 0 {
					t.Fatalf("shard node %d charged %v CPU in %q on a token-cached re-read", i, d, cat)
				}
			}
		}
		var afterReads int64
		for i := range r.svc.Shards {
			afterReads += c.Sub(i).RemoteReads
		}
		if afterReads != beforeReads {
			t.Fatal("re-read issued remote reads despite a held token")
		}
	})
}

func TestTokenWriteInvalidatesPeerCache(t *testing.T) {
	r := newSvcRig(t, 2, 2, dfs.DX, WithTokenCache())
	r.run(t, func(p *des.Proc) {
		_, hs := r.seedTree(t, 4)
		a, b := r.clerks[0], r.clerks[1]
		h := hs[0]
		// Both clerks cache the first block under read tokens.
		if _, err := a.Read(p, h, 0, 4096); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Read(p, h, 0, 4096); err != nil {
			t.Fatal(err)
		}
		// a writes: recalls b's token, invalidating b's copy.
		payload := patterned(4096, 0x55)
		ws := r.svc.Owner(h)
		before := r.svc.Shards[ws].DataDeposits()
		if err := a.Write(p, h, 0, payload); err != nil {
			t.Fatal(err)
		}
		r.awaitDeposits(t, p, ws, before, 1)
		if _, err := r.svc.Sync(p); err != nil {
			t.Fatal(err)
		}
		b.FlushLocal()
		got, err := b.Read(p, h, 0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("peer served stale bytes after a write: token recall failed")
		}
	})
}

func TestShardFailoverRebind(t *testing.T) {
	// Topology: shards on 0,1; clerk on 2; standby for shard 0 on 3.
	env := des.NewEnv()
	cl := cluster.New(env, &model.Default, 4)
	var mgrs []*rmem.Manager
	for i := 0; i < 4; i++ {
		mgrs = append(mgrs, rmem.NewManager(cl.Nodes[i]))
	}
	var svc *Service
	var clerk *Clerk
	var h fstore.Handle
	env.Spawn("setup", func(p *des.Proc) {
		svc = NewService(p, mgrs[:2], 4, dfs.Geometry{}, dfs.WithReliableReplies())
		clerk = NewClerk(p, mgrs[2], svc, dfs.DX,
			WithSubOptions(dfs.WithReliable(), dfs.WithFencing()))
		var err error
		h, err = svc.Store.WriteFile("/export/x", patterned(8192, 1))
		if err != nil {
			panic(err)
		}
		if err := svc.WarmFile(h); err != nil {
			panic(err)
		}
		// The clerk rebinds itself via its Membership subscription when the
		// coordinator publishes the slot move.
		svc.ArmFailover(p, 0, mgrs[3], mgrs[2], 100*time.Microsecond)
	})
	if err := env.RunUntil(des.Time(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	// Kill shard 0's node; the coordinator must promote the standby and
	// rebind the clerk, after which ops on shard 0's keys succeed again.
	old0 := svc.NodeOf(0)
	cl.Nodes[old0].Fail()
	env.Spawn("after", func(p *des.Proc) {
		rec := svc.Coordinators()[0]
		if err := rec.AwaitRestored(p, time.Second); err != nil {
			t.Errorf("failover never completed: %v", err)
			return
		}
		if svc.NodeOf(0) != 3 {
			t.Errorf("shard 0 now on node %d, want standby node 3", svc.NodeOf(0))
		}
		clerk.FlushLocal()
		want, err := svc.Store.Read(h, 0, 8192)
		if err != nil {
			t.Error(err)
			return
		}
		got, err := clerk.Read(p, h, 0, 8192)
		if err != nil {
			t.Errorf("read after failover: %v", err)
			return
		}
		if !bytes.Equal(got, want) {
			t.Error("read after failover returned wrong bytes")
		}
	})
	if err := env.RunUntil(des.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterAndResolveRing(t *testing.T) {
	env := des.NewEnv()
	cl := cluster.New(env, &model.Default, 4)
	var mgrs []*rmem.Manager
	for i := 0; i < 4; i++ {
		mgrs = append(mgrs, rmem.NewManager(cl.Nodes[i]))
	}
	var resolveErr error
	env.Spawn("setup", func(p *des.Proc) {
		peers := []int{0, 1, 2, 3}
		var names []*nameserver.Clerk
		for i := 0; i < 4; i++ {
			names = append(names, nameserver.New(mgrs[i], peers, nameserver.Config{}))
		}
		// The name service must boot before the shard tier exports anything:
		// its well-known segments carry fixed generation numbers that assume
		// they are each node's first exports.
		p.Sleep(time.Millisecond)
		svc := NewService(p, mgrs[:3], 4, dfs.Geometry{})
		if err := svc.RegisterNames(p, names); err != nil {
			resolveErr = fmt.Errorf("register: %w", err)
			return
		}
		// A client node reconstructs the ring purely from the name service.
		ring, epoch, nodes, err := ResolveRing(p, mgrs[3], names[3], 0)
		if err == nil && epoch == 0 {
			resolveErr = fmt.Errorf("resolved epoch is zero")
			return
		}
		if err != nil {
			resolveErr = fmt.Errorf("resolve ring: %w", err)
			return
		}
		if ring.Size() != 3 || len(nodes) != 3 {
			resolveErr = fmt.Errorf("resolved ring has %d members, nodes %v", ring.Size(), nodes)
			return
		}
		for k := uint64(0); k < 1000; k++ {
			if ring.Owner(k) != svc.Ring.Owner(k) {
				resolveErr = fmt.Errorf("resolved ring disagrees with the service ring at key %d", k)
				return
			}
		}
		// The per-shard channels resolve too.
		for i := 0; i < 3; i++ {
			if _, err := names[3].Lookup(p, shardName(i), nodes[i], false); err != nil {
				resolveErr = fmt.Errorf("lookup %s: %w", shardName(i), err)
				return
			}
		}
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if resolveErr != nil {
		t.Fatal(resolveErr)
	}
}

// TestTokenRereadProbe exercises the fsbench-facing probe: it must report a
// free re-read (zero server CPU, zero remote reads, nonzero token hits).
func TestTokenRereadProbe(t *testing.T) {
	res, err := TokenRereadProbe(3)
	if err != nil {
		t.Fatalf("TokenRereadProbe: %v", err)
	}
	if res.Shards != 3 || res.Bytes == 0 {
		t.Errorf("unexpected probe shape: %+v", res)
	}
	if res.TokenHits == 0 || res.ServerCPU != 0 || res.RemoteReads != 0 {
		t.Errorf("probe not free: %+v", res)
	}
}
