package shard

import (
	"bytes"
	"encoding/json"
	"testing"

	"netmem/internal/dfs"
	"netmem/internal/faults"
)

// TestShardedChaosMixedDeterministic is the sharded determinism golden
// test: the mixed campaign (loss + corruption + duplication + reordering +
// a crash of shard 0's node with fenced standby takeover) run twice at
// seed 1 against a 3-shard tier must produce byte-identical results —
// every per-op latency, every metric counter and histogram, the fault
// tally, and the failover MTTR.
func TestShardedChaosMixedDeterministic(t *testing.T) {
	camp, ok := faults.Named("mixed")
	if !ok {
		t.Fatal("mixed campaign not registered")
	}
	runOnce := func() ([]byte, *ChaosResult) {
		res, err := RunChaos(ChaosConfig{Campaign: camp, Seed: 1, Mode: dfs.DX, Shards: 3})
		if err != nil {
			t.Fatalf("RunChaos: %v", err)
		}
		js, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return append(js, res.Metrics.String()...), res
	}
	b1, r1 := runOnce()
	b2, _ := runOnce()
	if !bytes.Equal(b1, b2) {
		i := 0
		for i < len(b1) && i < len(b2) && b1[i] == b2[i] {
			i++
		}
		lo, hi := i-40, i+40
		if lo < 0 {
			lo = 0
		}
		win := func(b []byte) []byte {
			h := hi
			if h > len(b) {
				h = len(b)
			}
			if lo >= h {
				return nil
			}
			return b[lo:h]
		}
		t.Fatalf("sharded mixed campaign not deterministic at seed 1:\n run1: …%s…\n run2: …%s…", win(b1), win(b2))
	}
	if r1.Completed != len(r1.Ops) || len(r1.Ops) != 12 {
		t.Errorf("goodput %d/%d, want 12/12", r1.Completed, len(r1.Ops))
	}
	if !r1.FailedOver || r1.MTTR <= 0 {
		t.Errorf("expected a measured failover (FailedOver=%v MTTR=%v)", r1.FailedOver, r1.MTTR)
	}
	if r1.Shards != 3 {
		t.Errorf("result records %d shards, want 3", r1.Shards)
	}
}
