package shard

import (
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/fstore"
	"netmem/internal/rmem"
	"netmem/internal/tokens"
)

// tokenTimeout bounds one token acquisition (the acquire loop already
// retries revocation appeals internally).
const tokenTimeout = time.Second

// ClerkOption configures a sharded clerk.
type ClerkOption func(*clerkOptions)

type clerkOptions struct {
	tokenCache bool
	dfsOpts    []dfs.ClerkOption
}

// WithTokenCache layers the token-coherent client block cache: read tokens
// (internal/tokens RWClient, one table per shard over its token area) grant
// cached reads served entirely from client memory — zero network traffic,
// zero server CPU; a writer recalls the readers' tokens, invalidating their
// copies before the bytes can change.
func WithTokenCache() ClerkOption {
	return func(o *clerkOptions) { o.tokenCache = true }
}

// WithSubOptions passes dfs.ClerkOptions (reliability, fencing, timeouts)
// through to every per-shard sub-clerk.
func WithSubOptions(opts ...dfs.ClerkOption) ClerkOption {
	return func(o *clerkOptions) { o.dfsOpts = append(o.dfsOpts, opts...) }
}

// Clerk is the sharding-aware clerk: one dfs.Clerk per shard, with every
// operation routed to the shard owning its key — handle-keyed operations by
// the file handle, namespace operations by the directory handle, so a
// directory's entries, stream, and mutations always meet at one shard's
// cache. Operations whose effects span shards (Remove and Rename across the
// ring) issue coherence repairs at the other shard (see Remove/Rename).
type Clerk struct {
	m    *rmem.Manager
	svc  *Service
	Mode dfs.Mode
	sub  []*dfs.Clerk

	// Token-coherent block cache (WithTokenCache): rw[s] manages tokens in
	// shard s's per-bucket token area; cache[s][tok] holds block copies
	// valid while the token is held.
	rw    []*tokens.RWClient
	cache []map[int]map[blockKey][]byte

	nullSeq int

	// Stats.
	TokenHits int64 // reads served from the token-coherent cache
	Repairs   int64 // cross-shard coherence repairs issued
}

type blockKey struct {
	h     fstore.Handle
	block int64
}

// NewClerk wires a sharded clerk on m's node: one sub-clerk per shard and,
// with WithTokenCache, one RW token client per shard token area.
func NewClerk(p *des.Proc, m *rmem.Manager, svc *Service, mode dfs.Mode, opts ...ClerkOption) *Clerk {
	var o clerkOptions
	for _, opt := range opts {
		opt(&o)
	}
	c := &Clerk{m: m, svc: svc, Mode: mode}
	for _, srv := range svc.Shards {
		c.sub = append(c.sub, dfs.NewClerk(p, m, srv, mode, o.dfsOpts...))
	}
	if o.tokenCache {
		c.rw = make([]*tokens.RWClient, svc.Size())
		c.cache = make([]map[int]map[blockKey][]byte, svc.Size())
		for i, srv := range svc.Shards {
			a := srv.Areas()[5] // the per-data-bucket token area
			c.rw[i] = tokens.NewRWClient(p, m, svc.NodeOf(i), uint16(a[0]), uint16(a[1]), a[2], svc.slotNodes)
			c.cache[i] = make(map[int]map[blockKey][]byte)
			i := i
			c.rw[i].OnInvalidate(func(p *des.Proc, tok int) {
				delete(c.cache[i], tok)
			})
		}
	}
	return c
}

// ConnectTokenPeers wires the full revocation mesh between token-caching
// clerks, per shard (a deployment would publish the channels through the
// name service instead).
func ConnectTokenPeers(p *des.Proc, clerks ...*Clerk) {
	for _, a := range clerks {
		for _, b := range clerks {
			if a == b || a.rw == nil || b.rw == nil {
				continue
			}
			for s := range a.rw {
				rid, rgen, rsize := b.rw[s].RevocationChannel()
				a.rw[s].Connect(p, b.m.Node.ID, rid, rgen, rsize)
			}
		}
	}
	for _, a := range clerks {
		for _, b := range clerks {
			if a == b || a.rw == nil || b.rw == nil {
				continue
			}
			for s := range a.rw {
				pid, pgen, psize := a.rw[s].PeerReply(b.m.Node.ID)
				b.rw[s].AttachPeer(p, a.m.Node.ID, pid, pgen, psize)
			}
		}
	}
}

// owner maps any handle to its shard.
func (c *Clerk) owner(h fstore.Handle) int { return c.svc.Ring.Owner(h.U64()) }

// Sub exposes the per-shard sub-clerk (tests and stats aggregation).
func (c *Clerk) Sub(i int) *dfs.Clerk { return c.sub[i] }

// Node returns the clerk's node.
func (c *Clerk) Node() *cluster.Node { return c.m.Node }

// FlushLocal drops every sub-clerk's client-side cache. The token-coherent
// block cache survives: its validity is guaranteed by held tokens, not by
// freshness assumptions, so there is nothing to flush for correctness —
// exactly the property that lets re-reads skip the server entirely.
func (c *Clerk) FlushLocal() {
	for _, sc := range c.sub {
		sc.FlushLocal()
	}
}

// DropTokenCache releases nothing but forgets every cached block copy (for
// experiments that want a cold token cache).
func (c *Clerk) DropTokenCache() {
	for i := range c.cache {
		c.cache[i] = make(map[int]map[blockKey][]byte)
	}
}

// Rebind re-wires shard i's sub-clerk to the (post-failover) current server
// incarnation, and forfeits that shard's tokens and cached blocks — the
// dead incarnation's token table died with it.
func (c *Clerk) Rebind(p *des.Proc, i int) {
	c.sub[i].Rebind(p, c.svc.Shards[i])
	if c.rw != nil {
		a := c.svc.Shards[i].Areas()[5]
		c.rw[i].RebindTable(p, c.svc.NodeOf(i), uint16(a[0]), uint16(a[1]), a[2])
		c.cache[i] = make(map[int]map[blockKey][]byte)
	}
}

// ---------------------------------------------------------------------------
// Routed operations.

// GetAttr routes to the shard owning h.
func (c *Clerk) GetAttr(p *des.Proc, h fstore.Handle) (fstore.Attr, error) {
	return c.sub[c.owner(h)].GetAttr(p, h)
}

// SetAttr routes to the shard owning h; a resize invalidates our cached
// block copies of the file.
func (c *Clerk) SetAttr(p *des.Proc, h fstore.Handle, mode uint16, size int64) (fstore.Attr, error) {
	s := c.owner(h)
	a, err := c.sub[s].SetAttr(p, h, mode, size)
	if err == nil && c.cache != nil {
		for tok, m := range c.cache[s] {
			for bk := range m {
				if bk.h == h {
					delete(m, bk)
				}
			}
			if len(m) == 0 {
				delete(c.cache[s], tok)
			}
		}
	}
	return a, err
}

// Lookup routes to the shard owning the directory, where Create/Rename/
// Remove on that directory also execute — namespace reads and mutations
// meet at one cache.
func (c *Clerk) Lookup(p *des.Proc, dir fstore.Handle, name string) (fstore.Handle, fstore.Attr, error) {
	return c.sub[c.owner(dir)].Lookup(p, dir, name)
}

// ReadLink routes to the shard owning h.
func (c *Clerk) ReadLink(p *des.Proc, h fstore.Handle) (string, error) {
	return c.sub[c.owner(h)].ReadLink(p, h)
}

// ReadDir routes to the shard owning the directory.
func (c *Clerk) ReadDir(p *des.Proc, h fstore.Handle, offset int64, count int) ([]byte, error) {
	return c.sub[c.owner(h)].ReadDir(p, h, offset, count)
}

// Create routes to the shard owning the directory.
func (c *Clerk) Create(p *des.Proc, dir fstore.Handle, name string, mode uint16) (fstore.Handle, fstore.Attr, error) {
	return c.sub[c.owner(dir)].Create(p, dir, name, mode)
}

// Mkdir routes to the shard owning the directory.
func (c *Clerk) Mkdir(p *des.Proc, dir fstore.Handle, name string, mode uint16) (fstore.Handle, fstore.Attr, error) {
	return c.sub[c.owner(dir)].Mkdir(p, dir, name, mode)
}

// Symlink routes to the shard owning the directory.
func (c *Clerk) Symlink(p *des.Proc, dir fstore.Handle, name, target string) (fstore.Handle, fstore.Attr, error) {
	return c.sub[c.owner(dir)].Symlink(p, dir, name, target)
}

// Remove executes at the shard owning the directory. When the removed
// child's attribute record lives on a *different* shard's cache, that
// record is now stale — a repair forces the other shard's server procedure
// to re-resolve the handle, which fails and drops the record (the
// error-path dropAttr in dfs.Server.execute).
func (c *Clerk) Remove(p *des.Proc, dir fstore.Handle, name string) error {
	s := c.owner(dir)
	child, _, lerr := c.sub[s].Lookup(p, dir, name)
	if err := c.sub[s].Remove(p, dir, name); err != nil {
		return err
	}
	if lerr == nil {
		if cs := c.owner(child); cs != s {
			c.Repairs++
			_ = c.sub[cs].Refresh(p, child) // expected to fail: the refresh IS the repair
			c.sub[cs].Forget(child)
			c.dropCachedFile(cs, child)
		}
	}
	return nil
}

// dropCachedFile forgets token-cached blocks of one (now stale) handle.
func (c *Clerk) dropCachedFile(s int, h fstore.Handle) {
	if c.cache == nil {
		return
	}
	for tok, m := range c.cache[s] {
		for bk := range m {
			if bk.h == h {
				delete(m, bk)
			}
		}
		if len(m) == 0 {
			delete(c.cache[s], tok)
		}
	}
}

// Rename executes at the shard owning the source directory. A cross-shard
// destination directory then holds a stale stream and possibly a stale
// (toDir, toName) record; repairs reload both through the destination
// shard's server procedure.
func (c *Clerk) Rename(p *des.Proc, fromDir fstore.Handle, fromName string, toDir fstore.Handle, toName string) error {
	s := c.owner(fromDir)
	if err := c.sub[s].Rename(p, fromDir, fromName, toDir, toName); err != nil {
		return err
	}
	if ts := c.owner(toDir); ts != s {
		c.Repairs++
		c.sub[ts].ForgetDir(toDir)
		_ = c.sub[ts].RefreshDir(p, toDir)
		_ = c.sub[ts].RefreshLookup(p, toDir, toName)
	}
	return nil
}

// StatFS is a whole-store query; the shared store makes any shard
// authoritative, so it routes to shard 0 deterministically.
func (c *Clerk) StatFS(p *des.Proc) (fstore.FSStat, error) {
	return c.sub[0].StatFS(p)
}

// Null round-robins across shards (it carries no key).
func (c *Clerk) Null(p *des.Proc) error {
	s := c.nullSeq % len(c.sub)
	c.nullSeq++
	return c.sub[s].Null(p)
}

// ---------------------------------------------------------------------------
// Data path. Without the token cache, Read/Write delegate to the owning
// sub-clerk. With it, every block access goes through the RW token for the
// block's server bucket: a held read token proves no writer has touched the
// bucket since we cached the block, so the re-read is a map lookup — no
// cells on the wire, no CPU on any server.

// Read returns up to count bytes at offset.
func (c *Clerk) Read(p *des.Proc, h fstore.Handle, offset int64, count int) ([]byte, error) {
	s := c.owner(h)
	if c.rw == nil {
		return c.sub[s].Read(p, h, offset, count)
	}
	if offset < 0 || count < 0 {
		return nil, fstore.ErrBadOffset
	}
	var out []byte
	for count > 0 {
		block := offset / fstore.BlockSize
		in := int(offset % fstore.BlockSize)
		want := count
		if in+want > fstore.BlockSize {
			want = fstore.BlockSize - in
		}
		blk, err := c.coherentBlock(p, s, h, block)
		if err != nil {
			return out, err
		}
		if in >= len(blk) {
			break // EOF
		}
		hi := in + want
		if hi > len(blk) {
			hi = len(blk)
		}
		out = append(out, blk[in:hi]...)
		if hi < in+want {
			break
		}
		offset += int64(want)
		count -= want
	}
	return out, nil
}

// coherentBlock serves one block under the token protocol.
func (c *Clerk) coherentBlock(p *des.Proc, s int, h fstore.Handle, block int64) ([]byte, error) {
	tok := c.svc.Geo.DataBucket(h, block)
	key := blockKey{h, block}
	if c.rw[s].HoldsRead(tok) || c.rw[s].HoldsWrite(tok) {
		if b, ok := c.cache[s][tok][key]; ok {
			c.TokenHits++
			return b, nil
		}
	}
	if err := c.rw[s].AcquireRead(p, tok, tokenTimeout); err != nil {
		return nil, err
	}
	blk, err := c.sub[s].Read(p, h, block*fstore.BlockSize, fstore.BlockSize)
	if err != nil {
		return nil, err
	}
	if c.cache[s][tok] == nil {
		c.cache[s][tok] = make(map[blockKey][]byte)
	}
	c.cache[s][tok][key] = blk
	return blk, nil
}

// Write stores data at offset. With the token cache, each touched bucket's
// write token is acquired first — recalling every reader's token and
// invalidating their cached copies — then released back to a read token
// once the deposit is done (Downgrade: we keep cache validity ourselves).
func (c *Clerk) Write(p *des.Proc, h fstore.Handle, offset int64, data []byte) error {
	s := c.owner(h)
	if c.rw == nil {
		return c.sub[s].Write(p, h, offset, data)
	}
	for len(data) > 0 {
		block := offset / fstore.BlockSize
		in := int(offset % fstore.BlockSize)
		n := len(data)
		if in+n > fstore.BlockSize {
			n = fstore.BlockSize - in
		}
		tok := c.svc.Geo.DataBucket(h, block)
		if err := c.rw[s].AcquireWrite(p, tok, tokenTimeout); err != nil {
			return err
		}
		err := c.sub[s].Write(p, h, offset, data[:n])
		if err == nil {
			// Our own stale copy of the block (if any) must not outlive the
			// write; the next read refetches under the read token.
			if m := c.cache[s][tok]; m != nil {
				delete(m, blockKey{h, block})
			}
			err = c.rw[s].Downgrade(p, tok)
		}
		if err != nil {
			return err
		}
		offset += int64(n)
		data = data[n:]
	}
	return nil
}

// Stats aggregates the sub-clerks' counters (plus this clerk's own).
type Stats struct {
	LocalHits    int64
	RemoteReads  int64
	RemoteWrites int64
	Misses       int64
	Rebinds      int64
	TokenHits    int64
	Repairs      int64
}

// Stats sums counters across sub-clerks.
func (c *Clerk) Stats() Stats {
	st := Stats{TokenHits: c.TokenHits, Repairs: c.Repairs}
	for _, sc := range c.sub {
		st.LocalHits += sc.LocalHits
		st.RemoteReads += sc.RemoteReads
		st.RemoteWrites += sc.RemoteWrites
		st.Misses += sc.Misses
		st.Rebinds += sc.Rebinds
	}
	return st
}
