package shard

import (
	"sort"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/fstore"
	"netmem/internal/rmem"
	"netmem/internal/tokens"
)

// tokenTimeout bounds one token acquisition (the acquire loop already
// retries revocation appeals internally).
const tokenTimeout = time.Second

// ClerkOption configures a sharded clerk.
type ClerkOption func(*clerkOptions)

type clerkOptions struct {
	tokenCache bool
	dfsOpts    []dfs.ClerkOption
}

// WithTokenCache layers the token-coherent client block cache: read tokens
// (internal/tokens RWClient, one table per shard over its token area) grant
// cached reads served entirely from client memory — zero network traffic,
// zero server CPU; a writer recalls the readers' tokens, invalidating their
// copies before the bytes can change.
func WithTokenCache() ClerkOption {
	return func(o *clerkOptions) { o.tokenCache = true }
}

// WithSubOptions passes dfs.ClerkOptions (reliability, fencing, timeouts)
// through to every per-shard sub-clerk.
func WithSubOptions(opts ...dfs.ClerkOption) ClerkOption {
	return func(o *clerkOptions) { o.dfsOpts = append(o.dfsOpts, opts...) }
}

// Clerk is the sharding-aware clerk: one dfs.Clerk per live slot, with
// every operation routed through the epoch-versioned Membership — the
// owner is resolved per operation, never at construction, so an elastic
// cutover mid-stream parks the affected operation and resumes it against
// the new owner (and an operation that raced a commit retries once).
// Handle-keyed operations route by the file handle, namespace operations
// by the directory handle, so a directory's entries, stream, and mutations
// always meet at one shard's cache. Operations whose effects span shards
// (Remove and Rename across the ring) issue coherence repairs at the other
// shard (see Remove/Rename).
type Clerk struct {
	m    *rmem.Manager
	svc  *Service
	Mode dfs.Mode
	sub  []*dfs.Clerk // slot-indexed; nil = not wired / vacant

	// Token-coherent block cache (WithTokenCache): rw[s] manages tokens in
	// slot s's per-bucket token area; cache[s][tok] holds block copies
	// valid while the token is held.
	tokenCache bool
	dfsOpts    []dfs.ClerkOption
	rw         []*tokens.RWClient
	cache      []map[int]map[blockKey][]byte
	peers      []*Clerk // revocation-mesh group (ConnectTokenPeers)

	// Replica read tier (wireReplicas): per-slot chain-member frame
	// imports a read-token holder may READ instead of the primary.
	replicas []*replicaChain

	nullSeq int

	// Stats.
	TokenHits        int64 // reads served from the token-coherent cache
	Repairs          int64 // cross-shard coherence repairs issued
	RouteRetries     int64 // ops rerouted after a mid-operation ring change
	TokensRecalled   int64 // tokens forfeited because their keys moved
	MovedDrops       int64 // cached blocks dropped because their keys moved
	ReplicaReads     int64 // block fetches served by a chain member
	ReplicaFallbacks int64 // replica attempts that fell back to the primary
}

// replicaChain is one slot's wired chain: frame imports selected
// round-robin, plus a scratch segment for the landed frame. On a clean
// fabric the imports are plain — a lost or torn read just falls back to
// the primary — but a clerk wired reliable extends that choice here (see
// wireReplicas), and rel widens the read deadline to the retry schedule.
type replicaChain struct {
	epoch   uint32
	segs    []*rmem.Import
	scratch *rmem.Segment
	rr      int
	rel     bool
}

// replicaReadTO bounds one replica frame READ; an unreachable replica
// times out and the read falls back to the primary. The bound must absorb
// queueing: a reader fleet round-robining one member serializes on that
// member's switch port, so a frame can legitimately wait many frame-times
// behind its peers before its turn. A *lagging* replica is caught by the
// watermark check on the returned frame, not by this timeout.
const replicaReadTO = 10 * time.Millisecond

type blockKey struct {
	h     fstore.Handle
	block int64
}

// NewClerk wires a sharded clerk on m's node: one sub-clerk per live slot
// and, with WithTokenCache, one RW token client per slot token area. The
// clerk registers with the service and subscribes to its Membership, so
// later joins, drains, and failover slot moves are wired automatically.
func NewClerk(p *des.Proc, m *rmem.Manager, svc *Service, mode dfs.Mode, opts ...ClerkOption) *Clerk {
	var o clerkOptions
	for _, opt := range opts {
		opt(&o)
	}
	c := &Clerk{m: m, svc: svc, Mode: mode, tokenCache: o.tokenCache, dfsOpts: o.dfsOpts}
	for s := range svc.Shards {
		c.wireSlot(p, s)
	}
	svc.clerks = append(svc.clerks, c)
	svc.mb.watchProc(func(p *des.Proc, ev Event) {
		if ev.Slot >= 0 && ev.Slot < len(c.sub) && c.sub[ev.Slot] != nil {
			c.Rebind(p, ev.Slot)
		}
	})
	return c
}

// wireSlot builds the sub-clerk (and token client) for one slot; a no-op
// when the slot is already wired or vacant.
func (c *Clerk) wireSlot(p *des.Proc, s int) {
	for len(c.sub) <= s {
		c.sub = append(c.sub, nil)
	}
	if c.sub[s] == nil && s < len(c.svc.Shards) && c.svc.Shards[s] != nil {
		c.sub[s] = dfs.NewClerk(p, c.m, c.svc.Shards[s], c.Mode, c.dfsOpts...)
	}
	if !c.tokenCache {
		return
	}
	for len(c.rw) <= s {
		c.rw = append(c.rw, nil)
		c.cache = append(c.cache, nil)
	}
	if c.rw[s] == nil && s < len(c.svc.Shards) && c.svc.Shards[s] != nil {
		a := c.svc.Shards[s].Areas()[5] // the per-data-bucket token area
		c.rw[s] = tokens.NewRWClient(p, c.m, c.svc.NodeOf(s), uint16(a[0]), uint16(a[1]), a[2], c.svc.slotNodes)
		c.cache[s] = make(map[int]map[blockKey][]byte)
		s := s
		c.rw[s].OnInvalidate(func(p *des.Proc, tok int) { c.invalidateToken(s, tok) })
		c.wireReplicas(p, s) // a clerk built after AttachReplicas wires here
	}
}

// wireReplicas (re-)wires one slot's replica chain into this clerk: plain
// frame imports for the read path, plus — through the token client — a
// chain-state import for watermark stamps and retransmitting member
// imports for the write-grant recall fan-out. Replica reads only make
// sense under the token cache (the watermark rides the read grant), so
// this is a no-op without it.
func (c *Clerk) wireReplicas(p *des.Proc, s int) {
	if !c.tokenCache {
		return
	}
	for len(c.replicas) <= s {
		c.replicas = append(c.replicas, nil)
	}
	c.replicas[s] = nil
	rwLive := s < len(c.rw) && c.rw[s] != nil
	spec := c.svc.chainOf(s)
	if spec == nil || len(spec.members) == 0 || c.svc.Shards[s] == nil || !c.svc.Shards[s].HasChain() {
		if rwLive {
			c.rw[s].ClearChain()
		}
		return
	}
	// Stagger the round-robin start per clerk node: with a common origin,
	// a fleet of clerks marches on the same member in lockstep and the
	// chain serves reads at single-member bandwidth.
	rc := &replicaChain{epoch: spec.epoch, rr: c.m.Node.ID}
	var recall []*rmem.Import
	for _, cr := range spec.members {
		id, gen, size := cr.ChainSeg()
		seg := c.m.Import(p, cr.Node().ID, id, gen, size)
		if c.sub[s] != nil && c.sub[s].Reliable() {
			// Match the sub-clerk's transport: on a fabric lossy enough to
			// need retransmission, a plain frame READ almost never survives
			// (one clobbered cell out of ~170 kills the reply) and every
			// replica fetch would burn the full timeout before falling back.
			seg.SetReliable(true)
			rc.rel = true
		}
		rc.segs = append(rc.segs, seg)
		rel := c.m.Import(p, cr.Node().ID, id, gen, size)
		rel.SetReliable(true)
		recall = append(recall, rel)
	}
	rc.scratch = c.m.Export(p, dfs.ChainFrameLen)
	c.replicas[s] = rc
	if rwLive {
		sid, sgen, ssize := c.svc.Shards[s].ChainState()
		st := c.m.Import(p, c.svc.NodeOf(s), sid, sgen, ssize)
		st.SetReliable(true)
		c.rw[s].SetChain(st, dfs.ChainStateVerOff, recall, dfs.ChainFrameOff)
	}
}

// replicaBlock tries to serve (h, block) from a chain member: the token
// watermark gives the freshness floor, a round-robin member's frame is
// READ one-sidedly, and dfs.ParseChainFrame enforces floor, integrity, and
// identity. Any failure reports false and the caller reads the primary.
func (c *Clerk) replicaBlock(p *des.Proc, s, tok int, h fstore.Handle, block int64) ([]byte, bool) {
	if s >= len(c.replicas) || c.replicas[s] == nil {
		return nil, false
	}
	rc := c.replicas[s]
	epoch, ver, ok := c.rw[s].StampWatermark(p, tok)
	if !ok || epoch != rc.epoch {
		c.ReplicaFallbacks++
		return nil, false
	}
	imp := rc.segs[rc.rr%len(rc.segs)]
	rc.rr++
	to := des.Duration(replicaReadTO)
	if rc.rel {
		// A retransmitting import needs room to run its whole retry
		// schedule, or one clobbered chunk converts into a spurious timeout.
		pp := c.m.Node.P
		to = des.Duration(pp.RetryLimit+1) * pp.RetryBackoffMax
	}
	if err := imp.Read(p, dfs.ChainFrameOff(tok), dfs.ChainFrameLen, rc.scratch, 0, to); err != nil {
		c.ReplicaFallbacks++
		return nil, false
	}
	blk, _, ok := dfs.ParseChainFrame(rc.scratch.Bytes(), h, block, ver)
	if !ok {
		c.ReplicaFallbacks++
		return nil, false
	}
	return blk, true
}

// invalidateToken drops a revoked token's cached blocks AND the sub-clerk's
// local copies of the covered handles: the sub-clerk's block cache was
// populated under the token's protection and must not outlive it — a
// peer's write is about to change the bytes (the stale-read hole the token
// protocol exists to close).
func (c *Clerk) invalidateToken(s, tok int) {
	for bk := range c.cache[s][tok] {
		if c.sub[s] != nil {
			c.sub[s].Forget(bk.h)
		}
	}
	delete(c.cache[s], tok)
}

// dropSlot tears down a slot's wiring after a drain or a failed join: any
// remaining tokens are forfeited locally (the table is going away) and the
// sub-clerk is discarded.
func (c *Clerk) dropSlot(p *des.Proc, s int) {
	if s < len(c.rw) && c.rw[s] != nil {
		c.rw[s].ForfeitAll(p)
		c.rw[s] = nil
		c.cache[s] = nil
	}
	if s < len(c.replicas) {
		c.replicas[s] = nil
	}
	if s < len(c.sub) {
		c.sub[s] = nil
	}
}

// settle is the cutover's deposit barrier: one minimal remote read against
// each donor flushes this clerk's in-flight one-sided deposits ahead of
// the migration scan. Cells are FIFO per virtual circuit, so the read's
// reply proves every frame the clerk previously sent to that node has been
// deposited. It must not ride the Hybrid-1 request channel (a Null would):
// the cutover runs on the coordinator's proc while this clerk may have an
// unmoved-key operation mid-call, and the channel's reply state is not
// shared safely between two procs.
func (c *Clerk) settle(p *des.Proc, slots []int) {
	for _, s := range slots {
		if s < len(c.sub) && c.sub[s] != nil {
			_ = c.sub[s].DepositBarrier(p)
		}
	}
}

// recallMoved recalls cached state for exactly the keys that move under a
// pending cutover: moved block copies are dropped, every sub-clerk forgets
// the moved handles, and tokens left with no cached entries are forfeited
// back to the (still live) donor table. Unmoved keys keep their tokens and
// their cache hits.
func (c *Clerk) recallMoved(p *des.Proc, old *Ring, moved func(fstore.Handle) bool) {
	for _, sc := range c.sub {
		if sc != nil {
			sc.ForgetMoved(moved)
		}
	}
	if !c.tokenCache {
		return
	}
	for s := range c.rw {
		if c.rw[s] == nil {
			continue
		}
		var forfeits []int
		for tok, m := range c.cache[s] {
			touched := false
			for bk := range m {
				if moved(bk.h) {
					delete(m, bk)
					c.MovedDrops++
					touched = true
				}
			}
			if touched && len(m) == 0 {
				delete(c.cache[s], tok)
				forfeits = append(forfeits, tok)
			}
		}
		// Remote forfeits in sorted order: map iteration must not leak
		// nondeterminism into the event stream.
		sort.Ints(forfeits)
		for _, tok := range forfeits {
			if held, err := c.rw[s].ForfeitToken(p, tok); err == nil && held {
				c.TokensRecalled++
			}
		}
	}
}

// ConnectTokenPeers wires the full revocation mesh between token-caching
// clerks, per slot, and records the group so the service can extend the
// mesh when a shard joins (a deployment would publish the channels through
// the name service instead).
func ConnectTokenPeers(p *des.Proc, clerks ...*Clerk) {
	for _, c := range clerks {
		c.peers = clerks
	}
	slots := 0
	for _, c := range clerks {
		if len(c.rw) > slots {
			slots = len(c.rw)
		}
	}
	for s := 0; s < slots; s++ {
		connectSlotPeers(p, s, clerks)
	}
}

// connectSlotPeers wires one slot's revocation mesh across a clerk group.
func connectSlotPeers(p *des.Proc, s int, clerks []*Clerk) {
	live := func(c *Clerk) bool { return s < len(c.rw) && c.rw[s] != nil }
	for _, a := range clerks {
		for _, b := range clerks {
			if a == b || !live(a) || !live(b) {
				continue
			}
			rid, rgen, rsize := b.rw[s].RevocationChannel()
			a.rw[s].Connect(p, b.m.Node.ID, rid, rgen, rsize)
		}
	}
	for _, a := range clerks {
		for _, b := range clerks {
			if a == b || !live(a) || !live(b) {
				continue
			}
			pid, pgen, psize := a.rw[s].PeerReply(b.m.Node.ID)
			b.rw[s].AttachPeer(p, a.m.Node.ID, pid, pgen, psize)
		}
	}
}

// owner maps any handle to its slot under the committed ring.
func (c *Clerk) owner(h fstore.Handle) int { return c.svc.Ring.Owner(h.U64()) }

// routed runs one keyed operation against the key's owner, resolved
// through the Membership: a key mid-migration parks until the cutover
// commits, and an operation that raced a commit (the epoch changed AND the
// key's owner with it) retries once against the new owner.
func (c *Clerk) routed(p *des.Proc, key uint64, fn func(s int) error) error {
	for attempt := 0; ; attempt++ {
		s, e := c.svc.mb.ownerAwait(p, key)
		c.wireSlot(p, s)
		c.svc.mb.opEnter(key)
		err := fn(s)
		c.svc.mb.opExit(key)
		if err == nil || attempt > 0 {
			return err
		}
		if ring, e2 := c.svc.mb.Current(); e2 == e || ring.Owner(key) == s {
			return err
		}
		c.RouteRetries++
	}
}

// Sub exposes the per-slot sub-clerk (tests and stats aggregation).
func (c *Clerk) Sub(i int) *dfs.Clerk { return c.sub[i] }

// Node returns the clerk's node.
func (c *Clerk) Node() *cluster.Node { return c.m.Node }

// FlushLocal drops every sub-clerk's client-side cache. The token-coherent
// block cache survives: its validity is guaranteed by held tokens, not by
// freshness assumptions, so there is nothing to flush for correctness —
// exactly the property that lets re-reads skip the server entirely.
func (c *Clerk) FlushLocal() {
	for _, sc := range c.sub {
		if sc != nil {
			sc.FlushLocal()
		}
	}
}

// DropTokenCache releases nothing but forgets every cached block copy (for
// experiments that want a cold token cache).
func (c *Clerk) DropTokenCache() {
	for i := range c.cache {
		if c.cache[i] != nil {
			c.cache[i] = make(map[int]map[blockKey][]byte)
		}
	}
}

// Rebind re-wires slot i's sub-clerk to the (post-failover) current server
// incarnation, and forfeits that slot's tokens and cached blocks — the
// dead incarnation's token table died with it. Normally driven by the
// Membership subscription when a failover publishes a slot move.
func (c *Clerk) Rebind(p *des.Proc, i int) {
	if i >= len(c.sub) || c.sub[i] == nil || c.svc.Shards[i] == nil {
		return
	}
	c.sub[i].Rebind(p, c.svc.Shards[i])
	if i < len(c.rw) && c.rw[i] != nil {
		a := c.svc.Shards[i].Areas()[5]
		c.rw[i].RebindTable(p, c.svc.NodeOf(i), uint16(a[0]), uint16(a[1]), a[2])
		c.cache[i] = make(map[int]map[blockKey][]byte)
	}
	// A chain promotion re-homes the chain state; re-import it (and drop
	// the chain entirely if the promotion consumed the last member).
	c.wireReplicas(p, i)
}

// ---------------------------------------------------------------------------
// Routed operations.

// GetAttr routes to the shard owning h.
func (c *Clerk) GetAttr(p *des.Proc, h fstore.Handle) (fstore.Attr, error) {
	var a fstore.Attr
	err := c.routed(p, h.U64(), func(s int) (e error) {
		a, e = c.sub[s].GetAttr(p, h)
		return
	})
	return a, err
}

// SetAttr routes to the shard owning h; a resize invalidates our cached
// block copies of the file.
func (c *Clerk) SetAttr(p *des.Proc, h fstore.Handle, mode uint16, size int64) (fstore.Attr, error) {
	var a fstore.Attr
	err := c.routed(p, h.U64(), func(s int) (e error) {
		a, e = c.sub[s].SetAttr(p, h, mode, size)
		if e == nil {
			c.dropCachedFile(s, h)
		}
		return
	})
	return a, err
}

// Lookup routes to the shard owning the directory, where Create/Rename/
// Remove on that directory also execute — namespace reads and mutations
// meet at one cache.
func (c *Clerk) Lookup(p *des.Proc, dir fstore.Handle, name string) (fstore.Handle, fstore.Attr, error) {
	var h fstore.Handle
	var a fstore.Attr
	err := c.routed(p, dir.U64(), func(s int) (e error) {
		h, a, e = c.sub[s].Lookup(p, dir, name)
		return
	})
	return h, a, err
}

// ReadLink routes to the shard owning h.
func (c *Clerk) ReadLink(p *des.Proc, h fstore.Handle) (string, error) {
	var t string
	err := c.routed(p, h.U64(), func(s int) (e error) {
		t, e = c.sub[s].ReadLink(p, h)
		return
	})
	return t, err
}

// ReadDir routes to the shard owning the directory.
func (c *Clerk) ReadDir(p *des.Proc, h fstore.Handle, offset int64, count int) ([]byte, error) {
	var out []byte
	err := c.routed(p, h.U64(), func(s int) (e error) {
		out, e = c.sub[s].ReadDir(p, h, offset, count)
		return
	})
	return out, err
}

// Create routes to the shard owning the directory.
func (c *Clerk) Create(p *des.Proc, dir fstore.Handle, name string, mode uint16) (fstore.Handle, fstore.Attr, error) {
	var h fstore.Handle
	var a fstore.Attr
	err := c.routed(p, dir.U64(), func(s int) (e error) {
		h, a, e = c.sub[s].Create(p, dir, name, mode)
		return
	})
	return h, a, err
}

// Mkdir routes to the shard owning the directory.
func (c *Clerk) Mkdir(p *des.Proc, dir fstore.Handle, name string, mode uint16) (fstore.Handle, fstore.Attr, error) {
	var h fstore.Handle
	var a fstore.Attr
	err := c.routed(p, dir.U64(), func(s int) (e error) {
		h, a, e = c.sub[s].Mkdir(p, dir, name, mode)
		return
	})
	return h, a, err
}

// Symlink routes to the shard owning the directory.
func (c *Clerk) Symlink(p *des.Proc, dir fstore.Handle, name, target string) (fstore.Handle, fstore.Attr, error) {
	var h fstore.Handle
	var a fstore.Attr
	err := c.routed(p, dir.U64(), func(s int) (e error) {
		h, a, e = c.sub[s].Symlink(p, dir, name, target)
		return
	})
	return h, a, err
}

// Remove executes at the shard owning the directory. When the removed
// child's attribute record lives on a *different* shard's cache, that
// record is now stale — a repair forces the other shard's server procedure
// to re-resolve the handle, which fails and drops the record (the
// error-path dropAttr in dfs.Server.execute).
func (c *Clerk) Remove(p *des.Proc, dir fstore.Handle, name string) error {
	return c.routed(p, dir.U64(), func(s int) error {
		child, _, lerr := c.sub[s].Lookup(p, dir, name)
		if err := c.sub[s].Remove(p, dir, name); err != nil {
			return err
		}
		if lerr == nil {
			if cs := c.owner(child); cs != s {
				c.Repairs++
				c.wireSlot(p, cs)
				_ = c.sub[cs].Refresh(p, child) // expected to fail: the refresh IS the repair
				c.sub[cs].Forget(child)
				c.dropCachedFile(cs, child)
			}
		}
		return nil
	})
}

// dropCachedFile forgets token-cached blocks of one (now stale) handle.
func (c *Clerk) dropCachedFile(s int, h fstore.Handle) {
	if c.cache == nil || s >= len(c.cache) || c.cache[s] == nil {
		return
	}
	for tok, m := range c.cache[s] {
		for bk := range m {
			if bk.h == h {
				delete(m, bk)
			}
		}
		if len(m) == 0 {
			delete(c.cache[s], tok)
		}
	}
}

// Rename executes at the shard owning the source directory. A cross-shard
// destination directory then holds a stale stream and possibly a stale
// (toDir, toName) record; repairs reload both through the destination
// shard's server procedure.
func (c *Clerk) Rename(p *des.Proc, fromDir fstore.Handle, fromName string, toDir fstore.Handle, toName string) error {
	return c.routed(p, fromDir.U64(), func(s int) error {
		if err := c.sub[s].Rename(p, fromDir, fromName, toDir, toName); err != nil {
			return err
		}
		if ts := c.owner(toDir); ts != s {
			c.Repairs++
			c.wireSlot(p, ts)
			c.sub[ts].ForgetDir(toDir)
			_ = c.sub[ts].RefreshDir(p, toDir)
			_ = c.sub[ts].RefreshLookup(p, toDir, toName)
		}
		return nil
	})
}

// StatFS is a whole-store query; the shared store makes any shard
// authoritative, so it routes to the lowest live slot deterministically.
func (c *Clerk) StatFS(p *des.Proc) (fstore.FSStat, error) {
	ring, _ := c.svc.mb.Current()
	s := ring.Members()[0]
	c.wireSlot(p, s)
	return c.sub[s].StatFS(p)
}

// Null round-robins across live slots (it carries no key).
func (c *Clerk) Null(p *des.Proc) error {
	ring, _ := c.svc.mb.Current()
	members := ring.Members()
	s := members[c.nullSeq%len(members)]
	c.nullSeq++
	c.wireSlot(p, s)
	return c.sub[s].Null(p)
}

// ---------------------------------------------------------------------------
// Data path. Without the token cache, Read/Write delegate to the owning
// sub-clerk. With it, every block access goes through the RW token for the
// block's server bucket: a held read token proves no writer has touched the
// bucket since we cached the block, so the re-read is a map lookup — no
// cells on the wire, no CPU on any server.

// Read returns up to count bytes at offset.
func (c *Clerk) Read(p *des.Proc, h fstore.Handle, offset int64, count int) ([]byte, error) {
	var out []byte
	err := c.routed(p, h.U64(), func(s int) error {
		out = nil
		if !c.tokenCache {
			var e error
			out, e = c.sub[s].Read(p, h, offset, count)
			return e
		}
		if offset < 0 || count < 0 {
			return fstore.ErrBadOffset
		}
		off, cnt := offset, count
		for cnt > 0 {
			block := off / fstore.BlockSize
			in := int(off % fstore.BlockSize)
			want := cnt
			if in+want > fstore.BlockSize {
				want = fstore.BlockSize - in
			}
			blk, err := c.coherentBlock(p, s, h, block)
			if err != nil {
				return err
			}
			if in >= len(blk) {
				break // EOF
			}
			hi := in + want
			if hi > len(blk) {
				hi = len(blk)
			}
			out = append(out, blk[in:hi]...)
			if hi < in+want {
				break
			}
			off += int64(want)
			cnt -= want
		}
		return nil
	})
	return out, err
}

// coherentBlock serves one block under the token protocol.
func (c *Clerk) coherentBlock(p *des.Proc, s int, h fstore.Handle, block int64) ([]byte, error) {
	tok := c.svc.Geo.DataBucket(h, block)
	key := blockKey{h, block}
	held := c.rw[s].HoldsRead(tok) || c.rw[s].HoldsWrite(tok)
	if held {
		if b, ok := c.cache[s][tok][key]; ok {
			c.TokenHits++
			return b, nil
		}
	}
	if err := c.rw[s].AcquireRead(p, tok, tokenTimeout); err != nil {
		return nil, err
	}
	if !held {
		// The token lapsed since we last read under it (revoked, forfeited,
		// or never held): any sub-clerk copy of the file predates this
		// acquisition and a writer may have changed the bytes — refetch.
		c.sub[s].Forget(h)
	}
	if blk, ok := c.replicaBlock(p, s, tok, h, block); ok {
		// Served by a chain member: the primary's CPU and memory system
		// were never touched.
		c.ReplicaReads++
		if c.cache[s][tok] == nil {
			c.cache[s][tok] = make(map[blockKey][]byte)
		}
		c.cache[s][tok][key] = blk
		return blk, nil
	}
	blk, err := c.sub[s].Read(p, h, block*fstore.BlockSize, fstore.BlockSize)
	if err != nil {
		return nil, err
	}
	if c.cache[s][tok] == nil {
		c.cache[s][tok] = make(map[blockKey][]byte)
	}
	c.cache[s][tok][key] = blk
	return blk, nil
}

// Write stores data at offset. With the token cache, each touched bucket's
// write token is acquired first — recalling every reader's token and
// invalidating their cached copies — then released back to a read token
// once the deposit is done (Downgrade: we keep cache validity ourselves).
func (c *Clerk) Write(p *des.Proc, h fstore.Handle, offset int64, data []byte) error {
	return c.routed(p, h.U64(), func(s int) error {
		if !c.tokenCache {
			return c.sub[s].Write(p, h, offset, data)
		}
		off, buf := offset, data
		for len(buf) > 0 {
			block := off / fstore.BlockSize
			in := int(off % fstore.BlockSize)
			n := len(buf)
			if in+n > fstore.BlockSize {
				n = fstore.BlockSize - in
			}
			tok := c.svc.Geo.DataBucket(h, block)
			if err := c.rw[s].AcquireWrite(p, tok, tokenTimeout); err != nil {
				return err
			}
			err := c.sub[s].Write(p, h, off, buf[:n])
			if err == nil {
				// Our own stale copy of the block (if any) must not outlive
				// the write; the next read refetches under the read token.
				if m := c.cache[s][tok]; m != nil {
					delete(m, blockKey{h, block})
				}
				err = c.rw[s].Downgrade(p, tok)
			}
			if err != nil {
				return err
			}
			off += int64(n)
			buf = buf[n:]
		}
		return nil
	})
}

// Stats aggregates the sub-clerks' counters (plus this clerk's own).
type Stats struct {
	LocalHits        int64
	RemoteReads      int64
	RemoteWrites     int64
	Misses           int64
	Rebinds          int64
	TokenHits        int64
	Repairs          int64
	RouteRetries     int64
	TokensRecalled   int64
	ReplicaReads     int64
	ReplicaFallbacks int64
}

// Stats sums counters across sub-clerks.
func (c *Clerk) Stats() Stats {
	st := Stats{TokenHits: c.TokenHits, Repairs: c.Repairs,
		RouteRetries: c.RouteRetries, TokensRecalled: c.TokensRecalled,
		ReplicaReads: c.ReplicaReads, ReplicaFallbacks: c.ReplicaFallbacks}
	for _, sc := range c.sub {
		if sc == nil {
			continue
		}
		st.LocalHits += sc.LocalHits
		st.RemoteReads += sc.RemoteReads
		st.RemoteWrites += sc.RemoteWrites
		st.Misses += sc.Misses
		st.Rebinds += sc.Rebinds
	}
	return st
}
