package shard

import (
	"fmt"
	"testing"

	"netmem/internal/des"
	"netmem/internal/obs"
)

// chargeLive posts synthetic busy time against every live shard node's CPU
// counter — the same "cpu.node<i>.<cat>" ledger Node.UseCPU feeds, so the
// autoscaler cannot tell the difference.
func chargeLive(tr *obs.Tracer, svc *Service, frac float64, window des.Duration) {
	busy := int64(frac * float64(window))
	ring, _ := svc.Membership().Current()
	for _, slot := range ring.Members() {
		tr.Count(fmt.Sprintf("cpu.node%d.synthetic", svc.NodeOf(slot)), busy)
	}
}

func TestAutoscalerWatermarks(t *testing.T) {
	r := newElasticRig(t, 2, 2, 1, 1)
	tr := obs.New(obs.Config{})
	r.env.SetTracer(tr)
	mgr := NewManager(r.svc, r.mgrs[2:4], ManagerConfig{Cooldown: 1})
	interval := mgr.cfg.Interval

	r.run(t, func(p *des.Proc) {
		// First sample only establishes the busy-ns baseline.
		if changed, err := mgr.Step(p); err != nil || changed {
			t.Fatalf("baseline step: changed=%v err=%v", changed, err)
		}

		// 90% synthetic occupancy: above the high watermark, so the next
		// step joins a spare.
		chargeLive(tr, r.svc, 0.9, interval)
		changed, err := mgr.Step(p)
		if err != nil || !changed {
			t.Fatalf("hot step: changed=%v err=%v", changed, err)
		}
		if r.svc.Size() != 3 || mgr.Joins != 1 {
			t.Fatalf("after hot step: size=%d joins=%d", r.svc.Size(), mgr.Joins)
		}

		// Still hot, but the join armed the cooldown: no action.
		chargeLive(tr, r.svc, 0.9, interval)
		if changed, err := mgr.Step(p); err != nil || changed {
			t.Fatalf("cooldown step: changed=%v err=%v", changed, err)
		}
		if mgr.LastOcc < 0.70 {
			t.Fatalf("cooldown step should still see hot occupancy, got %.2f", mgr.LastOcc)
		}

		// Idle sample below the low watermark: drain the joiner (LIFO).
		if changed, err := mgr.Step(p); err != nil || !changed {
			t.Fatalf("idle step: changed=%v err=%v", changed, err)
		}
		if r.svc.Size() != 2 || mgr.Drains != 1 {
			t.Fatalf("after idle step: size=%d drains=%d", r.svc.Size(), mgr.Drains)
		}

		// Fleet is back at MinShards with no joiner left: further idle
		// samples must not drain the founding members.
		mgr.cooldown = 0
		if changed, err := mgr.Step(p); err != nil || changed {
			t.Fatalf("floor step: changed=%v err=%v", changed, err)
		}
		if r.svc.Size() != 2 {
			t.Fatalf("floor violated: size=%d", r.svc.Size())
		}
	})
}

func TestAutoscalerScaleToBounds(t *testing.T) {
	r := newElasticRig(t, 2, 1, 1, 1)
	mgr := NewManager(r.svc, r.mgrs[2:3], ManagerConfig{})
	r.run(t, func(p *des.Proc) {
		if err := mgr.ScaleTo(p, 3); err != nil {
			t.Fatalf("scale to 3: %v", err)
		}
		if err := mgr.ScaleTo(p, 4); err == nil {
			t.Fatal("scale past the pool should fail")
		}
		if err := mgr.ScaleTo(p, 2); err != nil {
			t.Fatalf("scale back to 2: %v", err)
		}
		if err := mgr.ScaleTo(p, 1); err == nil {
			t.Fatal("draining a founding member should fail")
		}
		if r.svc.Size() != 2 {
			t.Fatalf("size=%d after bounded sweep", r.svc.Size())
		}
	})
}
