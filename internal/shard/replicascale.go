package shard

import (
	"fmt"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/fstore"
	"netmem/internal/model"
	"netmem/internal/rmem"
)

// Replica read scaling (the PR's Figure-3 analogue): a fleet of reader
// clerks hammers one hot file while a writer keeps the primary under a
// constant control-plane load. Every reader holds read tokens, so its
// re-reads bypass the primary entirely and round-robin over the chain
// members' exported frame segments. Each member's switch ingress port is
// a serial cell pump — the shared bottleneck — so aggregate hot-block
// read goodput scales with the member count while the primary's CPU
// occupancy (all from the writer's RPCs) stays flat.

// ReplicaScalePoint is one measured sweep point.
type ReplicaScalePoint struct {
	Replicas int
	Readers  int
	Window   time.Duration

	// ReadBytes is what the reader fleet verified-read inside the window;
	// GoodputMBs the same as MB/s.
	ReadBytes  int64
	GoodputMBs float64

	// ReplicaReads / ReplicaFallbacks split the fleet's block fetches by
	// source; Fallbacks land on the primary.
	ReplicaReads     int64
	ReplicaFallbacks int64

	// PrimaryCPU is the request-serving scheduled CPU (procedure + control
	// categories: RPC handlers and thread dispatch) charged on the primary
	// over the window; Occupancy the same as a fraction of the window. The
	// writer's paced Sync RPCs keep it nonzero, so "flat across the sweep"
	// is a meaningful claim rather than zero-equals-zero. ReplicationCPU is
	// the primary's rmem-client time — the chain pushes, including their
	// retransmissions when the fabric is busy — reported separately because
	// it scales with write traffic and fabric load, never with the reader
	// fleet's goodput.
	PrimaryCPU     time.Duration
	Occupancy      float64
	ReplicationCPU time.Duration

	// WriterOps counts write+sync rounds completed inside the window.
	WriterOps int64
}

const (
	replicaScaleHotSize = 32 * 1024 // 4 blocks round-robined over members
	replicaScaleWarm    = 20 * time.Millisecond
	replicaScaleWindow  = 100 * time.Millisecond
)

// RunReplicaScale measures one sweep point: `replicas` chain members
// serving `readers` token-holding reader clerks. The topology gives every
// actor its own node: primary 0, writer 1, readers 2..1+readers, chain
// members after.
func RunReplicaScale(replicas, readers int) (*ReplicaScalePoint, error) {
	if replicas < 1 || readers < 1 {
		return nil, fmt.Errorf("shard: replica scale needs replicas >= 1 and readers >= 1")
	}
	pt := &ReplicaScalePoint{Replicas: replicas, Readers: readers, Window: replicaScaleWindow}
	env := des.NewEnv()
	nodes := 2 + readers + replicas
	cl := cluster.New(env, &model.Default, nodes)
	mgrs := make([]*rmem.Manager, nodes)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}

	var svc *Service
	var writer *Clerk
	readerClerks := make([]*Clerk, readers)
	var hot, wfile fstore.Handle
	var setupErr error
	env.Spawn("replicascale.setup", func(p *des.Proc) {
		svc = NewService(p, mgrs[:1], nodes, dfs.Geometry{}, dfs.WithReliableReplies())
		writer = NewClerk(p, mgrs[1], svc, dfs.DX, WithTokenCache())
		for i := range readerClerks {
			readerClerks[i] = NewClerk(p, mgrs[2+i], svc, dfs.DX, WithTokenCache())
		}
		hotPat := make([]byte, replicaScaleHotSize)
		for i := range hotPat {
			hotPat[i] = byte(i*13 + 7)
		}
		var err error
		if hot, err = svc.Store.WriteFile("/export/hot.bin", hotPat); err != nil {
			setupErr = err
			return
		}
		if wfile, err = svc.Store.WriteFile("/export/load.bin", make([]byte, fstore.BlockSize)); err != nil {
			setupErr = err
			return
		}
		if err := svc.WarmFile(hot); err != nil {
			setupErr = err
			return
		}
		if err := svc.WarmFile(wfile); err != nil {
			setupErr = err
			return
		}
		if err := svc.AttachReplicas(p, 0, mgrs[2+readers:], 100*time.Microsecond); err != nil {
			setupErr = err
			return
		}
		// Wait for the chain to converge on the warm frames so the first
		// measured reads find every member serving.
		for tries := 0; tries < 200; tries++ {
			p.Sleep(des.Duration(time.Millisecond))
			lo, hi := ^uint64(0), uint64(0)
			for _, cr := range svc.Replicas(0) {
				if a := cr.Applied(); a < lo {
					lo = a
				}
				if a := cr.Applied(); a > hi {
					hi = a
				}
			}
			if lo == hi && lo > 0 {
				break
			}
		}
	})
	if err := env.RunUntil(des.Time(replicaScaleWarm)); err != nil {
		return nil, err
	}
	if setupErr != nil {
		return nil, setupErr
	}

	start := des.Time(replicaScaleWarm + 10*time.Millisecond)
	end := start.Add(replicaScaleWindow)
	var readBytes, writerOps int64
	var readErr error
	var cpuBefore, pushBefore time.Duration // CPU accrued on the primary before the window
	servingCPU := func() time.Duration {
		acct := cl.Nodes[0].CPUAcct
		return time.Duration(acct[cluster.CatProc] + acct[cluster.CatControl])
	}
	clientCPU := func() time.Duration {
		return time.Duration(cl.Nodes[0].CPUAcct[cluster.CatClient])
	}

	// The writer's constant load: dirty a block, then a Sync RPC — the
	// latter is a server procedure, the primary's only scheduled-CPU
	// consumer here. Rounds fire on fixed ticks so every sweep point sees
	// the identical load regardless of how busy the fabric is; a round is
	// attributed to the window by its tick, and the CPU baseline is taken
	// right before the first in-window round fires — between rounds, so a
	// round's latency jitter can never straddle the boundary and void the
	// point-to-point comparison.
	env.Spawn("replicascale.writer", func(p *des.Proc) {
		const tick = 20 * time.Millisecond
		blk := make([]byte, fstore.BlockSize)
		metered := false
		for round := uint32(0); ; round++ {
			next := des.Time(replicaScaleWarm).Add(time.Duration(round) * tick)
			if next >= end {
				return
			}
			if next > p.Now() {
				p.Sleep(time.Duration(next.Sub(p.Now())))
			}
			if next >= start && !metered {
				metered = true
				cpuBefore = servingCPU()
				pushBefore = clientCPU()
			}
			for i := range blk {
				blk[i] = byte(round + uint32(i))
			}
			if err := writer.Write(p, wfile, 0, blk); err != nil {
				return
			}
			if _, err := svc.Sync(p); err != nil {
				return
			}
			if next >= start {
				writerOps++
			}
		}
	})
	for i, rc := range readerClerks {
		rc := rc
		env.Spawn(fmt.Sprintf("replicascale.reader%d", i), func(p *des.Proc) {
			// First read acquires the read tokens and stamps watermarks.
			if _, err := rc.Read(p, hot, 0, replicaScaleHotSize); err != nil {
				readErr = err
				return
			}
			for p.Now() < end {
				// Keep the tokens, drop the copies: every pass must move
				// the bytes again — from a chain member.
				rc.DropTokenCache()
				t0 := p.Now()
				data, err := rc.Read(p, hot, 0, replicaScaleHotSize)
				if err != nil {
					readErr = err
					return
				}
				if len(data) != replicaScaleHotSize {
					readErr = fmt.Errorf("short hot read: %d bytes", len(data))
					return
				}
				if t0 >= start && p.Now() < end {
					readBytes += int64(len(data))
				}
			}
		})
	}

	if err := env.RunUntil(end.Add(5 * time.Millisecond)); err != nil {
		return nil, err
	}
	if readErr != nil {
		return nil, readErr
	}

	pt.ReadBytes = readBytes
	pt.GoodputMBs = float64(readBytes) / (1 << 20) / replicaScaleWindow.Seconds()
	for _, rc := range readerClerks {
		pt.ReplicaReads += rc.ReplicaReads
		pt.ReplicaFallbacks += rc.ReplicaFallbacks
	}
	pt.PrimaryCPU = servingCPU() - cpuBefore
	pt.ReplicationCPU = clientCPU() - pushBefore
	pt.Occupancy = float64(pt.PrimaryCPU) / float64(replicaScaleWindow)
	pt.WriterOps = writerOps
	return pt, nil
}

// ReplicaSweep runs RunReplicaScale for every chain length 1..maxReplicas
// with a fixed reader fleet.
func ReplicaSweep(maxReplicas, readers int) ([]*ReplicaScalePoint, error) {
	var pts []*ReplicaScalePoint
	for k := 1; k <= maxReplicas; k++ {
		pt, err := RunReplicaScale(k, readers)
		if err != nil {
			return nil, fmt.Errorf("replicas=%d: %w", k, err)
		}
		pts = append(pts, pt)
	}
	return pts, nil
}
