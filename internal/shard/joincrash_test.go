package shard

import (
	"bytes"
	"encoding/json"
	"testing"

	"netmem/internal/dfs"
	"netmem/internal/faults"
)

// TestJoincrashDeterministic is the joiner-death golden: the joincrash
// campaign crashes the joining shard's node mid-cutover, AddShard's
// pre-commit liveness probe fails, and the cutover aborts — the ring
// never hands ownership to the corpse, parked operations resume against
// the old membership, and the Figure 2 mix completes 12/12 with a clean
// divergence audit. Two runs at seed 1 must be byte-identical.
func TestJoincrashDeterministic(t *testing.T) {
	camp, ok := faults.Named("joincrash")
	if !ok {
		t.Fatal("joincrash campaign not registered")
	}
	runOnce := func() ([]byte, *ChaosResult) {
		res, err := RunChaos(ChaosConfig{Campaign: camp, Seed: 1, Mode: dfs.DX, Shards: 3})
		if err != nil {
			t.Fatalf("RunChaos: %v", err)
		}
		js, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return append(js, res.Metrics.String()...), res
	}
	b1, r1 := runOnce()
	b2, _ := runOnce()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("joincrash campaign not deterministic at seed 1")
	}
	if !r1.JoinAttempted {
		t.Errorf("mid-campaign AddShard never ran")
	}
	if !r1.JoinAborted {
		t.Errorf("AddShard committed a dead joiner; want the cutover aborted")
	}
	if r1.Completed != len(r1.Ops) || len(r1.Ops) != 12 {
		t.Errorf("goodput %d/%d, want 12/12", r1.Completed, len(r1.Ops))
	}
	if r1.Strays != 0 {
		t.Errorf("divergence audit found %d strays, want 0", r1.Strays)
	}
}
