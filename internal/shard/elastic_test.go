package shard

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/fstore"
	"netmem/internal/model"
	"netmem/internal/nameserver"
	"netmem/internal/rmem"
)

// elasticRig: shard slots on the low nodes (only `shards` of them live at
// boot, the rest spare capacity for AddShard), clerks on the high nodes.
type elasticRig struct {
	env    *des.Env
	cl     *cluster.Cluster
	svc    *Service
	clerks []*Clerk
	mgrs   []*rmem.Manager
}

func newElasticRig(t *testing.T, shards, spares, clerks int, seed int64, copts ...ClerkOption) *elasticRig {
	t.Helper()
	env := des.NewEnv()
	if seed != 0 {
		env.Seed(seed)
	}
	n := shards + spares + clerks
	cl := cluster.New(env, &model.Default, n)
	r := &elasticRig{env: env, cl: cl}
	for i := 0; i < n; i++ {
		r.mgrs = append(r.mgrs, rmem.NewManager(cl.Nodes[i]))
	}
	env.Spawn("setup", func(p *des.Proc) {
		r.svc = NewService(p, r.mgrs[:shards], n, dfs.Geometry{})
		for i := 0; i < clerks; i++ {
			r.clerks = append(r.clerks, NewClerk(p, r.mgrs[shards+spares+i], r.svc, dfs.DX, copts...))
		}
		ConnectTokenPeers(p, r.clerks...)
	})
	if err := env.RunUntil(des.Time(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *elasticRig) run(t *testing.T, fn func(p *des.Proc)) {
	t.Helper()
	r.env.Spawn("test", fn)
	if err := r.env.RunUntil(des.Time(10 * 60 * time.Second)); err != nil {
		t.Fatal(err)
	}
}

// TestMembershipGateAndWatch exercises the Membership contract directly: a
// prepared cutover parks operations on moved keys (and only those), drain
// waits for in-flight moved operations, and commit bumps the epoch, fires
// the watchers, and releases the gate.
func TestMembershipGateAndWatch(t *testing.T) {
	r := newElasticRig(t, 2, 1, 1, 0)
	mb := r.svc.Membership()

	var watched []Epoch
	mb.Watch(func(_ *Ring, e Epoch) { watched = append(watched, e) })

	old, e0 := mb.Current()
	next := old.Clone()
	next.Add(2)

	// Find one key that moves under next and one that stays.
	var movedKey, stayKey uint64
	foundMoved, foundStay := false, false
	for k := uint64(1); k < 10000 && !(foundMoved && foundStay); k++ {
		if old.Owner(k) != next.Owner(k) {
			if !foundMoved {
				movedKey, foundMoved = k, true
			}
		} else if !foundStay {
			stayKey, foundStay = k, true
		}
	}
	if !foundMoved || !foundStay {
		t.Fatal("could not find a moved and an unmoved key")
	}

	var movedRan, stayRan, committed bool
	r.env.Spawn("driver", func(p *des.Proc) {
		// An in-flight operation on the moved key, entered before prepare:
		// drain must wait for it.
		mb.opEnter(movedKey)
		mb.prepare(next)

		// Operations arriving after prepare: the moved key parks until
		// commit, the unmoved key flows through untouched.
		r.env.Spawn("movedOp", func(p *des.Proc) {
			s, e := mb.ownerAwait(p, movedKey)
			if !committed {
				t.Error("moved-key op proceeded before commit")
			}
			if e != e0+1 {
				t.Errorf("moved-key op saw epoch %d, want %d", e, e0+1)
			}
			if want := next.Owner(movedKey); s != want {
				t.Errorf("moved-key op routed to %d, want %d", s, want)
			}
			movedRan = true
		})
		r.env.Spawn("stayOp", func(p *des.Proc) {
			s, _ := mb.ownerAwait(p, stayKey)
			if committed {
				t.Error("unmoved-key op was parked across the cutover")
			}
			if want := old.Owner(stayKey); s != want {
				t.Errorf("unmoved-key op routed to %d, want %d", s, want)
			}
			stayRan = true
		})
		r.env.Spawn("drainer", func(p *des.Proc) {
			mb.drain(p)
			committed = true
			mb.commit(p)
		})

		p.Sleep(time.Millisecond) // ops reach the gate; drain blocks on us
		if committed {
			t.Error("drain completed with a moved-key op still in flight")
		}
		mb.opExit(movedKey) // the in-flight op finishes; drain may proceed
	})
	if err := r.env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if !movedRan || !stayRan || !committed {
		t.Fatalf("movedRan=%v stayRan=%v committed=%v", movedRan, stayRan, committed)
	}
	_, e1 := mb.Current()
	if e1 != e0+1 {
		t.Fatalf("epoch = %d, want %d", e1, e0+1)
	}
	if len(watched) != 1 || watched[0] != e1 {
		t.Fatalf("watcher fired with %v, want [%d]", watched, e1)
	}
}

// stampBlock builds a version-stamped block: the version in the first 8
// bytes and a version-derived pattern in the rest, so a torn or stale block
// is detectable from any byte.
func stampBlock(version uint64, size int) []byte {
	b := make([]byte, size)
	binary.BigEndian.PutUint64(b, version)
	for i := 8; i < size; i++ {
		b[i] = byte(uint64(i)*31 + version*131)
	}
	return b
}

func checkStamp(b []byte) (uint64, error) {
	if len(b) < 8 {
		return 0, fmt.Errorf("short block: %d bytes", len(b))
	}
	v := binary.BigEndian.Uint64(b)
	for i := 8; i < len(b); i++ {
		if b[i] != byte(uint64(i)*31+v*131) {
			return v, fmt.Errorf("torn block: version %d, byte %d inconsistent", v, i)
		}
	}
	return v, nil
}

// TestAddDrainMigratesDirtyState is the core migration property: dirty
// write-behind state deposited at the donor before a cutover must be
// readable (and eventually durable) after the keys move — first onto a
// joiner, then back off it when it drains.
func TestAddDrainMigratesDirtyState(t *testing.T) {
	r := newElasticRig(t, 2, 1, 1, 0)
	r.run(t, func(p *des.Proc) {
		st := r.svc.Store
		c := r.clerks[0]
		const files = 24
		var hs []fstore.Handle
		for i := 0; i < files; i++ {
			h, err := st.WriteFile(fmt.Sprintf("/export/f%03d", i), stampBlock(0, fstore.BlockSize))
			if err != nil {
				t.Fatal(err)
			}
			if err := r.svc.WarmFile(h); err != nil {
				t.Fatal(err)
			}
			hs = append(hs, h)
		}
		// Deposit dirty version-1 blocks through the clerk (DX write-behind:
		// the store still holds version 0 until a Sync).
		for i, h := range hs {
			if _, err := c.Read(p, h, 0, fstore.BlockSize); err != nil { // DX ownership read
				t.Fatal(err)
			}
			if err := c.Write(p, h, 0, stampBlock(1, fstore.BlockSize)); err != nil {
				t.Fatalf("write f%03d: %v", i, err)
			}
		}
		p.Sleep(5 * time.Millisecond) // let the async deposits drain

		oldRing := r.svc.Ring.Clone()
		slot, err := r.svc.AddShard(p, r.mgrs[2])
		if err != nil {
			t.Fatal(err)
		}
		if r.svc.Size() != 3 {
			t.Fatalf("ring size = %d, want 3", r.svc.Size())
		}
		if r.svc.MigratedBuckets == 0 {
			t.Fatal("no dirty buckets migrated; the test should have moved some")
		}
		// Movement bound: with K=files keys and N=3 members, the cutover
		// must move roughly K/N keys — certainly no more than half.
		movedKeys := 0
		for _, h := range hs {
			if oldRing.Owner(h.U64()) != r.svc.Ring.Owner(h.U64()) {
				movedKeys++
			}
		}
		if movedKeys == 0 || movedKeys > files/2 {
			t.Fatalf("cutover moved %d/%d keys, want within (0, %d]", movedKeys, files, files/2)
		}

		// Every file must read back at version 1 — moved dirty blocks
		// through the migrated copy, unmoved ones straight from the donor.
		for i, h := range hs {
			got, err := c.Read(p, h, 0, fstore.BlockSize)
			if err != nil {
				t.Fatalf("read f%03d after join: %v", i, err)
			}
			if v, verr := checkStamp(got); verr != nil || v != 1 {
				t.Fatalf("f%03d after join: version %d err %v, want version 1", i, v, verr)
			}
		}
		if strays, _, err := r.svc.CheckDivergence(p); err != nil || strays != 0 {
			t.Fatalf("divergence after join: strays=%d err=%v", strays, err)
		}

		// Write version 2 everywhere (dirtying the joiner too), then drain
		// the joiner: its dirty state must flow back out.
		for i, h := range hs {
			if _, err := c.Read(p, h, 0, fstore.BlockSize); err != nil {
				t.Fatal(err)
			}
			if err := c.Write(p, h, 0, stampBlock(2, fstore.BlockSize)); err != nil {
				t.Fatalf("write v2 f%03d: %v", i, err)
			}
		}
		p.Sleep(5 * time.Millisecond)
		if err := r.svc.DrainShard(p, slot); err != nil {
			t.Fatal(err)
		}
		if r.svc.Size() != 2 || r.svc.Shards[slot] != nil {
			t.Fatalf("slot %d still live after drain", slot)
		}
		for i, h := range hs {
			got, err := c.Read(p, h, 0, fstore.BlockSize)
			if err != nil {
				t.Fatalf("read f%03d after drain: %v", i, err)
			}
			if v, verr := checkStamp(got); verr != nil || v != 2 {
				t.Fatalf("f%03d after drain: version %d err %v, want version 2", i, v, verr)
			}
		}
		// Durability: a full sync must land version 2 in the shared store.
		if _, err := r.svc.Sync(p); err != nil {
			t.Fatal(err)
		}
		for i, h := range hs {
			got, err := st.Read(h, 0, fstore.BlockSize)
			if err != nil {
				t.Fatal(err)
			}
			if v, verr := checkStamp(got); verr != nil || v != 2 {
				t.Fatalf("store f%03d: version %d err %v, want 2", i, v, verr)
			}
		}
		if strays, _, err := r.svc.CheckDivergence(p); err != nil || strays != 0 {
			t.Fatalf("divergence after drain: strays=%d err=%v", strays, err)
		}
	})
}

// TestElasticLinearizableUnderChurn is the PR's property test: clerk
// operations racing AddShard/DrainShard never lose a write, never serve a
// torn block, and never go backwards on a key — checked across several
// seeds. One writer per key writes monotonically stamped blocks from one
// clerk while a second clerk reads the same keys; a driver joins and
// drains a shard throughout.
func TestElasticLinearizableUnderChurn(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			testElasticChurn(t, seed, false)
		})
		t.Run(fmt.Sprintf("seed%d_tokens", seed), func(t *testing.T) {
			testElasticChurn(t, seed, true)
		})
	}
}

func testElasticChurn(t *testing.T, seed int64, tokenCache bool) {
	var copts []ClerkOption
	if tokenCache {
		copts = append(copts, WithTokenCache())
	}
	r := newElasticRig(t, 2, 2, 2, seed, copts...)
	const files = 12
	var hs []fstore.Handle
	lastWritten := make([]uint64, files) // version durably deposited per key
	lastRead := make([]uint64, files)    // reader-side monotonicity floor

	r.env.Spawn("seedfiles", func(p *des.Proc) {
		for i := 0; i < files; i++ {
			h, err := r.svc.Store.WriteFile(fmt.Sprintf("/export/k%02d", i), stampBlock(0, fstore.BlockSize))
			if err != nil {
				t.Fatal(err)
			}
			if err := r.svc.WarmFile(h); err != nil {
				t.Fatal(err)
			}
			hs = append(hs, h)
		}
	})
	if err := r.env.RunUntil(des.Time(250 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	stop := false
	writer, reader := r.clerks[0], r.clerks[1]
	r.env.Spawn("writer", func(p *des.Proc) {
		for v := uint64(1); !stop; v++ {
			for i, h := range hs {
				if _, err := writer.Read(p, h, 0, fstore.BlockSize); err != nil {
					t.Errorf("writer ownership read k%02d v%d: %v", i, v, err)
					return
				}
				if err := writer.Write(p, h, 0, stampBlock(v, fstore.BlockSize)); err != nil {
					t.Errorf("writer k%02d v%d: %v", i, v, err)
					return
				}
				lastWritten[i] = v
				if stop {
					return
				}
			}
		}
	})
	r.env.Spawn("reader", func(p *des.Proc) {
		for !stop {
			for i, h := range hs {
				got, err := reader.Read(p, h, 0, fstore.BlockSize)
				if err != nil {
					t.Errorf("reader k%02d: %v", i, err)
					return
				}
				v, verr := checkStamp(got)
				if verr != nil {
					t.Errorf("reader k%02d: %v", i, verr)
					return
				}
				if v < lastRead[i] {
					t.Errorf("reader k%02d went backwards: %d after %d", i, v, lastRead[i])
					return
				}
				lastRead[i] = v
				if stop {
					return
				}
			}
			p.Sleep(50 * time.Microsecond)
		}
	})
	var churnErr error
	r.env.Spawn("churn", func(p *des.Proc) {
		p.Sleep(2 * time.Millisecond)
		for round := 0; round < 2 && churnErr == nil; round++ {
			slotA, err := r.svc.AddShard(p, r.mgrs[2])
			if err != nil {
				churnErr = fmt.Errorf("add A: %w", err)
				return
			}
			p.Sleep(3 * time.Millisecond)
			slotB, err := r.svc.AddShard(p, r.mgrs[3])
			if err != nil {
				churnErr = fmt.Errorf("add B: %w", err)
				return
			}
			p.Sleep(3 * time.Millisecond)
			if err := r.svc.DrainShard(p, slotA); err != nil {
				churnErr = fmt.Errorf("drain A: %w", err)
				return
			}
			p.Sleep(3 * time.Millisecond)
			if err := r.svc.DrainShard(p, slotB); err != nil {
				churnErr = fmt.Errorf("drain B: %w", err)
				return
			}
			p.Sleep(3 * time.Millisecond)
		}
		stop = true
		p.Sleep(2 * time.Millisecond) // writer/reader wind down

		// No write lost: sync everything and check the store holds each
		// key's last deposited version exactly.
		if _, err := r.svc.Sync(p); err != nil {
			churnErr = fmt.Errorf("final sync: %w", err)
			return
		}
		for i, h := range hs {
			got, err := r.svc.Store.Read(h, 0, fstore.BlockSize)
			if err != nil {
				churnErr = fmt.Errorf("store read k%02d: %w", i, err)
				return
			}
			v, verr := checkStamp(got)
			if verr != nil {
				churnErr = fmt.Errorf("store k%02d: %w", i, verr)
				return
			}
			if v != lastWritten[i] {
				churnErr = fmt.Errorf("store k%02d holds version %d, want last written %d (lost write)", i, v, lastWritten[i])
				return
			}
		}
		if strays, _, err := r.svc.CheckDivergence(p); err != nil || strays != 0 {
			churnErr = fmt.Errorf("divergence after churn: strays=%d err=%v", strays, err)
		}
	})
	if err := r.env.RunUntil(des.Time(5 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if churnErr != nil {
		t.Fatal(churnErr)
	}
	if !stop {
		t.Fatal("churn never completed")
	}
	if r.svc.Cutovers < 8 {
		t.Fatalf("only %d cutovers committed, want 8", r.svc.Cutovers)
	}
}

// TestRingRepublishOnCutover: once RegisterNames has run, every cutover
// must republish the membership blob under the same name (epoch
// supersede), so a client resolving afterwards reconstructs the NEW ring.
func TestRingRepublishOnCutover(t *testing.T) {
	env := des.NewEnv()
	cl := cluster.New(env, &model.Default, 5)
	var mgrs []*rmem.Manager
	for i := 0; i < 5; i++ {
		mgrs = append(mgrs, rmem.NewManager(cl.Nodes[i]))
	}
	var fail error
	env.Spawn("setup", func(p *des.Proc) {
		peers := []int{0, 1, 2, 3, 4}
		var names []*nameserver.Clerk
		for i := 0; i < 5; i++ {
			names = append(names, nameserver.New(mgrs[i], peers, nameserver.Config{}))
		}
		p.Sleep(time.Millisecond)
		svc := NewService(p, mgrs[:2], 5, dfs.Geometry{})
		if err := svc.RegisterNames(p, names); err != nil {
			fail = err
			return
		}
		_, e0, _, err := ResolveRing(p, mgrs[4], names[4], 0)
		if err != nil {
			fail = fmt.Errorf("resolve before join: %w", err)
			return
		}
		if _, err := svc.AddShard(p, mgrs[2]); err != nil {
			fail = fmt.Errorf("add: %w", err)
			return
		}
		ring, e1, nodes, err := ResolveRing(p, mgrs[4], names[4], 0)
		if err != nil {
			fail = fmt.Errorf("resolve after join: %w", err)
			return
		}
		if e1 <= e0 {
			fail = fmt.Errorf("epoch did not advance: %d then %d", e0, e1)
			return
		}
		if ring.Size() != 3 || len(nodes) != 3 {
			fail = fmt.Errorf("resolved %d members after join, want 3", ring.Size())
			return
		}
		for k := uint64(0); k < 500; k++ {
			if ring.Owner(k) != svc.Ring.Owner(k) {
				fail = fmt.Errorf("resolved ring diverges from service ring at key %d", k)
				return
			}
		}
	})
	if err := env.RunUntil(des.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatal(fail)
	}
}
