package shard

import (
	"bytes"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/consensus"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/model"
	"netmem/internal/nameserver"
	"netmem/internal/rmem"
)

// TestCutoverCommitsMembershipThroughLog wires the shard tier's control
// mutations through a real consensus control plane (ReplicateControl with
// a consensus.Client) and drives a live AddShard cutover: the ring
// publication must land as replicated registry records and each epoch
// bump as a membership decree that every control-plane replica applies in
// the same order. Any replica can then resolve the ring after the
// publishing machine is gone — the single-point-of-truth gap the log
// exists to close.
func TestCutoverCommitsMembershipThroughLog(t *testing.T) {
	// Nodes 0,1 founding shards; 2 the joiner; 3 the shard clerk (and the
	// consensus client's machine); 4,5,6 acceptors + replicas.
	const (
		nodes     = 7
		joiner    = 2
		clerkNode = 3
		firstRep  = 4
		replicas  = 3
	)
	env := des.NewEnv()
	env.Seed(1)
	cl := cluster.New(env, &model.Default, nodes)
	mgrs := make([]*rmem.Manager, nodes)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}

	var (
		svc  *Service
		cp   *consensus.ControlPlane
		errs []error
	)
	ns := make([]*nameserver.Clerk, nodes)
	env.Spawn("setup", func(p *des.Proc) {
		// Name clerks boot first on every node that exports after them:
		// their well-known registry segments must be each node's first
		// exports.
		peers := []int{0, 1, joiner, firstRep, firstRep + 1, firstRep + 2}
		for _, n := range peers {
			ns[n] = nameserver.New(mgrs[n], peers, nameserver.Config{})
		}
		p.Sleep(time.Millisecond)

		g := consensus.NewGroup(p,
			consensus.Config{Acceptors: replicas, Proposers: replicas + 1, Slots: 256},
			mgrs[firstRep:firstRep+replicas]...)
		cp = consensus.NewControlPlane(p, g, ns[firstRep:firstRep+replicas])
		if err := cp.Start(p); err != nil {
			errs = append(errs, err)
			return
		}

		svc = NewService(p, mgrs[:2], nodes, dfs.Geometry{})
		NewClerk(p, mgrs[clerkNode], svc, dfs.DX)
		svc.ReplicateControl(cp.NewClient(p, mgrs[clerkNode]))
		if err := svc.RegisterNames(p, ns); err != nil {
			errs = append(errs, err)
		}
	})
	if err := env.RunUntil(des.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	for _, err := range errs {
		t.Fatal(err)
	}

	memberships := func(r *consensus.Replica) []consensus.Command {
		var out []consensus.Command
		for _, cmd := range r.Log() {
			if cmd.Kind == consensus.KindMembership {
				out = append(out, cmd)
			}
		}
		return out
	}

	env.Spawn("test", func(p *des.Proc) {
		if _, err := svc.AddShard(p, mgrs[joiner]); err != nil {
			t.Errorf("AddShard: %v", err)
			return
		}
		_, epoch := svc.Membership().Current()
		wantBlob := svc.ringBlob()

		// Two membership decrees are in flight per replica: the boot
		// publication and the cutover's epoch bump. The lease stream keeps
		// appending behind them, so poll by kind, not by log length.
		deadline := p.Now().Add(des.Duration(500 * time.Millisecond))
		for _, r := range cp.Replicas() {
			for len(memberships(r)) < 2 {
				if p.Now() > deadline {
					t.Errorf("replica %d applied %d membership decree(s), want 2",
						r.Idx(), len(memberships(r)))
					return
				}
				p.Sleep(200 * time.Microsecond)
			}
		}

		var ref []consensus.Command
		for i, r := range cp.Replicas() {
			ms := memberships(r)
			if len(ms) != 2 {
				t.Errorf("replica %d: %d membership decrees, want 2", i, len(ms))
				continue
			}
			if ms[0].Epoch >= ms[1].Epoch {
				t.Errorf("replica %d: epochs not increasing: %d then %d", i, ms[0].Epoch, ms[1].Epoch)
			}
			if ms[1].Epoch != uint32(epoch) {
				t.Errorf("replica %d: last decree epoch %d, want committed epoch %d", i, ms[1].Epoch, epoch)
			}
			if !bytes.Equal(ms[1].Blob, wantBlob) {
				t.Errorf("replica %d: decree ring blob differs from the committed ring", i)
			}
			if i == 0 {
				ref = ms
			} else {
				for j := range ms {
					if ms[j].Epoch != ref[j].Epoch || !bytes.Equal(ms[j].Blob, ref[j].Blob) {
						t.Errorf("replica %d membership decree %d diverges from replica 0", i, j)
					}
				}
			}
			// The registry records rode the same log: this replica's own
			// clerk resolves the ring record without asking anyone.
			rec, err := r.Clerk().Lookup(p, ringName, -1, false)
			if err != nil {
				t.Errorf("replica %d: resolve %q: %v", i, ringName, err)
			} else if int(rec.Node) != mgrs[0].Node.ID {
				t.Errorf("replica %d: ring record on node %d, want %d", i, rec.Node, mgrs[0].Node.ID)
			}
		}
		if svc.ControlLogErrors != 0 {
			t.Errorf("control-log errors: %d, want 0", svc.ControlLogErrors)
		}
	})
	if err := env.RunUntil(des.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
}
