package shard

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/faults"
	"netmem/internal/fstore"
	"netmem/internal/model"
	"netmem/internal/rmem"
)

// TestReplicaLagLinearizable is the replica tier's freshness property
// test: one writer bumps a versioned hot block while reader clerks pull
// it through the chain members, all over a fabric that duplicates or
// reorders frames. Every read must observe a version at least as fresh
// as the newest write that *completed* before the read began — the
// recall poison covers the write-behind window, and the token
// watermark floor rejects any chain member still applying older frames.
// Torn blocks (version header disagreeing with the body pattern) fail
// immediately.
func TestReplicaLagLinearizable(t *testing.T) {
	for _, campName := range []string{"dup1", "reorder2"} {
		for _, seed := range []int64{1, 13} {
			t.Run(fmt.Sprintf("%s/seed%d", campName, seed), func(t *testing.T) {
				runReplicaLinear(t, campName, seed)
			})
		}
	}
}

// hotPayload builds the version-v block image: version in the first 8
// bytes, then a whole-block pattern derived from it. A read that mixes
// two versions cannot satisfy both the header and the pattern.
func hotPayload(v uint64) []byte {
	blk := make([]byte, fstore.BlockSize)
	binary.BigEndian.PutUint64(blk, v)
	for i := 8; i < len(blk); i++ {
		blk[i] = byte((v + uint64(i)) % 251)
	}
	return blk
}

func runReplicaLinear(t *testing.T, campName string, seed int64) {
	camp, ok := faults.Named(campName)
	if !ok {
		t.Fatalf("campaign %s not registered", campName)
	}
	// The 8ms write cadence leaves room between recalls for the readers to
	// re-acquire tokens and pull through the chain; a much hotter writer
	// degenerates the run into pure primary fallbacks (correct, but the
	// replica-path property would be vacuous).
	// Several readers and a generous post-storm tail keep the property
	// non-vacuous even on seeds where one reader's token exchange loses a
	// frame and parks against the acquisition timeout for a long stretch.
	const (
		readers  = 3
		replicas = 2
		writes   = 25
		tick     = 8 * time.Millisecond
	)
	env := des.NewEnv()
	env.Seed(seed)
	eng := faults.NewEngine(env, camp)
	nodes := 2 + readers + replicas // primary, writer, readers, members
	cl := cluster.New(env, &model.Default, nodes, cluster.WithFaultEngine(eng))
	mgrs := make([]*rmem.Manager, nodes)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}

	var svc *Service
	var writer *Clerk
	readerClerks := make([]*Clerk, readers)
	var hot fstore.Handle
	var setupErr error
	env.Spawn("replicalinear.setup", func(p *des.Proc) {
		svc = NewService(p, mgrs[:1], nodes, dfs.Geometry{}, dfs.WithReliableReplies())
		writer = NewClerk(p, mgrs[1], svc, dfs.DX,
			WithSubOptions(dfs.WithReliable(), dfs.WithFencing()), WithTokenCache())
		for i := range readerClerks {
			readerClerks[i] = NewClerk(p, mgrs[2+i], svc, dfs.DX,
				WithSubOptions(dfs.WithReliable(), dfs.WithFencing()), WithTokenCache())
		}
		if hot, setupErr = svc.Store.WriteFile("/export/hot.bin", hotPayload(1)); setupErr != nil {
			return
		}
		if setupErr = svc.WarmFile(hot); setupErr != nil {
			return
		}
		setupErr = svc.AttachReplicas(p, 0, mgrs[2+readers:], 100*time.Microsecond)
	})
	if err := env.RunUntil(des.Time(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if setupErr != nil {
		t.Fatal(setupErr)
	}

	// The write history: version v completed (token downgraded, so any
	// later read must observe >= v) at end[v]. Index 0 unused; version 1
	// is the warm image, complete before the clock started.
	end := make([]des.Time, writes+2)
	var lastDone uint64 = 1
	// Readers run well past the last write: the quiesced tail is where the
	// replica tier serves steadily (during the write storm most reads
	// legitimately fall back — the recall poison is doing its job).
	deadline := des.Time(10*time.Millisecond + time.Duration(writes+1)*tick).Add(250 * time.Millisecond)
	env.Spawn("replicalinear.writer", func(p *des.Proc) {
		for v := uint64(2); v <= writes+1; v++ {
			next := des.Time(10 * time.Millisecond).Add(time.Duration(v-1) * tick)
			if next > p.Now() {
				p.Sleep(time.Duration(next.Sub(p.Now())))
			}
			if err := writer.Write(p, hot, 0, hotPayload(v)); err != nil {
				t.Errorf("write v=%d: %v", v, err)
				return
			}
			end[v] = p.Now()
			lastDone = v
		}
	})
	readCounts := make([]int, readers)
	for i, rc := range readerClerks {
		i, rc := i, rc
		env.Spawn(fmt.Sprintf("replicalinear.reader%d", i), func(p *des.Proc) {
			for p.Now() < deadline {
				readCounts[i]++
				rc.DropTokenCache()
				t0 := p.Now()
				// Completed-write floor as of the moment this read begins.
				floor := uint64(1)
				for v := lastDone; v >= 2; v-- {
					if end[v] != 0 && end[v] < t0 {
						floor = v
						break
					}
				}
				data, err := rc.Read(p, hot, 0, fstore.BlockSize)
				if err != nil {
					t.Errorf("read at %v: %v", t0, err)
					return
				}
				got := binary.BigEndian.Uint64(data)
				if got < floor || got > writes+1 {
					t.Errorf("read starting at %v observed version %d, completed floor was %d", t0, got, floor)
					return
				}
				want := hotPayload(got)
				for j := 8; j < len(data); j++ {
					if data[j] != want[j] {
						t.Errorf("torn block: header says v=%d but byte %d is %#x, want %#x", got, j, data[j], want[j])
						return
					}
				}
			}
		})
	}
	if err := env.RunUntil(deadline.Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	var rr, fb int64
	for _, rc := range readerClerks {
		rr += rc.ReplicaReads
		fb += rc.ReplicaFallbacks
	}
	t.Logf("%s/seed%d: replica-reads=%d fallbacks=%d reads=%v injected=%v", campName, seed, rr, fb, readCounts, eng.Counts())
	if rr == 0 {
		t.Errorf("no reads served through the replica tier — the property was vacuous")
	}
	if len(eng.Counts()) == 0 {
		t.Errorf("campaign %s injected no faults", campName)
	}
}
