// Package shard partitions the DFS namespace across several file servers.
//
// The paper removes the server CPU from the data path; this package removes
// the *single server* from the architecture. A consistent-hash ring maps
// every file handle (and, for namespace operations, every directory handle)
// to one of N dfs.Server instances, each exporting its own cache areas and
// request channel over its own node. Brock et al. (PAPERS.md) observe that
// one-sided-access designs pay off precisely when data is partitioned across
// many servers and clients cache aggressively — the ShardClerk in this
// package does both: it routes each operation to the owning shard and layers
// a token-coherent client block cache on top (see clerk.go).
package shard

import (
	"sort"
)

// defaultVnodes is the virtual-node count per shard. 128 points per member
// keeps the per-shard key share within a few percent of 1/N and bounds the
// keys moved by a membership change close to the ideal K/N.
const defaultVnodes = 128

// Ring is a consistent-hash ring mapping 64-bit keys to shard ids. The
// point set is a pure function of the membership, so every clerk and every
// run derives the identical assignment — determinism the chaos golden tests
// and the nameserver registration both rely on.
type Ring struct {
	vnodes  int
	points  []ringPoint // sorted by (hash, shard)
	members []int       // sorted shard ids
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring over shards 0..n-1. vnodes <= 0 selects the
// default virtual-node count.
func NewRing(n, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &Ring{vnodes: vnodes}
	for s := 0; s < n; s++ {
		r.Add(s)
	}
	return r
}

// NewRingFrom builds a ring over an explicit member set — elastic slot ids
// need not be contiguous once shards have joined and left.
func NewRingFrom(members []int, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &Ring{vnodes: vnodes}
	for _, s := range members {
		r.Add(s)
	}
	return r
}

// Clone returns an independent copy — the basis for a pending membership
// during an elastic cutover.
func (r *Ring) Clone() *Ring {
	return &Ring{
		vnodes:  r.vnodes,
		points:  append([]ringPoint(nil), r.points...),
		members: append([]int(nil), r.members...),
	}
}

// fmix64 is the murmur3 finalizer: full avalanche over a 64-bit word.
// FNV-1a alone leaves the ring points clumpy for small structured inputs
// (sequential shard/replica ids), which skews arc ownership far from 1/N;
// the finalizer restores per-shard shares to within a few percent.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// pointHash derives the ring position of one (shard, replica) virtual node
// with FNV-1a over the two values plus a finalizer — stable across
// processes and runs.
func pointHash(shard, replica int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range [2]uint64{uint64(shard) + 1, uint64(replica) + 1} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	return fmix64(h)
}

// keyHash spreads a key (sequential inode-derived handles, typically) over
// the ring with the same FNV-1a mix and finalizer, so adjacent handles land
// on uncorrelated points.
func keyHash(key uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= (key >> (8 * i)) & 0xff
		h *= prime64
	}
	return fmix64(h)
}

// Add inserts a shard's virtual nodes. Adding an existing member is a no-op.
func (r *Ring) Add(shard int) {
	for _, m := range r.members {
		if m == shard {
			return
		}
	}
	r.members = append(r.members, shard)
	sort.Ints(r.members)
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{pointHash(shard, v), shard})
	}
	r.sortPoints()
}

// Remove deletes a shard's virtual nodes. Removing a non-member is a no-op.
func (r *Ring) Remove(shard int) {
	out := r.points[:0]
	for _, pt := range r.points {
		if pt.shard != shard {
			out = append(out, pt)
		}
	}
	r.points = out
	for i, m := range r.members {
		if m == shard {
			r.members = append(r.members[:i], r.members[i+1:]...)
			break
		}
	}
}

func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
}

// Owner maps a key to its shard: the first virtual node at or clockwise
// from the key's hash. Panics on an empty ring (no members).
func (r *Ring) Owner(key uint64) int {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Members returns the shard ids on the ring, ascending.
func (r *Ring) Members() []int {
	return append([]int(nil), r.members...)
}

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Contains reports whether shard is a member.
func (r *Ring) Contains(shard int) bool {
	for _, m := range r.members {
		if m == shard {
			return true
		}
	}
	return false
}
