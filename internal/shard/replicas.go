package shard

import (
	"encoding/binary"
	"fmt"
	"time"

	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/nameserver"
	"netmem/internal/recovery"
	"netmem/internal/rmem"
)

// Per-shard replica sets. AttachReplicas hangs a k-member chain under one
// shard: the primary pushes changed buckets down the chain (dfs.AttachChain)
// and any clerk holding a read token may READ any member's frames directly —
// the replica read tier that scales hot-block goodput with k while the
// primary's CPU stays flat (ROADMAP open item 2, the Figure-3 argument
// extended to replicated reads). Failover (ArmChainFailover) promotes the
// most-advanced member by comparing one-sided applied-watermark reads, and
// a mid-chain crash splices the chain and publishes the new membership as a
// control-plane decree when a log is attached.

// chainSpec tracks one slot's replica chain.
type chainSpec struct {
	epoch    uint32
	members  []*dfs.ChainReplica
	mgrs     []*rmem.Manager
	interval des.Duration
}

// AttachReplicas builds slot's replica chain, one member per manager (each
// on its own node), wires it under the shard's primary, and teaches every
// token-caching clerk to read from it. interval paces both the primary's
// push daemon and the members' forwarders.
func (s *Service) AttachReplicas(p *des.Proc, slot int, mgrs []*rmem.Manager, interval des.Duration) error {
	if slot < 0 || slot >= len(s.Shards) || s.Shards[slot] == nil {
		return fmt.Errorf("shard: attach replicas to vacant slot %d", slot)
	}
	if len(mgrs) == 0 {
		return fmt.Errorf("shard: attach replicas: no members")
	}
	for len(s.chains) <= slot {
		s.chains = append(s.chains, nil)
	}
	spec := &chainSpec{epoch: 1, mgrs: append([]*rmem.Manager(nil), mgrs...), interval: interval}
	for _, m := range mgrs {
		spec.members = append(spec.members, dfs.NewChainReplica(p, m, s.Geo))
	}
	s.chains[slot] = spec
	if err := s.Shards[slot].AttachChain(p, spec.epoch, spec.members, interval); err != nil {
		return err
	}
	s.hookSplices(slot, spec)
	for _, c := range s.clerks {
		c.wireReplicas(p, slot)
	}
	if s.names != nil {
		// The blob now carries a chain section; re-publish so late joiners
		// can ResolveRingChains.
		return s.RegisterNames(p, s.names)
	}
	return nil
}

// chainOf returns slot's chain spec, nil when none is attached.
func (s *Service) chainOf(slot int) *chainSpec {
	if slot < 0 || slot >= len(s.chains) {
		return nil
	}
	return s.chains[slot]
}

// Replicas returns slot's current chain members (promotion and splices
// shrink it); nil when the slot has no chain.
func (s *Service) Replicas(slot int) []*dfs.ChainReplica {
	if slot < 0 || slot >= len(s.chains) || s.chains[slot] == nil {
		return nil
	}
	return append([]*dfs.ChainReplica(nil), s.chains[slot].members...)
}

// hookSplices re-arms the mid-chain crash hook on every member.
func (s *Service) hookSplices(slot int, spec *chainSpec) {
	for _, cr := range spec.members {
		cr.OnSplice(func(p *des.Proc) { s.spliceChain(p, slot) })
	}
}

// spliceChain drops dead members and re-chains the survivors under a new
// replica-set epoch — the mid-chain crash path. The new membership rides a
// control-plane decree when a log is attached: replicas of the control
// plane agree on which chain members are live, exactly as they agree on
// ring epochs.
func (s *Service) spliceChain(p *des.Proc, slot int) {
	spec := s.chains[slot]
	if spec == nil || s.Shards[slot] == nil {
		return
	}
	var live []*dfs.ChainReplica
	for _, cr := range spec.members {
		if !cr.Node().Failed() {
			live = append(live, cr)
		}
	}
	if len(live) == len(spec.members) {
		return // transient push failure, not a death: keep the chain
	}
	spec.members = live
	spec.epoch++
	s.ChainSplices++
	if tr := s.ringHost.Node.Env.Tracer(); tr != nil {
		tr.Count("shard.chain.splices", 1)
	}
	if len(live) > 0 {
		if err := s.Shards[slot].AttachChain(p, spec.epoch, live, spec.interval); err != nil {
			s.chains[slot] = nil
		}
		s.hookSplices(slot, spec)
	} else {
		s.chains[slot] = nil
	}
	for _, c := range s.clerks {
		c.wireReplicas(p, slot)
	}
	if s.clog != nil {
		_, epoch := s.mb.Current()
		if err := s.clog.ProposeMembership(p, uint32(epoch), s.ringBlob()); err != nil {
			s.ControlLogErrors++
		}
	}
}

// ArmChainFailover wires slot i's recovery path over its replica chain
// instead of a dedicated standby: on heartbeat loss the coordinator reads
// every member's applied watermark with bounded one-sided READs, promotes
// the most advanced one (fenced takeover of its grafted write-behind
// state), re-chains the survivors under it, and publishes the slot move so
// clerks rebind. Call after AttachReplicas.
func (s *Service) ArmChainFailover(p *des.Proc, i int, watcher *rmem.Manager, hbInterval des.Duration) (*recovery.Coordinator, error) {
	if i < 0 || i >= len(s.chains) || s.chains[i] == nil {
		return nil, fmt.Errorf("shard: arm chain failover: slot %d has no chain", i)
	}
	hb := s.mgrs[i].Export(p, 8)
	hb.SetDefaultRights(rmem.RightRead)
	rmem.StartHeartbeat(s.mgrs[i], hb, 0, hbInterval)
	hbImp := watcher.Import(p, s.mgrs[i].Node.ID, hb.ID(), hb.Gen(), 8)

	rec := recovery.New(watcher, s.mgrs[i].Node.ID, recovery.Config{})
	rec.OnFailover("chain.promote", func(p *des.Proc) error {
		return s.promoteChain(p, i, watcher)
	})
	rec.OnFailover("membership.rebind", func(p *des.Proc) error {
		s.mb.publishSlotMove(p, i, s.Shards[i].Node().ID)
		return nil
	})
	rec.Watch(hbImp, 0)
	s.coords[i] = rec
	return rec, nil
}

// promoteChain elects and promotes the most-advanced live chain member of
// slot. Advancement is the applied watermark each forwarder maintains in
// its segment header — read one-sidedly, so a member is consulted without
// ever scheduling its CPU; an unreadable member is simply not a candidate.
// Ties break toward the head of the chain (deterministic).
func (s *Service) promoteChain(p *des.Proc, slot int, watcher *rmem.Manager) error {
	spec := s.chains[slot]
	if spec == nil || len(spec.members) == 0 {
		return fmt.Errorf("shard: promote: slot %d has no chain", slot)
	}
	best, bestApplied := -1, uint64(0)
	scratch := watcher.Export(p, 8)
	// A retransmitting probe needs room for its whole retry schedule —
	// the same deadline argument as Clerk.replicaBlock: a tighter bound
	// converts one clobbered chunk into a spurious timeout, and a
	// spuriously skipped member here drops the acknowledged write-behind
	// it held.
	pp := watcher.Node.P
	probeTO := des.Duration(pp.RetryLimit+1) * pp.RetryBackoffMax
	for idx, cr := range spec.members {
		if cr.Node().Failed() {
			continue
		}
		id, gen, size := cr.ChainSeg()
		imp := watcher.Import(p, cr.Node().ID, id, gen, size)
		imp.SetReliable(true)
		if err := imp.Read(p, dfs.ChainAppliedOff, 8, scratch, 0, probeTO); err != nil {
			continue
		}
		applied := uint64(scratch.ReadWord(p, 0))<<32 | uint64(scratch.ReadWord(p, 4))
		if best < 0 || applied > bestApplied {
			best, bestApplied = idx, applied
		}
	}
	if best < 0 {
		return fmt.Errorf("shard: promote: no reachable chain member for slot %d", slot)
	}
	srv, err := spec.members[best].TakeOver(p, s.Store, s.slotNodes, s.opts...)
	if err != nil {
		return err
	}
	s.Shards[slot] = srv
	s.PromotedNode = spec.members[best].Node().ID
	s.PromotedApplied = bestApplied
	if tr := s.ringHost.Node.Env.Tracer(); tr != nil {
		tr.Count("shard.chain.promotions", 1)
	}

	// Re-chain the survivors under the new head. Their frames hold
	// old-epoch versions below every post-promotion watermark, so clerks
	// fall back to the new primary until its pushes re-fill the chain —
	// correctness over availability during the handoff.
	var rest []*dfs.ChainReplica
	for idx, cr := range spec.members {
		if idx != best && !cr.Node().Failed() {
			rest = append(rest, cr)
		}
	}
	spec.members = rest
	spec.epoch++
	if len(rest) > 0 {
		if aerr := srv.AttachChain(p, spec.epoch, rest, spec.interval); aerr != nil {
			s.chains[slot] = nil
		} else {
			s.hookSplices(slot, spec)
		}
	} else {
		s.chains[slot] = nil
	}
	// Clerk re-wiring rides the membership.rebind step: Rebind re-imports
	// the chain-state from the promoted primary.
	return nil
}

// ---------------------------------------------------------------------------
// Ring-blob chain section. The base blob (ringBlob) is position-indexed,
// so readers of the old layout ignore the appended section; chain-aware
// clerks parse it with ResolveRingChains.

// chainBlobSection packs every attached chain: count, then per chain the
// slot, member count, and member node ids in chain order.
func (s *Service) chainBlobSection() []byte {
	var specs []int
	for slot, spec := range s.chains {
		if spec != nil && len(spec.members) > 0 {
			specs = append(specs, slot)
		}
	}
	blob := binary.BigEndian.AppendUint32(nil, uint32(len(specs)))
	for _, slot := range specs {
		spec := s.chains[slot]
		blob = binary.BigEndian.AppendUint32(blob, uint32(slot))
		blob = binary.BigEndian.AppendUint32(blob, uint32(len(spec.members)))
		for _, cr := range spec.members {
			blob = binary.BigEndian.AppendUint32(blob, uint32(cr.Node().ID))
		}
	}
	return blob
}

// ResolveRingChains resolves the published membership blob like
// ResolveRing and additionally parses the chain section: the slot →
// member-node-ids map a chain-aware clerk needs to import replica frames
// by name alone. A blob without a chain section yields an empty map.
func ResolveRingChains(p *des.Proc, m *rmem.Manager, ns *nameserver.Clerk, hint int) (map[int][]int, error) {
	var imp *rmem.Import
	err := awaitNS(p, nsBootDeadline, func() error {
		var ierr error
		imp, ierr = ns.Import(p, ringName, hint, true)
		return ierr
	})
	if err != nil {
		return nil, err
	}
	scratch := m.Export(p, imp.Size())
	if err := imp.Read(p, 0, imp.Size(), scratch, 0, time.Second); err != nil {
		return nil, err
	}
	buf := scratch.Bytes()
	if len(buf) < 12 {
		return nil, fmt.Errorf("shard: chain resolve: short blob (%d bytes)", len(buf))
	}
	n := int(binary.BigEndian.Uint32(buf[4:]))
	off := 12 + 8*n
	chains := make(map[int][]int)
	if len(buf) < off+4 {
		return chains, nil // pre-chain layout
	}
	count := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	for i := 0; i < count; i++ {
		if len(buf) < off+8 {
			return nil, fmt.Errorf("shard: chain resolve: truncated chain %d", i)
		}
		slot := int(binary.BigEndian.Uint32(buf[off:]))
		k := int(binary.BigEndian.Uint32(buf[off+4:]))
		off += 8
		if len(buf) < off+4*k {
			return nil, fmt.Errorf("shard: chain resolve: truncated members of slot %d", slot)
		}
		nodes := make([]int, k)
		for j := 0; j < k; j++ {
			nodes[j] = int(binary.BigEndian.Uint32(buf[off+4*j:]))
		}
		off += 4 * k
		chains[slot] = nodes
	}
	return chains, nil
}
