package shard

import "testing"

// TestReplicaRereadProbe is the replica tier's zero-CPU wall: a re-read
// served by chain members must cost the primary nothing — no client,
// control, or procedure CPU, and no one-sided operations on any of its
// exported segments.
func TestReplicaRereadProbe(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		res, err := ReplicaRereadProbe(k)
		if err != nil {
			t.Fatalf("replicas=%d: %v (reads=%d cpu=%v ops=%d)",
				k, err, res.ReplicaReads, res.PrimaryCPU, res.PrimaryRemoteOps)
		}
		if res.ReplicaReads < 2 {
			t.Fatalf("replicas=%d: expected >=2 replica block reads, got %d", k, res.ReplicaReads)
		}
	}
}
