package shard

import (
	"bytes"
	"fmt"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/model"
	"netmem/internal/rmem"
)

// TokenProbeResult reports what a token-cached re-read cost.
type TokenProbeResult struct {
	Shards      int
	Bytes       int           // bytes re-read
	TokenHits   int64         // blocks served from the client's cache
	ServerCPU   time.Duration // CPU charged on any shard node during the re-read
	RemoteReads int64         // remote reads issued during the re-read
}

// TokenRereadProbe measures the token-coherent cache's core claim on a
// fresh sharded rig: after a first read acquires read tokens and caches the
// blocks, a re-read of the same bytes must complete byte-correct with zero
// server CPU and zero remote reads. Returns an error if the bytes are
// wrong or the claim does not hold.
func TokenRereadProbe(shards int) (TokenProbeResult, error) {
	const size = 12 * 1024
	res := TokenProbeResult{Shards: shards, Bytes: size}
	env := des.NewEnv()
	cl := cluster.New(env, &model.Default, shards+1)
	mgrs := make([]*rmem.Manager, shards+1)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}
	var probeErr error
	env.Spawn("probe", func(p *des.Proc) {
		svc := NewService(p, mgrs[:shards], shards+1, dfs.Geometry{})
		c := NewClerk(p, mgrs[shards], svc, dfs.DX, WithTokenCache())
		want := make([]byte, size)
		for i := range want {
			want[i] = byte(i*11 + 3)
		}
		h, err := svc.Store.WriteFile("/export/probe.bin", want)
		if err != nil {
			probeErr = err
			return
		}
		if err := svc.WarmFile(h); err != nil {
			probeErr = err
			return
		}
		if _, err := c.Read(p, h, 0, size); err != nil {
			probeErr = fmt.Errorf("first read: %w", err)
			return
		}
		c.FlushLocal()
		for i := 0; i < shards; i++ {
			cl.Nodes[i].ResetCPUAcct()
		}
		var beforeReads int64
		for i := 0; i < shards; i++ {
			beforeReads += c.Sub(i).RemoteReads
		}
		got, err := c.Read(p, h, 0, size)
		if err != nil {
			probeErr = fmt.Errorf("re-read: %w", err)
			return
		}
		if !bytes.Equal(got, want) {
			probeErr = fmt.Errorf("token-cached re-read returned wrong bytes")
			return
		}
		res.TokenHits = c.TokenHits
		for i := 0; i < shards; i++ {
			for _, d := range cl.Nodes[i].CPUAcct {
				res.ServerCPU += time.Duration(d)
			}
			res.RemoteReads += c.Sub(i).RemoteReads
		}
		res.RemoteReads -= beforeReads
	})
	if err := env.RunUntil(des.Time(10 * time.Second)); err != nil {
		return res, err
	}
	if probeErr != nil {
		return res, probeErr
	}
	if res.ServerCPU != 0 || res.RemoteReads != 0 {
		return res, fmt.Errorf("token-cached re-read was not free: server CPU %v, %d remote reads",
			res.ServerCPU, res.RemoteReads)
	}
	if res.TokenHits == 0 {
		return res, fmt.Errorf("re-read did not hit the token cache")
	}
	return res, nil
}

// ReplicaProbeResult reports what a replica-served re-read cost the primary.
type ReplicaProbeResult struct {
	Replicas         int
	Bytes            int           // bytes re-read
	ReplicaReads     int64         // block fetches served by chain members
	PrimaryCPU       time.Duration // proc+control+client CPU on the primary
	PrimaryRemoteOps int64         // one-sided ops landed on the primary
}

// ReplicaRereadProbe extends TokenRereadProbe to the replica tier's core
// claim: a read-token holder whose block copies are dropped refetches the
// bytes from chain members with zero primary CPU (client, control, and
// procedure categories — the PR 7 acceptor assertion applied to the
// primary) and zero one-sided operations landed on any primary segment.
// The primary's involvement in a replica read is *nothing at all*.
func ReplicaRereadProbe(replicas int) (ReplicaProbeResult, error) {
	const size = 12 * 1024
	res := ReplicaProbeResult{Replicas: replicas, Bytes: size}
	env := des.NewEnv()
	nodes := 2 + replicas // primary, clerk, chain members
	cl := cluster.New(env, &model.Default, nodes)
	mgrs := make([]*rmem.Manager, nodes)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}
	var probeErr error
	var probeDone bool
	env.Spawn("probe", func(p *des.Proc) {
		defer func() { probeDone = true }()
		svc := NewService(p, mgrs[:1], nodes, dfs.Geometry{})
		c := NewClerk(p, mgrs[1], svc, dfs.DX, WithTokenCache())
		if err := svc.AttachReplicas(p, 0, mgrs[2:], 100*time.Microsecond); err != nil {
			probeErr = err
			return
		}
		want := make([]byte, size)
		for i := range want {
			want[i] = byte(i*7 + 5)
		}
		h, err := svc.Store.WriteFile("/export/probe.bin", want)
		if err != nil {
			probeErr = err
			return
		}
		if err := svc.WarmFile(h); err != nil {
			probeErr = err
			return
		}
		// Let the chain pushes land the warm buckets on every member: deep
		// members catch up one forwarding hop per interval, so poll until
		// the whole chain agrees on a nonzero applied watermark.
		for tries := 0; tries < 200; tries++ {
			p.Sleep(des.Duration(time.Millisecond))
			lo, hi := ^uint64(0), uint64(0)
			for _, cr := range svc.Replicas(0) {
				if a := cr.Applied(); a < lo {
					lo = a
				}
				if a := cr.Applied(); a > hi {
					hi = a
				}
			}
			if lo == hi && lo > 0 {
				break
			}
		}
		if _, err := c.Read(p, h, 0, size); err != nil {
			probeErr = fmt.Errorf("first read: %w", err)
			return
		}
		// Keep the tokens (and their watermarks), drop every cached block
		// copy: the re-read must move bytes — but only replica bytes.
		c.FlushLocal()
		c.DropTokenCache()
		cl.Nodes[0].ResetCPUAcct()
		beforeOps := svc.Shards[0].RemoteOps()
		beforeReplica := c.ReplicaReads
		got, err := c.Read(p, h, 0, size)
		if err != nil {
			probeErr = fmt.Errorf("re-read: %w", err)
			return
		}
		if !bytes.Equal(got, want) {
			probeErr = fmt.Errorf("replica re-read returned wrong bytes")
			return
		}
		res.ReplicaReads = c.ReplicaReads - beforeReplica
		res.PrimaryRemoteOps = svc.Shards[0].RemoteOps() - beforeOps
		acct := cl.Nodes[0].CPUAcct
		res.PrimaryCPU = time.Duration(acct[cluster.CatProc] + acct[cluster.CatControl] + acct[cluster.CatClient])
	})
	// All assertions are read inside the proc; the chain daemons never
	// idle, so stop as soon as it finishes rather than draining a fixed
	// horizon of empty wakeups.
	if err := runSteps(env, 10*time.Millisecond, 10*time.Second, func() bool { return probeDone }); err != nil {
		return res, err
	}
	if probeErr != nil {
		return res, probeErr
	}
	if res.PrimaryCPU != 0 || res.PrimaryRemoteOps != 0 {
		return res, fmt.Errorf("replica re-read touched the primary: CPU %v, %d remote ops",
			res.PrimaryCPU, res.PrimaryRemoteOps)
	}
	if res.ReplicaReads == 0 {
		return res, fmt.Errorf("re-read was not served by the replica tier")
	}
	return res, nil
}
