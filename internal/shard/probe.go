package shard

import (
	"bytes"
	"fmt"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/model"
	"netmem/internal/rmem"
)

// TokenProbeResult reports what a token-cached re-read cost.
type TokenProbeResult struct {
	Shards      int
	Bytes       int           // bytes re-read
	TokenHits   int64         // blocks served from the client's cache
	ServerCPU   time.Duration // CPU charged on any shard node during the re-read
	RemoteReads int64         // remote reads issued during the re-read
}

// TokenRereadProbe measures the token-coherent cache's core claim on a
// fresh sharded rig: after a first read acquires read tokens and caches the
// blocks, a re-read of the same bytes must complete byte-correct with zero
// server CPU and zero remote reads. Returns an error if the bytes are
// wrong or the claim does not hold.
func TokenRereadProbe(shards int) (TokenProbeResult, error) {
	const size = 12 * 1024
	res := TokenProbeResult{Shards: shards, Bytes: size}
	env := des.NewEnv()
	cl := cluster.New(env, &model.Default, shards+1)
	mgrs := make([]*rmem.Manager, shards+1)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}
	var probeErr error
	env.Spawn("probe", func(p *des.Proc) {
		svc := NewService(p, mgrs[:shards], shards+1, dfs.Geometry{})
		c := NewClerk(p, mgrs[shards], svc, dfs.DX, WithTokenCache())
		want := make([]byte, size)
		for i := range want {
			want[i] = byte(i*11 + 3)
		}
		h, err := svc.Store.WriteFile("/export/probe.bin", want)
		if err != nil {
			probeErr = err
			return
		}
		if err := svc.WarmFile(h); err != nil {
			probeErr = err
			return
		}
		if _, err := c.Read(p, h, 0, size); err != nil {
			probeErr = fmt.Errorf("first read: %w", err)
			return
		}
		c.FlushLocal()
		for i := 0; i < shards; i++ {
			cl.Nodes[i].ResetCPUAcct()
		}
		var beforeReads int64
		for i := 0; i < shards; i++ {
			beforeReads += c.Sub(i).RemoteReads
		}
		got, err := c.Read(p, h, 0, size)
		if err != nil {
			probeErr = fmt.Errorf("re-read: %w", err)
			return
		}
		if !bytes.Equal(got, want) {
			probeErr = fmt.Errorf("token-cached re-read returned wrong bytes")
			return
		}
		res.TokenHits = c.TokenHits
		for i := 0; i < shards; i++ {
			for _, d := range cl.Nodes[i].CPUAcct {
				res.ServerCPU += time.Duration(d)
			}
			res.RemoteReads += c.Sub(i).RemoteReads
		}
		res.RemoteReads -= beforeReads
	})
	if err := env.RunUntil(des.Time(10 * time.Second)); err != nil {
		return res, err
	}
	if probeErr != nil {
		return res, probeErr
	}
	if res.ServerCPU != 0 || res.RemoteReads != 0 {
		return res, fmt.Errorf("token-cached re-read was not free: server CPU %v, %d remote reads",
			res.ServerCPU, res.RemoteReads)
	}
	if res.TokenHits == 0 {
		return res, fmt.Errorf("re-read did not hit the token cache")
	}
	return res, nil
}
