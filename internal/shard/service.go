package shard

import (
	"encoding/binary"
	"fmt"
	"time"

	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/fstore"
	"netmem/internal/nameserver"
	"netmem/internal/recovery"
	"netmem/internal/rmem"
)

// Service is the sharded file tier: N dfs.Server instances, one per
// manager, all over one shared file store (the Calypso shared-disk shape
// §5.1 sketches — any server can execute any operation correctly; the ring
// decides which one *does*, partitioning cache residency and CPU load).
// Each shard exports its own cache areas, token area, and request channel
// on its own node.
type Service struct {
	Ring   *Ring
	Store  *fstore.Store
	Geo    dfs.Geometry
	Shards []*dfs.Server

	mgrs      []*rmem.Manager
	slotNodes int
	opts      []dfs.ServerOption

	standbys []*dfs.Standby
	coords   []*recovery.Coordinator
	ringSeg  *rmem.Segment
}

// NewService builds one shard server per manager (each on its own node)
// over a single fresh shared store. slotNodes bounds the cluster size for
// request-channel slot allocation; opts apply to every shard server.
func NewService(p *des.Proc, mgrs []*rmem.Manager, slotNodes int, geo dfs.Geometry, opts ...dfs.ServerOption) *Service {
	if len(mgrs) == 0 {
		panic("shard: NewService needs at least one manager")
	}
	env := mgrs[0].Node.Env
	store := fstore.New(func() int64 { return int64(env.Now()) })
	s := &Service{
		Ring:      NewRing(len(mgrs), 0),
		Store:     store,
		mgrs:      mgrs,
		slotNodes: slotNodes,
		opts:      opts,
		standbys:  make([]*dfs.Standby, len(mgrs)),
		coords:    make([]*recovery.Coordinator, len(mgrs)),
	}
	for _, m := range mgrs {
		srv := dfs.NewServer(p, m, slotNodes, geo, append([]dfs.ServerOption{dfs.WithStore(store)}, opts...)...)
		s.Shards = append(s.Shards, srv)
	}
	s.Geo = s.Shards[0].Geo
	return s
}

// Owner maps a handle to its owning shard index.
func (s *Service) Owner(h fstore.Handle) int { return s.Ring.Owner(h.U64()) }

// NodeOf returns the node id currently serving shard i (the standby's node
// after a failover).
func (s *Service) NodeOf(i int) int { return s.Shards[i].Node().ID }

// Size returns the shard count.
func (s *Service) Size() int { return len(s.Shards) }

// WarmFile warms h's records into the owning shard's cache areas only —
// each shard's cache holds the subset of the namespace the ring assigns it.
func (s *Service) WarmFile(h fstore.Handle) error {
	return s.Shards[s.Owner(h)].WarmFile(h)
}

// WarmDir warms a directory into its owning shard.
func (s *Service) WarmDir(h fstore.Handle) error {
	return s.Shards[s.Owner(h)].WarmDir(h)
}

// Sync applies write-behind state on every shard; returns total blocks.
func (s *Service) Sync(p *des.Proc) (int, error) {
	total := 0
	for _, srv := range s.Shards {
		n, err := srv.Sync(p)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ringName is the registered name of the membership blob; shardName(i)
// names shard i's request channel.
const ringName = "dfs.ring"

func shardName(i int) string { return fmt.Sprintf("dfs.shard%d.req", i) }

// RegisterNames publishes the sharded tier in the name service: one record
// per shard request channel ("dfs.shard<i>.req") plus a membership blob
// ("dfs.ring") on shard 0's node carrying the vnode count and the node id
// of every shard, so any client can reconstruct the identical ring and
// import the channels by name alone. names is indexed by node id.
func (s *Service) RegisterNames(p *des.Proc, names []*nameserver.Clerk) error {
	blob := make([]byte, 8+4*len(s.Shards))
	binary.BigEndian.PutUint32(blob[0:], uint32(s.Ring.vnodes))
	binary.BigEndian.PutUint32(blob[4:], uint32(len(s.Shards)))
	for i := range s.Shards {
		binary.BigEndian.PutUint32(blob[8+4*i:], uint32(s.NodeOf(i)))
	}
	m0 := s.mgrs[0]
	s.ringSeg = m0.Export(p, len(blob))
	s.ringSeg.SetDefaultRights(rmem.RightRead)
	copy(s.ringSeg.Bytes(), blob)
	if err := names[m0.Node.ID].Register(p, ringName, s.ringSeg); err != nil {
		return err
	}
	for i, m := range s.mgrs {
		id, _, _ := s.Shards[i].ReqChannel()
		seg, ok := m.Lookup(id)
		if !ok {
			return fmt.Errorf("shard: shard %d request segment %d not found", i, id)
		}
		if err := names[m.Node.ID].Register(p, shardName(i), seg); err != nil {
			return err
		}
	}
	return nil
}

// ResolveRing reads the registered membership blob through ns (with a
// scratch segment on m's node for the remote read) and returns the
// reconstructed ring plus the per-shard node ids — what a clerk that was
// handed only the name service needs to find the tier. hint names the
// machine whose registry to probe when the name is not cached locally
// (§4.2's user-supplied hint; shard 0's node registers the blob).
func ResolveRing(p *des.Proc, m *rmem.Manager, ns *nameserver.Clerk, hint int) (*Ring, []int, error) {
	imp, err := ns.Import(p, ringName, hint, false)
	if err != nil {
		return nil, nil, err
	}
	scratch := m.Export(p, imp.Size())
	if err := imp.Read(p, 0, imp.Size(), scratch, 0, time.Second); err != nil {
		return nil, nil, err
	}
	buf := scratch.Bytes()
	vnodes := int(binary.BigEndian.Uint32(buf[0:]))
	n := int(binary.BigEndian.Uint32(buf[4:]))
	nodes := make([]int, n)
	for i := 0; i < n; i++ {
		nodes[i] = int(binary.BigEndian.Uint32(buf[8+4*i:]))
	}
	return NewRing(n, vnodes), nodes, nil
}

// ArmFailover wires shard i's recovery path, reusing the PR 3 machinery
// verbatim: a hot standby on sbm's node mirroring the shard's write-behind
// state, a heartbeat exported by the shard for the watcher's coordinator,
// and two failover steps — fenced standby takeover, then the caller's
// rebind hook (typically Clerk.Rebind). Returns the armed coordinator.
func (s *Service) ArmFailover(p *des.Proc, i int, sbm, watcher *rmem.Manager,
	hbInterval des.Duration, onRebind func(p *des.Proc, srv *dfs.Server) error) *recovery.Coordinator {

	primary := s.Shards[i]
	s.standbys[i] = dfs.NewStandby(p, sbm, primary.Geo)
	primary.AttachStandby(p, s.standbys[i], hbInterval)

	hb := s.mgrs[i].Export(p, 8)
	hb.SetDefaultRights(rmem.RightRead)
	rmem.StartHeartbeat(s.mgrs[i], hb, 0, hbInterval)
	hbImp := watcher.Import(p, s.mgrs[i].Node.ID, hb.ID(), hb.Gen(), 8)

	rec := recovery.New(watcher, s.mgrs[i].Node.ID, recovery.Config{})
	rec.OnFailover("standby.takeover", func(p *des.Proc) error {
		srv, err := s.standbys[i].TakeOver(p, s.Store, s.slotNodes, s.opts...)
		if err != nil {
			return err
		}
		s.Shards[i] = srv
		return nil
	})
	rec.OnFailover("clerk.rebind", func(p *des.Proc) error {
		if onRebind == nil {
			return nil
		}
		return onRebind(p, s.Shards[i])
	})
	rec.Watch(hbImp, 0)
	s.coords[i] = rec
	return rec
}

// Coordinators returns the per-shard recovery coordinators (nil entries for
// shards without ArmFailover).
func (s *Service) Coordinators() []*recovery.Coordinator {
	return append([]*recovery.Coordinator(nil), s.coords...)
}
