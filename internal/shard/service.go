package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/fstore"
	"netmem/internal/nameserver"
	"netmem/internal/recovery"
	"netmem/internal/rmem"
)

// ControlLog replicates control-plane mutations through an agreed log
// (consensus.Client satisfies it): ring publications become replicated
// registry records and membership epoch bumps become decrees every
// control-plane replica applies. The interface lives here so the shard
// tier does not import the consensus package directly.
type ControlLog interface {
	RegisterName(p *des.Proc, rec nameserver.Record) error
	ProposeMembership(p *des.Proc, epoch uint32, blob []byte) error
}

// Service is the sharded file tier: dfs.Server instances, one per live
// slot, all over one shared file store (the Calypso shared-disk shape §5.1
// sketches — any server can execute any operation correctly; the ring
// decides which one *does*, partitioning cache residency and CPU load).
// Each shard exports its own cache areas, token area, and request channel
// on its own node.
//
// The tier is elastic: AddShard and DrainShard change the ring under live
// traffic through an epoch-versioned Membership that every clerk
// subscribes to, with the donor's write-behind state migrated to the new
// owner by plain one-sided rmem WRITEs (see cutover).
type Service struct {
	Ring   *Ring // committed ring, kept in sync with Membership
	Store  *fstore.Store
	Geo    dfs.Geometry
	Shards []*dfs.Server // slot-indexed; nil marks a vacant (drained) slot

	mb        *Membership
	mgrs      []*rmem.Manager
	slotNodes int
	opts      []dfs.ServerOption

	clerks   []*Clerk
	standbys []*dfs.Standby
	coords   []*recovery.Coordinator
	chains   []*chainSpec // slot-indexed replica chains (AttachReplicas)

	names    []*nameserver.Clerk
	ringHost *rmem.Manager
	ringSeg  *rmem.Segment
	clog     ControlLog

	// Elasticity stats.
	Cutovers        int64 // committed membership changes
	MigratedBuckets int64 // dirty buckets pushed donor→owner (one-sided)
	EvictedBuckets  int64 // clean moved residents evicted (re-warm from store)

	// ControlLogErrors counts control-plane proposals that failed; the
	// data plane keeps running on the locally published state (the control
	// plane must never be able to take the file tier down with it).
	ControlLogErrors int64

	// Replica-chain stats.
	ChainSplices    int64  // mid-chain crashes spliced around
	PromotedNode    int    // node promoted by the last chain failover (-1: none)
	PromotedApplied uint64 // its applied watermark at promotion
}

// NewService builds one shard server per manager (each on its own node)
// over a single fresh shared store. slotNodes bounds the cluster size for
// request-channel slot allocation; opts apply to every shard server.
func NewService(p *des.Proc, mgrs []*rmem.Manager, slotNodes int, geo dfs.Geometry, opts ...dfs.ServerOption) *Service {
	if len(mgrs) == 0 {
		panic("shard: NewService needs at least one manager")
	}
	env := mgrs[0].Node.Env
	store := fstore.New(func() int64 { return int64(env.Now()) })
	s := &Service{
		Ring:      NewRing(len(mgrs), 0),
		Store:     store,
		mgrs:      append([]*rmem.Manager(nil), mgrs...),
		slotNodes: slotNodes,
		opts:      opts,
		standbys:  make([]*dfs.Standby, len(mgrs)),
		coords:    make([]*recovery.Coordinator, len(mgrs)),
		ringHost:  mgrs[0],
	}
	s.PromotedNode = -1
	for _, m := range mgrs {
		srv := dfs.NewServer(p, m, slotNodes, geo, append([]dfs.ServerOption{dfs.WithStore(store)}, opts...)...)
		s.Shards = append(s.Shards, srv)
	}
	s.Geo = s.Shards[0].Geo
	s.mb = newMembership(env, s.Ring)
	for i := range s.Shards {
		s.mb.setNode(i, s.Shards[i].Node().ID)
	}
	return s
}

// Membership exposes the epoch-versioned membership view: clerks, recovery
// coordinators, and harnesses subscribe here instead of resolving the ring
// once at construction.
func (s *Service) Membership() *Membership { return s.mb }

// Owner maps a handle to its owning shard slot under the committed ring.
func (s *Service) Owner(h fstore.Handle) int { return s.Ring.Owner(h.U64()) }

// NodeOf returns the node id currently serving slot i (the standby's node
// after a failover), or -1 for a vacant slot.
func (s *Service) NodeOf(i int) int {
	if i < 0 || i >= len(s.Shards) || s.Shards[i] == nil {
		return -1
	}
	return s.Shards[i].Node().ID
}

// Size returns the live shard count.
func (s *Service) Size() int { return s.Ring.Size() }

// Slots returns the slot-table length (vacant slots included); clerks size
// their per-slot state with it.
func (s *Service) Slots() int { return len(s.Shards) }

// WarmFile warms h's records into the owning shard's cache areas only —
// each shard's cache holds the subset of the namespace the ring assigns it.
func (s *Service) WarmFile(h fstore.Handle) error {
	return s.Shards[s.Owner(h)].WarmFile(h)
}

// WarmDir warms a directory into its owning shard.
func (s *Service) WarmDir(h fstore.Handle) error {
	return s.Shards[s.Owner(h)].WarmDir(h)
}

// Sync applies write-behind state on every live shard; returns total blocks.
func (s *Service) Sync(p *des.Proc) (int, error) {
	total := 0
	for _, srv := range s.Shards {
		if srv == nil {
			continue
		}
		n, err := srv.Sync(p)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ---------------------------------------------------------------------------
// Elasticity: live join/leave with one-sided background migration.

// AddShard brings a new shard up on m's node and cuts the ring over to
// include it: clerks are wired to the joiner first, then the two-phase
// cutover migrates the moved keys' write-behind state into it. Returns the
// slot the joiner occupies (vacant slots are reused).
func (s *Service) AddShard(p *des.Proc, m *rmem.Manager) (int, error) {
	slot := -1
	for i, sh := range s.Shards {
		if sh == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = len(s.Shards)
		s.Shards = append(s.Shards, nil)
		s.mgrs = append(s.mgrs, nil)
		s.standbys = append(s.standbys, nil)
		s.coords = append(s.coords, nil)
	}
	srv := dfs.NewServer(p, m, s.slotNodes, s.Geo, append([]dfs.ServerOption{dfs.WithStore(s.Store)}, s.opts...)...)
	s.Shards[slot] = srv
	s.mgrs[slot] = m
	s.mb.setNode(slot, m.Node.ID)
	for _, c := range s.clerks {
		c.wireSlot(p, slot)
	}
	s.meshSlot(p, slot)

	next := s.Ring.Clone()
	next.Add(slot)
	if err := s.cutover(p, next); err != nil {
		for _, c := range s.clerks {
			c.dropSlot(p, slot)
		}
		s.Shards[slot] = nil
		s.mgrs[slot] = nil
		return -1, err
	}
	return slot, nil
}

// DrainShard evacuates a live slot and removes it from the ring: every key
// it owns is migrated to its new owner during the cutover, clerks drop the
// slot, and its request-channel name is revoked. The emptied server is
// decommissioned (the node itself keeps running).
func (s *Service) DrainShard(p *des.Proc, slot int) error {
	if slot < 0 || slot >= len(s.Shards) || s.Shards[slot] == nil {
		return fmt.Errorf("shard: drain of vacant slot %d", slot)
	}
	if s.Ring.Size() <= 1 {
		return fmt.Errorf("shard: cannot drain the last shard")
	}
	donorNode := s.Shards[slot].Node().ID
	next := s.Ring.Clone()
	next.Remove(slot)
	if err := s.cutover(p, next); err != nil {
		return err
	}
	for _, c := range s.clerks {
		c.dropSlot(p, slot)
	}
	s.Shards[slot] = nil
	s.mgrs[slot] = nil
	if s.names != nil {
		_ = s.names[donorNode].Revoke(p, shardName(slot))
	}
	return nil
}

// cutover is the two-phase membership change:
//
//  1. prepare — new operations on keys whose owner changes park at the
//     membership gate; operations on unmoved keys flow untouched.
//  2. drain — the moved-key operations already in flight finish, then each
//     clerk runs a deposit barrier (one Null RPC per donor): a completed
//     write-behind op's one-sided deposit frames may still be on the wire,
//     and cells are FIFO per path, so the barrier reply proves every frame
//     the clerk sent to the donor has been deposited. Together: every
//     pre-cutover write to a moved key has serialized at the donor.
//  3. migrate — each donor pushes its moved *dirty* buckets to the new
//     owner's data area at the identical bucket offset with reliable
//     one-sided rmem WRITEs (the receiver's CPU is never scheduled), and
//     evicts moved clean residents (the shared store re-warms them).
//  4. recall — every attached clerk forfeits tokens and drops cached state
//     for exactly the keys that moved; unmoved tokens stay hot.
//  5. commit — the ring flips, the epoch bumps, watchers fire, parked
//     operations resume against the new owner, and the membership blob is
//     re-published through the name service (epoch supersede).
//
// Linearizability per key follows from the phases: every write to a moved
// key ordered before the cutover serialized at the donor and rode the
// migration; every one after it serializes at the new owner.
func (s *Service) cutover(p *des.Proc, next *Ring) error {
	old, _ := s.mb.Current()
	s.mb.prepare(next)
	s.mb.drain(p)
	for _, c := range s.clerks {
		c.settle(p, old.Members())
	}

	for _, slot := range old.Members() {
		donor := s.Shards[slot]
		if donor == nil {
			continue
		}
		pushed, cleared, err := donor.MigrateBuckets(p, s.receiverFor(p, slot, next), true)
		s.MigratedBuckets += int64(pushed)
		s.EvictedBuckets += int64(cleared - pushed)
		if err != nil {
			s.mb.abort()
			return err
		}
	}

	// Pre-commit liveness: a slot being *added* may have died since
	// prepare without the migration ever touching it (nothing dirty
	// moved). Committing would hand ring ownership to a corpse, so probe
	// every added slot with a bounded one-sided read and abort the
	// cutover — parked operations resume against the old ring — if any
	// probe fails.
	for _, slot := range next.Members() {
		if old.Contains(slot) {
			continue
		}
		if err := s.probeSlot(p, slot); err != nil {
			s.mb.abort()
			return fmt.Errorf("shard: joining slot %d unreachable at commit: %w", slot, err)
		}
	}

	movedKey := func(h fstore.Handle) bool { return old.Owner(h.U64()) != next.Owner(h.U64()) }
	for _, c := range s.clerks {
		c.recallMoved(p, old, movedKey)
	}

	s.mb.commit(p)
	s.Ring, _ = s.mb.Current()
	s.Cutovers++
	if tr := s.mgrs[firstLive(s.Shards)].Node.Env.Tracer(); tr != nil {
		tr.Count("shard.cutovers", 1)
	}
	if s.names != nil {
		if err := s.RegisterNames(p, s.names); err != nil {
			return err
		}
	} else if s.clog != nil {
		// No name service attached, but the epoch bump is still an agreed
		// decree: replicas track the membership sequence either way.
		_, epoch := s.mb.Current()
		if err := s.clog.ProposeMembership(p, uint32(epoch), s.ringBlob()); err != nil {
			s.ControlLogErrors++
		}
	}
	return nil
}

func firstLive(shards []*dfs.Server) int {
	for i, sh := range shards {
		if sh != nil {
			return i
		}
	}
	return 0
}

// probeSlot proves a slot's node can still answer memory reads: a
// reliable one-sided read of the first word of its data area from the
// founding shard's node, bounded by joinProbeTO. Retransmission absorbs
// link faults; only a dead or unreachable node fails the probe.
func (s *Service) probeSlot(p *des.Proc, slot int) error {
	srv := s.Shards[slot]
	if srv == nil {
		return fmt.Errorf("shard: slot %d vacant", slot)
	}
	if srv.Node().ID == s.ringHost.Node.ID {
		return nil // co-located with the prober: alive by construction
	}
	a := srv.Areas()[3]
	imp := s.ringHost.Import(p, srv.Node().ID, uint16(a[0]), uint16(a[1]), a[2])
	imp.SetReliable(true)
	scratch := s.ringHost.Export(p, 8)
	return imp.Read(p, 0, 4, scratch, 0, joinProbeTO)
}

// joinProbeTO bounds the pre-commit liveness probe of a joining slot.
const joinProbeTO = 2 * time.Millisecond

// receiverFor builds the per-donor destination map for MigrateBuckets:
// a resident key whose owner under next is not the donor moves, and dirty
// state is pushed through a reliable import of the new owner's data area.
func (s *Service) receiverFor(p *des.Proc, donorSlot int, next *Ring) func(fstore.Handle) (*rmem.Import, bool) {
	imports := make(map[int]*rmem.Import)
	return func(h fstore.Handle) (*rmem.Import, bool) {
		owner := next.Owner(h.U64())
		if owner == donorSlot {
			return nil, false
		}
		recv := s.Shards[owner]
		if recv == nil {
			return nil, true // no receiver: evict, the store is authoritative
		}
		imp, ok := imports[owner]
		if !ok {
			a := recv.Areas()[3]
			imp = s.mgrs[donorSlot].Import(p, recv.Node().ID, uint16(a[0]), uint16(a[1]), a[2])
			imp.SetReliable(true)
			imports[owner] = imp
		}
		return imp, true
	}
}

// CheckDivergence verifies post-chaos residency: every resident data
// bucket on every live shard must belong to that shard under the current
// ring. Strays can appear when a failover restores mirrored state from
// before a cutover; repair pushes dirty strays to their owner (one-sided,
// exactly like the migration) and evicts the rest. Returns the stray
// count and how many carried dirty state that was pushed.
func (s *Service) CheckDivergence(p *des.Proc) (strays, repaired int, err error) {
	ring, _ := s.mb.Current()
	for _, slot := range ring.Members() {
		srv := s.Shards[slot]
		if srv == nil {
			continue
		}
		pushed, cleared, merr := srv.MigrateBuckets(p, s.receiverFor(p, slot, ring), true)
		strays += cleared
		repaired += pushed
		if merr != nil {
			return strays, repaired, merr
		}
	}
	return strays, repaired, nil
}

// meshSlot wires the revocation mesh for one slot across every peer group
// registered by ConnectTokenPeers — the elastic continuation of the mesh
// the harness built at boot.
func (s *Service) meshSlot(p *des.Proc, slot int) {
	seen := make(map[*Clerk]bool)
	for _, c := range s.clerks {
		if len(c.peers) == 0 || seen[c.peers[0]] {
			continue
		}
		seen[c.peers[0]] = true
		connectSlotPeers(p, slot, c.peers)
	}
}

// ---------------------------------------------------------------------------
// Name-service publication.

// ringName is the registered name of the membership blob; shardName(i)
// names slot i's request channel.
const ringName = "dfs.ring"

func shardName(i int) string { return fmt.Sprintf("dfs.shard%d.req", i) }

// RegisterNames publishes the sharded tier in the name service: one record
// per live request channel ("dfs.shard<i>.req") plus a membership blob
// ("dfs.ring") carrying the vnode count, the membership epoch, and every
// (slot, node) pair, so any client can reconstruct the identical ring and
// import the channels by name alone. The blob lives on the founding
// shard's node and is re-published (a fresh export superseding the old
// record by generation) at every epoch bump; names is indexed by node id
// and is retained so cutovers re-publish automatically.
func (s *Service) RegisterNames(p *des.Proc, names []*nameserver.Clerk) error {
	s.names = names
	ring, epoch := s.mb.Current()
	members := ring.Members()
	blob := s.ringBlob()
	oldSeg := s.ringSeg
	s.ringSeg = s.ringHost.Export(p, len(blob))
	s.ringSeg.SetDefaultRights(rmem.RightRead)
	copy(s.ringSeg.Bytes(), blob)
	if err := s.registerRetry(p, names[s.ringHost.Node.ID], ringName, s.ringSeg); err != nil {
		return err
	}
	if oldSeg != nil {
		s.ringHost.Revoke(p, oldSeg)
	}
	for _, slot := range members {
		m := s.mgrs[slot]
		id, _, _ := s.Shards[slot].ReqChannel()
		seg, ok := m.Lookup(id)
		if !ok {
			return fmt.Errorf("shard: shard %d request segment %d not found", slot, id)
		}
		if err := s.registerRetry(p, names[m.Node.ID], shardName(slot), seg); err != nil {
			return err
		}
	}
	if s.clog != nil {
		s.replicateNames(p, uint32(epoch), blob, members)
	}
	return nil
}

// ringBlob packs the current membership for publication: vnode count,
// member count, epoch, then every (slot, node) pair.
func (s *Service) ringBlob() []byte {
	ring, epoch := s.mb.Current()
	members := ring.Members()
	blob := make([]byte, 12+8*len(members))
	binary.BigEndian.PutUint32(blob[0:], uint32(ring.vnodes))
	binary.BigEndian.PutUint32(blob[4:], uint32(len(members)))
	binary.BigEndian.PutUint32(blob[8:], uint32(epoch))
	for i, slot := range members {
		binary.BigEndian.PutUint32(blob[12+8*i:], uint32(slot))
		binary.BigEndian.PutUint32(blob[16+8*i:], uint32(s.NodeOf(slot)))
	}
	// The chain section trails the position-indexed base layout, so
	// ResolveRing callers unaware of chains are unaffected.
	return append(blob, s.chainBlobSection()...)
}

// ReplicateControl routes ring publications and membership commits
// through cl (an agreed log) in addition to the local name service:
// every control-plane replica then carries the ring record and the
// membership epoch sequence, so any of them can answer a resolve after
// the publishing machine crashes.
func (s *Service) ReplicateControl(cl ControlLog) { s.clog = cl }

// replicateNames commits the tier's registry records and the membership
// blob through the control log. Failures degrade to local-only
// publication — the data plane must not hinge on control-plane liveness.
func (s *Service) replicateNames(p *des.Proc, epoch uint32, blob []byte, members []int) {
	recs := []nameserver.Record{{
		Name: ringName, Node: s.ringHost.Node.ID, Seg: s.ringSeg.ID(),
		Gen: s.ringSeg.Gen(), Epoch: s.ringHost.Incarnation(), Size: s.ringSeg.Size(),
	}}
	for _, slot := range members {
		m := s.mgrs[slot]
		id, _, _ := s.Shards[slot].ReqChannel()
		if seg, ok := m.Lookup(id); ok {
			recs = append(recs, nameserver.Record{
				Name: shardName(slot), Node: m.Node.ID, Seg: seg.ID(),
				Gen: seg.Gen(), Epoch: m.Incarnation(), Size: seg.Size(),
			})
		}
	}
	for _, rec := range recs {
		if err := s.clog.RegisterName(p, rec); err != nil {
			s.ControlLogErrors++
		}
	}
	if err := s.clog.ProposeMembership(p, epoch, blob); err != nil {
		s.ControlLogErrors++
	}
	if s.ControlLogErrors > 0 {
		if tr := s.ringHost.Node.Env.Tracer(); tr != nil {
			tr.Count("shard.clog.errors", 1)
		}
	}
}

// registerRetry registers seg under name, absorbing the boot-order race:
// clerks export their well-known segments from an async boot process, so
// a registration issued right after construction can observe ErrNotReady.
// Capped backoff up to nsBootDeadline replaces the old assumption that
// the name service always exports first.
func (s *Service) registerRetry(p *des.Proc, c *nameserver.Clerk, name string, seg *rmem.Segment) error {
	return awaitNS(p, nsBootDeadline, func() error { return c.Register(p, name, seg) })
}

// nsBootDeadline bounds how long boot-order retries wait for the name
// service; a clerk that has not exported its registry by then is broken,
// not slow.
const nsBootDeadline = 250 * time.Millisecond

// awaitNS retries fn while it reports the name service as still booting
// (ErrNotReady) or the target name as not yet published (ErrNotFound),
// with capped exponential backoff, until deadline has elapsed. Any other
// error — and either sentinel still standing at the deadline — is
// returned to the caller.
func awaitNS(p *des.Proc, deadline des.Duration, fn func() error) error {
	limit := p.Now().Add(deadline)
	back := des.Duration(50 * time.Microsecond)
	for {
		err := fn()
		if err == nil ||
			(!errors.Is(err, nameserver.ErrNotReady) && !errors.Is(err, nameserver.ErrNotFound)) {
			return err
		}
		if p.Now().Add(back) > limit {
			return err
		}
		p.Sleep(back)
		if back *= 2; back > des.Duration(2*time.Millisecond) {
			back = des.Duration(2 * time.Millisecond)
		}
	}
}

// ResolveRing reads the registered membership blob through ns (with a
// scratch segment on m's node for the remote read) and returns the
// reconstructed ring, its epoch, and the slot→node map — what a clerk that
// was handed only the name service needs to find the tier. hint names the
// machine whose registry to probe when the name is not cached locally
// (§4.2's user-supplied hint; the founding shard's node registers the
// blob). Resolution forces a fresh lookup so an epoch bump's superseding
// record is observed rather than a stale cached generation.
func ResolveRing(p *des.Proc, m *rmem.Manager, ns *nameserver.Clerk, hint int) (*Ring, Epoch, map[int]int, error) {
	return resolveRingNamed(p, m, ns, ringName, hint)
}

func resolveRingNamed(p *des.Proc, m *rmem.Manager, ns *nameserver.Clerk, name string, hint int) (*Ring, Epoch, map[int]int, error) {
	var imp *rmem.Import
	// Absorb the boot-order race symmetrically with registerRetry: the
	// clerk's own boot process may still be exporting its well-knowns, and
	// the tier may not have published the blob yet.
	err := awaitNS(p, nsBootDeadline, func() error {
		var ierr error
		imp, ierr = ns.Import(p, name, hint, true)
		return ierr
	})
	if err != nil {
		return nil, 0, nil, err
	}
	scratch := m.Export(p, imp.Size())
	if err := imp.Read(p, 0, imp.Size(), scratch, 0, time.Second); err != nil {
		return nil, 0, nil, err
	}
	buf := scratch.Bytes()
	vnodes := int(binary.BigEndian.Uint32(buf[0:]))
	n := int(binary.BigEndian.Uint32(buf[4:]))
	epoch := Epoch(binary.BigEndian.Uint32(buf[8:]))
	members := make([]int, n)
	nodes := make(map[int]int, n)
	for i := 0; i < n; i++ {
		slot := int(binary.BigEndian.Uint32(buf[12+8*i:]))
		members[i] = slot
		nodes[slot] = int(binary.BigEndian.Uint32(buf[16+8*i:]))
	}
	return NewRingFrom(members, vnodes), epoch, nodes, nil
}

// ResolveRingAny is ResolveRing with a hint list instead of a single
// machine: for each hint it tries the canonical record, then the hint's
// membership mirror ("dfs.ring.<hint>", kept by control-plane replicas
// configured with MirrorMembership). The single-hint form silently
// assumes the founding shard's machine is alive — exactly the machine a
// failover campaign kills; that record also *points* at the founder, so
// a surviving registry copy is not enough. A clerk that hands in the
// control-plane replicas as extra hints resolves from whichever replica
// still answers: the mirror's record and bytes both live on the replica
// itself. Each dead probe costs at most one nsBootDeadline of retries;
// only the last error is returned.
func ResolveRingAny(p *des.Proc, m *rmem.Manager, ns *nameserver.Clerk, hints []int) (*Ring, Epoch, map[int]int, error) {
	var (
		ring  *Ring
		epoch Epoch
		nodes map[int]int
		err   error
	)
	for _, hint := range hints {
		ring, epoch, nodes, err = resolveRingNamed(p, m, ns, ringName, hint)
		if err == nil {
			return ring, epoch, nodes, nil
		}
		ring, epoch, nodes, err = resolveRingNamed(p, m, ns, fmt.Sprintf("%s.%d", ringName, hint), hint)
		if err == nil {
			return ring, epoch, nodes, nil
		}
	}
	if err == nil {
		err = fmt.Errorf("shard: resolve %q: no hints", ringName)
	}
	return nil, 0, nil, err
}

// RingName is the registered name of the membership blob — what a
// harness passes to consensus.ControlPlane.MirrorMembership so replicas
// keep per-node copies under "dfs.ring.<node>".
const RingName = ringName

// ---------------------------------------------------------------------------
// Failover (PR 3 machinery, now published through the membership).

// ArmFailover wires shard i's recovery path: a hot standby on sbm's node
// mirroring the shard's write-behind state, a heartbeat exported by the
// shard for the watcher's coordinator, and two failover steps — fenced
// standby takeover, then a membership slot-move publication that every
// subscribed clerk answers by rebinding to the new incarnation. Returns
// the armed coordinator.
func (s *Service) ArmFailover(p *des.Proc, i int, sbm, watcher *rmem.Manager, hbInterval des.Duration) *recovery.Coordinator {
	primary := s.Shards[i]
	s.standbys[i] = dfs.NewStandby(p, sbm, primary.Geo)
	primary.AttachStandby(p, s.standbys[i], hbInterval)

	hb := s.mgrs[i].Export(p, 8)
	hb.SetDefaultRights(rmem.RightRead)
	rmem.StartHeartbeat(s.mgrs[i], hb, 0, hbInterval)
	hbImp := watcher.Import(p, s.mgrs[i].Node.ID, hb.ID(), hb.Gen(), 8)

	rec := recovery.New(watcher, s.mgrs[i].Node.ID, recovery.Config{})
	rec.OnFailover("standby.takeover", func(p *des.Proc) error {
		srv, err := s.standbys[i].TakeOver(p, s.Store, s.slotNodes, s.opts...)
		if err != nil {
			return err
		}
		s.Shards[i] = srv
		return nil
	})
	rec.OnFailover("membership.rebind", func(p *des.Proc) error {
		s.mb.publishSlotMove(p, i, s.Shards[i].Node().ID)
		return nil
	})
	rec.Watch(hbImp, 0)
	s.coords[i] = rec
	return rec
}

// Coordinators returns the per-shard recovery coordinators (nil entries for
// shards without ArmFailover).
func (s *Service) Coordinators() []*recovery.Coordinator {
	return append([]*recovery.Coordinator(nil), s.coords...)
}
