package shard

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/model"
	"netmem/internal/nameserver"
	"netmem/internal/rmem"
)

// TestResolveRingBeforeClerkBoot: a client machine whose name-service
// clerk was constructed but whose async boot process has not yet exported
// its well-known segments can still call ResolveRing — the capped-backoff
// retry absorbs ErrNotReady instead of surfacing it. This replaces the
// old boot-order assumption (every clerk fully booted before the tier is
// used) with an explicit retry window.
func TestResolveRingBeforeClerkBoot(t *testing.T) {
	env := des.NewEnv()
	cl := cluster.New(env, &model.Default, 4)
	var mgrs []*rmem.Manager
	for i := 0; i < 4; i++ {
		mgrs = append(mgrs, rmem.NewManager(cl.Nodes[i]))
	}
	var bootErr error
	env.Spawn("setup", func(p *des.Proc) {
		peers := []int{0, 1, 2, 3}
		var names []*nameserver.Clerk
		for i := 0; i < 3; i++ {
			names = append(names, nameserver.New(mgrs[i], peers, nameserver.Config{}))
		}
		// Well-known registry segments must be each service node's first
		// exports; give those boot processes their head start.
		p.Sleep(time.Millisecond)
		svc := NewService(p, mgrs[:3], 4, dfs.Geometry{})
		if err := svc.RegisterNames(p, names[:3]); err != nil {
			bootErr = fmt.Errorf("register: %w", err)
			return
		}
		// Node 3's clerk is created only now: its boot process has not run
		// yet, so a non-retrying resolve would see ErrNotReady here.
		names = append(names, nameserver.New(mgrs[3], peers, nameserver.Config{}))
		if names[3].Ready() {
			bootErr = errors.New("test rig stale: clerk 3 already booted, race not exercised")
			return
		}
		ring, epoch, nodes, err := ResolveRing(p, mgrs[3], names[3], 0)
		if err != nil {
			bootErr = fmt.Errorf("resolve through booting clerk: %w", err)
			return
		}
		if epoch == 0 || ring.Size() != 3 || len(nodes) != 3 {
			bootErr = fmt.Errorf("resolved ring wrong: size=%d epoch=%d nodes=%v", ring.Size(), epoch, nodes)
		}
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if bootErr != nil {
		t.Fatal(bootErr)
	}
}

// TestAwaitNSBackoff pins the retry classifier: sentinels retry until the
// deadline, anything else returns immediately.
func TestAwaitNSBackoff(t *testing.T) {
	env := des.NewEnv()
	boom := errors.New("boom")
	env.Spawn("run", func(p *des.Proc) {
		// Transient ErrNotReady clears after a few attempts.
		calls := 0
		err := awaitNS(p, 10*time.Millisecond, func() error {
			if calls++; calls < 4 {
				return nameserver.ErrNotReady
			}
			return nil
		})
		if err != nil || calls != 4 {
			t.Errorf("transient not-ready: err=%v calls=%d", err, calls)
		}
		// ErrNotFound (name not yet published) is also retried.
		calls = 0
		err = awaitNS(p, 10*time.Millisecond, func() error {
			if calls++; calls < 3 {
				return fmt.Errorf("lookup: %w", nameserver.ErrNotFound)
			}
			return nil
		})
		if err != nil || calls != 3 {
			t.Errorf("transient not-found: err=%v calls=%d", err, calls)
		}
		// A sentinel still standing at the deadline surfaces.
		start := p.Now()
		err = awaitNS(p, 3*time.Millisecond, func() error { return nameserver.ErrNotReady })
		if !errors.Is(err, nameserver.ErrNotReady) {
			t.Errorf("deadline: err=%v, want ErrNotReady", err)
		}
		if waited := p.Now().Sub(start); waited > 4*time.Millisecond {
			t.Errorf("deadline overshot: waited %v", waited)
		}
		// Non-sentinel errors pass straight through.
		calls = 0
		err = awaitNS(p, 10*time.Millisecond, func() error { calls++; return boom })
		if !errors.Is(err, boom) || calls != 1 {
			t.Errorf("hard error: err=%v calls=%d", err, calls)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
