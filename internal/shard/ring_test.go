package shard

import (
	"testing"
)

// The satellite property tests: assignment is deterministic across
// independently built rings, and membership changes move close to the ideal
// K/N share of keys — with the structural guarantee that every moved key
// moves to (join) or away from (leave) exactly the changed shard.

const ringTestKeys = 10000

func ownerTable(r *Ring, keys int) []int {
	out := make([]int, keys)
	for k := 0; k < keys; k++ {
		out[k] = r.Owner(uint64(k) * 2654435761)
	}
	return out
}

func TestRingDeterministic(t *testing.T) {
	a := NewRing(4, 0)
	b := NewRing(4, 0)
	ta, tb := ownerTable(a, ringTestKeys), ownerTable(b, ringTestKeys)
	for k := range ta {
		if ta[k] != tb[k] {
			t.Fatalf("key %d: independently built rings disagree (%d vs %d)", k, ta[k], tb[k])
		}
	}
	// Build order must not matter either: adding members in reverse yields
	// the same point set.
	c := NewRing(0, 0)
	for s := 3; s >= 0; s-- {
		c.Add(s)
	}
	tc := ownerTable(c, ringTestKeys)
	for k := range ta {
		if ta[k] != tc[k] {
			t.Fatalf("key %d: build order changed the assignment (%d vs %d)", k, ta[k], tc[k])
		}
	}
	// Golden pins: a silent change to the hash function or point layout is a
	// compatibility break for every registered ring, so fail loudly.
	golden := map[uint64]int{0: a.Owner(0), 1: a.Owner(1), 1 << 40: a.Owner(1 << 40)}
	for key, want := range golden {
		if got := NewRing(4, 0).Owner(key); got != want {
			t.Fatalf("Owner(%d) not stable: %d then %d", key, want, got)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(4, 0)
	counts := make([]int, 4)
	for _, s := range ownerTable(r, ringTestKeys) {
		counts[s]++
	}
	ideal := ringTestKeys / 4
	for s, c := range counts {
		if c < ideal/2 || c > ideal*2 {
			t.Fatalf("shard %d owns %d of %d keys (ideal %d): ring badly unbalanced", s, c, ringTestKeys, ideal)
		}
	}
}

func TestRingJoinMovesBoundedKeys(t *testing.T) {
	r := NewRing(3, 0)
	before := ownerTable(r, ringTestKeys)
	r.Add(3)
	after := ownerTable(r, ringTestKeys)

	moved := 0
	for k := range before {
		if before[k] != after[k] {
			moved++
			// Structural: a join may only move keys TO the joining shard.
			if after[k] != 3 {
				t.Fatalf("key %d moved %d→%d on join of shard 3: shuffled between old members", k, before[k], after[k])
			}
		}
	}
	// Ideal movement is K/N = 2500. Virtual-node placement is statistical,
	// so allow a ±50%% band — far below the ~K(N-1)/N a modulo scheme moves.
	bound := ringTestKeys / r.Size() * 3 / 2
	if moved == 0 || moved > bound {
		t.Fatalf("join moved %d keys (ideal %d, bound %d)", moved, ringTestKeys/r.Size(), bound)
	}
}

func TestRingLeaveMovesOnlyDepartedKeys(t *testing.T) {
	r := NewRing(4, 0)
	before := ownerTable(r, ringTestKeys)
	r.Remove(2)
	after := ownerTable(r, ringTestKeys)

	moved, owned := 0, 0
	for k := range before {
		if before[k] == 2 {
			owned++
			if after[k] == 2 {
				t.Fatalf("key %d still assigned to removed shard 2", k)
			}
		}
		if before[k] != after[k] {
			moved++
			// Structural: only the departed shard's keys move.
			if before[k] != 2 {
				t.Fatalf("key %d moved %d→%d on leave of shard 2: shuffled a surviving member's key", k, before[k], after[k])
			}
		}
	}
	if moved != owned {
		t.Fatalf("leave moved %d keys but the departed shard owned %d", moved, owned)
	}
}

func TestRingMembership(t *testing.T) {
	r := NewRing(3, 8)
	if got := r.Members(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("Members() = %v", got)
	}
	r.Add(1) // duplicate: no-op
	if r.Size() != 3 || len(r.points) != 3*8 {
		t.Fatalf("duplicate Add changed the ring: size %d, points %d", r.Size(), len(r.points))
	}
	r.Remove(7) // non-member: no-op
	if r.Size() != 3 {
		t.Fatalf("Remove of non-member changed size to %d", r.Size())
	}
}
