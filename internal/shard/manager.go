package shard

import (
	"fmt"
	"time"

	"netmem/internal/des"
	"netmem/internal/rmem"
)

// Manager is the elastic fleet's autoscaler: it watches per-shard CPU
// occupancy through the obs ledger (every Node.UseCPU charge lands in a
// "cpu.node<i>.<cat>" counter) and drives Service.AddShard/DrainShard to
// keep the mean occupancy of the live shards inside a watermark band. The
// decision input is deliberately the observability plane, not private
// server state — anything that charges CPU on a shard node moves the
// needle, exactly as an operator's dashboard would show it.
type Manager struct {
	svc  *Service
	pool []*rmem.Manager // spare capacity, next joiner first
	cfg  ManagerConfig

	slotMgr  map[int]*rmem.Manager // live pool-owned slot → its manager
	joined   []int                 // pool-owned slots, join order (drain LIFO)
	lastBusy map[int]int64         // node id → cumulative busy ns at last sample
	sampled  bool
	cooldown int

	// Stats.
	Joins, Drains int64
	LastOcc       float64 // mean live-shard occupancy at the last sample
}

// ManagerConfig tunes the autoscaler. Zero values select the defaults.
type ManagerConfig struct {
	Interval  des.Duration // sampling period (default 50ms)
	HighWater float64      // join when mean occupancy exceeds this (default 0.70)
	LowWater  float64      // drain when it falls below this (default 0.25)
	MinShards int          // never drain below (default: the founding size)
	MaxShards int          // never join beyond (default: founding + pool)
	Cooldown  int          // samples to hold after a scaling action (default 2)
}

// NewManager builds an autoscaler over svc with the given spare capacity.
func NewManager(svc *Service, pool []*rmem.Manager, cfg ManagerConfig) *Manager {
	if cfg.Interval <= 0 {
		cfg.Interval = des.Duration(50 * time.Millisecond)
	}
	if cfg.HighWater <= 0 {
		cfg.HighWater = 0.70
	}
	if cfg.LowWater <= 0 {
		cfg.LowWater = 0.25
	}
	if cfg.MinShards <= 0 {
		cfg.MinShards = svc.Size()
	}
	if cfg.MaxShards <= 0 {
		cfg.MaxShards = svc.Size() + len(pool)
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2
	}
	return &Manager{
		svc:      svc,
		pool:     append([]*rmem.Manager(nil), pool...),
		cfg:      cfg,
		slotMgr:  make(map[int]*rmem.Manager),
		lastBusy: make(map[int]int64),
	}
}

// Start spawns the sampling daemon: one Step per interval, forever.
func (a *Manager) Start(env *des.Env) {
	env.SpawnDaemon("shard.autoscaler", func(p *des.Proc) {
		for {
			p.Sleep(a.cfg.Interval)
			if _, err := a.Step(p); err != nil {
				return
			}
		}
	})
}

// Occupancy reads each live shard node's busy time from the obs counters
// and returns the mean busy fraction since the previous sample. The first
// call only establishes the baseline (returns 0, false).
func (a *Manager) Occupancy(p *des.Proc) (float64, bool) {
	env := a.svc.mb.env
	snap := env.Tracer().Snapshot()
	ring, _ := a.svc.mb.Current()
	window := int64(a.cfg.Interval)
	var sum float64
	n := 0
	for _, slot := range ring.Members() {
		node := a.svc.NodeOf(slot)
		busy := snap.CounterSum(fmt.Sprintf("cpu.node%d.", node))
		if prev, ok := a.lastBusy[node]; ok && window > 0 {
			f := float64(busy-prev) / float64(window)
			if f > 1 {
				f = 1
			}
			sum += f
			n++
		}
		a.lastBusy[node] = busy
	}
	first := !a.sampled
	a.sampled = true
	if n == 0 || first {
		return 0, false
	}
	return sum / float64(n), true
}

// Step takes one occupancy sample and applies the watermark policy:
// occupancy above HighWater joins a spare shard, below LowWater drains the
// most recent joiner (LIFO, so the fleet contracts back onto its founding
// members). Returns whether the membership changed.
func (a *Manager) Step(p *des.Proc) (bool, error) {
	occ, ok := a.Occupancy(p)
	if !ok {
		return false, nil
	}
	a.LastOcc = occ
	if a.cooldown > 0 {
		a.cooldown--
		return false, nil
	}
	switch {
	case occ > a.cfg.HighWater && a.svc.Size() < a.cfg.MaxShards && len(a.pool) > 0:
		if err := a.join(p); err != nil {
			return false, err
		}
	case occ < a.cfg.LowWater && a.svc.Size() > a.cfg.MinShards && len(a.joined) > 0:
		if err := a.drain(p); err != nil {
			return false, err
		}
	default:
		return false, nil
	}
	a.cooldown = a.cfg.Cooldown
	return true, nil
}

func (a *Manager) join(p *des.Proc) error {
	m := a.pool[0]
	slot, err := a.svc.AddShard(p, m)
	if err != nil {
		return err
	}
	a.pool = a.pool[1:]
	a.slotMgr[slot] = m
	a.joined = append(a.joined, slot)
	a.Joins++
	if tr := a.svc.mb.env.Tracer(); tr != nil {
		tr.Count("shard.autoscale.joins", 1)
	}
	return nil
}

func (a *Manager) drain(p *des.Proc) error {
	slot := a.joined[len(a.joined)-1]
	if err := a.svc.DrainShard(p, slot); err != nil {
		return err
	}
	a.joined = a.joined[:len(a.joined)-1]
	a.pool = append([]*rmem.Manager{a.slotMgr[slot]}, a.pool...)
	delete(a.slotMgr, slot)
	a.Drains++
	if tr := a.svc.mb.env.Tracer(); tr != nil {
		tr.Count("shard.autoscale.drains", 1)
	}
	return nil
}

// ScaleTo joins or drains until the live shard count reaches n — the
// deterministic sweep driver fsbench's elastic experiment uses (watermarks
// bypassed; pool and LIFO bookkeeping shared with the policy path).
func (a *Manager) ScaleTo(p *des.Proc, n int) error {
	for a.svc.Size() < n {
		if len(a.pool) == 0 {
			return fmt.Errorf("shard: scale to %d: pool exhausted at %d", n, a.svc.Size())
		}
		if err := a.join(p); err != nil {
			return err
		}
	}
	for a.svc.Size() > n {
		if len(a.joined) == 0 {
			return fmt.Errorf("shard: scale to %d: no joiner left to drain at %d", n, a.svc.Size())
		}
		if err := a.drain(p); err != nil {
			return err
		}
	}
	return nil
}
