package shard

import (
	"bytes"
	"fmt"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/faults"
	"netmem/internal/fstore"
	"netmem/internal/model"
	"netmem/internal/obs"
	"netmem/internal/rmem"
)

// Sharded chaos harness: the Figure 2 operation mix run against the
// sharded tier under a fault campaign. The single-server harness
// (dfs.RunChaos) measures one server's degradation; this one measures the
// sharded property — a crash takes out one shard's node, its standby takes
// over behind the same recovery coordinator, and operations owned by the
// surviving shards keep flowing throughout.

// ChaosConfig selects one sharded chaos run.
type ChaosConfig struct {
	// Campaign is the fault schedule. Its crash entries name node ids;
	// shard i runs on node i, so the stock campaigns (which crash node 0)
	// hit shard 0.
	Campaign faults.Campaign
	// Seed seeds the simulation environment; 0 means des.DefaultSeed.
	Seed int64
	// Mode is the file-service structure (DX for the paper's proposal).
	Mode dfs.Mode
	// Shards is the shard count (>= 1).
	Shards int
}

// ChaosResult extends the single-server result with the shard count. The
// embedded fields (ops, goodput, retries, MTTR, metric snapshot) mean the
// same things; MTTR covers the crashed shard only — the others never go
// down, which is the point.
type ChaosResult struct {
	dfs.ChaosResult
	Shards int
	// Strays / Repaired report the post-campaign divergence audit: resident
	// data buckets found on a shard that no longer owns their key (want 0),
	// and how many of those the audit evicted.
	Strays, Repaired int
	// JoinAttempted / JoinAborted report the mid-campaign elasticity probe
	// (campaigns that crash a node beyond the failover rig spawn a joiner
	// there): whether AddShard ran, and whether it rolled back because the
	// joiner died mid-cutover.
	JoinAttempted, JoinAborted bool
}

// RunChaos measures the Figure 2 mix on a sharded rig twice — fault-free
// baseline, then under the campaign — with the reliability layer on and a
// hot standby armed per shard in both legs (identical topology, identical
// background traffic).
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: chaos needs at least one shard, got %d", cfg.Shards)
	}
	failover := len(cfg.Campaign.Crashes) > 0
	base, err := runChaosMix(nil, cfg.Seed, cfg.Mode, cfg.Shards, failover)
	if err != nil {
		return nil, fmt.Errorf("shard: chaos baseline: %w", err)
	}
	leg, err := runChaosMix(&cfg.Campaign, cfg.Seed, cfg.Mode, cfg.Shards, failover)
	if err != nil {
		return nil, fmt.Errorf("shard: chaos run: %w", err)
	}
	if leg.divErr != nil {
		return nil, fmt.Errorf("shard: chaos divergence audit: %w", leg.divErr)
	}
	res := &ChaosResult{Shards: cfg.Shards, Strays: leg.strays, Repaired: leg.repaired,
		JoinAttempted: leg.rig.joinDone, JoinAborted: leg.rig.joinErr != nil}
	res.Campaign = cfg.Campaign.Name
	res.Seed = leg.eng.Seed()
	res.Mode = cfg.Mode
	res.Injected = leg.eng.Counts()
	res.Metrics = leg.tr.Snapshot()
	res.Window = leg.window
	res.Replays = leg.rig.replays
	res.Events = leg.events
	res.Retries = res.Metrics.Counter("reliable.retries")
	res.Giveups = res.Metrics.Counter("reliable.giveup")
	for _, rec := range leg.rig.svc.Coordinators() {
		if rec == nil || !rec.Restored() {
			continue
		}
		res.FailedOver = true
		if mttr := time.Duration(rec.MTTR()); mttr > res.MTTR {
			res.MTTR = mttr
		}
		res.Rebinds += rec.Rebinds
	}
	for i, op := range leg.ops {
		op.Baseline = base.ops[i].Chaos
		res.Ops = append(res.Ops, op)
		if op.OK {
			res.Completed++
		}
	}
	return res, nil
}

// chaosLeg is one measured leg.
type chaosLeg struct {
	ops      []dfs.ChaosOpResult
	tr       *obs.Tracer
	eng      *faults.Engine
	rig      *chaosRig
	window   time.Duration
	events   uint64
	strays   int
	repaired int
	divErr   error
}

// chaosRig is the sharded counterpart of the dfs experiment rig: shard i
// on node i, the clerk on node S, and (with failover) shard i's standby on
// node S+1+i.
type chaosRig struct {
	env      *des.Env
	cl       *cluster.Cluster
	svc      *Service
	clerk    *Clerk
	file     fstore.Handle
	dir      fstore.Handle
	link     fstore.Handle
	replays  int64
	joinDone bool  // the mid-campaign AddShard probe returned
	joinErr  error // ... and this is what it said (nil = join stuck)
}

func runChaosMix(camp *faults.Campaign, seed int64, mode dfs.Mode, shards int, failover bool) (*chaosLeg, error) {
	env := des.NewEnv()
	if seed != 0 {
		env.Seed(seed)
	}
	tr := obs.New(obs.Config{})
	env.SetTracer(tr)
	var eng *faults.Engine
	var clusterOpts []cluster.Option
	if camp != nil {
		eng = faults.NewEngine(env, *camp)
		clusterOpts = append(clusterOpts, cluster.WithFaultEngine(eng))
	}
	nodes := shards + 1
	if failover {
		nodes = 2*shards + 1
	}
	// A campaign crash aimed beyond the failover rig is the joiner-death
	// schedule: allocate that node and plan a mid-campaign AddShard there,
	// timed so the crash lands inside the cutover.
	joiner, joinAt := -1, des.Time(0)
	if camp != nil {
		for _, cr := range camp.Crashes {
			if cr.Node >= nodes {
				joiner = cr.Node
				joinAt = des.Time(cr.At - time.Millisecond)
				if cr.Node+1 > nodes {
					nodes = cr.Node + 1
				}
			}
		}
	}
	cl := cluster.New(env, &model.Default, nodes, clusterOpts...)
	mgrs := make([]*rmem.Manager, nodes)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}
	// A recovered shard node reboots cold: its restarted manager fences
	// every descriptor from the dead incarnation (nil-safe without engine).
	for i := 0; i < shards; i++ {
		eng.OnRecover(i, mgrs[i].Restart)
	}

	rig := &chaosRig{env: env, cl: cl}
	mc := mgrs[shards]
	var setupErr error
	env.Spawn("shardchaos.setup", func(p *des.Proc) {
		rig.svc = NewService(p, mgrs[:shards], nodes, dfs.Geometry{}, dfs.WithReliableReplies())
		copts := []dfs.ClerkOption{dfs.WithReliable()}
		if failover {
			copts = append(copts, dfs.WithFencing())
		}
		rig.clerk = NewClerk(p, mc, rig.svc, mode, WithSubOptions(copts...))
		if setupErr = rig.warm(); setupErr != nil {
			return
		}
		if failover {
			// The clerk rebinds itself through its Membership subscription
			// when the coordinator publishes the slot move.
			for i := 0; i < shards; i++ {
				rig.svc.ArmFailover(p, i, mgrs[shards+1+i], mc, 100*time.Microsecond)
			}
		}
	})
	if err := env.RunUntil(des.Time(200 * time.Millisecond)); err != nil {
		return nil, err
	}
	if setupErr != nil {
		return nil, setupErr
	}

	if joiner >= 0 {
		jm := mgrs[joiner]
		env.Spawn("shardchaos.join", func(p *des.Proc) {
			if p.Now() < joinAt {
				p.Sleep(time.Duration(joinAt.Sub(p.Now())))
			}
			// The joiner dies 1ms in; AddShard must roll the cutover back
			// and leave the original ring serving. The error is the
			// expected outcome, not a harness failure.
			_, rig.joinErr = rig.svc.AddShard(p, jm)
			rig.joinDone = true
		})
	}

	leg := &chaosLeg{tr: tr, eng: eng, rig: rig}
	ops := make([]dfs.ChaosOpResult, len(dfs.Figure2Ops))
	env.Spawn("shardchaos.mix", func(p *des.Proc) {
		// Anchor at t = 200ms so the campaign's flap and crash windows land
		// inside the measured run.
		if at := des.Time(200 * time.Millisecond); p.Now() < at {
			p.Sleep(time.Duration(at.Sub(p.Now())))
		}
		start := p.Now()
		for i, spec := range dfs.Figure2Ops {
			ops[i] = rig.runVerifiedOp(p, spec)
			// A failed op either died in the crashed shard's outage window or
			// lost its retry budget to link faults. Park until the owning
			// shard's coordinator finishes any failover in progress, then
			// replay a bounded number of times.
			rec := rig.svc.Coordinators()[rig.shardOf(spec)]
			for tries := 0; !ops[i].OK && rec != nil && tries < 3; tries++ {
				if err := rec.AwaitRestored(p, time.Second); err != nil {
					break
				}
				rig.replays++
				ops[i] = rig.runVerifiedOp(p, spec)
			}
		}
		leg.window = time.Duration(p.Now().Sub(start))
		// Post-campaign divergence audit (untimed): after crashes, failovers,
		// and replays, every resident data bucket must still live on the
		// shard that owns its key.
		leg.strays, leg.repaired, leg.divErr = rig.svc.CheckDivergence(p)
	})
	// Heartbeat/watchdog/mirror daemons never idle, so the failover rig
	// needs a finite horizon.
	horizon := des.Time(120 * time.Second)
	if failover {
		horizon = des.Time(3 * time.Second)
	}
	if err := env.RunUntil(horizon); err != nil {
		return nil, err
	}
	leg.ops = ops
	leg.events = env.Events()
	return leg, nil
}

// warm populates the shared store with the Figure 2/3 tree and warms each
// record into its owning shard's cache.
func (r *chaosRig) warm() error {
	st := r.svc.Store
	h, err := st.WriteFile("/export/data.bin", chaosSeedPattern(16384))
	if err != nil {
		return err
	}
	r.file = h
	for i := 0; i < 260; i++ {
		if _, err := st.WriteFile(fmt.Sprintf("/export/pub/entry%03d", i), nil); err != nil {
			return err
		}
	}
	dir, _, err := st.ResolvePath("/export/pub")
	if err != nil {
		return err
	}
	r.dir = dir
	exp, _, err := st.ResolvePath("/export")
	if err != nil {
		return err
	}
	lh, _, err := st.Symlink(exp, "current", "/export/data.bin")
	if err != nil {
		return err
	}
	r.link = lh
	for _, wh := range []fstore.Handle{r.file, r.link} {
		if err := r.svc.WarmFile(wh); err != nil {
			return err
		}
	}
	if err := r.svc.WarmDir(exp); err != nil {
		return err
	}
	return r.svc.WarmDir(dir)
}

// shardOf maps a mix operation to the shard its key routes to — the one
// whose coordinator can unblock a replay.
func (r *chaosRig) shardOf(spec dfs.OpSpec) int {
	switch spec.Op {
	case dfs.OpLookup, dfs.OpReadDir:
		return r.svc.Owner(r.dir)
	case dfs.OpReadLink:
		return r.svc.Owner(r.link)
	default:
		return r.svc.Owner(r.file)
	}
}

// runVerifiedOp executes one mix operation through the sharded clerk and
// verifies the result bytes against the shared store's ground truth.
func (r *chaosRig) runVerifiedOp(p *des.Proc, spec dfs.OpSpec) dfs.ChaosOpResult {
	res := dfs.ChaosOpResult{Label: spec.Label}
	c := r.clerk
	st := r.svc.Store

	fail := func(err error) dfs.ChaosOpResult {
		res.Err = err.Error()
		res.Chaos = 0
		return res
	}

	// Writes establish DX block ownership with an untimed read; reads
	// measure the network path, so flush first.
	if spec.Op == dfs.OpWrite && c.Mode == dfs.DX {
		blocks := (spec.Size + fstore.BlockSize - 1) / fstore.BlockSize
		if _, err := c.Read(p, r.file, 0, blocks*fstore.BlockSize); err != nil {
			return fail(fmt.Errorf("ownership read: %w", err))
		}
	} else {
		c.FlushLocal()
	}

	start := p.Now()
	switch spec.Op {
	case dfs.OpGetAttr:
		a, err := c.GetAttr(p, r.file)
		if err != nil {
			return fail(err)
		}
		want, err := st.GetAttr(r.file)
		if err != nil {
			return fail(err)
		}
		if a.Size != want.Size || a.Type != want.Type {
			return fail(fmt.Errorf("attr mismatch: got size %d, want %d", a.Size, want.Size))
		}
	case dfs.OpLookup:
		h, _, err := c.Lookup(p, r.dir, "entry007")
		if err != nil {
			return fail(err)
		}
		want, _, err := st.Lookup(r.dir, "entry007")
		if err != nil {
			return fail(err)
		}
		if h != want {
			return fail(fmt.Errorf("lookup handle mismatch"))
		}
	case dfs.OpReadLink:
		target, err := c.ReadLink(p, r.link)
		if err != nil {
			return fail(err)
		}
		if target != "/export/data.bin" {
			return fail(fmt.Errorf("readlink returned %q", target))
		}
	case dfs.OpRead:
		data, err := c.Read(p, r.file, 0, spec.Size)
		if err != nil {
			return fail(err)
		}
		want, err := st.Read(r.file, 0, spec.Size)
		if err != nil {
			return fail(err)
		}
		if !bytes.Equal(data, want) {
			return fail(fmt.Errorf("read returned wrong bytes"))
		}
	case dfs.OpReadDir:
		data, err := c.ReadDir(p, r.dir, 0, spec.Size)
		if err != nil {
			return fail(err)
		}
		ents, err := st.ReadDir(r.dir)
		if err != nil {
			return fail(err)
		}
		want := dfs.SerializeDir(ents)[:spec.Size]
		if !bytes.Equal(data, want) {
			return fail(fmt.Errorf("readdir returned wrong bytes"))
		}
	case dfs.OpWrite:
		payload := chaosWritePattern(spec.Size)
		owner := r.svc.Owner(r.file)
		before := r.svc.Shards[owner].DataDeposits()
		if err := c.Write(p, r.file, 0, payload); err != nil {
			return fail(err)
		}
		if c.Mode == dfs.DX {
			// Bounded: a crash between the deposit and this observation swaps
			// the shard for its promoted standby, whose counter may never
			// advance — fail the op and let the replay path settle it.
			deadline := p.Now().Add(c.Sub(owner).EffectiveCallTimeout())
			for r.svc.Shards[owner].DataDeposits() == before {
				if p.Now() > deadline {
					return fail(fmt.Errorf("write deposit not observed"))
				}
				p.Sleep(2 * time.Microsecond)
			}
		}
		res.Chaos = time.Duration(p.Now().Sub(start))
		// Verification (untimed): apply write-behind state on every shard and
		// read the shared store back.
		if _, err := r.svc.Sync(p); err != nil {
			return fail(err)
		}
		got, err := st.Read(r.file, 0, spec.Size)
		if err != nil {
			return fail(err)
		}
		if !bytes.Equal(got, payload) {
			return fail(fmt.Errorf("written bytes did not reach the store intact"))
		}
		res.OK = true
		return res
	}
	res.Chaos = time.Duration(p.Now().Sub(start))
	res.OK = true
	return res
}

// chaosSeedPattern fills the warm file; chaosWritePattern is the write
// payload, distinguishable from the seed so a lost write cannot be masked.
func chaosSeedPattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i % 251)
	}
	return b
}

func chaosWritePattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + 129)
	}
	return b
}
