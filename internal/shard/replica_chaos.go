package shard

import (
	"fmt"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/faults"
	"netmem/internal/model"
	"netmem/internal/obs"
	"netmem/internal/rmem"
)

// Replica-chain chaos harness: the Figure 2 mix against one shard backed
// by a k-member replica chain, with the clerk's read path going through
// the chain (token cache + replica reads) and failover promoting the
// most-advanced member instead of a dedicated standby. Built for the
// `replicalag` campaign — per-link delays starve deep chain members while
// the head stays current, then the primary dies — but runs any campaign.

// ReplicaChaosConfig selects one replica chaos run.
type ReplicaChaosConfig struct {
	// Campaign is the fault schedule. The rig places the primary on node
	// 0, the clerk on node 1, the failover watcher on node 2, and chain
	// members on nodes 3..2+Replicas.
	Campaign faults.Campaign
	// Seed seeds the simulation environment; 0 means des.DefaultSeed.
	Seed int64
	// Mode is the file-service structure (DX for the paper's proposal).
	Mode dfs.Mode
	// Replicas is the chain length (>= 1).
	Replicas int
}

// ReplicaChaosResult extends the chaos result with the chain's outcome.
type ReplicaChaosResult struct {
	dfs.ChaosResult
	Replicas int
	// PromotedNode is the chain member the failover promoted (-1: none);
	// PromotedApplied its applied watermark at promotion — the evidence the
	// election picked the most-advanced member.
	PromotedNode    int
	PromotedApplied uint64
	// HeadApplied / TailApplied snapshot the extremes of the members'
	// applied watermarks just before the crash window — nonzero spread
	// proves the campaign actually starved the deep members.
	HeadApplied, TailApplied uint64
	// ReplicaReads counts clerk block fetches served by chain members
	// across the measured mix.
	ReplicaReads int64
	// Spliced counts mid-chain members dropped by splices.
	Spliced int64
}

// RunReplicaLagChaos measures the Figure 2 mix on the replica rig twice —
// fault-free baseline, then under the campaign — both with the token
// cache, the reliability layer, fencing, and chain failover armed.
func RunReplicaLagChaos(cfg ReplicaChaosConfig) (*ReplicaChaosResult, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("shard: replica chaos needs at least one replica, got %d", cfg.Replicas)
	}
	base, err := runReplicaMix(nil, cfg.Seed, cfg.Mode, cfg.Replicas)
	if err != nil {
		return nil, fmt.Errorf("shard: replica chaos baseline: %w", err)
	}
	leg, err := runReplicaMix(&cfg.Campaign, cfg.Seed, cfg.Mode, cfg.Replicas)
	if err != nil {
		return nil, fmt.Errorf("shard: replica chaos run: %w", err)
	}
	res := &ReplicaChaosResult{Replicas: cfg.Replicas}
	res.Campaign = cfg.Campaign.Name
	res.Seed = leg.eng.Seed()
	res.Mode = cfg.Mode
	res.Injected = leg.eng.Counts()
	res.Metrics = leg.tr.Snapshot()
	res.Window = leg.window
	res.Replays = leg.rig.replays
	res.Events = leg.events
	res.Retries = res.Metrics.Counter("reliable.retries")
	res.Giveups = res.Metrics.Counter("reliable.giveup")
	res.PromotedNode = leg.rig.svc.PromotedNode
	res.PromotedApplied = leg.rig.svc.PromotedApplied
	res.HeadApplied = leg.headApplied
	res.TailApplied = leg.tailApplied
	res.ReplicaReads = leg.rig.clerk.ReplicaReads
	res.Spliced = leg.rig.svc.ChainSplices
	for _, rec := range leg.rig.svc.Coordinators() {
		if rec == nil || !rec.Restored() {
			continue
		}
		res.FailedOver = true
		if mttr := time.Duration(rec.MTTR()); mttr > res.MTTR {
			res.MTTR = mttr
		}
		res.Rebinds += rec.Rebinds
	}
	for i, op := range leg.ops {
		op.Baseline = base.ops[i].Chaos
		res.Ops = append(res.Ops, op)
		if op.OK {
			res.Completed++
		}
	}
	return res, nil
}

// runSteps advances env in step-sized slices until stop() reports true or
// the horizon lands. The chain's push, forwarder, and heartbeat daemons
// never go idle, so running a replica rig to a generous fixed horizon
// simulates millions of wakeups past the last useful event; the step
// quantization keeps the stop point — and with it the executed-event
// count — deterministic for a given seed.
func runSteps(env *des.Env, step, horizon time.Duration, stop func() bool) error {
	end := des.Time(horizon)
	for !stop() && env.Now() < end {
		next := env.Now().Add(step)
		if next > end {
			next = end
		}
		if err := env.RunUntil(next); err != nil {
			return err
		}
	}
	return nil
}

// replicaLeg is one measured replica-rig leg.
type replicaLeg struct {
	ops                      []dfs.ChaosOpResult
	tr                       *obs.Tracer
	eng                      *faults.Engine
	rig                      *chaosRig
	window                   time.Duration
	events                   uint64
	headApplied, tailApplied uint64
}

func runReplicaMix(camp *faults.Campaign, seed int64, mode dfs.Mode, replicas int) (*replicaLeg, error) {
	env := des.NewEnv()
	if seed != 0 {
		env.Seed(seed)
	}
	tr := obs.New(obs.Config{})
	env.SetTracer(tr)
	var eng *faults.Engine
	var clusterOpts []cluster.Option
	if camp != nil {
		eng = faults.NewEngine(env, *camp)
		clusterOpts = append(clusterOpts, cluster.WithFaultEngine(eng))
	}
	nodes := 3 + replicas // primary, clerk, watcher, chain members
	cl := cluster.New(env, &model.Default, nodes, clusterOpts...)
	mgrs := make([]*rmem.Manager, nodes)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}
	eng.OnRecover(0, mgrs[0].Restart)

	rig := &chaosRig{env: env, cl: cl}
	var setupErr error
	env.Spawn("replicachaos.setup", func(p *des.Proc) {
		rig.svc = NewService(p, mgrs[:1], nodes, dfs.Geometry{}, dfs.WithReliableReplies())
		rig.clerk = NewClerk(p, mgrs[1], rig.svc, mode,
			WithSubOptions(dfs.WithReliable(), dfs.WithFencing()), WithTokenCache())
		if setupErr = rig.warm(); setupErr != nil {
			return
		}
		if setupErr = rig.svc.AttachReplicas(p, 0, mgrs[3:], 100*time.Microsecond); setupErr != nil {
			return
		}
		// The watcher gets its own otherwise-idle node: its probe reads
		// must not queue behind the clerk's bulk transfers, or fabric
		// congestion during the mix reads as a death verdict.
		_, setupErr = rig.svc.ArmChainFailover(p, 0, mgrs[2], 100*time.Microsecond)
	})
	if err := env.RunUntil(des.Time(190 * time.Millisecond)); err != nil {
		return nil, err
	}
	if setupErr != nil {
		return nil, setupErr
	}

	leg := &replicaLeg{tr: tr, eng: eng, rig: rig}
	ops := make([]dfs.ChaosOpResult, len(dfs.Figure2Ops))
	var mixDone bool
	env.Spawn("replicachaos.mix", func(p *des.Proc) {
		defer func() { mixDone = true }()
		// A fresh write-behind burst just before the campaign's delay
		// window: the resulting chain re-pushes are what the per-link
		// delays starve, so the members' applied watermarks spread and the
		// crash finds genuinely lagging deep members.
		if at := des.Time(190*time.Millisecond + 100*time.Microsecond); p.Now() < at {
			p.Sleep(time.Duration(at.Sub(p.Now())))
		}
		// Healthy-path evidence first: the chain converged on the warm
		// frames during setup and no write is in flight, so a re-read with
		// the block copies dropped (tokens and their stamped watermarks
		// kept) must move the bytes from a chain member. The campaign then
		// starves and decapitates exactly the tier this proves was serving.
		if _, err := rig.clerk.Read(p, rig.file, 0, 16384); err == nil {
			rig.clerk.FlushLocal()
			rig.clerk.DropTokenCache()
			_, _ = rig.clerk.Read(p, rig.file, 0, 16384)
		}
		lag := make([]byte, 16384)
		for i := range lag {
			lag[i] = byte(254 - i%251) // distinct from the warm pattern, so every bucket re-pushes
		}
		if err := rig.clerk.Write(p, rig.file, 0, lag); err == nil {
			_, _ = rig.svc.Sync(p)
		}
		for _, cr := range rig.svc.Replicas(0) {
			a := cr.Applied()
			if leg.headApplied == 0 || a > leg.headApplied {
				leg.headApplied = a
			}
			if leg.tailApplied == 0 || a < leg.tailApplied {
				leg.tailApplied = a
			}
		}
		start := p.Now()
		for i, spec := range dfs.Figure2Ops {
			ops[i] = rig.runVerifiedOp(p, spec)
			rec := rig.svc.Coordinators()[0]
			for tries := 0; !ops[i].OK && rec != nil && tries < 3; tries++ {
				if err := rec.AwaitRestored(p, time.Second); err != nil {
					break
				}
				rig.replays++
				ops[i] = rig.runVerifiedOp(p, spec)
			}
		}
		leg.window = time.Duration(p.Now().Sub(start))
	})
	// Heartbeat, chain push, and forwarder daemons never idle: the rig
	// needs a finite horizon, gated on the mix completing plus a settle
	// slice for in-flight chain acks and the failover coordinator's tail.
	if err := runSteps(env, 10*time.Millisecond, 3*time.Second, func() bool { return mixDone }); err != nil {
		return nil, err
	}
	if mixDone {
		if err := env.RunUntil(env.Now().Add(100 * time.Millisecond)); err != nil {
			return nil, err
		}
	}
	leg.ops = ops
	leg.events = env.Events()
	return leg, nil
}
