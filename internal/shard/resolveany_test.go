package shard

import (
	"testing"
	"time"

	"netmem/internal/cluster"
	"netmem/internal/consensus"
	"netmem/internal/des"
	"netmem/internal/dfs"
	"netmem/internal/model"
	"netmem/internal/nameserver"
	"netmem/internal/rmem"
)

// TestResolveRingAnyFounderDead: the founding shard's machine hosts both
// the "dfs.ring" record and the blob bytes, so its death kills ordinary
// resolution outright — a surviving registry copy still points at the
// corpse. With the control plane mirroring membership decrees
// (MirrorMembership), a clerk that hands the replicas in as extra hints
// resolves the identical ring from whichever replica answers first.
func TestResolveRingAnyFounderDead(t *testing.T) {
	// Nodes 0,1 shards (0 founds and hosts the blob); 2 the shard clerk;
	// 3,4,5 control-plane replicas.
	const (
		clerkNode = 2
		firstRep  = 3
		replicas  = 3
		nodes     = 6
	)
	env := des.NewEnv()
	env.Seed(1)
	cl := cluster.New(env, &model.Default, nodes)
	mgrs := make([]*rmem.Manager, nodes)
	for i := range mgrs {
		mgrs[i] = rmem.NewManager(cl.Nodes[i])
	}

	var (
		svc  *Service
		errs []error
	)
	ns := make([]*nameserver.Clerk, nodes)
	env.Spawn("setup", func(p *des.Proc) {
		peers := []int{0, 1, clerkNode, firstRep, firstRep + 1, firstRep + 2}
		for _, n := range peers {
			ns[n] = nameserver.New(mgrs[n], peers, nameserver.Config{})
		}
		p.Sleep(time.Millisecond)

		g := consensus.NewGroup(p,
			consensus.Config{Acceptors: replicas, Proposers: replicas + 1, Slots: 256},
			mgrs[firstRep:firstRep+replicas]...)
		cp := consensus.NewControlPlane(p, g, ns[firstRep:firstRep+replicas])
		cp.MirrorMembership(RingName)
		if err := cp.Start(p); err != nil {
			errs = append(errs, err)
			return
		}

		svc = NewService(p, mgrs[:2], nodes, dfs.Geometry{})
		svc.ReplicateControl(cp.NewClient(p, mgrs[clerkNode]))
		if err := svc.RegisterNames(p, ns); err != nil {
			errs = append(errs, err)
		}
	})
	if err := env.RunUntil(des.Time(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	for _, err := range errs {
		t.Fatal(err)
	}
	wantRing, wantEpoch := svc.Membership().Current()

	env.Spawn("test", func(p *des.Proc) {
		// Sanity: with the founder alive, the canonical record resolves.
		if _, _, _, err := ResolveRing(p, mgrs[clerkNode], ns[clerkNode], 0); err != nil {
			t.Errorf("resolve with founder alive: %v", err)
			return
		}
		cl.Nodes[0].Fail()
		hints := []int{0, firstRep, firstRep + 1, firstRep + 2}
		ring, epoch, nodeMap, err := ResolveRingAny(p, mgrs[clerkNode], ns[clerkNode], hints)
		if err != nil {
			t.Errorf("ResolveRingAny with founder dead: %v", err)
			return
		}
		if epoch != wantEpoch {
			t.Errorf("resolved epoch %d, want %d", epoch, wantEpoch)
		}
		if ring.Size() != wantRing.Size() {
			t.Errorf("resolved ring has %d members, want %d", ring.Size(), wantRing.Size())
		}
		for k := uint64(0); k < 1000; k++ {
			if ring.Owner(k) != wantRing.Owner(k) {
				t.Errorf("resolved ring disagrees with the service ring at key %d", k)
				return
			}
		}
		for slot, node := range nodeMap {
			if svc.NodeOf(slot) != node {
				t.Errorf("slot %d resolved to node %d, want %d", slot, node, svc.NodeOf(slot))
			}
		}
	})
	if err := env.RunUntil(des.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
}
