package shard

import (
	"bytes"
	"encoding/json"
	"testing"

	"netmem/internal/dfs"
	"netmem/internal/faults"
)

// TestReplicaLagChaosDeterministic is the replica tier's determinism
// golden: the replicalag campaign (growing per-cell delays on the deep
// chain hops, then a primary crash with no recovery) run twice at seed 1
// against a 3-member chain must produce byte-identical results, complete
// 12/12 byte-correct, and promote the most-advanced member — the chain
// head, the one node whose inbound link the campaign leaves clean.
func TestReplicaLagChaosDeterministic(t *testing.T) {
	camp, ok := faults.Named("replicalag")
	if !ok {
		t.Fatal("replicalag campaign not registered")
	}
	runOnce := func() ([]byte, *ReplicaChaosResult) {
		res, err := RunReplicaLagChaos(ReplicaChaosConfig{Campaign: camp, Seed: 1, Mode: dfs.DX, Replicas: 3})
		if err != nil {
			t.Fatalf("RunReplicaLagChaos: %v", err)
		}
		js, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return append(js, res.Metrics.String()...), res
	}
	b1, r1 := runOnce()
	b2, _ := runOnce()
	if !bytes.Equal(b1, b2) {
		i := 0
		for i < len(b1) && i < len(b2) && b1[i] == b2[i] {
			i++
		}
		lo, hi := i-40, i+40
		if lo < 0 {
			lo = 0
		}
		win := func(b []byte) []byte {
			h := hi
			if h > len(b) {
				h = len(b)
			}
			if lo >= h {
				return nil
			}
			return b[lo:h]
		}
		t.Fatalf("replicalag campaign not deterministic at seed 1:\n run1: …%s…\n run2: …%s…", win(b1), win(b2))
	}
	if r1.Completed != len(r1.Ops) || len(r1.Ops) != 12 {
		t.Errorf("goodput %d/%d, want 12/12", r1.Completed, len(r1.Ops))
	}
	if !r1.FailedOver || r1.MTTR <= 0 {
		t.Errorf("expected a measured failover (FailedOver=%v MTTR=%v)", r1.FailedOver, r1.MTTR)
	}
	// The campaign's whole point: the head (node 3) rides the lightest-
	// taxed hop and must be the promotion winner over the starved deep
	// members.
	if r1.PromotedNode != 3 {
		t.Errorf("promoted node %d, want chain head 3 (applied=%d head=%d tail=%d)",
			r1.PromotedNode, r1.PromotedApplied, r1.HeadApplied, r1.TailApplied)
	}
	if r1.PromotedApplied == 0 {
		t.Errorf("promotion recorded a zero applied watermark")
	}
	if r1.ReplicaReads == 0 {
		t.Errorf("mix never read through the replica tier")
	}
	if len(r1.Injected) == 0 {
		t.Errorf("campaign injected no faults")
	}
}
