package shard

import (
	"bytes"
	"testing"

	"netmem/internal/des"
	"netmem/internal/dfs"
)

// Review check: same as TestTokenWriteInvalidatesPeerCache but WITHOUT the
// b.FlushLocal() before the peer's re-read. If token recall truly keeps
// peer caches coherent, b must see the new bytes.
func TestReviewTokenCoherenceWithoutFlush(t *testing.T) {
	r := newSvcRig(t, 2, 2, dfs.DX, WithTokenCache())
	r.run(t, func(p *des.Proc) {
		_, hs := r.seedTree(t, 4)
		a, b := r.clerks[0], r.clerks[1]
		h := hs[0]
		if _, err := a.Read(p, h, 0, 4096); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Read(p, h, 0, 4096); err != nil {
			t.Fatal(err)
		}
		payload := patterned(4096, 0x55)
		ws := r.svc.Owner(h)
		before := r.svc.Shards[ws].DataDeposits()
		if err := a.Write(p, h, 0, payload); err != nil {
			t.Fatal(err)
		}
		r.awaitDeposits(t, p, ws, before, 1)
		if _, err := r.svc.Sync(p); err != nil {
			t.Fatal(err)
		}
		got, err := b.Read(p, h, 0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("peer served stale bytes after a write without manual FlushLocal")
		}
	})
}
