package stats

import (
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile not zero")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..100 in scrambled order: quantiles must not depend on insert order.
	for i := 0; i < 100; i++ {
		h.Observe(float64((i*37)%100 + 1))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.01, 1}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if h.P50() != 50 || h.P95() != 95 || h.P99() != 99 {
		t.Errorf("P50/P95/P99 = %v/%v/%v", h.P50(), h.P95(), h.P99())
	}
	if h.Min() != 1 || h.Max() != 100 || h.Count() != 100 {
		t.Errorf("min/max/count = %v/%v/%v", h.Min(), h.Max(), h.Count())
	}
	if h.Mean() != 50.5 {
		t.Errorf("mean = %v, want 50.5", h.Mean())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.ObserveDuration(42 * time.Microsecond)
	want := float64(42 * time.Microsecond)
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := h.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	var h Histogram
	h.Observe(10)
	if h.P50() != 10 {
		t.Fatal("p50 of one sample")
	}
	h.Observe(1) // must re-sort lazily
	if h.Min() != 1 || h.Max() != 10 {
		t.Fatalf("min/max after late observe = %v/%v", h.Min(), h.Max())
	}
}

func TestTimelineBuckets(t *testing.T) {
	tl := Timeline{Bucket: time.Millisecond}
	// 0.5ms busy in bucket 0, then a 2ms span covering buckets 2,3.
	tl.Add(0, 500*time.Microsecond)
	tl.Add(2*time.Millisecond, 2*time.Millisecond)
	if got := tl.Utilization(0); got != 0.5 {
		t.Errorf("bucket 0 util = %v, want 0.5", got)
	}
	if got := tl.Utilization(1); got != 0 {
		t.Errorf("bucket 1 util = %v, want 0", got)
	}
	if tl.Utilization(2) != 1 || tl.Utilization(3) != 1 {
		t.Errorf("buckets 2,3 = %v,%v, want 1,1", tl.Utilization(2), tl.Utilization(3))
	}
	// A span straddling a boundary splits.
	tl2 := Timeline{Bucket: time.Millisecond}
	tl2.Add(750*time.Microsecond, 500*time.Microsecond)
	if tl2.Utilization(0) != 0.25 || tl2.Utilization(1) != 0.25 {
		t.Errorf("straddle = %v,%v, want 0.25,0.25", tl2.Utilization(0), tl2.Utilization(1))
	}
	if out := tl.Render(10); out == "" {
		t.Error("render empty")
	}
}
