package stats

import (
	"math"
	"math/bits"
	"time"
)

// Sketch is a streaming quantile estimator over non-negative int64 samples
// (latencies in nanoseconds, sizes in bytes). It buckets each value by its
// most-significant bit plus sketchSubBits sub-bucket bits — the HDR-histogram
// scheme — so memory is a few KB regardless of sample count and the relative
// quantile error is bounded by half a sub-bucket width, under 0.4%.
//
// The bucketing is pure integer arithmetic: no logarithms, no floats on the
// observe path. Two runs (on any architecture) that observe the same samples
// report byte-identical quantiles, which is what lets CI diff SLO reports
// against committed goldens. The exact Histogram stays the right tool for
// small runs that want nearest-rank exactness; Sketch is for open-loop runs
// observing millions of latencies.
type Sketch struct {
	counts   []int64
	count    int64
	sum      int64
	min, max int64
}

// sketchSubBits sets the sub-bucket resolution: 2^7 = 128 linear sub-buckets
// per power of two, capping relative error at 1/256.
const sketchSubBits = 7

// sketchIndex maps a value to its bucket. Values below 2^sketchSubBits map
// exactly (bucket width 1); above, bucket width doubles with each power of
// two while the index stays monotone in v.
func sketchIndex(v int64) int {
	if v < 1<<sketchSubBits {
		return int(v)
	}
	shift := bits.Len64(uint64(v)) - 1 - sketchSubBits
	return shift<<sketchSubBits + int(v>>uint(shift))
}

// sketchMid returns the representative (midpoint) value of bucket idx.
func sketchMid(idx int) int64 {
	if idx < 1<<sketchSubBits {
		return int64(idx)
	}
	shift := uint(idx>>sketchSubBits - 1)
	m := int64(idx) - int64(shift)<<sketchSubBits
	return m<<shift + (int64(1)<<shift)/2
}

// Observe records one sample; negative values clamp to zero.
func (s *Sketch) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	idx := sketchIndex(v)
	for idx >= len(s.counts) {
		s.counts = append(s.counts, 0)
	}
	s.counts[idx]++
	s.sum += v
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
}

// ObserveDuration records a duration sample in nanoseconds.
func (s *Sketch) ObserveDuration(d time.Duration) { s.Observe(int64(d)) }

// Count returns the number of samples.
func (s *Sketch) Count() int64 { return s.count }

// Sum returns the sum of all samples.
func (s *Sketch) Sum() int64 { return s.sum }

// Mean returns the arithmetic mean (0 with no samples).
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.count)
}

// Min returns the smallest sample (0 with no samples).
func (s *Sketch) Min() int64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample (0 with no samples).
func (s *Sketch) Max() int64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Quantile returns the nearest-rank q-quantile estimate (0 <= q <= 1): the
// representative value of the bucket holding the ceil(q·n)-th smallest
// sample, clamped to the exact observed [min, max]. Returns 0 with no
// samples.
func (s *Sketch) Quantile(q float64) int64 {
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	rank := int64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for idx, c := range s.counts {
		seen += c
		if seen >= rank {
			v := sketchMid(idx)
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max
}

// P50, P99 and P999 are the conventional tail-latency quantiles.
func (s *Sketch) P50() int64  { return s.Quantile(0.50) }
func (s *Sketch) P99() int64  { return s.Quantile(0.99) }
func (s *Sketch) P999() int64 { return s.Quantile(0.999) }

// Merge folds o's samples into s.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.count == 0 {
		return
	}
	for len(s.counts) < len(o.counts) {
		s.counts = append(s.counts, 0)
	}
	for i, c := range o.counts {
		s.counts[i] += c
	}
	if s.count == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.count == 0 || o.max > s.max {
		s.max = o.max
	}
	s.count += o.count
	s.sum += o.sum
}
