package stats

import (
	"strings"
	"testing"
	"time"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Op", "Latency")
	tb.Add("GetAttr", "0.06ms")
	tb.Add("Readfile(8K)", "1.88ms")
	tb.AddRule()
	tb.Add("Total", "1.94ms")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Op") || !strings.Contains(lines[0], "Latency") {
		t.Fatalf("header: %q", lines[0])
	}
	// Latency column aligned: same start index in data rows.
	i2 := strings.Index(lines[2], "0.06ms")
	i3 := strings.Index(lines[3], "1.88ms")
	if i2 != i3 {
		t.Fatalf("columns unaligned:\n%s", out)
	}
}

func TestBarScaling(t *testing.T) {
	full := Bar("x", 10, 10, 20, "")
	half := Bar("x", 5, 10, 20, "")
	if strings.Count(full, "█") != 20 {
		t.Fatalf("full bar: %q", full)
	}
	if strings.Count(half, "█") != 10 {
		t.Fatalf("half bar: %q", half)
	}
	if strings.Count(Bar("x", 30, 10, 20, ""), "█") != 20 {
		t.Fatal("bar must clamp at width")
	}
	if strings.Count(Bar("x", -5, 10, 20, ""), "█") != 0 {
		t.Fatal("negative value must render empty")
	}
}

func TestStackedBar(t *testing.T) {
	out := StackedBar("op", []float64{5, 5}, []rune{'#', '+'}, 10, 20, "tail")
	if strings.Count(out, "#") != 10 || strings.Count(out, "+") != 10 {
		t.Fatalf("stacked segments wrong: %q", out)
	}
	if !strings.HasSuffix(out, "tail") {
		t.Fatalf("suffix missing: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	if Ms(1500*time.Microsecond) != "1.50ms" {
		t.Fatal(Ms(1500 * time.Microsecond))
	}
	if Us(45*time.Microsecond) != "45.0µs" {
		t.Fatal(Us(45 * time.Microsecond))
	}
	if Mbps(35.4e6) != "35.4 Mb/s" {
		t.Fatal(Mbps(35.4e6))
	}
	if MB(766.4) != "766" {
		t.Fatal(MB(766.4))
	}
}
