// Package stats provides the small rendering and summary helpers the
// benchmark tools share: fixed-width text tables, horizontal bar charts
// (for the Figure 2/3 reproductions), and duration/byte formatting.
package stats

import (
	"fmt"
	"strings"
	"time"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Add appends a row; cells are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.rows = append(t.rows, row)
}

// AddRule appends a horizontal rule.
func (t *Table) AddRule() {
	t.rows = append(t.rows, nil)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len([]rune(c)); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	rule := strings.Repeat("-", total-2)
	b.WriteString(rule)
	b.WriteByte('\n')
	for _, row := range t.rows {
		if row == nil {
			b.WriteString(rule)
			b.WriteByte('\n')
			continue
		}
		writeRow(row)
	}
	return b.String()
}

// Bar renders a labelled horizontal bar scaled to width columns at max.
func Bar(label string, value, max float64, width int, suffix string) string {
	if max <= 0 {
		max = 1
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return fmt.Sprintf("%-22s %-*s %s", label, width, strings.Repeat("█", n), suffix)
}

// StackedBar renders a bar whose segments use distinct glyphs, for the
// Figure 3 component breakdown.
func StackedBar(label string, segments []float64, glyphs []rune, max float64, width int, suffix string) string {
	if max <= 0 {
		max = 1
	}
	var b strings.Builder
	used := 0
	for i, seg := range segments {
		n := int(seg / max * float64(width))
		if used+n > width {
			n = width - used
		}
		if n > 0 {
			b.WriteString(strings.Repeat(string(glyphs[i%len(glyphs)]), n))
			used += n
		}
	}
	return fmt.Sprintf("%-22s %-*s %s", label, width, b.String(), suffix)
}

// Ms formats a duration in milliseconds with two decimals.
func Ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", d.Seconds()*1000)
}

// Us formats a duration in microseconds with one decimal.
func Us(d time.Duration) string {
	return fmt.Sprintf("%.1fµs", d.Seconds()*1e6)
}

// MB formats megabytes with no decimals.
func MB(v float64) string { return fmt.Sprintf("%.0f", v) }

// Mbps formats a bit rate in megabits/second.
func Mbps(bitsPerSec float64) string {
	return fmt.Sprintf("%.1f Mb/s", bitsPerSec/1e6)
}
