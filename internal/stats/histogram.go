package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram accumulates a distribution of float64 samples and answers
// quantile queries. Samples are stored exactly (simulation runs are short
// and determinism matters more than memory), so quantiles are exact
// nearest-rank values, not estimates — two runs that observe the same
// samples in the same order report byte-identical summaries.
type Histogram struct {
	samples []float64
	sum     float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(float64(d)) }

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Min returns the smallest sample (0 with no samples).
func (h *Histogram) Min() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[0]
}

// Max returns the largest sample (0 with no samples).
func (h *Histogram) Max() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[len(h.samples)-1]
}

// Quantile returns the nearest-rank q-quantile (0 <= q <= 1): the smallest
// sample such that at least q·n samples are <= it. Quantile(0) is the
// minimum, Quantile(1) the maximum. Returns 0 with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	h.sort()
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return h.samples[rank-1]
}

// P50, P95 and P99 are the conventional latency quantiles.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Timeline integrates busy time into fixed-width buckets of virtual time,
// for CPU-utilization-over-time summaries: each Add spreads a busy
// interval across the buckets it covers, and Utilization reports the busy
// fraction per bucket.
type Timeline struct {
	// Bucket is the bucket width; the zero value gets DefaultTimelineBucket
	// on first Add.
	Bucket  time.Duration
	buckets []time.Duration
}

// DefaultTimelineBucket is the bucket width a zero-valued Timeline uses.
const DefaultTimelineBucket = time.Millisecond

// Add records a busy interval [start, start+dur) on the timeline.
func (t *Timeline) Add(start, dur time.Duration) {
	if t.Bucket <= 0 {
		t.Bucket = DefaultTimelineBucket
	}
	if dur <= 0 || start < 0 {
		return
	}
	end := start + dur
	for b := start / t.Bucket; b*t.Bucket < end; b++ {
		lo, hi := b*t.Bucket, (b+1)*t.Bucket
		if start > lo {
			lo = start
		}
		if end < hi {
			hi = end
		}
		for int(b) >= len(t.buckets) {
			t.buckets = append(t.buckets, 0)
		}
		t.buckets[b] += hi - lo
	}
}

// Buckets returns the per-bucket busy time (the slice is live; do not
// mutate).
func (t *Timeline) Buckets() []time.Duration { return t.buckets }

// Utilization returns the busy fraction of bucket i.
func (t *Timeline) Utilization(i int) float64 {
	if i < 0 || i >= len(t.buckets) || t.Bucket <= 0 {
		return 0
	}
	return float64(t.buckets[i]) / float64(t.Bucket)
}

// Render draws one bar per bucket, scaled so a fully busy bucket spans
// width columns.
func (t *Timeline) Render(width int) string {
	out := ""
	for i := range t.buckets {
		u := t.Utilization(i)
		label := fmt.Sprintf("%8v", time.Duration(i)*t.Bucket)
		out += Bar(label, u, 1, width, fmt.Sprintf("%3.0f%%", u*100)) + "\n"
	}
	return out
}
