package stats

import (
	"math"
	"math/rand"
	"testing"
)

// sketchVsExact feeds the same samples to a Sketch and an exact Histogram
// and asserts the sketch quantiles land within relTol of the exact
// nearest-rank values.
func sketchVsExact(t *testing.T, name string, samples []int64, relTol float64) {
	t.Helper()
	var sk Sketch
	var ex Histogram
	for _, v := range samples {
		sk.Observe(v)
		ex.Observe(float64(v))
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := float64(sk.Quantile(q))
		want := ex.Quantile(q)
		if want == 0 {
			if got != 0 {
				t.Errorf("%s q=%v: got %v, want 0", name, q, got)
			}
			continue
		}
		if rel := math.Abs(got-want) / want; rel > relTol {
			t.Errorf("%s q=%v: sketch %v vs exact %v (rel err %.4f > %.4f)",
				name, q, got, want, rel, relTol)
		}
	}
	if sk.Count() != int64(len(samples)) {
		t.Errorf("%s: count %d, want %d", name, sk.Count(), len(samples))
	}
	if sk.Min() != int64(ex.Min()) || sk.Max() != int64(ex.Max()) {
		t.Errorf("%s: min/max %d/%d, want %v/%v", name, sk.Min(), sk.Max(), ex.Min(), ex.Max())
	}
	if math.Abs(sk.Mean()-ex.Mean()) > 1e-6*math.Abs(ex.Mean())+1e-9 {
		t.Errorf("%s: mean %v, want %v", name, sk.Mean(), ex.Mean())
	}
}

// TestSketchAccuracy checks quantile estimates against exact percentiles on
// known distributions: uniform, exponential, lognormal (heavy tail), and a
// bimodal mix like a cache-hit/miss latency profile.
func TestSketchAccuracy(t *testing.T) {
	const n = 200_000
	rng := rand.New(rand.NewSource(7))
	uniform := make([]int64, n)
	expo := make([]int64, n)
	logn := make([]int64, n)
	bimodal := make([]int64, n)
	for i := 0; i < n; i++ {
		uniform[i] = 1_000 + rng.Int63n(10_000_000)
		expo[i] = int64(rng.ExpFloat64() * 2_000_000)
		logn[i] = int64(math.Exp(rng.NormFloat64()*1.5+12)) + 1
		if rng.Intn(10) == 0 {
			bimodal[i] = 5_000_000 + rng.Int63n(100_000) // the miss mode
		} else {
			bimodal[i] = 50_000 + rng.Int63n(10_000) // the hit mode
		}
	}
	// The bucket scheme bounds relative error at 1/256 per value; 1% covers
	// the additional nearest-rank-vs-bucket-midpoint discretization.
	sketchVsExact(t, "uniform", uniform, 0.01)
	sketchVsExact(t, "exponential", expo, 0.01)
	sketchVsExact(t, "lognormal", logn, 0.01)
	sketchVsExact(t, "bimodal", bimodal, 0.01)
}

// TestSketchExactBelowSubBuckets verifies values under 2^7 are stored with
// bucket width 1 — small-sample quantiles are exact.
func TestSketchExactBelowSubBuckets(t *testing.T) {
	var s Sketch
	for v := int64(0); v < 128; v++ {
		s.Observe(v)
	}
	if got := s.Quantile(0.5); got != 63 { // nearest rank: the 64th smallest
		t.Errorf("median of 0..127: got %d, want 63", got)
	}
	if got := s.Quantile(1); got != 127 {
		t.Errorf("max: got %d, want 127", got)
	}
	if got := s.Quantile(0); got != 0 {
		t.Errorf("min: got %d, want 0", got)
	}
}

// TestSketchMergeEqualsUnion checks Merge produces the same quantiles as
// observing the union directly.
func TestSketchMergeEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, union Sketch
	for i := 0; i < 50_000; i++ {
		v := rng.Int63n(1_000_000)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v * 10)
		}
		w := v
		if i%2 != 0 {
			w = v * 10
		}
		union.Observe(w)
	}
	a.Merge(&b)
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if got, want := a.Quantile(q), union.Quantile(q); got != want {
			t.Errorf("q=%v: merged %d, union %d", q, got, want)
		}
	}
	if a.Count() != union.Count() || a.Sum() != union.Sum() {
		t.Errorf("merged count/sum %d/%d, want %d/%d", a.Count(), a.Sum(), union.Count(), union.Sum())
	}
}

// TestSketchDeterministic: same samples, same quantiles — byte-stable runs.
func TestSketchDeterministic(t *testing.T) {
	build := func() *Sketch {
		rng := rand.New(rand.NewSource(3))
		var s Sketch
		for i := 0; i < 10_000; i++ {
			s.Observe(rng.Int63n(1 << 40))
		}
		return &s
	}
	x, y := build(), build()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if x.Quantile(q) != y.Quantile(q) {
			t.Fatalf("q=%v differs across identical runs", q)
		}
	}
}

// TestSketchEmptyAndNegative covers the zero value and clamping.
func TestSketchEmptyAndNegative(t *testing.T) {
	var s Sketch
	if s.Quantile(0.5) != 0 || s.Count() != 0 || s.Mean() != 0 {
		t.Error("empty sketch must report zeros")
	}
	s.Observe(-5)
	if s.Min() != 0 || s.Max() != 0 || s.Count() != 1 {
		t.Errorf("negative sample must clamp to 0: min=%d max=%d n=%d", s.Min(), s.Max(), s.Count())
	}
}

// TestSketchIndexMonotone property-checks the bucketing core: indices are
// monotone in the value and representatives stay inside their bucket.
func TestSketchIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 127, 128, 129, 255, 256, 1 << 20, 1<<20 + 1, 1 << 40, 1<<62 - 1} {
		idx := sketchIndex(v)
		if idx < prev {
			t.Fatalf("index not monotone at v=%d: %d < %d", v, idx, prev)
		}
		prev = idx
		mid := sketchMid(idx)
		if sketchIndex(mid) != idx {
			t.Errorf("representative %d of bucket %d (v=%d) falls outside its bucket", mid, idx, v)
		}
	}
}
