package atm

import (
	"fmt"
	"math/rand"
	"time"

	"netmem/internal/des"
	"netmem/internal/faults"
	"netmem/internal/model"
)

// Interface is a host-network interface (the TCA-100 stand-in): two bounded
// cell FIFOs, one per direction, accessed a word at a time by the host CPU.
// The interface itself has no DMA and no processing; all intelligence is in
// host software, exactly as on the paper's hardware.
type Interface struct {
	Node int // owning node id (also this interface's receive VCI)
	TX   *des.FIFO[Cell]
	RX   *des.FIFO[Cell]

	// CellsSent / CellsReceived count cells through this interface, for
	// traffic accounting.
	CellsSent     int64
	CellsReceived int64
}

// NewInterface creates an interface with the model's FIFO depths.
func NewInterface(env *des.Env, p *model.Params, node int) *Interface {
	return &Interface{
		Node: node,
		TX:   des.NewFIFO[Cell](env, fmt.Sprintf("nic%d.tx", node), p.TxFIFOCells),
		RX:   des.NewFIFO[Cell](env, fmt.Sprintf("nic%d.rx", node), p.RxFIFOCells),
	}
}

// Fault configures loss injection on a link. Zero value = lossless.
//
// Deprecated: Fault is the pre-campaign loss knob and supports only uniform
// cell loss; use a faults.Campaign (cluster.WithFaultEngine /
// netmem.WithFaults) for anything richer. It remains supported so existing
// callers keep working.
type Fault struct {
	LossRate float64 // probability a cell is dropped in flight

	// Rand supplies the loss draws.
	//
	// Deprecated: leave nil. A caller-supplied generator is shared with
	// non-simulated code and breaks run-for-run determinism; when nil the
	// draws come from the environment-owned seeded stream (des.Env.Rand).
	Rand *rand.Rand
}

func (f *Fault) drop(env *des.Env) bool {
	if f == nil || f.LossRate <= 0 {
		return false
	}
	r := f.Rand
	if r == nil {
		r = env.Rand()
	}
	return r.Float64() < f.LossRate
}

// applyVerdict runs one surviving-or-not cell through the engine's verdict
// for the named link, calling deliver for every copy that should arrive
// now. held carries reorder state between calls: a held-back cell is
// released right after the next cell on the link. Returns the updated held
// state and whether the cell was dropped.
func applyVerdict(eng *faults.Engine, link string, held *Cell, c Cell, deliver func(Cell)) (*Cell, bool) {
	v := eng.Judge(link)
	if v.Drop {
		return held, true
	}
	if v.CorruptByte >= 0 && v.CorruptByte < PayloadSize {
		c.Payload[v.CorruptByte] ^= 0x80 // cells are values; the sender's copy is untouched
	}
	if v.HoldOne && held == nil {
		cc := c
		return &cc, false
	}
	deliver(c)
	if v.Duplicate {
		deliver(c)
	}
	if held != nil {
		deliver(*held)
		held = nil
	}
	return held, false
}

// Link is one unidirectional cell pipe from a TX FIFO to an RX FIFO with
// serialization (bandwidth) and propagation delay. DirectLink wires two
// interfaces back-to-back, the paper's switchless testbed topology.
type Link struct {
	env   *des.Env
	p     *model.Params
	fault *Fault
	eng   *faults.Engine // nil = no campaign on this link
	pump  *cellPump

	// CellsCarried counts cells delivered, for utilisation accounting.
	CellsCarried int64
	// CellsDropped counts fault-injected losses (including flap and
	// overflow drops).
	CellsDropped int64

	// Observability counter keys, fixed at construction.
	keyCells, keyDropped string
}

// cellPump drives one link hop — source FIFO, wire delay, fault verdicts,
// deposit into a routed destination FIFO — entirely from scheduler context.
// A multi-cell backlog rides one pooled event record as a train: each
// delivery pops the next cell and re-schedules itself, with no process
// wake-ups anywhere on the hop.
//
// Timing is identical to the daemon-process pump it replaces. Every state
// transition consumes exactly the events its process equivalent did: a
// wake when the source refills (one event), the wire time per cell (one
// event), and a wake per stall on a full destination (one event). Cells
// are still delivered one per event at their exact per-cell times — a
// train never lumps deliveries, because receiver-side CPU contention is
// sensitive to arrival instants.
type cellPump struct {
	env   *des.Env
	name  string
	src   *des.FIFO[Cell]
	delay des.Duration
	eng   *faults.Engine
	fault *Fault // deprecated uniform-loss knob (direct links only)
	held  *Cell  // reorder state: one cell held back by the engine

	route     func(Cell) *des.FIFO[Cell] // destination for a cell; nil = discard (already counted)
	carried   func()                     // account one delivered cell
	droppedFn func()                     // account one fault-injected loss
	overflow  func()                     // account one overflow shed (DropOnOverflow)

	cur     Cell    // the cell on the wire while a delivery event is in flight
	pending [3]Cell // verdict-approved copies awaiting deposit (cell, duplicate, released hold)
	npend   int
	flushed int // copies of pending already deposited

	// Pre-bound event functions, allocated once per pump.
	wakeFn, deliverFn, spaceFn func()
	stageFn                    func(Cell)
}

func newCellPump(env *des.Env, name string, src *des.FIFO[Cell], delay des.Duration, eng *faults.Engine, fault *Fault, route func(Cell) *des.FIFO[Cell]) *cellPump {
	cp := &cellPump{env: env, name: name, src: src, delay: delay, eng: eng, fault: fault, route: route}
	cp.wakeFn = cp.next
	cp.deliverFn = cp.deliver
	cp.spaceFn = cp.flush
	cp.stageFn = cp.stage
	return cp
}

// next begins the next cell's wire cycle: take a queued cell and hold the
// wire for its serialization time, or park until the source refills. This
// mirrors the daemon's `c := src.Get(pr); pr.Sleep(delay)`.
func (cp *cellPump) next() {
	c, ok := cp.src.TryGet()
	if !ok {
		cp.src.OnItem(cp.wakeFn)
		return
	}
	cp.cur = c
	// A campaign delay window stretches this cell's wire time; the pump is
	// serial per link, so delayed cells still arrive in FIFO order.
	d := cp.delay + des.Duration(cp.eng.ExtraDelay(cp.name))
	cp.env.ScheduleFunc(cp.env.Now().Add(d), cp.deliverFn)
}

// deliver fires when the cell has finished its wire time: judge it, stage
// the surviving copies, and flush them into the destination.
func (cp *cellPump) deliver() {
	if cp.fault.drop(cp.env) {
		cp.droppedFn()
		cp.next()
		return
	}
	if cp.eng.PartitionDrop(cp.cur.VCI.Src(), cp.cur.VCI.Dst()) {
		cp.droppedFn()
		cp.next()
		return
	}
	var dropped bool
	cp.held, dropped = applyVerdict(cp.eng, cp.name, cp.held, cp.cur, cp.stageFn)
	if dropped {
		cp.droppedFn()
	}
	cp.flush()
}

// stage queues one verdict-approved copy for deposit. applyVerdict emits at
// most three: the cell, a duplicate, and a released held-back cell.
func (cp *cellPump) stage(c Cell) {
	cp.pending[cp.npend] = c
	cp.npend++
}

// flush deposits staged copies in order. A full destination (backpressure
// mode) parks the pump on the destination's putter queue — the train stalls
// exactly where a daemon blocked in Put would — and resumes here.
func (cp *cellPump) flush() {
	for cp.flushed < cp.npend {
		c := cp.pending[cp.flushed]
		dst := cp.route(c)
		if dst == nil {
			cp.flushed++ // unroutable; route already accounted for it
			continue
		}
		if cp.eng.DropOnOverflow() {
			if !dst.TryPut(c) {
				cp.overflow()
			} else {
				cp.carried()
			}
			cp.flushed++
			continue
		}
		if dst.Full() {
			dst.OnSpace(cp.spaceFn)
			return
		}
		dst.TryPut(c) // known non-full; wakes the destination's getter
		cp.carried()
		cp.flushed++
	}
	cp.npend, cp.flushed = 0, 0
	cp.next()
}

// start arms the pump: park on the (empty) source like a freshly spawned
// daemon blocked in its first Get.
func (cp *cellPump) start() { cp.next() }

// newPump wires this link's hop from src to dst with the given
// post-serialization delay added to the wire time.
func (l *Link) newPump(name string, src *des.FIFO[Cell], dst *des.FIFO[Cell], extra des.Duration) {
	l.keyCells = "atm." + name + ".cells"
	l.keyDropped = "atm." + name + ".dropped"
	cp := newCellPump(l.env, name, src, l.p.CellWireTime()+extra, l.eng, l.fault,
		func(Cell) *des.FIFO[Cell] { return dst })
	cp.carried = func() {
		l.CellsCarried++
		if tr := l.env.Tracer(); tr != nil {
			tr.Count(l.keyCells, 1)
			tr.Counter(l.keyCells, time.Duration(l.env.Now()), float64(l.CellsCarried))
		}
	}
	cp.droppedFn = l.dropped
	cp.overflow = func() {
		l.eng.Count(faults.KindOverflow)
		l.dropped()
	}
	l.pump = cp
	cp.start()
}

// dropped accounts one lost cell on this link.
func (l *Link) dropped() {
	l.CellsDropped++
	if tr := l.env.Tracer(); tr != nil {
		tr.Count(l.keyDropped, 1)
	}
}

// DirectLink connects interfaces a and b with a full-duplex lossless link
// (pass fault = nil) or a fault-injected one. It returns the two
// unidirectional halves (a→b, b→a).
func DirectLink(env *des.Env, p *model.Params, a, b *Interface, fault *Fault) (ab, ba *Link) {
	return DirectLinkEngine(env, p, a, b, fault, nil)
}

// DirectLinkEngine is DirectLink with a fault-campaign engine attached to
// both halves. Each half judges cells under its own link name
// ("link<a>-><b>" and "link<b>-><a>"), so a campaign can fault one
// direction only.
func DirectLinkEngine(env *des.Env, p *model.Params, a, b *Interface, fault *Fault, eng *faults.Engine) (ab, ba *Link) {
	ab = &Link{env: env, p: p, fault: fault, eng: eng}
	ba = &Link{env: env, p: p, fault: fault, eng: eng}
	ab.newPump(fmt.Sprintf("link%d->%d", a.Node, b.Node), a.TX, b.RX, p.PropagationDelay)
	ba.newPump(fmt.Sprintf("link%d->%d", b.Node, a.Node), b.TX, a.RX, p.PropagationDelay)
	return ab, ba
}

// Switch is an output-queued cell switch. Each attached interface gets an
// input pump that routes on VCI (VCI = destination node) to the output
// queue of the destination port; an output pump serializes cells onto the
// destination interface. Cut-through latency is the model's SwitchLatency.
type Switch struct {
	env   *des.Env
	p     *model.Params
	ports map[int]*swPort
	eng   *faults.Engine

	// CellsUnroutable counts cells that arrived for a VCI with no attached
	// port. The fabric still discards them (there is nowhere to send them),
	// but invisibly losing traffic made misconfigured VCIs look like
	// network faults; the counter (and the "atm.sw.unroutable" obs key)
	// makes them diagnosable.
	CellsUnroutable int64
}

type swPort struct {
	nic *Interface
	out *des.FIFO[Cell]
}

// NewSwitch creates an empty switch.
func NewSwitch(env *des.Env, p *model.Params) *Switch {
	return &Switch{env: env, p: p, ports: make(map[int]*swPort)}
}

// SetEngine attaches a fault-campaign engine. Call before Attach; the
// switch's hop pumps judge cells under the "sw.in<N>" and "sw.tx<N>" link
// names.
func (s *Switch) SetEngine(eng *faults.Engine) { s.eng = eng }

// Attach connects an interface to the switch. All attachments must happen
// before the simulation delivers traffic to the new port.
func (s *Switch) Attach(nic *Interface) {
	port := &swPort{
		nic: nic,
		out: des.NewFIFO[Cell](s.env, fmt.Sprintf("sw.out%d", nic.Node), s.p.RxFIFOCells),
	}
	s.ports[nic.Node] = port

	// Input side: host→switch link (serialization) plus VCI routing.
	inName := fmt.Sprintf("sw.in%d", nic.Node)
	in := newCellPump(s.env, inName, nic.TX,
		s.p.CellWireTime()+s.p.PropagationDelay+s.p.SwitchLatency, s.eng, nil,
		func(c Cell) *des.FIFO[Cell] {
			dst, ok := s.ports[c.VCI.Dst()]
			if !ok {
				s.CellsUnroutable++
				if tr := s.env.Tracer(); tr != nil {
					tr.Count("atm.sw.unroutable", 1)
				}
				return nil
			}
			return dst.out
		})
	in.carried = func() {}
	in.droppedFn = func() {}
	in.overflow = func() { s.eng.Count(faults.KindOverflow) }
	in.start()
	// Output side: switch→host link.
	txName := fmt.Sprintf("sw.tx%d", nic.Node)
	tx := newCellPump(s.env, txName, port.out,
		s.p.CellWireTime()+s.p.PropagationDelay, s.eng, nil,
		func(Cell) *des.FIFO[Cell] { return nic.RX })
	tx.carried = func() {}
	tx.droppedFn = func() {}
	tx.overflow = func() { s.eng.Count(faults.KindOverflow) }
	tx.start()
}
