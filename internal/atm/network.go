package atm

import (
	"fmt"
	"math/rand"
	"time"

	"netmem/internal/des"
	"netmem/internal/model"
)

// Interface is a host-network interface (the TCA-100 stand-in): two bounded
// cell FIFOs, one per direction, accessed a word at a time by the host CPU.
// The interface itself has no DMA and no processing; all intelligence is in
// host software, exactly as on the paper's hardware.
type Interface struct {
	Node int // owning node id (also this interface's receive VCI)
	TX   *des.FIFO[Cell]
	RX   *des.FIFO[Cell]

	// CellsSent / CellsReceived count cells through this interface, for
	// traffic accounting.
	CellsSent     int64
	CellsReceived int64
}

// NewInterface creates an interface with the model's FIFO depths.
func NewInterface(env *des.Env, p *model.Params, node int) *Interface {
	return &Interface{
		Node: node,
		TX:   des.NewFIFO[Cell](env, fmt.Sprintf("nic%d.tx", node), p.TxFIFOCells),
		RX:   des.NewFIFO[Cell](env, fmt.Sprintf("nic%d.rx", node), p.RxFIFOCells),
	}
}

// Fault configures loss injection on a link. Zero value = lossless.
type Fault struct {
	LossRate float64 // probability a cell is dropped in flight
	Rand     *rand.Rand
}

func (f *Fault) drop() bool {
	return f != nil && f.Rand != nil && f.LossRate > 0 && f.Rand.Float64() < f.LossRate
}

// Link is one unidirectional cell pipe from a TX FIFO to an RX FIFO with
// serialization (bandwidth) and propagation delay. DirectLink wires two
// interfaces back-to-back, the paper's switchless testbed topology.
type Link struct {
	env   *des.Env
	p     *model.Params
	fault *Fault

	// CellsCarried counts cells delivered, for utilisation accounting.
	CellsCarried int64
	// CellsDropped counts fault-injected losses.
	CellsDropped int64

	// Observability counter keys, fixed at construction.
	keyCells, keyDropped string
}

// pump moves cells from src to deliver() forever: each cell holds the wire
// for its serialization time (bandwidth limit), then arrives after the
// propagation delay. Delivery blocks if the destination FIFO is full,
// modelling link-level flow control ("newer LAN technologies include
// hardware flow-control … that can guarantee that data packets are
// delivered reliably").
func (l *Link) pump(name string, src *des.FIFO[Cell], dst *des.FIFO[Cell], extra des.Duration) {
	l.keyCells = "atm." + name + ".cells"
	l.keyDropped = "atm." + name + ".dropped"
	l.env.SpawnDaemon(name, func(pr *des.Proc) {
		for {
			c := src.Get(pr)
			pr.Sleep(l.p.CellWireTime() + extra)
			if l.fault.drop() {
				l.CellsDropped++
				if tr := l.env.Tracer(); tr != nil {
					tr.Count(l.keyDropped, 1)
				}
				continue
			}
			dst.Put(pr, c)
			l.CellsCarried++
			if tr := l.env.Tracer(); tr != nil {
				tr.Count(l.keyCells, 1)
				tr.Counter(l.keyCells, time.Duration(l.env.Now()), float64(l.CellsCarried))
			}
		}
	})
}

// DirectLink connects interfaces a and b with a full-duplex lossless link
// (pass fault = nil) or a fault-injected one. It returns the two
// unidirectional halves (a→b, b→a).
func DirectLink(env *des.Env, p *model.Params, a, b *Interface, fault *Fault) (ab, ba *Link) {
	ab = &Link{env: env, p: p, fault: fault}
	ba = &Link{env: env, p: p, fault: fault}
	ab.pump(fmt.Sprintf("link%d->%d", a.Node, b.Node), a.TX, b.RX, p.PropagationDelay)
	ba.pump(fmt.Sprintf("link%d->%d", b.Node, a.Node), b.TX, a.RX, p.PropagationDelay)
	return ab, ba
}

// Switch is an output-queued cell switch. Each attached interface gets an
// input pump that routes on VCI (VCI = destination node) to the output
// queue of the destination port; an output pump serializes cells onto the
// destination interface. Cut-through latency is the model's SwitchLatency.
type Switch struct {
	env   *des.Env
	p     *model.Params
	ports map[int]*swPort
}

type swPort struct {
	nic *Interface
	out *des.FIFO[Cell]
}

// NewSwitch creates an empty switch.
func NewSwitch(env *des.Env, p *model.Params) *Switch {
	return &Switch{env: env, p: p, ports: make(map[int]*swPort)}
}

// Attach connects an interface to the switch. All attachments must happen
// before the simulation delivers traffic to the new port.
func (s *Switch) Attach(nic *Interface) {
	port := &swPort{
		nic: nic,
		out: des.NewFIFO[Cell](s.env, fmt.Sprintf("sw.out%d", nic.Node), s.p.RxFIFOCells),
	}
	s.ports[nic.Node] = port

	// Input side: host→switch link (serialization) plus VCI routing.
	s.env.SpawnDaemon(fmt.Sprintf("sw.in%d", nic.Node), func(pr *des.Proc) {
		for {
			c := nic.TX.Get(pr)
			pr.Sleep(s.p.CellWireTime() + s.p.PropagationDelay + s.p.SwitchLatency)
			dst, ok := s.ports[c.VCI.Dst()]
			if !ok {
				continue // no such port: cell dies in the fabric
			}
			dst.out.Put(pr, c)
		}
	})
	// Output side: switch→host link.
	s.env.SpawnDaemon(fmt.Sprintf("sw.tx%d", nic.Node), func(pr *des.Proc) {
		for {
			c := port.out.Get(pr)
			pr.Sleep(s.p.CellWireTime() + s.p.PropagationDelay)
			nic.RX.Put(pr, c)
		}
	})
}
