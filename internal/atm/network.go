package atm

import (
	"fmt"
	"math/rand"
	"time"

	"netmem/internal/des"
	"netmem/internal/faults"
	"netmem/internal/model"
)

// Interface is a host-network interface (the TCA-100 stand-in): two bounded
// cell FIFOs, one per direction, accessed a word at a time by the host CPU.
// The interface itself has no DMA and no processing; all intelligence is in
// host software, exactly as on the paper's hardware.
type Interface struct {
	Node int // owning node id (also this interface's receive VCI)
	TX   *des.FIFO[Cell]
	RX   *des.FIFO[Cell]

	// CellsSent / CellsReceived count cells through this interface, for
	// traffic accounting.
	CellsSent     int64
	CellsReceived int64
}

// NewInterface creates an interface with the model's FIFO depths.
func NewInterface(env *des.Env, p *model.Params, node int) *Interface {
	return &Interface{
		Node: node,
		TX:   des.NewFIFO[Cell](env, fmt.Sprintf("nic%d.tx", node), p.TxFIFOCells),
		RX:   des.NewFIFO[Cell](env, fmt.Sprintf("nic%d.rx", node), p.RxFIFOCells),
	}
}

// Fault configures loss injection on a link. Zero value = lossless.
//
// Deprecated: Fault is the pre-campaign loss knob and supports only uniform
// cell loss; use a faults.Campaign (cluster.WithFaultEngine /
// netmem.WithFaults) for anything richer. It remains supported so existing
// callers keep working.
type Fault struct {
	LossRate float64 // probability a cell is dropped in flight

	// Rand supplies the loss draws.
	//
	// Deprecated: leave nil. A caller-supplied generator is shared with
	// non-simulated code and breaks run-for-run determinism; when nil the
	// draws come from the environment-owned seeded stream (des.Env.Rand).
	Rand *rand.Rand
}

func (f *Fault) drop(env *des.Env) bool {
	if f == nil || f.LossRate <= 0 {
		return false
	}
	r := f.Rand
	if r == nil {
		r = env.Rand()
	}
	return r.Float64() < f.LossRate
}

// applyVerdict runs one surviving-or-not cell through the engine's verdict
// for the named link, calling deliver for every copy that should arrive
// now. held carries reorder state between calls: a held-back cell is
// released right after the next cell on the link. Returns the updated held
// state and whether the cell was dropped.
func applyVerdict(eng *faults.Engine, link string, held *Cell, c Cell, deliver func(Cell)) (*Cell, bool) {
	v := eng.Judge(link)
	if v.Drop {
		return held, true
	}
	if v.CorruptByte >= 0 && v.CorruptByte < PayloadSize {
		c.Payload[v.CorruptByte] ^= 0x80 // cells are values; the sender's copy is untouched
	}
	if v.HoldOne && held == nil {
		cc := c
		return &cc, false
	}
	deliver(c)
	if v.Duplicate {
		deliver(c)
	}
	if held != nil {
		deliver(*held)
		held = nil
	}
	return held, false
}

// Link is one unidirectional cell pipe from a TX FIFO to an RX FIFO with
// serialization (bandwidth) and propagation delay. DirectLink wires two
// interfaces back-to-back, the paper's switchless testbed topology.
type Link struct {
	env   *des.Env
	p     *model.Params
	fault *Fault
	eng   *faults.Engine // nil = no campaign on this link
	held  *Cell          // reorder state: one cell held back by the engine

	// CellsCarried counts cells delivered, for utilisation accounting.
	CellsCarried int64
	// CellsDropped counts fault-injected losses (including flap and
	// overflow drops).
	CellsDropped int64

	// Observability counter keys, fixed at construction.
	keyCells, keyDropped string
}

// pump moves cells from src to deliver() forever: each cell holds the wire
// for its serialization time (bandwidth limit), then arrives after the
// propagation delay. Delivery blocks if the destination FIFO is full,
// modelling link-level flow control ("newer LAN technologies include
// hardware flow-control … that can guarantee that data packets are
// delivered reliably").
func (l *Link) pump(name string, src *des.FIFO[Cell], dst *des.FIFO[Cell], extra des.Duration) {
	l.keyCells = "atm." + name + ".cells"
	l.keyDropped = "atm." + name + ".dropped"
	l.env.SpawnDaemon(name, func(pr *des.Proc) {
		deliver := func(c Cell) {
			if l.eng.DropOnOverflow() {
				if !dst.TryPut(c) {
					l.eng.Count(faults.KindOverflow)
					l.dropped()
					return
				}
			} else {
				dst.Put(pr, c)
			}
			l.CellsCarried++
			if tr := l.env.Tracer(); tr != nil {
				tr.Count(l.keyCells, 1)
				tr.Counter(l.keyCells, time.Duration(l.env.Now()), float64(l.CellsCarried))
			}
		}
		for {
			c := src.Get(pr)
			pr.Sleep(l.p.CellWireTime() + extra)
			if l.fault.drop(l.env) {
				l.dropped()
				continue
			}
			var dropped bool
			l.held, dropped = applyVerdict(l.eng, name, l.held, c, deliver)
			if dropped {
				l.dropped()
			}
		}
	})
}

// dropped accounts one lost cell on this link.
func (l *Link) dropped() {
	l.CellsDropped++
	if tr := l.env.Tracer(); tr != nil {
		tr.Count(l.keyDropped, 1)
	}
}

// DirectLink connects interfaces a and b with a full-duplex lossless link
// (pass fault = nil) or a fault-injected one. It returns the two
// unidirectional halves (a→b, b→a).
func DirectLink(env *des.Env, p *model.Params, a, b *Interface, fault *Fault) (ab, ba *Link) {
	return DirectLinkEngine(env, p, a, b, fault, nil)
}

// DirectLinkEngine is DirectLink with a fault-campaign engine attached to
// both halves. Each half judges cells under its own link name
// ("link<a>-><b>" and "link<b>-><a>"), so a campaign can fault one
// direction only.
func DirectLinkEngine(env *des.Env, p *model.Params, a, b *Interface, fault *Fault, eng *faults.Engine) (ab, ba *Link) {
	ab = &Link{env: env, p: p, fault: fault, eng: eng}
	ba = &Link{env: env, p: p, fault: fault, eng: eng}
	ab.pump(fmt.Sprintf("link%d->%d", a.Node, b.Node), a.TX, b.RX, p.PropagationDelay)
	ba.pump(fmt.Sprintf("link%d->%d", b.Node, a.Node), b.TX, a.RX, p.PropagationDelay)
	return ab, ba
}

// Switch is an output-queued cell switch. Each attached interface gets an
// input pump that routes on VCI (VCI = destination node) to the output
// queue of the destination port; an output pump serializes cells onto the
// destination interface. Cut-through latency is the model's SwitchLatency.
type Switch struct {
	env   *des.Env
	p     *model.Params
	ports map[int]*swPort
	eng   *faults.Engine

	// CellsUnroutable counts cells that arrived for a VCI with no attached
	// port. The fabric still discards them (there is nowhere to send them),
	// but invisibly losing traffic made misconfigured VCIs look like
	// network faults; the counter (and the "atm.sw.unroutable" obs key)
	// makes them diagnosable.
	CellsUnroutable int64
}

type swPort struct {
	nic *Interface
	out *des.FIFO[Cell]
}

// NewSwitch creates an empty switch.
func NewSwitch(env *des.Env, p *model.Params) *Switch {
	return &Switch{env: env, p: p, ports: make(map[int]*swPort)}
}

// SetEngine attaches a fault-campaign engine. Call before Attach; the
// switch's hop pumps judge cells under the "sw.in<N>" and "sw.tx<N>" link
// names.
func (s *Switch) SetEngine(eng *faults.Engine) { s.eng = eng }

// Attach connects an interface to the switch. All attachments must happen
// before the simulation delivers traffic to the new port.
func (s *Switch) Attach(nic *Interface) {
	port := &swPort{
		nic: nic,
		out: des.NewFIFO[Cell](s.env, fmt.Sprintf("sw.out%d", nic.Node), s.p.RxFIFOCells),
	}
	s.ports[nic.Node] = port

	// Input side: host→switch link (serialization) plus VCI routing.
	inName := fmt.Sprintf("sw.in%d", nic.Node)
	var inHeld *Cell
	s.env.SpawnDaemon(inName, func(pr *des.Proc) {
		route := func(c Cell) {
			dst, ok := s.ports[c.VCI.Dst()]
			if !ok {
				s.CellsUnroutable++
				if tr := s.env.Tracer(); tr != nil {
					tr.Count("atm.sw.unroutable", 1)
				}
				return
			}
			if s.eng.DropOnOverflow() {
				if !dst.out.TryPut(c) {
					s.eng.Count(faults.KindOverflow)
				}
				return
			}
			dst.out.Put(pr, c)
		}
		for {
			c := nic.TX.Get(pr)
			pr.Sleep(s.p.CellWireTime() + s.p.PropagationDelay + s.p.SwitchLatency)
			inHeld, _ = applyVerdict(s.eng, inName, inHeld, c, route)
		}
	})
	// Output side: switch→host link.
	txName := fmt.Sprintf("sw.tx%d", nic.Node)
	var txHeld *Cell
	s.env.SpawnDaemon(txName, func(pr *des.Proc) {
		deliver := func(c Cell) {
			if s.eng.DropOnOverflow() {
				if !nic.RX.TryPut(c) {
					s.eng.Count(faults.KindOverflow)
				}
				return
			}
			nic.RX.Put(pr, c)
		}
		for {
			c := port.out.Get(pr)
			pr.Sleep(s.p.CellWireTime() + s.p.PropagationDelay)
			txHeld, _ = applyVerdict(s.eng, txName, txHeld, c, deliver)
		}
	})
}
