package atm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"netmem/internal/des"
	"netmem/internal/model"
)

func TestSegmentReassembleRoundTrip(t *testing.T) {
	r := NewReassembler()
	for _, n := range []int{0, 1, 39, 40, 41, 48, 100, 4096, 8192} {
		frame := make([]byte, n)
		for i := range frame {
			frame[i] = byte(i * 7)
		}
		cells := Segment(3, frame)
		if len(cells) != CellsForFrame(n) {
			t.Fatalf("n=%d: %d cells, want %d", n, len(cells), CellsForFrame(n))
		}
		for i, c := range cells {
			got, done, err := r.Add(c)
			last := i == len(cells)-1
			if done != last {
				t.Fatalf("n=%d cell %d: done=%v", n, i, done)
			}
			if last {
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				if !bytes.Equal(got, frame) {
					t.Fatalf("n=%d: frame corrupted", n)
				}
			}
		}
	}
}

func TestReassembleInterleavedVCs(t *testing.T) {
	f1 := []byte("frame on circuit one, long enough to span multiple cells for sure........")
	f2 := []byte("and a second frame on another circuit, also spanning several cells.......")
	c1 := Segment(1, f1)
	c2 := Segment(MakeVCI(2, 0), f2)
	r := NewReassembler()
	var got1, got2 []byte
	i, j := 0, 0
	for i < len(c1) || j < len(c2) {
		if i < len(c1) {
			if f, done, err := r.Add(c1[i]); done {
				if err != nil {
					t.Fatal(err)
				}
				got1 = f
			}
			i++
		}
		if j < len(c2) {
			if f, done, err := r.Add(c2[j]); done {
				if err != nil {
					t.Fatal(err)
				}
				got2 = f
			}
			j++
		}
	}
	if !bytes.Equal(got1, f1) || !bytes.Equal(got2, f2) {
		t.Fatal("interleaved reassembly corrupted a frame")
	}
	if r.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", r.Pending())
	}
}

func TestReassembleDetectsCorruption(t *testing.T) {
	cells := Segment(1, []byte("payload that will be corrupted in flight"))
	cells[0].Payload[3] ^= 0xff
	r := NewReassembler()
	var lastErr error
	for _, c := range cells {
		if _, done, err := r.Add(c); done {
			lastErr = err
		}
	}
	if lastErr == nil {
		t.Fatal("corrupted frame passed CRC")
	}
}

func TestSegmentRoundTripProperty(t *testing.T) {
	prop := func(frame []byte, vci uint16) bool {
		r := NewReassembler()
		cells := Segment(VCI(vci), frame)
		for i, c := range cells {
			got, done, err := r.Add(c)
			if done {
				return i == len(cells)-1 && err == nil && bytes.Equal(got, frame)
			}
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectLinkDelivers(t *testing.T) {
	env := des.NewEnv()
	p := &model.Default
	a := NewInterface(env, p, 0)
	b := NewInterface(env, p, 1)
	DirectLink(env, p, a, b, nil)

	frame := []byte("hello over the wire")
	var got []byte
	var at des.Time
	env.Spawn("sender", func(pr *des.Proc) {
		for _, c := range Segment(1, frame) {
			a.TX.Put(pr, c)
		}
	})
	env.Spawn("receiver", func(pr *des.Proc) {
		r := NewReassembler()
		for {
			c := b.RX.Get(pr)
			if f, done, err := c2frame(r, c); done {
				if err != nil {
					t.Error(err)
				}
				got, at = f, pr.Now()
				return
			}
		}
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, frame) {
		t.Fatalf("got %q, want %q", got, frame)
	}
	if at == 0 {
		t.Fatal("no delivery")
	}
	// One cell: delivery no earlier than the wire time.
	if at < des.Time(p.CellWireTime()) {
		t.Fatalf("delivered at %v, faster than the wire allows", at)
	}
}

func c2frame(r *Reassembler, c Cell) ([]byte, bool, error) { return r.Add(c) }

func TestLinkSerializationBoundsThroughput(t *testing.T) {
	// 1000 cells over one link cannot beat the 140 Mb/s serialization rate.
	env := des.NewEnv()
	p := &model.Default
	a := NewInterface(env, p, 0)
	b := NewInterface(env, p, 1)
	DirectLink(env, p, a, b, nil)

	const n = 1000
	var doneAt des.Time
	env.Spawn("sender", func(pr *des.Proc) {
		for i := 0; i < n; i++ {
			a.TX.Put(pr, Cell{VCI: 1})
		}
	})
	env.Spawn("receiver", func(pr *des.Proc) {
		for i := 0; i < n; i++ {
			b.RX.Get(pr)
		}
		doneAt = pr.Now()
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	minTime := des.Time(time.Duration(n) * p.CellWireTime())
	if doneAt < minTime {
		t.Fatalf("1000 cells in %v, faster than serialization permits (%v)", doneAt, minTime)
	}
}

func TestFaultInjectionDrops(t *testing.T) {
	env := des.NewEnv()
	p := &model.Default
	a := NewInterface(env, p, 0)
	b := NewInterface(env, p, 1)
	fault := &Fault{LossRate: 0.5, Rand: rand.New(rand.NewSource(42))}
	ab, _ := DirectLink(env, p, a, b, fault)

	const n = 500
	env.Spawn("sender", func(pr *des.Proc) {
		for i := 0; i < n; i++ {
			a.TX.Put(pr, Cell{VCI: 1})
		}
	})
	received := 0
	env.SpawnDaemon("receiver", func(pr *des.Proc) {
		for {
			b.RX.Get(pr)
			received++
		}
	})
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if ab.CellsDropped == 0 {
		t.Fatal("no cells dropped at 50% loss")
	}
	if received+int(ab.CellsDropped) != n {
		t.Fatalf("received %d + dropped %d != sent %d", received, ab.CellsDropped, n)
	}
	if received < n/4 || received > 3*n/4 {
		t.Fatalf("received %d of %d at 50%% loss; generator looks broken", received, n)
	}
}

func TestSwitchRoutesOnVCI(t *testing.T) {
	env := des.NewEnv()
	p := &model.Default
	sw := NewSwitch(env, p)
	nics := make([]*Interface, 4)
	for i := range nics {
		nics[i] = NewInterface(env, p, i)
		sw.Attach(nics[i])
	}

	// Node 0 sends a frame to node 2 and one to node 3.
	f2 := []byte("for node two")
	f3 := []byte("for node three")
	env.Spawn("sender", func(pr *des.Proc) {
		for _, c := range Segment(MakeVCI(2, 0), f2) {
			nics[0].TX.Put(pr, c)
		}
		for _, c := range Segment(MakeVCI(3, 0), f3) {
			nics[0].TX.Put(pr, c)
		}
	})
	got := make(map[int][]byte)
	for _, n := range []int{1, 2, 3} {
		n := n
		env.SpawnDaemon("recv", func(pr *des.Proc) {
			r := NewReassembler()
			for {
				c := nics[n].RX.Get(pr)
				if f, done, err := r.Add(c); done && err == nil {
					got[n] = f
				}
			}
		})
	}
	if err := env.RunUntil(des.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[2], f2) || !bytes.Equal(got[3], f3) {
		t.Fatalf("switch misrouted: %q %q", got[2], got[3])
	}
	if got[1] != nil {
		t.Fatalf("node 1 received traffic not addressed to it: %q", got[1])
	}
}

func TestSwitchAddsLatency(t *testing.T) {
	p := &model.Default

	measure := func(useSwitch bool) des.Time {
		env := des.NewEnv()
		a := NewInterface(env, p, 0)
		b := NewInterface(env, p, 1)
		if useSwitch {
			sw := NewSwitch(env, p)
			sw.Attach(a)
			sw.Attach(b)
		} else {
			DirectLink(env, p, a, b, nil)
		}
		var at des.Time
		env.Spawn("sender", func(pr *des.Proc) {
			for _, c := range Segment(MakeVCI(1, 0), []byte("x")) {
				a.TX.Put(pr, c)
			}
		})
		env.Spawn("recv", func(pr *des.Proc) {
			b.RX.Get(pr)
			at = pr.Now()
		})
		if err := env.RunUntil(des.Time(time.Second)); err != nil {
			t.Fatal(err)
		}
		return at
	}

	direct, switched := measure(false), measure(true)
	if switched <= direct {
		t.Fatalf("switched path (%v) not slower than direct (%v)", switched, direct)
	}
	// "We expect next-generation switches to introduce only small
	// additional latency": the penalty should be a few µs, not tens.
	if switched.Sub(direct) > 10*time.Microsecond {
		t.Fatalf("switch penalty %v too large", switched.Sub(direct))
	}
}

func TestSwitchBackpressurePropagates(t *testing.T) {
	// Two senders flood one output port; the switch's output queue fills
	// and flow control pushes back into the senders' TX FIFOs rather than
	// dropping cells.
	env := des.NewEnv()
	p := &model.Default
	sw := NewSwitch(env, p)
	nics := make([]*Interface, 3)
	for i := range nics {
		nics[i] = NewInterface(env, p, i)
		sw.Attach(nics[i])
	}
	const per = 400
	for _, src := range []int{1, 2} {
		src := src
		env.Spawn("flood", func(pr *des.Proc) {
			for i := 0; i < per; i++ {
				nics[src].TX.Put(pr, Cell{VCI: MakeVCI(0, src)})
			}
		})
	}
	received := 0
	env.SpawnDaemon("sink", func(pr *des.Proc) {
		for {
			nics[0].RX.Get(pr)
			received++
			pr.Sleep(20 * time.Microsecond) // slow consumer
		}
	})
	if err := env.RunUntil(des.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if received != 2*per {
		t.Fatalf("received %d of %d cells; backpressure must not drop", received, 2*per)
	}
}

func TestReassemblerDiscardsPartialOnError(t *testing.T) {
	r := NewReassembler()
	cells := Segment(5, bytes.Repeat([]byte{7}, 100))
	// Feed a truncated frame: first cell, then a bogus "last" cell whose
	// trailer fails CRC. The partial state must be cleared either way.
	if _, done, _ := r.Add(cells[0]); done {
		t.Fatal("frame completed early")
	}
	bad := cells[len(cells)-1]
	bad.Payload[0] ^= 0xff
	if _, done, err := r.Add(bad); !done || err == nil {
		t.Fatalf("done=%v err=%v; want done with error", done, err)
	}
	if r.Pending() != 0 {
		t.Fatalf("pending = %d after failed frame", r.Pending())
	}
	// The circuit is reusable afterwards.
	for i, c := range Segment(5, []byte("fresh frame")) {
		f, done, err := r.Add(c)
		if done {
			if err != nil || string(f) != "fresh frame" {
				t.Fatalf("reuse after error: %q %v", f, err)
			}
		} else if i == len(cells)-1 {
			t.Fatal("frame never completed")
		}
	}
}
