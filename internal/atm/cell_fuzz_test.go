package atm

import (
	"bytes"
	"testing"
)

// FuzzSegmentReassemble round-trips arbitrary frame bodies through the
// segmentation and reassembly pipeline, with cell-slice reuse and frame
// recycling in the loop — exactly the hot-path configuration the cluster
// layer runs. The reassembled body must equal the frame byte for byte, and
// recycled state from a previous (different-length) frame must never leak
// into the next.
func FuzzSegmentReassemble(f *testing.F) {
	f.Add([]byte{}, []byte("x"))
	f.Add([]byte("a small request frame"), bytes.Repeat([]byte{0xEE}, 200))
	f.Add(bytes.Repeat([]byte{7}, 48*3), bytes.Repeat([]byte{9}, 47))
	f.Add(bytes.Repeat([]byte{1}, 8192), []byte("short"))
	f.Fuzz(func(t *testing.T, first, second []byte) {
		if len(first) > MaxFrame || len(second) > MaxFrame {
			return
		}
		r := NewReassembler()
		var cells []Cell
		for round, frame := range [][]byte{first, second} {
			cells = SegmentInto(cells, MakeVCI(1, 0), frame)
			if len(cells) != CellsForFrame(len(frame)) {
				t.Fatalf("round %d: %d cells for %d bytes, want %d",
					round, len(cells), len(frame), CellsForFrame(len(frame)))
			}
			var got []byte
			completed := false
			for i, c := range cells {
				body, done, err := r.Add(c)
				if err != nil {
					t.Fatalf("round %d cell %d: %v", round, i, err)
				}
				if done != (i == len(cells)-1) {
					t.Fatalf("round %d: done at cell %d of %d", round, i, len(cells))
				}
				if done {
					got, completed = body, true
				}
			}
			if !completed {
				t.Fatalf("round %d: frame never completed", round)
			}
			if !bytes.Equal(got, frame) {
				t.Fatalf("round %d: body mismatch (%d vs %d bytes)", round, len(got), len(frame))
			}
			r.Recycle(got) // second round reuses this buffer
		}
		if r.Pending() != 0 {
			t.Fatalf("%d circuits left partial", r.Pending())
		}
	})
}
