package atm

import "testing"

// BenchmarkSegmentInto measures the sender-side cell pipeline: an 8 KiB
// frame laid directly into a reused cell slice. Steady state must be
// allocation free (-benchmem).
func BenchmarkSegmentInto(b *testing.B) {
	frame := make([]byte, 8192)
	for i := range frame {
		frame[i] = byte(i)
	}
	vci := MakeVCI(1, 0)
	var cells []Cell
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells = SegmentInto(cells, vci, frame)
	}
	if len(cells) != CellsForFrame(len(frame)) {
		b.Fatalf("cell count %d", len(cells))
	}
}

// BenchmarkSegmentReassemble measures the full framing round trip with
// buffer recycling: segment an 8 KiB frame, feed every cell to the
// reassembler, recycle the completed frame.
func BenchmarkSegmentReassemble(b *testing.B) {
	frame := make([]byte, 8192)
	for i := range frame {
		frame[i] = byte(i * 13)
	}
	vci := MakeVCI(1, 0)
	var cells []Cell
	r := NewReassembler()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells = SegmentInto(cells, vci, frame)
		for _, c := range cells {
			body, done, err := r.Add(c)
			if err != nil {
				b.Fatal(err)
			}
			if done {
				if len(body) != len(frame) {
					b.Fatalf("body %d bytes", len(body))
				}
				r.Recycle(body)
			}
		}
	}
}
