// Package atm models the paper's network substrate: a FORE-style ATM
// local-area network carrying 53-byte cells (48 payload bytes) between
// host-network interfaces with bounded TX/RX FIFOs accessed by programmed
// I/O, over point-to-point links, optionally through a cell switch.
//
// Framing follows AAL5 in spirit: a variable-length frame is segmented
// into cells, the final cell is flagged, and a trailer carrying the frame
// length and a CRC-32 rides in the last cell's payload. Cells of different
// virtual circuits may interleave on a link; reassembly is per-VC.
//
// The paper's cluster treats cell loss as catastrophic ("we therefore feel
// justified in treating data loss within the cluster as an extremely rare
// occurrence"); links here are lossless unless a fault-injection rate is
// configured, and FIFO overflow exerts backpressure rather than dropping.
package atm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// PayloadSize is the usable payload of one cell.
const PayloadSize = 48

// CellSize is the on-wire size of one cell (5-byte header + payload).
const CellSize = 53

// trailerSize is the frame trailer: length (2) + truncated CRC (2). A full
// AAL5 trailer is 8 bytes; we use a compact 4-byte variant so that a small
// remote-memory operation (header + a few words of data) fits in a single
// cell, as the paper's raw-cell request format does. Frames are therefore
// capped at 64 KiB; higher layers chunk larger transfers.
const trailerSize = 4

// MaxFrame is the largest frame Segment accepts.
const MaxFrame = 1<<16 - 1

// VCI identifies a virtual circuit. This cluster uses a static well-known
// mapping with no signalling protocol: the circuit from node s to node d
// has VCI d<<8|s. Switches route on the destination byte, and reassembly
// keyed by the full VCI keeps frames from different sources to the same
// destination from interleaving.
type VCI uint16

// MakeVCI returns the well-known circuit id from node src to node dst.
// Node ids must fit in a byte (the cluster is "a modest number of
// high-performance workstations").
func MakeVCI(dst, src int) VCI {
	if dst < 0 || dst > 255 || src < 0 || src > 255 {
		panic("atm: node id out of range for well-known VCI scheme")
	}
	return VCI(dst)<<8 | VCI(src)
}

// Dst returns the destination node of the circuit.
func (v VCI) Dst() int { return int(v >> 8) }

// Src returns the source node of the circuit.
func (v VCI) Src() int { return int(v & 0xff) }

// Cell is one ATM cell. Cells are passed by value through FIFOs and links.
type Cell struct {
	VCI     VCI
	Last    bool // AAL5 end-of-frame flag (PT bit)
	Payload [PayloadSize]byte
}

// Segment splits frame into cells on the given circuit, appending the AAL5
// trailer (length + CRC-32 of the frame body) in the final cell, padding
// with zeros as needed. A frame always produces at least one cell.
func Segment(vci VCI, frame []byte) []Cell {
	return SegmentInto(nil, vci, frame)
}

// SegmentInto is Segment reusing the backing array of cells when it is
// large enough, so a sender that keeps a scratch slice segments without
// allocating. The frame is laid into the cell payloads directly — no
// intermediate padded buffer — and the pad region is zeroed explicitly
// because recycled cells carry stale bytes.
func SegmentInto(cells []Cell, vci VCI, frame []byte) []Cell {
	if len(frame) > MaxFrame {
		panic("atm: frame exceeds 64 KiB framing limit")
	}
	total := len(frame) + trailerSize
	ncells := (total + PayloadSize - 1) / PayloadSize
	if cap(cells) >= ncells {
		cells = cells[:ncells]
	} else {
		cells = make([]Cell, ncells)
	}
	off := 0
	for i := range cells {
		c := &cells[i]
		c.VCI = vci
		c.Last = false
		n := copy(c.Payload[:], frame[off:])
		off += n
		if n < PayloadSize {
			clear(c.Payload[n:])
		}
	}
	last := &cells[ncells-1]
	last.Last = true
	binary.BigEndian.PutUint16(last.Payload[PayloadSize-4:], uint16(len(frame)))
	binary.BigEndian.PutUint16(last.Payload[PayloadSize-2:], uint16(crc32.ChecksumIEEE(frame)))
	return cells
}

// CellsForFrame returns how many cells Segment will produce for a frame of
// n bytes (including the trailer).
func CellsForFrame(n int) int {
	return (n + trailerSize + PayloadSize - 1) / PayloadSize
}

// Reassembler rebuilds frames from interleaved per-VC cell streams.
// Completed frame buffers can be handed back with Recycle once the consumer
// is done with them, so steady-state reassembly does not allocate.
type Reassembler struct {
	partial map[VCI][]byte
	spare   [][]byte
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{partial: make(map[VCI][]byte)}
}

// buffer takes a recycled frame buffer, or starts an empty one.
func (r *Reassembler) buffer() []byte {
	if n := len(r.spare); n > 0 {
		b := r.spare[n-1]
		r.spare[n-1] = nil
		r.spare = r.spare[:n-1]
		return b
	}
	return nil
}

// Recycle returns a frame obtained from Add to the reassembler's buffer
// pool. The caller must be done with the frame — and with anything aliasing
// it — before recycling; the buffer is reused for a future frame.
func (r *Reassembler) Recycle(frame []byte) {
	if cap(frame) > 0 {
		r.spare = append(r.spare, frame[:0])
	}
}

// Add accepts one cell. When the cell completes a frame, Add returns the
// frame body (trailer stripped and verified) and done=true. A CRC or
// length violation returns an error and discards the partial frame —
// upper layers treat this as the catastrophic event the paper says it is.
func (r *Reassembler) Add(c Cell) (frame []byte, done bool, err error) {
	buf, started := r.partial[c.VCI]
	if !started {
		buf = r.buffer()
	}
	buf = append(buf, c.Payload[:]...)
	if !c.Last {
		r.partial[c.VCI] = buf
		return nil, false, nil
	}
	delete(r.partial, c.VCI)
	if len(buf) < trailerSize {
		r.Recycle(buf)
		return nil, true, fmt.Errorf("atm: runt frame on VCI %d", c.VCI)
	}
	n := binary.BigEndian.Uint16(buf[len(buf)-4:])
	sum := binary.BigEndian.Uint16(buf[len(buf)-2:])
	if int(n) > len(buf)-trailerSize {
		r.Recycle(buf)
		return nil, true, fmt.Errorf("atm: frame length %d exceeds %d received bytes on VCI %d", n, len(buf)-trailerSize, c.VCI)
	}
	body := buf[:n]
	if uint16(crc32.ChecksumIEEE(body)) != sum {
		r.Recycle(buf)
		return nil, true, fmt.Errorf("atm: CRC mismatch on VCI %d", c.VCI)
	}
	return body, true, nil
}

// Pending reports how many circuits have partially reassembled frames.
func (r *Reassembler) Pending() int { return len(r.partial) }
